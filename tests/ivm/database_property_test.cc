// Property test for the statement-level facade including transactions:
// random statements, randomly grouped into transactions that randomly
// commit or roll back, validated against a shadow catalog that applies
// only the surviving statements. Views must always equal a recompute of
// the *real* catalog, and after every commit/rollback the real catalog
// must equal the shadow.

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "ivm/database.h"
#include "test_util.h"

namespace ojv {
namespace {

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

void CreateWorldSchema(Catalog* catalog, bool deferrable_fk) {
  catalog->CreateTable(
      "P",
      Schema({ColumnDef{"p_id", ValueType::kInt64, false},
              ColumnDef{"p_a", ValueType::kInt64, true}}),
      {"p_id"});
  catalog->CreateTable(
      "C",
      Schema({ColumnDef{"c_id", ValueType::kInt64, false},
              ColumnDef{"c_fk", ValueType::kInt64, false},
              ColumnDef{"c_a", ValueType::kInt64, true}}),
      {"c_id"});
  ForeignKey fk{"C", {"c_fk"}, "P", {"p_id"}};
  fk.deferrable = deferrable_fk;
  catalog->AddForeignKey(fk);
}

ViewDef MakeWorldView(const Catalog& catalog) {
  RelExprPtr tree = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("P"),
                                  RelExpr::Scan("C"),
                                  Eq("P", "p_id", "C", "c_fk"));
  return ViewDef("pc", tree,
                 {{"P", "p_id"}, {"P", "p_a"}, {"C", "c_id"},
                  {"C", "c_fk"}, {"C", "c_a"}},
                 catalog);
}

// One random statement description, applicable to any Database.
struct Stmt {
  enum class Kind { kInsertP, kInsertC, kDeleteC, kUpdateC } kind;
  std::vector<Row> rows;  // full rows (kInsert*/kUpdateC new rows)
  std::vector<Row> keys;  // kDeleteC / kUpdateC
};

class DatabasePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DatabasePropertyTest, TransactionsAgreeWithShadowModel) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  Database real;
  CreateWorldSchema(real.catalog(), /*deferrable_fk=*/true);
  ViewMaintainer* view = real.CreateMaterializedView(
      MakeWorldView(*real.catalog()));

  // Shadow: no views, statements applied only when they survive.
  Database shadow;
  CreateWorldSchema(shadow.catalog(), /*deferrable_fk=*/true);

  // Seed data.
  int64_t next_key = 1;
  for (int i = 0; i < 8; ++i) {
    Row p{Value::Int64(next_key++), Value::Int64(rng.Uniform(0, 4))};
    real.Insert("P", {p});
    shadow.Insert("P", {p});
  }
  view = real.GetView("pc");

  auto random_statement = [&](Database& db) {
    Stmt stmt;
    switch (rng.Uniform(0, 3)) {
      case 0:
        stmt.kind = Stmt::Kind::kInsertP;
        stmt.rows = {Row{Value::Int64(next_key++),
                         Value::Int64(rng.Uniform(0, 4))}};
        break;
      case 1: {
        stmt.kind = Stmt::Kind::kInsertC;
        // Mostly valid parents; sometimes dangling (exercises deferred
        // checks and rollbacks).
        int64_t parent = rng.Chance(0.75)
                             ? 1 + rng.Uniform(0, next_key - 2)
                             : 900000 + rng.Uniform(0, 5);
        stmt.rows = {Row{Value::Int64(next_key++), Value::Int64(parent),
                         Value::Int64(rng.Uniform(0, 4))}};
        break;
      }
      case 2: {
        stmt.kind = Stmt::Kind::kDeleteC;
        stmt.keys = testing_util::SampleKeys(*db.catalog()->GetTable("C"),
                                             &rng, 1);
        break;
      }
      default: {
        stmt.kind = Stmt::Kind::kUpdateC;
        stmt.keys = testing_util::SampleKeys(*db.catalog()->GetTable("C"),
                                             &rng, 1);
        if (!stmt.keys.empty()) {
          Row row = *db.catalog()->GetTable("C")->FindByKey(stmt.keys[0]);
          row[2] = Value::Int64(rng.Uniform(0, 4));
          stmt.rows = {std::move(row)};
        }
        break;
      }
    }
    return stmt;
  };

  auto apply = [&](Database& db, const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kInsertP:
        return db.Insert("P", stmt.rows);
      case Stmt::Kind::kInsertC:
        return db.Insert("C", stmt.rows);
      case Stmt::Kind::kDeleteC:
        return db.Delete("C", stmt.keys);
      case Stmt::Kind::kUpdateC:
        if (stmt.keys.empty()) return Database::StatementResult{};
        return db.Update("C", stmt.keys, stmt.rows);
    }
    return Database::StatementResult{};
  };

  auto expect_same_tables = [&](const char* when) {
    for (const char* name : {"P", "C"}) {
      ASSERT_EQ(real.catalog()->GetTable(name)->size(),
                shadow.catalog()->GetTable(name)->size())
          << when << " table " << name << " seed " << seed;
      std::vector<Row> a = real.catalog()->GetTable(name)->Snapshot();
      std::vector<Row> b = shadow.catalog()->GetTable(name)->Snapshot();
      SortRows(&a);
      SortRows(&b);
      ASSERT_EQ(a, b) << when << " table " << name << " seed " << seed;
    }
    std::string diff;
    ASSERT_TRUE(ViewMatchesRecompute(*real.catalog(), view->view_def(),
                                     view->view(), &diff))
        << when << " seed " << seed << ": " << diff;
  };

  for (int round = 0; round < 12; ++round) {
    if (rng.Chance(0.5)) {
      // A transaction of 1..4 statements; intentions recorded so the
      // shadow can replay them only if the commit succeeds.
      ASSERT_TRUE(real.BeginTransaction());
      std::vector<Stmt> stmts;
      int n = static_cast<int>(rng.Uniform(1, 4));
      for (int i = 0; i < n; ++i) {
        Stmt stmt = random_statement(real);
        apply(real, stmt);
        stmts.push_back(std::move(stmt));
      }
      bool explicit_rollback = rng.Chance(0.25);
      if (explicit_rollback) {
        real.Rollback();
      } else if (real.Commit().ok()) {
        // Survived: replay on the shadow (checks there must pass, since
        // the whole transaction validated).
        for (const Stmt& stmt : stmts) {
          Database::StatementResult r = apply(shadow, stmt);
          ASSERT_TRUE(r.ok()) << r.error;
        }
      }
      expect_same_tables("after txn");
    } else {
      // Autocommit statement: apply to both; row-wise rejections must
      // agree (same FK state on both sides).
      Stmt stmt = random_statement(real);
      Database::StatementResult r1 = apply(real, stmt);
      Database::StatementResult r2 = apply(shadow, stmt);
      ASSERT_EQ(r1.ok(), r2.ok());
      ASSERT_EQ(r1.rows_affected, r2.rows_affected);
      expect_same_tables("after autocommit");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTraffic, DatabasePropertyTest,
                         ::testing::Range<uint64_t>(801, 831));

}  // namespace
}  // namespace ojv
