#include "deferred/consolidate.h"

#include <algorithm>

#include "common/check.h"

namespace ojv {
namespace deferred {

NetFold::NetFold(std::vector<int> key_positions)
    : key_positions_(std::move(key_positions)) {}

namespace {

Row KeyOf(const Row& row, const std::vector<int>& key_positions) {
  Row key;
  key.reserve(key_positions.size());
  for (int p : key_positions) key.push_back(row[static_cast<size_t>(p)]);
  return key;
}

}  // namespace

void NetFold::AddInsert(const Row& row) {
  ++raw_entries_;
  NetState& state = by_key_[KeyOf(row, key_positions_)];
  // A second insert of a live key cannot be logged: the base table
  // rejects duplicate keys at statement time.
  OJV_CHECK(!state.has_new, "duplicate pending insert for one key");
  state.has_new = true;
  state.new_row = row;
}

void NetFold::AddDelete(const Row& row) {
  ++raw_entries_;
  NetState& state = by_key_[KeyOf(row, key_positions_)];
  if (state.has_new) {
    // Deleting a row inserted within the batch: the insert never
    // reaches the view. With a pre-image too, the key collapses back
    // to a pure delete of the original row.
    state.has_new = false;
    state.new_row.clear();
  } else {
    OJV_CHECK(!state.has_old, "duplicate pending delete for one key");
    state.has_old = true;
    state.old_row = row;
  }
}

NetFold::Net NetFold::Take() {
  Net net;
  net.raw_entries = raw_entries_;
  for (auto& [key, state] : by_key_) {
    if (state.has_old && state.has_new && state.old_row == state.new_row) {
      // delete + reinsert of the identical row: no net effect.
      continue;
    }
    if (state.has_old && state.has_new) ++net.update_pairs;
    if (state.has_old) net.deletes.push_back(std::move(state.old_row));
    if (state.has_new) net.inserts.push_back(std::move(state.new_row));
  }
  net.cancelled = net.raw_entries -
                  static_cast<int64_t>(net.deletes.size()) -
                  static_cast<int64_t>(net.inserts.size());
  by_key_.clear();
  raw_entries_ = 0;
  return net;
}

namespace {

TableDelta ConsolidateTable(const std::string& table,
                            const std::vector<DeltaEntry>& entries,
                            const std::vector<int>& key_positions) {
  NetFold fold(key_positions);
  for (const DeltaEntry& entry : entries) {
    if (entry.op == DeltaOp::kInsert) {
      fold.AddInsert(entry.row);
    } else {
      fold.AddDelete(entry.row);
    }
  }
  NetFold::Net net = fold.Take();

  TableDelta delta;
  delta.table = table;
  delta.first_seq = entries.front().seq;
  delta.raw_entries = net.raw_entries;
  delta.deletes = std::move(net.deletes);
  delta.inserts = std::move(net.inserts);
  delta.update_pairs = net.update_pairs;
  delta.cancelled = net.cancelled;
  return delta;
}

}  // namespace

std::vector<TableDelta> Consolidate(
    const std::map<std::string, std::vector<DeltaEntry>>& pending,
    const Catalog& catalog) {
  std::vector<TableDelta> deltas;
  for (const auto& [table, entries] : pending) {
    if (entries.empty()) continue;
    const Table* base = catalog.GetTable(table);
    OJV_CHECK(base != nullptr, "pending entries for unknown table");
    TableDelta delta = ConsolidateTable(table, entries, base->key_positions());
    if (delta.deletes.empty() && delta.inserts.empty()) {
      // Fully cancelled: nothing for the maintainers, but keep the raw /
      // cancelled counts visible to the caller's stats.
    }
    deltas.push_back(std::move(delta));
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const TableDelta& a, const TableDelta& b) {
              return a.first_seq < b.first_seq;
            });
  return deltas;
}

}  // namespace deferred
}  // namespace ojv
