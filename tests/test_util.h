#ifndef OJV_TESTS_TEST_UTIL_H_
#define OJV_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "ivm/view_def.h"

namespace ojv {
namespace testing_util {

/// Creates the four abstract tables of the paper's running example:
/// R, S, T, U — each with key "<x>_id" and two small-domain join columns
/// "<x>_a", "<x>_b" (nullable) plus a payload "<x>_v".
void CreateRstuSchema(Catalog* catalog);

/// The running-example view (paper equation (1)):
///   V1 = (R fo_{p(r,s)} S) lo_{p(r,t)} (T fo_{p(t,u)} U)
/// with p(r,s): R.r_a = S.s_a, p(r,t): R.r_b = T.t_b,
/// p(t,u): T.t_a = U.u_a. Outputs all columns of all four tables.
ViewDef MakeV1(const Catalog& catalog);

/// Random rows for an RSTU-style table; join columns are drawn from
/// [0, domain) so joins have realistic fan-out, keys are consecutive
/// starting at *next_key.
std::vector<Row> RandomRstuRows(const std::string& table_prefix, Rng* rng,
                                int n, int domain, int64_t* next_key);

/// Populates all four tables with `rows_per_table` random rows.
void PopulateRandomRstu(Catalog* catalog, Rng* rng, int rows_per_table,
                        int domain);

/// Keys of up to n random existing rows of `table`.
std::vector<Row> SampleKeys(const Table& table, Rng* rng, int n);

/// Creates `num_tables` RSTU-style tables named A, B, C, ... (key
/// "<x>_id", join columns "<x>_a"/"<x>_b", payload "<x>_v").
std::vector<std::string> CreateRandomSchema(Catalog* catalog, int num_tables);

/// Builds a random SPOJ view over the given tables: a random join tree
/// whose joins draw uniformly from {inner, lo, ro, fo} with equijoin
/// predicates between random tables of the two sides, plus occasional
/// single-table selections. The output is every column of every table,
/// so every maintenance strategy is applicable.
ViewDef RandomSpojView(const Catalog& catalog,
                       const std::vector<std::string>& tables, Rng* rng);

}  // namespace testing_util
}  // namespace ojv

#endif  // OJV_TESTS_TEST_UTIL_H_
