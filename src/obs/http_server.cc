#include "obs/http_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace ojv {
namespace obs {

namespace {

void SendResponse(int fd, const char* status, const char* content_type,
                  const std::string& body) {
  std::ostringstream head;
  head << "HTTP/1.0 " << status << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  std::string header = head.str();
  // Best-effort sends; MSG_NOSIGNAL so a scraper hanging up mid-response
  // yields EPIPE instead of a process-killing SIGPIPE.
  (void)!send(fd, header.data(), header.size(), MSG_NOSIGNAL);
  (void)!send(fd, body.data(), body.size(), MSG_NOSIGNAL);
}

}  // namespace

bool HttpExportServer::Start(int port) {
  if constexpr (!kEnabled) {
    (void)port;
    return false;
  }
  if (running()) return false;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 8) != 0) {
    close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_.store(fd);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void HttpExportServer::Stop() {
  if constexpr (!kEnabled) return;
  int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() wakes the blocked accept() so the serve thread exits.
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  if (thread_.joinable()) thread_.join();
  port_ = 0;
}

void HttpExportServer::Serve() {
  for (;;) {
    int fd = listen_fd_.load();
    if (fd < 0) return;
    int client = accept(fd, nullptr, nullptr);
    if (client < 0) {
      // Stop() closed the socket (or a transient accept error): check
      // the fd again rather than spinning on a dead descriptor.
      if (listen_fd_.load() < 0) return;
      continue;
    }
    Handle(client);
    close(client);
  }
}

void HttpExportServer::Handle(int client_fd) {
  // Read the request line; headers past the first 4 KiB are irrelevant
  // to a GET router.
  char buf[4096];
  ssize_t n = read(client_fd, buf, sizeof(buf) - 1);
  if (n <= 0) return;
  buf[n] = '\0';
  const char* line_end = std::strstr(buf, "\r\n");
  std::string request_line(buf, line_end != nullptr
                                    ? static_cast<size_t>(line_end - buf)
                                    : static_cast<size_t>(n));
  std::istringstream parse(request_line);
  std::string method, path;
  parse >> method >> path;
  if (method != "GET") {
    SendResponse(client_fd, "405 Method Not Allowed", "text/plain",
                 "only GET here\n");
    return;
  }
  std::ostringstream body;
  if (path == "/metrics") {
    WritePrometheus(Registry::Global(), body);
    SendResponse(client_fd, "200 OK", "text/plain; version=0.0.4", body.str());
  } else if (path == "/snapshot.json") {
    WriteSnapshotJson(Registry::Global(), body);
    SendResponse(client_fd, "200 OK", "application/json", body.str());
  } else if (path == "/flight.json") {
    FlightRecorder::Global().WriteChromeTrace(body);
    SendResponse(client_fd, "200 OK", "application/json", body.str());
  } else if (path == "/") {
    SendResponse(client_fd, "200 OK", "text/plain",
                 "ojv telemetry: /metrics /snapshot.json /flight.json\n");
  } else {
    SendResponse(client_fd, "404 Not Found", "text/plain", "not found\n");
  }
}

}  // namespace obs
}  // namespace ojv
