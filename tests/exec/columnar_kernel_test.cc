// Unit tests for the columnar executor's building blocks: the explicit
// SIMD kernels against their pinned scalar references at vector-boundary
// lengths, the ChunkedRelation round-trip (including type degradation
// and null-extension masks), and the compiled predicate's SQL tri-state
// truth tables.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "algebra/scalar_expr.h"
#include "common/rng.h"
#include "exec/columnar/chunked_relation.h"
#include "exec/columnar/predicate.h"
#include "exec/columnar/simd.h"
#include "exec/relation.h"

namespace ojv {
namespace columnar {
namespace {

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe};

// Lengths straddling every vector boundary of the active backend: 0, 1,
// one lane minus/plus one, exactly one lane, a few lanes plus a tail,
// and a "large" length.
std::vector<int64_t> BoundaryLengths() {
  const int64_t lanes = simd::LanesI64();
  std::vector<int64_t> lengths = {0, 1, lanes - 1, lanes, lanes + 1,
                                  4 * lanes + 3, 1000};
  std::vector<int64_t> out;
  for (int64_t n : lengths) {
    if (n >= 0) out.push_back(n);
  }
  return out;
}

TEST(SimdKernelTest, BackendReportsLanes) {
  EXPECT_GE(simd::LanesI64(), 1);
  std::string name = simd::BackendName();
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar") << name;
  EXPECT_EQ(simd::VectorBackendActive(), name != "scalar");
}

TEST(SimdKernelTest, CmpI64LitMatchesScalar) {
  Rng rng(1);
  const int64_t interesting[] = {0, 1, -1, 42,
                                 std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()};
  for (int64_t n : BoundaryLengths()) {
    std::vector<int64_t> vals(static_cast<size_t>(n));
    for (auto& v : vals) v = rng.Uniform(-5, 4);
    for (int64_t lit : interesting) {
      if (n > 0) vals[static_cast<size_t>(n / 2)] = lit;  // force equality
      for (CompareOp op : kAllOps) {
        std::vector<uint8_t> got(static_cast<size_t>(n) + 1, 0xee);
        std::vector<uint8_t> want(static_cast<size_t>(n) + 1, 0xee);
        simd::CmpI64Lit(vals.data(), n, op, lit, got.data());
        simd::scalar::CmpI64Lit(vals.data(), n, op, lit, want.data());
        EXPECT_EQ(got, want) << "n=" << n << " op=" << CompareOpName(op)
                             << " lit=" << lit;
      }
    }
  }
}

TEST(SimdKernelTest, CmpI64ColsMatchesScalar) {
  Rng rng(2);
  for (int64_t n : BoundaryLengths()) {
    std::vector<int64_t> a(static_cast<size_t>(n));
    std::vector<int64_t> b(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] = rng.Uniform(-3, 2);
      b[static_cast<size_t>(i)] = rng.Uniform(-3, 2);
    }
    for (CompareOp op : kAllOps) {
      std::vector<uint8_t> got(static_cast<size_t>(n) + 1, 0xee);
      std::vector<uint8_t> want(static_cast<size_t>(n) + 1, 0xee);
      simd::CmpI64Cols(a.data(), b.data(), n, op, got.data());
      simd::scalar::CmpI64Cols(a.data(), b.data(), n, op, want.data());
      EXPECT_EQ(got, want) << "n=" << n << " op=" << CompareOpName(op);
    }
  }
}

TEST(SimdKernelTest, CmpF64LitMatchesScalar) {
  Rng rng(3);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (int64_t n : BoundaryLengths()) {
    std::vector<double> vals(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      vals[static_cast<size_t>(i)] = static_cast<double>(rng.Uniform(-4, 4)) * 0.5;
    }
    if (n > 2) {
      vals[0] = nan;
      vals[1] = inf;
      vals[2] = -inf;
    }
    for (double lit : {0.0, -1.5, 2.0}) {
      for (CompareOp op : kAllOps) {
        std::vector<uint8_t> got(static_cast<size_t>(n) + 1, 0xee);
        std::vector<uint8_t> want(static_cast<size_t>(n) + 1, 0xee);
        simd::CmpF64Lit(vals.data(), n, op, lit, got.data());
        simd::scalar::CmpF64Lit(vals.data(), n, op, lit, want.data());
        EXPECT_EQ(got, want) << "n=" << n << " op=" << CompareOpName(op)
                             << " lit=" << lit;
      }
    }
  }
}

TEST(SimdKernelTest, HashKernelsMatchScalar) {
  Rng rng(4);
  for (int64_t n : BoundaryLengths()) {
    std::vector<int64_t> vals(static_cast<size_t>(n));
    for (auto& v : vals) {
      v = rng.Uniform(-500000, 500000);
    }
    std::vector<uint64_t> got(static_cast<size_t>(n) + 1, 0xabcdef);
    std::vector<uint64_t> want(static_cast<size_t>(n) + 1, 0xabcdef);
    simd::HashI64(vals.data(), n, got.data());
    simd::scalar::HashI64(vals.data(), n, want.data());
    EXPECT_EQ(got, want) << "HashI64 n=" << n;

    // Combine starts from the per-element hashes just computed.
    std::vector<int64_t> more(static_cast<size_t>(n));
    for (auto& v : more) v = rng.Uniform(0, 96);
    got.resize(static_cast<size_t>(n));
    want.resize(static_cast<size_t>(n));
    simd::HashCombineI64(more.data(), n, got.data());
    simd::scalar::HashCombineI64(more.data(), n, want.data());
    EXPECT_EQ(got, want) << "HashCombineI64 n=" << n;
  }
}

TEST(SimdKernelTest, GatherMatchesScalar) {
  Rng rng(5);
  const int64_t src_n = 257;
  std::vector<int64_t> src_i(src_n);
  std::vector<double> src_f(src_n);
  for (int64_t i = 0; i < src_n; ++i) {
    src_i[static_cast<size_t>(i)] = i * 3 - 100;
    src_f[static_cast<size_t>(i)] = i * 0.25 - 10;
  }
  for (int64_t n : BoundaryLengths()) {
    std::vector<int32_t> idx(static_cast<size_t>(n));
    for (auto& v : idx) v = static_cast<int32_t>(rng.Uniform(0, src_n - 1));
    std::vector<int64_t> got_i(static_cast<size_t>(n) + 1, -7777);
    std::vector<int64_t> want_i(static_cast<size_t>(n) + 1, -7777);
    simd::GatherI64(src_i.data(), idx.data(), n, got_i.data());
    simd::scalar::GatherI64(src_i.data(), idx.data(), n, want_i.data());
    EXPECT_EQ(got_i, want_i) << "GatherI64 n=" << n;

    std::vector<double> got_f(static_cast<size_t>(n) + 1, -7777.0);
    std::vector<double> want_f(static_cast<size_t>(n) + 1, -7777.0);
    simd::GatherF64(src_f.data(), idx.data(), n, got_f.data());
    simd::scalar::GatherF64(src_f.data(), idx.data(), n, want_f.data());
    EXPECT_EQ(got_f, want_f) << "GatherF64 n=" << n;
  }
}

// --- ChunkedRelation round-trip ---

BoundSchema MixedSchema() {
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"t", "k", ValueType::kInt64, 0});
  schema.AddColumn(BoundColumn{"t", "f", ValueType::kFloat64, -1});
  schema.AddColumn(BoundColumn{"t", "s", ValueType::kString, -1});
  schema.AddColumn(BoundColumn{"u", "k", ValueType::kInt64, 0});
  return schema;
}

Relation MixedRelation(int64_t rows) {
  Relation rel(MixedSchema());
  for (int64_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(i % 5 == 0 ? Value::Null() : Value::Int64(i));
    row.push_back(i % 3 == 0 ? Value::Null() : Value::Float64(i * 0.5));
    row.push_back(i % 4 == 0 ? Value::Null()
                             : Value::String("s" + std::to_string(i % 7)));
    row.push_back(i % 2 == 0 ? Value::Null() : Value::Int64(i * 10));
    rel.Add(std::move(row));
  }
  return rel;
}

TEST(ChunkedRelationTest, RoundTripPreservesRowsExactly) {
  for (int64_t chunk_rows : {1, 7, 1024}) {
    Relation in = MixedRelation(100);
    ChunkedRelation chunked = ChunkedRelation::FromRelation(in, chunk_rows);
    EXPECT_EQ(chunked.num_rows(), in.size());
    EXPECT_EQ(chunked.num_chunks(), (in.size() + chunk_rows - 1) / chunk_rows);
    Relation out = chunked.ToRelation();
    ASSERT_EQ(out.size(), in.size());
    // Conversion must preserve row order and every value exactly, not
    // just as a bag.
    for (int64_t r = 0; r < in.size(); ++r) {
      for (size_t c = 0; c < in.row(r).size(); ++c) {
        EXPECT_TRUE(in.row(r)[c] == out.row(r)[c])
            << "chunk_rows=" << chunk_rows << " row " << r << " col " << c;
      }
    }
  }
}

TEST(ChunkedRelationTest, NullMasksMatchRowEngine) {
  Relation in = MixedRelation(100);
  ChunkedRelation chunked = ChunkedRelation::FromRelation(in, 7);
  ASSERT_EQ(chunked.mask_tables().size(), 2u);  // t and u both carry keys
  for (size_t t = 0; t < chunked.mask_tables().size(); ++t) {
    const std::string& table = chunked.mask_tables()[t];
    for (int64_t r = 0; r < in.size(); ++r) {
      EXPECT_EQ(chunked.IsNullExtended(static_cast<int>(t), r),
                in.IsNullExtendedOn(in.row(r), table))
          << table << " row " << r;
    }
  }
}

TEST(ChunkedRelationTest, MistypedColumnDegradesLosslessly) {
  // Declared kInt64, but one value is a string: the column must degrade
  // to ColumnClass::kValue and still round-trip every value.
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"t", "x", ValueType::kInt64, -1});
  Relation rel(schema);
  rel.Add({Value::Int64(1)});
  rel.Add({Value::String("oops")});
  rel.Add({Value::Null()});
  rel.Add({Value::Float64(2.5)});
  ChunkedRelation chunked = ChunkedRelation::FromRelation(rel, 2);
  EXPECT_EQ(chunked.column(0).cls, ColumnClass::kValue);
  Relation out = chunked.ToRelation();
  ASSERT_EQ(out.size(), rel.size());
  for (int64_t r = 0; r < rel.size(); ++r) {
    EXPECT_TRUE(rel.row(r)[0] == out.row(r)[0]) << "row " << r;
  }
}

TEST(ChunkedRelationTest, EmptyRelationRoundTrips) {
  Relation in(MixedSchema());
  ChunkedRelation chunked = ChunkedRelation::FromRelation(in, 1024);
  EXPECT_EQ(chunked.num_rows(), 0);
  EXPECT_EQ(chunked.num_chunks(), 0);
  EXPECT_TRUE(chunked.ToRelation().empty());
}

// --- Predicate tri-state ---

// Expected SQL tri-state of `col > 2` for the value at row r of the
// relation built below, then AND/OR combinations per Kleene logic.
TEST(ColumnarPredicateTest, CompareProducesSqlTriState) {
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"t", "a", ValueType::kInt64, -1});
  Relation rel(schema);
  rel.Add({Value::Int64(1)});   // a > 2 : false
  rel.Add({Value::Int64(5)});   // a > 2 : true
  rel.Add({Value::Null()});     // a > 2 : unknown
  rel.Add({Value::Int64(3)});   // a > 2 : true
  ChunkedRelation chunked = ChunkedRelation::FromRelation(rel, 1024);

  ScalarExprPtr gt = ScalarExpr::Compare(CompareOp::kGt,
                                         ScalarExpr::Column("t", "a"),
                                         ScalarExpr::Literal(Value::Int64(2)));
  ColumnarPredicate pred = ColumnarPredicate::Compile(gt, chunked);
  EXPECT_TRUE(pred.has_simd_leaf());
  int8_t truth[4];
  pred.EvalTruth(chunked, 0, 4, truth);
  EXPECT_EQ(truth[0], 0);
  EXPECT_EQ(truth[1], 1);
  EXPECT_EQ(truth[2], -1);
  EXPECT_EQ(truth[3], 1);

  SelVector sel;
  pred.SelectInto(chunked, 0, 4, &sel);
  EXPECT_EQ(sel, (SelVector{1, 3}));  // unknown rows are not selected
}

TEST(ColumnarPredicateTest, KleeneAndOr) {
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"t", "a", ValueType::kInt64, -1});
  schema.AddColumn(BoundColumn{"t", "b", ValueType::kInt64, -1});
  Relation rel(schema);
  // (a > 0, b > 0) truth pairs: (T,T) (T,U) (U,F) (F,U) (U,U)
  rel.Add({Value::Int64(1), Value::Int64(1)});
  rel.Add({Value::Int64(1), Value::Null()});
  rel.Add({Value::Null(), Value::Int64(-1)});
  rel.Add({Value::Int64(-1), Value::Null()});
  rel.Add({Value::Null(), Value::Null()});
  ChunkedRelation chunked = ChunkedRelation::FromRelation(rel, 1024);

  auto gt0 = [](const char* col) {
    return ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Column("t", col),
                               ScalarExpr::Literal(Value::Int64(0)));
  };
  std::vector<ScalarExprPtr> both;
  both.push_back(gt0("a"));
  both.push_back(gt0("b"));
  ColumnarPredicate conj =
      ColumnarPredicate::Compile(ScalarExpr::And(both), chunked);
  int8_t truth[5];
  conj.EvalTruth(chunked, 0, 5, truth);
  EXPECT_EQ(truth[0], 1);   // T AND T
  EXPECT_EQ(truth[1], -1);  // T AND U
  EXPECT_EQ(truth[2], 0);   // U AND F = F
  EXPECT_EQ(truth[3], 0);   // F AND U = F
  EXPECT_EQ(truth[4], -1);  // U AND U

  std::vector<ScalarExprPtr> either;
  either.push_back(gt0("a"));
  either.push_back(gt0("b"));
  ColumnarPredicate disj =
      ColumnarPredicate::Compile(ScalarExpr::Or(either), chunked);
  disj.EvalTruth(chunked, 0, 5, truth);
  EXPECT_EQ(truth[0], 1);   // T OR T
  EXPECT_EQ(truth[1], 1);   // T OR U = T
  EXPECT_EQ(truth[2], -1);  // U OR F
  EXPECT_EQ(truth[3], -1);  // F OR U
  EXPECT_EQ(truth[4], -1);  // U OR U
}

TEST(ColumnarPredicateTest, NotAndIsNull) {
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"t", "a", ValueType::kInt64, -1});
  Relation rel(schema);
  rel.Add({Value::Int64(5)});
  rel.Add({Value::Null()});
  ChunkedRelation chunked = ChunkedRelation::FromRelation(rel, 1024);

  ColumnarPredicate is_null = ColumnarPredicate::Compile(
      ScalarExpr::IsNull(ScalarExpr::Column("t", "a")), chunked);
  int8_t truth[2];
  is_null.EvalTruth(chunked, 0, 2, truth);
  EXPECT_EQ(truth[0], 0);
  EXPECT_EQ(truth[1], 1);  // IS NULL is never unknown

  ColumnarPredicate not_gt = ColumnarPredicate::Compile(
      ScalarExpr::Not(ScalarExpr::Compare(
          CompareOp::kGt, ScalarExpr::Column("t", "a"),
          ScalarExpr::Literal(Value::Int64(0)))),
      chunked);
  not_gt.EvalTruth(chunked, 0, 2, truth);
  EXPECT_EQ(truth[0], 0);   // NOT true
  EXPECT_EQ(truth[1], -1);  // NOT unknown = unknown
}

TEST(ColumnarPredicateTest, StringCompareTakesGeneralPath) {
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"t", "s", ValueType::kString, -1});
  Relation rel(schema);
  rel.Add({Value::String("apple")});
  rel.Add({Value::String("banana")});
  rel.Add({Value::Null()});
  ChunkedRelation chunked = ChunkedRelation::FromRelation(rel, 1024);

  ColumnarPredicate pred = ColumnarPredicate::Compile(
      ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column("t", "s"),
                          ScalarExpr::Literal(Value::String("banana"))),
      chunked);
  int8_t truth[3];
  pred.EvalTruth(chunked, 0, 3, truth);
  EXPECT_EQ(truth[0], 0);
  EXPECT_EQ(truth[1], 1);
  EXPECT_EQ(truth[2], -1);
}

}  // namespace
}  // namespace columnar
}  // namespace ojv
