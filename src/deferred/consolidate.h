#ifndef OJV_DEFERRED_CONSOLIDATE_H_
#define OJV_DEFERRED_CONSOLIDATE_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "deferred/delta_log.h"

namespace ojv {
namespace deferred {

/// Net effect of a pending batch on one base table, keyed by the table's
/// unique key:
///   - a key inserted then deleted within the batch cancels entirely;
///   - a key deleted then reinserted folds into an update pair (the
///     original pre-image in `deletes`, the final post-image in
///     `inserts`) — or cancels too when the reinserted row is identical;
///   - surviving inserts/deletes keep the batch's final image.
/// Feeding the maintainers the net delta instead of the raw entry stream
/// is where deferred batching wins: the paper's left-deep primary-delta
/// pipeline (§4) scales with |ΔT|.
struct TableDelta {
  std::string table;
  /// Sequence number of the first raw entry; deltas are replayed in this
  /// order so the refresh walks tables as the statements first did.
  uint64_t first_seq = 0;
  std::vector<Row> deletes;  // net pre-images to remove
  std::vector<Row> inserts;  // net post-images to add
  int64_t raw_entries = 0;
  /// Keys carrying both a pre- and a post-image. Any such pair forces
  /// the constraint-free plan set (§6 caveat 1): between its delete and
  /// its reinsert a foreign key need not hold.
  int64_t update_pairs = 0;
  int64_t cancelled = 0;  // raw entries removed by consolidation
};

/// Consolidates pending log entries (per table, in sequence order — the
/// shape DeltaLog::PendingFor returns) into net per-table deltas, ordered
/// by first pending entry. Applying each delta's `deletes` then `inserts`
/// to the batch's pre-state reproduces its post-state exactly.
std::vector<TableDelta> Consolidate(
    const std::map<std::string, std::vector<DeltaEntry>>& pending,
    const Catalog& catalog);

}  // namespace deferred
}  // namespace ojv

#endif  // OJV_DEFERRED_CONSOLIDATE_H_
