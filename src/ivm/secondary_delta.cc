#include "ivm/secondary_delta.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "exec/evaluator.h"
#include "obs/metrics.h"

namespace ojv {
namespace {

size_t HashPositions(const Row& row, const std::vector<int>& positions) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int p : positions) {
    h ^= row[static_cast<size_t>(p)].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

// nn(t): the table's first key column (non-nullable in the base table) is
// non-null in the row.
ScalarExprPtr NonNullTest(const BoundSchema& schema, const std::string& table) {
  const std::vector<int>& keys = schema.KeyPositions(table);
  OJV_CHECK(!keys.empty(), "null test requires the table's key in the view");
  const BoundColumn& col = schema.column(keys[0]);
  return ScalarExpr::Not(
      ScalarExpr::IsNull(ScalarExpr::Column(col.table, col.column)));
}

ScalarExprPtr NullTest(const BoundSchema& schema, const std::string& table) {
  const std::vector<int>& keys = schema.KeyPositions(table);
  OJV_CHECK(!keys.empty(), "null test requires the table's key in the view");
  const BoundColumn& col = schema.column(keys[0]);
  return ScalarExpr::IsNull(ScalarExpr::Column(col.table, col.column));
}

}  // namespace

SecondaryDeltaEngine::SecondaryDeltaEngine(const ViewDef& view_def,
                                           const Catalog& catalog,
                                           const std::vector<Term>& terms,
                                           const MaintenanceGraph& graph,
                                           const std::string& updated_table)
    : view_def_(view_def),
      catalog_(catalog),
      terms_(terms),
      graph_(graph),
      updated_table_(updated_table) {
  const BoundSchema& schema = view_def_.output_schema();
  // A table is null-extended iff its first key column (non-nullable in
  // the base table) is NULL, so one probe position per table suffices.
  auto first_key_of = [&schema](const std::string& table) {
    const std::vector<int>& keys = schema.KeyPositions(table);
    OJV_CHECK(!keys.empty(), "null test requires the table's key in the view");
    return keys[0];
  };
  for (int i : graph.IndirectTerms()) {
    TermPlan plan;
    plan.term_index = i;
    const Term& term = terms_[static_cast<size_t>(i)];
    for (const std::string& t : term.source) plan.ti_tables.push_back(t);
    for (const std::string& t : view_def_.tables()) {
      if (term.source.count(t) == 0) plan.null_tables.push_back(t);
    }
    plan.direct_parents = graph.DirectParents(i);
    OJV_CHECK(!plan.direct_parents.empty(),
              "indirect term must have a directly affected parent");
    for (int parent : graph.IndirectParents(i)) {
      for (const std::string& t :
           terms_[static_cast<size_t>(parent)].source) {
        if (term.source.count(t) == 0) plan.indirect_parent_extra.insert(t);
      }
    }
    // Resolve every schema position the per-row probes need, once.
    for (const std::string& t : plan.ti_tables) {
      plan.ti_null_probes.push_back(first_key_of(t));
      for (int p : schema.KeyPositions(t)) plan.ti_key_positions.push_back(p);
    }
    for (const std::string& t : plan.null_tables) {
      plan.null_table_probes.push_back(first_key_of(t));
    }
    for (int parent : plan.direct_parents) {
      std::vector<int> probes;
      for (const std::string& t :
           terms_[static_cast<size_t>(parent)].source) {
        probes.push_back(first_key_of(t));
      }
      plan.parent_nn_probes.push_back(std::move(probes));
    }
    plan.first_ti_keys = schema.KeyPositions(plan.ti_tables[0]);
    plans_.push_back(std::move(plan));
  }
}

bool SecondaryDeltaEngine::SatisfiesPi(const Row& delta_row,
                                       const TermPlan& plan) const {
  // Pi = ∨ over directly affected parents Ek of nn(Tk).
  for (const std::vector<int>& probes : plan.parent_nn_probes) {
    bool all_non_null = true;
    for (int p : probes) {
      if (delta_row[static_cast<size_t>(p)].is_null()) {
        all_non_null = false;
        break;
      }
    }
    if (all_non_null) return true;
  }
  return false;
}

bool SecondaryDeltaEngine::IsOrphanOf(const Row& view_row,
                                      const TermPlan& plan) const {
  for (int p : plan.ti_null_probes) {
    if (view_row[static_cast<size_t>(p)].is_null()) return false;
  }
  for (int p : plan.null_table_probes) {
    if (!view_row[static_cast<size_t>(p)].is_null()) return false;
  }
  return true;
}

bool SecondaryDeltaEngine::TiKeysMatch(const Row& a, const Row& b,
                                       const TermPlan& plan) const {
  for (int p : plan.ti_key_positions) {
    const Value& va = a[static_cast<size_t>(p)];
    const Value& vb = b[static_cast<size_t>(p)];
    if (va.is_null() || vb.is_null() || va != vb) return false;
  }
  return true;
}

std::vector<int64_t> SecondaryDeltaEngine::LookupTi(
    const MaterializedView& view, const Row& probe,
    const TermPlan& plan) const {
  std::vector<int64_t> hits =
      view.LookupByTableKey(plan.ti_tables[0], probe, plan.first_ti_keys);
  std::vector<int64_t> out;
  for (int64_t id : hits) {
    if (TiKeysMatch(view.row(id), probe, plan)) out.push_back(id);
  }
  return out;
}


std::vector<Row> SecondaryDeltaEngine::CandidatesFromBaseTables(
    const Relation& primary_delta, const Relation& delta_t, bool is_insert) {
  std::vector<Row> out;
  for (const TermPlan& plan : plans_) {
    std::vector<Row> candidates =
        ComputeFromBaseTables(plan, primary_delta, delta_t, is_insert);
    out.insert(out.end(), std::make_move_iterator(candidates.begin()),
               std::make_move_iterator(candidates.end()));
  }
  return out;
}

SecondaryStrategy SecondaryDeltaEngine::ResolveStrategy(
    SecondaryStrategy requested, int64_t primary_rows) const {
  if (requested != SecondaryStrategy::kAuto) return requested;
  // Base-table plan cost: every parent fragment re-joins its Rk tables
  // with the updated table's state. View plan cost: one indexed probe
  // per delta row per term. Sum both over the indirect terms and pick.
  int64_t base_cost = 0;
  for (const TermPlan& plan : plans_) {
    for (int parent_index : plan.direct_parents) {
      const Term& parent = terms_[static_cast<size_t>(parent_index)];
      for (const std::string& t : parent.source) {
        if (t == updated_table_ ||
            std::find(plan.ti_tables.begin(), plan.ti_tables.end(), t) ==
                plan.ti_tables.end()) {
          base_cost += catalog_.GetTable(t)->size();
        }
      }
    }
  }
  int64_t view_cost = primary_rows * static_cast<int64_t>(plans_.size());
  return view_cost <= base_cost ? SecondaryStrategy::kFromView
                                : SecondaryStrategy::kFromBaseTables;
}

const char* SecondaryStrategyName(SecondaryStrategy strategy) {
  switch (strategy) {
    case SecondaryStrategy::kAuto:
      return "auto";
    case SecondaryStrategy::kFromView:
      return "from_view";
    case SecondaryStrategy::kFromBaseTables:
      return "from_base_tables";
  }
  return "?";
}

namespace {

// One strategy-resolution record per apply: which plan kAuto (or an
// explicit request) landed on, for the trace and the global counters.
void RecordStrategy(obs::TraceContext* trace, SecondaryStrategy requested,
                    SecondaryStrategy resolved, int64_t primary_rows,
                    size_t num_terms) {
  if constexpr (obs::kEnabled) {
    static obs::Counter& from_view =
        obs::Registry::Global().GetCounter("ojv.secondary.from_view");
    static obs::Counter& from_base =
        obs::Registry::Global().GetCounter("ojv.secondary.from_base");
    (resolved == SecondaryStrategy::kFromView ? from_view : from_base).Add(1);
    if (trace != nullptr) {
      trace->RecordComplete(
          "ivm.secondary.strategy", "ivm", trace->NowMicros(), 0,
          {{"primary_rows", primary_rows},
           {"indirect_terms", static_cast<int64_t>(num_terms)}},
          {{"requested", SecondaryStrategyName(requested)},
           {"resolved", SecondaryStrategyName(resolved)}});
    }
  }
}

}  // namespace

int64_t SecondaryDeltaEngine::ApplyAfterInsert(SecondaryStrategy strategy,
                                               const Relation& primary_delta,
                                               const Relation& delta_t,
                                               MaterializedView* view) {
  SecondaryStrategy requested = strategy;
  strategy = ResolveStrategy(strategy, primary_delta.size());
  RecordStrategy(trace_, requested, strategy, primary_delta.size(),
                 plans_.size());
  int64_t affected = 0;
  for (const TermPlan& plan : plans_) {
    if (strategy == SecondaryStrategy::kFromView) {
      affected += DeleteOrphansFromView(plan, primary_delta, view);
    } else {
      std::vector<Row> candidates = ComputeFromBaseTables(
          plan, primary_delta, delta_t, /*is_insert=*/true);
      affected += DeleteCandidateOrphans(candidates, plan, view);
    }
  }
  return affected;
}

int64_t SecondaryDeltaEngine::ApplyAfterDelete(SecondaryStrategy strategy,
                                               const Relation& primary_delta,
                                               MaterializedView* view) {
  SecondaryStrategy requested = strategy;
  strategy = ResolveStrategy(strategy, primary_delta.size());
  RecordStrategy(trace_, requested, strategy, primary_delta.size(),
                 plans_.size());
  int64_t affected = 0;
  for (const TermPlan& plan : plans_) {
    if (strategy == SecondaryStrategy::kFromView) {
      affected += InsertOrphansFromView(plan, primary_delta, view);
    } else {
      Relation empty_delta;
      std::vector<Row> candidates = ComputeFromBaseTables(
          plan, primary_delta, empty_delta, /*is_insert=*/false);
      affected += InsertCandidateOrphans(candidates, plan, view);
    }
  }
  return affected;
}

int64_t SecondaryDeltaEngine::DeleteOrphansFromView(
    const TermPlan& plan, const Relation& primary_delta,
    MaterializedView* view) {
  // ΔDi = σ_{nn(Ti) ∧ n(Si)}(V + ΔV^D) ⋉_{eq(Ti)} σ_{Pi} ΔV^D,
  // driven from the (small) delta side through the view's Ti-key index.
  std::unordered_set<int64_t> to_delete;
  for (const Row& delta_row : primary_delta.rows()) {
    if (!SatisfiesPi(delta_row, plan)) continue;
    for (int64_t id : LookupTi(*view, delta_row, plan)) {
      if (IsOrphanOf(view->row(id), plan)) to_delete.insert(id);
    }
  }
  for (int64_t id : to_delete) view->DeleteById(id);
  return static_cast<int64_t>(to_delete.size());
}

int64_t SecondaryDeltaEngine::InsertOrphansFromView(
    const TermPlan& plan, const Relation& primary_delta,
    MaterializedView* view) {
  // ΔDi = (δ π_{Ti.*} σ_{Pi} ΔV^D) ▷_{eq(Ti)} (V − ΔV^D):
  // project deleted parent tuples onto Ti, dedup, then keep only those
  // with no remaining view row sharing the Ti key.
  const BoundSchema& schema = view_def_.output_schema();
  std::vector<int> ti_positions;
  for (int i = 0; i < schema.num_columns(); ++i) {
    bool in_ti = false;
    for (const std::string& t : plan.ti_tables) {
      if (schema.column(i).table == t) in_ti = true;
    }
    if (in_ti) ti_positions.push_back(i);
  }

  std::vector<Row> candidates;
  std::unordered_multimap<size_t, size_t> seen;
  for (const Row& delta_row : primary_delta.rows()) {
    if (!SatisfiesPi(delta_row, plan)) continue;
    Row candidate(static_cast<size_t>(schema.num_columns()), Value::Null());
    for (int p : ti_positions) {
      candidate[static_cast<size_t>(p)] = delta_row[static_cast<size_t>(p)];
    }
    size_t h = HashPositions(candidate, ti_positions);
    bool duplicate = false;
    auto range = seen.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (candidates[it->second] == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      seen.emplace(h, candidates.size());
      candidates.push_back(std::move(candidate));
    }
  }

  int64_t inserted = 0;
  for (Row& candidate : candidates) {
    if (LookupTi(*view, candidate, plan).empty()) {
      view->Insert(std::move(candidate));
      ++inserted;
    }
  }
  return inserted;
}

std::vector<Row> SecondaryDeltaEngine::ComputeFromBaseTables(
    const TermPlan& plan, const Relation& primary_delta,
    const Relation& delta_t, bool is_insert) {
  const BoundSchema& schema = view_def_.output_schema();
  const Term& term = terms_[static_cast<size_t>(plan.term_index)];

  Evaluator evaluator(&catalog_);
  evaluator.set_table_cache(cache_);
  evaluator.set_exec(exec_, pool_);
  evaluator.set_trace(trace_);
  evaluator.BindDelta("#primary", &primary_delta);

  // For an insertion, the paper's expressions need the *pre-insert*
  // state T± ▷ eq(T) ΔT. Rather than materializing it, the ΔT keys are
  // re-tagged under a pseudo table so the current table can be
  // anti-joined against them (a table cannot join itself under one tag).
  Relation delta_keys;
  ScalarExprPtr delta_key_pred;
  if (is_insert) {
    const Table* base = catalog_.GetTable(updated_table_);
    BoundSchema key_schema;
    std::vector<ScalarExprPtr> key_eq;
    for (size_t k = 0; k < base->key_columns().size(); ++k) {
      const std::string& col = base->key_columns()[k];
      key_schema.AddColumn(BoundColumn{
          "#dt", col,
          base->schema().column(base->key_positions()[k]).type, -1});
      key_eq.push_back(ScalarExpr::Compare(
          CompareOp::kEq, ScalarExpr::Column(updated_table_, col),
          ScalarExpr::Column("#dt", col)));
    }
    delta_keys = Relation(key_schema);
    for (const Row& row : delta_t.rows()) {
      Row key;
      for (int pos : base->key_positions()) {
        key.push_back(row[static_cast<size_t>(pos)]);
      }
      delta_keys.Add(std::move(key));
    }
    delta_key_pred = MakeConjunction(key_eq);
    evaluator.BindDelta("#dtkeys", &delta_keys);
  }

  // Qi = nn(Ti) ∧ n(extra tables of indirectly affected parents).
  std::vector<ScalarExprPtr> qi;
  for (const std::string& t : plan.ti_tables) {
    qi.push_back(NonNullTest(schema, t));
  }
  for (const std::string& t : plan.indirect_parent_extra) {
    qi.push_back(NullTest(schema, t));
  }

  // Candidates: δ π_{Ti.*} σ_{Qi} ΔV^D — evaluated first so the parent
  // fragments below can be pruned against them.
  std::vector<ColumnRef> ti_columns;
  for (int i = 0; i < schema.num_columns(); ++i) {
    const BoundColumn& col = schema.column(i);
    if (term.source.count(col.table) > 0) {
      ti_columns.push_back(ColumnRef{col.table, col.column});
    }
  }
  Relation candidates = evaluator.EvalToRelation(RelExpr::Dedup(
      RelExpr::Project(RelExpr::Select(RelExpr::DeltaScan("#primary"),
                                       MakeConjunction(qi)),
                       ti_columns)));
  if (candidates.empty()) return {};

  // The anti-join predicates below may reference Si columns the view
  // does not output (join columns that appear only inside a parent
  // predicate, like O.o_custkey in C ⟕ O when the view projects it
  // away). The view does carry every table's full unique key (§2), so
  // recover the missing values by key lookup against the base tables.
  {
    std::vector<ColumnRef> referenced;
    for (int parent_index : plan.direct_parents) {
      for (const ScalarExprPtr& c :
           terms_[static_cast<size_t>(parent_index)].predicates) {
        c->CollectColumns(&referenced);
      }
    }
    std::set<ColumnRef> seen;
    std::vector<ColumnRef> missing;
    for (const ColumnRef& ref : referenced) {
      if (term.source.count(ref.table) == 0) continue;
      if (candidates.schema().Find(ref) >= 0) continue;
      if (seen.insert(ref).second) missing.push_back(ref);
    }
    if (!missing.empty()) {
      candidates = EnrichCandidates(candidates, missing);
      if (candidates.empty()) return {};
    }
  }
  evaluator.BindDelta("#cands", &candidates);

  // One anti-semijoin per directly affected parent. The anti-join only
  // cares about parent-fragment rows that can match *some* candidate, so
  // each fragment input that the anti-join predicate touches is first
  // semijoined against the candidates — turning "join the base tables"
  // into "probe the base tables against a small hash" (the paper's
  // future-work remark about reusing partial results).
  RelExprPtr expr = RelExpr::DeltaScan("#cands");
  for (int parent_index : plan.direct_parents) {
    const Term& parent = terms_[static_cast<size_t>(parent_index)];
    std::set<std::string> rk;
    for (const std::string& t : parent.source) {
      if (term.source.count(t) == 0 && t != updated_table_) rk.insert(t);
    }
    // Classify the parent's conjuncts (paper §5.3 notation).
    std::vector<ScalarExprPtr> q_rk, q_t, q_rk_t, q_ip;
    for (const ScalarExprPtr& c : parent.predicates) {
      std::set<std::string> refs = c->ReferencedTables();
      bool in_si = false, in_rk = false, in_t = false;
      for (const std::string& r : refs) {
        if (term.source.count(r) > 0) in_si = true;
        if (rk.count(r) > 0) in_rk = true;
        if (r == updated_table_) in_t = true;
      }
      if (in_si && (in_rk || in_t)) {
        q_ip.push_back(c);
      } else if (in_rk && in_t) {
        q_rk_t.push_back(c);
      } else if (in_rk) {
        q_rk.push_back(c);
      } else if (in_t && refs.size() == 1) {
        q_t.push_back(c);
      }
      // Conjuncts entirely within Si already hold for the candidates.
    }
    OJV_CHECK(!q_ip.empty(),
              "parent term must connect to the candidate's tables");

    // Split the anti-join conjuncts by which fragment side they prune.
    std::vector<ScalarExprPtr> q_ip_t, q_ip_rk;
    for (const ScalarExprPtr& c : q_ip) {
      bool touches_t = c->ReferencedTables().count(updated_table_) > 0;
      (touches_t ? q_ip_t : q_ip_rk).push_back(c);
    }

    RelExprPtr t_side = RelExpr::Scan(updated_table_);
    if (!q_t.empty()) t_side = RelExpr::Select(t_side, MakeConjunction(q_t));
    if (!q_ip_t.empty()) {
      t_side = RelExpr::Join(JoinKind::kLeftSemi, t_side,
                             RelExpr::DeltaScan("#cands"),
                             MakeConjunction(q_ip_t));
    }
    if (is_insert) {
      // Restrict to the pre-insert rows: drop the ones in ΔT.
      t_side = RelExpr::Join(JoinKind::kLeftAnti, t_side,
                             RelExpr::DeltaScan("#dtkeys"), delta_key_pred);
    }

    RelExprPtr parent_expr;
    if (rk.empty()) {
      parent_expr = t_side;
    } else {
      Term rk_term;
      rk_term.source = rk;
      rk_term.predicates = q_rk;
      // Inner-join chain over the residual parent tables: any order is
      // valid, so let the cost-based planner (when attached) start from
      // the smallest estimated input.
      RelExprPtr rk_expr =
          planner_ != nullptr
              ? rk_term.ToRelExprOrdered(planner_->OrderTablesByRows(rk))
              : rk_term.ToRelExpr();
      if (!q_ip_rk.empty()) {
        rk_expr = RelExpr::Join(JoinKind::kLeftSemi, rk_expr,
                                RelExpr::DeltaScan("#cands"),
                                MakeConjunction(q_ip_rk));
      }
      ScalarExprPtr join_pred = q_rk_t.empty()
                                    ? ScalarExpr::Literal(Value::Int64(1))
                                    : MakeConjunction(q_rk_t);
      parent_expr =
          RelExpr::Join(JoinKind::kInner, rk_expr, t_side, join_pred);
    }
    expr = RelExpr::Join(JoinKind::kLeftAnti, expr, parent_expr,
                         MakeConjunction(q_ip));
  }

  Relation result = evaluator.EvalToRelation(expr);

  // Null-extend candidates to the full view schema. Enriched columns
  // (predicate-only, not part of the view output) are dropped here.
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(result.size()));
  std::vector<int> target_positions;
  for (const BoundColumn& col : result.schema().columns()) {
    target_positions.push_back(schema.Find(col.table, col.column));
  }
  for (const Row& row : result.rows()) {
    Row candidate(static_cast<size_t>(schema.num_columns()), Value::Null());
    for (size_t i = 0; i < row.size(); ++i) {
      if (target_positions[i] < 0) continue;
      candidate[static_cast<size_t>(target_positions[i])] = row[i];
    }
    out.push_back(std::move(candidate));
  }
  return out;
}

Relation SecondaryDeltaEngine::EnrichCandidates(
    const Relation& candidates, const std::vector<ColumnRef>& missing) const {
  // Group the missing columns by source table and precompute, per table,
  // where its key sits in the candidate schema and where the wanted
  // values sit in the base schema.
  struct TableLookup {
    const Table* base;
    std::vector<int> key_in_cands;   // candidate positions of the key
    std::vector<int> value_in_base;  // base positions of the missing cols
  };
  std::map<std::string, std::vector<ColumnRef>> by_table;
  for (const ColumnRef& ref : missing) by_table[ref.table].push_back(ref);

  BoundSchema enriched_schema = candidates.schema();
  std::vector<TableLookup> lookups;
  for (const auto& [table, refs] : by_table) {
    const Table* base = catalog_.GetTable(table);
    OJV_CHECK(base != nullptr, "candidate enrichment needs the base table");
    TableLookup lookup{base, {}, {}};
    for (const std::string& key_col : base->key_columns()) {
      int pos = candidates.schema().Find(table, key_col);
      OJV_CHECK(pos >= 0, "candidate enrichment requires the table's key");
      lookup.key_in_cands.push_back(pos);
    }
    for (const ColumnRef& ref : refs) {
      int pos = base->schema().IndexOf(ref.column);
      lookup.value_in_base.push_back(pos);
      enriched_schema.AddColumn(BoundColumn{
          ref.table, ref.column, base->schema().column(pos).type, -1});
    }
    lookups.push_back(std::move(lookup));
  }

  Relation enriched(std::move(enriched_schema));
  for (const Row& row : candidates.rows()) {
    Row extended = row;
    bool alive = true;
    for (const TableLookup& lookup : lookups) {
      Row key;
      key.reserve(lookup.key_in_cands.size());
      bool null_extended = false;
      for (int pos : lookup.key_in_cands) {
        if (row[static_cast<size_t>(pos)].is_null()) null_extended = true;
        key.push_back(row[static_cast<size_t>(pos)]);
      }
      if (null_extended) {
        // The candidate is null on this table; the missing columns are
        // genuinely NULL for it.
        for (size_t i = 0; i < lookup.value_in_base.size(); ++i) {
          extended.push_back(Value::Null());
        }
        continue;
      }
      const Row* base_row = lookup.base->FindByKey(key);
      if (base_row == nullptr) {
        alive = false;
        break;
      }
      for (int pos : lookup.value_in_base) {
        extended.push_back((*base_row)[static_cast<size_t>(pos)]);
      }
    }
    if (alive) enriched.Add(std::move(extended));
  }
  return enriched;
}

int64_t SecondaryDeltaEngine::DeleteCandidateOrphans(
    const std::vector<Row>& candidates, const TermPlan& plan,
    MaterializedView* view) {
  std::unordered_set<int64_t> to_delete;
  for (const Row& candidate : candidates) {
    for (int64_t id : LookupTi(*view, candidate, plan)) {
      if (IsOrphanOf(view->row(id), plan)) to_delete.insert(id);
    }
  }
  for (int64_t id : to_delete) view->DeleteById(id);
  return static_cast<int64_t>(to_delete.size());
}

int64_t SecondaryDeltaEngine::InsertCandidateOrphans(
    const std::vector<Row>& candidates, const TermPlan& plan,
    MaterializedView* view) {
  int64_t inserted = 0;
  for (const Row& candidate : candidates) {
    if (LookupTi(*view, candidate, plan).empty()) {
      view->Insert(candidate);
      ++inserted;
    }
  }
  return inserted;
}

}  // namespace ojv
