file(REMOVE_RECURSE
  "libojv_matching.a"
)
