#include "exec/evaluator.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/check.h"
#include "exec/bound_scalar.h"
#include "exec/columnar/columnar_ops.h"
#include "exec/join_table.h"
#include "obs/metrics.h"

namespace ojv {
namespace {

// Hash of row values at given positions (NULL hashes to a sentinel),
// normalized so it never collides with JoinTable::kSkipHash.
size_t HashAt(const Row& row, const std::vector<int>& positions) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int p : positions) {
    h ^= row[static_cast<size_t>(p)].Hash();
    h *= 0x100000001b3ULL;
  }
  return JoinTable::NormalizeHash(h);
}

bool AnyNullAt(const Row& row, const std::vector<int>& positions) {
  for (int p : positions) {
    if (row[static_cast<size_t>(p)].is_null()) return true;
  }
  return false;
}

bool EqualAt(const Row& a, const std::vector<int>& pa, const Row& b,
             const std::vector<int>& pb) {
  for (size_t i = 0; i < pa.size(); ++i) {
    if (a[static_cast<size_t>(pa[i])] != b[static_cast<size_t>(pb[i])]) {
      return false;
    }
  }
  return true;
}

size_t HashFullRow(const Row& row) {
  size_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 0x100000001b3ULL;
  }
  return JoinTable::NormalizeHash(h);
}

// Wraps a caller-owned relation without taking ownership.
std::shared_ptr<const Relation> NonOwning(const Relation* relation) {
  return std::shared_ptr<const Relation>(relation, [](const Relation*) {});
}

std::shared_ptr<const Relation> Owned(Relation relation) {
  return std::make_shared<const Relation>(std::move(relation));
}

// Workers a standalone (static-operator) loop may use.
int StaticWorkers(const ExecConfig& config, ThreadPool* pool, int64_t rows) {
  if (pool == nullptr || config.num_threads <= 1) return 1;
  if (rows < config.parallel_min_rows) return 1;
  return std::min(config.num_threads, pool->num_threads());
}

// Runs body(begin, end) over [0, count) — morsel-parallel when the
// input is large enough, inline otherwise. Bodies must only touch
// per-index state (element writes to distinct positions are fine).
void ParallelRange(const ExecConfig& config, ThreadPool* pool, int64_t count,
                   const std::function<void(int64_t, int64_t)>& body) {
  const int workers = StaticWorkers(config, pool, count);
  if (workers == 1) {
    body(0, count);
    return;
  }
  pool->ParallelFor(
      count, config.morsel_rows,
      [&](int64_t, int64_t begin, int64_t end) { body(begin, end); },
      workers);
}

// Join-key hashes for every row of `rel` (kSkipHash for NULL keys).
std::vector<size_t> HashRows(const Relation& rel, const std::vector<int>& keys,
                             const ExecConfig& config, ThreadPool* pool) {
  std::vector<size_t> hashes(static_cast<size_t>(rel.size()));
  ParallelRange(config, pool, rel.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const Row& row = rel.row(i);
      hashes[static_cast<size_t>(i)] =
          AnyNullAt(row, keys) ? JoinTable::kSkipHash : HashAt(row, keys);
    }
  });
  return hashes;
}

}  // namespace

std::shared_ptr<const Relation> TableRelationCache::Get(const Table& table) {
  Entry& entry = entries_[table.name()];
  if (entry.relation == nullptr || entry.version != table.version()) {
    entry.relation =
        std::make_shared<const Relation>(Evaluator::RelationFrom(table));
    entry.version = table.version();
  }
  return entry.relation;
}

BoundSchema Evaluator::SchemaFor(const Table& table) {
  BoundSchema schema;
  for (int i = 0; i < table.schema().num_columns(); ++i) {
    const ColumnDef& def = table.schema().column(i);
    int key_ordinal = -1;
    for (size_t k = 0; k < table.key_positions().size(); ++k) {
      if (table.key_positions()[k] == i) {
        key_ordinal = static_cast<int>(k);
      }
    }
    schema.AddColumn(
        BoundColumn{table.name(), def.name, def.type, key_ordinal});
  }
  return schema;
}

Relation Evaluator::RelationFrom(const Table& table) {
  Relation rel(SchemaFor(table));
  rel.mutable_rows()->reserve(static_cast<size_t>(table.size()));
  table.ForEach([&](const Row& row) { rel.Add(row); });
  return rel;
}

int Evaluator::WorkersFor(int64_t rows) const {
  return StaticWorkers(exec_, pool_, rows);
}

void Evaluator::AppendChunked(
    int64_t count, Relation* out,
    const std::function<void(std::vector<Row>&, int64_t, int64_t)>& body)
    const {
  const int workers = WorkersFor(count);
  if (workers == 1) {
    body(*out->mutable_rows(), 0, count);
    return;
  }
  const int64_t grain = exec_.morsel_rows;
  const int64_t num_chunks = (count + grain - 1) / grain;
  std::vector<std::vector<Row>> chunks(static_cast<size_t>(num_chunks));
  pool_->ParallelFor(
      count, grain,
      [&](int64_t chunk, int64_t begin, int64_t end) {
        body(chunks[static_cast<size_t>(chunk)], begin, end);
      },
      workers);
  std::vector<Row>* rows = out->mutable_rows();
  size_t total = rows->size();
  for (const std::vector<Row>& chunk : chunks) total += chunk.size();
  rows->reserve(total);
  for (std::vector<Row>& chunk : chunks) {
    for (Row& row : chunk) rows->push_back(std::move(row));
  }
}

std::shared_ptr<const Relation> Evaluator::Eval(const RelExprPtr& expr) const {
  OJV_CHECK(expr != nullptr, "null relational expression");
  if constexpr (obs::kEnabled) {
    if (trace_ != nullptr) return EvalTraced(expr);
    // Untraced runs still feed the flight recorder so a post-hoc dump
    // shows per-operator timings, not just the enclosing Span.
    if (obs::flight_hook::Sample()) {
      const int64_t start = obs::flight_hook::NowMicros();
      std::shared_ptr<const Relation> result = EvalNode(expr);
      obs::flight_hook::Record(ExecSpanNameFor(expr->kind()), "exec", start,
                               obs::flight_hook::NowMicros() - start);
      return result;
    }
  }
  return EvalNode(expr);
}

const char* ExecSpanNameFor(RelKind kind) {
  switch (kind) {
    case RelKind::kScan:
      return "exec.scan";
    case RelKind::kDeltaScan:
      return "exec.delta_scan";
    case RelKind::kSelect:
      return "exec.select";
    case RelKind::kProject:
      return "exec.project";
    case RelKind::kJoin:
      return "exec.join";
    case RelKind::kDedup:
      return "exec.dedup";
    case RelKind::kSubsumeRemove:
      return "exec.subsume";
    case RelKind::kOuterUnion:
      return "exec.outer_union";
    case RelKind::kMinUnion:
      return "exec.min_union";
    case RelKind::kNullIf:
      return "exec.nullif";
  }
  return "exec.node";
}

std::shared_ptr<const Relation> Evaluator::EvalTraced(
    const RelExprPtr& expr) const {
  const int64_t start = trace_->NowMicros();
  // EvalNode recurses through Eval for the children, so by the time it
  // returns, every child has already recorded its span and cleared the
  // pending buffers — what is left in them was staged by this node.
  std::shared_ptr<const Relation> result = EvalNode(expr);
  const int64_t end = trace_->NowMicros();
  std::vector<std::pair<std::string, int64_t>> args = std::move(pending_args_);
  pending_args_.clear();
  std::vector<std::pair<std::string, std::string>> str_args =
      std::move(pending_str_args_);
  pending_str_args_.clear();
  args.emplace_back("rows_out", result->size());
  if (expr->kind() == RelKind::kScan || expr->kind() == RelKind::kDeltaScan) {
    str_args.emplace_back("table", expr->table());
  }
  trace_->RecordComplete(ExecSpanNameFor(expr->kind()), "exec", start,
                         end - start,
                         std::move(args), std::move(str_args));
  if (obs::flight_hook::Sample()) {
    // Re-anchor on the recorder's clock: the context's micros are
    // relative to the context's epoch, not the process's.
    const int64_t fnow = obs::flight_hook::NowMicros();
    obs::flight_hook::Record(ExecSpanNameFor(expr->kind()), "exec",
                             fnow - (end - start), end - start);
  }
  return result;
}

const char* Evaluator::ParallelModeFor(int64_t rows) const {
  if (pool_ == nullptr || exec_.num_threads <= 1) return "serial_config";
  if (rows < exec_.parallel_min_rows) return "below_min_rows";
  return "parallel";
}

std::shared_ptr<const Relation> Evaluator::EvalNode(
    const RelExprPtr& expr) const {
  switch (expr->kind()) {
    case RelKind::kScan:
      return EvalScan(*expr);
    case RelKind::kDeltaScan:
      return EvalDeltaScan(*expr);
    case RelKind::kSelect:
      return Owned(EvalSelect(*expr));
    case RelKind::kProject:
      return Owned(EvalProject(*expr));
    case RelKind::kJoin:
      return Owned(EvalJoin(*expr));
    case RelKind::kDedup: {
      std::shared_ptr<const Relation> in = Eval(expr->input());
      NoteArg("rows_in", in->size());
      if (exec_.engine == ExecEngine::kColumnar) {
        return Owned(columnar::Dedup(*in, exec_, pool_));
      }
      return Owned(DedupRows(*in, exec_, pool_));
    }
    case RelKind::kSubsumeRemove: {
      std::shared_ptr<const Relation> in = Eval(expr->input());
      NoteArg("rows_in", in->size());
      if (exec_.engine == ExecEngine::kColumnar) {
        return Owned(columnar::RemoveSubsumed(*in, exec_, pool_));
      }
      return Owned(RemoveSubsumed(*in, exec_, pool_));
    }
    case RelKind::kOuterUnion:
      return Owned(OuterUnionOf(*Eval(expr->left()), *Eval(expr->right())));
    case RelKind::kMinUnion: {
      Relation unioned =
          OuterUnionOf(*Eval(expr->left()), *Eval(expr->right()));
      if (exec_.engine == ExecEngine::kColumnar) {
        return Owned(columnar::RemoveSubsumed(unioned, exec_, pool_));
      }
      return Owned(RemoveSubsumed(std::move(unioned), exec_, pool_));
    }
    case RelKind::kNullIf:
      return Owned(EvalNullIf(*expr));
  }
  OJV_CHECK(false, "unreachable");
}

std::shared_ptr<const Relation> Evaluator::EvalScan(const RelExpr& expr) const {
  auto it = overrides_.find(expr.table());
  if (it != overrides_.end()) return NonOwning(it->second);
  const Table* table = catalog_->GetTable(expr.table());
  if (cache_ != nullptr) return cache_->Get(*table);
  return Owned(RelationFrom(*table));
}

std::shared_ptr<const Relation> Evaluator::EvalDeltaScan(
    const RelExpr& expr) const {
  auto it = deltas_.find(expr.table());
  OJV_CHECK(it != deltas_.end(), "unbound delta scan");
  return NonOwning(it->second);
}

Relation Evaluator::EvalSelect(const RelExpr& expr) const {
  std::shared_ptr<const Relation> in = Eval(expr.input());
  NoteArg("rows_in", in->size());
  NoteArg("mode", std::string(ParallelModeFor(in->size())));
  if (exec_.engine == ExecEngine::kColumnar) {
    NoteArg("engine", std::string("columnar"));
    return columnar::Select(*in, expr.predicate(), exec_, pool_);
  }
  BoundScalar pred = BoundScalar::Compile(expr.predicate(), in->schema());
  Relation out(in->schema());
  const std::vector<Row>& rows = in->rows();
  AppendChunked(in->size(), &out,
                [&](std::vector<Row>& dst, int64_t begin, int64_t end) {
                  dst.reserve(dst.size() + static_cast<size_t>(end - begin));
                  for (int64_t i = begin; i < end; ++i) {
                    const Row& row = rows[static_cast<size_t>(i)];
                    if (pred.EvalBool(row)) dst.push_back(row);
                  }
                });
  return out;
}

Relation Evaluator::EvalProject(const RelExpr& expr) const {
  std::shared_ptr<const Relation> in = Eval(expr.input());
  NoteArg("rows_in", in->size());
  BoundSchema schema;
  std::vector<int> positions;
  for (const ColumnRef& ref : expr.projection()) {
    int p = in->schema().IndexOf(ref);
    positions.push_back(p);
    schema.AddColumn(in->schema().column(p));
  }
  if (exec_.engine == ExecEngine::kColumnar) {
    NoteArg("engine", std::string("columnar"));
    return columnar::Project(*in, positions, std::move(schema), exec_, pool_);
  }
  Relation out(std::move(schema));
  const std::vector<Row>& rows = in->rows();
  AppendChunked(
      in->size(), &out,
      [&](std::vector<Row>& dst, int64_t begin, int64_t end) {
        dst.reserve(dst.size() + static_cast<size_t>(end - begin));
        for (int64_t i = begin; i < end; ++i) {
          const Row& row = rows[static_cast<size_t>(i)];
          Row projected;
          projected.reserve(positions.size());
          for (int p : positions) {
            projected.push_back(row[static_cast<size_t>(p)]);
          }
          dst.push_back(std::move(projected));
        }
      });
  return out;
}

Relation Evaluator::EvalNullIf(const RelExpr& expr) const {
  std::shared_ptr<const Relation> in = Eval(expr.input());
  NoteArg("rows_in", in->size());
  if (exec_.engine == ExecEngine::kColumnar) {
    NoteArg("engine", std::string("columnar"));
    return columnar::NullIf(*in, expr.predicate(), expr.null_tables(), exec_,
                            pool_);
  }
  BoundScalar pred = BoundScalar::Compile(expr.predicate(), in->schema());
  // Positions of columns belonging to the nulled tables.
  std::vector<int> null_positions;
  for (int i = 0; i < in->schema().num_columns(); ++i) {
    if (expr.null_tables().count(in->schema().column(i).table) > 0) {
      null_positions.push_back(i);
    }
  }
  Relation out(in->schema());
  const std::vector<Row>& rows = in->rows();
  AppendChunked(
      in->size(), &out,
      [&](std::vector<Row>& dst, int64_t begin, int64_t end) {
        dst.reserve(dst.size() + static_cast<size_t>(end - begin));
        for (int64_t i = begin; i < end; ++i) {
          const Row& row = rows[static_cast<size_t>(i)];
          if (pred.EvalBool(row)) {
            dst.push_back(row);
          } else {
            Row nulled = row;
            for (int p : null_positions) {
              nulled[static_cast<size_t>(p)] = Value::Null();
            }
            dst.push_back(std::move(nulled));
          }
        }
      });
  return out;
}

Relation Evaluator::EvalJoin(const RelExpr& expr) const {
  std::shared_ptr<const Relation> lp = Eval(expr.left());
  std::shared_ptr<const Relation> rp = Eval(expr.right());
  const Relation& l = *lp;
  const Relation& r = *rp;
  const JoinKind kind = expr.join_kind();
  const bool semi_or_anti =
      kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti;
  NoteArg("kind", std::string(JoinKindName(kind)));
  if constexpr (obs::kEnabled) {
    // Global probe-volume counter (rows fed into join operators). The
    // multiview benchmark asserts shared-prefix maintenance strictly
    // reduces this, so it counts regardless of tracing.
    static obs::Counter& rows_in =
        obs::Registry::Global().GetCounter("ojv.exec.join.rows_in");
    rows_in.Add(l.size() + r.size());
  }
  // Probe-side key matches that passed the residual, counted per morsel
  // and flushed once per chunk — only when tracing is on.
  const bool count_hits = obs::kEnabled && trace_ != nullptr;
  std::atomic<int64_t> probe_hits{0};

  // Combined schema (left columns then right columns).
  BoundSchema combined;
  for (const BoundColumn& c : l.schema().columns()) combined.AddColumn(c);
  for (const BoundColumn& c : r.schema().columns()) {
    OJV_CHECK(l.schema().Find(c.table, c.column) < 0,
              "join inputs must have disjoint columns");
    combined.AddColumn(c);
  }

  // Split the predicate into hashable equality conjuncts and a residual.
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  std::vector<ScalarExprPtr> residual_conjuncts;
  for (const ScalarExprPtr& c : SplitConjuncts(expr.predicate())) {
    bool handled = false;
    if (c->kind() == ScalarKind::kCompare &&
        c->compare_op() == CompareOp::kEq &&
        c->left()->kind() == ScalarKind::kColumn &&
        c->right()->kind() == ScalarKind::kColumn) {
      int ll = l.schema().Find(c->left()->column());
      int lr = r.schema().Find(c->right()->column());
      int rl = l.schema().Find(c->right()->column());
      int rr = r.schema().Find(c->left()->column());
      if (ll >= 0 && lr >= 0) {
        left_keys.push_back(ll);
        right_keys.push_back(lr);
        handled = true;
      } else if (rl >= 0 && rr >= 0) {
        left_keys.push_back(rl);
        right_keys.push_back(rr);
        handled = true;
      }
    }
    if (!handled) residual_conjuncts.push_back(c);
  }
  ScalarExprPtr residual_expr = MakeConjunction(residual_conjuncts);

  if (join_algorithm_ == JoinAlgorithm::kSortMerge && !left_keys.empty() &&
      !semi_or_anti) {
    NoteArg("algo", std::string("sortmerge"));
    NoteArg("left_rows", l.size());
    NoteArg("right_rows", r.size());
    return EvalSortMergeJoin(expr, l, r, left_keys, right_keys,
                             residual_expr);
  }
  NoteArg("algo", std::string(left_keys.empty() ? "nested_loop" : "hash"));

  // Columnar engine: equality hash joins with no residual. Residual and
  // nested-loop joins keep the row path (exact row-engine semantics).
  if (exec_.engine == ExecEngine::kColumnar && !left_keys.empty() &&
      residual_expr == nullptr) {
    NoteArg("engine", std::string("columnar"));
    NoteArg("probe_rows", l.size());
    NoteArg("build_side", std::string("right"));
    NoteArg("workers", WorkersFor(l.size()));
    NoteArg("mode", std::string(ParallelModeFor(l.size())));
    columnar::JoinStats stats;
    Relation out = columnar::HashJoin(kind, l, r, left_keys, right_keys,
                                      combined, exec_, pool_, &stats);
    NoteArg("build_rows", stats.build_rows);
    NoteArg("build_capacity", stats.build_capacity);
    NoteArg("probe_hits", stats.probe_hits);
    return out;
  }

  BoundScalar residual;
  const bool has_residual = residual_expr != nullptr;
  if (has_residual) residual = BoundScalar::Compile(residual_expr, combined);
  const int lcols = l.schema().num_columns();
  const int rcols = r.schema().num_columns();

  // Inner joins are symmetric: build the hash table over the smaller
  // input and probe with the larger (output column order is unchanged).
  if (kind == JoinKind::kInner && !left_keys.empty() && l.size() < r.size()) {
    std::vector<size_t> build_hashes = HashRows(l, left_keys, exec_, pool_);
    JoinTable table;
    table.Build(build_hashes, WorkersFor(l.size()), pool_);
    std::vector<size_t> probe_hashes = HashRows(r, right_keys, exec_, pool_);
    NoteArg("build_rows", table.size());
    NoteArg("build_capacity", static_cast<int64_t>(table.capacity()));
    NoteArg("probe_rows", r.size());
    NoteArg("build_side", std::string("left"));
    NoteArg("workers", WorkersFor(r.size()));
    NoteArg("mode", std::string(ParallelModeFor(r.size())));
    Relation out(combined);
    AppendChunked(
        r.size(), &out,
        [&](std::vector<Row>& dst, int64_t begin, int64_t end) {
          // One output per probe row is the common case (key joins);
          // reserving it up front avoids regrowth inside the hot loop.
          dst.reserve(dst.size() + static_cast<size_t>(end - begin));
          Row combined_row(static_cast<size_t>(lcols + rcols));
          int64_t local_hits = 0;
          for (int64_t ri = begin; ri < end; ++ri) {
            const size_t h = probe_hashes[static_cast<size_t>(ri)];
            if (h == JoinTable::kSkipHash) continue;
            const Row& rrow = r.row(ri);
            table.ForEachMatch(h, [&](int64_t li) {
              const Row& lrow = l.row(li);
              if (!EqualAt(lrow, left_keys, rrow, right_keys)) return true;
              ++local_hits;
              for (int i = 0; i < lcols; ++i) {
                combined_row[static_cast<size_t>(i)] =
                    lrow[static_cast<size_t>(i)];
              }
              for (int i = 0; i < rcols; ++i) {
                combined_row[static_cast<size_t>(lcols + i)] =
                    rrow[static_cast<size_t>(i)];
              }
              if (!has_residual || residual.EvalBool(combined_row)) {
                dst.push_back(combined_row);
              }
              return true;
            });
          }
          if (count_hits) {
            probe_hits.fetch_add(local_hits, std::memory_order_relaxed);
          }
        });
    NoteArg("probe_hits", probe_hits.load(std::memory_order_relaxed));
    return out;
  }

  // Build hash table over the right input (skips NULL keys: SQL equality
  // can never match them).
  JoinTable table;
  std::vector<size_t> probe_hashes;
  if (!left_keys.empty()) {
    std::vector<size_t> build_hashes = HashRows(r, right_keys, exec_, pool_);
    table.Build(build_hashes, WorkersFor(r.size()), pool_);
    probe_hashes = HashRows(l, left_keys, exec_, pool_);
    NoteArg("build_rows", table.size());
    NoteArg("build_capacity", static_cast<int64_t>(table.capacity()));
    NoteArg("build_side", std::string("right"));
  }
  NoteArg("probe_rows", l.size());
  NoteArg("workers", WorkersFor(l.size()));
  NoteArg("mode", std::string(ParallelModeFor(l.size())));

  // Right-side match flags feed the right/full-outer pass below; probe
  // morsels set them concurrently (monotonic 0 -> 1, order irrelevant).
  const bool track_right =
      kind == JoinKind::kRightOuter || kind == JoinKind::kFullOuter;
  std::vector<std::atomic<uint8_t>> right_matched(
      track_right ? static_cast<size_t>(r.size()) : 0);

  Relation out(semi_or_anti ? l.schema() : combined);
  AppendChunked(
      l.size(), &out,
      [&](std::vector<Row>& dst, int64_t begin, int64_t end) {
        // Outer joins emit at least one row per probe row; reserve that
        // floor so the hot loop does not regrow the buffer.
        dst.reserve(dst.size() + static_cast<size_t>(end - begin));
        Row combined_row(static_cast<size_t>(lcols + rcols));
        int64_t local_hits = 0;
        for (int64_t li = begin; li < end; ++li) {
          const Row& lrow = l.row(li);
          bool matched = false;
          auto try_match = [&](int64_t ri) {
            const Row& rrow = r.row(ri);
            if (!left_keys.empty() &&
                !EqualAt(lrow, left_keys, rrow, right_keys)) {
              return true;  // hash collision; keep probing
            }
            if (has_residual || !semi_or_anti) {
              for (int i = 0; i < lcols; ++i) {
                combined_row[static_cast<size_t>(i)] =
                    lrow[static_cast<size_t>(i)];
              }
              for (int i = 0; i < rcols; ++i) {
                combined_row[static_cast<size_t>(lcols + i)] =
                    rrow[static_cast<size_t>(i)];
              }
            }
            if (has_residual && !residual.EvalBool(combined_row)) return true;
            matched = true;
            ++local_hits;
            if (track_right) {
              right_matched[static_cast<size_t>(ri)].store(
                  1, std::memory_order_relaxed);
            }
            if (!semi_or_anti) dst.push_back(combined_row);
            return !semi_or_anti;  // semi/anti: first match settles the row
          };
          if (!left_keys.empty()) {
            const size_t h = probe_hashes[static_cast<size_t>(li)];
            if (h != JoinTable::kSkipHash) table.ForEachMatch(h, try_match);
          } else {
            for (int64_t ri = 0; ri < r.size(); ++ri) {
              if (!try_match(ri)) break;
            }
          }
          switch (kind) {
            case JoinKind::kLeftOuter:
            case JoinKind::kFullOuter:
              if (!matched) {
                Row row = lrow;
                row.resize(static_cast<size_t>(lcols + rcols), Value::Null());
                dst.push_back(std::move(row));
              }
              break;
            case JoinKind::kLeftSemi:
              if (matched) dst.push_back(lrow);
              break;
            case JoinKind::kLeftAnti:
              if (!matched) dst.push_back(lrow);
              break;
            default:
              break;
          }
        }
        if (count_hits) {
          probe_hits.fetch_add(local_hits, std::memory_order_relaxed);
        }
      });
  NoteArg("probe_hits", probe_hits.load(std::memory_order_relaxed));
  if (track_right) {
    int64_t unmatched = 0;
    for (int64_t ri = 0; ri < r.size(); ++ri) {
      if (!right_matched[static_cast<size_t>(ri)].load(
              std::memory_order_relaxed)) {
        ++unmatched;
      }
    }
    out.mutable_rows()->reserve(out.mutable_rows()->size() +
                                static_cast<size_t>(unmatched));
    for (int64_t ri = 0; ri < r.size(); ++ri) {
      if (!right_matched[static_cast<size_t>(ri)].load(
              std::memory_order_relaxed)) {
        Row row(static_cast<size_t>(lcols), Value::Null());
        const Row& rrow = r.row(ri);
        row.insert(row.end(), rrow.begin(), rrow.end());
        out.Add(std::move(row));
      }
    }
  }
  return out;
}

Relation Evaluator::EvalSortMergeJoin(
    const RelExpr& expr, const Relation& l, const Relation& r,
    const std::vector<int>& left_keys, const std::vector<int>& right_keys,
    const ScalarExprPtr& residual_expr) const {
  const JoinKind kind = expr.join_kind();
  BoundSchema combined;
  for (const BoundColumn& c : l.schema().columns()) combined.AddColumn(c);
  for (const BoundColumn& c : r.schema().columns()) combined.AddColumn(c);
  BoundScalar residual;
  const bool has_residual = residual_expr != nullptr;
  if (has_residual) residual = BoundScalar::Compile(residual_expr, combined);

  // Sort row indexes by key; NULL keys sort first and are skipped by the
  // merge (SQL equality never matches them) but still surface through
  // the outer-join passes below.
  auto order_by = [](const Relation& rel, const std::vector<int>& keys) {
    std::vector<int64_t> idx(static_cast<size_t>(rel.size()));
    for (int64_t i = 0; i < rel.size(); ++i) idx[static_cast<size_t>(i)] = i;
    std::sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
      for (int k : keys) {
        int c = rel.row(a)[static_cast<size_t>(k)].SortCompare(
            rel.row(b)[static_cast<size_t>(k)]);
        if (c != 0) return c < 0;
      }
      return a < b;
    });
    return idx;
  };
  std::vector<int64_t> li = order_by(l, left_keys);
  std::vector<int64_t> ri = order_by(r, right_keys);

  auto key_null = [](const Relation& rel, int64_t row,
                     const std::vector<int>& keys) {
    for (int k : keys) {
      if (rel.row(row)[static_cast<size_t>(k)].is_null()) return true;
    }
    return false;
  };
  auto compare = [&](int64_t lr, int64_t rr) {
    for (size_t k = 0; k < left_keys.size(); ++k) {
      int c = l.row(lr)[static_cast<size_t>(left_keys[k])].SortCompare(
          r.row(rr)[static_cast<size_t>(right_keys[k])]);
      if (c != 0) return c;
    }
    return 0;
  };

  Relation out(combined);
  // Equality joins emit at least one row per matched key pair and the
  // outer passes at most one per input row; reserving the larger input
  // avoids most regrowth during the merge.
  out.mutable_rows()->reserve(
      static_cast<size_t>(std::max(l.size(), r.size())));
  std::vector<char> left_matched(static_cast<size_t>(l.size()), 0);
  std::vector<char> right_matched(static_cast<size_t>(r.size()), 0);
  const int lcols = l.schema().num_columns();
  const int rcols = r.schema().num_columns();
  Row combined_row(static_cast<size_t>(lcols + rcols));

  size_t a = 0;
  size_t b = 0;
  while (a < li.size() && key_null(l, li[a], left_keys)) ++a;
  while (b < ri.size() && key_null(r, ri[b], right_keys)) ++b;
  while (a < li.size() && b < ri.size()) {
    int c = compare(li[a], ri[b]);
    if (c < 0) {
      ++a;
      continue;
    }
    if (c > 0) {
      ++b;
      continue;
    }
    // Equal-key groups: cross product.
    size_t a_end = a;
    while (a_end < li.size() && compare(li[a_end], ri[b]) == 0) ++a_end;
    size_t b_end = b;
    while (b_end < ri.size() && compare(li[a], ri[b_end]) == 0) ++b_end;
    for (size_t i = a; i < a_end; ++i) {
      const Row& lrow = l.row(li[i]);
      for (size_t j = b; j < b_end; ++j) {
        const Row& rrow = r.row(ri[j]);
        for (int x = 0; x < lcols; ++x) {
          combined_row[static_cast<size_t>(x)] = lrow[static_cast<size_t>(x)];
        }
        for (int x = 0; x < rcols; ++x) {
          combined_row[static_cast<size_t>(lcols + x)] =
              rrow[static_cast<size_t>(x)];
        }
        if (has_residual && !residual.EvalBool(combined_row)) continue;
        left_matched[static_cast<size_t>(li[i])] = 1;
        right_matched[static_cast<size_t>(ri[j])] = 1;
        out.Add(combined_row);
      }
    }
    a = a_end;
    b = b_end;
  }

  if (kind == JoinKind::kLeftOuter || kind == JoinKind::kFullOuter) {
    for (int64_t i = 0; i < l.size(); ++i) {
      if (!left_matched[static_cast<size_t>(i)]) {
        Row row = l.row(i);
        row.resize(static_cast<size_t>(lcols + rcols), Value::Null());
        out.Add(std::move(row));
      }
    }
  }
  if (kind == JoinKind::kRightOuter || kind == JoinKind::kFullOuter) {
    for (int64_t i = 0; i < r.size(); ++i) {
      if (!right_matched[static_cast<size_t>(i)]) {
        Row row(static_cast<size_t>(lcols), Value::Null());
        const Row& rrow = r.row(i);
        row.insert(row.end(), rrow.begin(), rrow.end());
        out.Add(std::move(row));
      }
    }
  }
  return out;
}

Relation Evaluator::DedupRows(Relation input, const ExecConfig& config,
                              ThreadPool* pool) {
  const std::vector<Row>& rows = input.rows();
  if (rows.size() <= 1) return input;

  std::vector<size_t> hashes(rows.size());
  ParallelRange(config, pool, static_cast<int64_t>(rows.size()),
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    hashes[static_cast<size_t>(i)] =
                        HashFullRow(rows[static_cast<size_t>(i)]);
                  }
                });
  JoinTable table;
  table.Build(hashes, StaticWorkers(config, pool, input.size()), pool);

  // A row is a duplicate iff some earlier row equals it. ForEachMatch
  // enumerates in ascending row order, so the first row-equal match is
  // either an earlier duplicate or the row itself.
  std::vector<char> drop(rows.size(), 0);
  ParallelRange(config, pool, static_cast<int64_t>(rows.size()),
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    const Row& row = rows[static_cast<size_t>(i)];
                    table.ForEachMatch(
                        hashes[static_cast<size_t>(i)], [&](int64_t j) {
                          if (j >= i) return false;
                          if (rows[static_cast<size_t>(j)] == row) {
                            drop[static_cast<size_t>(i)] = 1;
                            return false;
                          }
                          return true;
                        });
                  }
                });

  std::vector<Row> kept;
  kept.reserve(rows.size());
  std::vector<Row>& mutable_rows = *input.mutable_rows();
  for (size_t i = 0; i < mutable_rows.size(); ++i) {
    if (!drop[i]) kept.push_back(std::move(mutable_rows[i]));
  }
  mutable_rows = std::move(kept);
  return input;
}

Relation Evaluator::RemoveSubsumed(Relation input, const ExecConfig& config,
                                   ThreadPool* pool) {
  const std::vector<Row>& rows = input.rows();
  if (rows.empty()) return input;
  const size_t cols = rows[0].size();
  const size_t words = (cols + 63) / 64;

  // Non-null masks as packed bitsets (bit c set = column c non-null),
  // one `words`-wide group per row in a flat array.
  std::vector<uint64_t> masks(rows.size() * words, 0);
  ParallelRange(config, pool, static_cast<int64_t>(rows.size()),
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    const Row& row = rows[static_cast<size_t>(i)];
                    uint64_t* mask = &masks[static_cast<size_t>(i) * words];
                    for (size_t c = 0; c < cols; ++c) {
                      if (!row[c].is_null()) {
                        mask[c / 64] |= uint64_t{1} << (c % 64);
                      }
                    }
                  }
                });

  // Group row indexes by mask. Distinct masks are few (one per term
  // shape of the normal form), so a linear scan of the group list beats
  // any hashing.
  struct Group {
    const uint64_t* mask;
    std::vector<size_t> rows;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < rows.size(); ++i) {
    const uint64_t* mask = &masks[i * words];
    Group* group = nullptr;
    for (Group& g : groups) {
      if (std::equal(mask, mask + words, g.mask)) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{mask, {}});
      group = &groups.back();
    }
    group->rows.push_back(i);
  }
  if (groups.size() == 1) return input;  // identical masks cannot subsume

  auto strict_subset = [&](const uint64_t* small, const uint64_t* big) {
    bool strict = false;
    for (size_t w = 0; w < words; ++w) {
      if ((small[w] & ~big[w]) != 0) return false;
      if ((big[w] & ~small[w]) != 0) strict = true;
    }
    return strict;
  };

  // For each mask, find the strict-superset masks and test membership of
  // each row's non-null projection among superset rows. The flat table
  // and its hash buffer are reused across mask pairs (capacity sticks),
  // replacing the per-pair unordered_multimap rebuild.
  std::vector<char> drop(rows.size(), 0);
  JoinTable table;
  std::vector<size_t> sup_hashes;
  std::vector<int> proj;
  for (const Group& sub : groups) {
    proj.clear();
    for (size_t c = 0; c < cols; ++c) {
      if ((sub.mask[c / 64] >> (c % 64)) & 1) {
        proj.push_back(static_cast<int>(c));
      }
    }
    for (const Group& sup : groups) {
      if (!strict_subset(sub.mask, sup.mask)) continue;
      sup_hashes.resize(sup.rows.size());
      for (size_t k = 0; k < sup.rows.size(); ++k) {
        sup_hashes[k] = HashAt(rows[sup.rows[k]], proj);
      }
      table.Build(
          sup_hashes,
          StaticWorkers(config, pool, static_cast<int64_t>(sup.rows.size())),
          pool);
      // Probe morsels write drop flags at distinct row indexes only.
      ParallelRange(
          config, pool, static_cast<int64_t>(sub.rows.size()),
          [&](int64_t begin, int64_t end) {
            for (int64_t k = begin; k < end; ++k) {
              const size_t i = sub.rows[static_cast<size_t>(k)];
              if (drop[i]) continue;
              table.ForEachMatch(HashAt(rows[i], proj), [&](int64_t t) {
                if (EqualAt(rows[i], proj, rows[sup.rows[static_cast<size_t>(t)]],
                            proj)) {
                  drop[i] = 1;
                  return false;
                }
                return true;
              });
            }
          });
    }
  }
  std::vector<Row> kept;
  kept.reserve(rows.size());
  std::vector<Row>& mutable_rows = *input.mutable_rows();
  for (size_t i = 0; i < mutable_rows.size(); ++i) {
    if (!drop[i]) kept.push_back(std::move(mutable_rows[i]));
  }
  mutable_rows = std::move(kept);
  return input;
}

Relation Evaluator::OuterUnionOf(const Relation& a, const Relation& b) {
  BoundSchema schema = a.schema();
  for (const BoundColumn& c : b.schema().columns()) {
    if (schema.Find(c.table, c.column) < 0) schema.AddColumn(c);
  }
  Relation out(schema);
  const int total = schema.num_columns();
  out.mutable_rows()->reserve(static_cast<size_t>(a.size() + b.size()));
  for (const Row& row : a.rows()) {
    Row padded = row;
    padded.resize(static_cast<size_t>(total), Value::Null());
    out.Add(std::move(padded));
  }
  // Map b's columns into the combined schema.
  std::vector<int> to_combined;
  for (const BoundColumn& c : b.schema().columns()) {
    to_combined.push_back(schema.Find(c.table, c.column));
  }
  for (const Row& row : b.rows()) {
    Row mapped(static_cast<size_t>(total), Value::Null());
    for (size_t i = 0; i < row.size(); ++i) {
      mapped[static_cast<size_t>(to_combined[i])] = row[i];
    }
    out.Add(std::move(mapped));
  }
  return out;
}

}  // namespace ojv
