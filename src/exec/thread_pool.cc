#include "exec/thread_pool.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace ojv {
namespace {

/// True while the current thread is executing chunks of some pool's
/// loop; a ParallelFor issued in that state runs inline (see header).
thread_local bool t_in_parallel_region = false;

// Pool-wide morsel accounting (cheap: bumped per ParallelFor, not per
// chunk). The per-thread distribution lives on the pool itself
// (chunks_executed) since registry counters are process-global and
// pools come and go.
void CountLoop(int64_t chunks, bool serial) {
  if constexpr (obs::kEnabled) {
    static obs::Counter& morsels =
        obs::Registry::Global().GetCounter("ojv.exec.pool.morsels");
    static obs::Counter& loops =
        obs::Registry::Global().GetCounter("ojv.exec.pool.parallel_loops");
    static obs::Counter& serial_loops =
        obs::Registry::Global().GetCounter("ojv.exec.pool.serial_loops");
    morsels.Add(chunks);
    (serial ? serial_loops : loops).Add(1);
  } else {
    (void)chunks;
    (void)serial;
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)),
      slot_chunks_(static_cast<size_t>(std::max(1, num_threads))) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i - 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunks(int slot) {
  t_in_parallel_region = true;
  int64_t executed = 0;
  for (;;) {
    int64_t chunk = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks_) break;
    int64_t begin = chunk * grain_;
    int64_t end = std::min(count_, begin + grain_);
    (*body_)(chunk, begin, end);
    ++executed;
  }
  t_in_parallel_region = false;
  if (executed > 0) {
    slot_chunks_[static_cast<size_t>(slot)].fetch_add(
        executed, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelFor(
    int64_t count, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& body,
    int max_workers) {
  if (count <= 0) return;
  OJV_CHECK(grain > 0, "morsel grain must be positive");
  const int64_t num_chunks = (count + grain - 1) / grain;
  if (workers_.empty() || num_chunks == 1 || max_workers <= 1 ||
      t_in_parallel_region) {
    // Serial fallback: same chunking so bodies see identical
    // (chunk, begin, end) triples as the parallel schedule.
    for (int64_t c = 0; c < num_chunks; ++c) {
      body(c, c * grain, std::min(count, (c + 1) * grain));
    }
    slot_chunks_[0].fetch_add(num_chunks, std::memory_order_relaxed);
    CountLoop(num_chunks, /*serial=*/true);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    count_ = count;
    grain_ = grain;
    num_chunks_ = num_chunks;
    active_limit_ = std::min(max_workers - 1,
                             static_cast<int>(workers_.size()));
    cursor_.store(0, std::memory_order_relaxed);
    busy_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();
  RunChunks(/*slot=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return busy_ == 0; });
  body_ = nullptr;
  CountLoop(num_chunks, /*serial=*/false);
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    const bool participate = worker_index < active_limit_;
    lock.unlock();
    if (participate) RunChunks(worker_index + 1);
    lock.lock();
    if (--busy_ == 0) done_cv_.notify_all();
  }
}

std::shared_ptr<ThreadPool> ThreadPool::Shared(int num_threads) {
  static std::mutex registry_mu;
  static std::shared_ptr<ThreadPool>* pool = new std::shared_ptr<ThreadPool>;
  std::lock_guard<std::mutex> lock(registry_mu);
  const int want = std::max(2, num_threads);
  if (*pool == nullptr || (*pool)->num_threads() < want) {
    *pool = std::make_shared<ThreadPool>(want);
  }
  return *pool;
}

}  // namespace ojv
