// Tests for the metric exporters (Prometheus text + JSON snapshot +
// atomic snapshot files) and the embedded HTTP endpoint. The Prometheus
// output is parsed line by line against the exposition-format grammar —
// a scraper rejects the whole page on one malformed line, so "mostly
// right" is not a pass. The record-vs-serialize hammer runs under every
// sanitizer configuration of tools/check.sh including
// OJV_SANITIZE=thread.

#include "obs/export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "io/json.h"
#include "obs/http_server.h"
#include "obs/metrics.h"

namespace ojv {
namespace obs {
namespace {

TEST(PrometheusNameTest, SanitizesBaseAndKeepsLabels) {
  EXPECT_EQ(PrometheusName("ojv.deferred.refreshes"), "ojv_deferred_refreshes");
  EXPECT_EQ(PrometheusName("ojv.deferred.view.staleness_micros{view=\"a.b\"}"),
            "ojv_deferred_view_staleness_micros{view=\"a.b\"}");
  // Leading digits are not legal metric-name starts.
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  // Every disallowed character becomes an underscore.
  EXPECT_EQ(PrometheusName("a-b c/d"), "a_b_c_d");
}

TEST(LabeledMetricTest, BuildsAndEscapes) {
  EXPECT_EQ(LabeledMetric("ojv.m", "view", "v3"), "ojv.m{view=\"v3\"}");
  // Backslash, quote, and newline per the exposition format.
  EXPECT_EQ(LabeledMetric("ojv.m", "k", "a\"b\\c\nd"),
            "ojv.m{k=\"a\\\"b\\\\c\\nd\"}");
}

// One data line of the exposition format: name, optional {labels},
// whitespace, then a number. Returns false on anything else.
bool ParsePromLine(const std::string& line, std::string* name) {
  size_t i = 0;
  if (i >= line.size() ||
      !(std::isalpha(line[i]) || line[i] == '_' || line[i] == ':')) {
    return false;
  }
  while (i < line.size() &&
         (std::isalnum(line[i]) || line[i] == '_' || line[i] == ':')) {
    ++i;
  }
  *name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    size_t close = line.find('}', i);
    if (close == std::string::npos) return false;
    i = close + 1;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  ++i;
  char* end = nullptr;
  std::strtod(line.c_str() + i, &end);
  return end == line.c_str() + line.size();
}

TEST(WritePrometheusTest, EveryLineParsesAndGoldenNamesPresent) {
  Registry registry;
  registry.GetCounter("ojv.test.requests").Add(3);
  registry.GetCounter(LabeledMetric("ojv.test.per_view", "view", "a")).Add(1);
  registry.GetCounter(LabeledMetric("ojv.test.per_view", "view", "b")).Add(2);
  registry.GetGauge("ojv.test.depth").Set(17);
  registry.GetHistogram("ojv.test.lat").Record(100);
  registry.GetHistogram("ojv.test.lat").Record(5000);

  std::ostringstream out;
  WritePrometheus(registry, out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> names;
  int type_lines = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      ++type_lines;
      continue;
    }
    std::string name;
    EXPECT_TRUE(ParsePromLine(line, &name)) << "malformed line: " << line;
    names.push_back(name);
  }

  auto has = [&names](const char* n) {
    return std::count(names.begin(), names.end(), std::string(n));
  };
  EXPECT_EQ(has("ojv_test_requests_total"), 1);   // counters get _total
  EXPECT_EQ(has("ojv_test_per_view_total"), 2);   // one line per label value
  EXPECT_EQ(has("ojv_test_depth"), 1);            // gauges as-is
  EXPECT_EQ(has("ojv_test_lat_count"), 1);        // histogram summary
  EXPECT_EQ(has("ojv_test_lat_sum"), 1);
  EXPECT_EQ(has("ojv_test_lat"), 2);              // quantile 0.5 and 0.99
  // # TYPE once per family: requests, per_view, depth, lat = 4.
  EXPECT_EQ(type_lines, 4);
  // The labeled family keeps its labels in the output.
  EXPECT_NE(out.str().find("ojv_test_per_view_total{view=\"a\"} 1"),
            std::string::npos);
}

TEST(WritePrometheusTest, QuantileLabelMergesIntoExistingBlock) {
  Registry registry;
  registry.GetHistogram(LabeledMetric("ojv.test.h", "view", "v")).Record(8);
  std::ostringstream out;
  WritePrometheus(registry, out);
  // The quantile label lands inside the existing {view=...} block, not
  // in a second block (which scrapers reject).
  EXPECT_NE(out.str().find("ojv_test_h{view=\"v\",quantile=\"0.5\"}"),
            std::string::npos)
      << out.str();
}

TEST(WriteSnapshotJsonTest, RoundTripsThroughParser) {
  Registry registry;
  registry.GetCounter("ojv.test.c").Add(7);
  registry.GetGauge("ojv.test.g").Set(-4);  // gauges can be negative
  registry.GetHistogram("ojv.test.h").Record(32);

  std::ostringstream out;
  WriteSnapshotJson(registry, out);
  io::JsonValue doc;
  std::string error;
  ASSERT_TRUE(io::ParseJson(out.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.FindPath({"counters", "ojv.test.c"})->AsInt(), 7);
  EXPECT_EQ(doc.FindPath({"gauges", "ojv.test.g"})->AsInt(), -4);
  EXPECT_EQ(doc.FindPath({"histograms", "ojv.test.h", "count"})->AsInt(), 1);
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/ojv_export_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

TEST(WriteSnapshotFilesTest, WritesBothFilesAtomically) {
  Registry registry;
  registry.GetCounter("ojv.test.c").Add(1);
  const std::string dir = MakeTempDir();
  std::string error;
  ASSERT_TRUE(WriteSnapshotFiles(registry, dir, &error)) << error;

  std::ifstream prom(dir + "/metrics.prom");
  ASSERT_TRUE(prom.good());
  std::stringstream prom_body;
  prom_body << prom.rdbuf();
  EXPECT_NE(prom_body.str().find("ojv_test_c_total 1"), std::string::npos);

  io::JsonValue doc;
  ASSERT_TRUE(io::ParseJsonFile(dir + "/snapshot.json", &doc, &error)) << error;
  EXPECT_EQ(doc.FindPath({"counters", "ojv.test.c"})->AsInt(), 1);
  // No leftover temporaries.
  EXPECT_NE(access((dir + "/metrics.prom.tmp").c_str(), F_OK), 0);
}

TEST(WriteSnapshotFilesTest, UnwritableDirReportsError) {
  Registry registry;
  std::string error;
  EXPECT_FALSE(
      WriteSnapshotFiles(registry, "/nonexistent/ojv/export/dir", &error));
  EXPECT_FALSE(error.empty());
}

/// Minimal HTTP/1.0 GET against 127.0.0.1:port; returns body and
/// stores the status line.
bool HttpGet(int port, const char* path, std::string* status,
             std::string* body) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return false;
  }
  std::string request = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  if (send(fd, request.data(), request.size(), MSG_NOSIGNAL) < 0) {
    close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  size_t eol = response.find("\r\n");
  size_t header_end = response.find("\r\n\r\n");
  if (eol == std::string::npos || header_end == std::string::npos) return false;
  *status = response.substr(0, eol);
  *body = response.substr(header_end + 4);
  return true;
}

TEST(HttpExportServerTest, ServesAllRoutesOnEphemeralPort) {
  HttpExportServer server;
  if (!kEnabled) {
    // OJV_OBS=OFF: no socket, no thread, constant false.
    EXPECT_FALSE(server.Start(0));
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), 0);
    return;
  }
  Registry::Global().GetCounter("ojv.test.http").Add(5);
  ASSERT_TRUE(server.Start(0));  // 0 = kernel-assigned port
  EXPECT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  std::string status, body;
  ASSERT_TRUE(HttpGet(server.port(), "/metrics", &status, &body));
  EXPECT_NE(status.find("200"), std::string::npos);
  EXPECT_NE(body.find("ojv_test_http_total"), std::string::npos);

  ASSERT_TRUE(HttpGet(server.port(), "/snapshot.json", &status, &body));
  EXPECT_NE(status.find("200"), std::string::npos);
  io::JsonValue doc;
  std::string error;
  ASSERT_TRUE(io::ParseJson(body, &doc, &error)) << error;
  EXPECT_NE(doc.FindPath({"counters", "ojv.test.http"}), nullptr);

  ASSERT_TRUE(HttpGet(server.port(), "/flight.json", &status, &body));
  EXPECT_NE(status.find("200"), std::string::npos);
  ASSERT_TRUE(io::ParseJson(body, &doc, &error)) << error;
  EXPECT_NE(doc.Find("traceEvents"), nullptr);

  ASSERT_TRUE(HttpGet(server.port(), "/no-such-route", &status, &body));
  EXPECT_NE(status.find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(HttpExportServerTest, PortInUseFailsCleanly) {
  if (!kEnabled) return;
  HttpExportServer first;
  ASSERT_TRUE(first.Start(0));
  HttpExportServer second;
  EXPECT_FALSE(second.Start(first.port()));
  EXPECT_FALSE(second.running());
}

TEST(ExportHammerTest, ConcurrentRecordVsSerialize) {
  // Writers bump counters/gauges/histograms (including a labeled family
  // that forces registry inserts mid-serialization) while readers
  // serialize both formats. TSAN-clean is the point; the value check at
  // the end proves no update was lost.
  Registry registry;
  constexpr int kWriters = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("ojv.hammer.c").Add(1);
        registry.GetGauge("ojv.hammer.g").Set(i);
        registry.GetHistogram("ojv.hammer.h").Record(i);
        registry
            .GetCounter(LabeledMetric("ojv.hammer.per_view", "view",
                                      "v" + std::to_string(t * kPerThread + i)))
            .Add(1);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&registry, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::ostringstream prom;
        WritePrometheus(registry, prom);
        std::ostringstream json;
        WriteSnapshotJson(registry, json);
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[static_cast<size_t>(t)].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(registry.GetCounter("ojv.hammer.c").value(),
            int64_t{kWriters} * kPerThread);
  EXPECT_EQ(registry.GetHistogram("ojv.hammer.h").count(),
            int64_t{kWriters} * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace ojv
