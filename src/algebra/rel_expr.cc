#include "algebra/rel_expr.h"

#include "common/check.h"

namespace ojv {

const char* JoinKindName(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
      return "join";
    case JoinKind::kLeftOuter:
      return "lojn";
    case JoinKind::kRightOuter:
      return "rojn";
    case JoinKind::kFullOuter:
      return "fojn";
    case JoinKind::kLeftSemi:
      return "semijn";
    case JoinKind::kLeftAnti:
      return "antijn";
  }
  return "?";
}

std::set<std::string> RelExpr::ReferencedTables() const {
  std::set<std::string> out;
  if (kind_ == RelKind::kScan || kind_ == RelKind::kDeltaScan) {
    out.insert(table_);
    return out;
  }
  for (const RelExprPtr& c : children_) {
    auto sub = c->ReferencedTables();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

bool RelExpr::ContainsDelta() const {
  if (kind_ == RelKind::kDeltaScan) return true;
  for (const RelExprPtr& c : children_) {
    if (c->ContainsDelta()) return true;
  }
  return false;
}

std::string RelExpr::ToString() const {
  switch (kind_) {
    case RelKind::kScan:
      return table_;
    case RelKind::kDeltaScan:
      return "d" + table_;
    case RelKind::kSelect:
      return "sel[" + predicate_->ToString() + "](" + input()->ToString() + ")";
    case RelKind::kProject: {
      std::string cols;
      for (size_t i = 0; i < projection_.size(); ++i) {
        if (i > 0) cols += ",";
        cols += projection_[i].ToString();
      }
      return "proj[" + cols + "](" + input()->ToString() + ")";
    }
    case RelKind::kJoin:
      return "(" + left()->ToString() + " " + JoinKindName(join_kind_) + " " +
             right()->ToString() + ")";
    case RelKind::kDedup:
      return "dedup(" + input()->ToString() + ")";
    case RelKind::kSubsumeRemove:
      return "unsub(" + input()->ToString() + ")";
    case RelKind::kOuterUnion:
      return "(" + left()->ToString() + " ounion " + right()->ToString() + ")";
    case RelKind::kMinUnion:
      return "(" + left()->ToString() + " munion " + right()->ToString() + ")";
    case RelKind::kNullIf: {
      std::string tabs;
      for (const std::string& t : null_tables_) {
        if (!tabs.empty()) tabs += ",";
        tabs += t;
      }
      return "nullif[" + tabs + "; keep " + predicate_->ToString() + "](" +
             input()->ToString() + ")";
    }
  }
  return "?";
}

RelExprPtr RelExpr::Scan(std::string table) {
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kScan;
  e->table_ = std::move(table);
  return e;
}

RelExprPtr RelExpr::DeltaScan(std::string table) {
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kDeltaScan;
  e->table_ = std::move(table);
  return e;
}

RelExprPtr RelExpr::Select(RelExprPtr input, ScalarExprPtr predicate) {
  OJV_CHECK(input != nullptr && predicate != nullptr, "null select operand");
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kSelect;
  e->children_ = {std::move(input)};
  e->predicate_ = std::move(predicate);
  return e;
}

RelExprPtr RelExpr::Project(RelExprPtr input, std::vector<ColumnRef> columns) {
  OJV_CHECK(input != nullptr && !columns.empty(), "bad project");
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kProject;
  e->children_ = {std::move(input)};
  e->projection_ = std::move(columns);
  return e;
}

RelExprPtr RelExpr::Join(JoinKind kind, RelExprPtr left, RelExprPtr right,
                         ScalarExprPtr predicate) {
  OJV_CHECK(left != nullptr && right != nullptr, "null join operand");
  OJV_CHECK(predicate != nullptr, "joins require a predicate");
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kJoin;
  e->join_kind_ = kind;
  e->children_ = {std::move(left), std::move(right)};
  e->predicate_ = std::move(predicate);
  return e;
}

RelExprPtr RelExpr::Dedup(RelExprPtr input) {
  OJV_CHECK(input != nullptr, "null dedup operand");
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kDedup;
  e->children_ = {std::move(input)};
  return e;
}

RelExprPtr RelExpr::SubsumeRemove(RelExprPtr input) {
  OJV_CHECK(input != nullptr, "null unsub operand");
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kSubsumeRemove;
  e->children_ = {std::move(input)};
  return e;
}

RelExprPtr RelExpr::OuterUnion(RelExprPtr left, RelExprPtr right) {
  OJV_CHECK(left != nullptr && right != nullptr, "null union operand");
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kOuterUnion;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

RelExprPtr RelExpr::MinUnion(RelExprPtr left, RelExprPtr right) {
  OJV_CHECK(left != nullptr && right != nullptr, "null union operand");
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kMinUnion;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

RelExprPtr RelExpr::NullIf(RelExprPtr input, std::set<std::string> null_tables,
                           ScalarExprPtr predicate) {
  OJV_CHECK(input != nullptr && predicate != nullptr, "null nullif operand");
  OJV_CHECK(!null_tables.empty(), "nullif requires target tables");
  auto e = std::shared_ptr<RelExpr>(new RelExpr());
  e->kind_ = RelKind::kNullIf;
  e->children_ = {std::move(input)};
  e->null_tables_ = std::move(null_tables);
  e->predicate_ = std::move(predicate);
  return e;
}

}  // namespace ojv
