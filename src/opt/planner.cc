#include "opt/planner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

namespace ojv {
namespace opt {

namespace {

bool IsLeaf(const RelExprPtr& e) {
  return e->kind() == RelKind::kScan || e->kind() == RelKind::kDeltaScan;
}

bool IsSimpleRight(const RelExprPtr& e) {
  if (IsLeaf(e)) return true;
  return e->kind() == RelKind::kSelect && IsLeaf(e->input());
}

// One main-path step of a decomposed left-deep tree.
struct Step {
  RelKind kind = RelKind::kJoin;
  // kJoin
  JoinKind join_kind = JoinKind::kInner;
  RelExprPtr right;
  std::set<std::string> right_tables;
  std::string right_table;  // single right table, "" when composite
  bool reorderable = false;
  // kJoin / kSelect / kNullIf
  ScalarExprPtr pred;
  std::set<std::string> pred_tables;
  // kNullIf
  std::set<std::string> null_tables;
};

/// Splits a left-deep expression into its base leaf and the bottom-up
/// main-path step sequence. Returns false (planner falls back to the
/// static expression) on any node outside the delta-tree grammar or a
/// join whose right operand is not simple.
bool Decompose(const RelExprPtr& expr, RelExprPtr* base,
               std::vector<Step>* steps) {
  std::vector<Step> top_down;
  RelExprPtr cur = expr;
  while (true) {
    switch (cur->kind()) {
      case RelKind::kScan:
      case RelKind::kDeltaScan:
        *base = cur;
        steps->assign(top_down.rbegin(), top_down.rend());
        return true;
      case RelKind::kSelect: {
        Step s;
        s.kind = RelKind::kSelect;
        s.pred = cur->predicate();
        if (s.pred != nullptr) s.pred_tables = s.pred->ReferencedTables();
        top_down.push_back(std::move(s));
        cur = cur->input();
        break;
      }
      case RelKind::kNullIf: {
        Step s;
        s.kind = RelKind::kNullIf;
        s.pred = cur->predicate();
        if (s.pred != nullptr) s.pred_tables = s.pred->ReferencedTables();
        s.null_tables = cur->null_tables();
        top_down.push_back(std::move(s));
        cur = cur->input();
        break;
      }
      case RelKind::kDedup:
      case RelKind::kSubsumeRemove: {
        Step s;
        s.kind = cur->kind();
        top_down.push_back(std::move(s));
        cur = cur->input();
        break;
      }
      case RelKind::kJoin: {
        if (!IsSimpleRight(cur->right())) return false;
        Step s;
        s.kind = RelKind::kJoin;
        s.join_kind = cur->join_kind();
        s.right = cur->right();
        s.right_tables = cur->right()->ReferencedTables();
        if (s.right_tables.size() == 1) s.right_table = *s.right_tables.begin();
        s.pred = cur->predicate();
        if (s.pred != nullptr) s.pred_tables = s.pred->ReferencedTables();
        // Only inner and left-outer steps provably commute within a run
        // (DESIGN.md §10); anything else is a barrier.
        s.reorderable = s.join_kind == JoinKind::kInner ||
                        s.join_kind == JoinKind::kLeftOuter;
        top_down.push_back(std::move(s));
        cur = cur->left();
        break;
      }
      default:
        return false;  // project / unions: not a delta main path
    }
  }
}

/// Output cardinality of one join step given the prefix cardinality.
double ApplyJoinCard(JoinKind kind, double card, double fanout,
                     double right_rows) {
  double inner = card * fanout;
  switch (kind) {
    case JoinKind::kInner:
      return inner;
    case JoinKind::kLeftOuter:
      return std::max(inner, card);
    case JoinKind::kRightOuter:
      return std::max(inner, right_rows);
    case JoinKind::kFullOuter:
      return std::max(inner, std::max(card, right_rows));
    case JoinKind::kLeftSemi:
      return std::min(card, inner);
    case JoinKind::kLeftAnti:
      return std::max(card - inner, 0.0);
  }
  return inner;
}

bool Placeable(const Step& s, const std::set<std::string>& avail) {
  for (const std::string& t : s.pred_tables) {
    if (avail.count(t) == 0 && s.right_tables.count(t) == 0) return false;
  }
  return true;
}

/// Orders one run of reorderable join steps. `run` holds indices into
/// `steps`; returns the chosen permutation of those indices. Exhaustive
/// branch-and-bound up to `exhaustive_max` steps, greedy beyond. Both
/// are deterministic: candidates are tried in original-index order and
/// only a strictly better cost replaces the incumbent, so among
/// cost-ties the order closest to the static plan wins.
std::vector<int> OrderRun(const std::vector<Step>& steps,
                          const std::vector<int>& run,
                          const std::vector<double>& fanout,
                          const std::vector<double>& right_rows,
                          const std::set<std::string>& avail_in,
                          double card_in, int exhaustive_max) {
  int n = static_cast<int>(run.size());
  if (n <= 1) return run;

  if (n <= exhaustive_max) {
    std::vector<int> best;
    std::vector<int> cur;
    double best_cost = std::numeric_limits<double>::infinity();
    std::set<std::string> avail = avail_in;
    std::function<void(uint32_t, double, double)> dfs =
        [&](uint32_t used, double card, double cost) {
          if (cost >= best_cost) return;
          if (static_cast<int>(cur.size()) == n) {
            best_cost = cost;
            best = cur;
            return;
          }
          for (int i = 0; i < n; ++i) {
            if (used & (1u << i)) continue;
            const Step& s = steps[static_cast<size_t>(run[static_cast<size_t>(i)])];
            if (!Placeable(s, avail)) continue;
            double next_card =
                ApplyJoinCard(s.join_kind, card, fanout[static_cast<size_t>(i)],
                              right_rows[static_cast<size_t>(i)]);
            std::vector<std::string> added;
            for (const std::string& t : s.right_tables) {
              if (avail.insert(t).second) added.push_back(t);
            }
            cur.push_back(run[static_cast<size_t>(i)]);
            dfs(used | (1u << i), next_card, cost + next_card);
            cur.pop_back();
            for (const std::string& t : added) avail.erase(t);
          }
        };
    dfs(0, card_in, 0.0);
    // The static order is always a valid completion, so best is set.
    return best.empty() ? run : best;
  }

  // Greedy: repeatedly take the placeable step with the smallest
  // resulting cardinality (ties: smallest original index). The
  // lowest-index unplaced step is always placeable (all its original
  // predecessors have smaller indices, hence are already placed or it is
  // itself the minimum), so this terminates.
  std::vector<int> order;
  std::vector<bool> used(static_cast<size_t>(n), false);
  std::set<std::string> avail = avail_in;
  double card = card_in;
  for (int placed = 0; placed < n; ++placed) {
    int pick = -1;
    double pick_card = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if (used[static_cast<size_t>(i)]) continue;
      const Step& s = steps[static_cast<size_t>(run[static_cast<size_t>(i)])];
      if (!Placeable(s, avail)) continue;
      double next_card =
          ApplyJoinCard(s.join_kind, card, fanout[static_cast<size_t>(i)],
                        right_rows[static_cast<size_t>(i)]);
      if (next_card < pick_card) {
        pick_card = next_card;
        pick = i;
      }
    }
    if (pick < 0) return run;  // cannot happen; keep static order if it does
    used[static_cast<size_t>(pick)] = true;
    order.push_back(run[static_cast<size_t>(pick)]);
    card = pick_card;
    const Step& s = steps[static_cast<size_t>(run[static_cast<size_t>(pick)])];
    avail.insert(s.right_tables.begin(), s.right_tables.end());
  }
  return order;
}

RelExprPtr Rebuild(const RelExprPtr& base, const std::vector<Step>& steps,
                   const std::vector<int>& order) {
  RelExprPtr e = base;
  for (int idx : order) {
    const Step& s = steps[static_cast<size_t>(idx)];
    switch (s.kind) {
      case RelKind::kJoin:
        e = RelExpr::Join(s.join_kind, e, s.right, s.pred);
        break;
      case RelKind::kSelect:
        e = RelExpr::Select(e, s.pred);
        break;
      case RelKind::kNullIf:
        e = RelExpr::NullIf(e, s.null_tables, s.pred);
        break;
      case RelKind::kDedup:
        e = RelExpr::Dedup(e);
        break;
      case RelKind::kSubsumeRemove:
        e = RelExpr::SubsumeRemove(e);
        break;
      default:
        break;
    }
  }
  return e;
}

// Local mirror of ivm's IsLeftDeep (opt must not depend on ivm).
bool ValidateLeftDeep(const RelExprPtr& expr) {
  switch (expr->kind()) {
    case RelKind::kScan:
    case RelKind::kDeltaScan:
      return true;
    case RelKind::kSelect:
    case RelKind::kDedup:
    case RelKind::kSubsumeRemove:
    case RelKind::kNullIf:
      return ValidateLeftDeep(expr->input());
    case RelKind::kJoin:
      return ValidateLeftDeep(expr->left()) && IsSimpleRight(expr->right());
    default:
      return false;
  }
}

void Annotate(const RelExprPtr& e, CardinalityEstimator* est,
              std::unordered_map<const RelExpr*, double>* out) {
  for (const RelExprPtr& child : e->children()) Annotate(child, est, out);
  (*out)[e.get()] = est->Estimate(e);
}

}  // namespace

const char* PlannerModeName(PlannerOptions::Mode mode) {
  switch (mode) {
    case PlannerOptions::Mode::kStatic:
      return "static";
    case PlannerOptions::Mode::kCostBased:
      return "cost_based";
  }
  return "?";
}

PlannedDelta DeltaPlanner::Plan(
    const RelExprPtr& static_expr, const std::string& delta_table,
    double delta_rows,
    const std::unordered_map<std::string, double>* fanout_ema) {
  PlannedDelta result;
  result.expr = static_expr;
  result.reordered = false;

  RelExprPtr base;
  std::vector<Step> steps;
  if (static_expr == nullptr || !Decompose(static_expr, &base, &steps)) {
    return result;  // static fallback
  }

  CardinalityEstimator est(stats_);
  est.SetDeltaRows(delta_table, delta_rows);
  for (const auto& [table, ex] : exclusions_) {
    est.SetPartitionExclusion(table, ex);
  }
  if (fanout_ema != nullptr) {
    for (const auto& [table, f] : *fanout_ema) est.SetFanoutOverride(table, f);
  }

  // Per-join-step estimates, order-independent (containment assumption).
  std::vector<double> step_fanout(steps.size(), 0);
  std::vector<double> step_right_rows(steps.size(), 0);
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].kind != RelKind::kJoin) continue;
    step_fanout[i] =
        est.JoinFanout(steps[i].right, steps[i].pred, steps[i].right_table);
    step_right_rows[i] = est.Estimate(steps[i].right);
  }

  // Walk the step list, reordering each maximal run of reorderable joins.
  std::vector<int> order;
  order.reserve(steps.size());
  std::set<std::string> avail = base->ReferencedTables();
  double card = est.Estimate(base);
  size_t i = 0;
  while (i < steps.size()) {
    const Step& s = steps[i];
    if (s.kind == RelKind::kJoin && s.reorderable) {
      std::vector<int> run;
      size_t j = i;
      while (j < steps.size() && steps[j].kind == RelKind::kJoin &&
             steps[j].reorderable) {
        run.push_back(static_cast<int>(j));
        ++j;
      }
      std::vector<double> run_fanout, run_rows;
      for (int idx : run) {
        run_fanout.push_back(step_fanout[static_cast<size_t>(idx)]);
        run_rows.push_back(step_right_rows[static_cast<size_t>(idx)]);
      }
      std::vector<int> chosen = OrderRun(steps, run, run_fanout, run_rows,
                                         avail, card,
                                         options_.exhaustive_max_joins);
      for (int idx : chosen) {
        const Step& cs = steps[static_cast<size_t>(idx)];
        card = ApplyJoinCard(cs.join_kind, card,
                             step_fanout[static_cast<size_t>(idx)],
                             step_right_rows[static_cast<size_t>(idx)]);
        avail.insert(cs.right_tables.begin(), cs.right_tables.end());
        order.push_back(idx);
        PlanStep ps;
        ps.right_table = cs.right_table;
        ps.join_kind = cs.join_kind;
        ps.fanout = step_fanout[static_cast<size_t>(idx)];
        ps.est_rows = card;
        result.steps.push_back(std::move(ps));
      }
      i = j;
      continue;
    }
    // Barrier step: stays in place, still moves the cardinality forward.
    switch (s.kind) {
      case RelKind::kJoin:
        card = ApplyJoinCard(s.join_kind, card, step_fanout[i],
                             step_right_rows[i]);
        avail.insert(s.right_tables.begin(), s.right_tables.end());
        {
          PlanStep ps;
          ps.right_table = s.right_table;
          ps.join_kind = s.join_kind;
          ps.fanout = step_fanout[i];
          ps.est_rows = card;
          result.steps.push_back(std::move(ps));
        }
        break;
      case RelKind::kSelect:
        card *= est.Selectivity(s.pred);
        break;
      default:
        break;  // λ/δ/↓ pass through
    }
    order.push_back(static_cast<int>(i));
    ++i;
  }

  bool identical = true;
  for (size_t k = 0; k < order.size(); ++k) {
    if (order[k] != static_cast<int>(k)) {
      identical = false;
      break;
    }
  }

  for (const PlanStep& ps : result.steps) {
    if (!result.order.empty()) result.order += ",";
    result.order += ps.right_table.empty() ? "(multi)" : ps.right_table;
  }

  if (!identical) {
    RelExprPtr rebuilt = Rebuild(base, steps, order);
    // Validate the λ / left-deep invariants; any failure falls back.
    if (rebuilt != nullptr && ValidateLeftDeep(rebuilt) &&
        rebuilt->ReferencedTables() == static_expr->ReferencedTables()) {
      result.expr = rebuilt;
      result.reordered = true;
    } else {
      result.steps.clear();
      result.order.clear();
      result.expr = static_expr;
      result.reordered = false;
    }
  }

  Annotate(result.expr, &est, &result.node_est);
  return result;
}

std::vector<std::string> DeltaPlanner::OrderTablesByRows(
    const std::set<std::string>& tables) {
  std::vector<std::pair<double, std::string>> rows;
  rows.reserve(tables.size());
  for (const std::string& t : tables) {
    const TableStats* stats = stats_ != nullptr ? stats_->Get(t) : nullptr;
    double n = stats != nullptr ? static_cast<double>(stats->row_count)
                                : CardinalityEstimator::kUnknownTableRows;
    rows.emplace_back(n, t);
  }
  std::sort(rows.begin(), rows.end());
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (auto& [n, t] : rows) out.push_back(std::move(t));
  return out;
}

}  // namespace opt
}  // namespace ojv
