#ifndef OJV_BASELINE_GRIFFIN_KUMAR_H_
#define OJV_BASELINE_GRIFFIN_KUMAR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "ivm/maintainer.h"
#include "ivm/materialized_view.h"
#include "ivm/view_def.h"

namespace ojv {

/// Baseline: algebraic change propagation in the style of Griffin &
/// Kumar (SIGMOD Record 27(3), 1998), the comparison algorithm of the
/// paper's §7/§8.
///
/// Characteristics reproduced (the paper's critique, §8):
///  (a) every fix-up term is computed from base tables — subtrees of the
///      view are fully re-evaluated (in both pre- and post-update states)
///      at every outer-join node above the updated table;
///  (b) the materialized view itself is never consulted;
///  (c) foreign keys and unaffected-term analysis are not used, so
///      (empty) fix-up sets are computed even when provably unnecessary.
///
/// The published rules leave the semijoin predicates unspecified; we fill
/// them in so that the algorithm is *correct* (it always produces the
/// same view state as ours), making it a fair — if anything favorably
/// treated — cost baseline.
class GriffinKumarMaintainer {
 public:
  GriffinKumarMaintainer(const Catalog* catalog, ViewDef view);

  void InitializeView();
  const MaterializedView& view() const { return *view_store_; }
  const ViewDef& view_def() const { return view_def_; }

  /// Same contract as ViewMaintainer: base table already updated.
  MaintenanceStats OnInsert(const std::string& table,
                            const std::vector<Row>& rows);
  MaintenanceStats OnDelete(const std::string& table,
                            const std::vector<Row>& rows);

 private:
  struct DeltaPair {
    Relation ins;
    Relation del;
  };

  MaintenanceStats Maintain(const std::string& table,
                            const std::vector<Row>& rows, bool is_insert);

  const Catalog* catalog_;
  ViewDef view_def_;
  std::unique_ptr<MaterializedView> view_store_;
  TableRelationCache table_cache_;
};

}  // namespace ojv

#endif  // OJV_BASELINE_GRIFFIN_KUMAR_H_
