// HeavyState / HeavyLightController unit tests: per-key netting of the
// lazy delta state, the single-table invariant, pinning, the capacity
// drain hook, and batch splitting against a skewed counterpart table.
// End-to-end equivalence of the whole heavy-light pipeline is covered by
// skew_equivalence_test.cc.

#include <gtest/gtest.h>

#include "ivm/heavy_state.h"
#include "test_util.h"

namespace ojv {
namespace {

using testing_util::CreateRstuSchema;
using testing_util::MakeV1;

Value V(int64_t x) { return Value::Int64(x); }

Row RRow(int64_t id, int64_t a, int64_t b) {
  return {V(id), V(a), V(b), V(0)};
}

const std::vector<int> kKeyPos = {0};

TEST(HeavyStateTest, NetsInsertThenDeleteToNothing) {
  HeavyState state(1 << 20);
  EXPECT_TRUE(state.empty());
  state.DivertInsert("R", kKeyPos, RRow(1, 5, 5));
  state.DivertDelete("R", kKeyPos, RRow(1, 5, 5));
  EXPECT_EQ(state.pending_rows(), 2);

  HeavyState::DrainBatch batch = state.Take();
  EXPECT_EQ(batch.table, "R");
  EXPECT_TRUE(batch.deletes.empty());
  EXPECT_TRUE(batch.inserts.empty());
  EXPECT_EQ(batch.raw_entries, 2);
  EXPECT_TRUE(state.empty());
  EXPECT_EQ(state.pending_rows(), 0);
}

TEST(HeavyStateTest, DeleteThenInsertIsAnUpdatePair) {
  HeavyState state(1 << 20);
  state.DivertDelete("R", kKeyPos, RRow(1, 5, 5));
  state.DivertInsert("R", kKeyPos, RRow(1, 6, 6));

  HeavyState::DrainBatch batch = state.Take();
  ASSERT_EQ(batch.deletes.size(), 1u);
  ASSERT_EQ(batch.inserts.size(), 1u);
  EXPECT_EQ(batch.deletes[0][1], V(5));
  EXPECT_EQ(batch.inserts[0][1], V(6));
  EXPECT_EQ(batch.update_pairs, 1);
}

TEST(HeavyStateTest, ManyTouchesOfOneKeyNetToOneStatement) {
  HeavyState state(1 << 20);
  // insert, then 10 update pairs on the same key: net = one insert of
  // the final image.
  state.DivertInsert("R", kKeyPos, RRow(1, 0, 0));
  for (int64_t i = 1; i <= 10; ++i) {
    state.DivertDelete("R", kKeyPos, RRow(1, i - 1, 0));
    state.DivertInsert("R", kKeyPos, RRow(1, i, 0));
  }
  EXPECT_EQ(state.pending_rows(), 21);

  HeavyState::DrainBatch batch = state.Take();
  EXPECT_TRUE(batch.deletes.empty());
  ASSERT_EQ(batch.inserts.size(), 1u);
  EXPECT_EQ(batch.inserts[0][1], V(10));
  EXPECT_EQ(batch.raw_entries, 21);
}

TEST(HeavyStateTest, SingleTableInvariantIsChecked) {
  HeavyState state(1 << 20);
  state.DivertInsert("R", kKeyPos, RRow(1, 5, 5));
  EXPECT_DEATH(state.DivertInsert("S", kKeyPos, RRow(2, 5, 5)),
               "spans tables");
}

TEST(HeavyStateTest, PinsClearOnTake) {
  HeavyState state(1 << 20);
  state.Pin(1, V(5));
  EXPECT_TRUE(state.IsPinned(1, V(5)));
  EXPECT_FALSE(state.IsPinned(1, V(6)));
  EXPECT_FALSE(state.IsPinned(2, V(5)));
  state.DivertInsert("R", kKeyPos, RRow(1, 5, 5));
  (void)state.Take();
  EXPECT_FALSE(state.IsPinned(1, V(5)));
}

TEST(HeavyStateTest, CapacityTripsAtTheConfiguredRowCount) {
  HeavyState state(3);
  EXPECT_FALSE(state.AtCapacity());
  state.DivertInsert("R", kKeyPos, RRow(1, 0, 0));
  state.DivertInsert("R", kKeyPos, RRow(2, 0, 0));
  EXPECT_FALSE(state.AtCapacity());
  state.DivertInsert("R", kKeyPos, RRow(3, 0, 0));
  EXPECT_TRUE(state.AtCapacity());
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() {
    CreateRstuSchema(&catalog_);
    // Make S.s_a = 7 a heavy key: fanout 12 for any R delta row with
    // r_a = 7.
    Table* s = catalog_.GetTable("S");
    for (int64_t i = 0; i < 12; ++i) {
      s->Insert({V(100 + i), V(7), V(0), V(0)});
    }
  }

  opt::HeavyHitterConfig SmallConfig() {
    opt::HeavyHitterConfig config;
    config.sketch_capacity = 8;
    config.promote_threshold = 10;
    config.demote_fraction = 0.5;
    return config;
  }

  Catalog catalog_;
};

TEST_F(ControllerTest, EdgesComeFromTheViewConjuncts) {
  ViewDef view = MakeV1(catalog_);
  HeavyLightController controller(&catalog_, view, SmallConfig());
  // V1 joins: R.r_a=S.s_a, R.r_b=T.t_b, T.t_a=U.u_a — all four tables
  // have at least one edge.
  for (const char* table : {"R", "S", "T", "U"}) {
    EXPECT_TRUE(controller.HasEdges(table)) << table;
  }
}

TEST_F(ControllerTest, SplitDivertsRowsJoiningHeavyKeys) {
  ViewDef view = MakeV1(catalog_);
  HeavyLightController controller(&catalog_, view, SmallConfig());

  // r_a = 7 probes S.s_a (count 12 >= 10: heavy); r_a = 3 is light.
  // NULL join keys are never heavy.
  std::vector<Row> rows = {RRow(1, 7, 1), RRow(2, 3, 1),
                           {V(3), Value::Null(), V(1), V(0)}};
  std::vector<Row> light = controller.SplitBatch("R", rows, /*is_insert=*/true);
  ASSERT_EQ(light.size(), 2u);
  EXPECT_EQ(light[0][0], V(2));
  EXPECT_EQ(light[1][0], V(3));
  EXPECT_TRUE(controller.HasPending());
  EXPECT_EQ(controller.pending_rows(), 1);
  EXPECT_EQ(controller.pending_table(), "R");

  HeavyState::DrainBatch batch = controller.Take();
  ASSERT_EQ(batch.inserts.size(), 1u);
  EXPECT_EQ(batch.inserts[0][0], V(1));
  EXPECT_FALSE(controller.HasPending());
}

TEST_F(ControllerTest, PinnedKeysKeepDivertingUntilDrain) {
  ViewDef view = MakeV1(catalog_);
  HeavyLightController controller(&catalog_, view, SmallConfig());

  // Divert a row carrying the heavy key (pins s_a = 7)...
  (void)controller.SplitBatch("R", {RRow(1, 7, 1)}, true);
  ASSERT_EQ(controller.pending_rows(), 1);

  // ...then shrink S so the sketch demotes 7 — the pin must keep the key
  // diverting (an eager op would touch view rows the lazy state owes).
  Table* s = catalog_.GetTable("S");
  std::vector<Row> removed_rows;
  for (int64_t i = 0; i < 10; ++i) {
    Row removed;
    ASSERT_TRUE(s->DeleteByKey({V(100 + i)}, &removed));
    removed_rows.push_back(std::move(removed));
  }
  controller.hitters()->OnDelete("S", removed_rows);

  std::vector<Row> light = controller.SplitBatch("R", {RRow(2, 7, 1)}, true);
  EXPECT_TRUE(light.empty());
  EXPECT_EQ(controller.pending_rows(), 2);

  // After the drain clears the pins, the key classifies light again.
  (void)controller.Take();
  light = controller.SplitBatch("R", {RRow(3, 7, 1)}, true);
  ASSERT_EQ(light.size(), 1u);
  EXPECT_FALSE(controller.HasPending());
}

TEST_F(ControllerTest, NeedsDrainBeforeFollowsTheContract) {
  ViewDef view = MakeV1(catalog_);
  HeavyLightController controller(&catalog_, view, SmallConfig());
  EXPECT_FALSE(controller.NeedsDrainBefore("R", true));

  (void)controller.SplitBatch("R", {RRow(1, 7, 1)}, true);
  ASSERT_TRUE(controller.HasPending());
  // Same table, divertible op: accumulate without drain.
  EXPECT_FALSE(controller.NeedsDrainBefore("R", true));
  // Any other table, or a non-divertible op, forces a drain first.
  EXPECT_TRUE(controller.NeedsDrainBefore("S", true));
  EXPECT_TRUE(controller.NeedsDrainBefore("R", false));
}

TEST_F(ControllerTest, CapacityInvokesTheDrainHook) {
  ViewDef view = MakeV1(catalog_);
  opt::HeavyHitterConfig config = SmallConfig();
  config.max_pending_rows = 2;
  HeavyLightController controller(&catalog_, view, config);
  int drains = 0;
  controller.set_drain_hook([&] {
    ++drains;
    (void)controller.Take();
  });

  (void)controller.SplitBatch("R", {RRow(1, 7, 1), RRow(2, 7, 1)}, true);
  EXPECT_EQ(drains, 1);  // cap hit after the batch's diversions
  (void)controller.SplitBatch("R", {RRow(3, 7, 1)}, true);
  EXPECT_EQ(controller.pending_rows(), 1);
}

TEST_F(ControllerTest, ExclusionsReflectThePromotedPartition) {
  ViewDef view = MakeV1(catalog_);
  HeavyLightController controller(&catalog_, view, SmallConfig());
  (void)controller.SplitBatch("R", {RRow(1, 7, 1)}, true);  // promotes 7

  auto exclusions = controller.Exclusions("R");
  ASSERT_TRUE(exclusions.count("S") > 0);
  EXPECT_DOUBLE_EQ(exclusions["S"].rows, 12.0);
  EXPECT_DOUBLE_EQ(exclusions["S"].keys, 1.0);
  // U is not a counterpart of any R edge.
  EXPECT_EQ(exclusions.count("U"), 0u);
}

}  // namespace
}  // namespace ojv
