// The planner's legality contract, checked by brute force: every valid
// left-deep join order of a mixed inner/left-outer delta chain over 4
// tables evaluates to the same relation — serial and morsel-parallel —
// and full maintenance under the cost-based planner (serial and
// parallel) stays identical to a from-scratch recomputation.

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/recompute.h"
#include "common/rng.h"
#include "exec/evaluator.h"
#include "ivm/maintainer.h"
#include "opt/planner.h"

namespace ojv {
namespace {

struct ChainStep {
  const char* table;
  JoinKind kind;
  const char* delta_col;  // D column the step's predicate uses
  const char* right_col;
};

// All predicates reference the delta table D only, so every permutation
// of the three steps is a valid left-deep order.
const ChainStep kSteps[3] = {
    {"A", JoinKind::kLeftOuter, "d_a", "a_k"},
    {"B", JoinKind::kInner, "d_b", "b_k"},
    {"C", JoinKind::kLeftOuter, "d_c", "c_k"},
};

class PlannerPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    catalog_.CreateTable(
        "D",
        Schema({ColumnDef{"d_id", ValueType::kInt64, false},
                ColumnDef{"d_a", ValueType::kInt64, true},
                ColumnDef{"d_b", ValueType::kInt64, true},
                ColumnDef{"d_c", ValueType::kInt64, true}}),
        {"d_id"});
    for (const ChainStep& step : kSteps) {
      std::string prefix(1, static_cast<char>(std::tolower(step.table[0])));
      catalog_.CreateTable(
          step.table,
          Schema({ColumnDef{prefix + "_id", ValueType::kInt64, false},
                  ColumnDef{prefix + "_k", ValueType::kInt64, true}}),
          {prefix + "_id"});
      Table* t = catalog_.GetTable(step.table);
      int rows = static_cast<int>(rng.Uniform(5, 25));
      for (int i = 0; i < rows; ++i) {
        Value key = rng.Chance(0.15) ? Value::Null()
                                     : Value::Int64(rng.Uniform(0, 5));
        t->Insert(Row{Value::Int64(i), key});
      }
    }
    Table* d = catalog_.GetTable("D");
    int rows = static_cast<int>(rng.Uniform(8, 20));
    for (int i = 0; i < rows; ++i) {
      d->Insert(RandomDRow(&rng, i));
    }
    // The pending delta of D, tagged with D's schema.
    delta_ = std::make_unique<Relation>(
        Evaluator::SchemaFor(*catalog_.GetTable("D")));
    int delta_rows = static_cast<int>(rng.Uniform(1, 8));
    for (int i = 0; i < delta_rows; ++i) {
      delta_->Add(RandomDRow(&rng, 1000 + i));
    }
  }

  static Row RandomDRow(Rng* rng, int key) {
    auto jcol = [&] {
      return rng->Chance(0.15) ? Value::Null()
                               : Value::Int64(rng->Uniform(0, 5));
    };
    return Row{Value::Int64(key), jcol(), jcol(), jcol()};
  }

  /// ΔD joined through the three steps in the given order, projected to
  /// a fixed column list so every order has the same output schema.
  RelExprPtr ChainFor(const std::vector<int>& order) {
    RelExprPtr expr = RelExpr::DeltaScan("D");
    for (int idx : order) {
      const ChainStep& step = kSteps[static_cast<size_t>(idx)];
      std::string prefix(1, static_cast<char>(std::tolower(step.table[0])));
      expr = RelExpr::Join(
          step.kind, expr, RelExpr::Scan(step.table),
          ScalarExpr::ColumnsEqual({"D", step.delta_col},
                                   {step.table, step.right_col}));
    }
    std::vector<ColumnRef> out = {{"D", "d_id"}, {"D", "d_a"},
                                  {"D", "d_b"},  {"D", "d_c"},
                                  {"A", "a_id"}, {"A", "a_k"},
                                  {"B", "b_id"}, {"B", "b_k"},
                                  {"C", "c_id"}, {"C", "c_k"}};
    return RelExpr::Project(expr, out);
  }

  Relation Eval(const RelExprPtr& expr, int threads) {
    Evaluator evaluator(&catalog_);
    ExecConfig exec;
    exec.num_threads = threads;
    std::shared_ptr<ThreadPool> pool =
        threads > 1 ? ThreadPool::Shared(threads) : nullptr;
    evaluator.set_exec(exec, pool.get());
    evaluator.BindDelta("D", delta_.get());
    return evaluator.EvalToRelation(expr);
  }

  Catalog catalog_;
  std::unique_ptr<Relation> delta_;
};

TEST_P(PlannerPropertyTest, EveryValidOrderEvaluatesIdentically) {
  std::vector<int> order = {0, 1, 2};
  Relation reference = Eval(ChainFor(order), /*threads=*/1);
  do {
    Relation serial = Eval(ChainFor(order), /*threads=*/1);
    Relation parallel = Eval(ChainFor(order), /*threads=*/4);
    std::string diff;
    EXPECT_TRUE(SameBag(reference, serial, &diff))
        << "order " << order[0] << order[1] << order[2] << " serial: "
        << diff;
    EXPECT_TRUE(SameBag(reference, parallel, &diff))
        << "order " << order[0] << order[1] << order[2] << " parallel: "
        << diff;
  } while (std::next_permutation(order.begin(), order.end()));
}

// Full-system check: maintenance with the cost-based planner (serial and
// morsel-parallel) tracks a from-scratch recomputation across a random
// insert/delete workload, and both maintainers agree with the static
// planner row for row.
class PlannerMaintenanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerMaintenanceTest, CostBasedMaintenanceMatchesRecompute) {
  Rng rng(GetParam());
  Catalog catalog;
  catalog.CreateTable(
      "D",
      Schema({ColumnDef{"d_id", ValueType::kInt64, false},
              ColumnDef{"d_a", ValueType::kInt64, true},
              ColumnDef{"d_b", ValueType::kInt64, true}}),
      {"d_id"});
  catalog.CreateTable(
      "A",
      Schema({ColumnDef{"a_id", ValueType::kInt64, false},
              ColumnDef{"a_k", ValueType::kInt64, true}}),
      {"a_id"});
  catalog.CreateTable(
      "B",
      Schema({ColumnDef{"b_id", ValueType::kInt64, false},
              ColumnDef{"b_k", ValueType::kInt64, true}}),
      {"b_id"});
  auto fill = [&](const char* name, int n) {
    Table* t = catalog.GetTable(name);
    for (int i = 0; i < n; ++i) {
      Value key = rng.Chance(0.2) ? Value::Null()
                                  : Value::Int64(rng.Uniform(0, 4));
      if (std::string(name) == "D") {
        t->Insert(Row{Value::Int64(i), key,
                      rng.Chance(0.2) ? Value::Null()
                                      : Value::Int64(rng.Uniform(0, 4))});
      } else {
        t->Insert(Row{Value::Int64(i), key});
      }
    }
  };
  fill("D", static_cast<int>(rng.Uniform(8, 20)));
  fill("A", static_cast<int>(rng.Uniform(5, 15)));
  fill("B", static_cast<int>(rng.Uniform(5, 15)));

  RelExprPtr tree = RelExpr::Join(
      JoinKind::kInner,
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("D"),
                    RelExpr::Scan("A"),
                    ScalarExpr::ColumnsEqual({"D", "d_a"}, {"A", "a_k"})),
      RelExpr::Scan("B"),
      ScalarExpr::ColumnsEqual({"D", "d_b"}, {"B", "b_k"}));
  ViewDef view("planner_prop", tree,
               {{"D", "d_id"},
                {"D", "d_a"},
                {"D", "d_b"},
                {"A", "a_id"},
                {"A", "a_k"},
                {"B", "b_id"},
                {"B", "b_k"}},
               catalog);

  MaintenanceOptions costed;  // cost-based default
  MaintenanceOptions parallel = costed;
  parallel.exec.num_threads = 4;
  MaintenanceOptions statik;
  statik.planner.mode = opt::PlannerOptions::Mode::kStatic;
  ViewMaintainer costed_m(&catalog, view, costed);
  ViewMaintainer parallel_m(&catalog, view, parallel);
  ViewMaintainer static_m(&catalog, view, statik);
  costed_m.InitializeView();
  parallel_m.InitializeView();
  static_m.InitializeView();

  int64_t next_key = 5000;
  const char* tables[] = {"D", "A", "B"};
  for (int op = 0; op < 8; ++op) {
    const char* name = tables[rng.Uniform(0, 2)];
    Table* table = catalog.GetTable(name);
    if (rng.Chance(0.4) && table->size() > 2) {
      // Delete a couple of random existing rows.
      std::vector<Row> keys;
      table->ForEach([&](const Row& row) {
        if (keys.size() < 2 && rng.Chance(0.3)) keys.push_back(Row{row[0]});
      });
      std::vector<Row> deleted = ApplyBaseDelete(table, keys);
      costed_m.OnDelete(name, deleted);
      parallel_m.OnDelete(name, deleted);
      static_m.OnDelete(name, deleted);
    } else {
      std::vector<Row> rows;
      int n = static_cast<int>(rng.Uniform(1, 5));
      for (int i = 0; i < n; ++i) {
        Value key = rng.Chance(0.2) ? Value::Null()
                                    : Value::Int64(rng.Uniform(0, 4));
        if (std::string(name) == "D") {
          rows.push_back(Row{Value::Int64(next_key++), key,
                             rng.Chance(0.2)
                                 ? Value::Null()
                                 : Value::Int64(rng.Uniform(0, 4))});
        } else {
          rows.push_back(Row{Value::Int64(next_key++), key});
        }
      }
      std::vector<Row> inserted = ApplyBaseInsert(table, rows);
      costed_m.OnInsert(name, inserted);
      parallel_m.OnInsert(name, inserted);
      static_m.OnInsert(name, inserted);
    }
    std::string diff;
    ASSERT_TRUE(ViewMatchesRecompute(catalog, view, costed_m.view(), &diff))
        << "costed op " << op << " on " << name << ": " << diff;
    ASSERT_TRUE(ViewMatchesRecompute(catalog, view, parallel_m.view(), &diff))
        << "parallel op " << op << " on " << name << ": " << diff;
    ASSERT_TRUE(ViewMatchesRecompute(catalog, view, static_m.view(), &diff))
        << "static op " << op << " on " << name << ": " << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));
INSTANTIATE_TEST_SUITE_P(Seeds, PlannerMaintenanceTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace ojv
