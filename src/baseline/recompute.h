#ifndef OJV_BASELINE_RECOMPUTE_H_
#define OJV_BASELINE_RECOMPUTE_H_

#include <string>

#include "exec/relation.h"
#include "ivm/materialized_view.h"
#include "ivm/view_def.h"

namespace ojv {

/// Recomputes the view contents from scratch (the correctness oracle for
/// every incremental strategy, and the naive maintenance baseline).
Relation RecomputeView(const Catalog& catalog, const ViewDef& view);

/// True when the materialized view's contents equal a from-scratch
/// recomputation; fills *diff with a description otherwise.
bool ViewMatchesRecompute(const Catalog& catalog, const ViewDef& view,
                          const MaterializedView& materialized,
                          std::string* diff);

/// Same oracle over already-materialized contents (e.g. a pinned
/// ViewSnapshot's relation).
bool ViewMatchesRecompute(const Catalog& catalog, const ViewDef& view,
                          const Relation& contents, std::string* diff);

}  // namespace ojv

#endif  // OJV_BASELINE_RECOMPUTE_H_
