#ifndef OJV_NORMALFORM_MAINTENANCE_GRAPH_H_
#define OJV_NORMALFORM_MAINTENANCE_GRAPH_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "normalform/subsumption_graph.h"
#include "normalform/term.h"

namespace ojv {

/// How an update of table T affects a term (paper §3.1).
enum class AffectKind {
  kDirect,      // T is among the term's source tables
  kIndirect,    // T is in the source of at least one immediate parent
  kUnaffected,
};

const char* AffectKindName(AffectKind kind);

/// Options for building the maintenance graph.
struct MaintenanceGraphOptions {
  /// Apply Theorem 3: a directly affected term is in fact unaffected if
  /// its source contains a table R with a foreign key to the updated
  /// table T, joined on that FK in the term. Eliminating such nodes may
  /// orphan indirectly affected nodes, which are then also eliminated
  /// ("reduced maintenance graph", §6.2).
  bool exploit_foreign_keys = true;
};

/// Classification of every term for an update of one base table, plus the
/// per-term directly-affected parent sets needed by the secondary delta.
class MaintenanceGraph {
 public:
  /// `terms` + `graph` describe the view's normal form; `updated_table`
  /// is the table being inserted into / deleted from.
  MaintenanceGraph(const std::vector<Term>& terms,
                   const SubsumptionGraph& graph,
                   const std::string& updated_table, const Catalog& catalog,
                   const MaintenanceGraphOptions& options =
                       MaintenanceGraphOptions());

  AffectKind Kind(int term_index) const {
    return kinds_[static_cast<size_t>(term_index)];
  }

  /// Indexes of directly affected terms (after any FK reduction).
  const std::vector<int>& DirectTerms() const { return direct_; }
  /// Indexes of indirectly affected terms (after any FK reduction).
  const std::vector<int>& IndirectTerms() const { return indirect_; }

  /// pard(n): the directly affected immediate parents of term n.
  const std::vector<int>& DirectParents(int term_index) const {
    return direct_parents_[static_cast<size_t>(term_index)];
  }
  /// pari(n): the indirectly affected immediate parents of term n.
  const std::vector<int>& IndirectParents(int term_index) const {
    return indirect_parents_[static_cast<size_t>(term_index)];
  }

  /// Text form "{C,O,L}:D {C}:I ..." sorted; tests compare against the
  /// paper's Figures 1(b) and 4.
  std::string ToString(const std::vector<Term>& terms) const;

  /// Directly affected terms Theorem 3 eliminated from the graph (0
  /// when exploit_foreign_keys was off or nothing was immune).
  int fk_eliminated() const { return fk_eliminated_; }

 private:
  int fk_eliminated_ = 0;
  std::vector<AffectKind> kinds_;
  std::vector<int> direct_;
  std::vector<int> indirect_;
  std::vector<std::vector<int>> direct_parents_;
  std::vector<std::vector<int>> indirect_parents_;
};

/// True when the §6 FK optimizations may use this constraint for the
/// given operation (paper's caveats: no cascading deletes, not
/// deferrable; the delete+insert caveat is handled by the maintainer).
bool ForeignKeyUsableForMaintenance(const ForeignKey& fk);

}  // namespace ojv

#endif  // OJV_NORMALFORM_MAINTENANCE_GRAPH_H_
