file(REMOVE_RECURSE
  "libojv_catalog.a"
)
