#ifndef OJV_IO_JSON_H_
#define OJV_IO_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ojv {
namespace io {

/// A parsed JSON value. Dependency-free recursive-descent parser for the
/// benchmark JSON the repo's own tools emit (bench_util WriteJson,
/// BENCH_pipeline.json): full JSON syntax, numbers as double, objects as
/// ordered maps (deterministic iteration for tooling output).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// Object member lookup; null for missing keys or non-objects.
  const JsonValue* Find(const std::string& key) const;
  /// Nested lookup: Find("a") then Find("b")...; null on any miss.
  const JsonValue* FindPath(const std::vector<std::string>& keys) const;
  /// Number at `key`, or `fallback` when absent / not a number.
  double NumberOr(const std::string& key, double fallback) const;
  /// String at `key`, or `fallback` when absent / not a string.
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses `text` as one JSON document (trailing whitespace allowed).
/// Returns false and fills *error (with byte offset) on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

/// Reads and parses a JSON file; false with *error on IO/parse failure.
bool ParseJsonFile(const std::string& path, JsonValue* out,
                   std::string* error);

}  // namespace io
}  // namespace ojv

#endif  // OJV_IO_JSON_H_
