# Empty dependencies file for order_documents.
# This may be replaced when dependencies are built.
