#include "ivm/explain.h"

#include <sstream>

namespace ojv {
namespace {

void AppendTermLine(std::ostringstream& out, const Term& term) {
  out << "  " << term.Label();
  if (!term.predicates.empty()) {
    out << "  where ";
    for (size_t i = 0; i < term.predicates.size(); ++i) {
      if (i > 0) out << " AND ";
      out << term.predicates[i]->ToString();
    }
  }
  out << "\n";
}

}  // namespace

std::string ExplainNormalForm(const ViewMaintainer& maintainer) {
  std::ostringstream out;
  const std::vector<Term>& terms = maintainer.terms();
  out << "view " << maintainer.view_def().name() << " = "
      << maintainer.view_def().tree()->ToString() << "\n";
  out << "normal form (" << terms.size() << " terms):\n";
  for (const Term& term : terms) AppendTermLine(out, term);
  out << "subsumption graph:\n";
  std::string edges = maintainer.subsumption_graph().ToString(terms);
  std::istringstream lines(edges);
  std::string line;
  while (std::getline(lines, line)) out << "  " << line << "\n";
  return out.str();
}

std::string ExplainMaintenance(const ViewMaintainer& maintainer) {
  std::ostringstream out;
  out << ExplainNormalForm(maintainer);
  const std::vector<Term>& terms = maintainer.terms();

  for (const std::string& table : maintainer.view_def().tables()) {
    out << "\non update of " << table << ":\n";
    if (maintainer.DeltaIsEmpty(table)) {
      out << "  no-op: every directly affected term is protected by a\n"
          << "  foreign key (Theorem 3); the view cannot change.\n";
      continue;
    }
    const MaintenanceGraph& graph = maintainer.maintenance_graph(table);
    out << "  directly affected:";
    for (int i : graph.DirectTerms()) {
      out << " " << terms[static_cast<size_t>(i)].Label();
    }
    out << "\n";
    const RelExprPtr& delta = maintainer.delta_expr(table);
    out << "  primary delta  = " << delta->ToString() << "\n";
    if (delta->kind() == RelKind::kDeltaScan ||
        (delta->kind() == RelKind::kSelect &&
         delta->input()->kind() == RelKind::kDeltaScan)) {
      out << "  fast path: the delta expression is the (filtered) delta\n"
          << "  itself; no joins are needed.\n";
    }
    if (graph.IndirectTerms().empty()) {
      out << "  secondary delta: none (no indirectly affected terms)\n";
    } else {
      out << "  secondary delta (orphan clean-up):\n";
      for (int i : graph.IndirectTerms()) {
        out << "    " << terms[static_cast<size_t>(i)].Label()
            << " orphans, via directly affected parent(s)";
        for (int parent : graph.DirectParents(i)) {
          out << " " << terms[static_cast<size_t>(parent)].Label();
        }
        out << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace ojv
