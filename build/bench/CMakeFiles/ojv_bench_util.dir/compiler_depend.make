# Empty compiler generated dependencies file for ojv_bench_util.
# This may be replaced when dependencies are built.
