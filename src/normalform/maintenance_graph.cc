#include "normalform/maintenance_graph.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace ojv {
namespace {

// True if `conjunct` is an equality between exactly these two columns.
bool IsEqualityBetween(const ScalarExprPtr& conjunct, const ColumnRef& a,
                       const ColumnRef& b) {
  if (conjunct->kind() != ScalarKind::kCompare ||
      conjunct->compare_op() != CompareOp::kEq) {
    return false;
  }
  if (conjunct->left()->kind() != ScalarKind::kColumn ||
      conjunct->right()->kind() != ScalarKind::kColumn) {
    return false;
  }
  const ColumnRef& l = conjunct->left()->column();
  const ColumnRef& r = conjunct->right()->column();
  return (l == a && r == b) || (l == b && r == a);
}

// Theorem 3: the net contribution of a directly affected term is
// unaffected if its source contains another table R with a foreign key
// referencing the updated table T, and the term joins R and T on that FK.
bool TermImmuneByForeignKey(const Term& term, const std::string& updated_table,
                            const Catalog& catalog) {
  for (const ForeignKey* fk :
       catalog.ForeignKeysReferencing(updated_table)) {
    if (!ForeignKeyUsableForMaintenance(*fk)) continue;
    if (term.source.count(fk->child_table) == 0) continue;
    bool joins_on_fk = true;
    for (size_t i = 0; i < fk->child_columns.size() && joins_on_fk; ++i) {
      ColumnRef child{fk->child_table, fk->child_columns[i]};
      ColumnRef parent{fk->parent_table, fk->parent_columns[i]};
      bool found = false;
      for (const ScalarExprPtr& conjunct : term.predicates) {
        if (IsEqualityBetween(conjunct, child, parent)) {
          found = true;
          break;
        }
      }
      joins_on_fk = found;
    }
    if (joins_on_fk) return true;
  }
  return false;
}

}  // namespace

const char* AffectKindName(AffectKind kind) {
  switch (kind) {
    case AffectKind::kDirect:
      return "D";
    case AffectKind::kIndirect:
      return "I";
    case AffectKind::kUnaffected:
      return "U";
  }
  return "?";
}

bool ForeignKeyUsableForMaintenance(const ForeignKey& fk) {
  return !fk.cascading_delete && !fk.deferrable;
}

MaintenanceGraph::MaintenanceGraph(const std::vector<Term>& terms,
                                   const SubsumptionGraph& graph,
                                   const std::string& updated_table,
                                   const Catalog& catalog,
                                   const MaintenanceGraphOptions& options) {
  const int n = static_cast<int>(terms.size());
  kinds_.assign(static_cast<size_t>(n), AffectKind::kUnaffected);
  direct_parents_.resize(static_cast<size_t>(n));
  indirect_parents_.resize(static_cast<size_t>(n));

  // Pass 1: directly affected terms, with the Theorem 3 reduction.
  for (int i = 0; i < n; ++i) {
    const Term& term = terms[static_cast<size_t>(i)];
    if (term.source.count(updated_table) == 0) continue;
    if (options.exploit_foreign_keys &&
        TermImmuneByForeignKey(term, updated_table, catalog)) {
      ++fk_eliminated_;
      if constexpr (obs::kEnabled) {
        static obs::Counter& eliminated = obs::Registry::Global().GetCounter(
            "ojv.normalform.theorem3_eliminations");
        eliminated.Add(1);
      }
      continue;  // eliminated from the maintenance graph
    }
    kinds_[static_cast<size_t>(i)] = AffectKind::kDirect;
  }

  // Pass 2: indirectly affected terms — those with at least one
  // *surviving* directly affected immediate parent.
  for (int i = 0; i < n; ++i) {
    if (kinds_[static_cast<size_t>(i)] == AffectKind::kDirect) continue;
    if (terms[static_cast<size_t>(i)].source.count(updated_table) > 0) {
      continue;  // direct-but-eliminated: stays out of the graph
    }
    for (int parent : graph.Parents(i)) {
      if (kinds_[static_cast<size_t>(parent)] == AffectKind::kDirect) {
        kinds_[static_cast<size_t>(i)] = AffectKind::kIndirect;
        break;
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    switch (kinds_[static_cast<size_t>(i)]) {
      case AffectKind::kDirect:
        direct_.push_back(i);
        break;
      case AffectKind::kIndirect:
        indirect_.push_back(i);
        break;
      case AffectKind::kUnaffected:
        break;
    }
    for (int parent : graph.Parents(i)) {
      if (kinds_[static_cast<size_t>(parent)] == AffectKind::kDirect) {
        direct_parents_[static_cast<size_t>(i)].push_back(parent);
      } else if (kinds_[static_cast<size_t>(parent)] == AffectKind::kIndirect) {
        indirect_parents_[static_cast<size_t>(i)].push_back(parent);
      }
    }
  }
}

std::string MaintenanceGraph::ToString(const std::vector<Term>& terms) const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == AffectKind::kUnaffected) continue;
    parts.push_back(terms[i].Label() + ":" + AffectKindName(kinds_[i]));
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += " ";
    out += parts[i];
  }
  return out;
}

}  // namespace ojv
