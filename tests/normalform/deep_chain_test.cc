// Stress: chains of full outer joins. The paper notes the normal form
// of N full outer joins can reach 2^N + N terms in the worst case; for
// an adjacent-predicate chain the terms are exactly the non-empty
// contiguous intervals plus... we don't assume — we verify the count
// empirically, the JDNF ≡ tree equivalence, and end-to-end maintenance
// on the widest view in the suite.

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "exec/evaluator.h"
#include "ivm/maintainer.h"
#include "normalform/jdnf.h"
#include "normalform/subsumption_graph.h"
#include "test_util.h"

namespace ojv {
namespace {

// Chain of N tables A fo B fo C ... joined on adjacent "_a" columns,
// left-deep: (((A fo B) fo C) fo D) ...
ViewDef MakeFoChain(const Catalog& catalog,
                    const std::vector<std::string>& tables) {
  auto col = [](const std::string& t, const char* suffix) {
    std::string p(1, static_cast<char>(std::tolower(t[0])));
    return ScalarExpr::Column(t, p + suffix);
  };
  RelExprPtr expr = RelExpr::Scan(tables[0]);
  for (size_t i = 1; i < tables.size(); ++i) {
    expr = RelExpr::Join(
        JoinKind::kFullOuter, expr, RelExpr::Scan(tables[i]),
        ScalarExpr::Compare(CompareOp::kEq, col(tables[i - 1], "_a"),
                            col(tables[i], "_a")));
  }
  std::vector<ColumnRef> output;
  for (const std::string& t : tables) {
    std::string p(1, static_cast<char>(std::tolower(t[0])));
    for (const char* suffix : {"_id", "_a", "_b", "_v"}) {
      output.push_back(ColumnRef{t, p + suffix});
    }
  }
  return ViewDef("fo_chain", expr, std::move(output), catalog);
}

// For an adjacent-predicate fo chain, every term is a contiguous
// interval of the chain: N(N+1)/2 terms.
TEST(DeepChainTest, FoChainTermsAreContiguousIntervals) {
  for (int n : {2, 3, 4, 5, 6}) {
    Catalog catalog;
    std::vector<std::string> tables =
        testing_util::CreateRandomSchema(&catalog, n);
    ViewDef view = MakeFoChain(catalog, tables);
    std::vector<Term> terms = ComputeJdnf(view.tree(), catalog);
    EXPECT_EQ(static_cast<int>(terms.size()), n * (n + 1) / 2) << "n=" << n;
    for (const Term& term : terms) {
      // Contiguity: table indexes within the chain form an interval.
      int lo = n, hi = -1;
      for (const std::string& t : term.source) {
        int idx = static_cast<int>(t[0] - 'A');
        lo = std::min(lo, idx);
        hi = std::max(hi, idx);
      }
      EXPECT_EQ(static_cast<int>(term.source.size()), hi - lo + 1)
          << term.Label();
    }
  }
}

TEST(DeepChainTest, NormalFormEquivalenceUpToSixTables) {
  for (int n : {3, 4, 5, 6}) {
    Catalog catalog;
    std::vector<std::string> tables =
        testing_util::CreateRandomSchema(&catalog, n);
    Rng rng(static_cast<uint64_t>(n) * 31);
    int64_t key = 1;
    for (const std::string& t : tables) {
      Table* table = catalog.GetTable(t);
      for (Row& row : testing_util::RandomRstuRows(t, &rng, 12, 3, &key)) {
        table->Insert(std::move(row));
      }
    }
    ViewDef view = MakeFoChain(catalog, tables);
    std::vector<Term> terms = ComputeJdnf(view.tree(), catalog);
    Evaluator evaluator(&catalog);
    Relation from_tree = evaluator.EvalToRelation(view.tree());
    Relation from_normal_form =
        evaluator.EvalToRelation(NormalFormRelExpr(terms));
    std::string diff;
    ASSERT_TRUE(SameBag(from_tree, from_normal_form, &diff))
        << "n=" << n << ": " << diff;
  }
}

TEST(DeepChainTest, SubsumptionGraphHasIntervalContainmentEdges) {
  Catalog catalog;
  std::vector<std::string> tables =
      testing_util::CreateRandomSchema(&catalog, 5);
  ViewDef view = MakeFoChain(catalog, tables);
  std::vector<Term> terms = ComputeJdnf(view.tree(), catalog);
  SubsumptionGraph graph(terms);
  // Each interval's minimal supersets are the two one-step extensions
  // (one at each end, when they exist).
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const Term& term = terms[static_cast<size_t>(i)];
    int expected = 0;
    bool touches_left = term.source.count("A") > 0;
    bool touches_right = term.source.count("E") > 0;
    if (!touches_left) ++expected;
    if (!touches_right) ++expected;
    EXPECT_EQ(static_cast<int>(graph.Parents(i).size()), expected)
        << term.Label();
  }
}

TEST(DeepChainTest, MaintenanceOnAFiveTableChain) {
  Catalog catalog;
  std::vector<std::string> tables =
      testing_util::CreateRandomSchema(&catalog, 5);
  Rng rng(88);
  int64_t key = 1;
  for (const std::string& t : tables) {
    Table* table = catalog.GetTable(t);
    for (Row& row : testing_util::RandomRstuRows(t, &rng, 15, 3, &key)) {
      table->Insert(std::move(row));
    }
  }
  ViewDef view = MakeFoChain(catalog, tables);
  ViewMaintainer maintainer(&catalog, view, MaintenanceOptions());
  maintainer.InitializeView();

  // Update the middle table (maximum direct + indirect term counts),
  // then the ends.
  int64_t fresh = 10000;
  for (const char* name : {"C", "A", "E", "C", "B", "D"}) {
    Table* table = catalog.GetTable(name);
    if (rng.Chance(0.5) && table->size() > 3) {
      std::vector<Row> deleted = ApplyBaseDelete(
          table, testing_util::SampleKeys(*table, &rng, 4));
      maintainer.OnDelete(name, deleted);
    } else {
      std::vector<Row> inserted = ApplyBaseInsert(
          table, testing_util::RandomRstuRows(name, &rng, 5, 3, &fresh));
      maintainer.OnInsert(name, inserted);
    }
    std::string diff;
    ASSERT_TRUE(ViewMatchesRecompute(catalog, view, maintainer.view(), &diff))
        << name << ": " << diff;
  }

  // The middle table sees 6 direct terms (intervals containing C) and
  // clean-up work for the adjacent intervals.
  MaintenanceStats stats = maintainer.OnInsert(
      "C", ApplyBaseInsert(catalog.GetTable("C"),
                           testing_util::RandomRstuRows("C", &rng, 2, 3,
                                                        &fresh)));
  EXPECT_EQ(stats.direct_terms, 9);  // intervals containing C out of 15
  EXPECT_GT(stats.indirect_terms, 0);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog, view, maintainer.view(), &diff))
      << diff;
}

}  // namespace
}  // namespace ojv
