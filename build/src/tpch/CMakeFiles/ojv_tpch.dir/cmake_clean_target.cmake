file(REMOVE_RECURSE
  "libojv_tpch.a"
)
