#include "bench_util.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace ojv {
namespace bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sf=", 5) == 0) {
      options.scale_factor = std::atof(arg + 5);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--batches=", 10) == 0) {
      options.batches.clear();
      const char* p = arg + 10;
      while (*p != '\0') {
        options.batches.push_back(std::atoll(p));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    }
  }
  return options;
}

TpchInstance::TpchInstance(const BenchOptions& options) {
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions dbgen_options;
  dbgen_options.scale_factor = options.scale_factor;
  dbgen_options.seed = options.seed;
  dbgen = std::make_unique<tpch::Dbgen>(dbgen_options);
  dbgen->Populate(&catalog);
  refresh = std::make_unique<tpch::RefreshStream>(&catalog, dbgen.get(),
                                                  options.seed + 1);
}

double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) {
    std::printf("%16s", c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%16s", "---------------");
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) {
    std::printf("%16s", c.c_str());
  }
  std::printf("\n");
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  return buf;
}

std::string FormatCount(int64_t n) { return std::to_string(n); }

}  // namespace bench
}  // namespace ojv
