#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace ojv {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
  // Degenerate range.
  EXPECT_EQ(rng.Uniform(5, 5), 5);
}

TEST(RngTest, UniformCoversTheRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(99);
  Rng fork1 = a.Fork(1);
  Rng b(99);
  Rng fork2 = b.Fork(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork1.Next(), fork2.Next());
  }
}

TEST(RngTest, TextHasRequestedLength) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::string t = rng.Text(5, 12);
    EXPECT_GE(t.size(), 5u);
    EXPECT_LE(t.size(), 12u);
  }
}

TEST(ZipfDistributionTest, RanksStayInRangeAndSkewToZero) {
  Rng rng(21);
  ZipfDistribution zipf(10, 1.2);
  std::vector<int64_t> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    int64_t rank = zipf.Sample(&rng);
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 10);
    ++counts[static_cast<size_t>(rank)];
  }
  // Rank 0 dominates and frequencies are monotonically non-increasing
  // within sampling noise: at s=1.2 rank 0 carries ~3.6x rank 3's mass.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  EXPECT_GT(counts[0], 3 * counts[3]);
}

TEST(ZipfDistributionTest, ZeroExponentDegeneratesToUniform) {
  Rng rng(22);
  ZipfDistribution zipf(8, 0.0);
  std::vector<int64_t> counts(8, 0);
  for (int i = 0; i < 16000; ++i) ++counts[static_cast<size_t>(zipf.Sample(&rng))];
  for (int64_t c : counts) {
    EXPECT_GT(c, 1600);  // expected 2000 each; allow 20% slack
    EXPECT_LT(c, 2400);
  }
}

TEST(ZipfDistributionTest, SingleElementDomain) {
  Rng rng(23);
  ZipfDistribution zipf(1, 1.5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0);
}

TEST(ZipfDistributionTest, DeterministicForSameSeed) {
  ZipfDistribution zipf(64, 0.8);
  Rng a(5), b(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(zipf.Sample(&a), zipf.Sample(&b));
  }
}

}  // namespace
}  // namespace ojv
