#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>

namespace ojv {
namespace obs {

int Histogram::BucketOf(int64_t value) {
  if (value <= 1) return 0;
  int b = 64 - std::countl_zero(static_cast<uint64_t>(value) - 1);
  return std::min(b, Histogram::kBuckets - 1);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string LabeledMetric(const std::string& base, const std::string& label_key,
                          const std::string& label_value) {
  std::string out;
  out.reserve(base.size() + label_key.size() + label_value.size() + 5);
  out += base;
  out += '{';
  out += label_key;
  out += "=\"";
  // Prometheus label-value escaping: backslash, double quote, newline.
  for (char c : label_value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"}";
  return out;
}

void Histogram::Record(int64_t value) {
  // Clamp negatives: a negative duration (wall-clock adjustment) would
  // land in bucket 0 regardless, but poison sum_ and every mean derived
  // from it.
  if (value < 0) value = 0;
  buckets_[static_cast<size_t>(BucketOf(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

int64_t Histogram::PercentileBound(double p) const {
  int64_t total = count();
  if (total <= 0) return 0;
  // Rank of the p-th percentile sample, rounding up: p99.9 of 100
  // samples is the 100th sample, not the 99th.
  int64_t rank = static_cast<int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  rank = std::clamp<int64_t>(rank, 1, total);
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank) {
      return BucketUpperBound(b);
    }
  }
  return int64_t{1} << (kBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Registry::Shard& Registry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter& Registry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.counters[name];
}

Gauge& Registry::GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.gauges[name];
}

Histogram& Registry::GetHistogram(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.histograms[name];
}

std::vector<std::pair<std::string, int64_t>> Registry::CounterSnapshot() const {
  std::vector<std::pair<std::string, int64_t>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, counter] : shard.counters) {
      out.emplace_back(name, counter.value());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, int64_t>> Registry::GaugeSnapshot() const {
  std::vector<std::pair<std::string, int64_t>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, gauge] : shard.gauges) {
      out.emplace_back(name, gauge.value());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::HistogramSnapshots() const {
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, hist] : shard.histograms) {
      HistogramSnapshot snap;
      snap.count = hist.count();
      snap.sum = hist.sum();
      snap.p50 = hist.PercentileBound(50);
      snap.p99 = hist.PercentileBound(99);
      out.emplace_back(name, snap);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void Registry::WriteJson(std::ostream& out) const {
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : CounterSnapshot()) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": " << value;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : GaugeSnapshot()) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": " << value;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : HistogramSnapshots()) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": {\"count\": " << snap.count
        << ", \"sum\": " << snap.sum << ", \"p50\": " << snap.p50
        << ", \"p99\": " << snap.p99 << "}";
  }
  out << "}}";
}

void Registry::ResetForTest() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [name, counter] : shard.counters) counter.Reset();
    for (auto& [name, gauge] : shard.gauges) gauge.Reset();
    for (auto& [name, hist] : shard.histograms) hist.Reset();
  }
}

}  // namespace obs
}  // namespace ojv
