// Tree-structured object construction — the second motivation from the
// paper's introduction: "Outer-join queries are also used for
// constructing tree-structured objects (e.g. XML) from data stored in
// flat tables. Outer joins are needed so we can also retain objects that
// lack some subobjects."
//
// This example materializes an outer-join view of customer → orders →
// lineitem and renders per-customer XML-ish documents from it. Because
// the joins are outer, customers without orders and orders without
// lineitems still produce (smaller) documents. The view is maintained
// incrementally while update traffic arrives, and the documents are
// re-rendered from the view alone — no base-table access.

#include <cstdio>
#include <map>

#include "baseline/recompute.h"
#include "ivm/maintainer.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

using namespace ojv;

namespace {

ViewDef MakeDocumentView(const Catalog& catalog) {
  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  // customer lo (orders lo lineitem): every customer yields a document,
  // with or without orders; every order appears, with or without lines.
  RelExprPtr ol = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      eq("orders", "o_orderkey", "lineitem", "l_orderkey"));
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("customer"), ol,
      eq("customer", "c_custkey", "orders", "o_custkey"));
  std::vector<ColumnRef> output = {
      {"customer", "c_custkey"},    {"customer", "c_name"},
      {"orders", "o_orderkey"},     {"orders", "o_orderdate"},
      {"lineitem", "l_orderkey"},   {"lineitem", "l_linenumber"},
      {"lineitem", "l_quantity"}};
  return ViewDef("doc_view", tree, std::move(output), catalog);
}

// Renders one customer's document from the materialized view.
std::string RenderDocument(const MaterializedView& view, int64_t custkey) {
  const BoundSchema& schema = view.schema();
  int c_name = schema.Find("customer", "c_name");
  int c_key = schema.Find("customer", "c_custkey");
  int o_key = schema.Find("orders", "o_orderkey");
  int l_line = schema.Find("lineitem", "l_linenumber");
  int l_qty = schema.Find("lineitem", "l_quantity");

  Row probe(static_cast<size_t>(schema.num_columns()), Value::Null());
  probe[static_cast<size_t>(c_key)] = Value::Int64(custkey);
  std::vector<int64_t> rows =
      view.LookupByTableKey("customer", probe, schema.KeyPositions("customer"));
  if (rows.empty()) return "";

  // Group lineitems under orders.
  std::map<int64_t, std::vector<std::string>> orders;
  std::string name;
  for (int64_t id : rows) {
    const Row& row = view.row(id);
    name = row[static_cast<size_t>(c_name)].ToString();
    if (row[static_cast<size_t>(o_key)].is_null()) continue;
    int64_t okey = row[static_cast<size_t>(o_key)].int64();
    auto& lines = orders[okey];
    if (!row[static_cast<size_t>(l_line)].is_null()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "      <line n=\"%s\" qty=\"%s\"/>",
                    row[static_cast<size_t>(l_line)].ToString().c_str(),
                    row[static_cast<size_t>(l_qty)].ToString().c_str());
      lines.push_back(buf);
    }
  }
  std::string doc = "  <customer id=\"" + std::to_string(custkey) +
                    "\" name=\"" + name + "\">\n";
  for (const auto& [okey, lines] : orders) {
    doc += "    <order id=\"" + std::to_string(okey) + "\"";
    if (lines.empty()) {
      doc += "/>  <!-- order without lineitems -->\n";
    } else {
      doc += ">\n";
      for (const std::string& line : lines) doc += line + "\n";
      doc += "    </order>\n";
    }
  }
  if (orders.empty()) {
    doc += "    <!-- customer without orders -->\n";
  }
  doc += "  </customer>\n";
  return doc;
}

}  // namespace

int main() {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions options;
  options.scale_factor = 0.001;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);

  ViewDef view = MakeDocumentView(catalog);
  ViewMaintainer maintainer(&catalog, view, MaintenanceOptions());
  maintainer.InitializeView();
  std::printf("document view over %lld customers, %lld view rows\n\n",
              static_cast<long long>(catalog.GetTable("customer")->size()),
              static_cast<long long>(maintainer.view().size()));

  // A customer that certainly has no orders (custkey % 3 == 0).
  std::printf("<catalog>\n%s", RenderDocument(maintainer.view(), 3).c_str());
  // A customer with orders.
  std::printf("%s</catalog>\n", RenderDocument(maintainer.view(), 1).c_str());

  // Incremental traffic: a new order for customer 3 turns its empty
  // document into one with an order element — maintained, not rebuilt.
  tpch::RefreshStream refresh(&catalog, &dbgen, 7);
  std::vector<Row> new_orders = refresh.NewOrders(8);
  new_orders[0][1] = Value::Int64(3);  // o_custkey = 3
  std::vector<Row> inserted =
      ApplyBaseInsert(catalog.GetTable("orders"), new_orders);
  maintainer.OnInsert("orders", inserted);

  std::printf("\nafter inserting an order for customer 3:\n<catalog>\n%s"
              "</catalog>\n",
              RenderDocument(maintainer.view(), 3).c_str());

  std::string diff;
  bool ok = ViewMatchesRecompute(catalog, view, maintainer.view(), &diff);
  std::printf("\nview == recompute: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
