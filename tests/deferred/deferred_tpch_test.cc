// End-to-end policy equivalence on the paper's experiment view V3 over
// TPC-H: the same randomized refresh-stream mix (order+lineitem arrivals,
// lineitem deletions and updates) driven through three databases whose
// only difference is the view's refresh policy. After a final refresh
// the deferred views must be byte-identical to the eagerly maintained
// one, which in turn must match a from-scratch recompute (§7 setup).

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "exec/relation.h"
#include "ivm/database.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

using deferred::RefreshPolicy;

class DeferredTpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::DbgenOptions options;
    options.scale_factor = 0.002;
    dbgen_ = std::make_unique<tpch::Dbgen>(options);
    for (Database* db : All()) {
      tpch::CreateSchema(db->catalog());
      dbgen_->Populate(db->catalog());
      views_.push_back(
          db->CreateMaterializedView(tpch::MakeV3(*db->catalog())));
    }
    on_demand_.SetRefreshPolicy("v3", RefreshPolicy::kOnDemand);
    deferred::ThresholdConfig config;
    config.max_pending_rows = 64;
    threshold_.SetRefreshPolicy("v3", RefreshPolicy::kThreshold, config);
  }

  std::vector<Database*> All() {
    return {&immediate_, &on_demand_, &threshold_};
  }

  void InsertAll(const std::string& table, const std::vector<Row>& rows) {
    for (Database* db : All()) {
      Database::StatementResult result = db->Insert(table, rows);
      ASSERT_TRUE(result.ok()) << result.error;
      ASSERT_EQ(result.rows_rejected, 0);
    }
  }

  std::unique_ptr<tpch::Dbgen> dbgen_;
  Database immediate_, on_demand_, threshold_;
  std::vector<ViewMaintainer*> views_;
};

TEST_F(DeferredTpchTest, PoliciesConvergeOnRandomizedRefreshMix) {
  // One stream drives all three databases: their base states stay
  // identical, only view maintenance timing differs.
  tpch::RefreshStream stream(immediate_.catalog(), dbgen_.get(), 42);
  Rng rng(7);
  const Table& lineitem = *immediate_.catalog()->GetTable("lineitem");
  int quantity = lineitem.schema().IndexOf("l_quantity");

  for (int round = 0; round < 5; ++round) {
    // RF1: new orders arriving with their lineitems.
    std::vector<Row> orders = stream.NewOrders(4);
    std::vector<Row> lines = stream.NewLineitemsFor(orders, 2);
    InsertAll("orders", orders);
    InsertAll("lineitem", lines);

    // Lineitems for existing orders.
    InsertAll("lineitem", stream.NewLineitems(12));

    // RF2: lineitem deletions.
    std::vector<Row> doomed = stream.PickLineitemDeleteKeys(8);
    for (Database* db : All()) {
      Database::StatementResult result = db->Delete("lineitem", doomed);
      ASSERT_TRUE(result.ok()) << result.error;
    }

    // Updates: bump l_quantity on existing lineitems (keys unchanged, so
    // the delete+insert pair stays an update pair through the log).
    std::vector<Row> update_keys = stream.PickLineitemDeleteKeys(4);
    std::vector<Row> new_rows;
    for (const Row& key : update_keys) {
      const Row* current = lineitem.FindByKey(key);
      ASSERT_NE(current, nullptr);
      Row row = *current;
      row[static_cast<size_t>(quantity)] =
          Value::Float64(static_cast<double>(rng.Uniform(1, 50)));
      new_rows.push_back(std::move(row));
    }
    for (Database* db : All()) {
      Database::StatementResult result =
          db->Update("lineitem", update_keys, new_rows);
      ASSERT_TRUE(result.ok()) << result.error;
    }

    // New parts and customers feed the view's orphan terms.
    InsertAll("part", stream.NewParts(3));
    InsertAll("customer", stream.NewCustomers(2));
  }

  // The deferred databases really deferred: the on-demand view has never
  // refreshed, the threshold view has (64-row trips), and both logged
  // real batches.
  EXPECT_GT(on_demand_.PendingRows("v3"), 0);
  const deferred::ViewRefreshState threshold_state =
      threshold_.RefreshState("v3");
  EXPECT_GT(threshold_state.refreshes, 0);
  EXPECT_GT(threshold_state.raw_entries, 0);

  deferred::RefreshStats stats = on_demand_.Refresh("v3");
  EXPECT_GT(stats.raw_entries, 0);
  threshold_.Refresh("v3");
  EXPECT_EQ(on_demand_.PendingRows("v3"), 0);
  EXPECT_EQ(threshold_.PendingRows("v3"), 0);

  std::string diff;
  EXPECT_TRUE(SameBag(views_[0]->view().AsRelation(),
                      views_[1]->view().AsRelation(), &diff))
      << "on-demand diverged from immediate: " << diff;
  EXPECT_TRUE(SameBag(views_[0]->view().AsRelation(),
                      views_[2]->view().AsRelation(), &diff))
      << "threshold diverged from immediate: " << diff;
  EXPECT_TRUE(ViewMatchesRecompute(*immediate_.catalog(),
                                   views_[0]->view_def(), views_[0]->view(),
                                   &diff))
      << diff;
}

}  // namespace
}  // namespace ojv
