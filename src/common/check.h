#ifndef OJV_COMMON_CHECK_H_
#define OJV_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ojv {

/// Internal-invariant checking. These guard programming errors (malformed
/// plans, schema mismatches), not data errors, so they abort rather than
/// return a status. The message should say which invariant broke.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "OJV_CHECK failed at %s:%d: (%s) %s\n", file, line,
               expr, msg);
  std::abort();
}

}  // namespace ojv

#define OJV_CHECK(expr, msg)                               \
  do {                                                     \
    if (!(expr)) {                                         \
      ::ojv::CheckFailed(__FILE__, __LINE__, #expr, msg);  \
    }                                                      \
  } while (0)

#endif  // OJV_COMMON_CHECK_H_
