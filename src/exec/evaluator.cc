#include "exec/evaluator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "exec/bound_scalar.h"

namespace ojv {
namespace {

// Hash of row values at given positions (NULL hashes to a sentinel).
size_t HashAt(const Row& row, const std::vector<int>& positions) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int p : positions) {
    h ^= row[static_cast<size_t>(p)].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool AnyNullAt(const Row& row, const std::vector<int>& positions) {
  for (int p : positions) {
    if (row[static_cast<size_t>(p)].is_null()) return true;
  }
  return false;
}

bool EqualAt(const Row& a, const std::vector<int>& pa, const Row& b,
             const std::vector<int>& pb) {
  for (size_t i = 0; i < pa.size(); ++i) {
    if (a[static_cast<size_t>(pa[i])] != b[static_cast<size_t>(pb[i])]) {
      return false;
    }
  }
  return true;
}

// Non-null column bitmask of a row, as a string key.
std::string NullMask(const Row& row) {
  std::string mask(row.size(), '0');
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null()) mask[i] = '1';
  }
  return mask;
}

bool IsStrictSubsetMask(const std::string& small, const std::string& big) {
  bool strict = false;
  for (size_t i = 0; i < small.size(); ++i) {
    if (small[i] == '1' && big[i] == '0') return false;
    if (small[i] == '0' && big[i] == '1') strict = true;
  }
  return strict;
}

size_t HashFullRow(const Row& row) {
  size_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Wraps a caller-owned relation without taking ownership.
std::shared_ptr<const Relation> NonOwning(const Relation* relation) {
  return std::shared_ptr<const Relation>(relation, [](const Relation*) {});
}

std::shared_ptr<const Relation> Owned(Relation relation) {
  return std::make_shared<const Relation>(std::move(relation));
}

}  // namespace

std::shared_ptr<const Relation> TableRelationCache::Get(const Table& table) {
  Entry& entry = entries_[table.name()];
  if (entry.relation == nullptr || entry.version != table.version()) {
    entry.relation =
        std::make_shared<const Relation>(Evaluator::RelationFrom(table));
    entry.version = table.version();
  }
  return entry.relation;
}

BoundSchema Evaluator::SchemaFor(const Table& table) {
  BoundSchema schema;
  for (int i = 0; i < table.schema().num_columns(); ++i) {
    const ColumnDef& def = table.schema().column(i);
    int key_ordinal = -1;
    for (size_t k = 0; k < table.key_positions().size(); ++k) {
      if (table.key_positions()[k] == i) {
        key_ordinal = static_cast<int>(k);
      }
    }
    schema.AddColumn(
        BoundColumn{table.name(), def.name, def.type, key_ordinal});
  }
  return schema;
}

Relation Evaluator::RelationFrom(const Table& table) {
  Relation rel(SchemaFor(table));
  rel.mutable_rows()->reserve(static_cast<size_t>(table.size()));
  table.ForEach([&](const Row& row) { rel.Add(row); });
  return rel;
}

std::shared_ptr<const Relation> Evaluator::Eval(const RelExprPtr& expr) const {
  OJV_CHECK(expr != nullptr, "null relational expression");
  switch (expr->kind()) {
    case RelKind::kScan:
      return EvalScan(*expr);
    case RelKind::kDeltaScan:
      return EvalDeltaScan(*expr);
    case RelKind::kSelect:
      return Owned(EvalSelect(*expr));
    case RelKind::kProject:
      return Owned(EvalProject(*expr));
    case RelKind::kJoin:
      return Owned(EvalJoin(*expr));
    case RelKind::kDedup:
      return Owned(DedupRows(*Eval(expr->input())));
    case RelKind::kSubsumeRemove:
      return Owned(RemoveSubsumed(*Eval(expr->input())));
    case RelKind::kOuterUnion:
      return Owned(OuterUnionOf(*Eval(expr->left()), *Eval(expr->right())));
    case RelKind::kMinUnion:
      return Owned(RemoveSubsumed(
          OuterUnionOf(*Eval(expr->left()), *Eval(expr->right()))));
    case RelKind::kNullIf:
      return Owned(EvalNullIf(*expr));
  }
  OJV_CHECK(false, "unreachable");
}

std::shared_ptr<const Relation> Evaluator::EvalScan(const RelExpr& expr) const {
  auto it = overrides_.find(expr.table());
  if (it != overrides_.end()) return NonOwning(it->second);
  const Table* table = catalog_->GetTable(expr.table());
  if (cache_ != nullptr) return cache_->Get(*table);
  return Owned(RelationFrom(*table));
}

std::shared_ptr<const Relation> Evaluator::EvalDeltaScan(
    const RelExpr& expr) const {
  auto it = deltas_.find(expr.table());
  OJV_CHECK(it != deltas_.end(), "unbound delta scan");
  return NonOwning(it->second);
}

Relation Evaluator::EvalSelect(const RelExpr& expr) const {
  std::shared_ptr<const Relation> in = Eval(expr.input());
  BoundScalar pred = BoundScalar::Compile(expr.predicate(), in->schema());
  Relation out(in->schema());
  for (const Row& row : in->rows()) {
    if (pred.EvalBool(row)) out.Add(row);
  }
  return out;
}

Relation Evaluator::EvalProject(const RelExpr& expr) const {
  std::shared_ptr<const Relation> in = Eval(expr.input());
  BoundSchema schema;
  std::vector<int> positions;
  for (const ColumnRef& ref : expr.projection()) {
    int p = in->schema().IndexOf(ref);
    positions.push_back(p);
    schema.AddColumn(in->schema().column(p));
  }
  Relation out(std::move(schema));
  for (const Row& row : in->rows()) {
    Row projected;
    projected.reserve(positions.size());
    for (int p : positions) projected.push_back(row[static_cast<size_t>(p)]);
    out.Add(std::move(projected));
  }
  return out;
}

Relation Evaluator::EvalJoin(const RelExpr& expr) const {
  std::shared_ptr<const Relation> lp = Eval(expr.left());
  std::shared_ptr<const Relation> rp = Eval(expr.right());
  const Relation& l = *lp;
  const Relation& r = *rp;
  const JoinKind kind = expr.join_kind();
  const bool semi_or_anti =
      kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti;

  // Combined schema (left columns then right columns).
  BoundSchema combined;
  for (const BoundColumn& c : l.schema().columns()) combined.AddColumn(c);
  for (const BoundColumn& c : r.schema().columns()) {
    OJV_CHECK(l.schema().Find(c.table, c.column) < 0,
              "join inputs must have disjoint columns");
    combined.AddColumn(c);
  }

  // Split the predicate into hashable equality conjuncts and a residual.
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  std::vector<ScalarExprPtr> residual_conjuncts;
  for (const ScalarExprPtr& c : SplitConjuncts(expr.predicate())) {
    bool handled = false;
    if (c->kind() == ScalarKind::kCompare &&
        c->compare_op() == CompareOp::kEq &&
        c->left()->kind() == ScalarKind::kColumn &&
        c->right()->kind() == ScalarKind::kColumn) {
      int ll = l.schema().Find(c->left()->column());
      int lr = r.schema().Find(c->right()->column());
      int rl = l.schema().Find(c->right()->column());
      int rr = r.schema().Find(c->left()->column());
      if (ll >= 0 && lr >= 0) {
        left_keys.push_back(ll);
        right_keys.push_back(lr);
        handled = true;
      } else if (rl >= 0 && rr >= 0) {
        left_keys.push_back(rl);
        right_keys.push_back(rr);
        handled = true;
      }
    }
    if (!handled) residual_conjuncts.push_back(c);
  }
  ScalarExprPtr residual_expr = MakeConjunction(residual_conjuncts);

  if (join_algorithm_ == JoinAlgorithm::kSortMerge && !left_keys.empty() &&
      !semi_or_anti) {
    return EvalSortMergeJoin(expr, l, r, left_keys, right_keys,
                             residual_expr);
  }

  BoundScalar residual;
  bool has_residual = residual_expr != nullptr;
  if (has_residual) residual = BoundScalar::Compile(residual_expr, combined);

  // Inner joins are symmetric: build the hash table over the smaller
  // input and probe with the larger (output column order is unchanged).
  if (kind == JoinKind::kInner && !left_keys.empty() && l.size() < r.size()) {
    std::unordered_multimap<size_t, int64_t> build;
    build.reserve(static_cast<size_t>(l.size()));
    for (int64_t i = 0; i < l.size(); ++i) {
      if (!AnyNullAt(l.row(i), left_keys)) {
        build.emplace(HashAt(l.row(i), left_keys), i);
      }
    }
    Relation out(combined);
    const int lcols = l.schema().num_columns();
    const int rcols = r.schema().num_columns();
    Row combined_row(static_cast<size_t>(lcols + rcols));
    for (int64_t ri = 0; ri < r.size(); ++ri) {
      const Row& rrow = r.row(ri);
      if (AnyNullAt(rrow, right_keys)) continue;
      auto range = build.equal_range(HashAt(rrow, right_keys));
      for (auto it = range.first; it != range.second; ++it) {
        const Row& lrow = l.row(it->second);
        if (!EqualAt(lrow, left_keys, rrow, right_keys)) continue;
        for (int i = 0; i < lcols; ++i) {
          combined_row[static_cast<size_t>(i)] = lrow[static_cast<size_t>(i)];
        }
        for (int i = 0; i < rcols; ++i) {
          combined_row[static_cast<size_t>(lcols + i)] =
              rrow[static_cast<size_t>(i)];
        }
        if (has_residual && !residual.EvalBool(combined_row)) continue;
        out.Add(combined_row);
      }
    }
    return out;
  }

  // Build hash table over the right input (skips NULL keys: SQL equality
  // can never match them).
  std::unordered_multimap<size_t, int64_t> hash;
  if (!left_keys.empty()) {
    hash.reserve(static_cast<size_t>(r.size()));
    for (int64_t i = 0; i < r.size(); ++i) {
      if (!AnyNullAt(r.row(i), right_keys)) {
        hash.emplace(HashAt(r.row(i), right_keys), i);
      }
    }
  }

  Relation out(semi_or_anti ? l.schema() : combined);
  std::vector<char> right_matched(static_cast<size_t>(r.size()), 0);
  const int lcols = l.schema().num_columns();
  const int rcols = r.schema().num_columns();

  Row combined_row(static_cast<size_t>(lcols + rcols));
  auto try_match = [&](const Row& lrow, int64_t ri, bool* matched_out) {
    const Row& rrow = r.row(ri);
    if (!left_keys.empty() && !EqualAt(lrow, left_keys, rrow, right_keys)) {
      return;
    }
    if (has_residual || !semi_or_anti) {
      for (int i = 0; i < lcols; ++i) {
        combined_row[static_cast<size_t>(i)] = lrow[static_cast<size_t>(i)];
      }
      for (int i = 0; i < rcols; ++i) {
        combined_row[static_cast<size_t>(lcols + i)] =
            rrow[static_cast<size_t>(i)];
      }
    }
    if (has_residual && !residual.EvalBool(combined_row)) return;
    *matched_out = true;
    right_matched[static_cast<size_t>(ri)] = 1;
    if (kind == JoinKind::kInner || kind == JoinKind::kLeftOuter ||
        kind == JoinKind::kRightOuter || kind == JoinKind::kFullOuter) {
      out.Add(combined_row);
    }
  };

  for (int64_t li = 0; li < l.size(); ++li) {
    const Row& lrow = l.row(li);
    bool matched = false;
    if (!left_keys.empty()) {
      if (!AnyNullAt(lrow, left_keys)) {
        auto range = hash.equal_range(HashAt(lrow, left_keys));
        for (auto it = range.first; it != range.second; ++it) {
          try_match(lrow, it->second, &matched);
          if (matched && semi_or_anti) break;
        }
      }
    } else {
      for (int64_t ri = 0; ri < r.size(); ++ri) {
        try_match(lrow, ri, &matched);
        if (matched && semi_or_anti) break;
      }
    }
    switch (kind) {
      case JoinKind::kLeftOuter:
      case JoinKind::kFullOuter:
        if (!matched) {
          Row row = lrow;
          row.resize(static_cast<size_t>(lcols + rcols), Value::Null());
          out.Add(std::move(row));
        }
        break;
      case JoinKind::kLeftSemi:
        if (matched) out.Add(lrow);
        break;
      case JoinKind::kLeftAnti:
        if (!matched) out.Add(lrow);
        break;
      default:
        break;
    }
  }
  if (kind == JoinKind::kRightOuter || kind == JoinKind::kFullOuter) {
    for (int64_t ri = 0; ri < r.size(); ++ri) {
      if (!right_matched[static_cast<size_t>(ri)]) {
        Row row(static_cast<size_t>(lcols), Value::Null());
        const Row& rrow = r.row(ri);
        row.insert(row.end(), rrow.begin(), rrow.end());
        out.Add(std::move(row));
      }
    }
  }
  return out;
}

Relation Evaluator::EvalNullIf(const RelExpr& expr) const {
  std::shared_ptr<const Relation> in = Eval(expr.input());
  BoundScalar pred = BoundScalar::Compile(expr.predicate(), in->schema());
  // Positions of columns belonging to the nulled tables.
  std::vector<int> null_positions;
  for (int i = 0; i < in->schema().num_columns(); ++i) {
    if (expr.null_tables().count(in->schema().column(i).table) > 0) {
      null_positions.push_back(i);
    }
  }
  Relation out(in->schema());
  for (const Row& row : in->rows()) {
    if (pred.EvalBool(row)) {
      out.Add(row);
    } else {
      Row nulled = row;
      for (int p : null_positions) {
        nulled[static_cast<size_t>(p)] = Value::Null();
      }
      out.Add(std::move(nulled));
    }
  }
  return out;
}

Relation Evaluator::EvalSortMergeJoin(
    const RelExpr& expr, const Relation& l, const Relation& r,
    const std::vector<int>& left_keys, const std::vector<int>& right_keys,
    const ScalarExprPtr& residual_expr) const {
  const JoinKind kind = expr.join_kind();
  BoundSchema combined;
  for (const BoundColumn& c : l.schema().columns()) combined.AddColumn(c);
  for (const BoundColumn& c : r.schema().columns()) combined.AddColumn(c);
  BoundScalar residual;
  const bool has_residual = residual_expr != nullptr;
  if (has_residual) residual = BoundScalar::Compile(residual_expr, combined);

  // Sort row indexes by key; NULL keys sort first and are skipped by the
  // merge (SQL equality never matches them) but still surface through
  // the outer-join passes below.
  auto order_by = [](const Relation& rel, const std::vector<int>& keys) {
    std::vector<int64_t> idx(static_cast<size_t>(rel.size()));
    for (int64_t i = 0; i < rel.size(); ++i) idx[static_cast<size_t>(i)] = i;
    std::sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
      for (int k : keys) {
        int c = rel.row(a)[static_cast<size_t>(k)].SortCompare(
            rel.row(b)[static_cast<size_t>(k)]);
        if (c != 0) return c < 0;
      }
      return a < b;
    });
    return idx;
  };
  std::vector<int64_t> li = order_by(l, left_keys);
  std::vector<int64_t> ri = order_by(r, right_keys);

  auto key_null = [](const Relation& rel, int64_t row,
                     const std::vector<int>& keys) {
    for (int k : keys) {
      if (rel.row(row)[static_cast<size_t>(k)].is_null()) return true;
    }
    return false;
  };
  auto compare = [&](int64_t lr, int64_t rr) {
    for (size_t k = 0; k < left_keys.size(); ++k) {
      int c = l.row(lr)[static_cast<size_t>(left_keys[k])].SortCompare(
          r.row(rr)[static_cast<size_t>(right_keys[k])]);
      if (c != 0) return c;
    }
    return 0;
  };

  Relation out(combined);
  std::vector<char> left_matched(static_cast<size_t>(l.size()), 0);
  std::vector<char> right_matched(static_cast<size_t>(r.size()), 0);
  const int lcols = l.schema().num_columns();
  const int rcols = r.schema().num_columns();
  Row combined_row(static_cast<size_t>(lcols + rcols));

  size_t a = 0;
  size_t b = 0;
  while (a < li.size() && key_null(l, li[a], left_keys)) ++a;
  while (b < ri.size() && key_null(r, ri[b], right_keys)) ++b;
  while (a < li.size() && b < ri.size()) {
    int c = compare(li[a], ri[b]);
    if (c < 0) {
      ++a;
      continue;
    }
    if (c > 0) {
      ++b;
      continue;
    }
    // Equal-key groups: cross product.
    size_t a_end = a;
    while (a_end < li.size() && compare(li[a_end], ri[b]) == 0) ++a_end;
    size_t b_end = b;
    while (b_end < ri.size() && compare(li[a], ri[b_end]) == 0) ++b_end;
    for (size_t i = a; i < a_end; ++i) {
      const Row& lrow = l.row(li[i]);
      for (size_t j = b; j < b_end; ++j) {
        const Row& rrow = r.row(ri[j]);
        for (int x = 0; x < lcols; ++x) {
          combined_row[static_cast<size_t>(x)] = lrow[static_cast<size_t>(x)];
        }
        for (int x = 0; x < rcols; ++x) {
          combined_row[static_cast<size_t>(lcols + x)] =
              rrow[static_cast<size_t>(x)];
        }
        if (has_residual && !residual.EvalBool(combined_row)) continue;
        left_matched[static_cast<size_t>(li[i])] = 1;
        right_matched[static_cast<size_t>(ri[j])] = 1;
        out.Add(combined_row);
      }
    }
    a = a_end;
    b = b_end;
  }

  if (kind == JoinKind::kLeftOuter || kind == JoinKind::kFullOuter) {
    for (int64_t i = 0; i < l.size(); ++i) {
      if (!left_matched[static_cast<size_t>(i)]) {
        Row row = l.row(i);
        row.resize(static_cast<size_t>(lcols + rcols), Value::Null());
        out.Add(std::move(row));
      }
    }
  }
  if (kind == JoinKind::kRightOuter || kind == JoinKind::kFullOuter) {
    for (int64_t i = 0; i < r.size(); ++i) {
      if (!right_matched[static_cast<size_t>(i)]) {
        Row row(static_cast<size_t>(lcols), Value::Null());
        const Row& rrow = r.row(i);
        row.insert(row.end(), rrow.begin(), rrow.end());
        out.Add(std::move(row));
      }
    }
  }
  return out;
}

Relation Evaluator::DedupRows(Relation input) {
  std::unordered_multimap<size_t, size_t> seen;
  std::vector<Row> kept;
  for (Row& row : *input.mutable_rows()) {
    size_t h = HashFullRow(row);
    bool duplicate = false;
    auto range = seen.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (kept[it->second] == row) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      seen.emplace(h, kept.size());
      kept.push_back(std::move(row));
    }
  }
  *input.mutable_rows() = std::move(kept);
  return input;
}

Relation Evaluator::RemoveSubsumed(Relation input) {
  const std::vector<Row>& rows = input.rows();
  if (rows.empty()) return input;

  // Group row indexes by non-null mask.
  std::unordered_map<std::string, std::vector<size_t>> groups;
  std::vector<std::string> masks(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    masks[i] = NullMask(rows[i]);
    groups[masks[i]].push_back(i);
  }
  if (groups.size() == 1) return input;  // identical masks cannot subsume

  // For each mask, find the strict-superset masks and test membership of
  // each row's non-null projection among superset rows.
  std::vector<char> drop(rows.size(), 0);
  for (const auto& [mask, indexes] : groups) {
    std::vector<int> proj;
    for (size_t c = 0; c < mask.size(); ++c) {
      if (mask[c] == '1') proj.push_back(static_cast<int>(c));
    }
    for (const auto& [other_mask, other_indexes] : groups) {
      if (!IsStrictSubsetMask(mask, other_mask)) continue;
      // Hash the superset group's rows projected onto `proj`.
      std::unordered_multimap<size_t, size_t> table;
      table.reserve(other_indexes.size());
      for (size_t oi : other_indexes) {
        table.emplace(HashAt(rows[oi], proj), oi);
      }
      for (size_t i : indexes) {
        if (drop[i]) continue;
        auto range = table.equal_range(HashAt(rows[i], proj));
        for (auto it = range.first; it != range.second; ++it) {
          if (EqualAt(rows[i], proj, rows[it->second], proj)) {
            drop[i] = 1;
            break;
          }
        }
      }
    }
  }
  std::vector<Row> kept;
  kept.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!drop[i]) kept.push_back(rows[i]);
  }
  *input.mutable_rows() = std::move(kept);
  return input;
}

Relation Evaluator::OuterUnionOf(const Relation& a, const Relation& b) {
  BoundSchema schema = a.schema();
  for (const BoundColumn& c : b.schema().columns()) {
    if (schema.Find(c.table, c.column) < 0) schema.AddColumn(c);
  }
  Relation out(schema);
  const int total = schema.num_columns();
  for (const Row& row : a.rows()) {
    Row padded = row;
    padded.resize(static_cast<size_t>(total), Value::Null());
    out.Add(std::move(padded));
  }
  // Map b's columns into the combined schema.
  std::vector<int> to_combined;
  for (const BoundColumn& c : b.schema().columns()) {
    to_combined.push_back(schema.Find(c.table, c.column));
  }
  for (const Row& row : b.rows()) {
    Row mapped(static_cast<size_t>(total), Value::Null());
    for (size_t i = 0; i < row.size(); ++i) {
      mapped[static_cast<size_t>(to_combined[i])] = row[i];
    }
    out.Add(std::move(mapped));
  }
  return out;
}

}  // namespace ojv
