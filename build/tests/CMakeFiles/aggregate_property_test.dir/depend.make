# Empty dependencies file for aggregate_property_test.
# This may be replaced when dependencies are built.
