// Scalar backend: the reference implementation every vector backend
// must match bit for bit. Written as tight branch-free-per-element
// loops over typed arrays so compilers auto-vectorize them even here —
// the explicit backends exist for the cases (64-bit compares producing
// bytes, 64-bit hash mixing, indexed gathers) where autovectorizers
// routinely give up.

#include "exec/columnar/simd.h"
#include "exec/columnar/simd_common.h"

namespace ojv {
namespace columnar {
namespace simd {
namespace scalar {

namespace {

template <CompareOp op>
void CmpI64LitImpl(const int64_t* vals, int64_t n, int64_t literal,
                   uint8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = scalar_ref::CmpI64<op>(vals[i], literal) ? 1 : 0;
  }
}

template <CompareOp op>
void CmpI64ColsImpl(const int64_t* a, const int64_t* b, int64_t n,
                    uint8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = scalar_ref::CmpI64<op>(a[i], b[i]) ? 1 : 0;
  }
}

}  // namespace

void CmpI64Lit(const int64_t* vals, int64_t n, CompareOp op, int64_t literal,
               uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return CmpI64LitImpl<CompareOp::kEq>(vals, n, literal, out);
    case CompareOp::kNe:
      return CmpI64LitImpl<CompareOp::kNe>(vals, n, literal, out);
    case CompareOp::kLt:
      return CmpI64LitImpl<CompareOp::kLt>(vals, n, literal, out);
    case CompareOp::kLe:
      return CmpI64LitImpl<CompareOp::kLe>(vals, n, literal, out);
    case CompareOp::kGt:
      return CmpI64LitImpl<CompareOp::kGt>(vals, n, literal, out);
    case CompareOp::kGe:
      return CmpI64LitImpl<CompareOp::kGe>(vals, n, literal, out);
  }
}

void CmpI64Cols(const int64_t* a, const int64_t* b, int64_t n, CompareOp op,
                uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return CmpI64ColsImpl<CompareOp::kEq>(a, b, n, out);
    case CompareOp::kNe:
      return CmpI64ColsImpl<CompareOp::kNe>(a, b, n, out);
    case CompareOp::kLt:
      return CmpI64ColsImpl<CompareOp::kLt>(a, b, n, out);
    case CompareOp::kLe:
      return CmpI64ColsImpl<CompareOp::kLe>(a, b, n, out);
    case CompareOp::kGt:
      return CmpI64ColsImpl<CompareOp::kGt>(a, b, n, out);
    case CompareOp::kGe:
      return CmpI64ColsImpl<CompareOp::kGe>(a, b, n, out);
  }
}

void CmpF64Lit(const double* vals, int64_t n, CompareOp op, double literal,
               uint8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = scalar_ref::CmpF64Dyn(vals[i], literal, op) ? 1 : 0;
  }
}

void HashI64(const int64_t* vals, int64_t n, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = scalar_ref::Mix64(static_cast<uint64_t>(vals[i]));
  }
}

void HashCombineI64(const int64_t* vals, int64_t n, uint64_t* inout) {
  for (int64_t i = 0; i < n; ++i) {
    inout[i] = scalar_ref::CombineHash(
        inout[i], scalar_ref::Mix64(static_cast<uint64_t>(vals[i])));
  }
}

void GatherI64(const int64_t* src, const int32_t* idx, int64_t n,
               int64_t* dst) {
  for (int64_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
}

void GatherF64(const double* src, const int32_t* idx, int64_t n, double* dst) {
  for (int64_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
}

}  // namespace scalar
}  // namespace simd
}  // namespace columnar
}  // namespace ojv
