#ifndef OJV_IVM_MAINTAINER_H_
#define OJV_IVM_MAINTAINER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "ivm/heavy_state.h"
#include "ivm/materialized_view.h"
#include "ivm/secondary_delta.h"
#include "ivm/view_def.h"
#include "normalform/jdnf.h"
#include "normalform/maintenance_graph.h"
#include "normalform/subsumption_graph.h"
#include "obs/trace.h"
#include "opt/feedback.h"
#include "opt/planner.h"
#include "opt/stats.h"

namespace ojv {

/// Whether the Database maintains overlapping views independently (the
/// paper's per-view procedures, the default) or in groups with shared
/// delta-plan prefixes (src/multiview/): views clustered by ΔT source
/// table and common delta-join prefix refresh together, the shared
/// prefix evaluated once per batch. Results are identical either way.
enum class MultiviewMode { kIndependent, kShared };

/// Skew handling (DESIGN.md §16). kUniform (the default) runs every
/// delta row through the eager pipeline — byte-for-byte the pre-skew
/// behavior. kHeavyLight partitions each batch by join-key frequency:
/// light rows stay eager, heavy rows divert into per-key lazy state
/// (ivm::HeavyState) folded in at drain points. View contents at every
/// drain point are identical either way.
enum class SkewMode { kUniform, kHeavyLight };

/// Knobs for the maintenance procedure; defaults match the paper's
/// algorithm. Turning knobs off is used by the ablation benchmarks.
struct MaintenanceOptions {
  /// Convert ΔV^D to a left-deep tree (§4.1).
  bool use_left_deep = true;
  /// Exploit foreign keys: term pruning in the normal form, Theorem 3
  /// maintenance-graph reduction, and SimplifyTree on ΔV^D (§6).
  bool exploit_foreign_keys = true;
  /// Where to compute ΔV^I from (§5.2 vs §5.3).
  SecondaryStrategy secondary_strategy = SecondaryStrategy::kFromView;
  /// Executor configuration for every delta evaluation. num_threads > 1
  /// runs the hot operators morsel-parallel on the process-wide shared
  /// thread pool; results are identical to serial execution.
  ExecConfig exec;
  /// Physical join algorithm for the delta expressions (cross-validation
  /// and benchmarks; results are identical).
  Evaluator::JoinAlgorithm join_algorithm = Evaluator::JoinAlgorithm::kHash;
  /// Cost-based delta planning (src/opt/): statistics-driven join order
  /// for the primary-delta tree and the §5.3 from-base chains, with a
  /// per-(table, op, policy) plan cache and trace-feedback re-planning.
  /// planner.mode = kStatic reproduces the pre-planner plans and results
  /// byte for byte. View contents are identical either way — only join
  /// order (and therefore intermediate sizes) changes.
  opt::PlannerOptions planner;
  /// Multi-view maintenance mode (consumed by Database, which owns the
  /// group catalog; the maintainer itself only executes the suffix
  /// plans handed to it).
  MultiviewMode multiview = MultiviewMode::kIndependent;
  /// Skew-adaptive heavy-light partitioning; kUniform leaves the
  /// pipeline untouched.
  SkewMode skew = SkewMode::kUniform;
  /// Heavy-hitter sketch and promotion thresholds (kHeavyLight only).
  opt::HeavyHitterConfig heavy;
  /// Trace sink (not owned). When set, every maintenance operation
  /// records per-stage spans — plan build, primary delta with one span
  /// per exec operator, apply, secondary delta — into it. Null (the
  /// default) disables tracing; under OJV_OBS=OFF recording also
  /// compiles out entirely.
  obs::TraceContext* trace = nullptr;
};

/// Which plan set a maintenance call uses. kConstraintFree selects the
/// FK-free plans (unpruned normal form, no Theorem 3 / SimplifyTree):
/// required while a deferrable constraint may be violated — UPDATE
/// pairs (§6 caveat 1) and statements inside multi-statement
/// transactions with deferred checking (§6 caveat 3).
enum class PlanPolicy { kDefault, kConstraintFree };

/// Counters and timings for one maintenance operation.
struct MaintenanceStats {
  int64_t delta_rows = 0;        // |ΔT|
  int64_t primary_rows = 0;      // |ΔV^D|
  int64_t secondary_rows = 0;    // orphans fixed up
  int direct_terms = 0;
  int indirect_terms = 0;
  bool fk_fast_path = false;     // SimplifyTree proved ΔV^D ≡ ΔT or ∅
  double primary_micros = 0;     // compute ΔV^D
  double apply_micros = 0;       // apply ΔV^D to the view
  double secondary_micros = 0;   // compute + apply ΔV^I
  double total_micros = 0;

  /// Folds `other` in (row counts and timings add; term counts keep the
  /// later operation's values, matching OnUpdate's delete+insert merge).
  MaintenanceStats& Merge(const MaintenanceStats& other);
};

/// Observer invoked after every maintenance operation with the updated
/// table and the operation's stats — lets callers (Database, monitoring)
/// attribute maintenance cost without threading return values around.
using MaintenanceStatsHook =
    std::function<void(const std::string& table, const MaintenanceStats&)>;

/// Incremental maintainer for one materialized SPOJ view.
///
/// Contract: the caller applies the base-table update first (the paper's
/// procedures run against post-update base tables) and then hands the
/// update to the maintainer:
///
///   inserted = ApplyBaseInsert(catalog.GetTable("lineitem"), rows);
///   maintainer.OnInsert("lineitem", inserted);
///
/// All per-table plans (normal form, graphs, delta expressions) are
/// computed once, up front.
class ViewMaintainer {
 public:
  ViewMaintainer(const Catalog* catalog, ViewDef view,
                 MaintenanceOptions options = MaintenanceOptions());

  /// Fully computes the view contents (used for initialization and as
  /// the oracle in tests).
  void InitializeView();

  /// Warm restart: installs previously saved view contents (e.g. from
  /// io::LoadRelationRows) instead of recomputing. Rows must be in the
  /// view's output schema; duplicate keys abort. The caller is
  /// responsible for the snapshot matching the base tables' state.
  void RestoreView(const std::vector<Row>& rows);

  const MaterializedView& view() const { return *view_store_; }
  const ViewDef& view_def() const { return view_def_; }
  const std::vector<Term>& terms() const { return main_.terms; }
  const SubsumptionGraph& subsumption_graph() const { return *main_.sgraph; }
  const MaintenanceGraph& maintenance_graph(const std::string& table) const;

  /// The (simplified, possibly left-deep) ΔV^D expression used for
  /// updates of `table`; null when the FK fast path proves it empty.
  const RelExprPtr& delta_expr(const std::string& table) const;

  /// Same, under an explicit plan policy (the multiview layer
  /// fingerprints both plan sets; constraint-free plans differ).
  const RelExprPtr& delta_expr(const std::string& table,
                               PlanPolicy policy) const;

  /// Maintains the view after `rows` were inserted into `table`.
  MaintenanceStats OnInsert(const std::string& table,
                            const std::vector<Row>& rows,
                            PlanPolicy policy = PlanPolicy::kDefault);

  /// Maintains the view after rows were deleted from `table`; `rows`
  /// must be the full deleted rows.
  MaintenanceStats OnDelete(const std::string& table,
                            const std::vector<Row>& rows,
                            PlanPolicy policy = PlanPolicy::kDefault);

  /// Maintains the view after an UPDATE statement, modeled as
  /// delete(old_rows) + insert(new_rows) — both already applied to the
  /// base table. Per §6 caveat 1, foreign-key optimizations are disabled
  /// for this pair: between the deletion and the reinsertion the
  /// constraint need not hold, so a separate FK-free plan set (with the
  /// unpruned normal form) is used.
  MaintenanceStats OnUpdate(const std::string& table,
                            const std::vector<Row>& old_rows,
                            const std::vector<Row>& new_rows);

  /// Maintains the view for a consolidated deferred batch of `table`
  /// (src/deferred/consolidate.h): applies the net deletes to `base` and
  /// maintains them, then the net inserts — two complete statements, so
  /// the view sees exactly the base states an eager execution of the
  /// consolidated statement sequence would have seen. `base` must be the
  /// catalog's table named `table` with the batch's changes *not yet*
  /// applied (the deferred refresh reverts pending changes first).
  MaintenanceStats OnConsolidatedBatch(Table* base, const std::string& table,
                                       const std::vector<Row>& net_deletes,
                                       const std::vector<Row>& net_inserts,
                                       PlanPolicy policy);

  /// Multi-view entry point: maintains the view for `rows` of `table`
  /// using a pre-built suffix expression whose opt::kSharedPrefixLeaf
  /// leaf is bound to `shared_prefix` — the group's common plan prefix,
  /// evaluated once per batch by the multiview layer. Semantically
  /// identical to OnInsert/OnDelete with the full plan; the cost-based
  /// planner and its feedback loop are bypassed (the suffix is already
  /// fixed). Apply order and secondary deltas are unchanged.
  MaintenanceStats OnSharedDelta(const std::string& table,
                                 const std::vector<Row>& rows, bool is_insert,
                                 PlanPolicy policy,
                                 const RelExprPtr& shared_suffix,
                                 const Relation& shared_prefix);

  /// Installs a stats observer (empty to remove).
  void set_stats_hook(MaintenanceStatsHook hook) {
    stats_hook_ = std::move(hook);
  }

  // --- skew-adaptive maintenance (options.skew = kHeavyLight) ---

  /// Must be called BEFORE applying a base change of `table` (under the
  /// policy the maintenance call will use; is_update for UPDATE pairs):
  /// folds pending lazy state in when the op conflicts with it — a
  /// different table, or a policy that cannot divert. Draining after the
  /// base change is applied would double-count the cross term
  /// Δpending ⋈ Δop (both replays would see the other's rows in base),
  /// so OnInsert/OnDelete/OnUpdate abort on an unresolved conflict
  /// instead of draining late. No-op under kUniform.
  void PrepareHeavyForOp(const std::string& table, PlanPolicy policy,
                         bool is_update = false);

  /// Folds all pending heavy-key lazy state into the view: the netted
  /// batch replays as OnDelete(net deletes) then OnInsert(net inserts),
  /// constraint-free when the batch contains update pairs. No-op when
  /// nothing pends. Never touches base tables — diverted rows were
  /// already applied to the base at divert time, and maintenance of a
  /// table never reads that table's own base state.
  MaintenanceStats DrainHeavyState();

  /// Raw diverted rows currently pending (0 under kUniform).
  int64_t HeavyPendingRows() const {
    return heavy_ != nullptr ? heavy_->pending_rows() : 0;
  }

  /// The heavy-light controller; null under kUniform.
  HeavyLightController* heavy_controller() { return heavy_.get(); }

  // --- plan access for wrappers (aggregation views) and benchmarks ---

  /// True when updates of `table` provably cannot change the view.
  bool DeltaIsEmpty(const std::string& table) const;

  /// Evaluates ΔV^D for an update of `table`, aligned to the view's
  /// output schema. `delta_t` must be tagged with the table's schema.
  Relation ComputePrimaryDeltaRelation(const std::string& table,
                                       const Relation& delta_t);

  /// Evaluates a shared-plan suffix for an update of `table` (the
  /// suffix's opt::kSharedPrefixLeaf leaf bound to `shared_prefix`),
  /// aligned to the view's output schema. Used by the aggregate wrapper
  /// and OnSharedDelta.
  Relation ComputeSharedPrimaryDeltaRelation(const std::string& table,
                                             const Relation& delta_t,
                                             const RelExprPtr& shared_suffix,
                                             const Relation& shared_prefix);

  /// The secondary-delta engine for updates of `table` (null when the
  /// delta is provably empty).
  SecondaryDeltaEngine* secondary_engine(const std::string& table);

  /// The maintainer's version-checked base-table cache (shared with the
  /// aggregate wrapper so MIN/MAX group refreshes inside a maintenance
  /// statement reuse the tables already materialized for the deltas).
  TableRelationCache* table_cache() { return &table_cache_; }

  const ExecConfig& exec_config() const { return options_.exec; }
  ThreadPool* thread_pool() const { return pool_.get(); }
  Evaluator::JoinAlgorithm join_algorithm() const {
    return options_.join_algorithm;
  }

  /// Swaps the executor configuration at runtime (the deferred refresh
  /// path uses this to run background batch replays with more threads
  /// than foreground statements). Propagates to the secondary engines.
  void set_exec(const ExecConfig& exec);

  /// Attaches/detaches a trace sink at runtime (propagates to the
  /// secondary engines). Equivalent to constructing with options.trace.
  void set_trace(obs::TraceContext* trace);
  obs::TraceContext* trace() const { return options_.trace; }

  // --- cost-based planner access (EXPLAIN, tests, benchmarks) ---

  /// The statistics catalog backing the cost-based planner; null under
  /// planner.mode = kStatic.
  opt::StatsCatalog* stats_catalog() { return stats_catalog_.get(); }

  const opt::PlannerOptions& planner_options() const {
    return options_.planner;
  }

  /// The per-(table, op, policy) plan cache (empty under kStatic).
  const opt::PlanCache& plan_cache() const { return plan_cache_; }

  /// The cached plan for maintenance of `table` under the given op and
  /// policy; null when the planner is off or the op never ran.
  const opt::PlanCacheEntry* plan_entry(const std::string& table,
                                        bool is_insert,
                                        PlanPolicy policy) const;

  /// Drops every cached plan and marks all statistics stale; the next
  /// maintenance op re-scans and re-plans. (Schema or constraint changes
  /// outside the maintainer's view should call this.)
  void InvalidatePlans();

 private:
  struct TablePlan {
    std::unique_ptr<MaintenanceGraph> graph;
    RelExprPtr delta_expr;  // null => provably empty delta
    bool delta_empty = false;
    std::unique_ptr<SecondaryDeltaEngine> secondary;
  };

  /// A complete set of maintenance plans under one FK policy. The
  /// FK-free set has its own normal form: FK term pruning is also a
  /// constraint-dependent optimization.
  struct PlanSet {
    std::vector<Term> terms;
    std::unique_ptr<SubsumptionGraph> sgraph;
    std::map<std::string, TablePlan> plans;

    const TablePlan& For(const std::string& table) const;
  };

  void BuildPlanSet(bool use_fks, PlanSet* out);

  const PlanSet& SetFor(PlanPolicy policy) const {
    return policy == PlanPolicy::kConstraintFree &&
                   options_.exploit_foreign_keys
               ? update_
               : main_;
  }

  // shared_suffix/shared_prefix non-null => multiview shared-plan run:
  // the suffix replaces the (planner-chosen or static) delta expression
  // and the prefix relation is bound under opt::kSharedPrefixLeaf.
  MaintenanceStats Maintain(const TablePlan& plan, const std::string& table,
                            const std::vector<Row>& rows, bool is_insert,
                            PlanPolicy policy,
                            const RelExprPtr* shared_suffix = nullptr,
                            const Relation* shared_prefix = nullptr);
  // Evaluates ΔV^D and aligns it to the view's output schema.
  Relation ComputePrimaryDelta(const TablePlan& plan, const Relation& delta_t);
  // Evaluates one primary-delta expression (static or planner-chosen)
  // under an explicit trace sink and aligns it to the output schema.
  // `shared_prefix` (when non-null) is bound under opt::kSharedPrefixLeaf.
  Relation EvalPrimaryDelta(const RelExprPtr& expr, const Relation& delta_t,
                            obs::TraceContext* eval_trace,
                            const Relation* shared_prefix = nullptr);

  const Catalog* catalog_;
  ViewDef view_def_;
  MaintenanceOptions options_;
  PlanSet main_;
  /// FK-free plans for OnUpdate; empty when main_ is already FK-free.
  PlanSet update_;
  std::unique_ptr<MaterializedView> view_store_;
  /// Base tables materialized once per table version and shared across
  /// the primary- and secondary-delta evaluations of an operation.
  TableRelationCache table_cache_;
  /// Shared worker pool for morsel-parallel evaluation; null when
  /// options_.exec.num_threads <= 1 (serial execution).
  std::shared_ptr<ThreadPool> pool_;
  MaintenanceStatsHook stats_hook_;
  /// Cost-based planner state; all null/empty under planner.mode =
  /// kStatic, which leaves plans and results byte-identical to the
  /// pre-planner code path.
  std::unique_ptr<opt::StatsCatalog> stats_catalog_;
  std::unique_ptr<opt::DeltaPlanner> planner_;
  opt::PlanCache plan_cache_;
  /// Internal sink for feedback harvesting when the caller did not
  /// attach a trace; created lazily, cleared after each harvest.
  std::unique_ptr<obs::TraceContext> feedback_trace_;
  /// Heavy-light partitioning state; null under skew = kUniform, which
  /// keeps every code path byte-identical to the pre-skew pipeline.
  std::unique_ptr<HeavyLightController> heavy_;
  /// Re-entrancy guard: a drain replays through OnInsert/OnDelete, which
  /// must not split or re-divert the replayed rows.
  bool draining_heavy_ = false;

  /// True when an op of `table` may divert rows instead of draining:
  /// default-policy statements (or UPDATE pairs, which divert whole) of
  /// a table with join edges.
  bool CanDivert(const std::string& table, PlanPolicy policy,
                 bool is_update) const {
    return heavy_ != nullptr &&
           (is_update || policy == PlanPolicy::kDefault) &&
           heavy_->HasEdges(table);
  }
  /// Aborts when pending lazy state conflicts with an op about to run —
  /// the caller skipped PrepareHeavyForOp before the base change.
  void CheckHeavyConflict(const std::string& table, bool can_divert) const;
};

/// Inserts rows into a base table; returns the rows actually inserted
/// (duplicate keys are skipped).
std::vector<Row> ApplyBaseInsert(Table* table, const std::vector<Row>& rows);

/// Deletes rows by key from a base table; returns the full deleted rows.
std::vector<Row> ApplyBaseDelete(Table* table, const std::vector<Row>& keys);

/// Updates rows by key: deletes `keys` and inserts `new_rows`. Returns
/// the full pre-update rows through *old_rows.
void ApplyBaseUpdate(Table* table, const std::vector<Row>& keys,
                     const std::vector<Row>& new_rows,
                     std::vector<Row>* old_rows);

}  // namespace ojv

#endif  // OJV_IVM_MAINTAINER_H_
