#include "exec/columnar/predicate.h"

#include <algorithm>

#include "common/check.h"
#include "exec/columnar/simd.h"

namespace ojv {
namespace columnar {

namespace {

// Flips a comparison so `lit OP col` becomes `col OP' lit`.
CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

bool CompareHolds(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

// Demotes rows whose bit is clear in `valid` to unknown (-1),
// word-skipping fully-valid stretches.
void UnknownWhereInvalid(const std::vector<uint64_t>& valid, int64_t begin,
                         int64_t end, int8_t* out) {
  int64_t i = begin;
  while (i < end) {
    const uint64_t bits = valid[static_cast<size_t>(i >> 6)];
    const int64_t word_end = std::min<int64_t>(end, (i | 63) + 1);
    if (bits == ~uint64_t{0}) {
      i = word_end;
      continue;
    }
    for (; i < word_end; ++i) {
      if (!((bits >> (i & 63)) & 1)) out[i - begin] = -1;
    }
  }
}

}  // namespace

ColumnarPredicate ColumnarPredicate::Compile(const ScalarExprPtr& expr,
                                             const ChunkedRelation& rel) {
  OJV_CHECK(expr != nullptr, "null predicate");
  ColumnarPredicate out;
  out.root_ = CompileNode(expr, rel, &out.has_simd_leaf_);
  return out;
}

ColumnarPredicate::Node ColumnarPredicate::CompileNode(
    const ScalarExprPtr& expr, const ChunkedRelation& rel,
    bool* has_simd_leaf) {
  Node node;
  node.kind = expr->kind();
  switch (expr->kind()) {
    case ScalarKind::kColumn: {
      node.position = rel.schema().IndexOf(expr->column());
      if (rel.column(node.position).cls == ColumnClass::kI64) {
        node.fast = Fast::kBoolI64Col;
        node.fast_col = node.position;
        *has_simd_leaf = true;
      }
      break;
    }
    case ScalarKind::kLiteral:
      node.literal = expr->literal();
      break;
    case ScalarKind::kCompare: {
      node.op = expr->compare_op();
      node.children.push_back(CompileNode(expr->left(), rel, has_simd_leaf));
      node.children.push_back(CompileNode(expr->right(), rel, has_simd_leaf));
      // Normalize to column-on-the-left when the other side is a
      // literal, flipping the operator.
      const Node* col = nullptr;
      const Node* lit = nullptr;
      CompareOp op = node.op;
      if (node.children[0].kind == ScalarKind::kColumn &&
          node.children[1].kind == ScalarKind::kLiteral) {
        col = &node.children[0];
        lit = &node.children[1];
      } else if (node.children[0].kind == ScalarKind::kLiteral &&
                 node.children[1].kind == ScalarKind::kColumn) {
        col = &node.children[1];
        lit = &node.children[0];
        op = FlipOp(op);
      }
      if (col != nullptr && !lit->literal.is_null()) {
        const ColumnClass cls = rel.column(col->position).cls;
        if (cls == ColumnClass::kI64 && lit->literal.is_int64()) {
          node.fast = Fast::kI64ColLit;
          node.fast_col = col->position;
          node.fast_i64 = lit->literal.int64();
          node.op = op;
          *has_simd_leaf = true;
        } else if (cls == ColumnClass::kF64 && !lit->literal.is_string()) {
          node.fast = Fast::kF64ColLit;
          node.fast_col = col->position;
          node.fast_f64 = lit->literal.AsDouble();
          node.op = op;
          *has_simd_leaf = true;
        }
      } else if (node.children[0].kind == ScalarKind::kColumn &&
                 node.children[1].kind == ScalarKind::kColumn &&
                 rel.column(node.children[0].position).cls ==
                     ColumnClass::kI64 &&
                 rel.column(node.children[1].position).cls ==
                     ColumnClass::kI64) {
        node.fast = Fast::kI64ColCol;
        node.fast_col = node.children[0].position;
        node.fast_col2 = node.children[1].position;
        *has_simd_leaf = true;
      }
      break;
    }
    case ScalarKind::kAnd:
    case ScalarKind::kOr:
      for (const ScalarExprPtr& c : expr->children()) {
        node.children.push_back(CompileNode(c, rel, has_simd_leaf));
      }
      break;
    case ScalarKind::kNot:
      node.children.push_back(CompileNode(expr->child(), rel, has_simd_leaf));
      break;
    case ScalarKind::kIsNull:
      node.children.push_back(CompileNode(expr->child(), rel, has_simd_leaf));
      if (node.children[0].kind == ScalarKind::kColumn) {
        node.fast = Fast::kIsNullCol;
        node.fast_col = node.children[0].position;
      }
      break;
  }
  return node;
}

void ColumnarPredicate::EvalTruth(const ChunkedRelation& rel, int64_t begin,
                                  int64_t end, int8_t* out) const {
  EvalTruthNode(root_, rel, begin, end, out);
}

void ColumnarPredicate::SelectInto(const ChunkedRelation& rel, int64_t begin,
                                   int64_t end, SelVector* sel) const {
  const int64_t n = end - begin;
  if (n <= 0) return;
  std::vector<int8_t> truth(static_cast<size_t>(n));
  EvalTruthNode(root_, rel, begin, end, truth.data());
  for (int64_t i = 0; i < n; ++i) {
    if (truth[static_cast<size_t>(i)] == 1) {
      sel->push_back(static_cast<int32_t>(begin + i));
    }
  }
}

void ColumnarPredicate::EvalTruthNode(const Node& node,
                                      const ChunkedRelation& rel,
                                      int64_t begin, int64_t end,
                                      int8_t* out) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  // SIMD compare kernels write 0/1 bytes; they share out's storage
  // (uint8 view), then invalid operand rows are demoted to unknown.
  uint8_t* bytes = reinterpret_cast<uint8_t*>(out);
  switch (node.fast) {
    case Fast::kI64ColLit: {
      const Column& col = rel.column(node.fast_col);
      simd::CmpI64Lit(col.i64.data() + begin, n, node.op, node.fast_i64,
                      bytes);
      UnknownWhereInvalid(col.valid, begin, end, out);
      return;
    }
    case Fast::kI64ColCol: {
      const Column& a = rel.column(node.fast_col);
      const Column& b = rel.column(node.fast_col2);
      simd::CmpI64Cols(a.i64.data() + begin, b.i64.data() + begin, n, node.op,
                       bytes);
      UnknownWhereInvalid(a.valid, begin, end, out);
      UnknownWhereInvalid(b.valid, begin, end, out);
      return;
    }
    case Fast::kF64ColLit: {
      const Column& col = rel.column(node.fast_col);
      simd::CmpF64Lit(col.f64.data() + begin, n, node.op, node.fast_f64,
                      bytes);
      UnknownWhereInvalid(col.valid, begin, end, out);
      return;
    }
    case Fast::kBoolI64Col: {
      const Column& col = rel.column(node.fast_col);
      simd::CmpI64Lit(col.i64.data() + begin, n, CompareOp::kNe, 0, bytes);
      UnknownWhereInvalid(col.valid, begin, end, out);
      return;
    }
    case Fast::kIsNullCol: {
      const Column& col = rel.column(node.fast_col);
      for (int64_t i = 0; i < n; ++i) {
        out[i] = col.Valid(begin + i) ? 0 : 1;
      }
      return;
    }
    case Fast::kNone:
      break;
  }
  switch (node.kind) {
    case ScalarKind::kLiteral: {
      const int8_t fill =
          node.literal.is_null() ? -1 : (node.literal.int64() != 0 ? 1 : 0);
      std::fill(out, out + n, fill);
      return;
    }
    case ScalarKind::kColumn: {
      // Truth of a bare column mirrors BoundScalar: NULL is unknown,
      // otherwise int64() != 0 (same accessor, same failure mode on a
      // non-integer column).
      for (int64_t i = 0; i < n; ++i) {
        const Value v = rel.GetValue(node.position, begin + i);
        out[i] = v.is_null() ? -1 : (v.int64() != 0 ? 1 : 0);
      }
      return;
    }
    case ScalarKind::kCompare: {
      std::vector<Value> l(static_cast<size_t>(n));
      std::vector<Value> r(static_cast<size_t>(n));
      EvalValueNode(node.children[0], rel, begin, end, l.data());
      EvalValueNode(node.children[1], rel, begin, end, r.data());
      for (int64_t i = 0; i < n; ++i) {
        int cmp = 0;
        if (!l[static_cast<size_t>(i)].SqlCompare(r[static_cast<size_t>(i)],
                                                  &cmp)) {
          out[i] = -1;
        } else {
          out[i] = CompareHolds(node.op, cmp) ? 1 : 0;
        }
      }
      return;
    }
    case ScalarKind::kAnd:
    case ScalarKind::kOr: {
      const bool is_and = node.kind == ScalarKind::kAnd;
      EvalTruthNode(node.children[0], rel, begin, end, out);
      std::vector<int8_t> tmp(static_cast<size_t>(n));
      for (size_t c = 1; c < node.children.size(); ++c) {
        EvalTruthNode(node.children[c], rel, begin, end, tmp.data());
        for (int64_t i = 0; i < n; ++i) {
          const int8_t a = out[i];
          const int8_t b = tmp[static_cast<size_t>(i)];
          if (is_and) {
            out[i] = (a == 0 || b == 0) ? 0 : ((a < 0 || b < 0) ? -1 : 1);
          } else {
            out[i] = (a == 1 || b == 1) ? 1 : ((a < 0 || b < 0) ? -1 : 0);
          }
        }
      }
      return;
    }
    case ScalarKind::kNot: {
      EvalTruthNode(node.children[0], rel, begin, end, out);
      for (int64_t i = 0; i < n; ++i) {
        out[i] = out[i] < 0 ? -1 : (out[i] == 0 ? 1 : 0);
      }
      return;
    }
    case ScalarKind::kIsNull: {
      std::vector<Value> v(static_cast<size_t>(n));
      EvalValueNode(node.children[0], rel, begin, end, v.data());
      for (int64_t i = 0; i < n; ++i) {
        out[i] = v[static_cast<size_t>(i)].is_null() ? 1 : 0;
      }
      return;
    }
  }
}

void ColumnarPredicate::EvalValueNode(const Node& node,
                                      const ChunkedRelation& rel,
                                      int64_t begin, int64_t end, Value* out) {
  const int64_t n = end - begin;
  switch (node.kind) {
    case ScalarKind::kColumn:
      for (int64_t i = 0; i < n; ++i) {
        out[i] = rel.GetValue(node.position, begin + i);
      }
      return;
    case ScalarKind::kLiteral:
      std::fill(out, out + n, node.literal);
      return;
    default: {
      // Boolean-valued subtree: evaluate tri-state, then box.
      std::vector<int8_t> truth(static_cast<size_t>(n));
      EvalTruthNode(node, rel, begin, end, truth.data());
      for (int64_t i = 0; i < n; ++i) {
        const int8_t t = truth[static_cast<size_t>(i)];
        out[i] = t < 0 ? Value::Null() : Value::Int64(t);
      }
      return;
    }
  }
}

}  // namespace columnar
}  // namespace ojv
