#ifndef OJV_OBS_EXPORT_H_
#define OJV_OBS_EXPORT_H_

#include <ostream>
#include <string>

#include "obs/metrics.h"
#include "obs/obs_config.h"

namespace ojv {
namespace obs {

/// Serializes Registry snapshots for external consumption: Prometheus
/// text exposition format for scrapers, JSON for tools (ojv_top), and
/// atomically-renamed snapshot files for scrape-less environments.
/// These are snapshot readers — they take the registry as it is, so
/// they work (and simply emit an empty metric set) under -DOJV_OBS=OFF
/// where no call site ever records anything.

/// Prometheus metric name for a registry key: the label block (from the
/// first '{', if any — see LabeledMetric) is preserved verbatim and the
/// base name is sanitized to [a-zA-Z0-9_:] (dots become underscores).
/// Exposed for tests.
std::string PrometheusName(const std::string& name);

/// Prometheus text exposition format, version 0.0.4. Counters are
/// suffixed `_total`, gauges exported as-is, histograms as summaries
/// (`_count`, `_sum`, quantile 0.5 / 0.99 series). `# TYPE` comment
/// lines are emitted once per metric family.
void WritePrometheus(const Registry& registry, std::ostream& out);

/// The registry's JSON snapshot:
/// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
/// Same schema as tools/ojv_trace --stats "metrics", so every consumer
/// parses one shape.
void WriteSnapshotJson(const Registry& registry, std::ostream& out);

/// Writes `metrics.prom` and `snapshot.json` under `dir`, each via a
/// temporary file renamed into place so a concurrent reader never sees
/// a torn write. Returns false (with *error set) on I/O failure.
bool WriteSnapshotFiles(const Registry& registry, const std::string& dir,
                        std::string* error = nullptr);

/// Writes `body` to `path` via `path + ".tmp"` + rename(2), which is
/// atomic within a filesystem: a concurrent reader sees the old file
/// or the new one, never a prefix. Shared by the snapshot writer and
/// the flight-recorder dumper.
bool WriteFileAtomic(const std::string& path, const std::string& body,
                     std::string* error = nullptr);

}  // namespace obs
}  // namespace ojv

#endif  // OJV_OBS_EXPORT_H_
