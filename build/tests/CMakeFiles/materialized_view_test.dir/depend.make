# Empty dependencies file for materialized_view_test.
# This may be replaced when dependencies are built.
