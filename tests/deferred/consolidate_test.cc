// The deferred staging layer in isolation: the append-only delta log
// (consumers, high-water marks, truncation) and the net-effect
// consolidator (cancellation, update-pair folding, replay order).

#include "deferred/consolidate.h"

#include <gtest/gtest.h>

#include "deferred/delta_log.h"

namespace ojv {
namespace deferred {
namespace {

Row TRow(int64_t id, int64_t v) {
  return Row{Value::Int64(id), Value::Int64(v)};
}

class ConsolidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.CreateTable(
        "t",
        Schema({ColumnDef{"t_id", ValueType::kInt64, false},
                ColumnDef{"t_v", ValueType::kInt64, true}}),
        {"t_id"});
    catalog_.CreateTable(
        "u",
        Schema({ColumnDef{"u_id", ValueType::kInt64, false},
                ColumnDef{"u_v", ValueType::kInt64, true}}),
        {"u_id"});
  }

  std::vector<TableDelta> Run(const DeltaLog& log, const char* view) {
    return Consolidate(log.PendingFor(view, {}), catalog_);
  }

  Catalog catalog_;
  DeltaLog log_;
};

TEST_F(ConsolidateTest, LogAssignsMonotoneSequenceNumbers) {
  EXPECT_EQ(log_.tail(), 0u);
  EXPECT_EQ(log_.Append("t", DeltaOp::kInsert, {TRow(1, 10), TRow(2, 20)}),
            2u);
  EXPECT_EQ(log_.Append("u", DeltaOp::kDelete, {TRow(3, 30)}), 3u);
  EXPECT_EQ(log_.tail(), 3u);
  EXPECT_EQ(log_.size(), 3);
}

TEST_F(ConsolidateTest, ConsumersStartAtTailAndSeeOnlyLaterEntries) {
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 10)});
  log_.RegisterConsumer("v");
  EXPECT_EQ(log_.PendingRows("v", {}), 0);

  log_.Append("t", DeltaOp::kInsert, {TRow(2, 20)});
  log_.Append("u", DeltaOp::kInsert, {TRow(9, 90)});
  EXPECT_EQ(log_.PendingRows("v", {}), 2);
  // Table filter: a view over {t} only sees t's entries.
  EXPECT_EQ(log_.PendingRows("v", {"t"}), 1);
  EXPECT_GT(log_.OldestPendingMicros("v", {}), 0.0);

  log_.AdvanceTo("v", log_.tail());
  EXPECT_EQ(log_.PendingRows("v", {}), 0);
  EXPECT_EQ(log_.OldestPendingMicros("v", {}), 0.0);
}

TEST_F(ConsolidateTest, TruncationIsBoundedByTheLaziestConsumer) {
  log_.RegisterConsumer("fast");
  log_.RegisterConsumer("slow");
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 10), TRow(2, 20)});
  log_.AdvanceTo("fast", log_.tail());
  log_.TruncateConsumed();
  EXPECT_EQ(log_.size(), 2);  // "slow" still needs them

  log_.AdvanceTo("slow", log_.tail());
  log_.TruncateConsumed();
  EXPECT_EQ(log_.size(), 0);

  log_.UnregisterConsumer("slow");
  EXPECT_FALSE(log_.IsConsumer("slow"));
  EXPECT_TRUE(log_.IsConsumer("fast"));
}

TEST_F(ConsolidateTest, InsertThenDeleteOfSameKeyCancelsEntirely) {
  log_.RegisterConsumer("v");
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 10)});
  log_.Append("t", DeltaOp::kDelete, {TRow(1, 10)});

  std::vector<TableDelta> deltas = Run(log_, "v");
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].raw_entries, 2);
  EXPECT_EQ(deltas[0].cancelled, 2);
  EXPECT_TRUE(deltas[0].deletes.empty());
  EXPECT_TRUE(deltas[0].inserts.empty());
}

TEST_F(ConsolidateTest, DeleteThenReinsertChangedFoldsToUpdatePair) {
  log_.RegisterConsumer("v");
  log_.Append("t", DeltaOp::kDelete, {TRow(1, 10)});
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 99)});

  std::vector<TableDelta> deltas = Run(log_, "v");
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].update_pairs, 1);
  ASSERT_EQ(deltas[0].deletes.size(), 1u);
  ASSERT_EQ(deltas[0].inserts.size(), 1u);
  EXPECT_EQ(deltas[0].deletes[0], TRow(1, 10));
  EXPECT_EQ(deltas[0].inserts[0], TRow(1, 99));
  EXPECT_EQ(deltas[0].cancelled, 0);
}

TEST_F(ConsolidateTest, DeleteThenIdenticalReinsertCancels) {
  log_.RegisterConsumer("v");
  log_.Append("t", DeltaOp::kDelete, {TRow(1, 10)});
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 10)});

  std::vector<TableDelta> deltas = Run(log_, "v");
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].cancelled, 2);
  EXPECT_EQ(deltas[0].update_pairs, 0);
  EXPECT_TRUE(deltas[0].deletes.empty());
  EXPECT_TRUE(deltas[0].inserts.empty());
}

TEST_F(ConsolidateTest, InsertDeleteReinsertKeepsOnlyTheFinalImage) {
  log_.RegisterConsumer("v");
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 10)});
  log_.Append("t", DeltaOp::kDelete, {TRow(1, 10)});
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 77)});

  std::vector<TableDelta> deltas = Run(log_, "v");
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].raw_entries, 3);
  EXPECT_EQ(deltas[0].cancelled, 2);
  EXPECT_TRUE(deltas[0].deletes.empty());
  ASSERT_EQ(deltas[0].inserts.size(), 1u);
  EXPECT_EQ(deltas[0].inserts[0], TRow(1, 77));
}

TEST_F(ConsolidateTest, UpdateOfAFreshInsertStaysAPureInsert) {
  // insert k, then an UPDATE pair (delete k + reinsert k'): the batch's
  // pre-state never held k, so the net effect is one insert of the final
  // image, not an update pair.
  log_.RegisterConsumer("v");
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 10)});
  log_.Append("t", DeltaOp::kDelete, {TRow(1, 10)}, /*update_pair=*/true);
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 42)}, /*update_pair=*/true);

  std::vector<TableDelta> deltas = Run(log_, "v");
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].update_pairs, 0);
  EXPECT_TRUE(deltas[0].deletes.empty());
  ASSERT_EQ(deltas[0].inserts.size(), 1u);
  EXPECT_EQ(deltas[0].inserts[0], TRow(1, 42));
}

TEST_F(ConsolidateTest, UpdatePairFlagSurvivesTheLog) {
  log_.RegisterConsumer("v");
  log_.Append("t", DeltaOp::kDelete, {TRow(1, 10)}, /*update_pair=*/true);
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 11)}, /*update_pair=*/true);
  auto pending = log_.PendingFor("v", {});
  ASSERT_EQ(pending["t"].size(), 2u);
  EXPECT_TRUE(pending["t"][0].update_pair);
  EXPECT_TRUE(pending["t"][1].update_pair);
}

TEST_F(ConsolidateTest, DeltasAreOrderedByFirstPendingEntry) {
  log_.RegisterConsumer("v");
  log_.Append("u", DeltaOp::kInsert, {TRow(9, 90)});
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 10)});
  log_.Append("u", DeltaOp::kInsert, {TRow(8, 80)});

  std::vector<TableDelta> deltas = Run(log_, "v");
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].table, "u");  // u's first entry precedes t's
  EXPECT_EQ(deltas[1].table, "t");
  EXPECT_LT(deltas[0].first_seq, deltas[1].first_seq);
  EXPECT_EQ(deltas[0].inserts.size(), 2u);
}

TEST_F(ConsolidateTest, IndependentKeysPassThroughUntouched) {
  log_.RegisterConsumer("v");
  log_.Append("t", DeltaOp::kInsert, {TRow(1, 10), TRow(2, 20)});
  log_.Append("t", DeltaOp::kDelete, {TRow(3, 30)});

  std::vector<TableDelta> deltas = Run(log_, "v");
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].cancelled, 0);
  EXPECT_EQ(deltas[0].inserts.size(), 2u);
  EXPECT_EQ(deltas[0].deletes.size(), 1u);
}

}  // namespace
}  // namespace deferred
}  // namespace ojv
