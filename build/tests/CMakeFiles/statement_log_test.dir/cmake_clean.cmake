file(REMOVE_RECURSE
  "CMakeFiles/statement_log_test.dir/io/statement_log_test.cc.o"
  "CMakeFiles/statement_log_test.dir/io/statement_log_test.cc.o.d"
  "statement_log_test"
  "statement_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statement_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
