# Empty compiler generated dependencies file for primary_delta_test.
# This may be replaced when dependencies are built.
