#include "obs/trace.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"

namespace ojv {
namespace obs {

namespace {

/// Per-thread stack of open spans, so a span recorded anywhere knows
/// its enclosing parent without threading indices through every call.
/// Frames carry the context pointer because a thread can serve several
/// contexts over its lifetime (the shared pool does).
struct SpanFrame {
  TraceContext* ctx;
  int index;
};
thread_local std::vector<SpanFrame> t_span_stack;

int CurrentParent(const TraceContext* ctx) {
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->ctx == ctx) return it->index;
  }
  return -1;
}

}  // namespace

int64_t TraceEvent::ArgOr(const std::string& key, int64_t fallback) const {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return fallback;
}

const std::string* TraceEvent::StrArg(const std::string& key) const {
  for (const auto& [k, v] : str_args) {
    if (k == key) return &v;
  }
  return nullptr;
}

TraceContext::TraceContext() : epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceContext::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int TraceContext::TidFor(std::thread::id id) {
  auto [it, inserted] = tids_.emplace(id, static_cast<int>(tids_.size()));
  (void)inserted;
  return it->second;
}

int TraceContext::BeginSpan(std::string name, std::string category) {
  // Recording is compiled out entirely under OJV_OBS=OFF: even a caller
  // that drives the context directly (not through Span) gets a no-op.
  if constexpr (!kEnabled) return -1;
  int64_t now = NowMicros();
  int index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = static_cast<int>(events_.size());
    TraceEvent& ev = events_.emplace_back();
    ev.name = std::move(name);
    ev.category = std::move(category);
    ev.start_micros = now;
    ev.tid = TidFor(std::this_thread::get_id());
    ev.parent = CurrentParent(this);
  }
  t_span_stack.push_back({this, index});
  return index;
}

void TraceContext::EndSpan(
    int index, int64_t dur_micros,
    std::vector<std::pair<std::string, int64_t>> args,
    std::vector<std::pair<std::string, std::string>> str_args) {
  if constexpr (!kEnabled) return;
  if (index < 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent& ev = events_[static_cast<size_t>(index)];
    ev.dur_micros = dur_micros < 0 ? 0 : dur_micros;
    ev.args = std::move(args);
    ev.str_args = std::move(str_args);
  }
  // Spans are RAII-scoped, so per thread they close LIFO; still search
  // from the top in case an inert frame was skipped.
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->ctx == this && it->index == index) {
      t_span_stack.erase(std::next(it).base());
      break;
    }
  }
}

void TraceContext::RecordComplete(
    std::string name, std::string category, int64_t start_micros,
    int64_t dur_micros, std::vector<std::pair<std::string, int64_t>> args,
    std::vector<std::pair<std::string, std::string>> str_args) {
  if constexpr (!kEnabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& ev = events_.emplace_back();
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.start_micros = start_micros;
  ev.dur_micros = dur_micros < 0 ? 0 : dur_micros;
  ev.tid = TidFor(std::this_thread::get_id());
  ev.parent = CurrentParent(this);
  ev.args = std::move(args);
  ev.str_args = std::move(str_args);
}

size_t TraceContext::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceContext::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

double TraceContext::StageMicros(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.name == name && ev.dur_micros >= 0) {
      total += static_cast<double>(ev.dur_micros);
    }
  }
  return total;
}

int64_t TraceContext::SpanCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.name == name) ++n;
  }
  return n;
}

bool TraceContext::HasSpan(const std::string& name) const {
  return SpanCount(name) > 0;
}

int64_t TraceContext::ArgSum(const std::string& name,
                             const std::string& arg) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.name == name) total += ev.ArgOr(arg, 0);
  }
  return total;
}

namespace {

void WriteArgsJson(std::ostream& out, const TraceEvent& ev) {
  out << "{";
  bool first = true;
  for (const auto& [k, v] : ev.args) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(k) << "\": " << v;
  }
  for (const auto& [k, v] : ev.str_args) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(k) << "\": \"" << JsonEscape(v) << "\"";
  }
  out << "}";
}

}  // namespace

void WriteChromeTraceEvents(std::ostream& out,
                            const std::vector<TraceEvent>& events,
                            int64_t now_micros) {
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out << ",\n";
    first = false;
    int64_t dur =
        ev.dur_micros >= 0 ? ev.dur_micros : now_micros - ev.start_micros;
    out << "  {\"name\": \"" << JsonEscape(ev.name) << "\", \"cat\": \""
        << JsonEscape(ev.category) << "\", \"ph\": \"X\", \"ts\": "
        << ev.start_micros << ", \"dur\": " << dur
        << ", \"pid\": 1, \"tid\": " << ev.tid << ", \"args\": ";
    WriteArgsJson(out, ev);
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void TraceContext::WriteChromeTrace(std::ostream& out) const {
  WriteChromeTraceEvents(out, Snapshot(), NowMicros());
}

void TraceContext::WriteStatsJson(std::ostream& out) const {
  std::vector<TraceEvent> events = Snapshot();
  // Aggregate by span name, preserving first-seen order for stable and
  // roughly pipeline-ordered output.
  struct Agg {
    int64_t count = 0;
    int64_t total_micros = 0;
    std::vector<std::pair<std::string, int64_t>> args;  // summed
  };
  std::vector<std::pair<std::string, Agg>> aggs;
  auto find = [&aggs](const std::string& name) -> Agg& {
    for (auto& [n, a] : aggs) {
      if (n == name) return a;
    }
    return aggs.emplace_back(name, Agg{}).second;
  };
  for (const TraceEvent& ev : events) {
    Agg& agg = find(ev.name);
    agg.count += 1;
    if (ev.dur_micros >= 0) agg.total_micros += ev.dur_micros;
    for (const auto& [k, v] : ev.args) {
      bool found = false;
      for (auto& [ak, av] : agg.args) {
        if (ak == k) {
          av += v;
          found = true;
          break;
        }
      }
      if (!found) agg.args.emplace_back(k, v);
    }
  }
  out << "{\"spans\": {";
  bool first = true;
  for (const auto& [name, agg] : aggs) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": {\"count\": " << agg.count
        << ", \"total_micros\": " << agg.total_micros << ", \"args\": {";
    bool afirst = true;
    for (const auto& [k, v] : agg.args) {
      if (!afirst) out << ", ";
      afirst = false;
      out << "\"" << JsonEscape(k) << "\": " << v;
    }
    out << "}}";
  }
  out << "}, \"metrics\": ";
  Registry::Global().WriteJson(out);
  out << "}\n";
}

std::string TraceContext::RenderTree() const {
  std::vector<TraceEvent> events = Snapshot();
  // Children of each event, in record order. Record order is not start
  // order (the evaluator records post-order), so sort siblings by start
  // time for a readable timeline.
  std::vector<std::vector<int>> children(events.size());
  std::vector<int> roots;
  for (size_t i = 0; i < events.size(); ++i) {
    int parent = events[i].parent;
    if (parent >= 0 && static_cast<size_t>(parent) < events.size()) {
      children[static_cast<size_t>(parent)].push_back(static_cast<int>(i));
    } else {
      roots.push_back(static_cast<int>(i));
    }
  }
  auto by_start = [&events](int a, int b) {
    return events[static_cast<size_t>(a)].start_micros <
           events[static_cast<size_t>(b)].start_micros;
  };
  for (auto& c : children) std::stable_sort(c.begin(), c.end(), by_start);
  std::stable_sort(roots.begin(), roots.end(), by_start);

  std::ostringstream out;
  auto render = [&](auto&& self, int index, int depth) -> void {
    const TraceEvent& ev = events[static_cast<size_t>(index)];
    out << std::string(static_cast<size_t>(depth) * 2, ' ') << ev.name;
    if (ev.dur_micros >= 0) {
      out << "  " << ev.dur_micros << "us";
    } else {
      out << "  (open)";
    }
    for (const auto& [k, v] : ev.args) out << "  " << k << "=" << v;
    for (const auto& [k, v] : ev.str_args) out << "  " << k << "=" << v;
    out << "\n";
    for (int child : children[static_cast<size_t>(index)]) {
      self(self, child, depth + 1);
    }
  };
  for (int root : roots) render(render, root, 0);
  return out.str();
}

}  // namespace obs
}  // namespace ojv
