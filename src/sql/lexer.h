#ifndef OJV_SQL_LEXER_H_
#define OJV_SQL_LEXER_H_

#include <string>
#include <vector>

namespace ojv {
namespace sql {

/// Token categories for the view-definition dialect.
enum class TokenKind {
  kIdentifier,  // table / column / alias names (case preserved)
  kKeyword,     // SELECT, FROM, JOIN, ... (upper-cased in `text`)
  kNumber,      // integer or decimal literal
  kString,      // '...' with '' escaping
  kSymbol,      // ( ) , . * and comparison operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // keyword: upper-case; symbol: canonical spelling
  int position = 0;  // byte offset, for error messages
};

/// Splits `sql` into tokens. Errors (unterminated string, stray
/// character) are reported through *error with a position; returns false
/// and leaves *tokens unusable in that case.
bool Lex(const std::string& sql, std::vector<Token>* tokens,
         std::string* error);

/// True if `word` is one of the dialect's reserved words.
bool IsKeyword(const std::string& upper);

}  // namespace sql
}  // namespace ojv

#endif  // OJV_SQL_LEXER_H_
