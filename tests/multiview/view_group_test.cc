// Unit tests for the multiview subsystem's building blocks: delta-plan
// fingerprinting (src/opt/fingerprint.*), prefix/suffix reconstruction,
// the ViewGroupCatalog clustering, and SharedPlanBuilder caching.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/rel_expr.h"
#include "catalog/catalog.h"
#include "exec/evaluator.h"
#include "multiview/shared_plan.h"
#include "multiview/view_group.h"
#include "opt/fingerprint.h"

namespace ojv {
namespace {

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

ScalarExprPtr GeConst(const char* table, const char* column, int64_t bound) {
  return ScalarExpr::Compare(CompareOp::kGe, ScalarExpr::Column(table, column),
                             ScalarExpr::Literal(Value::Int64(bound)));
}

// ΔC ⟕ O ⟕ L — the canonical left-deep delta shape.
RelExprPtr ChainCOL() {
  RelExprPtr col = RelExpr::Join(JoinKind::kLeftOuter, RelExpr::DeltaScan("C"),
                                 RelExpr::Scan("O"), Eq("C", "c_id", "O", "o_c"));
  return RelExpr::Join(JoinKind::kLeftOuter, std::move(col), RelExpr::Scan("L"),
                       Eq("O", "o_id", "L", "l_o"));
}

TEST(FingerprintTest, DecomposesLeftDeepChain) {
  opt::DeltaFingerprint fp = opt::FingerprintDelta(ChainCOL(), "C");
  ASSERT_TRUE(fp.ok);
  EXPECT_EQ(fp.delta_table, "C");
  ASSERT_EQ(fp.steps.size(), 2u);
  // Bottom-up order: the join to O is step 0, the join to L step 1.
  EXPECT_EQ(fp.steps[0].right_table, "O");
  EXPECT_EQ(fp.steps[1].right_table, "L");
  EXPECT_NE(fp.Signature(1), fp.Signature(2));
  EXPECT_EQ(fp.Signature(0), "d(C)");
}

TEST(FingerprintTest, RejectsWrongDeltaTableAndForeignShapes) {
  EXPECT_FALSE(opt::FingerprintDelta(ChainCOL(), "O").ok);
  // A bushy join (composite right side) is outside the grammar.
  RelExprPtr bushy = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::DeltaScan("C"),
      RelExpr::Join(JoinKind::kInner, RelExpr::Scan("O"), RelExpr::Scan("L"),
                    Eq("O", "o_id", "L", "l_o")),
      Eq("C", "c_id", "O", "o_c"));
  EXPECT_FALSE(opt::FingerprintDelta(bushy, "C").ok);
}

TEST(FingerprintTest, SelectionOnRightSideIsPartOfTheStepSignature) {
  auto chain = [](int64_t bound) {
    RelExprPtr right =
        RelExpr::Select(RelExpr::Scan("O"), GeConst("O", "o_a", bound));
    return RelExpr::Join(JoinKind::kLeftOuter, RelExpr::DeltaScan("C"),
                         std::move(right), Eq("C", "c_id", "O", "o_c"));
  };
  opt::DeltaFingerprint a = opt::FingerprintDelta(chain(5), "C");
  opt::DeltaFingerprint b = opt::FingerprintDelta(chain(5), "C");
  opt::DeltaFingerprint c = opt::FingerprintDelta(chain(7), "C");
  ASSERT_TRUE(a.ok && b.ok && c.ok);
  EXPECT_EQ(opt::CommonPrefixLength(a, b), 1u);
  // Different pre-filter constant => different first step => no sharing.
  EXPECT_EQ(opt::CommonPrefixLength(a, c), 0u);
}

TEST(FingerprintTest, CommonPrefixStopsAtFirstDivergence) {
  RelExprPtr col = ChainCOL();
  RelExprPtr co_only = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::DeltaScan("C"), RelExpr::Scan("O"),
      Eq("C", "c_id", "O", "o_c"));
  RelExprPtr co_then_n = RelExpr::Join(
      JoinKind::kLeftOuter,
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::DeltaScan("C"),
                    RelExpr::Scan("O"), Eq("C", "c_id", "O", "o_c")),
      RelExpr::Scan("N"), Eq("C", "c_n", "N", "n_id"));
  opt::DeltaFingerprint a = opt::FingerprintDelta(col, "C");
  opt::DeltaFingerprint b = opt::FingerprintDelta(co_only, "C");
  opt::DeltaFingerprint c = opt::FingerprintDelta(co_then_n, "C");
  ASSERT_TRUE(a.ok && b.ok && c.ok);
  EXPECT_EQ(opt::CommonPrefixLength(a, b), 1u);
  EXPECT_EQ(opt::CommonPrefixLength(a, c), 1u);
  EXPECT_EQ(opt::CommonPrefixLength(a, a), 2u);
}

class PrefixSuffixEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.CreateTable(
        "C",
        Schema({ColumnDef{"c_id", ValueType::kInt64, false},
                ColumnDef{"c_a", ValueType::kInt64, true}}),
        {"c_id"});
    catalog_.CreateTable(
        "O",
        Schema({ColumnDef{"o_id", ValueType::kInt64, false},
                ColumnDef{"o_c", ValueType::kInt64, true},
                ColumnDef{"o_a", ValueType::kInt64, true}}),
        {"o_id"});
    catalog_.CreateTable(
        "L",
        Schema({ColumnDef{"l_id", ValueType::kInt64, false},
                ColumnDef{"l_o", ValueType::kInt64, true}}),
        {"l_id"});
    Table* o = catalog_.GetTable("O");
    Table* l = catalog_.GetTable("L");
    for (int64_t i = 0; i < 20; ++i) {
      o->Insert({Value::Int64(i), Value::Int64(i % 7), Value::Int64(i % 3)});
      l->Insert({Value::Int64(i), Value::Int64(i % 5)});
    }
  }

  std::vector<Row> Sorted(const Relation& rel) {
    std::vector<Row> rows = rel.rows();
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = a[i].SortCompare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    });
    return rows;
  }

  Catalog catalog_;
};

TEST_F(PrefixSuffixEquivalenceTest, PrefixPlusSuffixMatchesFullPlan) {
  RelExprPtr full = ChainCOL();
  opt::DeltaFingerprint fp = opt::FingerprintDelta(full, "C");
  ASSERT_TRUE(fp.ok);
  ASSERT_EQ(fp.steps.size(), 2u);

  Relation delta_c(Evaluator::SchemaFor(*catalog_.GetTable("C")));
  for (int64_t i = 0; i < 6; ++i) {
    delta_c.Add({Value::Int64(100 + i), Value::Int64(i % 4)});
  }

  Evaluator direct(&catalog_);
  direct.BindDelta("C", &delta_c);
  Relation expected = direct.EvalToRelation(full);

  for (size_t len = 1; len <= fp.steps.size(); ++len) {
    RelExprPtr prefix = opt::BuildPrefixExpr(fp, len);
    RelExprPtr suffix = opt::BuildSuffixExpr(fp, len, opt::kSharedPrefixLeaf);
    Evaluator pre(&catalog_);
    pre.BindDelta("C", &delta_c);
    Relation prefix_rel = pre.EvalToRelation(prefix);
    Evaluator suf(&catalog_);
    suf.BindDelta(opt::kSharedPrefixLeaf, &prefix_rel);
    Relation actual = suf.EvalToRelation(suffix);
    EXPECT_EQ(Sorted(actual), Sorted(expected)) << "prefix length " << len;
  }
}

multiview::MemberFingerprints Prints(const RelExprPtr& expr,
                                     const std::string& table) {
  multiview::MemberFingerprints fps;
  opt::DeltaFingerprint fp = opt::FingerprintDelta(expr, table);
  if (fp.ok) fps.prints[table] = std::move(fp);
  return fps;
}

TEST(ViewGroupCatalogTest, ClustersViewsSharingFirstStep) {
  multiview::ViewGroupCatalog cat;
  cat.Register("v1", Prints(ChainCOL(), "C"));
  EXPECT_EQ(cat.GroupOf("v1"), nullptr);  // singleton: no group
  cat.Register("v2", Prints(ChainCOL(), "C"));
  const multiview::ViewGroup* g = cat.GroupOf("v1");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->anchor_table, "C");
  EXPECT_EQ(g->members, (std::vector<std::string>{"v1", "v2"}));
  EXPECT_EQ(cat.GroupOf("v2")->id, g->id);

  // A view whose first step differs stays out of the group.
  RelExprPtr other = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::DeltaScan("C"), RelExpr::Scan("N"),
      Eq("C", "c_n", "N", "n_id"));
  cat.Register("v3", Prints(other, "C"));
  EXPECT_EQ(cat.GroupOf("v3"), nullptr);
  EXPECT_EQ(cat.GroupOf("v1")->members.size(), 2u);
}

TEST(ViewGroupCatalogTest, RemoveDissolvesGroupsAndIdsAreNeverReused) {
  multiview::ViewGroupCatalog cat;
  cat.Register("v1", Prints(ChainCOL(), "C"));
  cat.Register("v2", Prints(ChainCOL(), "C"));
  const uint64_t version_before = cat.version();
  std::string first_id = cat.GroupOf("v1")->id;

  cat.Remove("v2");
  EXPECT_GT(cat.version(), version_before);
  EXPECT_EQ(cat.GroupOf("v1"), nullptr);

  // Re-forming the pair allocates a fresh id: caches keyed on group id
  // can never confuse the old and new incarnations.
  cat.Register("v2", Prints(ChainCOL(), "C"));
  ASSERT_NE(cat.GroupOf("v1"), nullptr);
  EXPECT_NE(cat.GroupOf("v1")->id, first_id);
}

TEST(SharedPlanBuilderTest, BuildsShareablePlanAndInvalidatesOnVersion) {
  multiview::ViewGroupCatalog cat;
  cat.Register("v1", Prints(ChainCOL(), "C"));
  cat.Register("v2", Prints(ChainCOL(), "C"));
  const multiview::ViewGroup* g = cat.GroupOf("v1");
  ASSERT_NE(g, nullptr);

  multiview::SharedPlanBuilder builder(&cat);
  std::map<std::string, RelExprPtr> exprs;
  exprs["v1"] = ChainCOL();
  RelExprPtr v2_expr = RelExpr::Join(
      JoinKind::kLeftOuter,
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::DeltaScan("C"),
                    RelExpr::Scan("O"), Eq("C", "c_id", "O", "o_c")),
      RelExpr::Scan("N"), Eq("C", "c_n", "N", "n_id"));
  exprs["v2"] = v2_expr;

  const multiview::SharedPlan& plan = builder.Get(*g, "C", false, exprs);
  EXPECT_TRUE(plan.Shareable());
  EXPECT_EQ(plan.prefix_len, 1u);  // shared: the join to O only
  EXPECT_EQ(plan.suffixes.size(), 2u);
  EXPECT_EQ(builder.cache_size(), 1u);

  // Same key is served from cache; a catalog change drops it.
  builder.Get(*g, "C", false, exprs);
  EXPECT_EQ(builder.cache_size(), 1u);
  cat.Register("v9", Prints(ChainCOL(), "C"));
  const multiview::ViewGroup* g2 = cat.GroupOf("v1");
  builder.Get(*g2, "C", false, exprs);
  EXPECT_EQ(builder.cache_size(), 1u);  // old entries evicted first
}

}  // namespace
}  // namespace ojv
