// ojv_top: terminal dashboard over the live telemetry snapshot.
//
//   ojv_top --port=9464 [--interval-ms=1000] [--iterations=N] [--once]
//   ojv_top --file=build/snapshot.json --once
//
// Polls GET /snapshot.json from an embedded HttpExportServer (--port,
// localhost) or re-reads an exporter snapshot file (--file, written
// atomically by obs::WriteSnapshotFiles) and renders:
//
//   - admission state: hot flag, load score, deferred/promoted totals
//   - delta-log depth and multiview group count
//   - refresh latency p50/p99 (ojv.deferred.refresh_micros)
//   - a per-view table: staleness, pending rows, refreshes, last
//     refresh duration, cumulative SLO burn
//
// --once renders a single frame without clearing the screen (also what
// the ctest integration runs); otherwise the screen redraws every
// interval until --iterations frames (0 = forever) or SIGINT.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "io/json.h"

namespace ojv {
namespace {

struct Options {
  int port = 0;              // 0 = file mode
  std::string file;
  int interval_ms = 1000;
  int iterations = 0;        // 0 = forever
  bool once = false;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      options.port = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--file=", 7) == 0) {
      options.file = arg + 7;
    } else if (std::strncmp(arg, "--interval-ms=", 14) == 0) {
      options.interval_ms = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--iterations=", 13) == 0) {
      options.iterations = std::atoi(arg + 13);
    } else if (std::strcmp(arg, "--once") == 0) {
      options.once = true;
      options.iterations = 1;
    } else {
      std::fprintf(stderr,
                   "usage: ojv_top (--port=N | --file=PATH)"
                   " [--interval-ms=MS] [--iterations=N] [--once]\n");
      std::exit(2);
    }
  }
  if ((options.port == 0) == options.file.empty()) {
    std::fprintf(stderr, "ojv_top: exactly one of --port / --file\n");
    std::exit(2);
  }
  return options;
}

/// GET `path` from 127.0.0.1:port; returns false on connect/read error.
bool HttpGet(int port, const char* path, std::string* body) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return false;
  }
  std::string request = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  if (send(fd, request.data(), request.size(), MSG_NOSIGNAL) < 0) {
    close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  *body = response.substr(header_end + 4);
  return true;
}

/// Splits a labeled metric key: `base{key="value"}` -> (base, value).
/// Unlabeled keys return (name, "").
std::pair<std::string, std::string> SplitLabel(const std::string& name) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  size_t open = name.find('"', brace);
  size_t close = name.rfind('"');
  if (open == std::string::npos || close <= open) {
    return {name.substr(0, brace), ""};
  }
  return {name.substr(0, brace), name.substr(open + 1, close - open - 1)};
}

struct ViewRow {
  int64_t staleness_micros = 0;
  int64_t pending_rows = 0;
  int64_t refreshes = 0;
  int64_t refresh_micros = 0;
  int64_t slo_burn_micros = 0;
};

int64_t IntAt(const io::JsonValue* obj, const std::string& key) {
  if (obj == nullptr) return 0;
  const io::JsonValue* v = obj->Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : 0;
}

void Render(const io::JsonValue& snapshot, bool clear) {
  const io::JsonValue* counters = snapshot.Find("counters");
  const io::JsonValue* gauges = snapshot.Find("gauges");
  const io::JsonValue* histograms = snapshot.Find("histograms");

  std::map<std::string, ViewRow> views;
  auto collect = [&views](const io::JsonValue* section, const char* base,
                          int64_t ViewRow::*field) {
    if (section == nullptr || !section->is_object()) return;
    for (const auto& [name, value] : section->AsObject()) {
      auto [metric, label] = SplitLabel(name);
      if (metric == base && !label.empty() && value.is_number()) {
        views[label].*field = value.AsInt();
      }
    }
  };
  collect(gauges, "ojv.deferred.view.staleness_micros",
          &ViewRow::staleness_micros);
  collect(gauges, "ojv.deferred.view.pending_rows", &ViewRow::pending_rows);
  collect(gauges, "ojv.deferred.view.refresh_micros",
          &ViewRow::refresh_micros);
  collect(counters, "ojv.deferred.view.refreshes", &ViewRow::refreshes);
  collect(counters, "ojv.deferred.view.slo_burn_micros",
          &ViewRow::slo_burn_micros);

  if (clear) std::printf("\x1b[2J\x1b[H");
  std::printf("ojv_top — materialized-view maintenance telemetry\n\n");
  std::printf(
      "admission: %s  load=%.3f  deferred=%lld  promoted=%lld"
      "  transitions=%lld\n",
      IntAt(gauges, "ojv.deferred.admission.hot") != 0 ? "HOT " : "cold",
      static_cast<double>(
          IntAt(gauges, "ojv.deferred.admission.load_score_milli")) /
          1000.0,
      static_cast<long long>(IntAt(counters, "ojv.deferred.admission.deferred")),
      static_cast<long long>(IntAt(counters, "ojv.deferred.admission.promoted")),
      static_cast<long long>(
          IntAt(counters, "ojv.deferred.admission.hot_transitions")));
  std::printf("delta log: %lld rows pending   multiview groups: %lld\n",
              static_cast<long long>(IntAt(gauges,
                                           "ojv.deferred.log_depth_rows")),
              static_cast<long long>(IntAt(gauges, "ojv.multiview.groups")));
  // Skew-adaptive maintenance: promoted heavy keys are per-table gauges
  // (summed here), the divert/drain counters are process-wide.
  int64_t heavy_keys = 0;
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->AsObject()) {
      auto [metric, label] = SplitLabel(name);
      if (metric == "ojv.opt.heavy_keys" && value.is_number()) {
        heavy_keys += value.AsInt();
      }
    }
  }
  const int64_t diverted = IntAt(counters, "ojv.ivm.heavy.diverted_rows");
  const int64_t drained = IntAt(counters, "ojv.ivm.heavy.drained_rows");
  const int64_t demotions = IntAt(counters, "ojv.ivm.heavy.demotions");
  if (heavy_keys > 0 || diverted > 0 || drained > 0 || demotions > 0) {
    std::printf(
        "heavy-light: %lld heavy keys  diverted=%lld  drained=%lld"
        "  demotions=%lld\n",
        static_cast<long long>(heavy_keys), static_cast<long long>(diverted),
        static_cast<long long>(drained), static_cast<long long>(demotions));
  }
  const io::JsonValue* refresh_hist =
      histograms != nullptr
          ? histograms->Find("ojv.deferred.refresh_micros")
          : nullptr;
  if (refresh_hist != nullptr) {
    std::printf("refresh latency: p50<=%.1fms  p99<=%.1fms  (%lld refreshes)\n",
                refresh_hist->NumberOr("p50", 0) / 1000.0,
                refresh_hist->NumberOr("p99", 0) / 1000.0,
                static_cast<long long>(refresh_hist->NumberOr("count", 0)));
  }
  std::printf("\n%-24s %12s %10s %10s %12s %12s\n", "view", "stale(ms)",
              "pending", "refreshes", "refresh(ms)", "slo-burn(ms)");
  if (views.empty()) {
    std::printf("  (no per-view telemetry — no deferred views, or an"
                " OJV_OBS=OFF build)\n");
  }
  for (const auto& [name, row] : views) {
    std::printf("%-24s %12.1f %10lld %10lld %12.1f %12.1f\n", name.c_str(),
                static_cast<double>(row.staleness_micros) / 1000.0,
                static_cast<long long>(row.pending_rows),
                static_cast<long long>(row.refreshes),
                static_cast<double>(row.refresh_micros) / 1000.0,
                static_cast<double>(row.slo_burn_micros) / 1000.0);
  }
  std::fflush(stdout);
}

int Run(int argc, char** argv) {
  Options options = ParseArgs(argc, argv);
  int frames = 0;
  int consecutive_failures = 0;
  for (;;) {
    std::string text;
    bool ok;
    std::string error;
    if (options.port != 0) {
      ok = HttpGet(options.port, "/snapshot.json", &text);
      if (!ok) error = "cannot reach 127.0.0.1:" + std::to_string(options.port);
    } else {
      io::JsonValue ignored;
      (void)ignored;
      std::FILE* f = std::fopen(options.file.c_str(), "rb");
      ok = f != nullptr;
      if (ok) {
        char buf[8192];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
          text.append(buf, n);
        }
        std::fclose(f);
      } else {
        error = "cannot read " + options.file;
      }
    }
    io::JsonValue snapshot;
    if (ok && !io::ParseJson(text, &snapshot, &error)) ok = false;
    if (ok) {
      consecutive_failures = 0;
      Render(snapshot, !options.once);
    } else {
      // Transient failures (server mid-restart, file mid-rotation) are
      // tolerated while polling; in --once mode or after a streak they
      // are fatal so CI sees them.
      if (++consecutive_failures >= 5 || options.once) {
        std::fprintf(stderr, "ojv_top: %s\n", error.c_str());
        return 1;
      }
    }
    if (options.iterations > 0 && ++frames >= options.iterations) return 0;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.interval_ms));
  }
}

}  // namespace
}  // namespace ojv

int main(int argc, char** argv) { return ojv::Run(argc, argv); }
