// Experiment E10 (beyond the paper): how maintenance cost scales with
// database size at a fixed batch size. The paper fixes SF and varies the
// batch; here the batch is fixed (600 lineitems) and SF grows. Ours
// should stay roughly flat (cost tracks |ΔT| plus index probes); GK
// scales with the database (its fix-ups recompute subtrees).

#include "baseline/griffin_kumar.h"
#include "bench_util.h"
#include "ivm/maintainer.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int64_t batch = 600;
  std::printf("fixed batch: %lld lineitem inserts\n",
              static_cast<long long>(batch));

  JsonReport report("scaling", options);
  char par_col[32];
  std::snprintf(par_col, sizeof(par_col), "OJ(par%d)", options.threads);
  PrintHeader("Scaling with database size (E10)",
              {"SF", "Lineitems", "OuterJoin", par_col, "OJ(GK)"});
  for (double sf : {0.01, 0.02, 0.05, 0.1}) {
    BenchOptions scaled = options;
    scaled.scale_factor = sf;
    TpchInstance instance(scaled);
    Table* lineitem = instance.catalog.GetTable("lineitem");

    ViewDef v3 = tpch::MakeV3(instance.catalog);
    ViewMaintainer ours(&instance.catalog, v3, MaintenanceOptions());
    MaintenanceOptions par_options;
    par_options.exec.num_threads = options.threads;
    ViewMaintainer par(&instance.catalog, v3, par_options);
    GriffinKumarMaintainer gk(&instance.catalog, v3);
    ours.InitializeView();
    par.InitializeView();
    gk.InitializeView();

    std::vector<Row> inserted =
        ApplyBaseInsert(lineitem, instance.refresh->NewLineitems(batch));
    double ours_ms = TimeMs([&] { ours.OnInsert("lineitem", inserted); });
    double par_ms = TimeMs([&] { par.OnInsert("lineitem", inserted); });
    double gk_ms = TimeMs([&] { gk.OnInsert("lineitem", inserted); });

    char sf_text[16];
    std::snprintf(sf_text, sizeof(sf_text), "%.2f", sf);
    PrintRow({sf_text, FormatCount(lineitem->size()), FormatMs(ours_ms),
              FormatMs(par_ms), FormatMs(gk_ms)});
    report.BeginRow();
    report.Num("scale_factor", sf);
    report.Count("lineitem_rows", lineitem->size());
    report.Num("ours_ms", ours_ms);
    report.Num("ours_parallel_ms", par_ms);
    report.Num("gk_ms", gk_ms);
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
