file(REMOVE_RECURSE
  "libojv_io.a"
)
