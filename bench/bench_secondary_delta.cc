// Experiment E6 (paper §5.2 vs §5.3): computing the secondary delta from
// the materialized view (semijoin/antijoin of ΔV^D against the view's
// indexes) versus from base tables. The paper: "it is usually cheaper to
// use the view but the optimizer should choose in a cost-based manner."

#include "bench_util.h"
#include "ivm/maintainer.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f\n", options.scale_factor);
  TpchInstance instance(options);
  Table* lineitem = instance.catalog.GetTable("lineitem");

  ViewDef v3 = tpch::MakeV3(instance.catalog);
  MaintenanceOptions from_view;
  from_view.secondary_strategy = SecondaryStrategy::kFromView;
  MaintenanceOptions from_base;
  from_base.secondary_strategy = SecondaryStrategy::kFromBaseTables;
  ViewMaintainer view_maintainer(&instance.catalog, v3, from_view);
  ViewMaintainer base_maintainer(&instance.catalog, v3, from_base);
  view_maintainer.InitializeView();
  base_maintainer.InitializeView();

  JsonReport report("secondary_delta", options);
  PrintHeader("Secondary delta strategy: insertions into lineitem",
              {"Rows", "FromView", "FromBase", "2ndView", "2ndBase"});
  for (int64_t batch : options.batches) {
    std::vector<Row> inserted =
        ApplyBaseInsert(lineitem, instance.refresh->NewLineitems(batch));

    MaintenanceStats vs, bs;
    double view_ms =
        TimeMs([&] { vs = view_maintainer.OnInsert("lineitem", inserted); });
    double base_ms =
        TimeMs([&] { bs = base_maintainer.OnInsert("lineitem", inserted); });
    PrintRow({FormatCount(batch), FormatMs(view_ms), FormatMs(base_ms),
              FormatMs(vs.secondary_micros / 1000.0),
              FormatMs(bs.secondary_micros / 1000.0)});
    report.BeginRow();
    report.Count("batch_rows", batch);
    report.Num("from_view_ms", view_ms);
    report.Num("from_base_ms", base_ms);
    report.Num("secondary_view_ms", vs.secondary_micros / 1000.0);
    report.Num("secondary_base_ms", bs.secondary_micros / 1000.0);

    std::vector<Row> keys;
    for (const Row& row : inserted) keys.push_back(Row{row[0], row[3]});
    std::vector<Row> deleted = ApplyBaseDelete(lineitem, keys);
    view_maintainer.OnDelete("lineitem", deleted);
    base_maintainer.OnDelete("lineitem", deleted);
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
