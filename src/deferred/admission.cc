#include "deferred/admission.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace ojv {
namespace deferred {

namespace {

/// Staleness debt used for hot-drain priority: staleness relative to
/// the view's own tolerance (its max_staleness limit when configured,
/// the controller window otherwise), so views with a tight staleness
/// budget outrank views that merely tripped on pending rows.
double StalenessDebt(const DueView& view, int64_t window_micros) {
  const double denom = view.max_staleness_micros > 0
                           ? view.max_staleness_micros
                           : static_cast<double>(std::max<int64_t>(
                                 window_micros, 1));
  return view.staleness_micros / denom;
}

void BumpAdmissionCounter(const char* which, int64_t delta) {
  if constexpr (obs::kEnabled) {
    obs::Registry::Global()
        .GetCounter(std::string("ojv.deferred.admission.") + which)
        .Add(delta);
  } else {
    (void)which;
    (void)delta;
  }
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config),
      statement_latency_(config.epoch_micros, config.epochs),
      refresh_latency_(config.epoch_micros, config.epochs),
      read_latency_(config.epoch_micros, config.epochs) {
  OJV_CHECK(config.enter_hot >= config.exit_hot,
            "admission hysteresis inverted: enter_hot < exit_hot");
  OJV_CHECK(config.hot_slice >= 0, "negative admission hot_slice");
}

AdmissionController::ViewState& AdmissionController::StateFor(
    const std::string& view) {
  auto it = views_.find(view);
  if (it == views_.end()) {
    it = views_
             .emplace(view, ViewState{obs::WindowedHistogram(
                                          config_.epoch_micros,
                                          config_.epochs),
                                      0, 0})
             .first;
  }
  return it->second;
}

void AdmissionController::ObserveStatement(double micros, int64_t now_micros) {
  statement_latency_.Record(static_cast<int64_t>(micros), now_micros);
}

void AdmissionController::ObserveRefresh(double micros, int64_t now_micros) {
  refresh_latency_.Record(static_cast<int64_t>(micros), now_micros);
}

void AdmissionController::ObserveRead(double micros, int64_t now_micros) {
  read_latency_.Record(static_cast<int64_t>(micros), now_micros);
}

double AdmissionController::LoadScore(int64_t log_depth,
                                      int64_t now_micros) const {
  const double stmt =
      static_cast<double>(statement_latency_.PercentileBound(
          config_.statement_percentile, now_micros)) /
      static_cast<double>(std::max<int64_t>(config_.statement_budget_micros,
                                            1));
  const double refresh =
      static_cast<double>(refresh_latency_.PercentileBound(
          config_.refresh_percentile, now_micros)) /
      static_cast<double>(std::max<int64_t>(config_.refresh_budget_micros,
                                            1));
  const double depth =
      static_cast<double>(log_depth) /
      static_cast<double>(std::max<int64_t>(config_.log_depth_budget_rows,
                                            1));
  const double read =
      static_cast<double>(read_latency_.PercentileBound(
          config_.read_percentile, now_micros)) /
      static_cast<double>(std::max<int64_t>(config_.read_budget_micros, 1));
  return std::max({stmt, refresh, depth, read});
}

AdmissionPlan AdmissionController::Plan(const std::vector<DueView>& due,
                                        int64_t log_depth,
                                        int64_t now_micros) {
  AdmissionPlan plan;
  plan.load_score = LoadScore(log_depth, now_micros);

  // Hysteresis: the enter/exit gap keeps a score hovering around the
  // hot line from flapping the controller every scan.
  if (!hot_ && plan.load_score >= config_.enter_hot) {
    hot_ = true;
    ++hot_transitions_;
    BumpAdmissionCounter("hot_transitions", 1);
  } else if (hot_ && plan.load_score <= config_.exit_hot) {
    hot_ = false;
  }
  plan.hot = hot_;
  if constexpr (obs::kEnabled) {
    // Live decision inputs: the hot flag and load score are *levels*
    // (they go down), hence gauges. Score in milli-units — gauges are
    // integral.
    static obs::Gauge& hot_gauge =
        obs::Registry::Global().GetGauge("ojv.deferred.admission.hot");
    hot_gauge.Set(hot_ ? 1 : 0);
    static obs::Gauge& load_gauge = obs::Registry::Global().GetGauge(
        "ojv.deferred.admission.load_score_milli");
    load_gauge.Set(static_cast<int64_t>(plan.load_score * 1000.0));
  }

  // Record this scan's staleness samples, then split out promotions:
  // a view whose recent staleness percentile drifted past its ceiling
  // is refreshed regardless of load — that is what keeps staleness
  // bounded under sustained pressure.
  std::vector<const DueView*> promoted;
  std::vector<const DueView*> normal;
  for (const DueView& view : due) {
    ViewState& state = StateFor(view.name);
    state.staleness.Record(static_cast<int64_t>(view.staleness_micros),
                           now_micros);
    // The instantaneous sample participates directly (its own bucket
    // bound, same round-up rule as the percentile): staleness grows
    // monotonically while a backlog waits, so the freshest observation
    // is the tightest bound, and a burst of low-staleness scans earlier
    // in the window must not dilute it below the ceiling. The windowed
    // percentile adds memory across refresh cycles: a view that
    // repeatedly grazes its ceiling keeps promoting even right after a
    // refresh clears its instantaneous staleness.
    const int64_t sample_bound = obs::Histogram::BucketUpperBound(
        obs::Histogram::BucketOf(static_cast<int64_t>(view.staleness_micros)));
    const int64_t window_bound = state.staleness.PercentileBound(
        config_.promotion_percentile, now_micros);
    const bool promote =
        view.staleness_ceiling_micros > 0 &&
        static_cast<double>(std::max(sample_bound, window_bound)) >=
            view.staleness_ceiling_micros;
    (promote ? promoted : normal).push_back(&view);
  }

  auto admit = [&](const DueView& view) {
    ViewState& state = StateFor(view.name);
    state.not_before_micros = 0;
    state.backoff_micros = 0;
    plan.admitted.push_back(view.name);
  };
  auto by_debt_desc = [&](const DueView* a, const DueView* b) {
    const double da = StalenessDebt(*a, statement_latency_.window_micros());
    const double db = StalenessDebt(*b, statement_latency_.window_micros());
    if (da != db) return da > db;
    if (a->pending_rows != b->pending_rows) {
      return a->pending_rows > b->pending_rows;
    }
    return a->name < b->name;  // deterministic tie-break
  };

  std::sort(promoted.begin(), promoted.end(), by_debt_desc);
  for (const DueView* view : promoted) {
    admit(*view);
    plan.promoted.push_back(view->name);
    ++promoted_total_;
  }
  BumpAdmissionCounter("promoted", static_cast<int64_t>(promoted.size()));

  if (!hot_) {
    // Cold: everything due is admitted, in the scan's own order (the
    // same order the scheduler would have refreshed without admission).
    for (const DueView* view : normal) admit(*view);
    return plan;
  }

  // Hot: drain in staleness-debt order, capped to the slice; everyone
  // else backs off (bounded: the backoff doubles up to the cap, so the
  // next consideration is never pushed out indefinitely).
  std::vector<const DueView*> candidates;
  int64_t backed_off = 0;
  for (const DueView* view : normal) {
    ViewState& state = StateFor(view->name);
    if (state.not_before_micros > now_micros) {
      plan.deferred.push_back(view->name);
      ++backed_off;
    } else {
      candidates.push_back(view);
    }
  }
  std::sort(candidates.begin(), candidates.end(), by_debt_desc);
  int64_t newly_deferred = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const DueView& view = *candidates[i];
    if (i < static_cast<size_t>(config_.hot_slice)) {
      admit(view);
      continue;
    }
    ViewState& state = StateFor(view.name);
    state.backoff_micros =
        state.backoff_micros == 0
            ? config_.backoff_initial_micros
            : std::min(state.backoff_micros * 2, config_.backoff_max_micros);
    state.not_before_micros = now_micros + state.backoff_micros;
    plan.deferred.push_back(view.name);
    ++newly_deferred;
  }
  deferred_total_ += backed_off + newly_deferred;
  BumpAdmissionCounter("deferred", backed_off + newly_deferred);
  return plan;
}

int64_t AdmissionController::StalenessPercentile(const std::string& view,
                                                 double p,
                                                 int64_t now_micros) const {
  auto it = views_.find(view);
  if (it == views_.end()) return 0;
  return it->second.staleness.PercentileBound(p, now_micros);
}

void AdmissionController::Forget(const std::string& view) {
  views_.erase(view);
}

}  // namespace deferred
}  // namespace ojv
