#ifndef OJV_CATALOG_CATALOG_H_
#define OJV_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table.h"

namespace ojv {

/// A declared foreign-key constraint from child columns to the parent
/// table's unique key.
///
/// The maintenance optimizations of paper §6 are disabled for a
/// constraint when `cascading_delete` or `deferrable` is set (caveats 2
/// and 3 in §6); caveat 1 (updates modeled as delete+insert) is a
/// per-statement property handled by the maintainer.
struct ForeignKey {
  std::string child_table;
  std::vector<std::string> child_columns;
  std::string parent_table;
  std::vector<std::string> parent_columns;  // must be the parent's key
  bool cascading_delete = false;
  bool deferrable = false;
};

/// Owns tables and foreign-key declarations.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; aborts on duplicate name. Returns the table.
  Table* CreateTable(const std::string& name, Schema schema,
                     std::vector<std::string> key_columns);

  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Declares a foreign key. Aborts if tables/columns do not exist or the
  /// parent columns are not exactly the parent's unique key.
  void AddForeignKey(ForeignKey fk);

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Foreign keys whose parent is `parent_table`.
  std::vector<const ForeignKey*> ForeignKeysReferencing(
      const std::string& parent_table) const;

  /// Verifies that all declared constraints hold on current data.
  /// Returns true and leaves *violation empty on success; otherwise
  /// false with a description.
  bool CheckForeignKeys(std::string* violation) const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace ojv

#endif  // OJV_CATALOG_CATALOG_H_
