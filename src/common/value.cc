#include "common/value.h"

#include <cstdio>

namespace ojv {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kFloat64:
      return "FLOAT64";
    case ValueType::kString:
      return "STRING";
    case ValueType::kDate:
      return "DATE";
  }
  return "?";
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  return float64();
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_string() != other.is_string()) return false;
  if (is_string()) return string() == other.string();
  if (is_int64() && other.is_int64()) return int64() == other.int64();
  return AsDouble() == other.AsDouble();
}

int Value::SortCompare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (is_string() && other.is_string()) {
    return string().compare(other.string());
  }
  if (is_string()) return 1;   // strings after numbers
  if (other.is_string()) return -1;
  if (is_int64() && other.is_int64()) {
    if (int64() < other.int64()) return -1;
    return int64() == other.int64() ? 0 : 1;
  }
  double a = AsDouble();
  double b = other.AsDouble();
  if (a < b) return -1;
  return a == b ? 0 : 1;
}

bool Value::SqlCompare(const Value& other, int* result) const {
  if (is_null() || other.is_null()) return false;
  *result = SortCompare(other);
  return true;
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_string()) return std::hash<std::string>{}(string());
  if (is_int64()) return std::hash<int64_t>{}(int64());
  // Hash doubles through their numeric value so 1 and 1.0 collide with
  // equal ints per operator==.
  double d = float64();
  if (d == static_cast<int64_t>(d)) {
    return std::hash<int64_t>{}(static_cast<int64_t>(d));
  }
  return std::hash<double>{}(d);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_string()) return string();
  if (is_int64()) return std::to_string(int64());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", float64());
  return buf;
}

}  // namespace ojv
