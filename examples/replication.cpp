// Replication / durability: the statement-log workflow. A primary
// database snapshots its tables, logs every statement, and a replica —
// started later from the snapshot — replays the log and arrives at the
// same state, with its materialized views maintained incrementally
// during replay (never recomputed).

#include <cstdio>
#include <filesystem>

#include "baseline/recompute.h"
#include "io/csv.h"
#include "io/statement_log.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

using namespace ojv;

namespace {

const char* kViewSql =
    "CREATE VIEW oj_view AS "
    "SELECT p_partkey, p_name, o_orderkey, o_custkey, l_orderkey, "
    "l_linenumber, l_quantity FROM part FULL OUTER JOIN "
    "(orders LEFT OUTER JOIN lineitem ON l_orderkey = o_orderkey) "
    "ON p_partkey = l_partkey";

}  // namespace

int main() {
  std::filesystem::path dir = std::filesystem::temp_directory_path() /
                              ("ojv_replication_" +
                               std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::string snapshot = (dir / "snapshot").string();
  std::string log_path = (dir / "statements.log").string();
  std::string error;

  // --- Primary ---
  Database primary;
  tpch::CreateSchema(primary.catalog());
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(primary.catalog());

  if (!io::DumpCatalog(*primary.catalog(), snapshot, io::TextFormat(),
                       &error)) {
    std::fprintf(stderr, "snapshot failed: %s\n", error.c_str());
    return 1;
  }
  sql::ExecuteCreateView(kViewSql, &primary, &error);
  std::printf("primary: snapshot taken, view registered (%lld rows)\n",
              static_cast<long long>(
                  primary.GetView("oj_view")->view().size()));

  // Logged traffic on the primary.
  io::StatementLog log(log_path);
  tpch::RefreshStream refresh(primary.catalog(), &dbgen, 3);
  for (int burst = 0; burst < 5; ++burst) {
    std::vector<Row> rows = refresh.NewLineitems(100);
    log.LogInsert(*primary.catalog()->GetTable("lineitem"), rows);
    primary.Insert("lineitem", rows);
    std::vector<Row> keys = refresh.PickLineitemDeleteKeys(40);
    log.LogDelete(*primary.catalog()->GetTable("lineitem"), keys);
    primary.Delete("lineitem", keys);
  }
  log.Flush();
  std::printf("primary: 10 statements logged, view now %lld rows\n",
              static_cast<long long>(
                  primary.GetView("oj_view")->view().size()));

  // --- Replica (a fresh process would do exactly this) ---
  Database replica;
  tpch::CreateSchema(replica.catalog());
  if (!io::LoadCatalog(replica.catalog(), snapshot, io::TextFormat(),
                       &error)) {
    std::fprintf(stderr, "replica load failed: %s\n", error.c_str());
    return 1;
  }
  sql::ExecuteCreateView(kViewSql, &replica, &error);
  if (!io::ReplayStatementLog(log_path, &replica, &error)) {
    std::fprintf(stderr, "replay failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("replica: snapshot + replay done, view %lld rows\n",
              static_cast<long long>(
                  replica.GetView("oj_view")->view().size()));

  // --- Verification ---
  std::string diff;
  bool same = SameBag(primary.GetView("oj_view")->view().AsRelation(),
                      replica.GetView("oj_view")->view().AsRelation(), &diff);
  std::printf("replica view == primary view: %s\n",
              same ? "yes" : diff.c_str());
  bool correct = ViewMatchesRecompute(
      *replica.catalog(), replica.GetView("oj_view")->view_def(),
      replica.GetView("oj_view")->view(), &diff);
  std::printf("replica view == recompute:    %s\n",
              correct ? "yes" : diff.c_str());

  std::filesystem::remove_all(dir);
  return same && correct ? 0 : 1;
}
