// Validates the join-disjunctive normal form, subsumption graph, and
// maintenance graphs against the paper's worked examples:
//  - Example 2 / Figure 1(a)+(b): view V1 over abstract tables R,S,T,U
//  - Example 1: oj_view over part/orders/lineitem with FK pruning
//  - Example 11 / Figure 4: view V2 over customer/orders/lineitem

#include "normalform/jdnf.h"

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "exec/evaluator.h"
#include "normalform/maintenance_graph.h"
#include "normalform/subsumption_graph.h"
#include "test_util.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

using testing_util::CreateRstuSchema;
using testing_util::MakeV1;

std::set<std::string> Sources(const std::vector<Term>& terms) {
  std::set<std::string> out;
  for (const Term& t : terms) out.insert(t.Label());
  return out;
}

TEST(JdnfTest, V1HasTheSevenTermsOfExample2) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  ViewDef v1 = MakeV1(catalog);
  std::vector<Term> terms = ComputeJdnf(v1.tree(), catalog);
  EXPECT_EQ(Sources(terms),
            (std::set<std::string>{"{R,S,T,U}", "{R,T,U}", "{R,S,T}", "{R,T}",
                                   "{R,S}", "{R}", "{S}"}));
}

TEST(JdnfTest, V1TermPredicatesMatchExample2) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  ViewDef v1 = MakeV1(catalog);
  std::vector<Term> terms = ComputeJdnf(v1.tree(), catalog);
  auto predicate_count = [&](const std::set<std::string>& source) {
    int i = FindTerm(terms, source);
    EXPECT_GE(i, 0);
    return terms[static_cast<size_t>(i)].predicates.size();
  };
  // σ_{p(r,s)∧p(r,t)∧p(t,u)}(T×U×R×S)
  EXPECT_EQ(predicate_count({"R", "S", "T", "U"}), 3u);
  // σ_{p(r,t)∧p(t,u)}(T×U×R)
  EXPECT_EQ(predicate_count({"R", "T", "U"}), 2u);
  // σ_{p(r,t)∧p(r,s)}(T×R×S)
  EXPECT_EQ(predicate_count({"R", "S", "T"}), 2u);
  // σ_{p(r,t)}(T×R), σ_{p(r,s)}(R×S), R, S
  EXPECT_EQ(predicate_count({"R", "T"}), 1u);
  EXPECT_EQ(predicate_count({"R", "S"}), 1u);
  EXPECT_EQ(predicate_count({"R"}), 0u);
  EXPECT_EQ(predicate_count({"S"}), 0u);
}

TEST(JdnfTest, NormalFormEvaluatesToTheViewItself) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Rng rng(7);
  testing_util::PopulateRandomRstu(&catalog, &rng, 40, 6);
  ViewDef v1 = MakeV1(catalog);
  std::vector<Term> terms = ComputeJdnf(v1.tree(), catalog);

  Evaluator evaluator(&catalog);
  Relation from_tree = evaluator.EvalToRelation(v1.tree());
  Relation from_normal_form = evaluator.EvalToRelation(NormalFormRelExpr(terms));
  std::string diff;
  EXPECT_TRUE(SameBag(from_tree, from_normal_form, &diff)) << diff;
}

TEST(JdnfTest, SubsumptionGraphMatchesFigure1a) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  ViewDef v1 = MakeV1(catalog);
  std::vector<Term> terms = ComputeJdnf(v1.tree(), catalog);
  SubsumptionGraph graph(terms);
  EXPECT_EQ(graph.ToString(terms),
            "{R,S,T,U} -> {R,S,T}\n"
            "{R,S,T,U} -> {R,T,U}\n"
            "{R,S,T} -> {R,S}\n"
            "{R,S,T} -> {R,T}\n"
            "{R,S} -> {R}\n"
            "{R,S} -> {S}\n"
            "{R,T,U} -> {R,T}\n"
            "{R,T} -> {R}\n");
}

TEST(JdnfTest, MaintenanceGraphForTMatchesFigure1b) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  ViewDef v1 = MakeV1(catalog);
  std::vector<Term> terms = ComputeJdnf(v1.tree(), catalog);
  SubsumptionGraph sgraph(terms);
  MaintenanceGraph mgraph(terms, sgraph, "T", catalog);
  // Directly affected: all terms containing T; indirectly: {R,S} and {R};
  // {S}'s only parent {R,S} is not directly affected, so it drops out.
  EXPECT_EQ(mgraph.ToString(terms),
            "{R,S,T,U}:D {R,S,T}:D {R,S}:I {R,T,U}:D {R,T}:D {R}:I");
  EXPECT_EQ(mgraph.DirectTerms().size(), 4u);
  EXPECT_EQ(mgraph.IndirectTerms().size(), 2u);
}

TEST(JdnfTest, Example1ViewHasThreeTermsWithForeignKeys) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewDef oj_view = tpch::MakeOjView(catalog);

  // Without FK pruning: four terms (the {orders,lineitem} term exists).
  JdnfOptions no_fk;
  no_fk.exploit_foreign_keys = false;
  std::vector<Term> raw = ComputeJdnf(oj_view.tree(), catalog, no_fk);
  EXPECT_EQ(Sources(raw),
            (std::set<std::string>{"{lineitem,orders,part}",
                                   "{lineitem,orders}", "{orders}", "{part}"}));

  // With FKs, lineitem→part (joined on l_partkey = p_partkey) subsumes
  // every {lineitem,orders} tuple into {lineitem,orders,part}.
  std::vector<Term> pruned = ComputeJdnf(oj_view.tree(), catalog);
  EXPECT_EQ(Sources(pruned),
            (std::set<std::string>{"{lineitem,orders,part}", "{orders}",
                                   "{part}"}));
}

TEST(JdnfTest, V2KeepsLineitemTermBecauseOfOrderSelection) {
  // V2 filters orders (σpo), so a lineitem of a filtered-out order is
  // *not* subsumed by the {orders,lineitem} term: the FK alone must not
  // prune the {lineitem} term.
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewDef v2 = tpch::MakeV2(catalog);
  std::vector<Term> terms = ComputeJdnf(v2.tree(), catalog);
  EXPECT_EQ(Sources(terms),
            (std::set<std::string>{"{customer,lineitem,orders}",
                                   "{customer,orders}", "{lineitem,orders}",
                                   "{customer}", "{lineitem}", "{orders}"}));
}

TEST(JdnfTest, V2MaintenanceGraphsMatchFigure4) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewDef v2 = tpch::MakeV2(catalog);
  std::vector<Term> terms = ComputeJdnf(v2.tree(), catalog);
  SubsumptionGraph sgraph(terms);

  // Figure 4(a): without FK exploitation, updating orders.
  MaintenanceGraphOptions no_fk;
  no_fk.exploit_foreign_keys = false;
  MaintenanceGraph original(terms, sgraph, "orders", catalog, no_fk);
  EXPECT_EQ(original.ToString(terms),
            "{customer,lineitem,orders}:D {customer,orders}:D {customer}:I "
            "{lineitem,orders}:D {lineitem}:I {orders}:D");

  // Figure 4(b): the FK lineitem→orders removes {C,O,L} and {O,L}; the
  // {lineitem} node loses its only affected parent and drops out.
  MaintenanceGraph reduced(terms, sgraph, "orders", catalog);
  EXPECT_EQ(reduced.ToString(terms),
            "{customer,orders}:D {customer}:I {orders}:D");
}

TEST(JdnfTest, V3HasTheFourTermsOfTable1) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewDef v3 = tpch::MakeV3(catalog);
  std::vector<Term> terms = ComputeJdnf(v3.tree(), catalog);
  EXPECT_EQ(Sources(terms),
            (std::set<std::string>{"{customer,lineitem,orders,part}",
                                   "{customer,lineitem,orders}", "{customer}",
                                   "{part}"}));
}

TEST(JdnfTest, V3OrdersAndCustomerUpdatesAreFkImmune) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewDef v3 = tpch::MakeV3(catalog);
  std::vector<Term> terms = ComputeJdnf(v3.tree(), catalog);
  SubsumptionGraph sgraph(terms);

  // "Because of the foreign key constraint between lineitem and orders,
  // insertion or deletion of order rows does not affect the view."
  MaintenanceGraph orders_graph(terms, sgraph, "orders", catalog);
  EXPECT_TRUE(orders_graph.DirectTerms().empty());
  EXPECT_TRUE(orders_graph.IndirectTerms().empty());

  // "When inserting (or deleting) customer rows ... we only need to add
  // (or delete) the customer in the view": only the {customer} term.
  MaintenanceGraph customer_graph(terms, sgraph, "customer", catalog);
  ASSERT_EQ(customer_graph.DirectTerms().size(), 1u);
  EXPECT_EQ(terms[static_cast<size_t>(customer_graph.DirectTerms()[0])]
                .Label(),
            "{customer}");
  EXPECT_TRUE(customer_graph.IndirectTerms().empty());
}

}  // namespace
}  // namespace ojv
