#ifndef OJV_OBS_OBS_CONFIG_H_
#define OJV_OBS_OBS_CONFIG_H_

/// Compile-time switch for the observability layer. The build defines
/// OJV_OBS_ENABLED (CMake option OJV_OBS, ON by default); with the
/// option OFF every recording path — span events, counter increments,
/// histogram samples — is behind `if constexpr (obs::kEnabled)` and
/// compiles to nothing. The classes and their APIs stay available
/// either way, so instrumented code needs no #ifdefs; tools/check.sh's
/// obs stage verifies the disabled build records zero events and that
/// inert spans cost nothing measurable.
#ifndef OJV_OBS_ENABLED
#define OJV_OBS_ENABLED 1
#endif

namespace ojv {
namespace obs {

inline constexpr bool kEnabled = OJV_OBS_ENABLED != 0;

}  // namespace obs
}  // namespace ojv

#endif  // OJV_OBS_OBS_CONFIG_H_
