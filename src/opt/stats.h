#ifndef OJV_OPT_STATS_H_
#define OJV_OPT_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"

namespace ojv {
namespace opt {

/// K-minimum-values distinct-count sketch. Feed it the hash of every
/// inserted value; the k smallest distinct hashes estimate the distinct
/// count as (k-1)/R_k where R_k is the k-th minimum normalized to [0,1)
/// (Bar-Yossef et al.). While fewer than k distinct hashes were seen the
/// estimate is exact. Insert-only: deletions are handled one level up by
/// staleness tracking (see StatsCatalog).
class KmvSketch {
 public:
  explicit KmvSketch(int k = kDefaultK);

  void Insert(uint64_t hash);
  double Estimate() const;
  bool saturated() const { return static_cast<int>(mins_.size()) >= k_; }

  static constexpr int kDefaultK = 128;

 private:
  int k_;
  std::vector<uint64_t> mins_;  // sorted ascending, distinct
};

/// Per-column statistics: null count, numeric min/max (int64/date/double
/// columns only), and a KMV distinct sketch.
struct ColumnStats {
  int64_t null_count = 0;
  bool tracked = true;     // sketched at all (see RestrictColumns)
  bool has_range = false;  // min/max valid (numeric column, >=1 non-null)
  double min = 0;
  double max = 0;
  KmvSketch distinct;

  /// Distinct-count estimate clamped to [1, row_count].
  double DistinctEstimate(int64_t row_count) const;
};

/// Statistics for one base table, columns aligned with the table schema.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;
  std::unordered_map<std::string, int> column_index;

  const ColumnStats* Column(const std::string& name) const;
  /// Distinct estimate for a named column; falls back to `fallback`
  /// when the column is unknown.
  double DistinctOf(const std::string& name, double fallback) const;
};

/// Lightweight statistics catalog: per-table row counts and per-column
/// sketches, built lazily by a full scan and maintained incrementally as
/// base deltas apply.
///
/// Synchronization contract matches ViewMaintainer: externally confined
/// to one maintenance operation at a time.
///
/// Freshness is tracked against Table::version() (bumped once per
/// successful insert or delete): a full rebuild records the version, and
/// each incremental OnInsert/OnDelete advances the expectation by the
/// batch size. If the table moved in a way the catalog did not see (an
/// out-of-band update, or a batch reported twice), the entry is marked
/// stale and rebuilt at the next Get. Deletions cannot be removed from
/// the insert-only sketches, so an entry also goes stale once deletions
/// since the last rebuild exceed ~30% of the rows it was built from.
class StatsCatalog {
 public:
  explicit StatsCatalog(const Catalog* catalog) : catalog_(catalog) {}

  /// Statistics for `table`, rebuilding if absent or stale. Returns null
  /// for unknown tables. The pointer is valid until the next non-const
  /// call.
  const TableStats* Get(const std::string& table);

  /// Accounts an applied base-table insert/delete batch. `rows` must be
  /// the full rows (for deletes: the deleted rows, as the maintenance
  /// entry points already receive them). A batch whose version range was
  /// already accounted (e.g. several maintainers reporting the same
  /// statement) is skipped via the version check.
  void OnInsert(const std::string& table, const std::vector<Row>& rows);
  void OnDelete(const std::string& table, const std::vector<Row>& rows);

  /// Accounts an UPDATE modeled as delete(old_rows) + insert(new_rows)
  /// applied back-to-back (the maintainer only observes the pair after
  /// both halves hit the table, so the per-batch version windows of
  /// OnInsert/OnDelete cannot line up individually).
  void OnUpdate(const std::string& table, const std::vector<Row>& old_rows,
                const std::vector<Row>& new_rows);

  /// Limits sketch/range maintenance for `table` to `columns` (union of
  /// all calls). Row counts stay exact for every table; untracked
  /// columns report the estimator fallback instead of a sketch. The
  /// maintainer restricts each table to the columns its view predicates
  /// reference, which is all the estimator ever reads — per-delta-row
  /// bookkeeping then costs O(predicate columns), not O(schema width).
  void RestrictColumns(const std::string& table,
                       const std::vector<std::string>& columns);

  void Invalidate(const std::string& table);
  void InvalidateAll();

  // --- test hooks ---
  int64_t rebuild_count() const { return rebuild_count_; }
  bool IsFresh(const std::string& table) const;

 private:
  struct Entry {
    TableStats stats;
    uint64_t expected_version = 0;
    int64_t rows_at_rebuild = 0;
    int64_t deleted_since_rebuild = 0;
    bool stale = false;
  };

  void Rebuild(const std::string& name, const Table& table, Entry* entry);
  static void AddRow(const Table& table, const Row& row, TableStats* stats);

  const Catalog* catalog_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, std::unordered_set<std::string>> interest_;
  int64_t rebuild_count_ = 0;
};

}  // namespace opt
}  // namespace ojv

#endif  // OJV_OPT_STATS_H_
