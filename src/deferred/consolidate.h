#ifndef OJV_DEFERRED_CONSOLIDATE_H_
#define OJV_DEFERRED_CONSOLIDATE_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "deferred/delta_log.h"

namespace ojv {
namespace deferred {

/// Net effect of a pending batch on one base table, keyed by the table's
/// unique key:
///   - a key inserted then deleted within the batch cancels entirely;
///   - a key deleted then reinserted folds into an update pair (the
///     original pre-image in `deletes`, the final post-image in
///     `inserts`) — or cancels too when the reinserted row is identical;
///   - surviving inserts/deletes keep the batch's final image.
/// Feeding the maintainers the net delta instead of the raw entry stream
/// is where deferred batching wins: the paper's left-deep primary-delta
/// pipeline (§4) scales with |ΔT|.
struct TableDelta {
  std::string table;
  /// Sequence number of the first raw entry; deltas are replayed in this
  /// order so the refresh walks tables as the statements first did.
  uint64_t first_seq = 0;
  std::vector<Row> deletes;  // net pre-images to remove
  std::vector<Row> inserts;  // net post-images to add
  int64_t raw_entries = 0;
  /// Keys carrying both a pre- and a post-image. Any such pair forces
  /// the constraint-free plan set (§6 caveat 1): between its delete and
  /// its reinsert a foreign key need not hold.
  int64_t update_pairs = 0;
  int64_t cancelled = 0;  // raw entries removed by consolidation
};

/// Consolidates pending log entries (per table, in sequence order — the
/// shape DeltaLog::PendingFor returns) into net per-table deltas, ordered
/// by first pending entry. Applying each delta's `deletes` then `inserts`
/// to the batch's pre-state reproduces its post-state exactly.
std::vector<TableDelta> Consolidate(
    const std::map<std::string, std::vector<DeltaEntry>>& pending,
    const Catalog& catalog);

/// Key-order comparison of unique-key tuples.
struct RowKeyLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].SortCompare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// The per-key netting core of Consolidate, reusable outside the delta
/// log: repeated touches of one key collapse to at most one pre-image +
/// one post-image (insert+delete cancels, delete+reinsert folds to an
/// update pair or cancels when identical). The heavy-key lazy state of
/// skew-adaptive maintenance (src/ivm/heavy_state.*) runs every diverted
/// row through the same fold, so a hot key touched a thousand times
/// between drains replays as one consolidated statement — the hot-key
/// analogue of deferred batch consolidation.
class NetFold {
 public:
  explicit NetFold(std::vector<int> key_positions);

  /// Entries arrive in statement order, exactly like log entries.
  void AddInsert(const Row& row);
  void AddDelete(const Row& row);

  bool empty() const { return by_key_.empty(); }
  int64_t raw_entries() const { return raw_entries_; }

  struct Net {
    std::vector<Row> deletes;  // net pre-images, key order
    std::vector<Row> inserts;  // net post-images, key order
    int64_t update_pairs = 0;
    int64_t cancelled = 0;
    int64_t raw_entries = 0;
  };

  /// Extracts the net effect and resets the fold.
  Net Take();

 private:
  struct NetState {
    bool has_old = false;  // pre-image deleted from the fold's pre-state
    bool has_new = false;  // post-image present in the fold's post-state
    Row old_row;
    Row new_row;
  };

  std::vector<int> key_positions_;
  std::map<Row, NetState, RowKeyLess> by_key_;
  int64_t raw_entries_ = 0;
};

}  // namespace deferred
}  // namespace ojv

#endif  // OJV_DEFERRED_CONSOLIDATE_H_
