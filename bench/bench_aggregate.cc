// Experiment E8 (paper §3.3 extension): maintenance of an aggregated
// outer-join view (revenue by market segment over V3) versus full
// recomputation of the aggregate.

#include "bench_util.h"
#include "ivm/aggregate_view.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f\n", options.scale_factor);
  TpchInstance instance(options);
  Table* lineitem = instance.catalog.GetTable("lineitem");

  std::vector<ColumnRef> group_by = {{"customer", "c_mktsegment"},
                                     {"orders", "o_orderdate"}};
  std::vector<AggregateSpec> aggs = {
      {AggregateSpec::Kind::kCountStar, {}, "rows"},
      {AggregateSpec::Kind::kCount, {"lineitem", "l_orderkey"}, "lineitems"},
      {AggregateSpec::Kind::kSum, {"lineitem", "l_extendedprice"}, "revenue"},
  };
  AggViewMaintainer agg(&instance.catalog, tpch::MakeV3(instance.catalog),
                        group_by, aggs);
  double init_ms = TimeMs([&] { agg.InitializeView(); });
  std::printf("groups: %lld (initial aggregation: %s)\n",
              static_cast<long long>(agg.num_groups()),
              FormatMs(init_ms).c_str());

  JsonReport report("aggregate", options);
  PrintHeader("Aggregated V3: incremental vs recompute, lineitem inserts",
              {"Rows", "Incremental", "Recompute", "Speedup"});
  for (int64_t batch : options.batches) {
    std::vector<Row> inserted =
        ApplyBaseInsert(lineitem, instance.refresh->NewLineitems(batch));
    double inc_ms = TimeMs([&] { agg.OnInsert("lineitem", inserted); });
    double re_ms = TimeMs([&] { (void)agg.Recompute(); });
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  re_ms / std::max(inc_ms, 1e-3));
    PrintRow({FormatCount(batch), FormatMs(inc_ms), FormatMs(re_ms),
              speedup});
    report.BeginRow();
    report.Count("batch_rows", batch);
    report.Num("incremental_ms", inc_ms);
    report.Num("recompute_ms", re_ms);

    std::vector<Row> keys;
    for (const Row& row : inserted) keys.push_back(Row{row[0], row[3]});
    std::vector<Row> deleted = ApplyBaseDelete(lineitem, keys);
    agg.OnDelete("lineitem", deleted);
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
