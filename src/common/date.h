#ifndef OJV_COMMON_DATE_H_
#define OJV_COMMON_DATE_H_

#include <cstdint>
#include <string>

namespace ojv {

/// Calendar helpers for the DATE type (int64 days since 1970-01-01).
///
/// TPC-H dates span 1992-01-01 .. 1998-12-31; views in the paper filter
/// o_orderdate ranges, so we need exact proleptic-Gregorian conversion.

/// Returns days since epoch for a calendar date. Aborts on invalid input.
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD". Aborts on malformed input.
int64_t ParseDate(const std::string& text);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

}  // namespace ojv

#endif  // OJV_COMMON_DATE_H_
