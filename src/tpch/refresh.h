#ifndef OJV_TPCH_REFRESH_H_
#define OJV_TPCH_REFRESH_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "tpch/dbgen.h"

namespace ojv {
namespace tpch {

/// Generates TPC-H-style refresh workloads against a populated catalog:
/// batches of new rows to insert and existing keys to delete, always
/// respecting the foreign-key constraints (new lineitems reference
/// existing orders/parts/suppliers; new orders reference existing
/// customers). This is the update source for the paper's §7 experiments.
class RefreshStream {
 public:
  RefreshStream(const Catalog* catalog, const Dbgen* dbgen, uint64_t seed);

  /// `n` new lineitem rows for randomly chosen existing orders, with
  /// fresh (l_orderkey, l_linenumber) keys.
  std::vector<Row> NewLineitems(int64_t n);

  /// `per_order` new lineitem rows for each of the given order rows
  /// (which must already exist, e.g. just produced by NewOrders). This
  /// is the RF1 pattern: fresh orders arriving together with their
  /// lineitems, which is what converts customer orphans in the views.
  std::vector<Row> NewLineitemsFor(const std::vector<Row>& order_rows,
                                   int64_t per_order);

  /// Keys (l_orderkey, l_linenumber) of `n` randomly chosen existing
  /// lineitem rows.
  std::vector<Row> PickLineitemDeleteKeys(int64_t n);

  /// `n` new orders with previously unused (sparse-scheme gap) keys.
  std::vector<Row> NewOrders(int64_t n);

  /// `n` new parts with fresh keys.
  std::vector<Row> NewParts(int64_t n);

  /// `n` new customers with fresh keys.
  std::vector<Row> NewCustomers(int64_t n);

  /// Keys of `n` existing orders that have no lineitems (safe to delete
  /// without violating the lineitem FK). May return fewer than n.
  std::vector<Row> PickChildlessOrderDeleteKeys(int64_t n);

 private:
  const Catalog* catalog_;
  const Dbgen* dbgen_;
  Rng rng_;
  int64_t next_part_key_;
  int64_t next_customer_key_;
  int64_t next_order_ordinal_;  // feeds the sparse-key gaps
  // Cached (orderkey, orderdate, next linenumber) candidates.
  struct OrderSlot {
    int64_t orderkey;
    int64_t orderdate;
    int64_t next_line;
  };
  std::vector<OrderSlot> order_slots_;
  std::map<int64_t, size_t> slot_index_;  // orderkey -> order_slots_ index
};

}  // namespace tpch
}  // namespace ojv

#endif  // OJV_TPCH_REFRESH_H_
