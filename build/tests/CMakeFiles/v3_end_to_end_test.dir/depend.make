# Empty dependencies file for v3_end_to_end_test.
# This may be replaced when dependencies are built.
