
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/bound_scalar.cc" "src/exec/CMakeFiles/ojv_exec.dir/bound_scalar.cc.o" "gcc" "src/exec/CMakeFiles/ojv_exec.dir/bound_scalar.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/exec/CMakeFiles/ojv_exec.dir/evaluator.cc.o" "gcc" "src/exec/CMakeFiles/ojv_exec.dir/evaluator.cc.o.d"
  "/root/repo/src/exec/relation.cc" "src/exec/CMakeFiles/ojv_exec.dir/relation.cc.o" "gcc" "src/exec/CMakeFiles/ojv_exec.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/ojv_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ojv_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ojv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
