file(REMOVE_RECURSE
  "CMakeFiles/ojv_baseline.dir/griffin_kumar.cc.o"
  "CMakeFiles/ojv_baseline.dir/griffin_kumar.cc.o.d"
  "CMakeFiles/ojv_baseline.dir/recompute.cc.o"
  "CMakeFiles/ojv_baseline.dir/recompute.cc.o.d"
  "libojv_baseline.a"
  "libojv_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
