# Empty compiler generated dependencies file for sql_warehouse.
# This may be replaced when dependencies are built.
