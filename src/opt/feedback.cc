#include "opt/feedback.h"

#include <algorithm>

#include "exec/evaluator.h"

namespace ojv {
namespace opt {

namespace {

/// Post-order zip of exec events onto the plan tree (same pairing rule
/// as ExplainMaintenance): children first, then this node consumes the
/// next event if the span name matches its kind.
void ZipPlan(const RelExprPtr& node,
             const std::vector<const obs::TraceEvent*>& events, size_t* next,
             std::unordered_map<const RelExpr*, const obs::TraceEvent*>* out) {
  for (const RelExprPtr& child : node->children()) {
    ZipPlan(child, events, next, out);
  }
  if (*next < events.size() &&
      events[*next]->name == ExecSpanNameFor(node->kind())) {
    (*out)[node.get()] = events[*next];
    ++*next;
  }
}

void Collect(const RelExprPtr& node, const PlannedDelta& plan,
             const std::unordered_map<const RelExpr*, const obs::TraceEvent*>&
                 node_event,
             FeedbackResult* result) {
  if (node->kind() != RelKind::kJoin) {
    if (!node->children().empty()) Collect(node->children()[0], plan, node_event, result);
    return;
  }
  // Main path first so steps come out bottom-up.
  Collect(node->left(), plan, node_event, result);

  auto ev_it = node_event.find(node.get());
  if (ev_it == node_event.end()) return;
  double actual = static_cast<double>(ev_it->second->ArgOr("rows_out", 0));

  auto est_it = plan.node_est.find(node.get());
  if (est_it != plan.node_est.end()) {
    double est = est_it->second;
    double drift = (std::max(est, actual) + 1.0) / (std::min(est, actual) + 1.0);
    result->max_drift = std::max(result->max_drift, drift);
  }

  std::set<std::string> right_tables = node->right()->ReferencedTables();
  if (right_tables.size() != 1) return;

  // Fanout is rows-out per *left-input* row. With a partial event
  // stream the left child may have no span; defaulting its cardinality
  // would overstate the fanout by the missing row count and poison the
  // EMA (a spurious drift re-plan at the next maintenance), so the step
  // is skipped entirely — no observation beats a fabricated one.
  auto left_ev = node_event.find(node->left().get());
  if (left_ev == node_event.end()) return;
  double left_rows =
      static_cast<double>(left_ev->second->ArgOr("rows_out", 0));

  StepFeedback step;
  step.right_table = *right_tables.begin();
  step.actual_rows = actual;
  step.actual_fanout = actual / std::max(left_rows, 1.0);
  if (est_it != plan.node_est.end()) step.est_rows = est_it->second;
  result->steps.push_back(std::move(step));
}

}  // namespace

FeedbackResult HarvestFeedback(const PlannedDelta& plan,
                               const std::vector<obs::TraceEvent>& events) {
  FeedbackResult result;
  if (plan.expr == nullptr) return result;

  std::vector<const obs::TraceEvent*> execs;
  execs.reserve(events.size());
  for (const obs::TraceEvent& ev : events) {
    if (ev.category == "exec") execs.push_back(&ev);
  }
  if (execs.empty()) return result;

  std::unordered_map<const RelExpr*, const obs::TraceEvent*> node_event;
  size_t next = 0;
  ZipPlan(plan.expr, execs, &next, &node_event);

  Collect(plan.expr, plan, node_event, &result);
  return result;
}

void UpdateFanoutEma(const FeedbackResult& feedback, double alpha,
                     std::unordered_map<std::string, double>* ema) {
  for (const StepFeedback& step : feedback.steps) {
    auto it = ema->find(step.right_table);
    if (it == ema->end()) {
      (*ema)[step.right_table] = step.actual_fanout;
    } else {
      it->second = alpha * step.actual_fanout + (1.0 - alpha) * it->second;
    }
  }
}

}  // namespace opt
}  // namespace ojv
