# Empty compiler generated dependencies file for jdnf_test.
# This may be replaced when dependencies are built.
