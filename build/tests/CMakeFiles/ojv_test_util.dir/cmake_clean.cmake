file(REMOVE_RECURSE
  "CMakeFiles/ojv_test_util.dir/test_util.cc.o"
  "CMakeFiles/ojv_test_util.dir/test_util.cc.o.d"
  "libojv_test_util.a"
  "libojv_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
