# Empty compiler generated dependencies file for statement_log_test.
# This may be replaced when dependencies are built.
