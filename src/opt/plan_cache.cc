#include "opt/plan_cache.h"

namespace ojv {
namespace opt {

std::string PlanCache::Key(const std::string& table, bool is_insert,
                           bool constraint_free) {
  std::string key = table;
  key += is_insert ? "|ins" : "|del";
  key += constraint_free ? "|cf" : "|main";
  return key;
}

PlanCacheEntry* PlanCache::Find(const std::string& key) {
  auto it = entries_.find(key);
  return it != entries_.end() ? &it->second : nullptr;
}

const PlanCacheEntry* PlanCache::Find(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() ? &it->second : nullptr;
}

PlanCacheEntry* PlanCache::Put(const std::string& key, PlannedDelta plan,
                               double delta_rows) {
  PlanCacheEntry& entry = entries_[key];
  entry.plan = std::move(plan);
  entry.planned_delta_rows = delta_rows < 1 ? 1 : delta_rows;
  entry.dirty = false;
  return &entry;
}

}  // namespace opt
}  // namespace ojv
