// Tests for the always-on flight recorder: ring wraparound, sampling,
// the Span/evaluator hook path, SIGUSR2-triggered dumps (made
// deterministic by draining the flag directly instead of racing the
// poller), and the OJV_OBS=OFF build where every entry point is a
// no-op. The record-vs-snapshot hammer runs under OJV_SANITIZE=thread
// in tools/check.sh — that is what certifies the all-atomic slot
// design.
//
// The recorder is a process-wide singleton, so every test starts with
// ClearForTest() and restores enabled/sample_every on the way out.

#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "io/json.h"
#include "obs/trace.h"

namespace ojv {
namespace obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::Global().SetEnabled(true);
    FlightRecorder::Global().SetSampleEvery(1);
    FlightRecorder::Global().ClearForTest();
  }
  void TearDown() override {
    FlightRecorder::Global().SetEnabled(true);
    FlightRecorder::Global().SetSampleEvery(1);
    FlightRecorder::Global().ClearForTest();
  }
};

TEST_F(FlightRecorderTest, RecordsAndSnapshotsSortedByStart) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record("later", "test", 100, 5);
  recorder.Record("earlier", "test", 10, 3);
  std::vector<TraceEvent> events = recorder.Snapshot();
  if (!kEnabled) {
    EXPECT_TRUE(events.empty());  // Record is a no-op when compiled out
    return;
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "earlier");
  EXPECT_EQ(events[0].start_micros, 10);
  EXPECT_EQ(events[0].dur_micros, 3);
  EXPECT_EQ(events[1].name, "later");
}

TEST_F(FlightRecorderTest, SpanFeedsRecorderWithoutTraceContext) {
  // The tentpole property: spans are recorded even with no TraceContext
  // attached anywhere.
  { Span span(nullptr, "flight.test.span", "test"); }
  std::vector<TraceEvent> events = FlightRecorder::Global().Snapshot();
  if (!kEnabled) {
    EXPECT_TRUE(events.empty());
    return;
  }
  bool found = false;
  for (const TraceEvent& ev : events) {
    if (ev.name == "flight.test.span") {
      found = true;
      EXPECT_EQ(ev.category, "test");
      EXPECT_GE(ev.dur_micros, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsSpans) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetEnabled(false);
  EXPECT_FALSE(recorder.Sample());
  recorder.Record("dropped", "test", 1, 1);
  { Span span(nullptr, "also.dropped", "test"); }
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST_F(FlightRecorderTest, RingWrapsKeepingTheNewestEvents) {
  if (!kEnabled) return;
  FlightRecorder& recorder = FlightRecorder::Global();
  constexpr int64_t kExtra = 256;
  const int64_t total =
      static_cast<int64_t>(FlightRecorder::kRingCapacity) + kExtra;
  for (int64_t i = 0; i < total; ++i) {
    recorder.Record("wrap", "test", /*start_micros=*/i, /*dur_micros=*/1);
  }
  std::vector<TraceEvent> events = recorder.Snapshot();
  // This thread's ring holds exactly capacity events (other tests ran on
  // this thread too, but ClearForTest zeroed the ring), and the oldest
  // kExtra were overwritten.
  ASSERT_EQ(events.size(), FlightRecorder::kRingCapacity);
  EXPECT_EQ(events.front().start_micros, kExtra);
  EXPECT_EQ(events.back().start_micros, total - 1);
}

TEST_F(FlightRecorderTest, SampleEveryThinsDeterministically) {
  if (!kEnabled) return;
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetSampleEvery(4);
  int sampled = 0;
  // The per-thread counter's phase is unknown (earlier tests advanced
  // it), but over any 4000 calls at 1-in-4 exactly 1000 fire.
  for (int i = 0; i < 4000; ++i) {
    if (recorder.Sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 1000);
  recorder.SetSampleEvery(0);  // clamps to 1 = sample everything
  EXPECT_EQ(recorder.sample_every(), 1);
  EXPECT_TRUE(recorder.Sample());
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/ojv_flight_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

TEST_F(FlightRecorderTest, Sigusr2DumpIsDeterministic) {
  FlightRecorder& recorder = FlightRecorder::Global();
  const std::string dir = MakeTempDir();
  if (!kEnabled) {
    EXPECT_FALSE(recorder.StartSignalDumps(dir));
    EXPECT_EQ(recorder.DrainPendingDump(), "");
    return;
  }
  recorder.Record("pre.signal", "test", 1, 2);
  // Install the handler, then stop the poller so this test (not a
  // 25ms-interval background thread) performs the dump: raise() sets
  // the pending flag, DrainPendingDump() consumes it exactly once.
  ASSERT_TRUE(recorder.StartSignalDumps(dir));
  recorder.StopSignalDumps();
  std::string leftover = recorder.DrainPendingDump();  // poller may have won
  ASSERT_TRUE(leftover.empty()) << "unexpected pre-signal dump " << leftover;

  raise(SIGUSR2);
  std::string path = recorder.DrainPendingDump();
  EXPECT_EQ(path, dir + "/flight-1.json");
  EXPECT_EQ(recorder.DrainPendingDump(), "");  // flag consumed

  // The dump is Chrome trace_event JSON holding the recorded span.
  io::JsonValue doc;
  std::string error;
  ASSERT_TRUE(io::ParseJsonFile(path, &doc, &error)) << error;
  const io::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool found = false;
  for (const io::JsonValue& ev : events->AsArray()) {
    if (ev.StringOr("name", "") == "pre.signal") found = true;
  }
  EXPECT_TRUE(found);

  // The API path shares the flag and the sequence number.
  recorder.RequestDump();
  EXPECT_EQ(recorder.DrainPendingDump(), dir + "/flight-2.json");
}

TEST_F(FlightRecorderTest, ConcurrentRecordVsSnapshotHammer) {
  if (!kEnabled) return;
  FlightRecorder& recorder = FlightRecorder::Global();
  constexpr int kWriters = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record("hammer", "test", i, 1);
      }
    });
  }
  std::thread reader([&recorder, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<TraceEvent> events = recorder.Snapshot();
      // Every observed event must be internally sane — wraparound and
      // concurrent writes never produce a null name (the marker) or a
      // negative duration.
      for (const TraceEvent& ev : events) {
        ASSERT_FALSE(ev.name.empty());
        ASSERT_GE(ev.dur_micros, 0);
      }
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  // Each writer thread's ring retains at most kRingCapacity events.
  std::vector<TraceEvent> events = recorder.Snapshot();
  EXPECT_LE(events.size(), kWriters * FlightRecorder::kRingCapacity);
  EXPECT_GE(events.size(), FlightRecorder::kRingCapacity);
}

TEST_F(FlightRecorderTest, OffBuildIsInert) {
  if (kEnabled) return;
  // The OJV_OBS=OFF contract, asserted explicitly: no sampling, no
  // events, no dump machinery. (check.sh obs-export runs this whole
  // binary against an OFF tree.)
  FlightRecorder& recorder = FlightRecorder::Global();
  EXPECT_FALSE(recorder.enabled());
  EXPECT_FALSE(recorder.Sample());
  recorder.Record("x", "y", 1, 1);
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_FALSE(recorder.StartSignalDumps("/tmp"));
  recorder.RequestDump();
  EXPECT_EQ(recorder.DrainPendingDump(), "");
}

}  // namespace
}  // namespace obs
}  // namespace ojv
