#include "deferred/scheduler.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"

namespace ojv {
namespace deferred {

const char* RefreshPolicyName(RefreshPolicy policy) {
  switch (policy) {
    case RefreshPolicy::kImmediate:
      return "immediate";
    case RefreshPolicy::kOnDemand:
      return "on-demand";
    case RefreshPolicy::kThreshold:
      return "threshold";
  }
  return "?";
}

void RefreshScheduler::SetPolicy(const std::string& view, RefreshPolicy policy,
                                 ThresholdConfig config) {
  ViewRefreshState& state = views_[view];
  state.policy = policy;
  state.config = config;
}

void RefreshScheduler::Forget(const std::string& view) {
  views_.erase(view);
  groups_.erase(view);
}

void RefreshScheduler::SetGroup(const std::string& view,
                                const std::string& group) {
  if (group.empty() || group == "-") {
    groups_.erase(view);
  } else {
    groups_[view] = group;
  }
}

std::string RefreshScheduler::group(const std::string& view) const {
  auto it = groups_.find(view);
  return it == groups_.end() ? "-" : it->second;
}

RefreshPolicy RefreshScheduler::policy(const std::string& view) const {
  auto it = views_.find(view);
  return it == views_.end() ? RefreshPolicy::kImmediate : it->second.policy;
}

const ThresholdConfig& RefreshScheduler::config(const std::string& view) const {
  auto it = views_.find(view);
  OJV_CHECK(it != views_.end(), "no refresh state for view");
  return it->second.config;
}

bool RefreshScheduler::IsDeferred(const std::string& view) const {
  return policy(view) != RefreshPolicy::kImmediate;
}

bool RefreshScheduler::HasDeferredViews() const {
  for (const auto& [view, state] : views_) {
    if (state.policy != RefreshPolicy::kImmediate) return true;
  }
  return false;
}

std::vector<std::string> RefreshScheduler::DeferredViews() const {
  std::vector<std::string> out;
  for (const auto& [view, state] : views_) {
    if (state.policy != RefreshPolicy::kImmediate) out.push_back(view);
  }
  return out;
}

bool RefreshScheduler::Due(const std::string& view, int64_t pending_rows,
                           double staleness_micros) const {
  auto it = views_.find(view);
  if (it == views_.end() || it->second.policy != RefreshPolicy::kThreshold) {
    return false;
  }
  if (pending_rows <= 0) return false;
  const ThresholdConfig& config = it->second.config;
  if (config.max_pending_rows > 0 && pending_rows >= config.max_pending_rows) {
    return true;
  }
  return config.max_staleness_micros > 0 &&
         staleness_micros >= config.max_staleness_micros;
}

void RefreshScheduler::RecordRefresh(const std::string& view,
                                     const RefreshStats& stats) {
  ViewRefreshState& state = views_[view];
  ++state.refreshes;
  state.raw_entries += stats.raw_entries;
  state.consolidated_rows += stats.consolidated_rows;
  state.cancelled_rows += stats.cancelled_rows;
  state.refresh_micros += stats.refresh_micros;
  state.last = stats;
  if constexpr (obs::kEnabled) {
    obs::Registry& reg = obs::Registry::Global();
    static obs::Counter& refreshes =
        reg.GetCounter("ojv.deferred.refreshes");
    static obs::Counter& raw = reg.GetCounter("ojv.deferred.raw_entries");
    static obs::Counter& net =
        reg.GetCounter("ojv.deferred.consolidated_rows");
    static obs::Counter& cancelled =
        reg.GetCounter("ojv.deferred.cancelled_rows");
    static obs::Counter& pairs =
        reg.GetCounter("ojv.deferred.update_pairs");
    static obs::Histogram& latency =
        reg.GetHistogram("ojv.deferred.refresh_micros");
    static obs::Histogram& staleness =
        reg.GetHistogram("ojv.deferred.staleness_micros");
    refreshes.Add(1);
    raw.Add(stats.raw_entries);
    net.Add(stats.consolidated_rows);
    cancelled.Add(stats.cancelled_rows);
    pairs.Add(stats.update_pairs);
    latency.Record(static_cast<int64_t>(stats.refresh_micros));
    staleness.Record(static_cast<int64_t>(stats.staleness_micros));
    // Per-view freshness SLO series. Labeled names vary by view, so the
    // static-reference cache idiom does not apply; a registry lookup per
    // refresh is fine — refreshes are batch-scale events, not per-row.
    reg.GetCounter(obs::LabeledMetric("ojv.deferred.view.refreshes", "view",
                                      view))
        .Add(1);
    reg.GetGauge(obs::LabeledMetric("ojv.deferred.view.staleness_micros",
                                    "view", view))
        .Set(static_cast<int64_t>(stats.staleness_micros));
    reg.GetGauge(obs::LabeledMetric("ojv.deferred.view.refresh_micros", "view",
                                    view))
        .Set(static_cast<int64_t>(stats.refresh_micros));
    // SLO burn: cumulative micros the view was past its admission
    // staleness ceiling at refresh time. Zero ceiling = no SLO = no
    // series; a configured ceiling exposes the counter even at zero so
    // scrapers see the series before the first violation.
    const double ceiling = state.config.staleness_ceiling_micros;
    if (ceiling > 0) {
      const double burn = stats.staleness_micros - ceiling;
      reg.GetCounter(obs::LabeledMetric("ojv.deferred.view.slo_burn_micros",
                                        "view", view))
          .Add(burn > 0 ? static_cast<int64_t>(burn) : 0);
    }
  }
}

const ViewRefreshState* RefreshScheduler::state(const std::string& view) const {
  auto it = views_.find(view);
  return it == views_.end() ? nullptr : &it->second;
}

std::string RefreshScheduler::Report() const {
  // The view column widens to the longest registered name, so long
  // names neither break alignment nor get truncated.
  size_t name_width = 4;  // "view"
  for (const auto& [view, s] : views_) {
    name_width = std::max(name_width, view.size());
  }
  size_t group_width = 5;  // "group"
  for (const auto& [view, g] : groups_) {
    group_width = std::max(group_width, g.size());
  }
  std::ostringstream out;
  out << std::left << std::setw(static_cast<int>(name_width)) << "view" << ' '
      << std::setw(10) << "policy" << std::setw(static_cast<int>(group_width))
      << "group" << std::right << std::setw(10) << "refreshes" << std::setw(12)
      << "raw-rows" << std::setw(11) << "net-rows" << std::setw(12)
      << "cancelled" << std::setw(12) << "refresh-ms" << std::setw(13)
      << "staleness-ms" << '\n';
  out << std::fixed << std::setprecision(2);
  for (const auto& [view, s] : views_) {
    out << std::left << std::setw(static_cast<int>(name_width)) << view << ' '
        << std::setw(10) << RefreshPolicyName(s.policy)
        << std::setw(static_cast<int>(group_width)) << group(view)
        << std::right << std::setw(10) << s.refreshes << std::setw(12)
        << s.raw_entries << std::setw(11) << s.consolidated_rows
        << std::setw(12) << s.cancelled_rows << std::setw(12)
        << s.refresh_micros / 1000.0 << std::setw(13)
        << s.last.staleness_micros / 1000.0 << '\n';
  }
  return out.str();
}

void BackgroundRefresher::Start(std::chrono::milliseconds interval,
                                std::function<void()> drain) {
  OJV_CHECK(!thread_.joinable(), "background refresher already running");
  stop_ = false;
  pinged_ = false;
  thread_ = std::thread([this, interval, drain = std::move(drain)] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, interval, [this] { return stop_ || pinged_; });
      if (stop_) break;
      pinged_ = false;
      // Run the drain without holding our own mutex: it takes the
      // database's statement mutex and may run for a while.
      lock.unlock();
      drain();
      lock.lock();
    }
  });
}

void BackgroundRefresher::Notify() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pinged_ = true;
  }
  cv_.notify_one();
}

void BackgroundRefresher::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_one();
  thread_.join();
}

}  // namespace deferred
}  // namespace ojv
