// Google-benchmark microbenchmarks for the relational substrate: hash
// joins (all outer-join flavors), duplicate elimination, removal of
// subsumed tuples, minimum union, and null-if — the operators every
// maintenance expression is built from (experiment E9).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "exec/evaluator.h"

namespace ojv {
namespace {

// Two keyed tables with `rows` rows each and ~50% join hit rate.
class OperatorFixture {
 public:
  explicit OperatorFixture(int64_t rows) : rng_(7) {
    catalog_.CreateTable(
        "L",
        Schema({ColumnDef{"lid", ValueType::kInt64, false},
                ColumnDef{"lk", ValueType::kInt64, true},
                ColumnDef{"lv", ValueType::kInt64, true}}),
        {"lid"});
    catalog_.CreateTable(
        "R",
        Schema({ColumnDef{"rid", ValueType::kInt64, false},
                ColumnDef{"rk", ValueType::kInt64, true},
                ColumnDef{"rv", ValueType::kInt64, true}}),
        {"rid"});
    Table* l = catalog_.GetTable("L");
    Table* r = catalog_.GetTable("R");
    for (int64_t i = 0; i < rows; ++i) {
      l->Insert(Row{Value::Int64(i), Value::Int64(rng_.Uniform(0, 2 * rows)),
                    Value::Int64(i)});
      r->Insert(Row{Value::Int64(i), Value::Int64(rng_.Uniform(0, 2 * rows)),
                    Value::Int64(i)});
    }
  }

  Relation Eval(const RelExprPtr& e) {
    Evaluator evaluator(&catalog_);
    return evaluator.EvalToRelation(e);
  }

  Relation EvalSortMerge(const RelExprPtr& e) {
    Evaluator evaluator(&catalog_);
    evaluator.set_join_algorithm(Evaluator::JoinAlgorithm::kSortMerge);
    return evaluator.EvalToRelation(e);
  }

  Relation EvalParallel(const RelExprPtr& e, int threads) {
    Evaluator evaluator(&catalog_);
    ExecConfig config;
    config.num_threads = threads;
    evaluator.set_exec(config, ThreadPool::Shared(threads).get());
    return evaluator.EvalToRelation(e);
  }

  RelExprPtr Join(JoinKind kind) {
    return RelExpr::Join(kind, RelExpr::Scan("L"), RelExpr::Scan("R"),
                         ScalarExpr::ColumnsEqual({"L", "lk"}, {"R", "rk"}));
  }

 private:
  Catalog catalog_;
  Rng rng_;
};

void BM_HashJoinInner(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(fixture.Join(JoinKind::kInner)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoinInner)->Arg(1000)->Arg(10000)->Arg(100000);

// Morsel-parallel hash join; Args are {rows, threads}. On a single-core
// host the interesting read is the overhead vs BM_HashJoinInner.
void BM_HashJoinInnerParallel(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.EvalParallel(fixture.Join(JoinKind::kInner), threads));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoinInnerParallel)
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8});

void BM_SortMergeInner(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.EvalSortMerge(fixture.Join(JoinKind::kInner)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortMergeInner)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FullOuterJoin(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(fixture.Join(JoinKind::kFullOuter)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullOuterJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LeftAntiJoin(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(fixture.Join(JoinKind::kLeftAnti)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LeftAntiJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MinUnion(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  RelExprPtr expr =
      RelExpr::MinUnion(RelExpr::Scan("L"),
                        RelExpr::Join(JoinKind::kInner, RelExpr::Scan("L"),
                                      RelExpr::Scan("R"),
                                      ScalarExpr::ColumnsEqual({"L", "lk"},
                                                               {"R", "rk"})));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(expr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MinUnion)->Arg(1000)->Arg(10000);

void BM_RemoveSubsumed(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  Relation joined = fixture.Eval(fixture.Join(JoinKind::kLeftOuter));
  for (auto _ : state) {
    Relation copy = joined;
    benchmark::DoNotOptimize(Evaluator::RemoveSubsumed(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * joined.size());
}
BENCHMARK(BM_RemoveSubsumed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RemoveSubsumedParallel(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  ExecConfig config;
  config.num_threads = threads;
  ThreadPool* pool = ThreadPool::Shared(threads).get();
  Relation joined = fixture.Eval(fixture.Join(JoinKind::kLeftOuter));
  for (auto _ : state) {
    Relation copy = joined;
    benchmark::DoNotOptimize(
        Evaluator::RemoveSubsumed(std::move(copy), config, pool));
  }
  state.SetItemsProcessed(state.iterations() * joined.size());
}
BENCHMARK(BM_RemoveSubsumedParallel)->Args({100000, 2})->Args({100000, 4});

void BM_Dedup(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  Relation joined = fixture.Eval(fixture.Join(JoinKind::kLeftOuter));
  for (auto _ : state) {
    Relation copy = joined;
    benchmark::DoNotOptimize(Evaluator::DedupRows(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * joined.size());
}
BENCHMARK(BM_Dedup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NullIf(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  RelExprPtr expr = RelExpr::NullIf(
      fixture.Join(JoinKind::kLeftOuter), {"R"},
      ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Column("R", "rv"),
                          ScalarExpr::Literal(Value::Int64(10))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(expr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NullIf)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace ojv

BENCHMARK_MAIN();
