#include "io/statement_log.h"

#include <sstream>

#include "common/check.h"
#include "common/date.h"

namespace ojv {
namespace io {
namespace {

constexpr char kNullMarker[] = "\\N";

std::string RenderTyped(const Value& value, ValueType type) {
  if (value.is_null()) return kNullMarker;
  if (type == ValueType::kDate) return FormatDate(value.int64());
  if (value.is_float64()) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value.float64());
    return buf;
  }
  return value.ToString();
}

bool ParseTyped(const std::string& field, ValueType type, Value* out) {
  if (field == kNullMarker) {
    *out = Value::Null();
    return true;
  }
  try {
    switch (type) {
      case ValueType::kInt64:
        *out = Value::Int64(std::stoll(field));
        return true;
      case ValueType::kFloat64:
        *out = Value::Float64(std::stod(field));
        return true;
      case ValueType::kString:
        *out = Value::String(field);
        return true;
      case ValueType::kDate:
        *out = Value::Date(ParseDate(field));
        return true;
    }
  } catch (const std::exception&) {
  }
  return false;
}

// Log rows use '|' separation with backslash escaping of '|', backslash
// and newline (strings may contain anything).
void WriteEscaped(std::ostream& out, const std::string& field) {
  for (char c : field) {
    switch (c) {
      case '|':
        out << "\\|";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
}

bool SplitEscaped(const std::string& line, std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      char next = line[i + 1];
      if (next == '|' || next == '\\') {
        current.push_back(next);
        ++i;
        continue;
      }
      if (next == 'n') {
        current.push_back('\n');
        ++i;
        continue;
      }
      if (next == 'N' && current.empty() &&
          (i + 2 >= line.size() || line[i + 2] == '|')) {
        current = kNullMarker;
        ++i;
        continue;
      }
    }
    if (c == '|') {
      fields->push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields->push_back(std::move(current));
  return true;
}

std::vector<ValueType> SchemaTypes(const Schema& schema) {
  std::vector<ValueType> types;
  for (int i = 0; i < schema.num_columns(); ++i) {
    types.push_back(schema.column(i).type);
  }
  return types;
}

std::vector<ValueType> KeyTypes(const Table& table) {
  std::vector<ValueType> types;
  for (int p : table.key_positions()) {
    types.push_back(table.schema().column(p).type);
  }
  return types;
}

}  // namespace

StatementLog::StatementLog(const std::string& path)
    : out_(path, std::ios::app) {}

void StatementLog::WriteRows(const std::vector<Row>& rows,
                             const std::vector<ValueType>& types) {
  for (const Row& row : rows) {
    OJV_CHECK(row.size() == types.size(), "log row arity mismatch");
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out_ << '|';
      WriteEscaped(out_, RenderTyped(row[i], types[i]));
    }
    out_ << '\n';
  }
}

void StatementLog::LogInsert(const Table& table, const std::vector<Row>& rows) {
  out_ << "#stmt INSERT " << table.name() << " " << rows.size() << "\n";
  WriteRows(rows, SchemaTypes(table.schema()));
}

void StatementLog::LogDelete(const Table& table, const std::vector<Row>& keys) {
  out_ << "#stmt DELETE " << table.name() << " " << keys.size() << "\n";
  WriteRows(keys, KeyTypes(table));
}

void StatementLog::LogUpdate(const Table& table, const std::vector<Row>& keys,
                             const std::vector<Row>& new_rows) {
  OJV_CHECK(keys.size() == new_rows.size(), "update arity mismatch");
  out_ << "#stmt UPDATE " << table.name() << " " << keys.size() << "\n";
  WriteRows(keys, KeyTypes(table));
  out_ << "#rows\n";
  WriteRows(new_rows, SchemaTypes(table.schema()));
}

bool ReplayStatementLog(const std::string& path, Database* db,
                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open log " + path;
    return false;
  }
  std::string line;
  int64_t line_number = 0;

  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = path + ":" + std::to_string(line_number) + ": " + message;
    }
    return false;
  };

  auto read_rows = [&](int64_t count, const std::vector<ValueType>& types,
                       std::vector<Row>* rows) {
    std::vector<std::string> fields;
    for (int64_t i = 0; i < count; ++i) {
      if (!std::getline(in, line)) return false;
      ++line_number;
      SplitEscaped(line, &fields);
      if (fields.size() != types.size()) return false;
      Row row;
      row.reserve(fields.size());
      for (size_t c = 0; c < fields.size(); ++c) {
        Value value;
        if (!ParseTyped(fields[c], types[c], &value)) return false;
        row.push_back(std::move(value));
      }
      rows->push_back(std::move(row));
    }
    return true;
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream header(line);
    std::string marker, op, table_name;
    int64_t count = 0;
    header >> marker >> op >> table_name >> count;
    if (marker != "#stmt") return fail("expected #stmt header");
    if (!db->catalog()->HasTable(table_name)) {
      return fail("unknown table " + table_name);
    }
    const Table* table = db->catalog()->GetTable(table_name);

    if (op == "INSERT") {
      std::vector<Row> rows;
      if (!read_rows(count, SchemaTypes(table->schema()), &rows)) {
        return fail("bad INSERT payload");
      }
      Database::StatementResult result = db->Insert(table_name, rows);
      if (!result.ok()) return fail(result.error);
    } else if (op == "DELETE") {
      std::vector<Row> keys;
      if (!read_rows(count, KeyTypes(*table), &keys)) {
        return fail("bad DELETE payload");
      }
      Database::StatementResult result = db->Delete(table_name, keys);
      if (!result.ok()) return fail(result.error);
    } else if (op == "UPDATE") {
      std::vector<Row> keys;
      if (!read_rows(count, KeyTypes(*table), &keys)) {
        return fail("bad UPDATE keys");
      }
      if (!std::getline(in, line) || line != "#rows") {
        return fail("expected #rows");
      }
      ++line_number;
      std::vector<Row> new_rows;
      if (!read_rows(count, SchemaTypes(table->schema()), &new_rows)) {
        return fail("bad UPDATE payload");
      }
      Database::StatementResult result =
          db->Update(table_name, keys, new_rows);
      if (!result.ok()) return fail(result.error);
    } else {
      return fail("unknown statement " + op);
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace io
}  // namespace ojv
