#ifndef OJV_OPT_PLANNER_H_
#define OJV_OPT_PLANNER_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "opt/cardinality.h"
#include "opt/plan_cache.h"

namespace ojv {
namespace opt {

/// Knobs for cost-based delta planning (MaintenanceOptions.planner).
struct PlannerOptions {
  enum class Mode {
    kStatic,     // keep the syntactic left-deep order (pre-planner behavior)
    kCostBased,  // reorder join steps by estimated cost
  };
  Mode mode = Mode::kCostBased;

  /// Runs with at most this many join steps are ordered by exhaustive
  /// (branch-and-bound) enumeration; longer runs fall back to greedy
  /// min-output-cardinality.
  int exhaustive_max_joins = 6;

  /// Re-plan when max per-step estimate/actual row drift exceeds this
  /// ratio, or when |Δ| shifts by more than 2^replan_delta_log2 from the
  /// |Δ| the cached plan was costed for.
  double replan_drift = 4.0;
  double replan_delta_log2 = 3.0;

  /// Feedback loop: harvest actual per-operator cardinalities from the
  /// obs trace after each run and fold them into a fanout EMA.
  bool feedback = true;
  double ema_alpha = 0.5;
};

/// Picks the left-deep join order of a delta tree by estimated cost.
///
/// The static expression is decomposed into a base leaf plus a bottom-up
/// sequence of main-path steps (join / select / null-if / dedup /
/// subsume-remove). Only *joins* move, and only within maximal runs of
/// consecutive inner/left-outer join steps: the λ/δ/↓/σ fix-up operators
/// introduced by the §4.1 conversion are barriers that no join crosses,
/// which keeps every reordering semantically equal to the original (see
/// DESIGN.md §10 for the legality argument). Within a run, an order is
/// valid when each step's predicate only references tables already below
/// it; runs up to `exhaustive_max_joins` are ordered exhaustively with
/// cost pruning, longer runs greedily. Cost is the sum of estimated
/// intermediate cardinalities (C_out).
///
/// Any decomposition or validation failure returns the static expression
/// unchanged (reordered=false), so planning can never produce a plan the
/// executor has not already been proven against.
class DeltaPlanner {
 public:
  DeltaPlanner(StatsCatalog* stats, const PlannerOptions& options)
      : stats_(stats), options_(options) {}

  /// Plans `static_expr` (the ToLeftDeep output for updates of
  /// `delta_table`) for a pending delta of `delta_rows` rows.
  /// `fanout_ema` optionally injects observed per-right-table fanouts
  /// that override the ndv-based estimates.
  PlannedDelta Plan(
      const RelExprPtr& static_expr, const std::string& delta_table,
      double delta_rows,
      const std::unordered_map<std::string, double>* fanout_ema = nullptr);

  /// Partitioned cardinalities for skew-adaptive maintenance: every
  /// subsequent Plan estimates each listed table minus its heavy
  /// partition (the light batch being planned never joins it). Stays in
  /// effect until replaced; pass {} to clear (drain replays plan against
  /// the full tables).
  void SetPartitionExclusions(
      std::unordered_map<std::string, PartitionExclusion> exclusions) {
    exclusions_ = std::move(exclusions);
  }

  /// Orders `tables` by ascending estimated row count (deterministic:
  /// ties break by name). Used for inner-join chains whose order is
  /// unconstrained, e.g. the secondary-delta from-base rk chains.
  std::vector<std::string> OrderTablesByRows(
      const std::set<std::string>& tables);

  const PlannerOptions& options() const { return options_; }
  StatsCatalog* stats() { return stats_; }

 private:
  StatsCatalog* stats_;
  PlannerOptions options_;
  std::unordered_map<std::string, PartitionExclusion> exclusions_;
};

const char* PlannerModeName(PlannerOptions::Mode mode);

}  // namespace opt
}  // namespace ojv

#endif  // OJV_OPT_PLANNER_H_
