// Experiment E7 (paper §4.1): the left-deep conversion of ΔV^D. The
// bushy delta tree joins base tables against each other (R fo S in the
// paper's example), producing large intermediate results even for tiny
// deltas; the left-deep tree keeps intermediates proportional to |ΔT|.
//
// Uses a V1-shaped view over TPC-H-sized synthetic tables so the bushy
// plan really must materialize a base-table-only join.

#include "bench_util.h"
#include "common/rng.h"
#include "ivm/maintainer.h"

namespace ojv {
namespace bench {
namespace {

// V1 over synthetic tables R, S, T, U (see paper Example 2), sized so
// that R fo S is expensive to build from scratch.
void CreateSyntheticTables(Catalog* catalog, int64_t rows, Rng* rng) {
  for (const char* name : {"R", "S", "T", "U"}) {
    std::string p(1, static_cast<char>(std::tolower(name[0])));
    catalog->CreateTable(
        name,
        Schema({ColumnDef{p + "_id", ValueType::kInt64, false},
                ColumnDef{p + "_a", ValueType::kInt64, true},
                ColumnDef{p + "_b", ValueType::kInt64, true}}),
        {p + "_id"});
    Table* table = catalog->GetTable(name);
    for (int64_t i = 0; i < rows; ++i) {
      table->Insert(Row{Value::Int64(i), Value::Int64(rng->Uniform(0, rows)),
                        Value::Int64(rng->Uniform(0, rows))});
    }
  }
}

ViewDef MakeView(const Catalog& catalog) {
  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  RelExprPtr rs = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("R"),
                                RelExpr::Scan("S"), eq("R", "r_a", "S", "s_a"));
  RelExprPtr tu = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("T"),
                                RelExpr::Scan("U"), eq("T", "t_a", "U", "u_a"));
  RelExprPtr tree =
      RelExpr::Join(JoinKind::kLeftOuter, rs, tu, eq("R", "r_b", "T", "t_b"));
  std::vector<ColumnRef> output;
  for (const char* name : {"R", "S", "T", "U"}) {
    std::string p(1, static_cast<char>(std::tolower(name[0])));
    output.push_back({name, p + "_id"});
    output.push_back({name, p + "_a"});
    output.push_back({name, p + "_b"});
  }
  return ViewDef("v1_synth", tree, output, catalog);
}

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int64_t rows = static_cast<int64_t>(2000000 * options.scale_factor);
  std::printf("V1-shaped view, %lld rows per table\n",
              static_cast<long long>(rows));

  Rng rng(options.seed);
  Catalog catalog;
  CreateSyntheticTables(&catalog, rows, &rng);
  ViewDef view = MakeView(catalog);

  MaintenanceOptions left_deep_options;
  MaintenanceOptions bushy_options;
  bushy_options.use_left_deep = false;
  ViewMaintainer left_deep(&catalog, view, left_deep_options);
  ViewMaintainer bushy(&catalog, view, bushy_options);
  left_deep.InitializeView();
  bushy.InitializeView();

  std::printf("bushy ΔV^D:     %s\n",
              bushy.delta_expr("T")->ToString().c_str());
  std::printf("left-deep ΔV^D: %s\n",
              left_deep.delta_expr("T")->ToString().c_str());

  JsonReport report("leftdeep", options);
  PrintHeader("Left-deep vs bushy ΔV^D (insertions into T)",
              {"Rows", "LeftDeep", "Bushy", "Bushy/LD"});
  Table* t = catalog.GetTable("T");
  int64_t next_key = rows + 1;
  for (int64_t batch : options.batches) {
    std::vector<Row> rows_batch;
    for (int64_t i = 0; i < batch; ++i) {
      rows_batch.push_back(Row{Value::Int64(next_key++),
                               Value::Int64(rng.Uniform(0, rows)),
                               Value::Int64(rng.Uniform(0, rows))});
    }
    std::vector<Row> inserted = ApplyBaseInsert(t, rows_batch);
    double ld_ms = TimeMs([&] { left_deep.OnInsert("T", inserted); });
    double bushy_ms = TimeMs([&] { bushy.OnInsert("T", inserted); });
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  bushy_ms / std::max(ld_ms, 1e-3));
    PrintRow({FormatCount(batch), FormatMs(ld_ms), FormatMs(bushy_ms),
              ratio});
    report.BeginRow();
    report.Count("batch_rows", batch);
    report.Num("left_deep_ms", ld_ms);
    report.Num("bushy_ms", bushy_ms);

    std::vector<Row> keys;
    for (const Row& row : inserted) keys.push_back(Row{row[0]});
    std::vector<Row> deleted = ApplyBaseDelete(t, keys);
    left_deep.OnDelete("T", deleted);
    bushy.OnDelete("T", deleted);
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
