#!/usr/bin/env bash
# Full verification: build and run the test suite three times — a plain
# Release build, an ASan/UBSan build (-DOJV_SANITIZE=address,undefined),
# and a ThreadSanitizer build (-DOJV_TSAN=ON) that runs the
# concurrency-sensitive tests: the morsel-parallel executor equivalence
# suite, the deferred/background-refresh tests, and the obs
# thread-hammer tests — plus an observability stage that exercises the
# instrumented pipeline (ojv_trace --check) and verifies that a
# -DOJV_OBS=OFF build really compiles recording out (the obs tests
# assert zero events in that tree). Run from anywhere; builds land in
# build-check-* at the repository root.
#
#   tools/check.sh            # all configurations
#   tools/check.sh release    # Release only
#   tools/check.sh sanitize   # ASan/UBSan only
#   tools/check.sh tsan       # ThreadSanitizer only
#   tools/check.sh obs        # observability: traced run + OBS=OFF no-op
#   tools/check.sh obs-export # live telemetry: exporter/recorder under TSan,
#                             # OBS=OFF inertness, OFF-tree overhead gate
#   tools/check.sh simd-off   # columnar scalar fallback under UBSan
#   tools/check.sh skew       # heavy-light partitioning tests + the
#                             # uniform==heavy-light equivalence suite (TSan)
#   tools/check.sh serve      # snapshot serving path: the ReadView
#                             # lock-escape regression + generation
#                             # equivalence suite under TSan
#   tools/check.sh bench-gate # fig5 + kernel + skew + serve timings vs
#                             # BENCH_pipeline.json

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
mode="${1:-all}"

run_config() {
  local name="$1"; shift
  local filter=""
  if [ "$1" = "--tests" ]; then filter="$2"; shift 2; fi
  local dir="$root/build-check-$name"
  echo "==> [$name] configure"
  cmake -B "$dir" -S "$root" "$@" >/dev/null
  echo "==> [$name] build"
  cmake --build "$dir" -j "$jobs" >/dev/null
  echo "==> [$name] ctest"
  if [ -n "$filter" ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
}

case "$mode" in
  release|all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;&
  sanitize|all)
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DOJV_SANITIZE=address,undefined
    ;;&
  tsan|all)
    # The full suite is serial-dominated; under TSan only the tests that
    # actually spawn threads carry signal, and they carry all of it.
    # metrics/trace join the filter for their thread-hammer cases.
    run_config tsan --tests 'parallel_executor|columnar|deferred|database|metrics|trace|admission|multiview|snapshot' \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOJV_TSAN=ON
    ;;&
  obs-export|all)
    # Live-telemetry stage. Under TSan: the exporter's concurrent
    # record-vs-serialize hammer, the flight recorder's
    # record-vs-snapshot hammer (the all-atomic ring design's
    # certification), and the trace/top tools end to end.
    run_config obs-export --tests 'export_test|flight_recorder_test|metrics_test|trace|top_tool' \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOJV_TSAN=ON -DOJV_OBS=ON
    # The same tests against -DOJV_OBS=OFF: Start() returns false (no
    # exporter thread, no HTTP socket), the recorder records nothing,
    # and the tools degrade to empty-but-valid outputs.
    run_config obs-export-off --tests 'export_test|flight_recorder_test|metrics_test|trace|top_tool' \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOJV_OBS=OFF
    # Overhead claim for the OFF tree: all three instrumentation modes
    # of bench_obs_overhead compile to the same uninstrumented loop, so
    # ours_ms must match the committed obs_overhead_off numbers (the
    # ON-tree overhead rows run in the bench-gate stage, where no
    # sanitizer distorts them).
    offdir="$root/build-check-obs-export-off"
    cmake --build "$offdir" -j "$jobs" \
        --target bench_obs_overhead bench_gate >/dev/null
    "$offdir/bench/bench_obs_overhead" --batches=60,600 \
        --json="$offdir/obs_overhead_off.json" >/dev/null
    "$offdir/tools/bench_gate" --baseline="$root/BENCH_pipeline.json" \
        --candidate="$offdir/obs_overhead_off.json" \
        --section=obs_overhead_off --floor-ms=2
    ;;&
  simd-off|all)
    # The explicit-SIMD kernels compiled out: every columnar operator
    # must fall back to the pinned scalar tree and still bag-match the
    # row engine. UBSan is the interesting sanitizer here — the scalar
    # hash/compare loops are where integer-conversion mistakes would
    # hide (the kernel unit tests compare dispatched-vs-scalar, which
    # this tree degenerates to scalar-vs-scalar; the equivalence suite
    # still carries full signal).
    run_config simd-off --tests 'columnar' \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOJV_SIMD=OFF \
        -DOJV_SANITIZE=undefined
    ;;&
  skew|all)
    # Skew-adaptive maintenance: the space-saving sketch / lazy-state
    # unit tests plus the Zipf-stream equivalence property suite that
    # pins kHeavyLight == kUniform view contents at every drain point.
    # TSan because the Database drain paths interleave with the
    # background refresher and admission worker.
    run_config skew --tests 'heavy_hitters|heavy_state|skew_equivalence' \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOJV_TSAN=ON
    ;;&
  serve|all)
    # Snapshot serving path: the ReadView lock-escape regression (reader
    # threads scanning pinned generations while the background refresher
    # storms the same view — the exact race the old interior-pointer API
    # had) plus the generation-boundary equivalence suite, under TSan.
    run_config serve --tests 'snapshot_read|snapshot_equivalence' \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOJV_TSAN=ON
    ;;&
  obs|all)
    # Instrumented run: the trace tool replays a TPC-H workload with
    # tracing on and asserts the expected stage set + valid JSON output.
    run_config obs --tests 'metrics_test|trace_test|trace_integration|trace_tool' \
        -DCMAKE_BUILD_TYPE=Release -DOJV_OBS=ON
    # Compiled-out run: same tests against -DOJV_OBS=OFF. The trace/
    # metrics tests flip to their "records nothing" branches and
    # trace_tool verifies it degrades gracefully (empty trace, no
    # check failures).
    run_config obs-off --tests 'metrics_test|trace_test|trace_integration|trace_tool' \
        -DCMAKE_BUILD_TYPE=Release -DOJV_OBS=OFF
    # Size sanity for the no-op claim: compiling recording out must not
    # grow the instrumented binary (the if-constexpr guards really are
    # dead code, not runtime branches).
    on_size=$(wc -c < "$root/build-check-obs/tools/ojv_trace")
    off_size=$(wc -c < "$root/build-check-obs-off/tools/ojv_trace")
    echo "==> [obs] ojv_trace size: OBS=ON ${on_size}B, OBS=OFF ${off_size}B"
    if [ "$off_size" -gt "$on_size" ]; then
      echo "==> [obs] FAIL: OBS=OFF binary is larger than OBS=ON" >&2
      exit 1
    fi
    ;;&
  bench-gate|all)
    # Benchmark regression gate: re-run the fig5 benchmarks in the same
    # configuration the committed BENCH_pipeline.json was measured in
    # (RelWithDebInfo, no sanitizer) and compare the per-stage timings.
    # bench_gate skips itself (exit 0) on hosts that don't match the
    # baseline's host_cores/build_type, so this stage is safe everywhere
    # and only gates machines comparable to the one that committed the
    # numbers.
    dir="$root/build-check-bench"
    echo "==> [bench-gate] configure"
    cmake -B "$dir" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> [bench-gate] build"
    cmake --build "$dir" -j "$jobs" \
        --target bench_fig5_insert bench_fig5_delete bench_deferred \
        bench_multiview bench_operators bench_obs_overhead bench_skew \
        bench_serve bench_gate >/dev/null
    echo "==> [bench-gate] run fig5 benchmarks"
    "$dir/bench/bench_fig5_insert" --threads=4 \
        --json="$dir/fig5_insert.json" >/dev/null
    "$dir/bench/bench_fig5_delete" --threads=4 \
        --json="$dir/fig5_delete.json" >/dev/null
    # The deferred bench's admission scenario (hot threshold loop):
    # small batches keep the immediate-mode comparison columns quick.
    "$dir/bench/bench_deferred" --batches=60,600 \
        --json="$dir/deferred.json" >/dev/null
    # Multiview at SF 0.01: the 200-view catalog dominates setup time, so
    # the small scale factor keeps the stage quick; probe-volume sharing
    # is scale-independent (the benchmark self-checks the counter).
    "$dir/bench/bench_multiview" --sf=0.01 \
        --json="$dir/multiview.json" >/dev/null
    # Row-vs-columnar kernel suite: one row per hot operator.
    "$dir/bench/bench_operators" --kernels \
        --json="$dir/kernels.json" >/dev/null
    # Telemetry overhead: recorder-on and full-export timings over the
    # bare maintenance loop (the "no measurable overhead" claim, gated).
    "$dir/bench/bench_obs_overhead" --batches=60,600 \
        --json="$dir/obs_overhead.json" >/dev/null
    # Heavy-light vs uniform under Zipf join keys (self-checks view
    # equality before reporting).
    "$dir/bench/bench_skew" --json="$dir/skew.json" >/dev/null
    # Serving under a refresh storm: snapshot-read p50/p99 while the
    # background worker replays consolidated batches into V3.
    "$dir/bench/bench_serve" --batches=60,600 \
        --json="$dir/serve.json" >/dev/null
    echo "==> [bench-gate] compare against BENCH_pipeline.json"
    "$dir/tools/bench_gate" --baseline="$root/BENCH_pipeline.json" \
        --candidate="$dir/fig5_insert.json" --section=fig5_insert
    "$dir/tools/bench_gate" --baseline="$root/BENCH_pipeline.json" \
        --candidate="$dir/fig5_delete.json" --section=fig5_delete
    # Floor 2ms: the hot-loop column is sub-millisecond at batch=60, so
    # only absolute movement beyond scheduler noise counts — a refresh
    # leaking back into the admission-controlled loop costs ~10ms and
    # still trips the gate.
    "$dir/tools/bench_gate" --baseline="$root/BENCH_pipeline.json" \
        --candidate="$dir/deferred.json" --section=deferred_admission \
        --floor-ms=2
    # Floor 5ms: RefreshAll over 50/200 views runs tens of milliseconds;
    # the floor keeps per-view scheduling jitter from tripping the ratio.
    "$dir/tools/bench_gate" --baseline="$root/BENCH_pipeline.json" \
        --candidate="$dir/multiview.json" --section=multiview \
        --floor-ms=5
    # Floor 2ms on the kernel rows: the fast kernels run ~1ms at 100k
    # rows, so only movement beyond timer noise counts.
    "$dir/tools/bench_gate" --baseline="$root/BENCH_pipeline.json" \
        --candidate="$dir/kernels.json" --section=kernels \
        --floor-ms=2
    # Floor 2ms on the overhead rows: the maintenance loop is a few ms
    # at these batch sizes, so only real instrumentation cost counts.
    "$dir/tools/bench_gate" --baseline="$root/BENCH_pipeline.json" \
        --candidate="$dir/obs_overhead.json" --section=obs_overhead \
        --floor-ms=2
    # Floor 5ms on the skew rows: the control row's ours_ms runs ~100ms
    # and the skewed rows hundreds of ms, so 5ms only filters noise; a
    # lost diversion path costs seconds and trips the ratio regardless.
    "$dir/tools/bench_gate" --baseline="$root/BENCH_pipeline.json" \
        --candidate="$dir/skew.json" --section=skew \
        --floor-ms=5
    # Floor 2ms on the serve rows: snapshot-read p99 is tens of
    # microseconds when the read path stays off the maintenance mutex,
    # so the gate only trips when reads start blocking on refreshes
    # again (~10ms p99) — the regression this PR exists to prevent. The
    # fresh contrast rows carry no ours_ms and are not gated.
    "$dir/tools/bench_gate" --baseline="$root/BENCH_pipeline.json" \
        --candidate="$dir/serve.json" --section=serve \
        --floor-ms=2
    ;;&
  release|sanitize|tsan|obs|obs-export|simd-off|skew|serve|bench-gate|all)
    echo "==> all requested configurations passed"
    ;;
  *)
    echo "usage: tools/check.sh [release|sanitize|tsan|obs|obs-export|simd-off|skew|serve|bench-gate|all]" >&2
    exit 2
    ;;
esac
