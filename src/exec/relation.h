#ifndef OJV_EXEC_RELATION_H_
#define OJV_EXEC_RELATION_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/scalar_expr.h"
#include "catalog/schema.h"

namespace ojv {

/// A column of an intermediate result, tagged with its source base table.
/// Tags survive every operator (including projection), which is what lets
/// the maintenance expressions test null(T)/¬null(T) and build eq(Ti)
/// join conditions against views and deltas.
struct BoundColumn {
  std::string table;
  std::string column;
  ValueType type = ValueType::kInt64;
  /// If >= 0, this column is the key_ordinal-th unique-key column of its
  /// source table. Carried on the column so merged schemas (joins,
  /// unions) keep key knowledge without consulting the catalog.
  int key_ordinal = -1;

  std::string ToString() const { return table + "." + column; }
};

/// Schema of an intermediate result: ordered tagged columns plus, for
/// every source table present, the positions of that table's unique-key
/// columns (used for null-extension tests and eq(Ti) predicates).
class BoundSchema {
 public:
  BoundSchema() = default;

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const BoundColumn& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<BoundColumn>& columns() const { return columns_; }

  /// Appends a column (col.key_ordinal marks key membership).
  void AddColumn(BoundColumn col);

  /// Position of table.column, or -1.
  int Find(const std::string& table, const std::string& column) const;
  int Find(const ColumnRef& ref) const { return Find(ref.table, ref.column); }
  /// Position of table.column; aborts if absent.
  int IndexOf(const ColumnRef& ref) const;

  bool HasTable(const std::string& table) const;
  /// Tables present in this schema.
  std::vector<std::string> Tables() const;

  /// Positions of `table`'s key columns in this schema, in key order.
  /// Empty if the table is absent or its key columns were projected away.
  const std::vector<int>& KeyPositions(const std::string& table) const;

  /// True when the full key of `table` is available in this schema.
  bool HasFullKey(const std::string& table) const;

  std::string ToString() const;

 private:
  struct TableInfo {
    std::vector<int> key_positions;  // indexed by key ordinal; -1 = missing
    bool key_complete = true;
  };

  std::vector<BoundColumn> columns_;
  std::map<std::string, TableInfo> tables_;
  static const std::vector<int> kEmptyPositions;
};

/// An intermediate result: bound schema + rows.
class Relation {
 public:
  Relation() = default;
  explicit Relation(BoundSchema schema) : schema_(std::move(schema)) {}

  const BoundSchema& schema() const { return schema_; }
  BoundSchema* mutable_schema() { return &schema_; }

  int64_t size() const { return static_cast<int64_t>(rows_.size()); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>* mutable_rows() { return &rows_; }
  const Row& row(int64_t i) const { return rows_[static_cast<size_t>(i)]; }

  void Add(Row row) { rows_.push_back(std::move(row)); }

  /// True if `row` is null-extended on `table` (its key columns are NULL
  /// in this row). Requires the table's key to be present in the schema.
  bool IsNullExtendedOn(const Row& row, const std::string& table) const;

  /// Order-insensitive bag equality against `other` (same rows with the
  /// same multiplicities after aligning column order). Schemas must bind
  /// the same (table, column) sets. This is the comparison the executor
  /// equivalence tests use: every physical plan — serial hash,
  /// sort-merge, parallel at any thread count — must produce Equals
  /// results.
  bool Equals(const Relation& other) const;

  /// Multi-line debug rendering (sorted if `sorted`), for tests/examples.
  std::string ToString(bool sorted = false) const;

 private:
  BoundSchema schema_;
  std::vector<Row> rows_;
};

/// Sorts rows with Value::SortCompare lexicographically (test helper).
void SortRows(std::vector<Row>* rows);

/// True when the two relations contain the same bag of rows after
/// aligning `b`'s columns to `a`'s schema order. Schemas must bind the
/// same (table, column) sets. Test helper.
bool SameBag(const Relation& a, const Relation& b, std::string* diff);

}  // namespace ojv

#endif  // OJV_EXEC_RELATION_H_
