// DeltaLog truncation under mixed consumers: grouped views advance
// their high-water marks together while independent views advance on
// their own schedule. No entry may be dropped while any consumer still
// needs it, and the log must fully drain once every consumer catches up
// — including after interleaved group and single-view refreshes.

#include <gtest/gtest.h>

#include "deferred/delta_log.h"
#include "ivm/database.h"

namespace ojv {
namespace {

using deferred::DeltaLog;
using deferred::DeltaOp;
using deferred::RefreshPolicy;

Row IntRow(int64_t v) { return {Value::Int64(v)}; }

TEST(DeltaLogTruncateTest, MixedConsumersWithInterleavedMarks) {
  DeltaLog log;
  log.RegisterConsumer("grouped_a");
  log.RegisterConsumer("grouped_b");
  log.RegisterConsumer("solo");

  log.Append("t", DeltaOp::kInsert, {IntRow(1), IntRow(2)});  // seq 1, 2
  log.Append("u", DeltaOp::kInsert, {IntRow(3)});             // seq 3
  EXPECT_EQ(log.size(), 3);

  // The group refreshes: both members advance to the tail in lockstep.
  // The solo consumer still needs everything, so nothing is dropped.
  log.AdvanceTo("grouped_a", log.tail());
  log.AdvanceTo("grouped_b", log.tail());
  log.TruncateConsumed();
  EXPECT_EQ(log.size(), 3);
  EXPECT_EQ(log.PendingRows("solo", {"t", "u"}), 3);

  // More entries arrive; the solo consumer catches up only part way
  // (to seq 3), so seq 4 must survive — the group now lags.
  log.Append("t", DeltaOp::kDelete, {IntRow(1)});  // seq 4
  log.AdvanceTo("solo", 3);
  log.TruncateConsumed();
  EXPECT_EQ(log.size(), 1);
  EXPECT_EQ(log.PendingRows("grouped_a", {"t", "u"}), 1);
  EXPECT_EQ(log.PendingRows("grouped_b", {"t", "u"}), 1);
  EXPECT_EQ(log.PendingRows("solo", {"t", "u"}), 1);

  // Everyone drains: the log empties.
  log.AdvanceTo("grouped_a", log.tail());
  log.AdvanceTo("grouped_b", log.tail());
  log.AdvanceTo("solo", log.tail());
  log.TruncateConsumed();
  EXPECT_EQ(log.size(), 0);
}

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

// Database-level: a two-member group plus an independent deferred view
// over the same tables. A group refresh must not drop entries the solo
// view still needs; once the solo view refreshes too, the log drains.
TEST(DeltaLogTruncateTest, GroupRefreshKeepsEntriesForIndependentConsumer) {
  Database db;
  db.catalog()->CreateTable(
      "C",
      Schema({ColumnDef{"c_id", ValueType::kInt64, false},
              ColumnDef{"c_a", ValueType::kInt64, true}}),
      {"c_id"});
  db.catalog()->CreateTable(
      "O",
      Schema({ColumnDef{"o_id", ValueType::kInt64, false},
              ColumnDef{"o_c", ValueType::kInt64, true}}),
      {"o_id"});
  db.SetMultiviewMode(MultiviewMode::kShared);

  auto co_view = [&](const char* name) {
    RelExprPtr tree =
        RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("C"),
                      RelExpr::Scan("O"), Eq("C", "c_id", "O", "o_c"));
    return ViewDef(name, tree, {{"C", "c_id"}, {"O", "o_id"}},
                   *db.catalog());
  };
  db.CreateMaterializedView(co_view("v1"));
  db.CreateMaterializedView(co_view("v2"));
  // Different first step (join to O on another column): stays ungrouped.
  RelExprPtr solo_tree =
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("C"),
                    RelExpr::Scan("O"), Eq("C", "c_a", "O", "o_c"));
  db.CreateMaterializedView(
      ViewDef("v3", solo_tree, {{"C", "c_id"}, {"O", "o_id"}}, *db.catalog()));
  for (const char* v : {"v1", "v2", "v3"}) {
    db.SetRefreshPolicy(v, RefreshPolicy::kOnDemand);
  }
  ASSERT_EQ(db.ViewGroups().size(), 1u);

  db.Insert("C", {{Value::Int64(1), Value::Int64(1)}});
  db.Insert("O", {{Value::Int64(1), Value::Int64(1)},
                  {Value::Int64(2), Value::Int64(1)}});
  ASSERT_EQ(db.PendingRows("v3"), 3);

  // Refreshing v1 drains the whole group {v1, v2}...
  db.Refresh("v1");
  EXPECT_EQ(db.PendingRows("v1"), 0);
  EXPECT_EQ(db.PendingRows("v2"), 0);
  // ...but v3's entries survive truncation.
  EXPECT_EQ(db.PendingRows("v3"), 3);

  // After the solo refresh every consumer is at the tail: log drained.
  db.Refresh("v3");
  EXPECT_EQ(db.PendingRows("v3"), 0);
  EXPECT_EQ(db.DeltaLogSize(), 0);
}

}  // namespace
}  // namespace ojv
