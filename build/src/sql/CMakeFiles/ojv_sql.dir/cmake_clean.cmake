file(REMOVE_RECURSE
  "CMakeFiles/ojv_sql.dir/lexer.cc.o"
  "CMakeFiles/ojv_sql.dir/lexer.cc.o.d"
  "CMakeFiles/ojv_sql.dir/parser.cc.o"
  "CMakeFiles/ojv_sql.dir/parser.cc.o.d"
  "libojv_sql.a"
  "libojv_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
