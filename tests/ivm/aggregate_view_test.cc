// Aggregated outer-join views (§3.3): group counts, NULL-recovery of
// SUMs, group creation/deletion, all validated against recomputation.

#include "ivm/aggregate_view.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

using testing_util::CreateRstuSchema;
using testing_util::MakeV1;
using testing_util::PopulateRandomRstu;
using testing_util::RandomRstuRows;
using testing_util::SampleKeys;

AggViewMaintainer MakeV1Agg(const Catalog& catalog,
                            MaintenanceOptions options = MaintenanceOptions()) {
  // GROUP BY R.r_a with COUNT(*), COUNT(T.t_id), SUM(U.u_v): the T/U
  // aggregates go NULL whenever a group holds only R/S-side orphans.
  std::vector<ColumnRef> group_by = {{"R", "r_a"}};
  std::vector<AggregateSpec> aggs = {
      {AggregateSpec::Kind::kCountStar, {}, "cnt"},
      {AggregateSpec::Kind::kCount, {"T", "t_id"}, "cnt_t"},
      {AggregateSpec::Kind::kSum, {"U", "u_v"}, "sum_uv"},
  };
  return AggViewMaintainer(&catalog, MakeV1(catalog), group_by, aggs, options);
}

TEST(AggregateViewTest, InitialAggregationMatchesRecompute) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Rng rng(5);
  PopulateRandomRstu(&catalog, &rng, 30, 5);
  AggViewMaintainer agg = MakeV1Agg(catalog);
  agg.InitializeView();
  std::string diff;
  EXPECT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;
  EXPECT_GT(agg.num_groups(), 0);
}

TEST(AggregateViewTest, MixedUpdatesMatchRecompute) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Rng rng(6);
  PopulateRandomRstu(&catalog, &rng, 25, 5);
  AggViewMaintainer agg = MakeV1Agg(catalog);
  agg.InitializeView();

  int64_t next_key = 400000;
  const char* tables[] = {"T", "U", "S", "R"};
  for (int round = 0; round < 12; ++round) {
    const char* name = tables[round % 4];
    Table* table = catalog.GetTable(name);
    if (round % 3 == 2) {
      std::vector<Row> deleted =
          ApplyBaseDelete(table, SampleKeys(*table, &rng, 4));
      agg.OnDelete(name, deleted);
    } else {
      std::vector<Row> inserted = ApplyBaseInsert(
          table, RandomRstuRows(name, &rng, 5, 5, &next_key));
      agg.OnInsert(name, inserted);
    }
    std::string diff;
    ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff))
        << "round " << round << " (" << name << "): " << diff;
  }
}

TEST(AggregateViewTest, SumGoesNullWhenContributionsVanish) {
  // One R row joined by one T row; deleting the T row must flip the
  // group's T-count to 0 and its U-sum handling to NULL semantics.
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Table* r = catalog.GetTable("R");
  Table* t = catalog.GetTable("T");
  r->Insert(Row{Value::Int64(1), Value::Int64(7), Value::Int64(3),
                Value::Int64(10)});
  t->Insert(Row{Value::Int64(2), Value::Int64(9), Value::Int64(3),
                Value::Int64(20)});

  AggViewMaintainer agg = MakeV1Agg(catalog);
  agg.InitializeView();
  std::string diff;
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;

  // Group r_a=7 currently counts the joined T row.
  Relation before = agg.AsRelation();
  ASSERT_EQ(before.size(), 1);
  int cnt_t_pos = before.schema().Find("#agg", "cnt_t");
  EXPECT_EQ(before.row(0)[static_cast<size_t>(cnt_t_pos)], Value::Int64(1));

  std::vector<Row> deleted = ApplyBaseDelete(t, {Row{Value::Int64(2)}});
  agg.OnDelete("T", deleted);
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;
  Relation after = agg.AsRelation();
  ASSERT_EQ(after.size(), 1);
  EXPECT_EQ(after.row(0)[static_cast<size_t>(cnt_t_pos)], Value::Int64(0));
}

TEST(AggregateViewTest, GroupsAppearAndDisappear) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  AggViewMaintainer agg = MakeV1Agg(catalog);
  agg.InitializeView();
  EXPECT_EQ(agg.num_groups(), 0);

  Table* r = catalog.GetTable("R");
  std::vector<Row> rows = {Row{Value::Int64(1), Value::Int64(4),
                               Value::Int64(0), Value::Int64(5)}};
  agg.OnInsert("R", ApplyBaseInsert(r, rows));
  EXPECT_EQ(agg.num_groups(), 1);

  agg.OnDelete("R", ApplyBaseDelete(r, {Row{Value::Int64(1)}}));
  EXPECT_EQ(agg.num_groups(), 0);
  std::string diff;
  EXPECT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;
}

TEST(AggregateViewTest, AggregatedV3SalesDashboard) {
  // An aggregated V3: order volume and revenue by market segment —
  // the kind of OLAP view the paper's introduction motivates.
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);
  tpch::RefreshStream refresh(&catalog, &dbgen, 321);

  std::vector<ColumnRef> group_by = {{"customer", "c_mktsegment"}};
  std::vector<AggregateSpec> aggs = {
      {AggregateSpec::Kind::kCountStar, {}, "rows"},
      {AggregateSpec::Kind::kCount, {"lineitem", "l_orderkey"}, "lineitems"},
      {AggregateSpec::Kind::kSum, {"lineitem", "l_extendedprice"}, "revenue"},
  };
  AggViewMaintainer agg(&catalog, tpch::MakeV3(catalog), group_by, aggs);
  agg.InitializeView();
  std::string diff;
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;

  Table* lineitem = catalog.GetTable("lineitem");
  agg.OnInsert("lineitem",
               ApplyBaseInsert(lineitem, refresh.NewLineitems(200)));
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;

  agg.OnDelete("lineitem",
               ApplyBaseDelete(lineitem, refresh.PickLineitemDeleteKeys(150)));
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;

  // Customer inserts ride the FK fast path into the aggregation too.
  Table* customer = catalog.GetTable("customer");
  MaintenanceStats stats = agg.OnInsert(
      "customer", ApplyBaseInsert(customer, refresh.NewCustomers(25)));
  EXPECT_EQ(stats.primary_rows, 25);
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;
}

TEST(AggregateViewTest, MinMaxExtensionSurvivesExtremeDeletions) {
  // MIN/MAX: incremental on inserts, per-group refresh when a deletion
  // removes the current extreme.
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Table* r = catalog.GetTable("R");
  for (int64_t i = 1; i <= 10; ++i) {
    r->Insert(Row{Value::Int64(i), Value::Int64(i % 2), Value::Int64(0),
                  Value::Int64(i * 10)});
  }
  std::vector<ColumnRef> group_by = {{"R", "r_a"}};
  std::vector<AggregateSpec> aggs = {
      {AggregateSpec::Kind::kCountStar, {}, "cnt"},
      {AggregateSpec::Kind::kMin, {"R", "r_v"}, "min_v"},
      {AggregateSpec::Kind::kMax, {"R", "r_v"}, "max_v"},
  };
  AggViewMaintainer agg(&catalog, testing_util::MakeV1(catalog), group_by,
                        aggs);
  agg.InitializeView();
  std::string diff;
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;

  // Insert a new maximum (incremental path).
  agg.OnInsert("R", ApplyBaseInsert(
                        r, {Row{Value::Int64(99), Value::Int64(0),
                                Value::Int64(0), Value::Int64(999)}}));
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;
  Relation snap = agg.AsRelation();
  int max_pos = snap.schema().Find("#agg", "max_v");
  bool found = false;
  for (const Row& row : snap.rows()) {
    if (row[0] == Value::Int64(0)) {
      EXPECT_EQ(row[static_cast<size_t>(max_pos)], Value::Int64(999));
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Delete the maximum (dirty-group refresh path).
  agg.OnDelete("R", ApplyBaseDelete(r, {Row{Value::Int64(99)}}));
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;
  snap = agg.AsRelation();
  for (const Row& row : snap.rows()) {
    if (row[0] == Value::Int64(0)) {
      EXPECT_EQ(row[static_cast<size_t>(max_pos)], Value::Int64(100));
    }
  }

  // Delete the minimum of the other group too.
  agg.OnDelete("R", ApplyBaseDelete(r, {Row{Value::Int64(1)}}));
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;
}

TEST(AggregateViewTest, MinMaxUnderRandomChurn) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Rng rng(808);
  PopulateRandomRstu(&catalog, &rng, 20, 4);
  std::vector<ColumnRef> group_by = {{"R", "r_a"}};
  std::vector<AggregateSpec> aggs = {
      {AggregateSpec::Kind::kCountStar, {}, "cnt"},
      {AggregateSpec::Kind::kMin, {"T", "t_v"}, "min_tv"},
      {AggregateSpec::Kind::kMax, {"U", "u_v"}, "max_uv"},
  };
  AggViewMaintainer agg(&catalog, testing_util::MakeV1(catalog), group_by,
                        aggs);
  agg.InitializeView();

  int64_t key = 600000;
  const char* tables[] = {"T", "U", "S", "R"};
  for (int round = 0; round < 12; ++round) {
    const char* name = tables[round % 4];
    Table* table = catalog.GetTable(name);
    if (round % 2 == 1 && table->size() > 3) {
      agg.OnDelete(name, ApplyBaseDelete(
                             table, SampleKeys(*table, &rng, 4)));
    } else {
      agg.OnInsert(name, ApplyBaseInsert(
                             table, RandomRstuRows(name, &rng, 4, 4, &key)));
    }
    std::string diff;
    ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff))
        << "round " << round << " (" << name << "): " << diff;
  }
}

// §3.3 fidelity: expose per-table not-null counts. "If the not-null
// count for table T becomes zero, all aggregates referencing a column
// in T are set to null."
TEST(AggregateViewTest, NotNullCountsExposedPerTable) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Table* r = catalog.GetTable("R");
  Table* t = catalog.GetTable("T");
  r->Insert(Row{Value::Int64(1), Value::Int64(7), Value::Int64(3),
                Value::Int64(10)});
  t->Insert(Row{Value::Int64(2), Value::Int64(9), Value::Int64(3),
                Value::Int64(20)});

  std::vector<ColumnRef> group_by = {{"R", "r_a"}};
  std::vector<AggregateSpec> aggs = {
      {AggregateSpec::Kind::kCountStar, {}, "cnt"},
      {AggregateSpec::Kind::kSum, {"T", "t_v"}, "sum_tv"}};
  AggViewMaintainer agg(&catalog, testing_util::MakeV1(catalog), group_by,
                        aggs);
  agg.ExposeNotNullCounts();
  agg.InitializeView();
  std::string diff;
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;

  Relation snap = agg.AsRelation();
  // Every V1 table is null-extended in some term ({S} omits even R), so
  // all four get a count column.
  EXPECT_GE(snap.schema().Find("#agg", "notnull_T"), 0);
  EXPECT_GE(snap.schema().Find("#agg", "notnull_U"), 0);
  EXPECT_GE(snap.schema().Find("#agg", "notnull_S"), 0);
  EXPECT_GE(snap.schema().Find("#agg", "notnull_R"), 0);

  int nn_t = snap.schema().Find("#agg", "notnull_T");
  int sum_tv = snap.schema().Find("#agg", "sum_tv");
  ASSERT_EQ(snap.size(), 1);
  EXPECT_EQ(snap.row(0)[static_cast<size_t>(nn_t)], Value::Int64(1));
  EXPECT_EQ(snap.row(0)[static_cast<size_t>(sum_tv)], Value::Float64(20));

  // Delete the T row: notnull_T drops to 0 and the SUM over T renders
  // NULL, per the paper's rule.
  agg.OnDelete("T", ApplyBaseDelete(t, {Row{Value::Int64(2)}}));
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;
  snap = agg.AsRelation();
  ASSERT_EQ(snap.size(), 1);
  EXPECT_EQ(snap.row(0)[static_cast<size_t>(nn_t)], Value::Int64(0));
  EXPECT_TRUE(snap.row(0)[static_cast<size_t>(sum_tv)].is_null());
}

}  // namespace
}  // namespace ojv
