#include "opt/fingerprint.h"

#include <algorithm>

namespace ojv {
namespace opt {

namespace {

bool IsLeaf(const RelExprPtr& e) {
  return e->kind() == RelKind::kScan || e->kind() == RelKind::kDeltaScan;
}

bool IsSimpleRight(const RelExprPtr& e) {
  if (IsLeaf(e)) return true;
  return e->kind() == RelKind::kSelect && IsLeaf(e->input());
}

std::string PredSig(const ScalarExprPtr& pred) {
  return pred == nullptr ? std::string("-") : pred->ToString();
}

/// Signature of a simple join right operand: the table name, wrapped in
/// sel(...) when the operand carries a pushed-down selection.
std::string RightSig(const RelExprPtr& right) {
  if (IsLeaf(right)) return right->table();
  return "sel(" + PredSig(right->predicate()) + ")" + right->input()->table();
}

std::string StepSig(const FingerprintStep& s) {
  switch (s.kind) {
    case RelKind::kSelect:
      return "select|" + PredSig(s.pred);
    case RelKind::kDedup:
      return "dedup";
    case RelKind::kSubsumeRemove:
      return "subsume";
    case RelKind::kNullIf: {
      std::string tables;
      for (const std::string& t : s.null_tables) {
        if (!tables.empty()) tables += ",";
        tables += t;
      }
      return "nullif|" + tables + "|" + PredSig(s.pred);
    }
    case RelKind::kJoin:
      return std::string("join|") + JoinKindName(s.join_kind) + "|" +
             RightSig(s.right) + "|" + PredSig(s.pred);
    default:
      return "?";
  }
}

}  // namespace

std::string DeltaFingerprint::Signature(size_t prefix_len) const {
  std::string sig = "d(" + delta_table + ")";
  prefix_len = std::min(prefix_len, steps.size());
  for (size_t i = 0; i < prefix_len; ++i) {
    sig += ";" + steps[i].signature;
  }
  return sig;
}

DeltaFingerprint FingerprintDelta(const RelExprPtr& expr,
                                  const std::string& delta_table) {
  DeltaFingerprint fp;
  fp.delta_table = delta_table;
  if (expr == nullptr) return fp;

  std::vector<FingerprintStep> top_down;
  RelExprPtr cur = expr;
  while (true) {
    switch (cur->kind()) {
      case RelKind::kDeltaScan:
        if (cur->table() != delta_table) return fp;
        fp.steps.assign(top_down.rbegin(), top_down.rend());
        for (FingerprintStep& s : fp.steps) s.signature = StepSig(s);
        fp.ok = true;
        return fp;
      case RelKind::kScan:
        return fp;  // base leaf must be the ΔT scan
      case RelKind::kSelect:
      case RelKind::kNullIf: {
        FingerprintStep s;
        s.kind = cur->kind();
        s.pred = cur->predicate();
        if (cur->kind() == RelKind::kNullIf) s.null_tables = cur->null_tables();
        top_down.push_back(std::move(s));
        cur = cur->input();
        break;
      }
      case RelKind::kDedup:
      case RelKind::kSubsumeRemove: {
        FingerprintStep s;
        s.kind = cur->kind();
        top_down.push_back(std::move(s));
        cur = cur->input();
        break;
      }
      case RelKind::kJoin: {
        if (!IsSimpleRight(cur->right())) return fp;
        FingerprintStep s;
        s.kind = RelKind::kJoin;
        s.join_kind = cur->join_kind();
        s.right = cur->right();
        std::set<std::string> right_tables = cur->right()->ReferencedTables();
        if (right_tables.size() == 1) s.right_table = *right_tables.begin();
        s.pred = cur->predicate();
        top_down.push_back(std::move(s));
        cur = cur->left();
        break;
      }
      default:
        return fp;  // project / unions: not a delta main path
    }
  }
}

size_t CommonPrefixLength(const DeltaFingerprint& a,
                          const DeltaFingerprint& b) {
  if (!a.ok || !b.ok || a.delta_table != b.delta_table) return 0;
  size_t n = std::min(a.steps.size(), b.steps.size());
  size_t len = 0;
  while (len < n && a.steps[len].signature == b.steps[len].signature) ++len;
  return len;
}

namespace {

RelExprPtr ApplySteps(const DeltaFingerprint& fp, size_t begin, size_t end,
                      RelExprPtr base) {
  RelExprPtr cur = std::move(base);
  for (size_t i = begin; i < end; ++i) {
    const FingerprintStep& s = fp.steps[i];
    switch (s.kind) {
      case RelKind::kSelect:
        cur = RelExpr::Select(cur, s.pred);
        break;
      case RelKind::kNullIf:
        cur = RelExpr::NullIf(cur, s.null_tables, s.pred);
        break;
      case RelKind::kDedup:
        cur = RelExpr::Dedup(cur);
        break;
      case RelKind::kSubsumeRemove:
        cur = RelExpr::SubsumeRemove(cur);
        break;
      case RelKind::kJoin:
        cur = RelExpr::Join(s.join_kind, cur, s.right, s.pred);
        break;
      default:
        break;
    }
  }
  return cur;
}

}  // namespace

RelExprPtr BuildPrefixExpr(const DeltaFingerprint& fp, size_t len) {
  len = std::min(len, fp.steps.size());
  return ApplySteps(fp, 0, len, RelExpr::DeltaScan(fp.delta_table));
}

RelExprPtr BuildSuffixExpr(const DeltaFingerprint& fp, size_t len,
                           const std::string& leaf_name) {
  len = std::min(len, fp.steps.size());
  return ApplySteps(fp, len, fp.steps.size(), RelExpr::DeltaScan(leaf_name));
}

}  // namespace opt
}  // namespace ojv
