file(REMOVE_RECURSE
  "libojv_sql.a"
)
