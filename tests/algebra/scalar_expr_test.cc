#include "algebra/scalar_expr.h"

#include <gtest/gtest.h>

#include "algebra/rel_expr.h"
#include "exec/bound_scalar.h"

namespace ojv {
namespace {

ScalarExprPtr Col(const char* t, const char* c) {
  return ScalarExpr::Column(t, c);
}

TEST(ScalarExprTest, ReferencedTables) {
  ScalarExprPtr e = ScalarExpr::And(
      {ScalarExpr::Compare(CompareOp::kEq, Col("A", "x"), Col("B", "y")),
       ScalarExpr::Compare(CompareOp::kLt, Col("A", "z"),
                           ScalarExpr::Literal(Value::Int64(5)))});
  EXPECT_EQ(e->ReferencedTables(), (std::set<std::string>{"A", "B"}));
}

TEST(ScalarExprTest, NullRejection) {
  ScalarExprPtr cmp =
      ScalarExpr::Compare(CompareOp::kEq, Col("A", "x"), Col("B", "y"));
  EXPECT_TRUE(cmp->IsNullRejectingOn("A"));
  EXPECT_TRUE(cmp->IsNullRejectingOn("B"));
  EXPECT_FALSE(cmp->IsNullRejectingOn("C"));

  // A conjunction rejects NULLs of any table a conjunct rejects.
  ScalarExprPtr conj = ScalarExpr::And(
      {cmp, ScalarExpr::Compare(CompareOp::kGt, Col("C", "z"),
                                ScalarExpr::Literal(Value::Int64(0)))});
  EXPECT_TRUE(conj->IsNullRejectingOn("A"));
  EXPECT_TRUE(conj->IsNullRejectingOn("C"));

  // IS NULL is *not* null-rejecting.
  EXPECT_FALSE(ScalarExpr::IsNull(Col("A", "x"))->IsNullRejectingOn("A"));
  // NOT of a comparison is not null-rejecting (NOT(unknown) = unknown,
  // but NOT(false) = true with a NULL on the other operand... we are
  // conservative).
  EXPECT_FALSE(ScalarExpr::Not(cmp)->IsNullRejectingOn("A"));
  // A disjunction rejects only if every branch does.
  ScalarExprPtr disj = ScalarExpr::Or(
      {cmp, ScalarExpr::Compare(CompareOp::kGt, Col("A", "x"),
                                ScalarExpr::Literal(Value::Int64(0)))});
  EXPECT_TRUE(disj->IsNullRejectingOn("A"));
  EXPECT_FALSE(disj->IsNullRejectingOn("B"));
}

TEST(ScalarExprTest, SplitAndRebuildConjunction) {
  ScalarExprPtr a =
      ScalarExpr::Compare(CompareOp::kEq, Col("A", "x"), Col("B", "y"));
  ScalarExprPtr b = ScalarExpr::Compare(CompareOp::kLt, Col("A", "z"),
                                        ScalarExpr::Literal(Value::Int64(1)));
  ScalarExprPtr c = ScalarExpr::Compare(CompareOp::kGt, Col("B", "w"),
                                        ScalarExpr::Literal(Value::Int64(2)));
  ScalarExprPtr nested = ScalarExpr::And({ScalarExpr::And({a, b}), c});
  std::vector<ScalarExprPtr> conjuncts = SplitConjuncts(nested);
  EXPECT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(SplitConjuncts(nullptr).size(), 0u);
  EXPECT_EQ(MakeConjunction({}), nullptr);
  EXPECT_EQ(MakeConjunction({a}), a);
}

TEST(ScalarExprTest, StructuralEquality) {
  ScalarExprPtr a =
      ScalarExpr::Compare(CompareOp::kEq, Col("A", "x"), Col("B", "y"));
  ScalarExprPtr b =
      ScalarExpr::Compare(CompareOp::kEq, Col("A", "x"), Col("B", "y"));
  ScalarExprPtr c =
      ScalarExpr::Compare(CompareOp::kEq, Col("B", "y"), Col("A", "x"));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));  // structural, not semantic
}

TEST(ScalarExprTest, ToStringRendering) {
  ScalarExprPtr e = ScalarExpr::And(
      {ScalarExpr::Compare(CompareOp::kEq, Col("A", "x"), Col("B", "y")),
       ScalarExpr::IsNull(Col("A", "z"))});
  EXPECT_EQ(e->ToString(), "(A.x = B.y AND A.z IS NULL)");
}

TEST(BoundScalarTest, ThreeValuedEvaluation) {
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"A", "x", ValueType::kInt64, 0});
  schema.AddColumn(BoundColumn{"A", "y", ValueType::kInt64, -1});

  // x = 1 OR y > 5
  ScalarExprPtr e = ScalarExpr::Or(
      {ScalarExpr::Compare(CompareOp::kEq, Col("A", "x"),
                           ScalarExpr::Literal(Value::Int64(1))),
       ScalarExpr::Compare(CompareOp::kGt, Col("A", "y"),
                           ScalarExpr::Literal(Value::Int64(5)))});
  BoundScalar compiled = BoundScalar::Compile(e, schema);

  EXPECT_TRUE(compiled.EvalBool(Row{Value::Int64(1), Value::Null()}));
  // false OR unknown = unknown -> not true.
  EXPECT_FALSE(compiled.EvalBool(Row{Value::Int64(2), Value::Null()}));
  EXPECT_TRUE(compiled.EvalBool(Row{Value::Int64(2), Value::Int64(6)}));

  // NOT(unknown) = unknown.
  BoundScalar negated = BoundScalar::Compile(ScalarExpr::Not(e), schema);
  EXPECT_FALSE(negated.EvalBool(Row{Value::Int64(2), Value::Null()}));
  Value v = negated.Eval(Row{Value::Int64(2), Value::Null()});
  EXPECT_TRUE(v.is_null());
}

TEST(BoundScalarTest, AndShortCircuitSemantics) {
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"A", "x", ValueType::kInt64, -1});
  ScalarExprPtr e = ScalarExpr::And(
      {ScalarExpr::Compare(CompareOp::kGt, Col("A", "x"),
                           ScalarExpr::Literal(Value::Int64(0))),
       ScalarExpr::Compare(CompareOp::kLt, Col("A", "x"),
                           ScalarExpr::Literal(Value::Int64(10)))});
  BoundScalar compiled = BoundScalar::Compile(e, schema);
  EXPECT_TRUE(compiled.EvalBool(Row{Value::Int64(5)}));
  EXPECT_FALSE(compiled.EvalBool(Row{Value::Int64(15)}));
  // unknown AND unknown = unknown.
  EXPECT_TRUE(compiled.Eval(Row{Value::Null()}).is_null());
  // false AND unknown = false.
  ScalarExprPtr f = ScalarExpr::And(
      {ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Literal(Value::Int64(0)),
                           ScalarExpr::Literal(Value::Int64(1))),
       ScalarExpr::Compare(CompareOp::kLt, Col("A", "x"),
                           ScalarExpr::Literal(Value::Int64(10)))});
  BoundScalar cf = BoundScalar::Compile(f, schema);
  Value v = cf.Eval(Row{Value::Null()});
  EXPECT_FALSE(v.is_null());
  EXPECT_EQ(v.int64(), 0);
}

TEST(RelExprTest, ToStringAndReferencedTables) {
  RelExprPtr e = RelExpr::Join(
      JoinKind::kFullOuter, RelExpr::Scan("A"),
      RelExpr::Select(RelExpr::Scan("B"),
                      ScalarExpr::Compare(CompareOp::kGt, Col("B", "x"),
                                          ScalarExpr::Literal(Value::Int64(0)))),
      ScalarExpr::ColumnsEqual({"A", "k"}, {"B", "k"}));
  EXPECT_EQ(e->ToString(), "(A fojn sel[B.x > 0](B))");
  EXPECT_EQ(e->ReferencedTables(), (std::set<std::string>{"A", "B"}));
  EXPECT_FALSE(e->ContainsDelta());
  EXPECT_TRUE(RelExpr::Join(JoinKind::kInner, RelExpr::DeltaScan("A"),
                            RelExpr::Scan("B"),
                            ScalarExpr::ColumnsEqual({"A", "k"}, {"B", "k"}))
                  ->ContainsDelta());
}

}  // namespace
}  // namespace ojv
