file(REMOVE_RECURSE
  "CMakeFiles/primary_delta_test.dir/ivm/primary_delta_test.cc.o"
  "CMakeFiles/primary_delta_test.dir/ivm/primary_delta_test.cc.o.d"
  "primary_delta_test"
  "primary_delta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primary_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
