#ifndef OJV_CATALOG_TABLE_H_
#define OJV_CATALOG_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"

namespace ojv {

/// A base table: schema + rows + unique-key hash index.
///
/// Every base table must declare a unique key over non-nullable columns
/// (paper §2 restriction). Rows live in stable slots; deletion tombstones
/// a slot and pushes it on a free list so row ids held by indexes stay
/// valid until reuse.
class Table {
 public:
  Table(std::string name, Schema schema, std::vector<std::string> key_columns);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  /// Positions of the unique-key columns within the schema.
  const std::vector<int>& key_positions() const { return key_positions_; }
  const std::vector<std::string>& key_columns() const { return key_columns_; }

  /// Number of live rows.
  int64_t size() const { return live_count_; }

  /// Monotonic modification counter; bumped by every successful insert
  /// or delete. Lets scan caches detect staleness cheaply.
  uint64_t version() const { return version_; }

  /// Inserts a row. Aborts on schema arity mismatch or NULL in a
  /// non-nullable column; returns false on duplicate key.
  bool Insert(Row row);

  /// Deletes the row with the given key values. Returns the deleted row
  /// through *deleted if non-null; returns false if no such key.
  bool DeleteByKey(const Row& key, Row* deleted);

  /// Returns a pointer to the row with the given key, or nullptr.
  const Row* FindByKey(const Row& key) const;

  /// Copies all live rows out (snapshot order is slot order).
  std::vector<Row> Snapshot() const;

  /// Visits all live rows.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (live_[i]) fn(slots_[i]);
    }
  }

 private:
  struct KeyRef {
    const Table* table;
    size_t slot;
  };

  size_t HashKeyOf(const Row& row) const;
  size_t HashKeyValues(const Row& key) const;
  bool KeyEquals(size_t slot, const Row& key) const;

  std::string name_;
  Schema schema_;
  std::vector<std::string> key_columns_;
  std::vector<int> key_positions_;

  std::vector<Row> slots_;
  std::vector<char> live_;
  std::vector<size_t> free_slots_;
  int64_t live_count_ = 0;
  uint64_t version_ = 0;

  // key hash -> slots (collision chain resolved by KeyEquals).
  std::unordered_multimap<size_t, size_t> key_index_;
};

}  // namespace ojv

#endif  // OJV_CATALOG_TABLE_H_
