// The Griffin–Kumar baseline must be *correct* (identical view states to
// ours and to recompute) — it differs only in cost.

#include "baseline/griffin_kumar.h"

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "ivm/maintainer.h"
#include "test_util.h"

namespace ojv {
namespace {

using testing_util::CreateRandomSchema;
using testing_util::CreateRstuSchema;
using testing_util::MakeV1;
using testing_util::PopulateRandomRstu;
using testing_util::RandomRstuRows;
using testing_util::RandomSpojView;
using testing_util::SampleKeys;

TEST(GriffinKumarTest, V1MatchesRecomputeOnMixedUpdates) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Rng rng(4242);
  PopulateRandomRstu(&catalog, &rng, 25, 5);
  ViewDef v1 = MakeV1(catalog);
  GriffinKumarMaintainer gk(&catalog, v1);
  gk.InitializeView();

  int64_t next_key = 700000;
  const char* tables[] = {"T", "S", "U", "R"};
  for (int round = 0; round < 8; ++round) {
    const char* name = tables[round % 4];
    Table* table = catalog.GetTable(name);
    if (round % 2 == 0) {
      std::vector<Row> inserted = ApplyBaseInsert(
          table, RandomRstuRows(name, &rng, 5, 5, &next_key));
      gk.OnInsert(name, inserted);
    } else {
      std::vector<Row> deleted =
          ApplyBaseDelete(table, SampleKeys(*table, &rng, 4));
      gk.OnDelete(name, deleted);
    }
    std::string diff;
    ASSERT_TRUE(ViewMatchesRecompute(catalog, v1, gk.view(), &diff))
        << "round " << round << " (" << name << "): " << diff;
  }
}

TEST(GriffinKumarTest, AgreesWithOurMaintainerOnRandomViews) {
  for (uint64_t seed = 201; seed <= 215; ++seed) {
    Rng rng(seed);
    Catalog catalog;
    std::vector<std::string> tables = CreateRandomSchema(&catalog, 4);
    int64_t next_key = 1;
    for (const std::string& name : tables) {
      Table* table = catalog.GetTable(name);
      for (Row& row : RandomRstuRows(name, &rng, 12, 4, &next_key)) {
        table->Insert(std::move(row));
      }
    }
    ViewDef view = RandomSpojView(catalog, tables, &rng);
    ViewMaintainer ours(&catalog, view, MaintenanceOptions());
    GriffinKumarMaintainer gk(&catalog, view);
    ours.InitializeView();
    gk.InitializeView();

    int64_t fresh = 900000;
    for (int op = 0; op < 5; ++op) {
      const std::string& name = tables[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(tables.size()) - 1))];
      Table* table = catalog.GetTable(name);
      if (rng.Chance(0.5) && table->size() > 3) {
        std::vector<Row> deleted =
            ApplyBaseDelete(table, SampleKeys(*table, &rng, 3));
        ours.OnDelete(name, deleted);
        gk.OnDelete(name, deleted);
      } else {
        std::vector<Row> inserted = ApplyBaseInsert(
            table, RandomRstuRows(name, &rng, 4, 4, &fresh));
        ours.OnInsert(name, inserted);
        gk.OnInsert(name, inserted);
      }
      std::string diff;
      ASSERT_TRUE(
          SameBag(ours.view().AsRelation(), gk.view().AsRelation(), &diff))
          << "seed " << seed << " op " << op << ": " << diff;
    }
  }
}

}  // namespace
}  // namespace ojv
