// The paper defines the outer joins in terms of minimum union (§2.1):
//
//   T1 lo T2 = (T1 ⋈ T2) ⊕ T1
//   T1 ro T2 = (T1 ⋈ T2) ⊕ T2
//   T1 fo T2 = (T1 ⋈ T2) ⊕ T1 ⊕ T2
//
// Our executor implements them directly (matched/unmatched tracking).
// These property tests check, on random data including NULL join keys,
// that the direct implementations coincide with the definitional forms,
// plus the algebraic laws the maintenance derivations rely on.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/evaluator.h"

namespace ojv {
namespace {

class AlgebraIdentityTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    catalog_.CreateTable(
        "L",
        Schema({ColumnDef{"lid", ValueType::kInt64, false},
                ColumnDef{"lk", ValueType::kInt64, true},
                ColumnDef{"lv", ValueType::kInt64, true}}),
        {"lid"});
    catalog_.CreateTable(
        "R",
        Schema({ColumnDef{"rid", ValueType::kInt64, false},
                ColumnDef{"rk", ValueType::kInt64, true},
                ColumnDef{"rv", ValueType::kInt64, true}}),
        {"rid"});
    auto fill = [&](const char* name) {
      Table* t = catalog_.GetTable(name);
      int rows = static_cast<int>(rng.Uniform(5, 30));
      for (int i = 0; i < rows; ++i) {
        Value key = rng.Chance(0.15) ? Value::Null()
                                     : Value::Int64(rng.Uniform(0, 6));
        t->Insert(Row{Value::Int64(i), key, Value::Int64(rng.Uniform(0, 99))});
      }
    };
    fill("L");
    fill("R");
    pred_ = ScalarExpr::ColumnsEqual({"L", "lk"}, {"R", "rk"});
  }

  Relation Eval(const RelExprPtr& e) {
    Evaluator evaluator(&catalog_);
    return evaluator.EvalToRelation(e);
  }

  RelExprPtr L() { return RelExpr::Scan("L"); }
  RelExprPtr R() { return RelExpr::Scan("R"); }
  RelExprPtr Join(JoinKind kind) {
    return RelExpr::Join(kind, L(), R(), pred_);
  }

  void ExpectSame(const RelExprPtr& a, const RelExprPtr& b,
                  const char* what) {
    std::string diff;
    EXPECT_TRUE(SameBag(Eval(a), Eval(b), &diff))
        << what << " (seed " << GetParam() << "): " << diff;
  }

  Catalog catalog_;
  ScalarExprPtr pred_;
};

TEST_P(AlgebraIdentityTest, LeftOuterJoinDefinition) {
  // T1 lo T2 = (T1 ⋈ T2) ⊕ T1.
  ExpectSame(Join(JoinKind::kLeftOuter),
             RelExpr::MinUnion(Join(JoinKind::kInner), L()),
             "lo = inner ⊕ T1");
}

TEST_P(AlgebraIdentityTest, RightOuterJoinDefinition) {
  ExpectSame(Join(JoinKind::kRightOuter),
             RelExpr::MinUnion(Join(JoinKind::kInner), R()),
             "ro = inner ⊕ T2");
}

TEST_P(AlgebraIdentityTest, FullOuterJoinDefinition) {
  ExpectSame(Join(JoinKind::kFullOuter),
             RelExpr::MinUnion(RelExpr::MinUnion(Join(JoinKind::kInner), L()),
                               R()),
             "fo = inner ⊕ T1 ⊕ T2");
}

TEST_P(AlgebraIdentityTest, FullOuterJoinIsCommutative) {
  ExpectSame(Join(JoinKind::kFullOuter),
             RelExpr::Join(JoinKind::kFullOuter, R(), L(), pred_),
             "fo commutes");
}

TEST_P(AlgebraIdentityTest, LoRoMirror) {
  ExpectSame(Join(JoinKind::kLeftOuter),
             RelExpr::Join(JoinKind::kRightOuter, R(), L(), pred_),
             "T1 lo T2 = T2 ro T1");
}

TEST_P(AlgebraIdentityTest, MinUnionIsCommutativeAndAssociative) {
  // On relations with the same schema: L-with-L-joined-rows patterns.
  RelExprPtr inner = Join(JoinKind::kInner);
  RelExprPtr lo = Join(JoinKind::kLeftOuter);
  RelExprPtr ro = Join(JoinKind::kRightOuter);
  ExpectSame(RelExpr::MinUnion(inner, lo), RelExpr::MinUnion(lo, inner),
             "⊕ commutes");
  ExpectSame(RelExpr::MinUnion(RelExpr::MinUnion(inner, lo), ro),
             RelExpr::MinUnion(inner, RelExpr::MinUnion(lo, ro)),
             "⊕ associates");
}

TEST_P(AlgebraIdentityTest, SubsumptionRemovalIsIdempotent) {
  RelExprPtr once = RelExpr::SubsumeRemove(
      RelExpr::OuterUnion(Join(JoinKind::kInner), L()));
  RelExprPtr twice = RelExpr::SubsumeRemove(once);
  ExpectSame(once, twice, "↓ idempotent");
}

TEST_P(AlgebraIdentityTest, SemijoinViaProjection) {
  // T1 ⋉ T2 = δ π_{T1}(T1 ⋈ T2).
  RelExprPtr semi = Join(JoinKind::kLeftSemi);
  RelExprPtr projected = RelExpr::Dedup(RelExpr::Project(
      Join(JoinKind::kInner),
      {{"L", "lid"}, {"L", "lk"}, {"L", "lv"}}));
  ExpectSame(semi, projected, "semijoin = dedup(project(inner))");
}

TEST_P(AlgebraIdentityTest, SemiAndAntiPartitionTheLeftInput) {
  // T1 = (T1 ⋉ T2) ⊎ (T1 ▷ T2).
  ExpectSame(L(),
             RelExpr::OuterUnion(Join(JoinKind::kLeftSemi),
                                 Join(JoinKind::kLeftAnti)),
             "semi ⊎ anti = T1");
}

TEST_P(AlgebraIdentityTest, LeftOuterViaAntijoinNullExtension) {
  // T1 lo T2 = (T1 ⋈ T2) ⊎ nullext(T1 ▷ T2); outer union against the
  // joined schema performs the null extension.
  ExpectSame(Join(JoinKind::kLeftOuter),
             RelExpr::OuterUnion(Join(JoinKind::kInner),
                                 Join(JoinKind::kLeftAnti)),
             "lo = inner ⊎ nullext(anti)");
}

TEST_P(AlgebraIdentityTest, SortMergeJoinMatchesHashJoin) {
  // Physical-plan diversity: both algorithms must produce identical
  // results for every join kind, including residual predicates.
  for (JoinKind kind : {JoinKind::kInner, JoinKind::kLeftOuter,
                        JoinKind::kRightOuter, JoinKind::kFullOuter}) {
    // With residual: key equality plus lv < rv.
    ScalarExprPtr with_residual = ScalarExpr::And(
        {pred_, ScalarExpr::Compare(CompareOp::kLt,
                                    ScalarExpr::Column("L", "lv"),
                                    ScalarExpr::Column("R", "rv"))});
    for (const ScalarExprPtr& p : {pred_, with_residual}) {
      RelExprPtr join = RelExpr::Join(kind, L(), R(), p);
      Evaluator hash(&catalog_);
      Evaluator merge(&catalog_);
      merge.set_join_algorithm(Evaluator::JoinAlgorithm::kSortMerge);
      std::string diff;
      EXPECT_TRUE(SameBag(hash.EvalToRelation(join),
                          merge.EvalToRelation(join), &diff))
          << JoinKindName(kind) << " (seed " << GetParam() << "): " << diff;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomData, AlgebraIdentityTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace ojv
