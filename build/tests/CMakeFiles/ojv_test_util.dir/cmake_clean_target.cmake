file(REMOVE_RECURSE
  "libojv_test_util.a"
)
