#ifndef OJV_NORMALFORM_JDNF_H_
#define OJV_NORMALFORM_JDNF_H_

#include <vector>

#include "algebra/rel_expr.h"
#include "catalog/catalog.h"
#include "normalform/term.h"

namespace ojv {

/// Options controlling normal-form construction.
struct JdnfOptions {
  /// Prune terms whose net contribution is provably empty because a
  /// foreign key guarantees every tuple is subsumed by a parent term
  /// (e.g. the {orders,lineitem} term of Example 1). Requires the FK
  /// child columns to be NOT NULL and the constraint not deferrable.
  bool exploit_foreign_keys = true;
};

/// Converts an SPOJ join tree (scans, selects, inner/left/right/full
/// outer joins; no projection) to join-disjunctive normal form
/// (Galindo-Legaria). Terms are returned children-before-parents is NOT
/// guaranteed; order is deterministic.
///
/// The construction is the bottom-up "multiplication" of the paper's
/// Example 2: each join combines one term from each side and keeps the
/// combination only when the join predicate's referenced tables are all
/// present (null-rejecting predicates discard the rest); outer joins
/// additionally preserve the terms of the non-reduced side(s).
std::vector<Term> ComputeJdnf(const RelExprPtr& tree, const Catalog& catalog,
                              const JdnfOptions& options = JdnfOptions());

/// Returns the index of the term with the given source set, or -1.
int FindTerm(const std::vector<Term>& terms,
             const std::set<std::string>& source);

}  // namespace ojv

#endif  // OJV_NORMALFORM_JDNF_H_
