#include "tpch/refresh.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace ojv {
namespace tpch {

RefreshStream::RefreshStream(const Catalog* catalog, const Dbgen* dbgen,
                             uint64_t seed)
    : catalog_(catalog), dbgen_(dbgen), rng_(seed) {
  next_part_key_ = dbgen->num_part() + 1;
  next_customer_key_ = dbgen->num_customer() + 1;
  next_order_ordinal_ = dbgen->num_orders() + 1;

  // Build order slots with the current max linenumber per order.
  const Table* orders = catalog_->GetTable("orders");
  const Table* lineitem = catalog_->GetTable("lineitem");
  std::map<int64_t, OrderSlot> slots;
  orders->ForEach([&](const Row& row) {
    OrderSlot slot;
    slot.orderkey = row[0].int64();
    slot.orderdate = row[4].int64();
    slot.next_line = 1;
    slots[slot.orderkey] = slot;
  });
  lineitem->ForEach([&](const Row& row) {
    auto it = slots.find(row[0].int64());
    if (it != slots.end()) {
      it->second.next_line =
          std::max(it->second.next_line, row[3].int64() + 1);
    }
  });
  order_slots_.reserve(slots.size());
  for (const auto& [key, slot] : slots) {
    slot_index_[key] = order_slots_.size();
    order_slots_.push_back(slot);
  }
}

std::vector<Row> RefreshStream::NewLineitemsFor(
    const std::vector<Row>& order_rows, int64_t per_order) {
  std::vector<Row> out;
  out.reserve(order_rows.size() * static_cast<size_t>(per_order));
  for (const Row& order : order_rows) {
    auto it = slot_index_.find(order[0].int64());
    OJV_CHECK(it != slot_index_.end(), "unknown order for refresh lineitems");
    OrderSlot& slot = order_slots_[it->second];
    for (int64_t i = 0; i < per_order; ++i) {
      out.push_back(dbgen_->MakeLineitemRow(slot.orderkey, slot.next_line,
                                            slot.orderdate, &rng_));
      ++slot.next_line;
    }
  }
  return out;
}

std::vector<Row> RefreshStream::NewLineitems(int64_t n) {
  OJV_CHECK(!order_slots_.empty(), "no orders to attach lineitems to");
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    OrderSlot& slot = order_slots_[static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(order_slots_.size()) - 1))];
    out.push_back(dbgen_->MakeLineitemRow(slot.orderkey, slot.next_line,
                                          slot.orderdate, &rng_));
    ++slot.next_line;
  }
  return out;
}

std::vector<Row> RefreshStream::PickLineitemDeleteKeys(int64_t n) {
  const Table* lineitem = catalog_->GetTable("lineitem");
  // Reservoir-sample n keys from the live rows.
  std::vector<Row> reservoir;
  reservoir.reserve(static_cast<size_t>(n));
  int64_t seen = 0;
  lineitem->ForEach([&](const Row& row) {
    Row key{row[0], row[3]};
    if (static_cast<int64_t>(reservoir.size()) < n) {
      reservoir.push_back(std::move(key));
    } else {
      int64_t j = rng_.Uniform(0, seen);
      if (j < n) reservoir[static_cast<size_t>(j)] = std::move(key);
    }
    ++seen;
  });
  return reservoir;
}

std::vector<Row> RefreshStream::NewOrders(int64_t n) {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(n));
  const Table* orders = catalog_->GetTable("orders");
  for (int64_t i = 0; i < n; ++i) {
    // Use a gap key: sparse keys occupy offsets 0..7 of each 32-block;
    // offsets 8..31 are free.
    int64_t block = next_order_ordinal_ % 100000;
    int64_t key = block * 32 + 8 + (next_order_ordinal_ / 100000) % 24 + 1;
    ++next_order_ordinal_;
    if (orders->FindByKey(Row{Value::Int64(key)}) != nullptr) {
      --i;
      continue;
    }
    Row row =
        dbgen_->MakeOrderRow(key, dbgen_->RandomOrderingCustomer(&rng_), &rng_);
    OrderSlot slot{key, row[4].int64(), 1};
    slot_index_[key] = order_slots_.size();
    order_slots_.push_back(slot);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<Row> RefreshStream::NewParts(int64_t n) {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(dbgen_->MakePartRow(next_part_key_++, &rng_));
  }
  return out;
}

std::vector<Row> RefreshStream::NewCustomers(int64_t n) {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(dbgen_->MakeCustomerRow(next_customer_key_++, &rng_));
  }
  return out;
}

std::vector<Row> RefreshStream::PickChildlessOrderDeleteKeys(int64_t n) {
  const Table* orders = catalog_->GetTable("orders");
  const Table* lineitem = catalog_->GetTable("lineitem");
  std::set<int64_t> with_children;
  lineitem->ForEach(
      [&](const Row& row) { with_children.insert(row[0].int64()); });
  std::vector<Row> out;
  orders->ForEach([&](const Row& row) {
    if (static_cast<int64_t>(out.size()) >= n) return;
    if (with_children.count(row[0].int64()) == 0) {
      out.push_back(Row{row[0]});
    }
  });
  return out;
}

}  // namespace tpch
}  // namespace ojv
