// Quickstart: the paper's Example 1 end to end.
//
// Builds a small TPC-H database, materializes the outer-join view
//
//   create view oj_view as
//   select p_partkey, p_name, p_retailprice, o_orderkey, o_custkey,
//          l_orderkey, l_linenumber, l_quantity, l_extendedprice
//   from part full outer join
//        (orders left outer join lineitem on l_orderkey = o_orderkey)
//        on p_partkey = l_partkey
//
// and walks through the maintenance scenarios of the paper's
// introduction: inserting parts and orders (trivial thanks to foreign
// keys) and inserting lineitems (primary delta + orphan clean-up).

#include <cstdio>

#include "baseline/recompute.h"
#include "ivm/maintainer.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

using namespace ojv;

int main() {
  // 1. A small TPC-H database (deterministic dbgen).
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions options;
  options.scale_factor = 0.003;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);
  std::printf("TPC-H SF=%.3f: %lld parts, %lld orders, %lld lineitems\n",
              options.scale_factor,
              static_cast<long long>(catalog.GetTable("part")->size()),
              static_cast<long long>(catalog.GetTable("orders")->size()),
              static_cast<long long>(catalog.GetTable("lineitem")->size()));

  // 2. Define and materialize the view.
  ViewDef oj_view = tpch::MakeOjView(catalog);
  ViewMaintainer maintainer(&catalog, oj_view, MaintenanceOptions());
  maintainer.InitializeView();
  std::printf("\nview tree: %s\n", oj_view.tree()->ToString().c_str());
  std::printf("materialized rows: %lld\n",
              static_cast<long long>(maintainer.view().size()));

  // The normal form: {part,orders,lineitem} ⊕ {orders} ⊕ {part}. The
  // {orders,lineitem} term is pruned because the FK lineitem→part
  // guarantees every such tuple is subsumed.
  std::printf("\nnormal-form terms:\n");
  for (const Term& term : maintainer.terms()) {
    std::printf("  %s\n", term.Label().c_str());
  }

  tpch::RefreshStream refresh(&catalog, &dbgen, 42);

  // 3. Inserting parts: "the view can be brought up to date simply by
  // inserting the new tuples, appropriately extended with nulls".
  std::vector<Row> new_parts =
      ApplyBaseInsert(catalog.GetTable("part"), refresh.NewParts(5));
  MaintenanceStats stats = maintainer.OnInsert("part", new_parts);
  std::printf("\ninsert 5 parts:    ΔV^D expr = %s\n",
              maintainer.delta_expr("part")->ToString().c_str());
  std::printf("                   fast path=%s, rows inserted=%lld, "
              "orphan fix-ups=%lld\n",
              stats.fk_fast_path ? "yes" : "no",
              static_cast<long long>(stats.primary_rows),
              static_cast<long long>(stats.secondary_rows));

  // 4. Inserting orders: same story.
  std::vector<Row> new_orders =
      ApplyBaseInsert(catalog.GetTable("orders"), refresh.NewOrders(5));
  stats = maintainer.OnInsert("orders", new_orders);
  std::printf("insert 5 orders:   fast path=%s, rows inserted=%lld\n",
              stats.fk_fast_path ? "yes" : "no",
              static_cast<long long>(stats.primary_rows));

  // 5. Inserting lineitems: the interesting case. New {P,O,L} tuples go
  // in (primary delta), and part/orders orphans that cease to be orphans
  // come out (secondary delta).
  std::vector<Row> new_lineitems =
      ApplyBaseInsert(catalog.GetTable("lineitem"), refresh.NewLineitems(50));
  stats = maintainer.OnInsert("lineitem", new_lineitems);
  std::printf("insert 50 lineitems:\n");
  std::printf("  ΔV^D expr  = %s\n",
              maintainer.delta_expr("lineitem")->ToString().c_str());
  std::printf("  primary    = %lld rows inserted\n",
              static_cast<long long>(stats.primary_rows));
  std::printf("  secondary  = %lld orphaned part/orders rows deleted\n",
              static_cast<long long>(stats.secondary_rows));

  // 6. The double-orphan scenario (§8: the case that breaks Gupta &
  // Mumick's algorithm): a brand-new part and a brand-new order are both
  // orphans in the view; the *first* lineitem connecting them must
  // remove BOTH orphan rows while inserting one {P,O,L} row.
  std::vector<Row> orphan_part =
      ApplyBaseInsert(catalog.GetTable("part"), refresh.NewParts(1));
  maintainer.OnInsert("part", orphan_part);
  std::vector<Row> orphan_order =
      ApplyBaseInsert(catalog.GetTable("orders"), refresh.NewOrders(1));
  maintainer.OnInsert("orders", orphan_order);

  Row link = refresh.NewLineitems(1)[0];
  link[0] = orphan_order[0][0];  // l_orderkey = the new order
  link[1] = orphan_part[0][0];   // l_partkey  = the new part
  link[3] = Value::Int64(1);     // l_linenumber
  std::vector<Row> link_inserted =
      ApplyBaseInsert(catalog.GetTable("lineitem"), {link});
  stats = maintainer.OnInsert("lineitem", link_inserted);
  std::printf(
      "\ndouble-orphan link: 1 lineitem inserted -> %lld view row added, "
      "%lld orphans removed (expected 2: the part and the order)\n",
      static_cast<long long>(stats.primary_rows),
      static_cast<long long>(stats.secondary_rows));

  // 7. Deleting lineitems reverses the roles: primary rows leave the
  // view and new orphans are re-inserted.
  std::vector<Row> keys;
  for (size_t i = 0; i < new_lineitems.size(); ++i) {
    keys.push_back(Row{new_lineitems[i][0], new_lineitems[i][3]});
  }
  std::vector<Row> deleted =
      ApplyBaseDelete(catalog.GetTable("lineitem"), keys);
  stats = maintainer.OnDelete("lineitem", deleted);
  std::printf("delete them again: primary=%lld removed, %lld orphans "
              "restored\n",
              static_cast<long long>(stats.primary_rows),
              static_cast<long long>(stats.secondary_rows));

  // 8. The incremental view always equals a from-scratch recomputation.
  std::string diff;
  bool ok = ViewMatchesRecompute(catalog, oj_view, maintainer.view(), &diff);
  std::printf("\nview == recompute from scratch: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
