#include "common/date.h"

#include <gtest/gtest.h>

namespace ojv {
namespace {

TEST(DateTest, EpochIsZero) { EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0); }

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
}

TEST(DateTest, RoundTripAcrossTpchRange) {
  for (int64_t d = DaysFromCivil(1992, 1, 1); d <= DaysFromCivil(1998, 12, 31);
       d += 13) {
    int y, m, day;
    CivilFromDays(d, &y, &m, &day);
    EXPECT_EQ(DaysFromCivil(y, m, day), d);
  }
}

TEST(DateTest, LeapYears) {
  EXPECT_EQ(DaysFromCivil(1996, 3, 1) - DaysFromCivil(1996, 2, 28), 2);
  EXPECT_EQ(DaysFromCivil(1900, 3, 1) - DaysFromCivil(1900, 2, 28), 1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1) - DaysFromCivil(2000, 2, 28), 2);
}

TEST(DateTest, ParseAndFormat) {
  EXPECT_EQ(ParseDate("1994-06-01"), DaysFromCivil(1994, 6, 1));
  EXPECT_EQ(FormatDate(ParseDate("1994-12-31")), "1994-12-31");
  EXPECT_EQ(FormatDate(0), "1970-01-01");
}

TEST(DateTest, OrderingMatchesCalendar) {
  EXPECT_LT(ParseDate("1994-06-01"), ParseDate("1994-12-31"));
  EXPECT_LT(ParseDate("1993-12-31"), ParseDate("1994-01-01"));
}

}  // namespace
}  // namespace ojv
