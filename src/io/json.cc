#include "io/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ojv {
namespace io {

namespace {

/// Recursive-descent JSON parser over a string view with offset-carrying
/// errors. Depth-limited so hostile input cannot blow the stack.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      std::ostringstream s;
      s << message << " at offset " << pos_;
      *error_ = s.str();
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!Literal("null", 4)) return false;
        *out = JsonValue::MakeNull();
        return true;
      case 't':
        if (!Literal("true", 4)) return false;
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!Literal("false", 5)) return false;
        *out = JsonValue::MakeBool(false);
        return true;
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Fail("malformed number");
    }
    *out = JsonValue::MakeNumber(value);
    return true;
  }

  bool ParseString(JsonValue* out) {
    std::string s;
    if (!ParseRawString(&s)) return false;
    *out = JsonValue::MakeString(std::move(s));
    return true;
  }

  bool ParseRawString(std::string* out) {
    ++pos_;  // opening quote
    std::string s;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        *out = std::move(s);
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_];
        switch (esc) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("malformed \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by this repo's writers; pass them through raw).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      s += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      SkipWs();
      if (!ParseValue(&item, depth + 1)) return false;
      items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(members));
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseRawString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      members[key] = std::move(value);
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it != object_.end() ? &it->second : nullptr;
}

const JsonValue* JsonValue::FindPath(
    const std::vector<std::string>& keys) const {
  const JsonValue* v = this;
  for (const std::string& key : keys) {
    v = v->Find(key);
    if (v == nullptr) return nullptr;
  }
  return v;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.Parse(out);
}

bool ParseJsonFile(const std::string& path, JsonValue* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJson(buffer.str(), out, error);
}

}  // namespace io
}  // namespace ojv
