#ifndef OJV_IO_STATEMENT_LOG_H_
#define OJV_IO_STATEMENT_LOG_H_

#include <fstream>
#include <string>
#include <vector>

#include "ivm/database.h"

namespace ojv {
namespace io {

/// Append-only statement log for a Database — the durability half of
/// the warm-restart story: dump the catalog once, log every statement,
/// and replay the log after a restart to reach the same state (with all
/// views maintained incrementally along the way).
///
/// Format: one header line per statement
///   #stmt <INSERT|DELETE|UPDATE> <table> <row-count>
/// followed by the rows in .tbl format (for UPDATE: the key rows, then a
/// second "#rows" header and the new rows).
class StatementLog {
 public:
  /// Opens (appends to) the log at `path`. Check ok() before use.
  explicit StatementLog(const std::string& path);

  bool ok() const { return out_.is_open() && out_.good(); }

  /// Records a statement. Rows are full rows for INSERT, key rows for
  /// DELETE, and (keys, new_rows) for UPDATE. The schema is needed to
  /// render typed values.
  void LogInsert(const Table& table, const std::vector<Row>& rows);
  void LogDelete(const Table& table, const std::vector<Row>& keys);
  void LogUpdate(const Table& table, const std::vector<Row>& keys,
                 const std::vector<Row>& new_rows);

  /// Flushes buffered statements to disk.
  void Flush() { out_.flush(); }

 private:
  void WriteRows(const std::vector<Row>& rows,
                 const std::vector<ValueType>& types);

  std::ofstream out_;
};

/// Replays a statement log against `db` (whose catalog must already hold
/// the schema and the pre-log data). Returns false and fills *error on
/// parse failures or rejected statements.
bool ReplayStatementLog(const std::string& path, Database* db,
                        std::string* error);

}  // namespace io
}  // namespace ojv

#endif  // OJV_IO_STATEMENT_LOG_H_
