// End-to-end reproduction of the paper's §7 experiment setup in
// miniature: view V3 over generated TPC-H data, maintained through
// lineitem / customer / part / orders updates, validated against
// recomputation, plus the Example 1 scenario on oj_view.

#include <gtest/gtest.h>

#include <map>

#include "baseline/griffin_kumar.h"
#include "baseline/recompute.h"
#include "ivm/maintainer.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

class V3Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::CreateSchema(&catalog_);
    tpch::DbgenOptions options;
    options.scale_factor = 0.002;
    dbgen_ = std::make_unique<tpch::Dbgen>(options);
    dbgen_->Populate(&catalog_);
    refresh_ = std::make_unique<tpch::RefreshStream>(&catalog_, dbgen_.get(),
                                                     123);
  }

  // Rows per term (by null pattern), as in Table 1.
  std::map<std::string, int64_t> TermCardinalities(
      const MaterializedView& view) {
    std::map<std::string, int64_t> counts;
    const BoundSchema& schema = view.schema();
    view.ForEach([&](int64_t, const Row& row) {
      std::string label;
      for (const std::string table :
           {"customer", "orders", "lineitem", "part"}) {
        const std::vector<int>& keys = schema.KeyPositions(table);
        if (!row[static_cast<size_t>(keys[0])].is_null()) {
          label += table[0];
        }
      }
      ++counts[label];
    });
    return counts;
  }

  Catalog catalog_;
  std::unique_ptr<tpch::Dbgen> dbgen_;
  std::unique_ptr<tpch::RefreshStream> refresh_;
};

TEST_F(V3Fixture, InitialViewHasTheFourTermsOfTable1) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  ViewMaintainer maintainer(&catalog_, v3, MaintenanceOptions());
  maintainer.InitializeView();
  std::map<std::string, int64_t> counts = TermCardinalities(maintainer.view());
  // Exactly the four patterns COLP, COL, C, P may appear, and all are
  // populated on generated data.
  for (const auto& [label, count] : counts) {
    EXPECT_TRUE(label == "colp" || label == "col" || label == "c" ||
                label == "p")
        << "unexpected term " << label;
  }
  EXPECT_GT(counts["colp"], 0);
  EXPECT_GT(counts["col"], 0);  // lineitems whose part fails the filter
  EXPECT_GT(counts["c"], 0);    // customers without in-window orders
  EXPECT_GT(counts["p"], 0);    // cheap parts never ordered in-window
}

TEST_F(V3Fixture, LineitemInsertAndDeleteAgainstRecompute) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  ViewMaintainer maintainer(&catalog_, v3, MaintenanceOptions());
  maintainer.InitializeView();
  Table* lineitem = catalog_.GetTable("lineitem");

  std::vector<Row> inserted =
      ApplyBaseInsert(lineitem, refresh_->NewLineitems(300));
  MaintenanceStats stats = maintainer.OnInsert("lineitem", inserted);
  EXPECT_EQ(stats.delta_rows, 300);
  EXPECT_EQ(stats.direct_terms, 2);    // COLP and COL
  EXPECT_EQ(stats.indirect_terms, 2);  // C and P
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, v3, maintainer.view(), &diff))
      << diff;

  std::vector<Row> deleted =
      ApplyBaseDelete(lineitem, refresh_->PickLineitemDeleteKeys(250));
  maintainer.OnDelete("lineitem", deleted);
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, v3, maintainer.view(), &diff))
      << diff;
}

TEST_F(V3Fixture, LineitemUpdatesWithBaseTableSecondaryStrategy) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  MaintenanceOptions options;
  options.secondary_strategy = SecondaryStrategy::kFromBaseTables;
  ViewMaintainer maintainer(&catalog_, v3, options);
  maintainer.InitializeView();
  Table* lineitem = catalog_.GetTable("lineitem");

  std::vector<Row> inserted =
      ApplyBaseInsert(lineitem, refresh_->NewLineitems(200));
  maintainer.OnInsert("lineitem", inserted);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, v3, maintainer.view(), &diff))
      << diff;

  std::vector<Row> deleted =
      ApplyBaseDelete(lineitem, refresh_->PickLineitemDeleteKeys(150));
  maintainer.OnDelete("lineitem", deleted);
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, v3, maintainer.view(), &diff))
      << diff;
}

TEST_F(V3Fixture, CustomerInsertIsDeltaOnlyFastPath) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  ViewMaintainer maintainer(&catalog_, v3, MaintenanceOptions());
  maintainer.InitializeView();
  int64_t before = maintainer.view().size();

  std::vector<Row> inserted = ApplyBaseInsert(catalog_.GetTable("customer"),
                                              refresh_->NewCustomers(40));
  MaintenanceStats stats = maintainer.OnInsert("customer", inserted);
  // FK orders→customer: only the {customer} term is affected, and the
  // delta expression collapses to Δcustomer itself.
  EXPECT_TRUE(stats.fk_fast_path);
  EXPECT_EQ(stats.primary_rows, 40);
  EXPECT_EQ(stats.secondary_rows, 0);
  EXPECT_EQ(maintainer.view().size(), before + 40);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, v3, maintainer.view(), &diff))
      << diff;
}

TEST_F(V3Fixture, PartInsertIsDeltaOnlyFastPath) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  ViewMaintainer maintainer(&catalog_, v3, MaintenanceOptions());
  maintainer.InitializeView();

  std::vector<Row> new_parts = refresh_->NewParts(60);
  std::vector<Row> inserted =
      ApplyBaseInsert(catalog_.GetTable("part"), new_parts);
  MaintenanceStats stats = maintainer.OnInsert("part", inserted);
  // Only parts under the p_retailprice < 2000 filter enter the view; the
  // delta expression is sel[p_retailprice<2000](Δpart).
  EXPECT_GT(stats.primary_rows, 0);
  EXPECT_LE(stats.primary_rows, 60);
  EXPECT_EQ(stats.secondary_rows, 0);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, v3, maintainer.view(), &diff))
      << diff;
}

TEST_F(V3Fixture, OrderInsertDoesNotAffectTheView) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  ViewMaintainer maintainer(&catalog_, v3, MaintenanceOptions());
  maintainer.InitializeView();
  int64_t before = maintainer.view().size();

  std::vector<Row> inserted =
      ApplyBaseInsert(catalog_.GetTable("orders"), refresh_->NewOrders(30));
  MaintenanceStats stats = maintainer.OnInsert("orders", inserted);
  EXPECT_TRUE(stats.fk_fast_path);
  EXPECT_EQ(stats.primary_rows, 0);
  EXPECT_EQ(maintainer.view().size(), before);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, v3, maintainer.view(), &diff))
      << diff;
}

TEST_F(V3Fixture, CoreViewIsMaintainedBySameMachinery) {
  ViewDef core = tpch::MakeV3(catalog_).CoreView(catalog_);
  ViewMaintainer maintainer(&catalog_, core, MaintenanceOptions());
  maintainer.InitializeView();
  Table* lineitem = catalog_.GetTable("lineitem");

  std::vector<Row> inserted =
      ApplyBaseInsert(lineitem, refresh_->NewLineitems(150));
  MaintenanceStats stats = maintainer.OnInsert("lineitem", inserted);
  // Inner-join view: exactly one affected term, no secondary delta.
  EXPECT_EQ(stats.indirect_terms, 0);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, core, maintainer.view(), &diff))
      << diff;

  std::vector<Row> deleted =
      ApplyBaseDelete(lineitem, refresh_->PickLineitemDeleteKeys(100));
  maintainer.OnDelete("lineitem", deleted);
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, core, maintainer.view(), &diff))
      << diff;
}

TEST_F(V3Fixture, GriffinKumarProducesTheSameV3State) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  ViewMaintainer ours(&catalog_, v3, MaintenanceOptions());
  GriffinKumarMaintainer gk(&catalog_, v3);
  ours.InitializeView();
  gk.InitializeView();
  Table* lineitem = catalog_.GetTable("lineitem");

  std::vector<Row> inserted =
      ApplyBaseInsert(lineitem, refresh_->NewLineitems(120));
  ours.OnInsert("lineitem", inserted);
  gk.OnInsert("lineitem", inserted);
  std::string diff;
  ASSERT_TRUE(SameBag(ours.view().AsRelation(), gk.view().AsRelation(), &diff))
      << diff;

  std::vector<Row> deleted =
      ApplyBaseDelete(lineitem, refresh_->PickLineitemDeleteKeys(100));
  ours.OnDelete("lineitem", deleted);
  gk.OnDelete("lineitem", deleted);
  ASSERT_TRUE(SameBag(ours.view().AsRelation(), gk.view().AsRelation(), &diff))
      << diff;
}

// Example 1's full scenario on oj_view: insert lineitems and verify that
// orphaned part/orders rows disappear from the view.
TEST_F(V3Fixture, OjViewExample1Scenario) {
  ViewDef oj_view = tpch::MakeOjView(catalog_);
  ViewMaintainer maintainer(&catalog_, oj_view, MaintenanceOptions());
  maintainer.InitializeView();
  Table* lineitem = catalog_.GetTable("lineitem");

  std::vector<Row> inserted =
      ApplyBaseInsert(lineitem, refresh_->NewLineitems(200));
  MaintenanceStats stats = maintainer.OnInsert("lineitem", inserted);
  EXPECT_EQ(stats.direct_terms, 1);    // {part,orders,lineitem} only
  EXPECT_EQ(stats.indirect_terms, 2);  // {orders} and {part}
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, oj_view, maintainer.view(),
                                   &diff))
      << diff;

  std::vector<Row> deleted =
      ApplyBaseDelete(lineitem, refresh_->PickLineitemDeleteKeys(180));
  maintainer.OnDelete("lineitem", deleted);
  ASSERT_TRUE(ViewMatchesRecompute(catalog_, oj_view, maintainer.view(),
                                   &diff))
      << diff;
}

}  // namespace
}  // namespace ojv
