// A tour of the paper's figures, printed as text:
//  - Example 2's normal form of view V1 and Figure 1(a)/(b) graphs
//  - Figure 2/3: the ΔV^D transformation and its left-deep form
//  - Example 10: foreign-key SimplifyTree
//  - Figure 4: V2's original and reduced maintenance graphs

#include <cstdio>

#include "ivm/explain.h"
#include "ivm/left_deep.h"
#include "ivm/maintainer.h"
#include "ivm/primary_delta.h"
#include "ivm/simplify_tree.h"
#include "normalform/jdnf.h"
#include "normalform/maintenance_graph.h"
#include "normalform/subsumption_graph.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

using namespace ojv;

namespace {

// The abstract R,S,T,U tables of the running example.
void CreateRstu(Catalog* catalog) {
  for (const char* name : {"R", "S", "T", "U"}) {
    std::string p(1, static_cast<char>(std::tolower(name[0])));
    catalog->CreateTable(
        name,
        Schema({ColumnDef{p + "_id", ValueType::kInt64, false},
                ColumnDef{p + "_a", ValueType::kInt64, true},
                ColumnDef{p + "_b", ValueType::kInt64, true}}),
        {p + "_id"});
  }
}

ViewDef MakeV1(const Catalog& catalog) {
  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  RelExprPtr rs = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("R"),
                                RelExpr::Scan("S"), eq("R", "r_a", "S", "s_a"));
  RelExprPtr tu = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("T"),
                                RelExpr::Scan("U"), eq("T", "t_a", "U", "u_a"));
  RelExprPtr tree =
      RelExpr::Join(JoinKind::kLeftOuter, rs, tu, eq("R", "r_b", "T", "t_b"));
  std::vector<ColumnRef> output;
  for (const char* name : {"R", "S", "T", "U"}) {
    std::string p(1, static_cast<char>(std::tolower(name[0])));
    output.push_back({name, p + "_id"});
    output.push_back({name, p + "_a"});
    output.push_back({name, p + "_b"});
  }
  return ViewDef("v1", tree, output, catalog);
}

}  // namespace

int main() {
  Catalog rstu;
  CreateRstu(&rstu);
  ViewDef v1 = MakeV1(rstu);

  std::printf("V1 = %s\n", v1.tree()->ToString().c_str());

  // --- Example 2: join-disjunctive normal form ---
  std::vector<Term> terms = ComputeJdnf(v1.tree(), rstu);
  std::printf("\nnormal form (Example 2): %zu terms\n", terms.size());
  for (const Term& term : terms) {
    std::printf("  %-12s with %zu predicate(s)\n", term.Label().c_str(),
                term.predicates.size());
  }

  // --- Figure 1(a): subsumption graph ---
  SubsumptionGraph sgraph(terms);
  std::printf("\nsubsumption graph (Figure 1a):\n%s",
              sgraph.ToString(terms).c_str());

  // --- Figure 1(b): maintenance graph for updates of T ---
  MaintenanceGraph mgraph(terms, sgraph, "T", rstu);
  std::printf("\nmaintenance graph for T (Figure 1b): %s\n",
              mgraph.ToString(terms).c_str());

  // --- Figure 2: the ΔV^D transformation ---
  RelExprPtr delta = BuildPrimaryDeltaExpr(v1, "T");
  std::printf("\nFigure 2 (commute + weaken + substitute):\n");
  std::printf("  V1            = %s\n", v1.tree()->ToString().c_str());
  std::printf("  dV1_D (bushy) = %s\n", delta->ToString().c_str());

  // --- Figure 3: left-deep conversion ---
  std::printf("  dV1_D (left-deep, eq. 6) = %s\n",
              ToLeftDeep(delta)->ToString().c_str());

  // --- Example 10: FK SimplifyTree (add U.u_b -> T.t_id and join on it)
  Catalog rstu_fk;
  CreateRstu(&rstu_fk);
  rstu_fk.AddForeignKey({"U", {"u_b"}, "T", {"t_id"}});
  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  RelExprPtr rs =
      RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("R"),
                    RelExpr::Scan("S"), eq("R", "r_a", "S", "s_a"));
  RelExprPtr tu =
      RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("T"),
                    RelExpr::Scan("U"), eq("T", "t_id", "U", "u_b"));
  RelExprPtr tree =
      RelExpr::Join(JoinKind::kLeftOuter, rs, tu, eq("R", "r_b", "T", "t_b"));
  std::vector<ColumnRef> output;
  for (const char* name : {"R", "S", "T", "U"}) {
    std::string p(1, static_cast<char>(std::tolower(name[0])));
    output.push_back({name, p + "_id"});
    output.push_back({name, p + "_a"});
    output.push_back({name, p + "_b"});
  }
  ViewDef v1fk("v1_fk", tree, output, rstu_fk);
  RelExprPtr delta_fk = BuildPrimaryDeltaExpr(v1fk, "T");
  SimplifyResult simplified = SimplifyDeltaTree(
      delta_fk, FkChildrenJoinedOnKey(v1fk, "T", rstu_fk));
  std::printf("\nExample 10 (FK U.u_b -> T.t_id):\n");
  std::printf("  before SimplifyTree: %s\n", delta_fk->ToString().c_str());
  std::printf("  after  SimplifyTree: %s (%d join eliminated)\n",
              simplified.expr->ToString().c_str(),
              simplified.joins_eliminated);

  // --- Figure 4: V2 maintenance graphs ---
  Catalog tpch_catalog;
  tpch::CreateSchema(&tpch_catalog);
  ViewDef v2 = tpch::MakeV2(tpch_catalog);
  std::vector<Term> v2_terms = ComputeJdnf(v2.tree(), tpch_catalog);
  SubsumptionGraph v2_sgraph(v2_terms);
  MaintenanceGraphOptions no_fk;
  no_fk.exploit_foreign_keys = false;
  MaintenanceGraph original(v2_terms, v2_sgraph, "orders", tpch_catalog,
                            no_fk);
  MaintenanceGraph reduced(v2_terms, v2_sgraph, "orders", tpch_catalog);
  std::printf("\nV2 maintenance graphs for updates of orders (Figure 4):\n");
  std::printf("  original: %s\n", original.ToString(v2_terms).c_str());
  std::printf("  reduced:  %s\n", reduced.ToString(v2_terms).c_str());

  // --- EXPLAIN: the full maintenance report for Example 1's view ---
  ViewDef oj_view = tpch::MakeOjView(tpch_catalog);
  ViewMaintainer maintainer(&tpch_catalog, oj_view, MaintenanceOptions());
  std::printf("\n================ EXPLAIN oj_view ================\n%s",
              ExplainMaintenance(maintainer).c_str());
  return 0;
}
