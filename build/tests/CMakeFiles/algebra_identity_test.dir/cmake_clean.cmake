file(REMOVE_RECURSE
  "CMakeFiles/algebra_identity_test.dir/exec/algebra_identity_test.cc.o"
  "CMakeFiles/algebra_identity_test.dir/exec/algebra_identity_test.cc.o.d"
  "algebra_identity_test"
  "algebra_identity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
