file(REMOVE_RECURSE
  "CMakeFiles/bench_fk_fastpath.dir/bench_fk_fastpath.cc.o"
  "CMakeFiles/bench_fk_fastpath.dir/bench_fk_fastpath.cc.o.d"
  "bench_fk_fastpath"
  "bench_fk_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fk_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
