#ifndef OJV_IVM_SIMPLIFY_TREE_H_
#define OJV_IVM_SIMPLIFY_TREE_H_

#include <set>
#include <string>

#include "algebra/rel_expr.h"
#include "catalog/catalog.h"
#include "ivm/view_def.h"

namespace ojv {

/// Result of the foreign-key simplification of a ΔV^D tree (paper §6.1).
struct SimplifyResult {
  /// Simplified expression; null when the whole delta is provably empty.
  RelExprPtr expr;
  /// True when the delta is empty and no maintenance work is needed.
  bool empty = false;
  /// Number of join operators eliminated.
  int joins_eliminated = 0;
};

/// Tables S whose foreign key to `updated_table` is joined on in the
/// view: no tuple of ΔT can join with any tuple of such a table (a
/// matching child row would violate the constraint before an insert /
/// after a delete). Only constraints usable for maintenance (no cascade,
/// not deferrable) qualify, and the view must contain the full FK
/// equijoin among its conjuncts.
std::set<std::string> FkChildrenJoinedOnKey(const ViewDef& view,
                                            const std::string& updated_table,
                                            const Catalog& catalog);

/// The paper's SimplifyTree procedure, applied to the (bushy) ΔV^D tree
/// before left-deep conversion. Walks the main path from the delta leaf
/// to the root with the growing set S of provably-non-joining tables:
///  - a select or inner join whose predicate references a table in S can
///    never be satisfied → the whole delta is empty;
///  - a left outer join whose predicate references a table in S never
///    finds a match → drop the join, pass the left input through, and add
///    all tables of the discarded right operand to S.
SimplifyResult SimplifyDeltaTree(const RelExprPtr& delta_expr,
                                 std::set<std::string> initial_children);

}  // namespace ojv

#endif  // OJV_IVM_SIMPLIFY_TREE_H_
