file(REMOVE_RECURSE
  "CMakeFiles/ojv_common.dir/date.cc.o"
  "CMakeFiles/ojv_common.dir/date.cc.o.d"
  "CMakeFiles/ojv_common.dir/rng.cc.o"
  "CMakeFiles/ojv_common.dir/rng.cc.o.d"
  "CMakeFiles/ojv_common.dir/value.cc.o"
  "CMakeFiles/ojv_common.dir/value.cc.o.d"
  "libojv_common.a"
  "libojv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
