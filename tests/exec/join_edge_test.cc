// Executor edge cases: composite equality keys, mixed equi + residual
// join predicates (V3's ON l_partkey = p_partkey AND p_retailprice <
// 2000 shape), empty inputs, single-sided inputs, and the symmetric
// (build-side-swapped) inner hash join.

#include <gtest/gtest.h>

#include "exec/evaluator.h"

namespace ojv {
namespace {

class JoinEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.CreateTable(
        "A",
        Schema({ColumnDef{"a_id", ValueType::kInt64, false},
                ColumnDef{"a_x", ValueType::kInt64, true},
                ColumnDef{"a_y", ValueType::kInt64, true}}),
        {"a_id"});
    catalog_.CreateTable(
        "B",
        Schema({ColumnDef{"b_id", ValueType::kInt64, false},
                ColumnDef{"b_x", ValueType::kInt64, true},
                ColumnDef{"b_y", ValueType::kInt64, true},
                ColumnDef{"b_v", ValueType::kInt64, true}}),
        {"b_id"});
  }

  void AddA(int64_t id, int64_t x, int64_t y) {
    catalog_.GetTable("A")->Insert(
        Row{Value::Int64(id), Value::Int64(x), Value::Int64(y)});
  }
  void AddB(int64_t id, int64_t x, int64_t y, int64_t v) {
    catalog_.GetTable("B")->Insert(Row{Value::Int64(id), Value::Int64(x),
                                       Value::Int64(y), Value::Int64(v)});
  }

  Relation Eval(const RelExprPtr& e) {
    Evaluator evaluator(&catalog_);
    return evaluator.EvalToRelation(e);
  }

  Catalog catalog_;
};

TEST_F(JoinEdgeTest, CompositeEqualityKeys) {
  AddA(1, 5, 7);
  AddA(2, 5, 8);
  AddB(10, 5, 7, 0);
  AddB(11, 5, 8, 0);
  AddB(12, 5, 9, 0);
  ScalarExprPtr pred = ScalarExpr::And(
      {ScalarExpr::ColumnsEqual({"A", "a_x"}, {"B", "b_x"}),
       ScalarExpr::ColumnsEqual({"A", "a_y"}, {"B", "b_y"})});
  Relation out = Eval(RelExpr::Join(JoinKind::kInner, RelExpr::Scan("A"),
                                    RelExpr::Scan("B"), pred));
  EXPECT_EQ(out.size(), 2);  // (1,10) and (2,11); b_y=9 unmatched
}

TEST_F(JoinEdgeTest, EquiPlusResidualOnOuterJoin) {
  // A lo B ON a_x = b_x AND b_v < 10: rows matching the key but failing
  // the residual must count as unmatched (null-extended), like V3's
  // p_retailprice filter.
  AddA(1, 5, 0);
  AddB(10, 5, 0, 3);   // matches key and residual
  AddB(11, 5, 0, 99);  // matches key, fails residual
  AddA(2, 6, 0);
  AddB(12, 6, 0, 99);  // a_id 2's only candidate fails residual
  ScalarExprPtr pred = ScalarExpr::And(
      {ScalarExpr::ColumnsEqual({"A", "a_x"}, {"B", "b_x"}),
       ScalarExpr::Compare(CompareOp::kLt, ScalarExpr::Column("B", "b_v"),
                           ScalarExpr::Literal(Value::Int64(10)))});
  Relation out = Eval(RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("A"),
                                    RelExpr::Scan("B"), pred));
  ASSERT_EQ(out.size(), 2);
  int null_extended = 0;
  for (const Row& row : out.rows()) {
    if (row[3].is_null()) {
      ++null_extended;
      EXPECT_EQ(row[0], Value::Int64(2));
    }
  }
  EXPECT_EQ(null_extended, 1);
}

TEST_F(JoinEdgeTest, EmptyInputs) {
  AddA(1, 5, 7);
  ScalarExprPtr pred = ScalarExpr::ColumnsEqual({"A", "a_x"}, {"B", "b_x"});
  // Right empty.
  EXPECT_EQ(Eval(RelExpr::Join(JoinKind::kInner, RelExpr::Scan("A"),
                               RelExpr::Scan("B"), pred))
                .size(),
            0);
  Relation lo = Eval(RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("A"),
                                   RelExpr::Scan("B"), pred));
  ASSERT_EQ(lo.size(), 1);
  EXPECT_TRUE(lo.row(0)[3].is_null());
  Relation fo = Eval(RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("A"),
                                   RelExpr::Scan("B"), pred));
  EXPECT_EQ(fo.size(), 1);
  // Both empty: outer joins of empties are empty.
  Catalog empty;
  empty.CreateTable("A",
                    Schema({ColumnDef{"a_id", ValueType::kInt64, false},
                            ColumnDef{"a_x", ValueType::kInt64, true},
                            ColumnDef{"a_y", ValueType::kInt64, true}}),
                    {"a_id"});
  empty.CreateTable("B",
                    Schema({ColumnDef{"b_id", ValueType::kInt64, false},
                            ColumnDef{"b_x", ValueType::kInt64, true},
                            ColumnDef{"b_y", ValueType::kInt64, true},
                            ColumnDef{"b_v", ValueType::kInt64, true}}),
                    {"b_id"});
  Evaluator evaluator(&empty);
  EXPECT_EQ(evaluator
                .EvalToRelation(RelExpr::Join(JoinKind::kFullOuter,
                                              RelExpr::Scan("A"),
                                              RelExpr::Scan("B"), pred))
                .size(),
            0);
}

TEST_F(JoinEdgeTest, BuildSideSwapMatchesCanonicalOrder) {
  // Small left, large right: the swapped build side must produce the
  // identical result (same schema order, same rows).
  for (int64_t i = 1; i <= 3; ++i) AddA(i, i % 2, 0);
  for (int64_t i = 1; i <= 50; ++i) AddB(100 + i, i % 2, 0, i);
  ScalarExprPtr pred = ScalarExpr::ColumnsEqual({"A", "a_x"}, {"B", "b_x"});
  Relation small_left = Eval(RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("A"), RelExpr::Scan("B"), pred));
  Relation small_right = Eval(RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("B"), RelExpr::Scan("A"), pred));
  EXPECT_EQ(small_left.size(), small_right.size());
  EXPECT_EQ(small_left.schema().column(0).table, "A");
  EXPECT_EQ(small_right.schema().column(0).table, "B");
  std::string diff;
  EXPECT_TRUE(SameBag(small_left, small_right, &diff)) << diff;
  // 75 = 2 A-rows with x=1 matching 25 B-rows + 1 A-row with x=0
  // matching 25.
  EXPECT_EQ(small_left.size(), 75);
}

TEST_F(JoinEdgeTest, DuplicateKeyFanout) {
  // Many-to-many equi join multiplicity.
  AddA(1, 5, 0);
  AddA(2, 5, 0);
  for (int64_t i = 0; i < 4; ++i) AddB(10 + i, 5, 0, 0);
  ScalarExprPtr pred = ScalarExpr::ColumnsEqual({"A", "a_x"}, {"B", "b_x"});
  EXPECT_EQ(Eval(RelExpr::Join(JoinKind::kInner, RelExpr::Scan("A"),
                               RelExpr::Scan("B"), pred))
                .size(),
            8);
}

}  // namespace
}  // namespace ojv
