# Empty dependencies file for database_property_test.
# This may be replaced when dependencies are built.
