// Deferred vs immediate maintenance of view V3 on the Figure-5 insert
// workload, driven through the Database facade.
//
// Immediate mode pays one maintenance pass per statement: inserting a
// batch as single-row statements runs the left-deep delta pipeline (§4)
// once per row. Deferred mode stages the same statements in the delta
// log and runs the pipeline once over the consolidated ΔT at refresh —
// per-statement cost becomes an append, and the batched refresh
// amortizes plan execution over the whole batch.
//
// The churn table shows the other deferred win: rows inserted and
// deleted again before the refresh consolidate away entirely, so the
// maintainers never see them, while immediate maintenance pays for both
// statements.

#include <unistd.h>

#include <chrono>
#include <thread>

#include "bench_util.h"
#include "ivm/database.h"
#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

/// A Database with TPC-H populated and V3 registered.
struct Instance {
  Database db;
  ViewMaintainer* v3 = nullptr;

  explicit Instance(tpch::Dbgen* dbgen) {
    tpch::CreateSchema(db.catalog());
    // Populate is deterministic: both instances get identical tables.
    dbgen->Populate(db.catalog());
    v3 = db.CreateMaterializedView(tpch::MakeV3(*db.catalog()));
  }
};

std::vector<Row> LineitemKeys(const std::vector<Row>& rows) {
  std::vector<Row> keys;
  keys.reserve(rows.size());
  for (const Row& row : rows) {
    keys.push_back(Row{row[0], row[3]});  // (l_orderkey, l_linenumber)
  }
  return keys;
}

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f (lineitem rows: ~%lld)\n", options.scale_factor,
              static_cast<long long>(options.scale_factor * 6000000));

  // Live telemetry: `--metrics-port=9464` serves /metrics (Prometheus),
  // /snapshot.json, and /flight.json on localhost for the whole run, so
  // the admission tables below can be watched from curl or ojv_top
  // while they execute.
  obs::HttpExportServer metrics_server;
  if (options.metrics_port != 0) {
    if (metrics_server.Start(options.metrics_port)) {
      std::printf("telemetry: http://127.0.0.1:%d/metrics\n",
                  metrics_server.port());
      // Arm SIGUSR2 flight dumps too: a served bench is the process the
      // README tells people to poke, and without a handler the default
      // SIGUSR2 disposition kills it.
      if (obs::FlightRecorder::Global().StartSignalDumps("/tmp/ojv")) {
        std::printf("flight dumps: kill -USR2 %d -> /tmp/ojv/flight-<n>.json\n",
                    static_cast<int>(getpid()));
      }
    } else {
      std::fprintf(stderr,
                   "cannot serve telemetry on port %d (OJV_OBS=OFF build, "
                   "or port in use)\n",
                   options.metrics_port);
    }
  }

  tpch::DbgenOptions gen_options;
  gen_options.scale_factor = options.scale_factor;
  gen_options.seed = options.seed;
  tpch::Dbgen dbgen(gen_options);
  Instance immediate(&dbgen);
  Instance deferred(&dbgen);
  // Consolidated batch replays may use the morsel-parallel executor
  // (--threads=N); foreground statements stay serial.
  deferred::ThresholdConfig refresh_config;
  refresh_config.refresh_threads = options.threads;
  deferred.db.SetRefreshPolicy("v3", deferred::RefreshPolicy::kOnDemand,
                               refresh_config);

  // One stream drives both databases so their base states stay equal.
  tpch::RefreshStream stream(immediate.db.catalog(), &dbgen, options.seed);

  JsonReport report("deferred", options);
  PrintHeader(
      "V3 maintenance: single-row insert statements, immediate vs deferred",
      {"Rows", "Immediate", "Stage", "Refresh", "Deferred", "Speedup"});
  for (int64_t batch : options.batches) {
    std::vector<Row> rows = stream.NewLineitems(batch);

    double immediate_ms = TimeMs([&] {
      for (const Row& row : rows) immediate.db.Insert("lineitem", {row});
    });
    double stage_ms = TimeMs([&] {
      for (const Row& row : rows) deferred.db.Insert("lineitem", {row});
    });
    deferred::RefreshStats stats;
    double refresh_ms = TimeMs([&] { stats = deferred.db.Refresh("v3"); });
    double deferred_ms = stage_ms + refresh_ms;

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  immediate_ms / std::max(deferred_ms, 1e-3));
    PrintRow({FormatCount(batch), FormatMs(immediate_ms), FormatMs(stage_ms),
              FormatMs(refresh_ms), FormatMs(deferred_ms), speedup});
    report.BeginRow();
    report.Str("workload", "insert");
    report.Count("batch_rows", batch);
    report.Num("immediate_ms", immediate_ms);
    report.Num("stage_ms", stage_ms);
    report.Num("refresh_ms", refresh_ms);
    report.Num("deferred_ms", deferred_ms);

    // Restore both databases (and views) for the next batch size.
    std::vector<Row> keys = LineitemKeys(rows);
    immediate.db.Delete("lineitem", keys);
    deferred.db.Delete("lineitem", keys);
    deferred.db.Refresh("v3");
  }

  // Churn: every inserted row is deleted again before the refresh.
  PrintHeader("Churn (insert+delete same rows before refresh)",
              {"Rows", "Immediate", "Deferred", "NetRows", "Cancelled"});
  for (int64_t batch : options.batches) {
    std::vector<Row> rows = stream.NewLineitems(batch);
    std::vector<Row> keys = LineitemKeys(rows);

    double immediate_ms = TimeMs([&] {
      for (const Row& row : rows) immediate.db.Insert("lineitem", {row});
      immediate.db.Delete("lineitem", keys);
    });
    deferred::RefreshStats stats;
    double deferred_ms = TimeMs([&] {
      for (const Row& row : rows) deferred.db.Insert("lineitem", {row});
      deferred.db.Delete("lineitem", keys);
      stats = deferred.db.Refresh("v3");
    });
    PrintRow({FormatCount(batch), FormatMs(immediate_ms),
              FormatMs(deferred_ms), FormatCount(stats.consolidated_rows),
              FormatCount(stats.cancelled_rows)});
    report.BeginRow();
    report.Str("workload", "churn");
    report.Count("batch_rows", batch);
    report.Num("immediate_ms", immediate_ms);
    report.Num("deferred_ms", deferred_ms);
    report.Count("consolidated_rows", stats.consolidated_rows);
    report.Count("cancelled_rows", stats.cancelled_rows);
  }

  // Admission control: the same insert loop against a kThreshold view.
  // Without a controller every threshold trip pays an inline refresh in
  // the middle of the hot loop; with one, the loop goes hot (delta-log
  // depth over budget), trips are deferred, and one promoted refresh
  // drains the backlog once staleness drifts toward its 200ms ceiling —
  // while actual staleness is still under the ceiling, because the
  // windowed percentile bound rounds up and so promotes early.
  constexpr double kCeilingMicros = 200'000;
  PrintHeader(
      "Admission control (hot threshold loop: defer under load, promote on "
      "staleness)",
      {"Rows", "NoAdmission", "Admission", "Deferred", "Promoted", "Promote",
       "Staleness"});
  for (int64_t batch : options.batches) {
    deferred::ThresholdConfig threshold;
    threshold.refresh_threads = options.threads;
    threshold.max_pending_rows = std::max<int64_t>(batch / 4, 8);
    threshold.staleness_ceiling_micros = kCeilingMicros;
    deferred.db.SetRefreshPolicy("v3", deferred::RefreshPolicy::kThreshold,
                                 threshold);

    // Legacy scan: threshold trips refresh inline, mid-loop.
    std::vector<Row> rows = stream.NewLineitems(batch);
    double noadm_ms = TimeMs([&] {
      for (const Row& row : rows) deferred.db.Insert("lineitem", {row});
    });
    deferred.db.Refresh("v3");
    std::vector<Row> keys = LineitemKeys(rows);
    deferred.db.Delete("lineitem", keys);
    deferred.db.Refresh("v3");

    // Admission control on: depth budget 4 makes the loop hot within
    // four statements; hot_slice 0 defers every trip.
    deferred::AdmissionConfig admission;
    admission.enabled = true;
    admission.statement_budget_micros = 1'000'000'000;
    admission.refresh_budget_micros = 1'000'000'000;
    admission.log_depth_budget_rows = 4;
    admission.hot_slice = 0;
    admission.backoff_initial_micros = 200;
    admission.backoff_max_micros = 2'000;
    deferred.db.SetAdmissionControl(admission);

    rows = stream.NewLineitems(batch);
    double adm_ms = TimeMs([&] {
      for (const Row& row : rows) deferred.db.Insert("lineitem", {row});
    });

    // Let staleness drift: at ~131ms the windowed p99 bucket bound
    // crosses the 200ms ceiling. The next statement's due-view scan
    // then promotes v3 past the load gate and drains the whole backlog
    // in one consolidated refresh.
    std::this_thread::sleep_for(std::chrono::milliseconds(135));
    MaintenanceStats promote_stats;
    deferred.v3->set_stats_hook(
        [&promote_stats](const std::string&, const MaintenanceStats& s) {
          promote_stats.Merge(s);
        });
    Row sentinel = stream.NewLineitems(1)[0];
    double promote_ms =
        TimeMs([&] { deferred.db.Insert("lineitem", {sentinel}); });
    deferred.v3->set_stats_hook(nullptr);

    Database::AdmissionStats adm_stats = deferred.db.GetAdmissionStats();
    const deferred::ViewRefreshState state = deferred.db.RefreshState("v3");
    double stale_ms = state.last.staleness_micros / 1000.0;

    char stale[32];
    std::snprintf(stale, sizeof(stale), "%.1f/%.0fms", stale_ms,
                  kCeilingMicros / 1000.0);
    PrintRow({FormatCount(batch), FormatMs(noadm_ms), FormatMs(adm_ms),
              FormatCount(adm_stats.deferred), FormatCount(adm_stats.promoted),
              FormatMs(promote_ms), stale});
    report.BeginRow();
    report.Str("workload", "admission");
    report.Count("batch_rows", batch);
    report.Num("noadmission_ms", noadm_ms);
    report.Num("ours_ms", adm_ms);
    report.Num("promote_refresh_ms", promote_ms);
    report.Num("stale_ms", stale_ms);
    report.Num("ceiling_ms", kCeilingMicros / 1000.0);
    report.Count("deferred", adm_stats.deferred);
    report.Count("promoted", adm_stats.promoted);
    report.Count("hot_transitions", adm_stats.hot_transitions);
    report.Obj("stages", StagesJson(promote_stats));

    // Restore for the next batch size.
    deferred.db.SetAdmissionControl(deferred::AdmissionConfig{});
    keys = LineitemKeys(rows);
    keys.push_back(LineitemKeys({sentinel})[0]);
    deferred.db.Delete("lineitem", keys);
    deferred.db.Refresh("v3");
  }

  std::printf("\n%s\n", deferred.db.RefreshReport().c_str());
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
