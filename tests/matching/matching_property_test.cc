// Property sweep for view matching: a query built from the same join
// skeleton as the view but with weaker join types (fo→lo/ro/inner,
// lo→inner, ...) and optionally tightened predicates. Every accepted
// rewrite must equal direct evaluation; the sweep also confirms the
// matcher accepts a healthy share of these (they are the everyday
// "answer inner query from outer view" cases).

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "matching/view_matching.h"
#include "ivm/maintainer.h"
#include "test_util.h"

namespace ojv {
namespace {

using testing_util::CreateRandomSchema;
using testing_util::RandomRstuRows;

struct Skeleton {
  // Left-deep chain: table[0] join table[1] join ... with per-join preds.
  std::vector<std::string> tables;
  std::vector<ScalarExprPtr> preds;
};

RelExprPtr BuildChain(const Skeleton& skeleton,
                      const std::vector<JoinKind>& kinds) {
  RelExprPtr expr = RelExpr::Scan(skeleton.tables[0]);
  for (size_t i = 1; i < skeleton.tables.size(); ++i) {
    expr = RelExpr::Join(kinds[i - 1], expr,
                         RelExpr::Scan(skeleton.tables[i]),
                         skeleton.preds[i - 1]);
  }
  return expr;
}

JoinKind WeakerKind(JoinKind view_kind, Rng* rng) {
  switch (view_kind) {
    case JoinKind::kFullOuter: {
      JoinKind choices[] = {JoinKind::kFullOuter, JoinKind::kLeftOuter,
                            JoinKind::kRightOuter, JoinKind::kInner};
      return choices[rng->Uniform(0, 3)];
    }
    case JoinKind::kLeftOuter:
      return rng->Chance(0.5) ? JoinKind::kLeftOuter : JoinKind::kInner;
    case JoinKind::kRightOuter:
      return rng->Chance(0.5) ? JoinKind::kRightOuter : JoinKind::kInner;
    default:
      return JoinKind::kInner;
  }
}

class MatchingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingPropertyTest, AcceptedRewritesAreExact) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Catalog catalog;
  int n = static_cast<int>(rng.Uniform(3, 4));
  std::vector<std::string> tables = CreateRandomSchema(&catalog, n);
  int64_t key = 1;
  for (const std::string& t : tables) {
    Table* table = catalog.GetTable(t);
    for (Row& row : RandomRstuRows(t, &rng, 15, 4, &key)) {
      table->Insert(std::move(row));
    }
  }

  auto col = [](const std::string& t, const char* suffix) {
    std::string p(1, static_cast<char>(std::tolower(t[0])));
    return ScalarExpr::Column(t, p + suffix);
  };
  Skeleton skeleton;
  skeleton.tables = tables;
  for (size_t i = 1; i < tables.size(); ++i) {
    // Join each table to a random earlier one on random columns.
    const std::string& prev = tables[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(i) - 1))];
    skeleton.preds.push_back(ScalarExpr::Compare(
        CompareOp::kEq, col(prev, rng.Chance(0.5) ? "_a" : "_b"),
        col(tables[i], "_a")));
  }

  std::vector<ColumnRef> output;
  for (const std::string& t : tables) {
    std::string p(1, static_cast<char>(std::tolower(t[0])));
    for (const char* suffix : {"_id", "_a", "_b", "_v"}) {
      output.push_back(ColumnRef{t, p + suffix});
    }
  }

  // View: strongly preserving joins.
  std::vector<JoinKind> view_kinds;
  for (size_t i = 1; i < tables.size(); ++i) {
    view_kinds.push_back(rng.Chance(0.6) ? JoinKind::kFullOuter
                                         : JoinKind::kLeftOuter);
  }
  ViewDef view("v", BuildChain(skeleton, view_kinds), output, catalog);
  ViewMaintainer maintainer(&catalog, view, MaintenanceOptions());
  maintainer.InitializeView();

  int accepted = 0;
  for (int variant = 0; variant < 8; ++variant) {
    std::vector<JoinKind> query_kinds;
    for (JoinKind vk : view_kinds) query_kinds.push_back(WeakerKind(vk, &rng));
    RelExprPtr q_tree = BuildChain(skeleton, query_kinds);
    if (rng.Chance(0.3)) {
      // Tighten with a selection on the first table (always in the
      // core after inner weakenings; may be rejected otherwise — both
      // outcomes are valid, correctness of accepts is what matters).
      q_tree = RelExpr::Select(
          q_tree, ScalarExpr::Compare(CompareOp::kLe, col(tables[0], "_a"),
                                      ScalarExpr::Literal(Value::Int64(2))));
    }
    ViewDef query("q", q_tree, output, catalog);
    std::optional<Relation> answer =
        AnswerFromView(query, view, maintainer.view(), catalog);
    if (!answer.has_value()) continue;
    ++accepted;
    Relation direct = RecomputeView(catalog, query);
    std::string diff;
    ASSERT_TRUE(SameBag(direct, *answer, &diff))
        << "seed " << seed << " variant " << variant << ": " << diff;
  }
  // The identity variant alone guarantees at least one accept; typical
  // runs accept most weakenings.
  EXPECT_GT(accepted, 0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomSkeletons, MatchingPropertyTest,
                         ::testing::Range<uint64_t>(701, 731));

}  // namespace
}  // namespace ojv
