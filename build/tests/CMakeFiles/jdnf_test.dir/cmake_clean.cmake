file(REMOVE_RECURSE
  "CMakeFiles/jdnf_test.dir/normalform/jdnf_test.cc.o"
  "CMakeFiles/jdnf_test.dir/normalform/jdnf_test.cc.o.d"
  "jdnf_test"
  "jdnf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jdnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
