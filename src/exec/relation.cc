#include "exec/relation.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace ojv {

const std::vector<int> BoundSchema::kEmptyPositions;

void BoundSchema::AddColumn(BoundColumn col) {
  std::string table = col.table;
  int key_ordinal = col.key_ordinal;
  columns_.push_back(std::move(col));
  TableInfo& info = tables_[table];
  if (key_ordinal >= 0) {
    if (static_cast<size_t>(key_ordinal) >= info.key_positions.size()) {
      info.key_positions.resize(static_cast<size_t>(key_ordinal) + 1, -1);
    }
    info.key_positions[static_cast<size_t>(key_ordinal)] =
        static_cast<int>(columns_.size()) - 1;
  }
}

int BoundSchema::Find(const std::string& table,
                      const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].table == table && columns_[i].column == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int BoundSchema::IndexOf(const ColumnRef& ref) const {
  int i = Find(ref);
  if (i < 0) {
    std::string have;
    for (const BoundColumn& col : columns_) {
      have += " " + col.table + "." + col.column;
    }
    std::fprintf(stderr, "BoundSchema::IndexOf: missing %s.%s; have:%s\n",
                 ref.table.c_str(), ref.column.c_str(), have.c_str());
  }
  OJV_CHECK(i >= 0, "column not found in bound schema");
  return i;
}

bool BoundSchema::HasTable(const std::string& table) const {
  return tables_.find(table) != tables_.end();
}

std::vector<std::string> BoundSchema::Tables() const {
  std::vector<std::string> out;
  for (const auto& [name, info] : tables_) out.push_back(name);
  return out;
}

const std::vector<int>& BoundSchema::KeyPositions(
    const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return kEmptyPositions;
  for (int p : it->second.key_positions) {
    if (p < 0) return kEmptyPositions;
  }
  if (it->second.key_positions.empty()) return kEmptyPositions;
  return it->second.key_positions;
}

bool BoundSchema::HasFullKey(const std::string& table) const {
  return !KeyPositions(table).empty();
}

std::string BoundSchema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].ToString();
  }
  return out + "]";
}

bool Relation::IsNullExtendedOn(const Row& row,
                                const std::string& table) const {
  const std::vector<int>& keys = schema_.KeyPositions(table);
  OJV_CHECK(!keys.empty(), "null-extension test requires the table's key");
  // A table is either fully present or fully null in a tuple; the first
  // key column decides.
  return row[static_cast<size_t>(keys[0])].is_null();
}

std::string Relation::ToString(bool sorted) const {
  std::vector<Row> rows = rows_;
  if (sorted) SortRows(&rows);
  std::string out = schema_.ToString();
  out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

bool Relation::Equals(const Relation& other) const {
  std::string diff;
  return SameBag(*this, other, &diff);
}

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].SortCompare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
}

bool SameBag(const Relation& a, const Relation& b, std::string* diff) {
  if (a.schema().num_columns() != b.schema().num_columns()) {
    if (diff != nullptr) {
      *diff = "schema arity mismatch: " + a.schema().ToString() + " vs " +
              b.schema().ToString();
    }
    return false;
  }
  // Map b's columns to a's order.
  std::vector<int> remap;
  for (int i = 0; i < a.schema().num_columns(); ++i) {
    const BoundColumn& col = a.schema().column(i);
    int j = b.schema().Find(col.table, col.column);
    if (j < 0) {
      if (diff != nullptr) *diff = "missing column " + col.ToString();
      return false;
    }
    remap.push_back(j);
  }
  std::vector<Row> rows_a = a.rows();
  std::vector<Row> rows_b;
  rows_b.reserve(b.rows().size());
  for (const Row& row : b.rows()) {
    Row mapped;
    mapped.reserve(remap.size());
    for (int j : remap) mapped.push_back(row[static_cast<size_t>(j)]);
    rows_b.push_back(std::move(mapped));
  }
  SortRows(&rows_a);
  SortRows(&rows_b);
  if (rows_a == rows_b) return true;
  if (diff != nullptr) {
    *diff = "row multisets differ: " + std::to_string(rows_a.size()) +
            " vs " + std::to_string(rows_b.size()) + " rows";
    // Find the first difference for debuggability.
    for (size_t i = 0; i < rows_a.size() && i < rows_b.size(); ++i) {
      if (rows_a[i] != rows_b[i]) {
        std::string ra, rb;
        for (const Value& v : rows_a[i]) ra += v.ToString() + "|";
        for (const Value& v : rows_b[i]) rb += v.ToString() + "|";
        *diff += "\n first diff at sorted row " + std::to_string(i) + ":\n  " +
                 ra + "\n  " + rb;
        break;
      }
    }
  }
  return false;
}

}  // namespace ojv
