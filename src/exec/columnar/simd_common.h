#ifndef OJV_EXEC_COLUMNAR_SIMD_COMMON_H_
#define OJV_EXEC_COLUMNAR_SIMD_COMMON_H_

#include <cstdint>

#include "algebra/scalar_expr.h"

namespace ojv {
namespace columnar {

/// Scalar reference formulas shared by every SIMD backend: the vector
/// paths compute exactly these functions lane-wise (the hash mix in
/// particular is chosen so its 64-bit multiplies can be emulated
/// bit-exactly with 32-bit AVX2/NEON multiplies), and their tail loops
/// call them directly. The SIMD-vs-scalar unit tests pin the
/// equivalence at every boundary length.
namespace scalar_ref {

/// splitmix64 finalizer: a full-avalanche 64-bit mix. Used per key
/// element; multi-key hashes are combined with CombineHash.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-style fold of the next key column's mixed value into a running
/// hash (matches the row engine's combine shape, not its values).
inline uint64_t CombineHash(uint64_t h, uint64_t mixed) {
  return (h ^ mixed) * 0x100000001b3ULL;
}

template <CompareOp op>
inline bool CmpI64(int64_t a, int64_t b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

inline bool CmpI64Dyn(int64_t a, int64_t b, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

inline bool CmpF64Dyn(double a, double b, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace scalar_ref
}  // namespace columnar
}  // namespace ojv

#endif  // OJV_EXEC_COLUMNAR_SIMD_COMMON_H_
