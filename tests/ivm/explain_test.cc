// EXPLAIN output: the maintenance report names the right terms, fast
// paths, and clean-up lists for the paper's views.

#include "ivm/explain.h"

#include <gtest/gtest.h>

#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

TEST(ExplainTest, OjViewReport) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewMaintainer maintainer(&catalog, tpch::MakeOjView(catalog),
                            MaintenanceOptions());
  std::string report = ExplainMaintenance(maintainer);

  // Normal form section.
  EXPECT_NE(report.find("normal form (3 terms)"), std::string::npos);
  EXPECT_NE(report.find("{lineitem,orders,part}"), std::string::npos);

  // part inserts are delta-only.
  EXPECT_NE(report.find("on update of part:"), std::string::npos);
  EXPECT_NE(report.find("fast path"), std::string::npos);

  // lineitem updates clean up both orphan terms.
  size_t lineitem_at = report.find("on update of lineitem:");
  ASSERT_NE(lineitem_at, std::string::npos);
  std::string lineitem_section = report.substr(lineitem_at);
  EXPECT_NE(lineitem_section.find("{orders} orphans"), std::string::npos);
  EXPECT_NE(lineitem_section.find("{part} orphans"), std::string::npos);
}

TEST(ExplainTest, V3ReportsOrdersNoop) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewMaintainer maintainer(&catalog, tpch::MakeV3(catalog),
                            MaintenanceOptions());
  std::string report = ExplainMaintenance(maintainer);
  size_t orders_at = report.find("on update of orders:");
  ASSERT_NE(orders_at, std::string::npos);
  EXPECT_NE(report.find("no-op", orders_at), std::string::npos);
  EXPECT_NE(report.find("Theorem 3", orders_at), std::string::npos);
}

TEST(ExplainTest, NormalFormSectionListsPredicates) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewMaintainer maintainer(&catalog, tpch::MakeV3(catalog),
                            MaintenanceOptions());
  std::string report = ExplainNormalForm(maintainer);
  EXPECT_NE(report.find("where"), std::string::npos);
  EXPECT_NE(report.find("subsumption graph:"), std::string::npos);
  EXPECT_NE(report.find("-> {customer}"), std::string::npos);
}

}  // namespace
}  // namespace ojv
