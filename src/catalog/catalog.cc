#include "catalog/catalog.h"

#include "common/check.h"

namespace ojv {

Table* Catalog::CreateTable(const std::string& name, Schema schema,
                            std::vector<std::string> key_columns) {
  OJV_CHECK(tables_.find(name) == tables_.end(), "duplicate table name");
  auto table =
      std::make_unique<Table>(name, std::move(schema), std::move(key_columns));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  OJV_CHECK(it != tables_.end(), "unknown table");
  return it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  OJV_CHECK(it != tables_.end(), "unknown table");
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.find(name) != tables_.end();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void Catalog::AddForeignKey(ForeignKey fk) {
  const Table* child = GetTable(fk.child_table);
  const Table* parent = GetTable(fk.parent_table);
  OJV_CHECK(fk.child_columns.size() == fk.parent_columns.size(),
            "FK column count mismatch");
  OJV_CHECK(fk.parent_columns == parent->key_columns(),
            "FK must reference the parent's unique key");
  for (const std::string& c : fk.child_columns) {
    OJV_CHECK(child->schema().Find(c) >= 0, "unknown FK child column");
  }
  foreign_keys_.push_back(std::move(fk));
}

std::vector<const ForeignKey*> Catalog::ForeignKeysReferencing(
    const std::string& parent_table) const {
  std::vector<const ForeignKey*> out;
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.parent_table == parent_table) out.push_back(&fk);
  }
  return out;
}

bool Catalog::CheckForeignKeys(std::string* violation) const {
  for (const ForeignKey& fk : foreign_keys_) {
    const Table* child = GetTable(fk.child_table);
    const Table* parent = GetTable(fk.parent_table);
    std::vector<int> child_pos;
    for (const std::string& c : fk.child_columns) {
      child_pos.push_back(child->schema().IndexOf(c));
    }
    bool ok = true;
    child->ForEach([&](const Row& row) {
      if (!ok) return;
      Row key;
      key.reserve(child_pos.size());
      bool any_null = false;
      for (int p : child_pos) {
        const Value& v = row[static_cast<size_t>(p)];
        if (v.is_null()) any_null = true;
        key.push_back(v);
      }
      if (any_null) return;  // NULL FK columns do not reference anything.
      if (parent->FindByKey(key) == nullptr) {
        ok = false;
        if (violation != nullptr) {
          *violation = "FK violation: " + fk.child_table + " -> " +
                       fk.parent_table;
        }
      }
    });
    if (!ok) return false;
  }
  if (violation != nullptr) violation->clear();
  return true;
}

}  // namespace ojv
