file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_insert.dir/bench_fig5_insert.cc.o"
  "CMakeFiles/bench_fig5_insert.dir/bench_fig5_insert.cc.o.d"
  "bench_fig5_insert"
  "bench_fig5_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
