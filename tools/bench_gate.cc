// Benchmark regression gate: compares a fresh `--json` run of a fig5
// benchmark against the stage timings committed in BENCH_pipeline.json
// and fails (exit 1) when a comparable host shows a >30% regression.
//
//   bench_gate --baseline=BENCH_pipeline.json --candidate=run.json \
//              --section=fig5_insert [--threshold=0.30] [--floor-ms=0.5]
//
// Comparable means: same host core count, same build type, no
// sanitizer in either run. On a non-comparable host the gate prints why
// and exits 0 (skip) — committed numbers from another machine say
// nothing about this one. The absolute floor keeps sub-millisecond
// stages (apply on tiny batches) from tripping the ratio on timer noise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "io/json.h"

namespace ojv {
namespace {

struct GateArgs {
  std::string baseline_path;
  std::string candidate_path;
  std::string section;
  double threshold = 0.30;
  double floor_ms = 0.5;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

// The stage timings gated per result row, plus the end-to-end column.
constexpr const char* kStageKeys[] = {"primary_ms", "apply_ms",
                                      "secondary_ms"};

const io::JsonValue* FindRow(const io::JsonValue& section, int64_t batch) {
  const io::JsonValue* results = section.Find("results");
  if (results == nullptr || !results->is_array()) return nullptr;
  for (const io::JsonValue& row : results->AsArray()) {
    if (row.is_object() &&
        static_cast<int64_t>(row.NumberOr("batch_rows", -1)) == batch) {
      return &row;
    }
  }
  return nullptr;
}

// Kernel-suite rows (bench_operators --kernels) carry a "kernel" name
// instead of a batch size.
const io::JsonValue* FindKernelRow(const io::JsonValue& section,
                                   const std::string& kernel) {
  const io::JsonValue* results = section.Find("results");
  if (results == nullptr || !results->is_array()) return nullptr;
  for (const io::JsonValue& row : results->AsArray()) {
    if (row.is_object() && row.StringOr("kernel", "") == kernel) return &row;
  }
  return nullptr;
}

int Run(int argc, char** argv) {
  GateArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--baseline", &value)) {
      args.baseline_path = value;
    } else if (ParseFlag(argv[i], "--candidate", &value)) {
      args.candidate_path = value;
    } else if (ParseFlag(argv[i], "--section", &value)) {
      args.section = value;
    } else if (ParseFlag(argv[i], "--threshold", &value)) {
      args.threshold = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--floor-ms", &value)) {
      args.floor_ms = std::atof(value.c_str());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (args.baseline_path.empty() || args.candidate_path.empty() ||
      args.section.empty()) {
    std::fprintf(stderr,
                 "usage: bench_gate --baseline=<json> --candidate=<json> "
                 "--section=<name> [--threshold=0.30] [--floor-ms=0.5]\n");
    return 2;
  }

  io::JsonValue baseline_doc;
  io::JsonValue candidate;
  std::string error;
  if (!io::ParseJsonFile(args.baseline_path, &baseline_doc, &error)) {
    std::fprintf(stderr, "bench_gate: baseline: %s\n", error.c_str());
    return 2;
  }
  if (!io::ParseJsonFile(args.candidate_path, &candidate, &error)) {
    std::fprintf(stderr, "bench_gate: candidate: %s\n", error.c_str());
    return 2;
  }
  const io::JsonValue* baseline = baseline_doc.Find(args.section);
  if (baseline == nullptr || !baseline->is_object()) {
    std::fprintf(stderr, "bench_gate: no section '%s' in %s\n",
                 args.section.c_str(), args.baseline_path.c_str());
    return 2;
  }

  // Host/build comparability: committed numbers only gate this machine
  // when it looks like the machine they were measured on.
  const int64_t base_cores =
      static_cast<int64_t>(baseline->NumberOr("host_cores", -1));
  const int64_t cand_cores =
      static_cast<int64_t>(candidate.NumberOr("host_cores", -2));
  const std::string base_build = baseline->StringOr("build_type", "");
  const std::string cand_build = candidate.StringOr("build_type", "");
  const std::string base_san = baseline->StringOr("sanitize", "");
  const std::string cand_san = candidate.StringOr("sanitize", "");
  if (base_cores != cand_cores) {
    std::printf("bench_gate: SKIP %s (host_cores %lld vs baseline %lld)\n",
                args.section.c_str(), static_cast<long long>(cand_cores),
                static_cast<long long>(base_cores));
    return 0;
  }
  if (base_build != cand_build) {
    std::printf("bench_gate: SKIP %s (build_type '%s' vs baseline '%s')\n",
                args.section.c_str(), cand_build.c_str(), base_build.c_str());
    return 0;
  }
  if (!base_san.empty() || !cand_san.empty()) {
    std::printf("bench_gate: SKIP %s (sanitized build)\n",
                args.section.c_str());
    return 0;
  }

  const io::JsonValue* cand_results = candidate.Find("results");
  if (cand_results == nullptr || !cand_results->is_array()) {
    std::fprintf(stderr, "bench_gate: candidate has no results array\n");
    return 2;
  }

  int compared = 0;
  std::vector<std::string> failures;
  for (const io::JsonValue& row : cand_results->AsArray()) {
    const std::string kernel = row.StringOr("kernel", "");
    if (!kernel.empty()) {
      // Kernel-suite row: gate both engines' timings per kernel. SIMD
      // rows additionally carry the backend name; a row measured under
      // a different backend than the baseline's says nothing here.
      const io::JsonValue* base_row = FindKernelRow(*baseline, kernel);
      if (base_row == nullptr) continue;  // new kernel: nothing to gate
      if (row.StringOr("simd", "") != base_row->StringOr("simd", "")) {
        std::printf("  (skip kernel=%s: simd backend '%s' vs baseline '%s')\n",
                    kernel.c_str(), row.StringOr("simd", "").c_str(),
                    base_row->StringOr("simd", "").c_str());
        continue;
      }
      for (const char* key : {"row_ms", "columnar_ms", "scalar_ms",
                              "vector_ms"}) {
        const double base_ms = base_row->NumberOr(key, 0);
        const double cand_ms = row.NumberOr(key, -1);
        if (base_ms <= 0 || cand_ms < 0) continue;
        ++compared;
        const double limit = base_ms * (1.0 + args.threshold);
        const bool regressed =
            cand_ms > limit && cand_ms - base_ms > args.floor_ms;
        std::printf("  %-14s kernel=%-8s base=%8.3fms cand=%8.3fms %s\n", key,
                    kernel.c_str(), base_ms, cand_ms,
                    regressed ? "REGRESSED" : "ok");
        if (regressed) {
          char buf[128];
          std::snprintf(buf, sizeof(buf), "%s @ kernel=%s: %.3fms -> %.3fms",
                        key, kernel.c_str(), base_ms, cand_ms);
          failures.push_back(buf);
        }
      }
      continue;
    }
    const int64_t batch = static_cast<int64_t>(row.NumberOr("batch_rows", -1));
    const io::JsonValue* base_row = FindRow(*baseline, batch);
    if (base_row == nullptr) continue;  // new batch size: nothing to gate
    const io::JsonValue* cand_stages = row.Find("stages");
    const io::JsonValue* base_stages = base_row->Find("stages");

    auto check = [&](const char* label, double base_ms, double cand_ms) {
      if (base_ms <= 0 || cand_ms < 0) return;
      ++compared;
      const double limit = base_ms * (1.0 + args.threshold);
      const bool regressed =
          cand_ms > limit && cand_ms - base_ms > args.floor_ms;
      std::printf("  %-14s batch=%-6lld base=%8.3fms cand=%8.3fms %s\n",
                  label, static_cast<long long>(batch), base_ms, cand_ms,
                  regressed ? "REGRESSED" : "ok");
      if (regressed) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s @ batch=%lld: %.3fms -> %.3fms",
                      label, static_cast<long long>(batch), base_ms, cand_ms);
        failures.push_back(buf);
      }
    };

    check("ours_ms", base_row->NumberOr("ours_ms", 0),
          row.NumberOr("ours_ms", -1));
    if (cand_stages != nullptr && base_stages != nullptr) {
      for (const char* key : kStageKeys) {
        check(key, base_stages->NumberOr(key, 0),
              cand_stages->NumberOr(key, -1));
      }
    }
  }

  if (compared == 0) {
    std::printf("bench_gate: SKIP %s (no comparable rows)\n",
                args.section.c_str());
    return 0;
  }
  if (!failures.empty()) {
    std::printf("bench_gate: FAIL %s — %zu regression(s) beyond %.0f%%:\n",
                args.section.c_str(), failures.size(), args.threshold * 100);
    for (const std::string& f : failures) {
      std::printf("  %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("bench_gate: PASS %s (%d comparisons within %.0f%%)\n",
              args.section.c_str(), compared, args.threshold * 100);
  return 0;
}

}  // namespace
}  // namespace ojv

int main(int argc, char** argv) { return ojv::Run(argc, argv); }
