// Skew-adaptive maintenance: heavy-light partitioning vs uniform eager
// maintenance under Zipf-distributed join keys.
//
// Setup: V = R lo S on r_a = s_a, where S.s_a is Zipf-distributed so a
// handful of key values carry most of the join fanout. The workload is
// a stream of single-row R statements (inserts, churn deletes, and
// join-key updates) whose r_a values draw from the same Zipf
// distribution — i.e. most statements join a hot key.
//
// The uniform maintainer pays one full delta pipeline per statement;
// for a hot key that includes the large fanout apply. The heavy-light
// maintainer diverts hot-key rows into per-key lazy state (an O(1)
// append after a sketch probe) and folds the netted backlog once at the
// end — ours_ms includes that drain, so the comparison is end-to-end
// with both views byte-identical (self-checked).
//
// The uniform-control row (zipf_s = 0, batch_rows = 0) runs the same
// stream over a flat key domain where nothing ever promotes: it
// measures the pure overhead of the sketch probes and must stay within
// noise of the uniform maintainer (the "you only pay when skew exists"
// claim).
//
// Row convention in the JSON report: batch_rows = int(100 * zipf_s), so
// the skew section's rows are keyed 0 / 80 / 120 for the gate.

#include <algorithm>
#include <cstdlib>

#include "bench_util.h"
#include "ivm/maintainer.h"

namespace ojv {
namespace bench {
namespace {

constexpr int64_t kCounterpartRows = 6000;  // |S|
constexpr int64_t kSeedRRows = 200;
constexpr int kOps = 300;
constexpr int64_t kPromoteThreshold = 50;

struct StreamResult {
  double uniform_ms = 0;
  double ours_ms = 0;   // heavy-light, including the final drain
  double drain_ms = 0;
  int64_t diverted_rows = 0;  // raw entries folded by the drain
  int64_t heavy_keys = 0;     // promoted keys at end of stream
  MaintenanceStats heavy_stages;
};

/// R(r_id, r_a, r_v) lo S(s_id, s_a, s_v) on r_a = s_a.
ViewDef MakeSkewView(const Catalog& catalog) {
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("R"), RelExpr::Scan("S"),
      ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column("R", "r_a"),
                          ScalarExpr::Column("S", "s_a")));
  std::vector<ColumnRef> output = {{"R", "r_id"}, {"R", "r_a"}, {"R", "r_v"},
                                   {"S", "s_id"}, {"S", "s_a"}, {"S", "s_v"}};
  return ViewDef("v_skew", tree, std::move(output), catalog);
}

/// Runs the statement stream once; `zipf_s` shapes both S's key
/// distribution and the stream's key draws. `domain` controls the
/// per-key fanout: the skewed rows use a small domain (hot keys carry
/// thousands of S rows); the control uses a wide one where every key
/// stays far below the promote threshold.
StreamResult RunStream(double zipf_s, int64_t domain, uint64_t seed) {
  Catalog catalog;
  catalog.CreateTable("R", Schema({{"r_id", ValueType::kInt64, false},
                                   {"r_a", ValueType::kInt64, true},
                                   {"r_v", ValueType::kInt64, true}}),
                      {"r_id"});
  catalog.CreateTable("S", Schema({{"s_id", ValueType::kInt64, false},
                                   {"s_a", ValueType::kInt64, true},
                                   {"s_v", ValueType::kInt64, true}}),
                      {"s_id"});

  Rng rng(seed);
  const ZipfDistribution zipf(domain, zipf_s);
  Table* r = catalog.GetTable("R");
  Table* s = catalog.GetTable("S");
  for (int64_t i = 0; i < kCounterpartRows; ++i) {
    s->Insert({Value::Int64(i), Value::Int64(zipf.Sample(&rng)),
               Value::Int64(rng.Uniform(0, 999))});
  }
  std::vector<int64_t> live_keys;
  for (int64_t i = 0; i < kSeedRRows; ++i) {
    r->Insert({Value::Int64(i), Value::Int64(zipf.Sample(&rng)),
               Value::Int64(rng.Uniform(0, 999))});
    live_keys.push_back(i);
  }

  ViewDef view = MakeSkewView(catalog);
  MaintenanceOptions uniform_options;
  ViewMaintainer uniform(&catalog, view, uniform_options);
  MaintenanceOptions heavy_options;
  heavy_options.skew = SkewMode::kHeavyLight;
  heavy_options.heavy.promote_threshold = kPromoteThreshold;
  // Space-saving error is bounded by N/capacity; with |S| = 6000 the
  // default 64 slots would overestimate flat 512-domain counts by ~94 —
  // past the promote threshold — and promote keys in the control. 256
  // slots bound the error at ~23, well under the threshold.
  heavy_options.heavy.sketch_capacity = 256;
  ViewMaintainer heavy(&catalog, view, heavy_options);
  uniform.InitializeView();
  heavy.InitializeView();

  StreamResult result;
  heavy.set_stats_hook(
      [&result](const std::string&, const MaintenanceStats& stats) {
        result.heavy_stages.Merge(stats);
      });

  // Deletes and updates target the most recently touched rows — the
  // OLTP hot-tail pattern. That is where the lazy state's netting pays:
  // N touches of one heavy key fold to at most one delete + one insert
  // at the drain, while the uniform maintainer pays the key's full join
  // fanout on every single touch.
  constexpr size_t kHotTail = 16;
  auto pick_recent = [&](Rng* r) {
    const size_t span = std::min(kHotTail, live_keys.size());
    return live_keys.size() - 1 -
           static_cast<size_t>(r->Uniform(0, static_cast<int64_t>(span) - 1));
  };

  int64_t next_key = kSeedRRows;
  for (int op = 0; op < kOps; ++op) {
    const int choice = static_cast<int>(rng.Uniform(0, 9));
    if (choice < 2 && live_keys.size() > 8) {
      // Churn delete of a recently inserted row (nets away entirely
      // when its insert is still pending in the lazy state).
      const size_t pick = pick_recent(&rng);
      const Row key = {Value::Int64(live_keys[pick])};
      live_keys.erase(live_keys.begin() + static_cast<ptrdiff_t>(pick));
      result.ours_ms += TimeMs(
          [&] { heavy.PrepareHeavyForOp("R", PlanPolicy::kDefault); });
      std::vector<Row> deleted = ApplyBaseDelete(r, {key});
      result.uniform_ms += TimeMs([&] { uniform.OnDelete("R", deleted); });
      result.ours_ms += TimeMs([&] { heavy.OnDelete("R", deleted); });
    } else if (choice < 5 && live_keys.size() > 8) {
      // Join-key update of a recently touched row (repeated updates of
      // one row net to a single update pair).
      const size_t pick = pick_recent(&rng);
      const Row key = {Value::Int64(live_keys[pick])};
      Row updated = *r->FindByKey(key);
      updated[1] = Value::Int64(zipf.Sample(&rng));
      result.ours_ms += TimeMs([&] {
        heavy.PrepareHeavyForOp("R", PlanPolicy::kDefault, /*is_update=*/true);
      });
      std::vector<Row> old_rows;
      ApplyBaseUpdate(r, {key}, {updated}, &old_rows);
      result.uniform_ms +=
          TimeMs([&] { uniform.OnUpdate("R", old_rows, {updated}); });
      result.ours_ms +=
          TimeMs([&] { heavy.OnUpdate("R", old_rows, {updated}); });
    } else {
      const Row row = {Value::Int64(next_key), Value::Int64(zipf.Sample(&rng)),
                       Value::Int64(rng.Uniform(0, 999))};
      live_keys.push_back(next_key++);
      result.ours_ms += TimeMs(
          [&] { heavy.PrepareHeavyForOp("R", PlanPolicy::kDefault); });
      std::vector<Row> inserted = ApplyBaseInsert(r, {row});
      result.uniform_ms += TimeMs([&] { uniform.OnInsert("R", inserted); });
      result.ours_ms += TimeMs([&] { heavy.OnInsert("R", inserted); });
    }
  }

  result.diverted_rows = heavy.HeavyPendingRows();
  if (heavy.heavy_controller() != nullptr) {
    result.heavy_keys =
        heavy.heavy_controller()->hitters()->PromotedKeys("S");
  }
  result.drain_ms = TimeMs([&] { heavy.DrainHeavyState(); });
  result.ours_ms += result.drain_ms;

  // Self-check: the whole comparison is void if the lazy path diverged.
  if (!heavy.view().AsRelation().Equals(uniform.view().AsRelation())) {
    std::fprintf(stderr,
                 "bench_skew: SELF-CHECK FAILED at zipf_s=%.1f — heavy-light "
                 "and uniform views differ\n",
                 zipf_s);
    std::exit(1);
  }
  return result;
}

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf(
      "skew-adaptive maintenance: %d single-row R statements against "
      "|S|=%lld, promote_threshold=%lld\n",
      kOps, static_cast<long long>(kCounterpartRows),
      static_cast<long long>(kPromoteThreshold));

  JsonReport report("skew", options);
  PrintHeader("Heavy-light vs uniform maintenance under Zipf join keys",
              {"Zipf s", "Uniform", "HeavyLight", "Drain", "Speedup",
               "HeavyKeys", "Diverted"});

  struct Config {
    double s;
    int64_t domain;
    const char* label;
  };
  // Control first: flat keys over a wide domain — per-key counts stay
  // far below the promote threshold, so nothing diverts and the row
  // measures pure probe overhead.
  const Config configs[] = {
      {0.0, 512, "control"}, {0.8, 64, "moderate"}, {1.2, 64, "heavy"}};
  for (const Config& config : configs) {
    StreamResult result = RunStream(config.s, config.domain, options.seed);
    char sbuf[16], speedup[16];
    std::snprintf(sbuf, sizeof(sbuf), "%.1f", config.s);
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  result.uniform_ms / std::max(result.ours_ms, 1e-3));
    PrintRow({sbuf, FormatMs(result.uniform_ms), FormatMs(result.ours_ms),
              FormatMs(result.drain_ms), speedup,
              FormatCount(result.heavy_keys),
              FormatCount(result.diverted_rows)});

    report.BeginRow();
    report.Str("workload", config.label);
    report.Count("batch_rows", static_cast<int64_t>(config.s * 100));
    report.Num("zipf_s", config.s);
    report.Count("key_domain", config.domain);
    report.Num("uniform_ms", result.uniform_ms);
    report.Num("ours_ms", result.ours_ms);
    report.Num("drain_ms", result.drain_ms);
    report.Num("speedup", result.uniform_ms / std::max(result.ours_ms, 1e-3));
    report.Count("heavy_keys", result.heavy_keys);
    report.Count("diverted_rows", result.diverted_rows);
    report.Obj("stages", StagesJson(result.heavy_stages));
  }

  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
