// Google-benchmark microbenchmarks for the relational substrate: hash
// joins (all outer-join flavors), duplicate elimination, removal of
// subsumed tuples, minimum union, and null-if — the operators every
// maintenance expression is built from (experiment E9).
//
// `bench_operators --kernels` runs a different suite instead: the
// row-at-a-time engine against the chunked columnar engine on the same
// expressions, one row per kernel (select / project / join / nullif /
// dedup / subsume), with --json output that BENCH_pipeline.json's
// "kernels" section records and tools/bench_gate replays. The columnar
// timings include the relation-boundary conversions, so they are the
// end-to-end cost a maintenance expression actually pays.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/bound_scalar.h"
#include "exec/columnar/chunked_relation.h"
#include "exec/columnar/predicate.h"
#include "exec/columnar/simd.h"
#include "exec/evaluator.h"

namespace ojv {
namespace {

// Two keyed tables with `rows` rows each and ~50% join hit rate.
class OperatorFixture {
 public:
  explicit OperatorFixture(int64_t rows) : rng_(7) {
    catalog_.CreateTable(
        "L",
        Schema({ColumnDef{"lid", ValueType::kInt64, false},
                ColumnDef{"lk", ValueType::kInt64, true},
                ColumnDef{"lv", ValueType::kInt64, true}}),
        {"lid"});
    catalog_.CreateTable(
        "R",
        Schema({ColumnDef{"rid", ValueType::kInt64, false},
                ColumnDef{"rk", ValueType::kInt64, true},
                ColumnDef{"rv", ValueType::kInt64, true}}),
        {"rid"});
    Table* l = catalog_.GetTable("L");
    Table* r = catalog_.GetTable("R");
    for (int64_t i = 0; i < rows; ++i) {
      l->Insert(Row{Value::Int64(i), Value::Int64(rng_.Uniform(0, 2 * rows)),
                    Value::Int64(i)});
      r->Insert(Row{Value::Int64(i), Value::Int64(rng_.Uniform(0, 2 * rows)),
                    Value::Int64(i)});
    }
  }

  Relation Eval(const RelExprPtr& e) {
    Evaluator evaluator(&catalog_);
    return evaluator.EvalToRelation(e);
  }

  Relation EvalSortMerge(const RelExprPtr& e) {
    Evaluator evaluator(&catalog_);
    evaluator.set_join_algorithm(Evaluator::JoinAlgorithm::kSortMerge);
    return evaluator.EvalToRelation(e);
  }

  Relation EvalParallel(const RelExprPtr& e, int threads) {
    Evaluator evaluator(&catalog_);
    ExecConfig config;
    config.num_threads = threads;
    evaluator.set_exec(config, ThreadPool::Shared(threads).get());
    return evaluator.EvalToRelation(e);
  }

  Relation EvalEngine(const RelExprPtr& e, ExecEngine engine) {
    Evaluator evaluator(&catalog_);
    ExecConfig config;
    config.engine = engine;
    evaluator.set_exec(config, nullptr);
    return evaluator.EvalToRelation(e);
  }

  RelExprPtr Join(JoinKind kind) {
    return RelExpr::Join(kind, RelExpr::Scan("L"), RelExpr::Scan("R"),
                         ScalarExpr::ColumnsEqual({"L", "lk"}, {"R", "rk"}));
  }

 private:
  Catalog catalog_;
  Rng rng_;
};

void BM_HashJoinInner(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(fixture.Join(JoinKind::kInner)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoinInner)->Arg(1000)->Arg(10000)->Arg(100000);

// Morsel-parallel hash join; Args are {rows, threads}. On a single-core
// host the interesting read is the overhead vs BM_HashJoinInner.
void BM_HashJoinInnerParallel(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.EvalParallel(fixture.Join(JoinKind::kInner), threads));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoinInnerParallel)
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8});

void BM_SortMergeInner(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.EvalSortMerge(fixture.Join(JoinKind::kInner)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortMergeInner)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FullOuterJoin(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(fixture.Join(JoinKind::kFullOuter)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullOuterJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LeftAntiJoin(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(fixture.Join(JoinKind::kLeftAnti)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LeftAntiJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MinUnion(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  RelExprPtr expr =
      RelExpr::MinUnion(RelExpr::Scan("L"),
                        RelExpr::Join(JoinKind::kInner, RelExpr::Scan("L"),
                                      RelExpr::Scan("R"),
                                      ScalarExpr::ColumnsEqual({"L", "lk"},
                                                               {"R", "rk"})));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(expr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MinUnion)->Arg(1000)->Arg(10000);

void BM_RemoveSubsumed(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  Relation joined = fixture.Eval(fixture.Join(JoinKind::kLeftOuter));
  for (auto _ : state) {
    Relation copy = joined;
    benchmark::DoNotOptimize(Evaluator::RemoveSubsumed(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * joined.size());
}
BENCHMARK(BM_RemoveSubsumed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RemoveSubsumedParallel(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  ExecConfig config;
  config.num_threads = threads;
  ThreadPool* pool = ThreadPool::Shared(threads).get();
  Relation joined = fixture.Eval(fixture.Join(JoinKind::kLeftOuter));
  for (auto _ : state) {
    Relation copy = joined;
    benchmark::DoNotOptimize(
        Evaluator::RemoveSubsumed(std::move(copy), config, pool));
  }
  state.SetItemsProcessed(state.iterations() * joined.size());
}
BENCHMARK(BM_RemoveSubsumedParallel)->Args({100000, 2})->Args({100000, 4});

void BM_Dedup(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  Relation joined = fixture.Eval(fixture.Join(JoinKind::kLeftOuter));
  for (auto _ : state) {
    Relation copy = joined;
    benchmark::DoNotOptimize(Evaluator::DedupRows(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * joined.size());
}
BENCHMARK(BM_Dedup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NullIf(benchmark::State& state) {
  OperatorFixture fixture(state.range(0));
  RelExprPtr expr = RelExpr::NullIf(
      fixture.Join(JoinKind::kLeftOuter), {"R"},
      ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Column("R", "rv"),
                          ScalarExpr::Literal(Value::Int64(10))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Eval(expr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NullIf)->Arg(1000)->Arg(10000);

// --- Row-vs-columnar kernel suite (--kernels) ---

// One comparison row per hot operator. Both engines evaluate the same
// expression through the evaluator on the same serial config; only
// ExecConfig::engine differs.
int RunKernelSuite(int argc, char** argv) {
  int64_t rows = 100000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = std::atoll(argv[i] + 7);
    }
  }
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  OperatorFixture fixture(rows);

  struct Kernel {
    const char* name;
    RelExprPtr expr;
  };
  std::vector<Kernel> kernels;
  kernels.push_back(
      {"select",
       RelExpr::Select(RelExpr::Scan("L"),
                       ScalarExpr::Compare(
                           CompareOp::kLt, ScalarExpr::Column("L", "lk"),
                           ScalarExpr::Literal(Value::Int64(rows))))});
  kernels.push_back({"project", RelExpr::Project(RelExpr::Scan("L"),
                                                 {ColumnRef{"L", "lk"},
                                                  ColumnRef{"L", "lv"}})});
  kernels.push_back({"join", fixture.Join(JoinKind::kLeftOuter)});
  kernels.push_back(
      {"nullif",
       RelExpr::NullIf(fixture.Join(JoinKind::kLeftOuter), {"R"},
                       ScalarExpr::Compare(
                           CompareOp::kGt, ScalarExpr::Column("R", "rv"),
                           ScalarExpr::Literal(Value::Int64(rows / 2))))});
  kernels.push_back(
      {"dedup", RelExpr::Dedup(RelExpr::Project(RelExpr::Scan("L"),
                                                {ColumnRef{"L", "lk"}}))});
  kernels.push_back(
      {"subsume", RelExpr::SubsumeRemove(fixture.Join(JoinKind::kLeftOuter))});

  auto best_of = [](const std::function<void()>& fn) {
    fn();  // warm-up (hash table layouts, allocator)
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::min(best, bench::TimeMs(fn));
    }
    return best;
  };

  bench::JsonReport report("operator_kernels", options);

  // (a) End-to-end engine comparison: the same expression through the
  // evaluator with only ExecConfig::engine flipped. The columnar side
  // pays the relation-boundary conversions, so for a single cheap
  // operator on converted inputs this measures conversion + kernel; the
  // kernel-level rows below isolate the loops themselves.
  bench::PrintHeader(
      std::string("row vs columnar operators (end-to-end), ") +
          std::to_string(rows) + " rows, simd=" +
          columnar::simd::BackendName(),
      {"kernel", "row_ms", "columnar_ms", "speedup", "out_rows"});
  for (const Kernel& kernel : kernels) {
    int64_t out_rows = 0;
    const double row_ms = best_of([&] {
      out_rows = fixture.EvalEngine(kernel.expr, ExecEngine::kRowAtATime)
                     .size();
    });
    const double columnar_ms = best_of([&] {
      out_rows =
          fixture.EvalEngine(kernel.expr, ExecEngine::kColumnar).size();
    });
    const double speedup = columnar_ms > 0 ? row_ms / columnar_ms : 0;
    char speedup_buf[32];
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx", speedup);
    bench::PrintRow({kernel.name, bench::FormatMs(row_ms),
                     bench::FormatMs(columnar_ms), speedup_buf,
                     bench::FormatCount(out_rows)});
    report.BeginRow();
    report.Str("kernel", kernel.name);
    report.Count("rows", rows);
    report.Count("out_rows", out_rows);
    report.Num("row_ms", row_ms);
    report.Num("columnar_ms", columnar_ms);
    report.Num("rows_per_sec", columnar_ms > 0
                                   ? static_cast<double>(rows) /
                                         (columnar_ms / 1000.0)
                                   : 0);
    report.Num("speedup", speedup);
  }

  // (b) Inner-loop comparison: the two engines' per-operator compute on
  // already-converted inputs — the row engine's per-row interpreted
  // loop against the chunked kernels over typed arrays. This is the
  // cost each engine pays *inside* an operator, with the row
  // materialization both share factored out.
  {
    BoundSchema schema;
    schema.AddColumn(BoundColumn{"t", "a", ValueType::kInt64, 0});
    schema.AddColumn(BoundColumn{"t", "b", ValueType::kInt64, -1});
    schema.AddColumn(BoundColumn{"t", "c", ValueType::kInt64, -1});
    Relation rel(schema);
    Rng rng(42);
    for (int64_t i = 0; i < rows; ++i) {
      rel.Add(Row{Value::Int64(rng.Uniform(0, rows)),
                  Value::Int64(rng.Uniform(0, 1000)),
                  Value::Int64(i)});
    }
    columnar::ChunkedRelation chunked =
        columnar::ChunkedRelation::FromRelation(rel, 1024);
    ScalarExprPtr pred = ScalarExpr::Compare(
        CompareOp::kLt, ScalarExpr::Column("t", "b"),
        ScalarExpr::Literal(Value::Int64(500)));

    bench::PrintHeader(
        "row loop vs columnar kernel (inner loops, conversion excluded)",
        {"kernel", "row_ms", "columnar_ms", "speedup"});
    auto emit = [&](const char* name, double row_ms, double columnar_ms) {
      const double speedup = columnar_ms > 0 ? row_ms / columnar_ms : 0;
      char speedup_buf[32];
      std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx", speedup);
      bench::PrintRow({name, bench::FormatMs(row_ms),
                       bench::FormatMs(columnar_ms), speedup_buf});
      report.BeginRow();
      report.Str("kernel", name);
      report.Count("rows", rows);
      report.Num("row_ms", row_ms);
      report.Num("columnar_ms", columnar_ms);
      report.Num("rows_per_sec",
                 columnar_ms > 0
                     ? static_cast<double>(rows) / (columnar_ms / 1000.0)
                     : 0);
      report.Num("speedup", speedup);
    };

    // Filter: BoundScalar per-row vs ColumnarPredicate per-chunk.
    int64_t sink = 0;
    const double filter_row = best_of([&] {
      BoundScalar bound = BoundScalar::Compile(pred, schema);
      int64_t hits = 0;
      for (const Row& row : rel.rows()) {
        if (bound.EvalBool(row)) ++hits;
      }
      sink += hits;
    });
    const double filter_col = best_of([&] {
      columnar::ColumnarPredicate compiled =
          columnar::ColumnarPredicate::Compile(pred, chunked);
      columnar::SelVector sel;
      sel.reserve(static_cast<size_t>(rows));
      for (int64_t c = 0; c < chunked.num_chunks(); ++c) {
        compiled.SelectInto(chunked, chunked.ChunkBegin(c),
                            chunked.ChunkEnd(c), &sel);
      }
      sink += static_cast<int64_t>(sel.size());
    });
    emit("filter_kernel", filter_row, filter_col);

    // Key hashing: Value::Hash per row vs the SIMD mix over the column.
    const double hash_row = best_of([&] {
      size_t h = 0;
      for (const Row& row : rel.rows()) h ^= row[0].Hash();
      sink += static_cast<int64_t>(h);
    });
    std::vector<uint64_t> hashes(static_cast<size_t>(rows));
    const double hash_col = best_of([&] {
      columnar::simd::HashI64(chunked.column(0).i64.data(), rows,
                              hashes.data());
      sink += static_cast<int64_t>(hashes[0]);
    });
    emit("hash_kernel", hash_row, hash_col);

    // Gather: Row copies by index vs typed-array gathers (the columnar
    // output representation is the typed arrays themselves).
    std::vector<int32_t> idx;
    for (int64_t i = 0; i < rows; i += 2) idx.push_back(static_cast<int32_t>(i));
    const double gather_row = best_of([&] {
      std::vector<Row> out;
      out.reserve(idx.size());
      for (int32_t i : idx) out.push_back(rel.row(i));
      sink += static_cast<int64_t>(out.size());
    });
    std::vector<int64_t> gathered(idx.size());
    const double gather_col = best_of([&] {
      for (int c = 0; c < chunked.num_columns(); ++c) {
        columnar::simd::GatherI64(chunked.column(c).i64.data(), idx.data(),
                                  static_cast<int64_t>(idx.size()),
                                  gathered.data());
      }
      sink += gathered[0];
    });
    emit("gather_kernel", gather_row, gather_col);

    // (c) Explicit SIMD vs the pinned scalar tree on the same arrays —
    // the speedup the dispatcher buys over the auto-vectorized scalar
    // reference. On hosts without AVX2/NEON both columns run scalar and
    // the speedup is honestly ~1x.
    bench::PrintHeader(std::string("simd backend '") +
                           columnar::simd::BackendName() +
                           "' vs scalar reference",
                       {"kernel", "scalar_ms", "vector_ms", "speedup"});
    auto emit_simd = [&](const char* name, double scalar_ms,
                         double vector_ms) {
      const double speedup = vector_ms > 0 ? scalar_ms / vector_ms : 0;
      char speedup_buf[32];
      std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx", speedup);
      bench::PrintRow({name, bench::FormatMs(scalar_ms),
                       bench::FormatMs(vector_ms), speedup_buf});
      report.BeginRow();
      report.Str("kernel", name);
      report.Str("simd", columnar::simd::BackendName());
      report.Count("rows", rows);
      report.Num("scalar_ms", scalar_ms);
      report.Num("vector_ms", vector_ms);
      report.Num("rows_per_sec",
                 vector_ms > 0
                     ? static_cast<double>(rows) / (vector_ms / 1000.0)
                     : 0);
      report.Num("speedup", speedup);
    };
    const int64_t* a = chunked.column(0).i64.data();
    std::vector<uint8_t> bytes(static_cast<size_t>(rows));
    emit_simd("simd_cmp_i64",
              best_of([&] {
                columnar::simd::scalar::CmpI64Lit(a, rows, CompareOp::kLt,
                                                  rows / 2, bytes.data());
                sink += bytes[0];
              }),
              best_of([&] {
                columnar::simd::CmpI64Lit(a, rows, CompareOp::kLt, rows / 2,
                                          bytes.data());
                sink += bytes[0];
              }));
    emit_simd("simd_hash_i64",
              best_of([&] {
                columnar::simd::scalar::HashI64(a, rows, hashes.data());
                sink += static_cast<int64_t>(hashes[0]);
              }),
              best_of([&] {
                columnar::simd::HashI64(a, rows, hashes.data());
                sink += static_cast<int64_t>(hashes[0]);
              }));
    emit_simd("simd_gather_i64",
              best_of([&] {
                columnar::simd::scalar::GatherI64(
                    a, idx.data(), static_cast<int64_t>(idx.size()),
                    gathered.data());
                sink += gathered[0];
              }),
              best_of([&] {
                columnar::simd::GatherI64(a, idx.data(),
                                          static_cast<int64_t>(idx.size()),
                                          gathered.data());
                sink += gathered[0];
              }));
    if (sink == 42) std::printf("\n");  // defeat dead-code elimination
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace ojv

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernels") == 0) {
      return ojv::RunKernelSuite(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
