#include "ivm/aggregate_view.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "exec/evaluator.h"
#include "obs/metrics.h"

namespace ojv {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Full evaluation of the (non-aggregated) base view. Routed through the
// inner maintainer's table cache so the dirty MIN/MAX group refresh —
// which runs *inside* a maintenance statement — reuses the base tables
// already materialized for the delta evaluations instead of
// re-materializing every table per refresh.
Relation EvaluateBaseView(const Catalog& catalog, ViewMaintainer& planner) {
  Evaluator evaluator(&catalog);
  evaluator.set_table_cache(planner.table_cache());
  evaluator.set_exec(planner.exec_config(), planner.thread_pool());
  return evaluator.EvalToRelation(planner.view_def().WithProjection());
}

}  // namespace

AggViewMaintainer::AggViewMaintainer(const Catalog* catalog, ViewDef base,
                                     std::vector<ColumnRef> group_by,
                                     std::vector<AggregateSpec> aggregates,
                                     MaintenanceOptions options)
    : catalog_(catalog),
      group_by_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {
  // Aggregation views always compute ΔV^I from base tables (§3.3/§5.3).
  options.secondary_strategy = SecondaryStrategy::kFromBaseTables;
  // Heavy-light diversion happens in the wrapper, before the group
  // merge; the inner plan-set maintainers must never divert themselves.
  const SkewMode skew = options.skew;
  options.skew = SkewMode::kUniform;
  inner_ = std::make_unique<ViewMaintainer>(catalog, base, options);
  if (options.exploit_foreign_keys) {
    MaintenanceOptions fkfree = options;
    fkfree.exploit_foreign_keys = false;
    fkfree_inner_ =
        std::make_unique<ViewMaintainer>(catalog, std::move(base), fkfree);
  }
  if (skew == SkewMode::kHeavyLight) {
    heavy_ = std::make_unique<HeavyLightController>(
        catalog, inner_->view_def(), options.heavy);
    heavy_->set_drain_hook([this] { DrainHeavyState(); });
  }

  const BoundSchema& schema = inner_->view_def().output_schema();
  OJV_CHECK(!group_by_.empty(), "aggregation view requires group-by columns");
  for (const ColumnRef& ref : group_by_) {
    group_positions_.push_back(schema.IndexOf(ref));
  }
  for (const AggregateSpec& spec : aggregates_) {
    OJV_CHECK(!spec.name.empty(), "aggregate requires an output name");
    if (spec.kind == AggregateSpec::Kind::kCountStar) {
      agg_positions_.push_back(-1);
    } else {
      agg_positions_.push_back(schema.IndexOf(spec.column));
    }
  }
}

void AggViewMaintainer::ExposeNotNullCounts() {
  OJV_CHECK(notnull_tables_.empty(), "already exposed");
  OJV_CHECK(groups_.empty(), "must be configured before InitializeView");
  // A table is null-extendable iff some term of the normal form omits it.
  const BoundSchema& schema = inner_->view_def().output_schema();
  for (const std::string& table : inner_->view_def().tables()) {
    bool omitted_somewhere = false;
    for (const Term& term : inner_->terms()) {
      if (term.source.count(table) == 0) {
        omitted_somewhere = true;
        break;
      }
    }
    if (omitted_somewhere) {
      // Count via COUNT(key0): piggyback on the aggregate machinery.
      AggregateSpec spec;
      spec.kind = AggregateSpec::Kind::kCount;
      const std::vector<int>& keys = schema.KeyPositions(table);
      const BoundColumn& col = schema.column(keys[0]);
      spec.column = ColumnRef{col.table, col.column};
      spec.name = "notnull_" + table;
      agg_positions_.push_back(schema.IndexOf(spec.column));
      aggregates_.push_back(std::move(spec));
      notnull_tables_.emplace_back(table, keys[0]);
    }
  }
}

void AggViewMaintainer::ApplyRow(const Row& row, int sign,
                                 GroupMap* groups) const {
  Row key;
  key.reserve(group_positions_.size());
  for (int p : group_positions_) key.push_back(row[static_cast<size_t>(p)]);
  Accumulator& acc = (*groups)[key];
  if (acc.sums.empty()) {
    acc.sums.assign(aggregates_.size(), 0.0);
    acc.nonnull.assign(aggregates_.size(), 0);
    acc.extremes.assign(aggregates_.size(), Value::Null());
  }
  acc.row_count += sign;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (agg_positions_[i] < 0) continue;  // COUNT(*) uses row_count
    const Value& v = row[static_cast<size_t>(agg_positions_[i])];
    if (v.is_null()) continue;
    acc.nonnull[i] += sign;
    switch (aggregates_[i].kind) {
      case AggregateSpec::Kind::kSum:
        acc.sums[i] += sign * v.AsDouble();
        break;
      case AggregateSpec::Kind::kMin:
      case AggregateSpec::Kind::kMax: {
        const bool is_min = aggregates_[i].kind == AggregateSpec::Kind::kMin;
        if (sign > 0) {
          // Inserts tighten the extreme directly.
          if (acc.extremes[i].is_null() ||
              (is_min ? v.SortCompare(acc.extremes[i]) < 0
                      : v.SortCompare(acc.extremes[i]) > 0)) {
            acc.extremes[i] = v;
          }
        } else if (!acc.extremes[i].is_null() &&
                   v.SortCompare(acc.extremes[i]) == 0) {
          // The extreme left: not self-maintainable; mark for a
          // per-group recomputation.
          acc.dirty = true;
        }
        break;
      }
      default:
        break;
    }
  }
  OJV_CHECK(acc.row_count >= 0, "negative group count");
  if (acc.row_count == 0) groups->erase(key);
}

void AggViewMaintainer::ApplyDeltaRows(const Relation& delta, int sign) {
  for (const Row& row : delta.rows()) ApplyRow(row, sign, &groups_);
}

void AggViewMaintainer::InitializeView() {
  groups_.clear();
  Relation contents = EvaluateBaseView(*catalog_, *inner_);
  for (const Row& row : contents.rows()) ApplyRow(row, +1, &groups_);
}

void AggViewMaintainer::CheckHeavyConflict(const std::string& table,
                                           bool can_divert) const {
  if (heavy_ == nullptr || draining_heavy_) return;
  OJV_CHECK(!heavy_->NeedsDrainBefore(table, can_divert),
            "pending heavy-key state conflicts with this operation; call "
            "PrepareHeavyForOp before applying the base change");
}

void AggViewMaintainer::PrepareHeavyForOp(const std::string& table,
                                          PlanPolicy policy, bool is_update) {
  if (heavy_ == nullptr || draining_heavy_) return;
  if (heavy_->NeedsDrainBefore(table, CanDivert(table, policy, is_update))) {
    DrainHeavyState();
  }
}

MaintenanceStats AggViewMaintainer::DrainHeavyState() {
  MaintenanceStats stats;
  if (heavy_ == nullptr || draining_heavy_ || !heavy_->HasPending()) {
    return stats;
  }
  draining_heavy_ = true;
  HeavyState::DrainBatch batch = heavy_->Take();
  obs::Span span(inner_->trace(), "heavy_state.drain", "ivm");
  span.AddArg("view", inner_->view_def().name());
  span.AddArg("table", batch.table);
  span.AddArg("raw_entries", batch.raw_entries);
  span.AddArg("net_deletes", static_cast<int64_t>(batch.deletes.size()));
  span.AddArg("net_inserts", static_cast<int64_t>(batch.inserts.size()));
  span.AddArg("update_pairs", batch.update_pairs);
  auto start = std::chrono::steady_clock::now();
  const PlanPolicy policy = batch.update_pairs > 0
                                ? PlanPolicy::kConstraintFree
                                : PlanPolicy::kDefault;
  if (!batch.deletes.empty()) {
    stats.Merge(OnDelete(batch.table, batch.deletes, policy));
  }
  if (!batch.inserts.empty()) {
    stats.Merge(OnInsert(batch.table, batch.inserts, policy));
  }
  if constexpr (obs::kEnabled) {
    obs::Registry::Global()
        .GetCounter("ojv.ivm.heavy.drained_rows")
        .Add(static_cast<int64_t>(batch.deletes.size() +
                                  batch.inserts.size()));
  }
  span.FinishWithDuration(MicrosSince(start));
  draining_heavy_ = false;
  return stats;
}

MaintenanceStats AggViewMaintainer::OnInsert(const std::string& table,
                                             const std::vector<Row>& rows,
                                             PlanPolicy policy) {
  ViewMaintainer* planner =
      policy == PlanPolicy::kConstraintFree && fkfree_inner_ != nullptr
          ? fkfree_inner_.get()
          : inner_.get();
  if (heavy_ != nullptr) heavy_->OnInsert(table, rows);
  const bool can_divert =
      CanDivert(table, policy, /*is_update=*/false) && !draining_heavy_;
  CheckHeavyConflict(table, can_divert);
  if (can_divert) {
    std::vector<Row> light =
        heavy_->SplitBatch(table, rows, /*is_insert=*/true);
    MaintenanceStats stats =
        Maintain(planner, table, light, /*is_insert=*/true);
    if (stats_hook_) stats_hook_(table, stats);
    return stats;
  }
  MaintenanceStats stats = Maintain(planner, table, rows, /*is_insert=*/true);
  if (stats_hook_) stats_hook_(table, stats);
  return stats;
}

MaintenanceStats AggViewMaintainer::OnDelete(const std::string& table,
                                             const std::vector<Row>& rows,
                                             PlanPolicy policy) {
  ViewMaintainer* planner =
      policy == PlanPolicy::kConstraintFree && fkfree_inner_ != nullptr
          ? fkfree_inner_.get()
          : inner_.get();
  if (heavy_ != nullptr) heavy_->OnDelete(table, rows);
  const bool can_divert =
      CanDivert(table, policy, /*is_update=*/false) && !draining_heavy_;
  CheckHeavyConflict(table, can_divert);
  if (can_divert) {
    std::vector<Row> light =
        heavy_->SplitBatch(table, rows, /*is_insert=*/false);
    MaintenanceStats stats =
        Maintain(planner, table, light, /*is_insert=*/false);
    if (stats_hook_) stats_hook_(table, stats);
    return stats;
  }
  MaintenanceStats stats = Maintain(planner, table, rows, /*is_insert=*/false);
  if (stats_hook_) stats_hook_(table, stats);
  return stats;
}

MaintenanceStats AggViewMaintainer::OnUpdate(const std::string& table,
                                             const std::vector<Row>& old_rows,
                                             const std::vector<Row>& new_rows) {
  ViewMaintainer* planner =
      fkfree_inner_ != nullptr ? fkfree_inner_.get() : inner_.get();
  if (heavy_ != nullptr) heavy_->OnUpdate(table, old_rows, new_rows);
  const bool can_divert =
      CanDivert(table, PlanPolicy::kConstraintFree, /*is_update=*/true) &&
      !draining_heavy_;
  CheckHeavyConflict(table, can_divert);
  if (can_divert) {
    std::vector<Row> light_old, light_new;
    heavy_->SplitPairs(table, old_rows, new_rows, &light_old, &light_new);
    MaintenanceStats stats =
        Maintain(planner, table, light_old, /*is_insert=*/false);
    stats.Merge(Maintain(planner, table, light_new, /*is_insert=*/true));
    stats.direct_terms = 0;
    stats.indirect_terms = 0;
    if (stats_hook_) stats_hook_(table, stats);
    return stats;
  }
  MaintenanceStats stats = Maintain(planner, table, old_rows,
                                    /*is_insert=*/false);
  stats.Merge(Maintain(planner, table, new_rows, /*is_insert=*/true));
  stats.direct_terms = 0;
  stats.indirect_terms = 0;
  if (stats_hook_) stats_hook_(table, stats);
  return stats;
}

MaintenanceStats AggViewMaintainer::OnConsolidatedBatch(
    Table* base, const std::string& table, const std::vector<Row>& net_deletes,
    const std::vector<Row>& net_inserts, PlanPolicy policy) {
  OJV_CHECK(base != nullptr && base->name() == table,
            "consolidated batch must target its own base table");
  // This entry point applies the base changes itself, so it can honor
  // the pre-apply drain contract internally.
  PrepareHeavyForOp(table, policy);
  MaintenanceStats stats;
  if (!net_deletes.empty()) {
    std::vector<Row> keys;
    keys.reserve(net_deletes.size());
    for (const Row& row : net_deletes) {
      Row key;
      for (int p : base->key_positions()) {
        key.push_back(row[static_cast<size_t>(p)]);
      }
      keys.push_back(std::move(key));
    }
    std::vector<Row> deleted = ApplyBaseDelete(base, keys);
    OJV_CHECK(deleted.size() == net_deletes.size(),
              "consolidated deletes must all be present");
    stats.Merge(OnDelete(table, deleted, policy));
  }
  if (!net_inserts.empty()) {
    std::vector<Row> inserted = ApplyBaseInsert(base, net_inserts);
    OJV_CHECK(inserted.size() == net_inserts.size(),
              "consolidated inserts must all be fresh keys");
    stats.Merge(OnInsert(table, inserted, policy));
  }
  return stats;
}

MaintenanceStats AggViewMaintainer::OnSharedDelta(
    const std::string& table, const std::vector<Row>& rows, bool is_insert,
    PlanPolicy policy, const RelExprPtr& shared_suffix,
    const Relation& shared_prefix) {
  ViewMaintainer* planner =
      policy == PlanPolicy::kConstraintFree && fkfree_inner_ != nullptr
          ? fkfree_inner_.get()
          : inner_.get();
  if (heavy_ != nullptr) {
    if (is_insert) {
      heavy_->OnInsert(table, rows);
    } else {
      heavy_->OnDelete(table, rows);
    }
  }
  CheckHeavyConflict(table, /*can_divert=*/false);
  MaintenanceStats stats = Maintain(planner, table, rows, is_insert,
                                    &shared_suffix, &shared_prefix);
  if (stats_hook_) stats_hook_(table, stats);
  return stats;
}

MaintenanceStats AggViewMaintainer::Maintain(ViewMaintainer* planner,
                                             const std::string& table,
                                             const std::vector<Row>& rows,
                                             bool is_insert,
                                             const RelExprPtr* shared_suffix,
                                             const Relation* shared_prefix) {
  MaintenanceStats stats;
  stats.delta_rows = static_cast<int64_t>(rows.size());
  auto total_start = std::chrono::steady_clock::now();
  if (rows.empty() || planner->DeltaIsEmpty(table)) {
    stats.fk_fast_path = planner->DeltaIsEmpty(table);
    stats.total_micros = MicrosSince(total_start);
    return stats;
  }

  Relation delta_t(Evaluator::SchemaFor(*catalog_->GetTable(table)));
  for (const Row& row : rows) delta_t.Add(row);

  // Primary delta, aggregated and merged with the update's sign.
  auto primary_start = std::chrono::steady_clock::now();
  Relation primary =
      shared_suffix != nullptr
          ? planner->ComputeSharedPrimaryDeltaRelation(
                table, delta_t, *shared_suffix, *shared_prefix)
          : planner->ComputePrimaryDeltaRelation(table, delta_t);
  stats.primary_rows = primary.size();
  stats.primary_micros = MicrosSince(primary_start);

  auto apply_start = std::chrono::steady_clock::now();
  ApplyDeltaRows(primary, is_insert ? +1 : -1);
  stats.apply_micros = MicrosSince(apply_start);

  // Secondary delta from base tables, applied with the opposite sign:
  // after an insertion, subsumed orphans leave the (pre-aggregation)
  // view; after a deletion, new orphans enter it.
  SecondaryDeltaEngine* secondary = planner->secondary_engine(table);
  if (secondary != nullptr) {
    auto secondary_start = std::chrono::steady_clock::now();
    std::vector<Row> candidates =
        secondary->CandidatesFromBaseTables(primary, delta_t, is_insert);
    for (const Row& row : candidates) {
      ApplyRow(row, is_insert ? -1 : +1, &groups_);
    }
    stats.secondary_rows = static_cast<int64_t>(candidates.size());
    stats.secondary_micros = MicrosSince(secondary_start);
  }
  if (HasMinMax()) {
    auto refresh_start = std::chrono::steady_clock::now();
    RefreshDirtyGroups();
    stats.secondary_micros += MicrosSince(refresh_start);
  }
  stats.total_micros = MicrosSince(total_start);
  return stats;
}

Relation AggViewMaintainer::GroupsToRelation(const GroupMap& groups) const {
  const BoundSchema& base_schema = inner_->view_def().output_schema();
  BoundSchema schema;
  for (size_t i = 0; i < group_by_.size(); ++i) {
    BoundColumn col = base_schema.column(group_positions_[i]);
    col.key_ordinal = -1;
    schema.AddColumn(col);
  }
  schema.AddColumn(BoundColumn{"#agg", "row_count", ValueType::kInt64, -1});
  for (const AggregateSpec& spec : aggregates_) {
    schema.AddColumn(BoundColumn{"#agg", spec.name, ValueType::kFloat64, -1});
  }
  Relation out(schema);
  for (const auto& [key, acc] : groups) {
    Row row = key;
    row.push_back(Value::Int64(acc.row_count));
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      switch (aggregates_[i].kind) {
        case AggregateSpec::Kind::kCountStar:
          row.push_back(Value::Int64(acc.row_count));
          break;
        case AggregateSpec::Kind::kCount:
          row.push_back(Value::Int64(acc.nonnull[i]));
          break;
        case AggregateSpec::Kind::kSum:
          row.push_back(acc.nonnull[i] == 0 ? Value::Null()
                                            : Value::Float64(acc.sums[i]));
          break;
        case AggregateSpec::Kind::kMin:
        case AggregateSpec::Kind::kMax:
          row.push_back(acc.nonnull[i] == 0 ? Value::Null()
                                            : acc.extremes[i]);
          break;
      }
    }
    out.Add(std::move(row));
  }
  return out;
}

bool AggViewMaintainer::HasMinMax() const {
  for (const AggregateSpec& spec : aggregates_) {
    if (spec.kind == AggregateSpec::Kind::kMin ||
        spec.kind == AggregateSpec::Kind::kMax) {
      return true;
    }
  }
  return false;
}

void AggViewMaintainer::RefreshDirtyGroups() {
  bool any_dirty = false;
  for (const auto& [key, acc] : groups_) {
    if (acc.dirty) {
      any_dirty = true;
      break;
    }
  }
  if (!any_dirty) return;
  // One pass over the base view recomputes the extremes of every dirty
  // group (counts and sums are still exact and untouched).
  for (auto& [key, acc] : groups_) {
    if (!acc.dirty) continue;
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      if (aggregates_[i].kind == AggregateSpec::Kind::kMin ||
          aggregates_[i].kind == AggregateSpec::Kind::kMax) {
        acc.extremes[i] = Value::Null();
      }
    }
  }
  Relation contents = EvaluateBaseView(*catalog_, *inner_);
  for (const Row& row : contents.rows()) {
    Row key;
    key.reserve(group_positions_.size());
    for (int p : group_positions_) key.push_back(row[static_cast<size_t>(p)]);
    auto it = groups_.find(key);
    if (it == groups_.end() || !it->second.dirty) continue;
    Accumulator& acc = it->second;
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      const bool is_min = aggregates_[i].kind == AggregateSpec::Kind::kMin;
      if (!is_min && aggregates_[i].kind != AggregateSpec::Kind::kMax) {
        continue;
      }
      const Value& v = row[static_cast<size_t>(agg_positions_[i])];
      if (v.is_null()) continue;
      if (acc.extremes[i].is_null() ||
          (is_min ? v.SortCompare(acc.extremes[i]) < 0
                  : v.SortCompare(acc.extremes[i]) > 0)) {
        acc.extremes[i] = v;
      }
    }
  }
  for (auto& [key, acc] : groups_) acc.dirty = false;
}

Relation AggViewMaintainer::AsRelation() const {
  // Dirty MIN/MAX groups are refreshed lazily by maintenance; a const
  // snapshot of a dirty state would be stale, so maintenance refreshes
  // eagerly at the end of each statement (see Maintain).
  return GroupsToRelation(groups_);
}

Relation AggViewMaintainer::Recompute() const {
  GroupMap groups;
  Relation contents = EvaluateBaseView(*catalog_, *inner_);
  for (const Row& row : contents.rows()) ApplyRow(row, +1, &groups);
  return GroupsToRelation(groups);
}

bool AggViewMaintainer::MatchesRecompute(double rel_tol,
                                         std::string* diff) const {
  GroupMap expected;
  Relation contents = EvaluateBaseView(*catalog_, *inner_);
  for (const Row& row : contents.rows()) ApplyRow(row, +1, &expected);

  auto describe_key = [](const Row& key) {
    std::string out;
    for (const Value& v : key) out += v.ToString() + "|";
    return out;
  };
  if (expected.size() != groups_.size()) {
    if (diff != nullptr) {
      *diff = "group count mismatch: " + std::to_string(groups_.size()) +
              " maintained vs " + std::to_string(expected.size()) +
              " recomputed";
    }
    return false;
  }
  for (const auto& [key, exp] : expected) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      if (diff != nullptr) *diff = "missing group " + describe_key(key);
      return false;
    }
    const Accumulator& got = it->second;
    if (got.row_count != exp.row_count || got.nonnull != exp.nonnull) {
      if (diff != nullptr) {
        *diff = "count mismatch in group " + describe_key(key);
      }
      return false;
    }
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      if (aggregates_[i].kind != AggregateSpec::Kind::kMin &&
          aggregates_[i].kind != AggregateSpec::Kind::kMax) {
        continue;
      }
      if (got.nonnull[i] > 0 && got.extremes[i] != exp.extremes[i]) {
        if (diff != nullptr) {
          *diff = "min/max mismatch in group " + describe_key(key) + ": " +
                  got.extremes[i].ToString() + " vs " +
                  exp.extremes[i].ToString();
        }
        return false;
      }
    }
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      if (aggregates_[i].kind != AggregateSpec::Kind::kSum) continue;
      double scale = std::max({std::abs(exp.sums[i]), std::abs(got.sums[i]),
                               1.0});
      if (std::abs(exp.sums[i] - got.sums[i]) > rel_tol * scale) {
        if (diff != nullptr) {
          *diff = "sum mismatch in group " + describe_key(key) + ": " +
                  std::to_string(got.sums[i]) + " vs " +
                  std::to_string(exp.sums[i]);
        }
        return false;
      }
    }
  }
  if (diff != nullptr) diff->clear();
  return true;
}

}  // namespace ojv
