// Reproduces Figure 5(b): maintenance cost for view V3 when deleting
// 60 / 600 / 6,000 / 60,000 lineitem rows (core view vs. our outer-join
// maintenance vs. Griffin–Kumar). The paper reports GK "much worse than
// ours" for deletions. Each batch is re-inserted after measurement so
// batch sizes are independent.

#include "baseline/griffin_kumar.h"
#include "bench_util.h"
#include "ivm/maintainer.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f (lineitem rows: ~%lld)\n", options.scale_factor,
              static_cast<long long>(options.scale_factor * 6000000));
  TpchInstance instance(options);
  Table* lineitem = instance.catalog.GetTable("lineitem");

  ViewDef v3 = tpch::MakeV3(instance.catalog);
  ViewDef core = v3.CoreView(instance.catalog);

  ViewMaintainer core_maintainer(&instance.catalog, core,
                                 MaintenanceOptions());
  ViewMaintainer oj_maintainer(&instance.catalog, v3, MaintenanceOptions());
  MaintenanceOptions par_options;
  par_options.exec.num_threads = options.threads;
  ViewMaintainer par_maintainer(&instance.catalog, v3, par_options);
  GriffinKumarMaintainer gk_maintainer(&instance.catalog, v3);
  core_maintainer.InitializeView();
  oj_maintainer.InitializeView();
  par_maintainer.InitializeView();
  gk_maintainer.InitializeView();

  JsonReport report("fig5_delete", options);
  char par_col[32];
  std::snprintf(par_col, sizeof(par_col), "OJ(par%d)", options.threads);
  PrintHeader("Figure 5(b): V3 maintenance cost, lineitem deletions",
              {"Rows", "CoreView", "OuterJoin", par_col, "OJ(GK)", "GK/ours"});
  for (int64_t batch : options.batches) {
    std::vector<Row> keys = instance.refresh->PickLineitemDeleteKeys(batch);
    std::vector<Row> deleted = ApplyBaseDelete(lineitem, keys);

    MaintenanceStats oj_stats;
    MaintenanceStats par_stats;
    double core_ms =
        TimeMs([&] { core_maintainer.OnDelete("lineitem", deleted); });
    double oj_ms =
        TimeMs([&] { oj_stats = oj_maintainer.OnDelete("lineitem", deleted); });
    double par_ms = TimeMs(
        [&] { par_stats = par_maintainer.OnDelete("lineitem", deleted); });
    double gk_ms =
        TimeMs([&] { gk_maintainer.OnDelete("lineitem", deleted); });

    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx", gk_ms / std::max(oj_ms, 1e-3));
    PrintRow({FormatCount(batch), FormatMs(core_ms), FormatMs(oj_ms),
              FormatMs(par_ms), FormatMs(gk_ms), ratio});
    report.BeginRow();
    report.Count("batch_rows", batch);
    report.Num("core_ms", core_ms);
    report.Num("ours_ms", oj_ms);
    report.Num("ours_parallel_ms", par_ms);
    report.Num("gk_ms", gk_ms);
    report.Obj("stages", StagesJson(oj_stats));
    report.Obj("stages_parallel", StagesJson(par_stats));

    // Restore.
    std::vector<Row> reinserted = ApplyBaseInsert(lineitem, deleted);
    core_maintainer.OnInsert("lineitem", reinserted);
    oj_maintainer.OnInsert("lineitem", reinserted);
    par_maintainer.OnInsert("lineitem", reinserted);
    gk_maintainer.OnInsert("lineitem", reinserted);
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
