#include "io/csv.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/date.h"

namespace ojv {
namespace io {
namespace {

bool NeedsQuoting(const std::string& field, const TextFormat& format) {
  // Empty strings and strings spelling the NULL marker are quoted so
  // they stay distinguishable from NULL on the way back in.
  return field.empty() || field == format.null_marker ||
         field.find(format.delimiter) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos;
}

// `plain` suppresses quoting — used for the NULL marker itself, which
// must stay unquoted to read back as NULL.
void WriteField(std::ostream& out, const std::string& field,
                const TextFormat& format, bool plain = false) {
  if (plain || !NeedsQuoting(field, format)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

std::string RenderValue(const Value& value, ValueType type,
                        const TextFormat& format) {
  if (value.is_null()) return format.null_marker;
  if (type == ValueType::kDate) return FormatDate(value.int64());
  if (value.is_float64()) {
    // dbgen money style when it reparses exactly; otherwise a full
    // round-trip rendering (computed prices are rarely exact cents in
    // binary floating point).
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2f", value.float64());
    if (std::strtod(buf, nullptr) == value.float64()) return buf;
    std::snprintf(buf, sizeof(buf), "%.17g", value.float64());
    return buf;
  }
  return value.ToString();
}

// Splits one line into fields, honoring quotes; *quoted records which
// fields were quoted (a quoted empty field is an empty string, an
// unquoted one is NULL). Returns false on a malformed quoted field.
bool SplitLine(const std::string& line, const TextFormat& format,
               std::vector<std::string>* fields,
               std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty() && !was_quoted) {
      in_quotes = true;
      was_quoted = true;
    } else if (c == format.delimiter) {
      fields->push_back(std::move(current));
      quoted->push_back(was_quoted);
      current.clear();
      was_quoted = false;
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return false;
  fields->push_back(std::move(current));
  quoted->push_back(was_quoted);
  if (format.trailing_delimiter && !fields->empty() &&
      fields->back().empty() && !quoted->back()) {
    fields->pop_back();  // "a|b|" splits into {a, b, ""}
    quoted->pop_back();
  }
  return true;
}

bool ParseValue(const std::string& field, bool was_quoted, ValueType type,
                const TextFormat& format, Value* out, std::string* error) {
  if (!was_quoted && (field == format.null_marker || field.empty())) {
    *out = Value::Null();
    return true;
  }
  try {
    switch (type) {
      case ValueType::kInt64:
        *out = Value::Int64(std::stoll(field));
        return true;
      case ValueType::kFloat64:
        *out = Value::Float64(std::stod(field));
        return true;
      case ValueType::kString:
        *out = Value::String(field);
        return true;
      case ValueType::kDate:
        *out = Value::Date(ParseDate(field));
        return true;
    }
  } catch (const std::exception&) {
    // fall through to error
  }
  if (error != nullptr) {
    *error = "cannot parse '" + field + "' as " + ValueTypeName(type);
  }
  return false;
}

}  // namespace

bool WriteTable(const Table& table, const std::string& path,
                const TextFormat& format, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  if (format.header) {
    for (int i = 0; i < table.schema().num_columns(); ++i) {
      if (i > 0) out << format.delimiter;
      WriteField(out, table.schema().column(i).name, format);
    }
    if (format.trailing_delimiter) out << format.delimiter;
    out << '\n';
  }
  bool ok = true;
  table.ForEach([&](const Row& row) {
    for (int i = 0; i < table.schema().num_columns(); ++i) {
      if (i > 0) out << format.delimiter;
      WriteField(out,
                 RenderValue(row[static_cast<size_t>(i)],
                             table.schema().column(i).type, format),
                 format, row[static_cast<size_t>(i)].is_null());
    }
    if (format.trailing_delimiter) out << format.delimiter;
    out << '\n';
  });
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    ok = false;
  }
  return ok;
}

bool LoadTable(Table* table, const std::string& path,
               const TextFormat& format, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string line;
  int64_t line_number = 0;
  if (format.header && std::getline(in, line)) ++line_number;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!SplitLine(line, format, &fields, &quoted)) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_number) +
                 ": malformed quoted field";
      }
      return false;
    }
    if (static_cast<int>(fields.size()) != table->schema().num_columns()) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_number) + ": expected " +
                 std::to_string(table->schema().num_columns()) +
                 " fields, got " + std::to_string(fields.size());
      }
      return false;
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      const ColumnDef& def = table->schema().column(static_cast<int>(i));
      Value value;
      std::string parse_error;
      if (!ParseValue(fields[i], quoted[i], def.type, format, &value,
                      &parse_error)) {
        if (error != nullptr) {
          *error = path + ":" + std::to_string(line_number) + ": " +
                   parse_error;
        }
        return false;
      }
      if (value.is_null() && !def.nullable) {
        if (error != nullptr) {
          *error = path + ":" + std::to_string(line_number) +
                   ": NULL in non-nullable column " + def.name;
        }
        return false;
      }
      row.push_back(std::move(value));
    }
    if (!table->Insert(std::move(row))) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_number) +
                 ": duplicate key";
      }
      return false;
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

bool WriteRelation(const Relation& relation, const std::string& path,
                   const TextFormat& format, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  for (int i = 0; i < relation.schema().num_columns(); ++i) {
    if (i > 0) out << format.delimiter;
    WriteField(out, relation.schema().column(i).ToString(), format);
  }
  if (format.trailing_delimiter) out << format.delimiter;
  out << '\n';
  for (const Row& row : relation.rows()) {
    for (int i = 0; i < relation.schema().num_columns(); ++i) {
      if (i > 0) out << format.delimiter;
      WriteField(out,
                 RenderValue(row[static_cast<size_t>(i)],
                             relation.schema().column(i).type, format),
                 format, row[static_cast<size_t>(i)].is_null());
    }
    if (format.trailing_delimiter) out << format.delimiter;
    out << '\n';
  }
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool LoadRelationRows(const std::string& path, const BoundSchema& schema,
                      const TextFormat& format, std::vector<Row>* rows,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string line;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  // Header: must name exactly the schema's tagged columns, in order.
  if (!std::getline(in, line) || !SplitLine(line, format, &fields, &quoted) ||
      static_cast<int>(fields.size()) != schema.num_columns()) {
    if (error != nullptr) *error = path + ": bad relation header";
    return false;
  }
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (fields[static_cast<size_t>(i)] != schema.column(i).ToString()) {
      if (error != nullptr) {
        *error = path + ": header column " + fields[static_cast<size_t>(i)] +
                 " does not match schema column " +
                 schema.column(i).ToString();
      }
      return false;
    }
  }
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!SplitLine(line, format, &fields, &quoted) ||
        static_cast<int>(fields.size()) != schema.num_columns()) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_number) + ": bad row";
      }
      return false;
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      Value value;
      std::string parse_error;
      if (!ParseValue(fields[i], quoted[i],
                      schema.column(static_cast<int>(i)).type, format, &value,
                      &parse_error)) {
        if (error != nullptr) {
          *error = path + ":" + std::to_string(line_number) + ": " +
                   parse_error;
        }
        return false;
      }
      row.push_back(std::move(value));
    }
    rows->push_back(std::move(row));
  }
  if (error != nullptr) error->clear();
  return true;
}

bool DumpCatalog(const Catalog& catalog, const std::string& dir,
                 const TextFormat& format, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + dir;
    return false;
  }
  for (const std::string& name : catalog.TableNames()) {
    if (!WriteTable(*catalog.GetTable(name), dir + "/" + name + ".tbl",
                    format, error)) {
      return false;
    }
  }
  return true;
}

bool LoadCatalog(Catalog* catalog, const std::string& dir,
                 const TextFormat& format, std::string* error) {
  for (const std::string& name : catalog->TableNames()) {
    std::string path = dir + "/" + name + ".tbl";
    if (!std::filesystem::exists(path)) continue;
    if (!LoadTable(catalog->GetTable(name), path, format, error)) {
      return false;
    }
  }
  return true;
}

}  // namespace io
}  // namespace ojv
