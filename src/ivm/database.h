#ifndef OJV_IVM_DATABASE_H_
#define OJV_IVM_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ivm/aggregate_view.h"
#include "ivm/maintainer.h"
#include "ivm/view_def.h"

namespace ojv {

/// Statement-level facade over a catalog and its materialized views —
/// the moral equivalent of the paper's trigger + stored-procedure setup
/// on SQL Server: every insert/delete/update statement checks foreign
/// keys, applies the change to the base table, and brings every
/// registered view (row-level and aggregated) up to date incrementally.
class Database {
 public:
  explicit Database(MaintenanceOptions default_options = MaintenanceOptions())
      : default_options_(default_options) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates and materializes a view; returns its maintainer. The view
  /// is maintained by every subsequent statement.
  ViewMaintainer* CreateMaterializedView(
      ViewDef view, const MaintenanceOptions* options = nullptr);

  /// Creates and materializes an aggregation view.
  AggViewMaintainer* CreateAggregateView(
      ViewDef base, std::vector<ColumnRef> group_by,
      std::vector<AggregateSpec> aggregates,
      const MaintenanceOptions* options = nullptr);

  ViewMaintainer* GetView(const std::string& name);
  AggViewMaintainer* GetAggregateView(const std::string& name);

  /// Drops a registered view. Returns false if unknown.
  bool DropView(const std::string& name);

  /// Outcome of one statement.
  struct StatementResult {
    int64_t rows_affected = 0;        // base-table rows
    int64_t rows_rejected = 0;        // duplicates / missing keys / FK
    double maintenance_micros = 0;    // summed over all views
    std::string error;                // non-empty => statement rejected
    bool ok() const { return error.empty(); }
  };

  /// Inserts rows, enforcing declared foreign keys (rows referencing
  /// missing parents are rejected row-by-row), then maintains all views.
  StatementResult Insert(const std::string& table,
                         const std::vector<Row>& rows);

  /// Deletes rows by key. Rejects the whole statement if a deletion
  /// would break a (non-cascading) foreign key; with cascading
  /// constraints, referencing rows are deleted too — and their views
  /// maintained — before the parent rows.
  StatementResult Delete(const std::string& table,
                         const std::vector<Row>& keys);

  /// Updates rows by key (delete+insert pair, §6 caveat 1 honored by
  /// the maintainers). Key columns must be unchanged.
  StatementResult Update(const std::string& table,
                         const std::vector<Row>& keys,
                         const std::vector<Row>& new_rows);

  /// Registered row-level views, for planners (e.g. view matching) that
  /// want to scan candidates.
  std::vector<ViewMaintainer*> Views();

  // --- multi-statement transactions (§6 caveat 3) ---
  //
  // Inside a transaction, foreign-key checking is deferred: statements
  // skip per-row enforcement and view maintenance runs on the
  // constraint-free plan sets (a deferrable constraint may be violated
  // between statements, so the FK optimizations are off). Commit()
  // validates every declared constraint; a violation rolls the whole
  // transaction back — base tables and views — via inverse statements.

  /// Starts a transaction. Returns false if one is already open.
  bool BeginTransaction();

  /// Validates deferred constraints and finishes the transaction. On
  /// violation the transaction is rolled back and the result carries
  /// the error.
  StatementResult Commit();

  /// Reverts every statement of the open transaction (inverse order).
  void Rollback();

  bool in_transaction() const { return in_transaction_; }

  /// Cumulative maintenance counters per view since creation, rendered
  /// as a table: statements observed, delta/primary/secondary row
  /// totals, and total maintenance time.
  std::string StatsReport() const;

 private:
  // FK child check for inserted rows of `table`; true if row valid.
  bool RowSatisfiesForeignKeys(const std::string& table, const Row& row);
  // Referencing child rows that block / cascade a parent delete.
  std::vector<std::pair<const ForeignKey*, std::vector<Row>>>
  ReferencingRows(const std::string& table, const std::vector<Row>& keys);

  void MaintainInsert(const std::string& table, const std::vector<Row>& rows,
                      StatementResult* result);
  void MaintainDelete(const std::string& table, const std::vector<Row>& rows,
                      StatementResult* result);

  PlanPolicy CurrentPolicy() const {
    return in_transaction_ ? PlanPolicy::kConstraintFree
                           : PlanPolicy::kDefault;
  }

  Catalog catalog_;
  MaintenanceOptions default_options_;
  std::map<std::string, std::unique_ptr<ViewMaintainer>> views_;
  std::map<std::string, std::unique_ptr<AggViewMaintainer>> agg_views_;

  struct ViewStats {
    int64_t statements = 0;
    int64_t delta_rows = 0;
    int64_t primary_rows = 0;
    int64_t secondary_rows = 0;
    double micros = 0;
  };
  void Accumulate(const std::string& view, const MaintenanceStats& stats);

  std::map<std::string, ViewStats> stats_;

  struct UndoEntry {
    enum class Kind { kDeleteInserted, kReinsertDeleted, kReverseUpdate };
    Kind kind;
    std::string table;
    std::vector<Row> rows;      // inserted rows / deleted rows / new rows
    std::vector<Row> old_rows;  // kReverseUpdate only
  };
  bool in_transaction_ = false;
  std::vector<UndoEntry> undo_log_;
};

}  // namespace ojv

#endif  // OJV_IVM_DATABASE_H_
