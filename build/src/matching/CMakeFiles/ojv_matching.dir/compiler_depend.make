# Empty compiler generated dependencies file for ojv_matching.
# This may be replaced when dependencies are built.
