file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_delete.dir/bench_fig5_delete.cc.o"
  "CMakeFiles/bench_fig5_delete.dir/bench_fig5_delete.cc.o.d"
  "bench_fig5_delete"
  "bench_fig5_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
