# Empty dependencies file for fk_random_property_test.
# This may be replaced when dependencies are built.
