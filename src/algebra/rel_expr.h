#ifndef OJV_ALGEBRA_REL_EXPR_H_
#define OJV_ALGEBRA_REL_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/scalar_expr.h"

namespace ojv {

/// Relational operators. This is exactly the algebra of the paper:
/// selection, projection, the four join types, semijoin / antijoin,
/// outer union (⊎), removal of subsumed tuples (↓), minimum union (⊕),
/// duplicate elimination (δ), and the null-if operator (λ) introduced for
/// the left-deep conversion rules.
enum class RelKind {
  kScan,        // base table
  kDeltaScan,   // the update delta of a base table, bound at eval time
  kSelect,
  kProject,
  kJoin,
  kDedup,          // δ: duplicate elimination
  kSubsumeRemove,  // ↓: removal of subsumed tuples
  kOuterUnion,     // ⊎
  kMinUnion,       // ⊕ = (l ⊎ r)↓
  kNullIf,         // λ: null out a table set on rows failing a predicate
};

enum class JoinKind {
  kInner,
  kLeftOuter,
  kRightOuter,
  kFullOuter,
  kLeftSemi,
  kLeftAnti,
};

const char* JoinKindName(JoinKind kind);

class RelExpr;
using RelExprPtr = std::shared_ptr<const RelExpr>;

/// Immutable relational expression tree. Rewrites (commuting joins,
/// outer-join weakening, left-deep conversion, FK simplification) build
/// new trees sharing untouched subtrees.
class RelExpr {
 public:
  RelKind kind() const { return kind_; }

  // kScan / kDeltaScan
  const std::string& table() const { return table_; }

  // Unary operators
  const RelExprPtr& input() const { return children_[0]; }
  // kJoin / unions
  const RelExprPtr& left() const { return children_[0]; }
  const RelExprPtr& right() const { return children_[1]; }
  const std::vector<RelExprPtr>& children() const { return children_; }

  // kSelect / kJoin / kNullIf
  const ScalarExprPtr& predicate() const { return predicate_; }
  // kJoin
  JoinKind join_kind() const { return join_kind_; }
  // kProject
  const std::vector<ColumnRef>& projection() const { return projection_; }
  // kNullIf: tables whose columns are nulled when predicate is not true
  const std::set<std::string>& null_tables() const { return null_tables_; }

  /// Base tables mentioned anywhere below (delta scans count as their
  /// table: the delta has the table's schema and tag).
  std::set<std::string> ReferencedTables() const;

  /// True if a kDeltaScan appears anywhere below.
  bool ContainsDelta() const;

  /// Compact algebra rendering, e.g.
  /// "((dT lojn U) join R) lojn S".
  std::string ToString() const;

  // --- factories ---
  static RelExprPtr Scan(std::string table);
  static RelExprPtr DeltaScan(std::string table);
  static RelExprPtr Select(RelExprPtr input, ScalarExprPtr predicate);
  static RelExprPtr Project(RelExprPtr input, std::vector<ColumnRef> columns);
  static RelExprPtr Join(JoinKind kind, RelExprPtr left, RelExprPtr right,
                         ScalarExprPtr predicate);
  static RelExprPtr Dedup(RelExprPtr input);
  static RelExprPtr SubsumeRemove(RelExprPtr input);
  static RelExprPtr OuterUnion(RelExprPtr left, RelExprPtr right);
  static RelExprPtr MinUnion(RelExprPtr left, RelExprPtr right);
  static RelExprPtr NullIf(RelExprPtr input, std::set<std::string> null_tables,
                           ScalarExprPtr predicate);

 private:
  RelExpr() = default;

  RelKind kind_ = RelKind::kScan;
  std::string table_;
  std::vector<RelExprPtr> children_;
  ScalarExprPtr predicate_;
  JoinKind join_kind_ = JoinKind::kInner;
  std::vector<ColumnRef> projection_;
  std::set<std::string> null_tables_;
};

}  // namespace ojv

#endif  // OJV_ALGEBRA_REL_EXPR_H_
