// Cost-based delta planning on a skewed workload where the static
// (syntactic) join order is pathological. The view joins a delta table D
// against an expansive table B (every D row matches ~50 B rows) and a
// selective table S (~1% of D rows have a match); the view definition
// lists B first, so the static left-deep order materializes a ~50·|Δ|
// intermediate before S filters it to ~0.5·|Δ|. The cost-based planner
// sees the ndv mismatch in the statistics catalog and joins S first,
// keeping every intermediate at or below |Δ|.

#include "bench_util.h"
#include "common/rng.h"
#include "ivm/maintainer.h"

namespace ojv {
namespace bench {
namespace {

struct Workload {
  int64_t d_rows;
  int64_t b_groups;
  int64_t b_fanout;
  int64_t s_rows;
  int64_t s_domain;
};

void CreateTables(Catalog* catalog, const Workload& w, Rng* rng) {
  catalog->CreateTable(
      "D",
      Schema({ColumnDef{"d_id", ValueType::kInt64, false},
              ColumnDef{"d_b", ValueType::kInt64, true},
              ColumnDef{"d_s", ValueType::kInt64, true}}),
      {"d_id"});
  catalog->CreateTable(
      "B",
      Schema({ColumnDef{"b_id", ValueType::kInt64, false},
              ColumnDef{"b_seq", ValueType::kInt64, false},
              ColumnDef{"b_pay", ValueType::kInt64, true}}),
      {"b_id", "b_seq"});
  catalog->CreateTable(
      "S",
      Schema({ColumnDef{"s_id", ValueType::kInt64, false},
              ColumnDef{"s_pay", ValueType::kInt64, true}}),
      {"s_id"});

  Table* d = catalog->GetTable("D");
  for (int64_t i = 0; i < w.d_rows; ++i) {
    d->Insert(Row{Value::Int64(i), Value::Int64(rng->Uniform(0, w.b_groups)),
                  Value::Int64(rng->Uniform(0, w.s_domain))});
  }
  Table* b = catalog->GetTable("B");
  for (int64_t g = 0; g < w.b_groups; ++g) {
    for (int64_t s = 0; s < w.b_fanout; ++s) {
      b->Insert(Row{Value::Int64(g), Value::Int64(s),
                    Value::Int64(rng->Uniform(0, 1000))});
    }
  }
  Table* t = catalog->GetTable("S");
  for (int64_t i = 0; i < w.s_rows; ++i) {
    // s_id values spread across [0, s_domain) so ~s_rows/s_domain of D
    // rows find a match.
    t->Insert(Row{Value::Int64(i * (w.s_domain / w.s_rows)),
                  Value::Int64(rng->Uniform(0, 1000))});
  }
}

ViewDef MakeView(const Catalog& catalog) {
  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  // B joins first in the definition — the static order inherits that.
  RelExprPtr db = RelExpr::Join(JoinKind::kInner, RelExpr::Scan("D"),
                                RelExpr::Scan("B"), eq("D", "d_b", "B", "b_id"));
  RelExprPtr tree = RelExpr::Join(JoinKind::kInner, db, RelExpr::Scan("S"),
                                  eq("D", "d_s", "S", "s_id"));
  std::vector<ColumnRef> output = {{"D", "d_id"},  {"D", "d_b"},
                                   {"D", "d_s"},   {"B", "b_id"},
                                   {"B", "b_seq"}, {"B", "b_pay"},
                                   {"S", "s_id"},  {"S", "s_pay"}};
  return ViewDef("planner_skew", tree, output, catalog);
}

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  Workload w;
  w.d_rows = static_cast<int64_t>(400000 * options.scale_factor);
  if (w.d_rows < 2000) w.d_rows = 2000;
  w.b_groups = 200;
  w.b_fanout = 50;
  w.s_rows = 1000;
  w.s_domain = 100000;
  std::printf(
      "planner skew workload: |D|=%lld, |B|=%lld (fanout %lld), "
      "|S|=%lld over domain %lld (~%.1f%% match)\n",
      static_cast<long long>(w.d_rows),
      static_cast<long long>(w.b_groups * w.b_fanout),
      static_cast<long long>(w.b_fanout), static_cast<long long>(w.s_rows),
      static_cast<long long>(w.s_domain),
      100.0 * static_cast<double>(w.s_rows) /
          static_cast<double>(w.s_domain));

  Rng rng(options.seed);
  Catalog catalog;
  CreateTables(&catalog, w, &rng);
  ViewDef view = MakeView(catalog);

  MaintenanceOptions static_options;
  static_options.planner.mode = opt::PlannerOptions::Mode::kStatic;
  MaintenanceOptions costed_options;  // cost-based is the default
  ViewMaintainer static_m(&catalog, view, static_options);
  ViewMaintainer costed_m(&catalog, view, costed_options);
  static_m.InitializeView();
  costed_m.InitializeView();

  Table* d = catalog.GetTable("D");
  int64_t next_key = w.d_rows + 1;
  auto make_batch = [&](int64_t batch) {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      rows.push_back(Row{Value::Int64(next_key++),
                         Value::Int64(rng.Uniform(0, w.b_groups)),
                         Value::Int64(rng.Uniform(0, w.s_domain))});
    }
    return rows;
  };
  auto undo = [&](const std::vector<Row>& inserted) {
    std::vector<Row> keys;
    keys.reserve(inserted.size());
    for (const Row& row : inserted) keys.push_back(Row{row[0]});
    std::vector<Row> deleted = ApplyBaseDelete(d, keys);
    static_m.OnDelete("D", deleted);
    costed_m.OnDelete("D", deleted);
  };

  // Warm-up: lets the costed maintainer build its statistics catalog and
  // plan cache outside the measured region (a real system amortizes the
  // one-time scan the same way).
  {
    std::vector<Row> inserted = ApplyBaseInsert(d, make_batch(16));
    static_m.OnInsert("D", inserted);
    costed_m.OnInsert("D", inserted);
    undo(inserted);
  }
  const opt::PlanCacheEntry* entry =
      costed_m.plan_entry("D", /*is_insert=*/true, PlanPolicy::kDefault);
  std::printf("static order: [B,S] (definition order)\n");
  std::printf("costed order: [%s]%s\n",
              entry != nullptr ? entry->plan.order.c_str() : "?",
              entry != nullptr && entry->plan.reordered ? " (reordered)" : "");

  JsonReport report("planner", options);
  PrintHeader("Cost-based vs static join order (insertions into D)",
              {"Rows", "Static", "Costed", "StaticPrim", "CostedPrim",
               "Static/Costed"});
  for (int64_t batch : options.batches) {
    std::vector<Row> inserted = ApplyBaseInsert(d, make_batch(batch));
    MaintenanceStats static_stats;
    MaintenanceStats costed_stats;
    double static_ms =
        TimeMs([&] { static_stats = static_m.OnInsert("D", inserted); });
    double costed_ms =
        TimeMs([&] { costed_stats = costed_m.OnInsert("D", inserted); });
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  static_stats.primary_micros /
                      std::max(costed_stats.primary_micros, 1.0));
    PrintRow({FormatCount(batch), FormatMs(static_ms), FormatMs(costed_ms),
              FormatMs(static_stats.primary_micros / 1000.0),
              FormatMs(costed_stats.primary_micros / 1000.0), ratio});
    report.BeginRow();
    report.Count("batch_rows", batch);
    report.Num("static_ms", static_ms);
    report.Num("costed_ms", costed_ms);
    report.Num("static_primary_ms", static_stats.primary_micros / 1000.0);
    report.Num("costed_primary_ms", costed_stats.primary_micros / 1000.0);
    report.Obj("stages_static", StagesJson(static_stats));
    report.Obj("stages_costed", StagesJson(costed_stats));
    undo(inserted);
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
