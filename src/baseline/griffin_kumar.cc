#include "baseline/griffin_kumar.h"

#include <chrono>

#include "common/check.h"
#include "exec/bound_scalar.h"
#include "exec/evaluator.h"

namespace ojv {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Null-extends `rows` (schema `from`) to the combined schema `to`.
Relation NullExtend(const Relation& input, const BoundSchema& to) {
  Relation out(to);
  std::vector<int> positions;
  for (const BoundColumn& col : input.schema().columns()) {
    positions.push_back(to.Find(col.table, col.column));
  }
  for (const Row& row : input.rows()) {
    Row padded(static_cast<size_t>(to.num_columns()), Value::Null());
    for (size_t i = 0; i < row.size(); ++i) {
      padded[static_cast<size_t>(positions[i])] = row[i];
    }
    out.Add(std::move(padded));
  }
  return out;
}

Relation Concat(Relation a, const Relation& b) {
  return Evaluator::OuterUnionOf(a, b);
}

}  // namespace

GriffinKumarMaintainer::GriffinKumarMaintainer(const Catalog* catalog,
                                               ViewDef view)
    : catalog_(catalog), view_def_(std::move(view)) {
  view_store_ = std::make_unique<MaterializedView>(view_def_.output_schema());
}

void GriffinKumarMaintainer::InitializeView() {
  view_store_ = std::make_unique<MaterializedView>(view_def_.output_schema());
  Evaluator evaluator(catalog_);
  evaluator.set_table_cache(&table_cache_);
  Relation contents = evaluator.EvalToRelation(view_def_.WithProjection());
  for (const Row& row : contents.rows()) view_store_->Insert(row);
}

MaintenanceStats GriffinKumarMaintainer::OnInsert(const std::string& table,
                                                  const std::vector<Row>& rows) {
  return Maintain(table, rows, /*is_insert=*/true);
}

MaintenanceStats GriffinKumarMaintainer::OnDelete(const std::string& table,
                                                  const std::vector<Row>& rows) {
  return Maintain(table, rows, /*is_insert=*/false);
}

MaintenanceStats GriffinKumarMaintainer::Maintain(const std::string& table,
                                                  const std::vector<Row>& rows,
                                                  bool is_insert) {
  MaintenanceStats stats;
  stats.delta_rows = static_cast<int64_t>(rows.size());
  auto start = std::chrono::steady_clock::now();
  if (rows.empty()) {
    stats.total_micros = MicrosSince(start);
    return stats;
  }

  const Table* base = catalog_->GetTable(table);
  Relation delta_t(Evaluator::SchemaFor(*base));
  for (const Row& row : rows) delta_t.Add(row);

  // Pre-update state of the updated table: remove the inserted rows /
  // re-add the deleted rows.
  Relation old_state(Evaluator::SchemaFor(*base));
  if (is_insert) {
    const std::vector<int>& key_pos = base->key_positions();
    base->ForEach([&](const Row& row) {
      for (const Row& drow : rows) {
        bool same = true;
        for (int p : key_pos) {
          if (row[static_cast<size_t>(p)] != drow[static_cast<size_t>(p)]) {
            same = false;
            break;
          }
        }
        if (same) return;
      }
      old_state.Add(row);
    });
  } else {
    base->ForEach([&](const Row& row) { old_state.Add(row); });
    for (const Row& row : rows) old_state.Add(row);
  }

  // Evaluators for post-update ("new") and pre-update ("old") states.
  Evaluator eval_new(catalog_);
  eval_new.set_table_cache(&table_cache_);
  Evaluator eval_old(catalog_);
  eval_old.set_table_cache(&table_cache_);
  eval_old.OverrideTable(table, &old_state);

  // Change propagation. GK computes everything from base tables: at each
  // node above the update we re-evaluate the sibling subtree, and at
  // outer-join nodes also the updated-side subtree in both states.
  struct Propagator {
    const std::string& table;
    const Relation& delta_t;
    bool is_insert;
    Evaluator& eval_new;
    Evaluator& eval_old;

    DeltaPair Run(const RelExprPtr& expr) {
      switch (expr->kind()) {
        case RelKind::kScan: {
          OJV_CHECK(expr->table() == table, "propagation reached wrong leaf");
          DeltaPair d;
          if (is_insert) {
            d.ins = delta_t;
            d.del = Relation(delta_t.schema());
          } else {
            d.ins = Relation(delta_t.schema());
            d.del = delta_t;
          }
          return d;
        }
        case RelKind::kSelect: {
          // σ distributes over both delta sets.
          DeltaPair d = Run(expr->input());
          d.ins = FilterRelation(d.ins, expr->predicate());
          d.del = FilterRelation(d.del, expr->predicate());
          return d;
        }
        case RelKind::kJoin:
          return RunJoin(expr);
        default:
          OJV_CHECK(false, "unexpected node in view tree");
      }
    }

    static Relation FilterRelation(const Relation& input,
                                   const ScalarExprPtr& pred) {
      BoundScalar compiled = BoundScalar::Compile(pred, input.schema());
      Relation out(input.schema());
      for (const Row& row : input.rows()) {
        if (compiled.EvalBool(row)) out.Add(row);
      }
      return out;
    }

    // Joins `left` (relation) with `right` (relation) using an ad-hoc
    // plan through the evaluator.
    static Relation JoinRel(const Relation& l, const Relation& r,
                            JoinKind kind, const ScalarExprPtr& pred) {
      Evaluator ev(nullptr);
      ev.BindDelta("#l", &l);
      ev.BindDelta("#r", &r);
      return ev.EvalToRelation(RelExpr::Join(kind, RelExpr::DeltaScan("#l"),
                                   RelExpr::DeltaScan("#r"), pred));
    }

    DeltaPair RunJoin(const RelExprPtr& expr) {
      const bool on_left =
          expr->left()->ReferencedTables().count(table) > 0;
      const RelExprPtr& delta_side = on_left ? expr->left() : expr->right();
      const RelExprPtr& other_side = on_left ? expr->right() : expr->left();
      DeltaPair d = Run(delta_side);
      // GK property (a): the sibling is recomputed from base tables.
      Relation other = eval_new.EvalToRelation(other_side);

      JoinKind kind = expr->join_kind();
      const ScalarExprPtr& pred = expr->predicate();

      // Orient so the delta side is "e1": with the delta on the right we
      // mirror the join kind. Row identity is unaffected (columns are
      // identified by table tags, not positions).
      if (!on_left) {
        if (kind == JoinKind::kLeftOuter) kind = JoinKind::kRightOuter;
        else if (kind == JoinKind::kRightOuter) kind = JoinKind::kLeftOuter;
      }

      const bool preserves_delta_side = kind == JoinKind::kLeftOuter ||
                                        kind == JoinKind::kFullOuter;
      const bool preserves_other_side = kind == JoinKind::kRightOuter ||
                                        kind == JoinKind::kFullOuter;

      // Outer-join behavior on the delta side distributes exactly.
      JoinKind pair_kind =
          preserves_delta_side ? JoinKind::kLeftOuter : JoinKind::kInner;
      Relation ins_pairs = JoinRel(d.ins, other, pair_kind, pred);
      Relation del_pairs = JoinRel(d.del, other, pair_kind, pred);

      DeltaPair out;

      // Combined schema of this join's output.
      BoundSchema combined = ins_pairs.schema();

      out.ins = std::move(ins_pairs);
      out.del = std::move(del_pairs);

      if (preserves_other_side) {
        // Fix-ups for `other` tuples whose matched status flips. GK
        // property (a) again: both states of the delta-side subtree are
        // recomputed from base tables.
        Relation e1_old = eval_old.EvalToRelation(delta_side);
        Relation e1_new = eval_new.EvalToRelation(delta_side);
        // Newly unmatched: matched a deleted tuple, match nothing now.
        Relation newly_unmatched = JoinRel(
            JoinRel(other, d.del, JoinKind::kLeftSemi, pred), e1_new,
            JoinKind::kLeftAnti, pred);
        // Newly matched: matches an inserted tuple, matched nothing before.
        Relation newly_matched = JoinRel(
            JoinRel(other, d.ins, JoinKind::kLeftSemi, pred), e1_old,
            JoinKind::kLeftAnti, pred);
        out.ins = Concat(std::move(out.ins), NullExtend(newly_unmatched, combined));
        out.del = Concat(std::move(out.del), NullExtend(newly_matched, combined));
      }
      return out;
    }
  };

  Propagator prop{table, delta_t, is_insert, eval_new, eval_old};
  DeltaPair result = prop.Run(view_def_.tree());

  // Project to the view's output schema and apply.
  const BoundSchema& out_schema = view_def_.output_schema();
  auto project = [&](const Relation& rel) {
    Relation out(out_schema);
    std::vector<int> positions;
    for (const BoundColumn& col : out_schema.columns()) {
      positions.push_back(rel.schema().Find(col.table, col.column));
    }
    for (const Row& row : rel.rows()) {
      Row projected(static_cast<size_t>(out_schema.num_columns()),
                    Value::Null());
      for (size_t i = 0; i < positions.size(); ++i) {
        if (positions[i] >= 0) {
          projected[i] = row[static_cast<size_t>(positions[i])];
        }
      }
      out.Add(std::move(projected));
    }
    return out;
  };

  Relation del_rows = project(result.del);
  Relation ins_rows = project(result.ins);
  for (const Row& row : del_rows.rows()) {
    OJV_CHECK(view_store_->DeleteMatching(row),
              "GK delete row missing from view");
  }
  for (const Row& row : ins_rows.rows()) {
    view_store_->Insert(row);
  }
  stats.primary_rows = ins_rows.size() + del_rows.size();
  stats.total_micros = MicrosSince(start);
  return stats;
}

}  // namespace ojv
