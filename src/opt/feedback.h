#ifndef OJV_OPT_FEEDBACK_H_
#define OJV_OPT_FEEDBACK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "opt/plan_cache.h"

namespace ojv {
namespace opt {

/// One main-path join step's estimate vs. what actually ran.
struct StepFeedback {
  std::string right_table;
  double est_rows = 0;
  double actual_rows = 0;
  double actual_fanout = 0;  // rows out per left-input row (post floor)
};

struct FeedbackResult {
  std::vector<StepFeedback> steps;
  /// Max over matched join nodes of the estimate/actual row-count ratio
  /// (smoothed by +1 so empty results don't divide by zero). 1.0 = all
  /// estimates exact; compare against PlannerOptions::replan_drift.
  double max_drift = 1.0;
};

/// Harvests actual per-operator cardinalities for one evaluation of
/// `plan.expr` from recorded trace events (LEO-style feedback). `events`
/// must be the events recorded during that evaluation, in record order;
/// non-exec events are ignored. The evaluator records exec spans in
/// post-order, so zipping a post-order walk of the plan against the
/// event sequence pairs each node with its span. Join steps whose right
/// operand is a single base table yield an observed fanout keyed by that
/// table; everything else only contributes to drift.
FeedbackResult HarvestFeedback(const PlannedDelta& plan,
                               const std::vector<obs::TraceEvent>& events);

/// Folds observed fanouts into the plan-cache EMA:
/// ema = alpha * actual + (1 - alpha) * old (seeded with actual).
void UpdateFanoutEma(const FeedbackResult& feedback, double alpha,
                     std::unordered_map<std::string, double>* ema);

}  // namespace opt
}  // namespace ojv

#endif  // OJV_OPT_FEEDBACK_H_
