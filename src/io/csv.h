#ifndef OJV_IO_CSV_H_
#define OJV_IO_CSV_H_

#include <string>

#include "catalog/catalog.h"
#include "exec/relation.h"

namespace ojv {
namespace io {

/// Delimited-text import/export for tables and relations.
///
/// The default format is TPC-H dbgen's `.tbl`: one row per line, fields
/// separated by '|', with a trailing separator and no header or quoting
/// (dbgen data never contains the delimiter). With `header=true` and
/// `delimiter=','` it reads/writes plain CSV with a header row; fields
/// containing the delimiter, quotes, or newlines are double-quoted with
/// "" escaping on write and unescaped on read.
struct TextFormat {
  char delimiter = '|';
  bool header = false;
  bool trailing_delimiter = true;  // dbgen writes "a|b|c|"
  /// Spelling of NULL fields. dbgen has no NULLs; for round-tripping
  /// relations we write this marker (and read it back as NULL).
  std::string null_marker = "\\N";
};

/// Writes all live rows of `table` to `path`. Values are rendered per
/// their declared column type (dates as YYYY-MM-DD). Returns false and
/// fills *error on I/O failure.
bool WriteTable(const Table& table, const std::string& path,
                const TextFormat& format, std::string* error);

/// Appends rows parsed from `path` into `table` (types taken from the
/// table's schema; empty field or the null marker = NULL, rejected for
/// non-nullable columns). Returns false and fills *error on parse or
/// constraint failure; on failure the table keeps the rows loaded so
/// far.
bool LoadTable(Table* table, const std::string& path,
               const TextFormat& format, std::string* error);

/// Writes a relation snapshot (e.g. a materialized view's contents).
/// A header is always written for relations: "table.column" names.
bool WriteRelation(const Relation& relation, const std::string& path,
                   const TextFormat& format, std::string* error);

/// Reads rows previously written by WriteRelation back into `rows`,
/// validating the header against `schema` (same tagged columns in the
/// same order). Types are taken from the schema. Used to restore
/// materialized views without recomputation.
bool LoadRelationRows(const std::string& path, const BoundSchema& schema,
                      const TextFormat& format, std::vector<Row>* rows,
                      std::string* error);

/// Writes every table of the catalog as <dir>/<table>.tbl. Creates the
/// directory if needed.
bool DumpCatalog(const Catalog& catalog, const std::string& dir,
                 const TextFormat& format, std::string* error);

/// Loads every <dir>/<table>.tbl present into the (already created)
/// tables of `catalog`. Missing files are skipped silently.
bool LoadCatalog(Catalog* catalog, const std::string& dir,
                 const TextFormat& format, std::string* error);

}  // namespace io
}  // namespace ojv

#endif  // OJV_IO_CSV_H_
