#ifndef OJV_EXEC_BOUND_SCALAR_H_
#define OJV_EXEC_BOUND_SCALAR_H_

#include <memory>
#include <vector>

#include "algebra/scalar_expr.h"
#include "exec/relation.h"

namespace ojv {

/// A scalar expression compiled against a bound schema: column references
/// are resolved to row positions once, so per-row evaluation does no name
/// lookups. Evaluation follows SQL three-valued logic; `EvalBool` returns
/// true only when the expression evaluates to TRUE (UNKNOWN behaves like
/// FALSE, which is what makes all our predicates null-rejecting).
class BoundScalar {
 public:
  /// Compiles `expr` against `schema`. Aborts if a referenced column is
  /// not present in the schema.
  static BoundScalar Compile(const ScalarExprPtr& expr,
                             const BoundSchema& schema);

  /// Three-valued evaluation; NULL Value encodes UNKNOWN for booleans,
  /// which are otherwise int64 0/1.
  Value Eval(const Row& row) const;

  /// True iff Eval(row) is a non-null truthy value.
  bool EvalBool(const Row& row) const;

  /// Default-constructed instance evaluates as the literal NULL; useful
  /// as a placeholder before Compile.
  BoundScalar() = default;

 private:
  ScalarKind kind_ = ScalarKind::kLiteral;
  int position_ = -1;  // kColumn
  Value literal_;      // kLiteral
  CompareOp compare_op_ = CompareOp::kEq;
  std::vector<BoundScalar> children_;
};

}  // namespace ojv

#endif  // OJV_EXEC_BOUND_SCALAR_H_
