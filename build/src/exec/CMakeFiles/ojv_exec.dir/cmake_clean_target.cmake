file(REMOVE_RECURSE
  "libojv_exec.a"
)
