file(REMOVE_RECURSE
  "CMakeFiles/bench_secondary_delta.dir/bench_secondary_delta.cc.o"
  "CMakeFiles/bench_secondary_delta.dir/bench_secondary_delta.cc.o.d"
  "bench_secondary_delta"
  "bench_secondary_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secondary_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
