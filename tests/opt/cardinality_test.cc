// Cardinality estimator units: delta leaves, key/FK joins, selections,
// and the outer-join (null-extension) floor.

#include "opt/cardinality.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace ojv {
namespace opt {
namespace {

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // O: 1000 rows with unique o_id (the "one" side of an FK).
    catalog_.CreateTable(
        "O",
        Schema({ColumnDef{"o_id", ValueType::kInt64, false},
                ColumnDef{"o_a", ValueType::kInt64, true}}),
        {"o_id"});
    Table* o = catalog_.GetTable("O");
    for (int64_t i = 0; i < 1000; ++i) {
      o->Insert(Row{Value::Int64(i), Value::Int64(i % 20)});
    }
    // L: 5000 rows, l_o an FK-style reference into O (every o_id hit 5x).
    catalog_.CreateTable(
        "L",
        Schema({ColumnDef{"l_id", ValueType::kInt64, false},
                ColumnDef{"l_o", ValueType::kInt64, true}}),
        {"l_id"});
    Table* l = catalog_.GetTable("L");
    for (int64_t i = 0; i < 5000; ++i) {
      l->Insert(Row{Value::Int64(i), Value::Int64(i % 1000)});
    }
    // S: sparse dimension — 100 unique keys over a domain far larger
    // than what L references, so most probes miss.
    catalog_.CreateTable(
        "S",
        Schema({ColumnDef{"s_id", ValueType::kInt64, false}}), {"s_id"});
    Table* s = catalog_.GetTable("S");
    for (int64_t i = 0; i < 100; ++i) {
      s->Insert(Row{Value::Int64(i * 1000)});
    }
    stats_ = std::make_unique<StatsCatalog>(&catalog_);
  }

  Catalog catalog_;
  std::unique_ptr<StatsCatalog> stats_;
};

TEST_F(CardinalityTest, ScanAndDeltaScan) {
  CardinalityEstimator est(stats_.get());
  EXPECT_NEAR(est.Estimate(RelExpr::Scan("O")), 1000.0, 1.0);
  // Delta cardinality is exact — the statement's own rows.
  est.SetDeltaRows("L", 42);
  EXPECT_DOUBLE_EQ(est.Estimate(RelExpr::DeltaScan("L")), 42.0);
}

TEST_F(CardinalityTest, FkJoinHasUnitFanout) {
  // ΔL ⋈ O on l_o = o_id: every delta row matches exactly one O row, and
  // the ndv formula |O| / max(ndv(l_o), ndv(o_id)) = 1000/1000 sees it.
  CardinalityEstimator est(stats_.get());
  est.SetDeltaRows("L", 100);
  RelExprPtr join =
      RelExpr::Join(JoinKind::kInner, RelExpr::DeltaScan("L"),
                    RelExpr::Scan("O"), Eq("L", "l_o", "O", "o_id"));
  double card = est.Estimate(join);
  EXPECT_GT(card, 100.0 * 0.5);
  EXPECT_LT(card, 100.0 * 2.0);
}

TEST_F(CardinalityTest, SelectiveJoinShrinksOutput) {
  // ΔL ⋈ S on l_o = s_id: S has 100 keys spread over a much wider
  // domain, so per-row fanout is |S|/max(ndv(l_o), ndv(s_id)) = 0.1.
  CardinalityEstimator est(stats_.get());
  est.SetDeltaRows("L", 100);
  RelExprPtr join =
      RelExpr::Join(JoinKind::kInner, RelExpr::DeltaScan("L"),
                    RelExpr::Scan("S"), Eq("L", "l_o", "S", "s_id"));
  double card = est.Estimate(join);
  EXPECT_LT(card, 30.0);  // ≈ 10 expected, far below |Δ|
}

TEST_F(CardinalityTest, NullExtensionFloorsAtLeftInput) {
  // The same selective join as a left outer join: unmatched delta rows
  // survive null-extended, so the estimate floors at |Δ|.
  CardinalityEstimator est(stats_.get());
  est.SetDeltaRows("L", 100);
  RelExprPtr loj =
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::DeltaScan("L"),
                    RelExpr::Scan("S"), Eq("L", "l_o", "S", "s_id"));
  EXPECT_DOUBLE_EQ(est.Estimate(loj), 100.0);
}

TEST_F(CardinalityTest, EqLiteralSelectivityUsesNdv) {
  // σ_{o_a = 5}(O): o_a has 20 distinct values → about |O|/20 rows.
  CardinalityEstimator est(stats_.get());
  RelExprPtr sel = RelExpr::Select(
      RelExpr::Scan("O"),
      ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column("O", "o_a"),
                          ScalarExpr::Literal(Value::Int64(5))));
  double card = est.Estimate(sel);
  EXPECT_GT(card, 25.0);
  EXPECT_LT(card, 100.0);
}

TEST_F(CardinalityTest, RangePredicateInterpolates) {
  // o_id is uniform on [0, 999]; o_id < 100 should estimate ~10%.
  CardinalityEstimator est(stats_.get());
  RelExprPtr sel = RelExpr::Select(
      RelExpr::Scan("O"),
      ScalarExpr::Compare(CompareOp::kLt, ScalarExpr::Column("O", "o_id"),
                          ScalarExpr::Literal(Value::Int64(100))));
  double card = est.Estimate(sel);
  EXPECT_GT(card, 50.0);
  EXPECT_LT(card, 200.0);
}

TEST_F(CardinalityTest, FanoutOverrideWinsOverNdv) {
  // Feedback injection: an observed fanout of 7 for the O step replaces
  // the ndv-based unit fanout.
  CardinalityEstimator est(stats_.get());
  est.SetDeltaRows("L", 10);
  est.SetFanoutOverride("O", 7.0);
  RelExprPtr join =
      RelExpr::Join(JoinKind::kInner, RelExpr::DeltaScan("L"),
                    RelExpr::Scan("O"), Eq("L", "l_o", "O", "o_id"));
  EXPECT_DOUBLE_EQ(est.Estimate(join), 70.0);
}

TEST_F(CardinalityTest, UnknownTableUsesDefault) {
  CardinalityEstimator est(stats_.get());
  EXPECT_DOUBLE_EQ(est.Estimate(RelExpr::Scan("nope")), 1000.0);
}

}  // namespace
}  // namespace opt
}  // namespace ojv
