file(REMOVE_RECURSE
  "CMakeFiles/ojv_catalog.dir/catalog.cc.o"
  "CMakeFiles/ojv_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/ojv_catalog.dir/schema.cc.o"
  "CMakeFiles/ojv_catalog.dir/schema.cc.o.d"
  "CMakeFiles/ojv_catalog.dir/table.cc.o"
  "CMakeFiles/ojv_catalog.dir/table.cc.o.d"
  "libojv_catalog.a"
  "libojv_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
