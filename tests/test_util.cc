#include "test_util.h"

#include "ivm/maintainer.h"

namespace ojv {
namespace testing_util {
namespace {

Schema MakeRstuTableSchema(const std::string& p) {
  return Schema({ColumnDef{p + "_id", ValueType::kInt64, false},
                 ColumnDef{p + "_a", ValueType::kInt64, true},
                 ColumnDef{p + "_b", ValueType::kInt64, true},
                 ColumnDef{p + "_v", ValueType::kInt64, true}});
}

}  // namespace

void CreateRstuSchema(Catalog* catalog) {
  for (const char* name : {"R", "S", "T", "U"}) {
    std::string p(1, static_cast<char>(std::tolower(name[0])));
    catalog->CreateTable(name, MakeRstuTableSchema(p),
                         {p + "_id"});
  }
}

ViewDef MakeV1(const Catalog& catalog) {
  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  RelExprPtr rs =
      RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("R"),
                    RelExpr::Scan("S"), eq("R", "r_a", "S", "s_a"));
  RelExprPtr tu =
      RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("T"),
                    RelExpr::Scan("U"), eq("T", "t_a", "U", "u_a"));
  RelExprPtr tree = RelExpr::Join(JoinKind::kLeftOuter, rs, tu,
                                  eq("R", "r_b", "T", "t_b"));
  std::vector<ColumnRef> output;
  for (const char* name : {"R", "S", "T", "U"}) {
    std::string p(1, static_cast<char>(std::tolower(name[0])));
    for (const char* suffix : {"_id", "_a", "_b", "_v"}) {
      output.push_back(ColumnRef{name, p + suffix});
    }
  }
  return ViewDef("v1", tree, std::move(output), catalog);
}

std::vector<Row> RandomRstuRows(const std::string&, Rng* rng, int n,
                                int domain, int64_t* next_key) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  auto join_value = [&]() {
    // Join columns are nullable: ~10% NULLs exercise the SQL equality
    // and null-extension paths (NULL never joins, so such rows become
    // orphans of outer joins).
    if (rng->Chance(0.1)) return Value::Null();
    return Value::Int64(rng->Uniform(0, domain - 1));
  };
  for (int i = 0; i < n; ++i) {
    rows.push_back(Row{Value::Int64((*next_key)++), join_value(), join_value(),
                       Value::Int64(rng->Uniform(0, 999))});
  }
  return rows;
}

void PopulateRandomRstu(Catalog* catalog, Rng* rng, int rows_per_table,
                        int domain) {
  int64_t next_key = 1;
  for (const char* name : {"R", "S", "T", "U"}) {
    Table* table = catalog->GetTable(name);
    for (Row& row :
         RandomRstuRows(name, rng, rows_per_table, domain, &next_key)) {
      table->Insert(std::move(row));
    }
  }
}

std::vector<std::string> CreateRandomSchema(Catalog* catalog, int num_tables) {
  std::vector<std::string> names;
  for (int i = 0; i < num_tables; ++i) {
    std::string name(1, static_cast<char>('A' + i));
    std::string p(1, static_cast<char>('a' + i));
    catalog->CreateTable(name, MakeRstuTableSchema(p), {p + "_id"});
    names.push_back(name);
  }
  return names;
}

ViewDef RandomSpojView(const Catalog& catalog,
                       const std::vector<std::string>& tables, Rng* rng) {
  auto col = [](const std::string& table, const char* suffix) {
    std::string p(1, static_cast<char>(std::tolower(table[0])));
    return ScalarExpr::Column(table, p + suffix);
  };

  struct Node {
    RelExprPtr expr;
    std::vector<std::string> tables;
  };
  std::vector<Node> forest;
  for (const std::string& t : tables) {
    RelExprPtr leaf = RelExpr::Scan(t);
    if (rng->Chance(0.3)) {
      // Single-table selection, e.g. a_a <= k (null-rejecting).
      leaf = RelExpr::Select(
          leaf, ScalarExpr::Compare(
                    CompareOp::kLe, col(t, rng->Chance(0.5) ? "_a" : "_b"),
                    ScalarExpr::Literal(Value::Int64(rng->Uniform(1, 3)))));
    }
    forest.push_back(Node{leaf, {t}});
  }
  while (forest.size() > 1) {
    size_t i = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(forest.size()) - 1));
    std::swap(forest[i], forest.back());
    Node right = std::move(forest.back());
    forest.pop_back();
    size_t j = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(forest.size()) - 1));
    Node& left = forest[j];

    const std::string& lt = left.tables[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(left.tables.size()) - 1))];
    const std::string& rt = right.tables[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(right.tables.size()) - 1))];
    ScalarExprPtr pred = ScalarExpr::Compare(
        CompareOp::kEq, col(lt, rng->Chance(0.5) ? "_a" : "_b"),
        col(rt, rng->Chance(0.5) ? "_a" : "_b"));
    JoinKind kinds[] = {JoinKind::kInner, JoinKind::kLeftOuter,
                        JoinKind::kRightOuter, JoinKind::kFullOuter};
    JoinKind kind = kinds[rng->Uniform(0, 3)];
    left.expr = RelExpr::Join(kind, left.expr, right.expr, pred);
    left.tables.insert(left.tables.end(), right.tables.begin(),
                       right.tables.end());
    if (rng->Chance(0.15)) {
      // Selection above a join (null-rejecting single-table predicate):
      // exercises σ on delta paths and term pruning above outer joins.
      const std::string& st = left.tables[static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(left.tables.size()) - 1))];
      left.expr = RelExpr::Select(
          left.expr,
          ScalarExpr::Compare(CompareOp::kLe,
                              col(st, rng->Chance(0.5) ? "_a" : "_b"),
                              ScalarExpr::Literal(
                                  Value::Int64(rng->Uniform(1, 3)))));
    }
  }

  std::vector<ColumnRef> output;
  for (const std::string& t : tables) {
    std::string p(1, static_cast<char>(std::tolower(t[0])));
    for (const char* suffix : {"_id", "_a", "_b", "_v"}) {
      output.push_back(ColumnRef{t, p + suffix});
    }
  }
  return ViewDef("random_view", forest[0].expr, std::move(output), catalog);
}

std::vector<Row> SampleKeys(const Table& table, Rng* rng, int n) {
  std::vector<Row> keys;
  table.ForEach([&](const Row& row) {
    Row key;
    for (int p : table.key_positions()) {
      key.push_back(row[static_cast<size_t>(p)]);
    }
    keys.push_back(std::move(key));
  });
  // Fisher-Yates prefix shuffle.
  for (size_t i = 0; i < keys.size() && static_cast<int>(i) < n; ++i) {
    size_t j = static_cast<size_t>(
        rng->Uniform(static_cast<int64_t>(i),
                     static_cast<int64_t>(keys.size()) - 1));
    std::swap(keys[i], keys[j]);
  }
  if (static_cast<int>(keys.size()) > n) {
    keys.resize(static_cast<size_t>(n));
  }
  return keys;
}

}  // namespace testing_util
}  // namespace ojv
