#ifndef OJV_IVM_PRIMARY_DELTA_H_
#define OJV_IVM_PRIMARY_DELTA_H_

#include <string>

#include "algebra/rel_expr.h"
#include "ivm/view_def.h"

namespace ojv {

/// Constructs the ΔV^D expression of paper §4 for an update of
/// `updated_table`:
///
///  1. Commute joins along the path from the updated table to the root so
///     the updated side is always the left input (flipping left outer ↔
///     right outer).
///  2. Along that path, weaken full outer joins to left outer joins and
///     right outer joins to inner joins — discarding exactly the tuples
///     that are null-extended on the updated table and hence can never be
///     part of V^D.
///  3. Substitute ΔT (a delta scan) for the table's scan.
///
/// The resulting tree has only selects, inner joins and left outer joins
/// on its leftmost path, with the delta as the leftmost leaf. No
/// projection is applied; the caller projects to the view's output.
RelExprPtr BuildPrimaryDeltaExpr(const ViewDef& view,
                                 const std::string& updated_table);

/// Same rewrite but keeping the base-table scan instead of the delta:
/// the V^D expression itself (equation (3) in the paper). Used by tests
/// to validate V^D = ⊕ of directly affected terms.
RelExprPtr BuildDirectPartExpr(const ViewDef& view,
                               const std::string& updated_table);

}  // namespace ojv

#endif  // OJV_IVM_PRIMARY_DELTA_H_
