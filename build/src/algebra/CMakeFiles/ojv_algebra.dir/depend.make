# Empty dependencies file for ojv_algebra.
# This may be replaced when dependencies are built.
