#include "multiview/shared_plan.h"

#include <algorithm>

namespace ojv {
namespace multiview {

const SharedPlan& SharedPlanBuilder::Get(
    const ViewGroup& group, const std::string& table, bool constraint_free,
    const std::map<std::string, RelExprPtr>& member_exprs) {
  if (cached_version_ != catalog_->version()) {
    cache_.clear();
    cached_version_ = catalog_->version();
  }
  std::string key =
      group.id + "/" + table + "/" + (constraint_free ? "cf" : "d");
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, Build(table, member_exprs)).first;
  }
  return it->second;
}

SharedPlan SharedPlanBuilder::Build(
    const std::string& table,
    const std::map<std::string, RelExprPtr>& member_exprs) const {
  SharedPlan plan;

  // Re-fingerprint the actual expressions being maintained (the policy
  // in force may differ from the default-policy prints used for
  // clustering) and cluster by first-step signature.
  std::map<std::string, opt::DeltaFingerprint> fps;
  std::map<std::string, std::vector<std::string>> clusters;  // sig1 -> views
  for (const auto& [view, expr] : member_exprs) {
    opt::DeltaFingerprint fp = opt::FingerprintDelta(expr, table);
    if (!fp.ok || fp.steps.empty()) continue;
    clusters[fp.Signature(1)].push_back(view);
    fps.emplace(view, std::move(fp));
  }

  // Largest cluster wins (ties: smallest signature — map order). Views
  // outside it keep their independent plans for this table.
  const std::vector<std::string>* best = nullptr;
  for (const auto& [sig, views] : clusters) {
    if (views.size() < 2) continue;
    if (best == nullptr || views.size() > best->size()) best = &views;
  }
  if (best == nullptr) return plan;

  // Longest common step prefix across every cluster member.
  const opt::DeltaFingerprint& first = fps.at(best->front());
  size_t len = first.steps.size();
  for (const std::string& view : *best) {
    len = std::min(len, CommonPrefixLength(first, fps.at(view)));
  }
  if (len == 0) return plan;

  plan.prefix_len = len;
  plan.prefix = opt::BuildPrefixExpr(first, len);
  plan.prefix_signature = first.Signature(len);
  for (const std::string& view : *best) {
    plan.suffixes[view] =
        opt::BuildSuffixExpr(fps.at(view), len, opt::kSharedPrefixLeaf);
  }
  return plan;
}

}  // namespace multiview
}  // namespace ojv
