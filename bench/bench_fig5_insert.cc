// Reproduces Figure 5(a): maintenance cost for view V3 when inserting
// 60 / 600 / 6,000 / 60,000 lineitem rows, for
//   - the core (inner-join) view, maintained incrementally,
//   - the outer-join view with our algorithm,
//   - the outer-join view with the Griffin–Kumar baseline.
//
// The paper's claim to reproduce: the outer-join view costs essentially
// the same as the core view, while GK deteriorates with batch size.
// All three maintainers observe the same base-table updates; after each
// measurement the batch is deleted again so every batch size starts from
// the same database state.

#include "baseline/griffin_kumar.h"
#include "bench_util.h"
#include "ivm/maintainer.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f (lineitem rows: ~%lld)\n", options.scale_factor,
              static_cast<long long>(options.scale_factor * 6000000));
  TpchInstance instance(options);
  Table* lineitem = instance.catalog.GetTable("lineitem");

  ViewDef v3 = tpch::MakeV3(instance.catalog);
  ViewDef core = v3.CoreView(instance.catalog);

  ViewMaintainer core_maintainer(&instance.catalog, core,
                                 MaintenanceOptions());
  ViewMaintainer oj_maintainer(&instance.catalog, v3, MaintenanceOptions());
  MaintenanceOptions par_options;
  par_options.exec.num_threads = options.threads;
  ViewMaintainer par_maintainer(&instance.catalog, v3, par_options);
  GriffinKumarMaintainer gk_maintainer(&instance.catalog, v3);
  core_maintainer.InitializeView();
  oj_maintainer.InitializeView();
  par_maintainer.InitializeView();
  gk_maintainer.InitializeView();

  JsonReport report("fig5_insert", options);
  char par_col[32];
  std::snprintf(par_col, sizeof(par_col), "OJ(par%d)", options.threads);
  PrintHeader("Figure 5(a): V3 maintenance cost, lineitem insertions",
              {"Rows", "CoreView", "OuterJoin", par_col, "OJ(GK)", "GK/ours"});
  for (int64_t batch : options.batches) {
    std::vector<Row> rows = instance.refresh->NewLineitems(batch);
    std::vector<Row> inserted = ApplyBaseInsert(lineitem, rows);

    MaintenanceStats oj_stats;
    MaintenanceStats par_stats;
    double core_ms =
        TimeMs([&] { core_maintainer.OnInsert("lineitem", inserted); });
    double oj_ms =
        TimeMs([&] { oj_stats = oj_maintainer.OnInsert("lineitem", inserted); });
    double par_ms = TimeMs(
        [&] { par_stats = par_maintainer.OnInsert("lineitem", inserted); });
    double gk_ms =
        TimeMs([&] { gk_maintainer.OnInsert("lineitem", inserted); });

    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx", gk_ms / std::max(oj_ms, 1e-3));
    PrintRow({FormatCount(batch), FormatMs(core_ms), FormatMs(oj_ms),
              FormatMs(par_ms), FormatMs(gk_ms), ratio});
    report.BeginRow();
    report.Count("batch_rows", batch);
    report.Num("core_ms", core_ms);
    report.Num("ours_ms", oj_ms);
    report.Num("ours_parallel_ms", par_ms);
    report.Num("gk_ms", gk_ms);
    report.Obj("stages", StagesJson(oj_stats));
    report.Obj("stages_parallel", StagesJson(par_stats));

    // Restore the database and all four views.
    std::vector<Row> keys;
    keys.reserve(inserted.size());
    for (const Row& row : inserted) {
      keys.push_back(Row{row[0], row[3]});  // (l_orderkey, l_linenumber)
    }
    std::vector<Row> deleted = ApplyBaseDelete(lineitem, keys);
    core_maintainer.OnDelete("lineitem", deleted);
    oj_maintainer.OnDelete("lineitem", deleted);
    par_maintainer.OnDelete("lineitem", deleted);
    gk_maintainer.OnDelete("lineitem", deleted);
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
