#include "deferred/delta_log.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace ojv {
namespace deferred {
namespace {

/// First pending entry of a table deque: entries are in ascending seq
/// order, so binary-search past the consumer's high-water mark.
std::deque<DeltaEntry>::const_iterator FirstPending(
    const std::deque<DeltaEntry>& entries, uint64_t hwm) {
  return std::upper_bound(
      entries.begin(), entries.end(), hwm,
      [](uint64_t mark, const DeltaEntry& e) { return mark < e.seq; });
}

}  // namespace

uint64_t DeltaLog::Append(const std::string& table, DeltaOp op,
                          const std::vector<Row>& rows, bool update_pair) {
  std::deque<DeltaEntry>& dest = tables_[table];
  auto now = std::chrono::steady_clock::now();
  for (const Row& row : rows) {
    dest.push_back(DeltaEntry{next_seq_++, op, row, update_pair, now});
  }
  if constexpr (obs::kEnabled) {
    // The histogram keeps the depth *distribution* over appends; the
    // gauge is the live level (it also drops on TruncateConsumed, which
    // the append-only histogram cannot show).
    int64_t depth_now = size();
    static obs::Histogram& depth =
        obs::Registry::Global().GetHistogram("ojv.deferred.log_depth");
    depth.Record(depth_now);
    static obs::Gauge& depth_gauge =
        obs::Registry::Global().GetGauge("ojv.deferred.log_depth_rows");
    depth_gauge.Set(depth_now);
  }
  return tail();
}

void DeltaLog::RegisterConsumer(const std::string& view) {
  high_water_[view] = tail();
}

void DeltaLog::UnregisterConsumer(const std::string& view) {
  high_water_.erase(view);
  TruncateConsumed();
}

bool DeltaLog::IsConsumer(const std::string& view) const {
  return high_water_.count(view) > 0;
}

uint64_t DeltaLog::high_water_mark(const std::string& view) const {
  auto it = high_water_.find(view);
  OJV_CHECK(it != high_water_.end(), "unknown delta-log consumer");
  return it->second;
}

std::map<std::string, std::vector<DeltaEntry>> DeltaLog::PendingFor(
    const std::string& view, const std::set<std::string>& tables) const {
  uint64_t hwm = high_water_mark(view);
  std::map<std::string, std::vector<DeltaEntry>> out;
  for (const auto& [table, entries] : tables_) {
    if (!tables.empty() && tables.count(table) == 0) continue;
    auto first = FirstPending(entries, hwm);
    if (first == entries.end()) continue;
    out[table].assign(first, entries.end());
  }
  return out;
}

int64_t DeltaLog::PendingRows(const std::string& view,
                              const std::set<std::string>& tables) const {
  uint64_t hwm = high_water_mark(view);
  int64_t total = 0;
  for (const auto& [table, entries] : tables_) {
    if (!tables.empty() && tables.count(table) == 0) continue;
    total += entries.end() - FirstPending(entries, hwm);
  }
  return total;
}

double DeltaLog::OldestPendingMicros(
    const std::string& view, const std::set<std::string>& tables) const {
  uint64_t hwm = high_water_mark(view);
  bool any = false;
  std::chrono::steady_clock::time_point oldest;
  for (const auto& [table, entries] : tables_) {
    if (!tables.empty() && tables.count(table) == 0) continue;
    auto first = FirstPending(entries, hwm);
    if (first == entries.end()) continue;
    if (!any || first->at < oldest) oldest = first->at;
    any = true;
  }
  if (!any) return 0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - oldest)
      .count();
}

void DeltaLog::AdvanceTo(const std::string& view, uint64_t seq) {
  auto it = high_water_.find(view);
  OJV_CHECK(it != high_water_.end(), "unknown delta-log consumer");
  if (seq > it->second) it->second = seq;
}

void DeltaLog::TruncateConsumed() {
  uint64_t min_hwm = tail();
  for (const auto& [view, hwm] : high_water_) {
    min_hwm = std::min(min_hwm, hwm);
  }
  for (auto it = tables_.begin(); it != tables_.end();) {
    std::deque<DeltaEntry>& entries = it->second;
    while (!entries.empty() && entries.front().seq <= min_hwm) {
      entries.pop_front();
    }
    it = entries.empty() ? tables_.erase(it) : std::next(it);
  }
  if constexpr (obs::kEnabled) {
    static obs::Gauge& depth_gauge =
        obs::Registry::Global().GetGauge("ojv.deferred.log_depth_rows");
    depth_gauge.Set(size());
  }
}

int64_t DeltaLog::size() const {
  int64_t total = 0;
  for (const auto& [table, entries] : tables_) {
    total += static_cast<int64_t>(entries.size());
  }
  return total;
}

}  // namespace deferred
}  // namespace ojv
