// Multi-statement transactions with deferred FK checking (§6 caveat 3):
// constraint-violating intermediate states are allowed, Commit validates
// and either finalizes or rolls everything back — base tables and all
// maintained views.

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "ivm/database.h"

namespace ojv {
namespace {

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.catalog()->CreateTable(
        "dept",
        Schema({ColumnDef{"d_id", ValueType::kInt64, false},
                ColumnDef{"d_name", ValueType::kString, false}}),
        {"d_id"});
    db_.catalog()->CreateTable(
        "emp",
        Schema({ColumnDef{"e_id", ValueType::kInt64, false},
                ColumnDef{"e_dept", ValueType::kInt64, false},
                ColumnDef{"e_salary", ValueType::kFloat64, true}}),
        {"e_id"});
    ForeignKey fk{"emp", {"e_dept"}, "dept", {"d_id"}};
    fk.deferrable = true;
    db_.catalog()->AddForeignKey(fk);

    RelExprPtr tree = RelExpr::Join(
        JoinKind::kFullOuter, RelExpr::Scan("dept"), RelExpr::Scan("emp"),
        Eq("dept", "d_id", "emp", "e_dept"));
    view_ = db_.CreateMaterializedView(
        ViewDef("dept_emp", tree,
                {{"dept", "d_id"},
                 {"dept", "d_name"},
                 {"emp", "e_id"},
                 {"emp", "e_dept"},
                 {"emp", "e_salary"}},
                *db_.catalog()));
    db_.Insert("dept", {Row{Value::Int64(1), Value::String("eng")}});
    db_.Insert("emp",
               {Row{Value::Int64(10), Value::Int64(1), Value::Float64(100)}});
  }

  void ExpectConsistent(const char* when) {
    std::string diff;
    EXPECT_TRUE(ViewMatchesRecompute(*db_.catalog(), view_->view_def(),
                                     view_->view(), &diff))
        << when << ": " << diff;
  }

  Database db_;
  ViewMaintainer* view_ = nullptr;
};

TEST_F(TransactionTest, DeferredChecksAllowTemporaryViolations) {
  ASSERT_TRUE(db_.BeginTransaction());
  // Child first, parent second — invalid order outside a transaction.
  EXPECT_EQ(db_.Insert("emp", {Row{Value::Int64(11), Value::Int64(2),
                                   Value::Float64(50)}})
                .rows_affected,
            1);
  ExpectConsistent("mid-transaction (violated FK)");
  EXPECT_EQ(db_.Insert("dept", {Row{Value::Int64(2), Value::String("ops")}})
                .rows_affected,
            1);
  Database::StatementResult commit = db_.Commit();
  EXPECT_TRUE(commit.ok()) << commit.error;
  EXPECT_FALSE(db_.in_transaction());
  EXPECT_EQ(db_.catalog()->GetTable("emp")->size(), 2);
  ExpectConsistent("after commit");
}

TEST_F(TransactionTest, CommitViolationRollsEverythingBack) {
  int64_t dept_before = db_.catalog()->GetTable("dept")->size();
  int64_t emp_before = db_.catalog()->GetTable("emp")->size();
  Relation view_before = view_->view().AsRelation();

  ASSERT_TRUE(db_.BeginTransaction());
  db_.Insert("emp", {Row{Value::Int64(12), Value::Int64(99),  // no dept 99
                         Value::Float64(70)}});
  db_.Insert("dept", {Row{Value::Int64(3), Value::String("hr")}});
  db_.Delete("emp", {Row{Value::Int64(10)}});
  db_.Update("dept", {Row{Value::Int64(1)}},
             {Row{Value::Int64(1), Value::String("renamed")}});
  ExpectConsistent("mid-transaction");

  Database::StatementResult commit = db_.Commit();
  EXPECT_FALSE(commit.ok());
  EXPECT_NE(commit.error.find("commit aborted"), std::string::npos);
  EXPECT_FALSE(db_.in_transaction());

  // Everything restored: base tables and the view.
  EXPECT_EQ(db_.catalog()->GetTable("dept")->size(), dept_before);
  EXPECT_EQ(db_.catalog()->GetTable("emp")->size(), emp_before);
  EXPECT_NE(db_.catalog()->GetTable("emp")->FindByKey(Row{Value::Int64(10)}),
            nullptr);
  EXPECT_EQ((*db_.catalog()->GetTable("dept")->FindByKey(
                Row{Value::Int64(1)}))[1],
            Value::String("eng"));
  std::string diff;
  EXPECT_TRUE(SameBag(view_before, view_->view().AsRelation(), &diff))
      << diff;
  ExpectConsistent("after rollback");
}

TEST_F(TransactionTest, ExplicitRollback) {
  Relation view_before = view_->view().AsRelation();
  ASSERT_TRUE(db_.BeginTransaction());
  db_.Delete("emp", {Row{Value::Int64(10)}});
  db_.Delete("dept", {Row{Value::Int64(1)}});  // no child check: deferred
  EXPECT_EQ(db_.catalog()->GetTable("dept")->size(), 0);
  db_.Rollback();
  EXPECT_FALSE(db_.in_transaction());
  EXPECT_EQ(db_.catalog()->GetTable("dept")->size(), 1);
  EXPECT_EQ(db_.catalog()->GetTable("emp")->size(), 1);
  std::string diff;
  EXPECT_TRUE(SameBag(view_before, view_->view().AsRelation(), &diff))
      << diff;
}

TEST_F(TransactionTest, NestedBeginAndEmptyCommit) {
  ASSERT_TRUE(db_.BeginTransaction());
  EXPECT_FALSE(db_.BeginTransaction());
  EXPECT_TRUE(db_.Commit().ok());
  EXPECT_FALSE(db_.Commit().ok());  // nothing open
}

}  // namespace
}  // namespace ojv
