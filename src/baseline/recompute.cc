#include "baseline/recompute.h"

#include "exec/evaluator.h"

namespace ojv {

Relation RecomputeView(const Catalog& catalog, const ViewDef& view) {
  Evaluator evaluator(&catalog);
  return evaluator.EvalToRelation(view.WithProjection());
}

bool ViewMatchesRecompute(const Catalog& catalog, const ViewDef& view,
                          const MaterializedView& materialized,
                          std::string* diff) {
  return ViewMatchesRecompute(catalog, view, materialized.AsRelation(), diff);
}

bool ViewMatchesRecompute(const Catalog& catalog, const ViewDef& view,
                          const Relation& contents, std::string* diff) {
  Relation expected = RecomputeView(catalog, view);
  return SameBag(expected, contents, diff);
}

}  // namespace ojv
