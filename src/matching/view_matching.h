#ifndef OJV_MATCHING_VIEW_MATCHING_H_
#define OJV_MATCHING_VIEW_MATCHING_H_

#include <optional>
#include <string>

#include "ivm/database.h"
#include "ivm/materialized_view.h"
#include "ivm/view_def.h"

namespace ojv {

/// View matching for SPOJ views — the companion problem to maintenance
/// (paper §1; the full algorithm is Larson & Zhou, VLDB 2005 [6]).
/// Given a query and a materialized view, decide whether the query can
/// be answered from the view alone and construct the compensation.
///
/// Both query and view are compared through their join-disjunctive
/// normal forms. The query matches when:
///
///  1. it references the same table set as the view;
///  2. every query term has a view term with the same source whose
///     predicate is implied by the query term's (conjunct-for-conjunct,
///     with numeric range implication, e.g. `p < 1500 ⇒ p < 2000`);
///  3. view terms absent from the query can be dropped by null-pattern
///     rejection, which is sound only if no *retained* term's source is
///     a strict subset of a dropped term's source (otherwise killing the
///     wider rows would have to resurrect subsumed narrower tuples —
///     the general case of [6] that needs null-if compensation; we
///     reject it instead of answering incorrectly);
///  4. compensation conjuncts (query predicates beyond the view's)
///     reference only tables present in *every* retained term, so that
///     selection distributes over the minimum union of the retained
///     terms;
///  5. the view outputs every column the query's output and the
///     compensation need.
///
/// The supported class covers the everyday cases: answering inner-join
/// queries from outer-join views, left-outer queries from full-outer
/// views, and range-restricted variants of the view's predicates.
struct MatchResult {
  bool matched = false;
  std::string reason;  // when !matched: why
  /// Compensation over the view's contents, bound as DeltaScan("#view"):
  /// a selection (pattern acceptance ∧ extra conjuncts) under the
  /// query's projection.
  RelExprPtr rewrite;
};

/// Attempts to rewrite `query` over `view`. Both must validate against
/// `catalog`. Pure analysis: no data is touched.
MatchResult MatchView(const ViewDef& query, const ViewDef& view,
                      const Catalog& catalog);

/// Convenience: runs MatchView and, on success, evaluates the rewrite
/// against the materialized contents. Returns std::nullopt when the
/// query cannot be answered from the view.
std::optional<Relation> AnswerFromView(const ViewDef& query,
                                       const ViewDef& view,
                                       const MaterializedView& contents,
                                       const Catalog& catalog);

/// Scans the database's registered views for one that can answer the
/// query; returns the first match's answer (and the view's name through
/// *matched_view if non-null), or std::nullopt when no view qualifies.
std::optional<Relation> AnswerFromDatabase(const ViewDef& query, Database* db,
                                           std::string* matched_view);

}  // namespace ojv

#endif  // OJV_MATCHING_VIEW_MATCHING_H_
