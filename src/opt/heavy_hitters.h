#ifndef OJV_OPT_HEAVY_HITTERS_H_
#define OJV_OPT_HEAVY_HITTERS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/value.h"

namespace ojv {
namespace opt {

/// Thresholds for skew-adaptive (heavy-light) maintenance. A join-key
/// value is "heavy" when its frequency in the counterpart join column —
/// which IS the join fanout a delta row carrying that value pays — is
/// high enough that eager maintenance of every touch is a losing
/// proposition (DESIGN.md §16).
struct HeavyHitterConfig {
  /// Candidate slots per tracked column (space-saving sketch size).
  /// Must exceed the number of genuinely heavy keys; 64 is generous for
  /// Zipf-like skew where a handful of keys dominate.
  int sketch_capacity = 64;
  /// Estimated frequency at which a key is promoted to heavy.
  int64_t promote_threshold = 128;
  /// Hysteresis: a promoted key is demoted only when its estimate falls
  /// below promote_threshold * demote_fraction. Keys oscillating in
  /// between keep their current side, so state migration cannot thrash.
  double demote_fraction = 0.5;
  /// Lazy-state self-drain cap: once this many raw rows are pending in
  /// ivm::HeavyState the maintainer drains before diverting more.
  int64_t max_pending_rows = 1 << 20;
};

/// Space-saving sketch (Metwally et al.) over Values with deletion
/// support: the classic structure tracks the top `capacity` candidates
/// with per-slot overestimation error; deletes decrement tracked slots
/// (clamped at zero) and are dropped for untracked values. Decrements
/// void the strict space-saving guarantee, but the consumer is a
/// partitioning heuristic whose correctness never depends on the counts
/// (the equivalence property tests run degenerate thresholds), so a
/// drifted-low estimate only costs performance, never accuracy.
class SpaceSavingSketch {
 public:
  explicit SpaceSavingSketch(int capacity);

  /// Counts `delta` occurrences of `v` (negative for deletions).
  void Add(const Value& v, int64_t delta);

  /// Estimated frequency of `v`; 0 when untracked. Overestimates by at
  /// most the evicted minimum at insertion time (the slot's error).
  int64_t EstimateCount(const Value& v) const;

  int64_t tracked() const { return static_cast<int64_t>(slots_.size()); }

 private:
  struct Slot {
    int64_t count = 0;
    int64_t error = 0;  // possible overestimation inherited at eviction
  };

  int capacity_;
  std::unordered_map<Value, Slot, ValueHash> slots_;
};

/// Promotion state with hysteresis over one column's sketch. IsHeavy is
/// deliberately stateful: a key crossing promote_threshold enters the
/// promoted set and stays there until its estimate drops below the
/// demotion low-water mark, at which point the caller is told
/// (demoted_now) so it can fold the key's lazy state back in.
class HeavyKeyTracker {
 public:
  explicit HeavyKeyTracker(const HeavyHitterConfig& config);

  void Add(const Value& v, int64_t delta) { sketch_.Add(v, delta); }

  /// Hysteresis classification; sets *demoted_now (when non-null) if
  /// this very call moved the key from heavy to light.
  bool IsHeavy(const Value& v, bool* demoted_now = nullptr);

  int64_t EstimateCount(const Value& v) const {
    return sketch_.EstimateCount(v);
  }
  int64_t promoted_count() const {
    return static_cast<int64_t>(promoted_.size());
  }
  /// Sum of the promoted keys' estimates — the heavy partition's row
  /// mass in the counterpart table, for partitioned cardinalities.
  int64_t promoted_mass() const;
  int64_t demotions() const { return demotions_; }

 private:
  HeavyHitterConfig config_;
  SpaceSavingSketch sketch_;
  std::unordered_set<Value, ValueHash> promoted_;
  int64_t demotions_ = 0;
};

/// Per-(table, column) heavy-hitter trackers, incrementally fed by the
/// maintenance entry points exactly like the KMV sketches in
/// opt::StatsCatalog: built lazily by a full scan, advanced per batch,
/// and rebuilt whenever Table::version() moved in a way the catalog did
/// not see. Tracked columns are registered up front (the join columns of
/// one view), so per-row feeding costs O(join columns), not O(schema).
///
/// Synchronization contract matches StatsCatalog: externally confined to
/// one maintenance operation at a time.
class HeavyHitterCatalog {
 public:
  HeavyHitterCatalog(const Catalog* catalog, HeavyHitterConfig config);

  /// Registers interest in `table.column` (idempotent). Must be called
  /// before any feed of `table`.
  void Track(const std::string& table, const std::string& column);
  bool Tracks(const std::string& table) const;

  /// Scope label for the exported ojv.opt.heavy_keys gauge (the owning
  /// view's name); gauge label values read "<scope>.<table>".
  void set_scope(std::string scope) { scope_ = std::move(scope); }

  /// Accounts an applied base-table batch (same contract as
  /// StatsCatalog::OnInsert/OnDelete/OnUpdate: full rows, base already
  /// updated, already-accounted version windows skipped).
  void OnInsert(const std::string& table, const std::vector<Row>& rows);
  void OnDelete(const std::string& table, const std::vector<Row>& rows);
  void OnUpdate(const std::string& table, const std::vector<Row>& old_rows,
                const std::vector<Row>& new_rows);

  /// Hysteresis classification of `v` against `table.column`. NULL is
  /// never heavy (it joins nothing). Builds the tracker on first use.
  bool IsHeavy(const std::string& table, const std::string& column,
               const Value& v, bool* demoted_now = nullptr);

  int64_t EstimateCount(const std::string& table, const std::string& column,
                        const Value& v);

  /// Currently promoted keys across all tracked columns of `table`
  /// (the ojv.opt.heavy_keys gauge value).
  int64_t PromotedKeys(const std::string& table) const;
  /// Promoted keys / row mass of one column, for the estimator's
  /// partitioned cardinalities.
  int64_t PromotedKeys(const std::string& table,
                       const std::string& column) const;
  int64_t PromotedMass(const std::string& table,
                       const std::string& column) const;
  int64_t demotions() const;

  void InvalidateAll();

  // --- test hooks ---
  int64_t rebuild_count() const { return rebuild_count_; }

 private:
  struct ColumnTracker {
    int position = -1;  // column ordinal in the table schema
    HeavyKeyTracker tracker;
  };
  struct Entry {
    std::unordered_map<std::string, ColumnTracker> columns;
    uint64_t expected_version = 0;
    bool built = false;
  };

  /// Full scan (re)build; records the table's current version.
  void Rebuild(const std::string& table, const Table& t, Entry* entry);
  void Apply(Entry* entry, const Row& row, int64_t sign);
  Entry* EnsureBuilt(const std::string& table);
  void PublishGauge(const std::string& table, const Entry& entry);

  const Catalog* catalog_;
  HeavyHitterConfig config_;
  std::string scope_;
  std::unordered_map<std::string, Entry> entries_;
  int64_t rebuild_count_ = 0;
};

}  // namespace opt
}  // namespace ojv

#endif  // OJV_OPT_HEAVY_HITTERS_H_
