# Empty dependencies file for ojv_common.
# This may be replaced when dependencies are built.
