# Empty compiler generated dependencies file for ojv_exec.
# This may be replaced when dependencies are built.
