#ifndef OJV_BENCH_BENCH_UTIL_H_
#define OJV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "ivm/maintainer.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"

namespace ojv {
namespace bench {

/// Command-line knobs shared by all paper-table benchmarks:
///   --sf=<double>      TPC-H scale factor (default 0.05)
///   --seed=<uint64>    generator seed
///   --batches=a,b,c    insert/delete batch sizes (default 60,600,6000;
///                      pass --batches=60,600,6000,60000 for the full
///                      sweep of the paper — the GK baseline takes
///                      minutes at 60000)
///   --threads=<int>    executor threads for the parallel maintainer
///                      columns (default 1 = serial)
///   --json <path>      also write results as JSON to <path>
///                      (--json=<path> works too); the file carries the
///                      benchmark name, options, host core count, and
///                      one object per printed row
///   --metrics-port=N   serve live telemetry on 127.0.0.1:N for the
///                      duration of the run (GET /metrics,
///                      /snapshot.json, /flight.json — see
///                      obs/http_server.h); 0 (default) = off, no-op
///                      under OJV_OBS=OFF
struct BenchOptions {
  double scale_factor = 0.05;
  uint64_t seed = 19940601;
  std::vector<int64_t> batches = {60, 600, 6000};
  int threads = 1;
  std::string json_path;
  int metrics_port = 0;

  /// Parses the flags; when --threads exceeds the host's core count it
  /// prints a loud warning (the parallel columns then measure
  /// oversubscription, not speedup) and the JSON header carries
  /// "parallel_valid": false.
  static BenchOptions Parse(int argc, char** argv);

  /// threads <= hardware_concurrency(): the parallel numbers are real.
  bool ParallelValid() const;
};

/// A populated TPC-H database plus its refresh stream.
struct TpchInstance {
  Catalog catalog;
  std::unique_ptr<tpch::Dbgen> dbgen;
  std::unique_ptr<tpch::RefreshStream> refresh;

  explicit TpchInstance(const BenchOptions& options);
};

/// Milliseconds spent in fn.
double TimeMs(const std::function<void()>& fn);

/// Fixed-width table printing helpers.
void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string FormatMs(double ms);
std::string FormatCount(int64_t n);

/// Machine-readable benchmark results. Each benchmark builds one report
/// (mirroring its printed rows field by field) and calls Write() at the
/// end; Write is a no-op unless --json was given, so the human-readable
/// table stays the default output. The emitted document is
///
///   { "benchmark": ..., "scale_factor": ..., "seed": ..., "threads": ...,
///     "host_cores": ..., "build_type": ..., "sanitize": ...,
///     "obs_enabled": ..., "parallel_valid": ...,
///     "results": [ {row fields...}, ... ] }
///
/// which the trajectory file BENCH_pipeline.json aggregates across runs.
/// The build_type/sanitize/obs_enabled header fields identify the binary
/// that produced the numbers (a sanitizer or Debug run is not comparable
/// to a Release one); parallel_valid is false when --threads
/// oversubscribes the host.
class JsonReport {
 public:
  JsonReport(std::string benchmark, const BenchOptions& options);

  /// Starts a new result object; Num/Count/Str attach fields to it.
  void BeginRow();
  void Num(const std::string& key, double value);
  void Count(const std::string& key, int64_t value);
  void Str(const std::string& key, const std::string& value);
  /// Attaches a raw (already-serialized) JSON value, e.g. a per-stage
  /// breakdown object from StagesJson().
  void Obj(const std::string& key, const std::string& raw_json);

  /// Writes the report to the --json path. Returns false (and writes
  /// nothing) when no path was given; aborts if the path is unwritable.
  bool Write() const;

 private:
  std::string benchmark_;
  const BenchOptions options_;
  std::vector<std::string> rows_;  // accumulated "k": v fragments per row
};

/// Per-stage breakdown of one (or one accumulated) maintenance run as a
/// JSON object: {"primary_ms": ..., "apply_ms": ..., "secondary_ms": ...,
/// "total_ms": ..., "primary_rows": ..., "secondary_rows": ...,
/// "fk_fast_path": ...}. Feed it to JsonReport::Obj under "stages".
std::string StagesJson(const MaintenanceStats& stats);

}  // namespace bench
}  // namespace ojv

#endif  // OJV_BENCH_BENCH_UTIL_H_
