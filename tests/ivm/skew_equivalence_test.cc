// Skew-adaptive maintenance equivalence property test: for randomized
// Zipf-distributed insert/delete/update streams, a kHeavyLight
// maintainer must produce exactly the same view contents as a kUniform
// maintainer at every drain point — across promote-threshold settings
// including the degenerate extremes (0: every non-null join key is
// heavy, so everything routes through the lazy state; huge: nothing is
// ever heavy, so the heavy-light path must be a byte-for-byte no-op).
//
// Covers row-level SPOJ views (the RSTU running example, random SPOJ
// trees, the TPC-H outer-join view), aggregate views, and the
// Database-level statement/read paths with deferred-policy interplay.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baseline/recompute.h"
#include "ivm/database.h"
#include "ivm/maintainer.h"
#include "ivm/aggregate_view.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

using testing_util::CreateRandomSchema;
using testing_util::CreateRstuSchema;
using testing_util::MakeV1;
using testing_util::RandomSpojView;
using testing_util::SampleKeys;

// Promote thresholds under test: 0 routes every probed key through the
// lazy state, 4 mixes partitions under Zipf skew, and the huge value
// keeps everything eager.
const int64_t kThresholds[] = {0, 4, int64_t{1} << 30};

opt::HeavyHitterConfig ConfigFor(int64_t threshold) {
  opt::HeavyHitterConfig config;
  config.sketch_capacity = 16;
  config.promote_threshold = threshold;
  config.demote_fraction = 0.5;
  return config;
}

/// Zipf-skewed RSTU-style rows: join columns draw Zipf ranks so a
/// handful of values dominate (with occasional NULLs).
std::vector<Row> ZipfRows(Rng* rng, const ZipfDistribution& zipf, int n,
                          int64_t* next_key) {
  std::vector<Row> rows;
  auto join_value = [&]() {
    if (rng->Chance(0.08)) return Value::Null();
    return Value::Int64(zipf.Sample(rng));
  };
  for (int i = 0; i < n; ++i) {
    rows.push_back(Row{Value::Int64((*next_key)++), join_value(), join_value(),
                       Value::Int64(rng->Uniform(0, 999))});
  }
  return rows;
}

struct MaintainerPair {
  std::unique_ptr<ViewMaintainer> uniform;
  std::unique_ptr<ViewMaintainer> heavy;
};

MaintainerPair MakePair(const Catalog* catalog, const ViewDef& view,
                        int64_t threshold) {
  MaintainerPair pair;
  MaintenanceOptions uniform_options;
  pair.uniform =
      std::make_unique<ViewMaintainer>(catalog, view, uniform_options);
  MaintenanceOptions heavy_options;
  heavy_options.skew = SkewMode::kHeavyLight;
  heavy_options.heavy = ConfigFor(threshold);
  pair.heavy = std::make_unique<ViewMaintainer>(catalog, view, heavy_options);
  pair.uniform->InitializeView();
  pair.heavy->InitializeView();
  return pair;
}

/// One random op applied to base and both maintainers, honoring the
/// heavy maintainer's pre-apply contract.
void RandomOp(Catalog* catalog, const std::vector<std::string>& tables,
              Rng* rng, const ZipfDistribution& zipf, int64_t* fresh_key,
              MaintainerPair* pair) {
  const std::string& name = tables[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(tables.size()) - 1))];
  Table* table = catalog->GetTable(name);
  int choice = static_cast<int>(rng->Uniform(0, 2));
  if (choice == 0 && table->size() > 3) {
    pair->heavy->PrepareHeavyForOp(name, PlanPolicy::kDefault);
    std::vector<Row> deleted = ApplyBaseDelete(
        table,
        SampleKeys(*table, rng, static_cast<int>(rng->Uniform(1, 5))));
    pair->uniform->OnDelete(name, deleted);
    pair->heavy->OnDelete(name, deleted);
  } else if (choice == 1 && table->size() > 3) {
    std::vector<Row> keys = SampleKeys(*table, rng, 2);
    std::vector<Row> new_rows;
    for (const Row& key : keys) {
      Row row = *table->FindByKey(key);
      row[1] = rng->Chance(0.1) ? Value::Null()
                                : Value::Int64(zipf.Sample(rng));
      new_rows.push_back(std::move(row));
    }
    pair->heavy->PrepareHeavyForOp(name, PlanPolicy::kDefault,
                                   /*is_update=*/true);
    std::vector<Row> old_rows;
    ApplyBaseUpdate(table, keys, new_rows, &old_rows);
    pair->uniform->OnUpdate(name, old_rows, new_rows);
    pair->heavy->OnUpdate(name, old_rows, new_rows);
  } else {
    pair->heavy->PrepareHeavyForOp(name, PlanPolicy::kDefault);
    std::vector<Row> inserted = ApplyBaseInsert(
        table,
        ZipfRows(rng, zipf, static_cast<int>(rng->Uniform(1, 7)), fresh_key));
    pair->uniform->OnInsert(name, inserted);
    pair->heavy->OnInsert(name, inserted);
  }
}

void ExpectSameViews(const Catalog& catalog, const ViewDef& view,
                     const MaintainerPair& pair, const char* where) {
  std::string diff;
  ASSERT_TRUE(
      ViewMatchesRecompute(catalog, view, pair.heavy->view(), &diff))
      << where << ": heavy view diverges from recompute: " << diff;
  ASSERT_TRUE(pair.heavy->view().AsRelation().Equals(
      pair.uniform->view().AsRelation()))
      << where << ": heavy and uniform views differ";
}

class SkewEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int64_t>> {};

TEST_P(SkewEquivalenceTest, RandomSpojZipfStream) {
  const uint64_t seed = std::get<0>(GetParam());
  const int64_t threshold = std::get<1>(GetParam());

  Rng rng(seed);
  Catalog catalog;
  std::vector<std::string> tables =
      CreateRandomSchema(&catalog, static_cast<int>(rng.Uniform(3, 4)));
  const ZipfDistribution zipf(6, 1.2);
  int64_t next_key = 1;
  for (const std::string& name : tables) {
    Table* table = catalog.GetTable(name);
    for (Row& row :
         ZipfRows(&rng, zipf, static_cast<int>(rng.Uniform(10, 25)),
                  &next_key)) {
      table->Insert(std::move(row));
    }
  }
  ViewDef view = RandomSpojView(catalog, tables, &rng);
  MaintainerPair pair = MakePair(&catalog, view, threshold);

  int64_t fresh_key = 100000 + static_cast<int64_t>(seed) * 1000;
  int ops = static_cast<int>(rng.Uniform(8, 12));
  for (int op = 0; op < ops; ++op) {
    RandomOp(&catalog, tables, &rng, zipf, &fresh_key, &pair);
    // Drain every third op so the lazy state accumulates across
    // statements; between drains the views may legitimately differ.
    if (op % 3 == 2 || op == ops - 1) {
      pair.heavy->DrainHeavyState();
      EXPECT_EQ(pair.heavy->HeavyPendingRows(), 0);
      ExpectSameViews(catalog, view, pair,
                      ("op " + std::to_string(op)).c_str());
      if (HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ZipfStreams, SkewEquivalenceTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 13),
                       ::testing::ValuesIn(kThresholds)),
    [](const ::testing::TestParamInfo<SkewEquivalenceTest::ParamType>& info) {
      const int64_t t = std::get<1>(info.param);
      std::string name = t == 0             ? "AllHeavy"
                         : t < (1 << 20)    ? "Mixed"
                                            : "NoneHeavy";
      return name + "_seed" + std::to_string(std::get<0>(info.param));
    });

// The fixed running-example view V1, heavier stream, every threshold.
TEST(SkewEquivalenceV1Test, RunningExampleUnderHeavySkew) {
  for (int64_t threshold : kThresholds) {
    Rng rng(77);
    Catalog catalog;
    CreateRstuSchema(&catalog);
    const ZipfDistribution zipf(8, 1.2);
    int64_t next_key = 1;
    for (const char* name : {"R", "S", "T", "U"}) {
      Table* table = catalog.GetTable(name);
      for (Row& row : ZipfRows(&rng, zipf, 30, &next_key)) {
        table->Insert(std::move(row));
      }
    }
    ViewDef view = MakeV1(catalog);
    MaintainerPair pair = MakePair(&catalog, view, threshold);
    std::vector<std::string> tables = {"R", "S", "T", "U"};

    int64_t fresh_key = 500000;
    for (int op = 0; op < 15; ++op) {
      RandomOp(&catalog, tables, &rng, zipf, &fresh_key, &pair);
      if (op % 4 == 3 || op == 14) {
        pair.heavy->DrainHeavyState();
        ExpectSameViews(catalog, view, pair,
                        ("threshold " + std::to_string(threshold) + " op " +
                         std::to_string(op))
                            .c_str());
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

// TPC-H outer-join view (paper Example 1) under a hot-partkey stream:
// many lineitems pile onto a few part keys, which is exactly the
// join-fanout skew the heavy-light split targets.
TEST(SkewEquivalenceTpchTest, HotPartkeyLineitemStream) {
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);

  ViewDef view = tpch::MakeOjView(catalog);
  MaintainerPair pair = MakePair(&catalog, view, /*threshold=*/8);

  Rng rng(11);
  Table* lineitem = catalog.GetTable("lineitem");
  Table* orders = catalog.GetTable("orders");
  const ZipfDistribution zipf(16, 1.2);
  int64_t next_order = dbgen.num_orders() + 1000;
  for (int round = 0; round < 6; ++round) {
    // New order...
    const int64_t orderkey = tpch::Dbgen::SparseOrderKey(next_order++);
    Row order_row = dbgen.MakeOrderRow(
        orderkey, dbgen.RandomOrderingCustomer(&rng), &rng);
    pair.heavy->PrepareHeavyForOp("orders", PlanPolicy::kDefault);
    std::vector<Row> inserted = ApplyBaseInsert(orders, {order_row});
    pair.uniform->OnInsert("orders", inserted);
    pair.heavy->OnInsert("orders", inserted);

    // ...with lines whose partkeys concentrate on a few hot parts.
    std::vector<Row> lines;
    for (int64_t ln = 1; ln <= 4; ++ln) {
      Row line = dbgen.MakeLineitemRow(orderkey, ln, /*orderdate=*/9000,
                                       &rng);
      const int l_partkey = catalog.GetTable("lineitem")
                                ->schema()
                                .IndexOf("l_partkey");
      line[static_cast<size_t>(l_partkey)] =
          Value::Int64(1 + zipf.Sample(&rng));
      lines.push_back(std::move(line));
    }
    pair.heavy->PrepareHeavyForOp("lineitem", PlanPolicy::kDefault);
    inserted = ApplyBaseInsert(lineitem, lines);
    pair.uniform->OnInsert("lineitem", inserted);
    pair.heavy->OnInsert("lineitem", inserted);

    if (round % 2 == 1) {
      pair.heavy->DrainHeavyState();
      ASSERT_TRUE(pair.heavy->view().AsRelation().Equals(
          pair.uniform->view().AsRelation()))
          << "round " << round << ": heavy and uniform views differ";
    }
  }
}

// Aggregate views: GROUP BY over the running example with COUNT(*) and
// SUM, kHeavyLight wrapper vs kUniform wrapper.
TEST(SkewEquivalenceAggTest, AggregateViewsMatchAtEveryDrainPoint) {
  for (int64_t threshold : kThresholds) {
    Rng rng(123);
    Catalog catalog;
    CreateRstuSchema(&catalog);
    const ZipfDistribution zipf(6, 1.2);
    int64_t next_key = 1;
    for (const char* name : {"R", "S", "T", "U"}) {
      Table* table = catalog.GetTable(name);
      for (Row& row : ZipfRows(&rng, zipf, 25, &next_key)) {
        table->Insert(std::move(row));
      }
    }
    std::vector<ColumnRef> group_by = {{"R", "r_a"}};
    std::vector<AggregateSpec> aggregates;
    aggregates.push_back({AggregateSpec::Kind::kCountStar, {}, "cnt"});
    aggregates.push_back(
        {AggregateSpec::Kind::kSum, {"S", "s_v"}, "sum_sv"});

    AggViewMaintainer uniform(&catalog, MakeV1(catalog), group_by,
                              aggregates);
    MaintenanceOptions heavy_options;
    heavy_options.skew = SkewMode::kHeavyLight;
    heavy_options.heavy = ConfigFor(threshold);
    AggViewMaintainer heavy(&catalog, MakeV1(catalog), group_by, aggregates,
                            heavy_options);
    uniform.InitializeView();
    heavy.InitializeView();

    std::vector<std::string> tables = {"R", "S", "T", "U"};
    int64_t fresh_key = 700000;
    for (int op = 0; op < 12; ++op) {
      const std::string& name = tables[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(tables.size()) - 1))];
      Table* table = catalog.GetTable(name);
      int choice = static_cast<int>(rng.Uniform(0, 2));
      if (choice == 0 && table->size() > 3) {
        heavy.PrepareHeavyForOp(name, PlanPolicy::kDefault);
        std::vector<Row> deleted = ApplyBaseDelete(
            table, SampleKeys(*table, &rng, 2));
        uniform.OnDelete(name, deleted);
        heavy.OnDelete(name, deleted);
      } else if (choice == 1 && table->size() > 3) {
        std::vector<Row> keys = SampleKeys(*table, &rng, 2);
        std::vector<Row> new_rows;
        for (const Row& key : keys) {
          Row row = *table->FindByKey(key);
          row[1] = Value::Int64(zipf.Sample(&rng));
          new_rows.push_back(std::move(row));
        }
        heavy.PrepareHeavyForOp(name, PlanPolicy::kDefault,
                                /*is_update=*/true);
        std::vector<Row> old_rows;
        ApplyBaseUpdate(table, keys, new_rows, &old_rows);
        uniform.OnUpdate(name, old_rows, new_rows);
        heavy.OnUpdate(name, old_rows, new_rows);
      } else {
        heavy.PrepareHeavyForOp(name, PlanPolicy::kDefault);
        std::vector<Row> inserted = ApplyBaseInsert(
            table, ZipfRows(&rng, zipf, 4, &fresh_key));
        uniform.OnInsert(name, inserted);
        heavy.OnInsert(name, inserted);
      }
      if (op % 3 == 2 || op == 11) {
        heavy.DrainHeavyState();
        EXPECT_EQ(heavy.HeavyPendingRows(), 0);
        std::string diff;
        ASSERT_TRUE(heavy.MatchesRecompute(1e-9, &diff))
            << "threshold " << threshold << " op " << op << ": " << diff;
        ASSERT_TRUE(heavy.AsRelation().Equals(uniform.AsRelation()))
            << "threshold " << threshold << " op " << op
            << ": aggregate groups differ";
      }
    }
  }
}

// Database-level: statements call the pre-apply hook, reads fold the
// backlog, and the deferred kOnDemand policy composes with kHeavyLight.
TEST(SkewEquivalenceDatabaseTest, StatementsReadsAndDeferredInterplay) {
  MaintenanceOptions options;
  options.skew = SkewMode::kHeavyLight;
  options.heavy = ConfigFor(4);
  Database db(options);
  CreateRstuSchema(db.catalog());

  Rng rng(42);
  const ZipfDistribution zipf(6, 1.2);
  int64_t next_key = 1;
  for (const char* name : {"R", "S", "T", "U"}) {
    db.Insert(name, ZipfRows(&rng, zipf, 20, &next_key));
  }
  ViewDef view = MakeV1(*db.catalog());
  db.CreateMaterializedView(view);

  std::vector<std::string> tables = {"R", "S", "T", "U"};
  int64_t fresh_key = 900000;
  auto random_statement = [&]() {
    const std::string& name = tables[static_cast<size_t>(
        rng.Uniform(0, 3))];
    Table* table = db.catalog()->GetTable(name);
    int choice = static_cast<int>(rng.Uniform(0, 2));
    if (choice == 0 && table->size() > 5) {
      std::vector<Row> keys = SampleKeys(*table, &rng, 2);
      ASSERT_TRUE(db.Delete(name, keys).ok());
    } else if (choice == 1 && table->size() > 5) {
      std::vector<Row> keys = SampleKeys(*table, &rng, 2);
      std::vector<Row> new_rows;
      for (const Row& key : keys) {
        Row row = *table->FindByKey(key);
        row[1] = Value::Int64(zipf.Sample(&rng));
        new_rows.push_back(std::move(row));
      }
      ASSERT_TRUE(db.Update(name, keys, new_rows).ok());
    } else {
      ASSERT_TRUE(
          db.Insert(name, ZipfRows(&rng, zipf, 3, &fresh_key)).ok());
    }
  };

  for (int op = 0; op < 10; ++op) {
    random_statement();
    if (HasFatalFailure()) return;
    if (op % 3 == 2) {
      ViewSnapshot v = db.ReadView("v1");
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(db.HeavyPendingRows("v1"), 0);  // reads fold the backlog
      std::string diff;
      ASSERT_TRUE(ViewMatchesRecompute(*db.catalog(), view, v.relation(),
                                       &diff))
          << "op " << op << ": " << diff;
    }
  }

  // Deferred interplay: stage statements while kOnDemand, then read.
  db.SetRefreshPolicy("v1", deferred::RefreshPolicy::kOnDemand);
  for (int op = 0; op < 6; ++op) {
    random_statement();
    if (HasFatalFailure()) return;
  }
  ViewSnapshot v = db.ReadView("v1");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(db.HeavyPendingRows("v1"), 0);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(*db.catalog(), view, v.relation(), &diff))
      << "after deferred reads: " << diff;

  // And back to immediate (drains on the policy switch), one more pass.
  db.SetRefreshPolicy("v1", deferred::RefreshPolicy::kImmediate);
  for (int op = 0; op < 4; ++op) {
    random_statement();
    if (HasFatalFailure()) return;
  }
  v = db.ReadView("v1");
  ASSERT_TRUE(ViewMatchesRecompute(*db.catalog(), view, v.relation(), &diff))
      << "after returning to immediate: " << diff;
}

}  // namespace
}  // namespace ojv
