# Empty dependencies file for ojv_io.
# This may be replaced when dependencies are built.
