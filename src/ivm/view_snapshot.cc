#include "ivm/view_snapshot.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/windowed.h"

namespace ojv {

namespace {

obs::Gauge* ServeGauge(const char* base, const std::string& view) {
  if constexpr (obs::kEnabled) {
    return &obs::Registry::Global().GetGauge(
        obs::LabeledMetric(base, "view", view));
  } else {
    (void)base;
    (void)view;
    return nullptr;
  }
}

}  // namespace

// --- ViewSnapshot ----------------------------------------------------------

ViewSnapshot::ViewSnapshot(std::shared_ptr<const ViewGeneration> gen,
                           std::shared_ptr<GenerationStore> store)
    : gen_(std::move(gen)), store_(std::move(store)) {
  if (store_ != nullptr) store_->Pin();
}

ViewSnapshot::ViewSnapshot(const ViewSnapshot& other)
    : gen_(other.gen_), store_(other.store_) {
  if (store_ != nullptr) store_->Pin();
}

ViewSnapshot& ViewSnapshot::operator=(const ViewSnapshot& other) {
  if (this == &other) return *this;
  Release();
  gen_ = other.gen_;
  store_ = other.store_;
  if (store_ != nullptr) store_->Pin();
  return *this;
}

ViewSnapshot::ViewSnapshot(ViewSnapshot&& other) noexcept
    : gen_(std::move(other.gen_)), store_(std::move(other.store_)) {
  other.gen_ = nullptr;
  other.store_ = nullptr;
}

ViewSnapshot& ViewSnapshot::operator=(ViewSnapshot&& other) noexcept {
  if (this == &other) return *this;
  Release();
  gen_ = std::move(other.gen_);
  store_ = std::move(other.store_);
  other.gen_ = nullptr;
  other.store_ = nullptr;
  return *this;
}

ViewSnapshot::~ViewSnapshot() { Release(); }

void ViewSnapshot::Release() {
  if (store_ != nullptr) store_->Unpin();
  store_ = nullptr;
  gen_ = nullptr;
}

const Relation& ViewSnapshot::relation() const {
  OJV_CHECK(gen_ != nullptr, "reading an invalid ViewSnapshot");
  return gen_->contents();
}

uint64_t ViewSnapshot::generation() const {
  OJV_CHECK(gen_ != nullptr, "reading an invalid ViewSnapshot");
  return gen_->number();
}

int64_t ViewSnapshot::published_micros() const {
  OJV_CHECK(gen_ != nullptr, "reading an invalid ViewSnapshot");
  return gen_->published_micros();
}

double ViewSnapshot::staleness_micros(int64_t now_micros) const {
  OJV_CHECK(gen_ != nullptr, "reading an invalid ViewSnapshot");
  const int64_t since = gen_->stale_since_micros();
  if (since == 0 || now_micros <= since) return 0;
  return static_cast<double>(now_micros - since);
}

// --- GenerationStore -------------------------------------------------------

GenerationStore::GenerationStore(std::string view_name, bool is_aggregate)
    : view_name_(std::move(view_name)), is_aggregate_(is_aggregate) {}

ViewSnapshot GenerationStore::Acquire() {
  std::shared_ptr<const ViewGeneration> gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gen = gen_;
  }
  if (gen == nullptr) return ViewSnapshot();
  if constexpr (obs::kEnabled) {
    ServeGauge("ojv.serve.generation_age_micros", view_name_)
        ->Set(std::max<int64_t>(
            0, obs::SteadyNowMicros() - gen->published_micros()));
  }
  return ViewSnapshot(std::move(gen), shared_from_this());
}

void GenerationStore::Publish(Relation contents, int64_t now_micros,
                              int64_t stale_since_micros) {
  auto gen = std::make_shared<const ViewGeneration>(
      std::move(contents), next_number_++,
      content_version_.load(std::memory_order_acquire), now_micros,
      stale_since_micros);
  const uint64_t number = gen->number();
  std::shared_ptr<const ViewGeneration> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::move(gen_);
    gen_ = std::move(gen);
  }
  // `retired` drops here (or when its last pinned reader releases).
  if constexpr (obs::kEnabled) {
    ServeGauge("ojv.serve.generation", view_name_)
        ->Set(static_cast<int64_t>(number));
    ServeGauge("ojv.serve.generation_age_micros", view_name_)->Set(0);
  }
}

void GenerationStore::NoteContentChanged(int64_t now_micros) {
  content_version_.fetch_add(1, std::memory_order_acq_rel);
  NoteStaleness(now_micros);
}

void GenerationStore::NoteStaleness(int64_t now_micros) {
  std::shared_ptr<const ViewGeneration> gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gen = gen_;
  }
  if (gen != nullptr) gen->MarkStale(now_micros);
}

bool GenerationStore::UpToDate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gen_ != nullptr &&
         gen_->content_version() ==
             content_version_.load(std::memory_order_acquire);
}

void GenerationStore::Pin() {
  const int64_t pinned = pinned_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if constexpr (obs::kEnabled) {
    ServeGauge("ojv.serve.pinned_readers", view_name_)->Set(pinned);
  } else {
    (void)pinned;
  }
}

void GenerationStore::Unpin() {
  const int64_t pinned = pinned_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if constexpr (obs::kEnabled) {
    ServeGauge("ojv.serve.pinned_readers", view_name_)->Set(pinned);
  } else {
    (void)pinned;
  }
}

}  // namespace ojv
