#ifndef OJV_IVM_EXPLAIN_H_
#define OJV_IVM_EXPLAIN_H_

#include <string>

#include "ivm/maintainer.h"

namespace ojv {

/// Renders a human-readable maintenance report for a view: its normal
/// form, subsumption graph, and — per base table — the affected-term
/// classification, the ΔV^D expression (after FK simplification and
/// left-deep conversion), and the secondary-delta work list. This is the
/// library's EXPLAIN: what will happen when each table is updated, and
/// why.
std::string ExplainMaintenance(const ViewMaintainer& maintainer);

/// The normal-form section only (terms + subsumption edges).
std::string ExplainNormalForm(const ViewMaintainer& maintainer);

}  // namespace ojv

#endif  // OJV_IVM_EXPLAIN_H_
