#ifndef OJV_OBS_TRACE_H_
#define OJV_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs_config.h"

namespace ojv {
namespace obs {

/// One recorded span. Events are appended in completion order: a span
/// opened after its children finished (the evaluator does this so the
/// event order is a post-order walk of the plan tree) still nests
/// correctly in Chrome tracing because "X" events nest by time, and
/// `parent` records the lexically enclosing open span at record time.
struct TraceEvent {
  std::string name;        // e.g. "exec.join", "ivm.primary_delta"
  std::string category;    // subsystem: "exec", "ivm", "deferred", ...
  int64_t start_micros = 0;  // relative to the context's epoch
  int64_t dur_micros = -1;   // -1 while the span is still open
  int tid = 0;               // dense per-context thread number
  int parent = -1;           // event index of enclosing span, -1 = root
  std::vector<std::pair<std::string, int64_t>> args;
  std::vector<std::pair<std::string, std::string>> str_args;

  int64_t ArgOr(const std::string& key, int64_t fallback) const;
  const std::string* StrArg(const std::string& key) const;
};

/// Writes a flat event list as Chrome trace_event JSON
/// ({"traceEvents": [...]}) — load it in chrome://tracing or
/// https://ui.perfetto.dev. Shared by TraceContext::WriteChromeTrace
/// and the flight recorder, so both dumps open in the same viewer.
/// Still-open spans (dur < 0) are stamped with `now_micros` elapsed
/// time so a crash dump stays loadable.
void WriteChromeTraceEvents(std::ostream& out,
                            const std::vector<TraceEvent>& events,
                            int64_t now_micros);

/// Hooks from Span into the process-wide flight recorder, implemented
/// in flight_recorder.cc (declared here so trace.h need not include
/// flight_recorder.h, which includes this header for TraceEvent).
namespace flight_hook {
bool Sample();
int64_t NowMicros();
void Record(const char* name, const char* category, int64_t start_micros,
            int64_t dur_micros);
}  // namespace flight_hook

/// Per-maintenance trace buffer. Thread it through MaintenanceOptions
/// (`options.trace = &ctx`) and every stage of the pipeline — plan
/// build, primary/secondary delta, exec operators, deferred refresh —
/// records spans into it. Null context (the default) means tracing off;
/// every recording call also compiles out entirely under OJV_OBS=OFF.
///
/// Thread-safety: all mutation goes through one mutex; spans are cheap
/// (operators record one event per *node*, not per row or per morsel),
/// so the lock is not on any hot path.
class TraceContext {
 public:
  TraceContext();

  /// Micros since this context was created (monotonic clock).
  int64_t NowMicros() const;

  /// Opens a span: appends an open event (dur -1) and pushes it on the
  /// calling thread's span stack, so spans recorded underneath know
  /// their parent. Returns the event index. Prefer the Span RAII guard.
  int BeginSpan(std::string name, std::string category);

  /// Closes the span opened by BeginSpan and pops the thread's stack.
  void EndSpan(int index, int64_t dur_micros,
               std::vector<std::pair<std::string, int64_t>> args,
               std::vector<std::pair<std::string, std::string>> str_args);

  /// Appends an already-finished span without touching the span stack
  /// (its parent is the thread's current open span). The evaluator uses
  /// this after a node's own work completes, which makes event order a
  /// post-order walk of the plan tree — what ExplainMaintenance zips
  /// against.
  void RecordComplete(
      std::string name, std::string category, int64_t start_micros,
      int64_t dur_micros,
      std::vector<std::pair<std::string, int64_t>> args = {},
      std::vector<std::pair<std::string, std::string>> str_args = {});

  size_t event_count() const;
  std::vector<TraceEvent> Snapshot() const;
  void Clear();

  // --- queries (tests, explain, bench) ---

  /// Summed duration of all finished spans with this name.
  double StageMicros(const std::string& name) const;
  int64_t SpanCount(const std::string& name) const;
  bool HasSpan(const std::string& name) const;
  /// Sum of integer arg `arg` over all spans named `name`.
  int64_t ArgSum(const std::string& name, const std::string& arg) const;

  // --- exports ---

  /// Chrome trace_event JSON ({"traceEvents": [...]}) — load it in
  /// chrome://tracing or https://ui.perfetto.dev. Still-open spans are
  /// emitted with their elapsed time so a crash dump stays loadable.
  void WriteChromeTrace(std::ostream& out) const;

  /// Flat per-stage aggregates plus the global metric registry:
  /// {"spans": {name: {count, total_micros, args: {...}}},
  ///  "metrics": {"counters": ..., "histograms": ...}}.
  void WriteStatsJson(std::ostream& out) const;

  /// Human-readable indented span tree with durations and args.
  std::string RenderTree() const;

 private:
  int TidFor(std::thread::id id);  // requires mu_ held

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, int> tids_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span guard. Inert when constructed with a null context (or with
/// the default constructor, or under OJV_OBS=OFF), so call sites write
///
///   obs::Span span(options.trace, "ivm.maintain", "ivm");
///   ...
///   span.AddArg("rows", n);
///
/// unconditionally. Args accumulate locally and are attached when the
/// span finishes — no lock is taken between Begin and Finish. The
/// destructor finishes an open span with wall time; call
/// FinishWithDuration to stamp an externally measured duration instead
/// (the maintainer feeds its MaintenanceStats micros in, so the legacy
/// numbers and the trace are one measurement, not two).
///
/// Every Span — traced or not — also feeds the process-wide flight
/// recorder (see obs/flight_recorder.h) when its sampling gate says
/// yes, so the last few thousand spans are always reconstructible even
/// with no TraceContext attached. `name` and `category` must be string
/// literals (or otherwise process-lifetime): the recorder stores the
/// pointers, not copies.
class Span {
 public:
  Span() = default;
  Span(TraceContext* ctx, const char* name, const char* category) {
    if constexpr (kEnabled) {
      if (ctx != nullptr) {
        ctx_ = ctx;
        index_ = ctx->BeginSpan(name, category);
        start_ = ctx->NowMicros();
      }
      if (flight_hook::Sample()) {
        flight_name_ = name;
        flight_cat_ = category;
        flight_start_ = flight_hook::NowMicros();
      }
    } else {
      (void)ctx;
      (void)name;
      (void)category;
    }
  }
  ~Span() { Finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      Finish();
      ctx_ = other.ctx_;
      index_ = other.index_;
      start_ = other.start_;
      args_ = std::move(other.args_);
      str_args_ = std::move(other.str_args_);
      flight_name_ = other.flight_name_;
      flight_cat_ = other.flight_cat_;
      flight_start_ = other.flight_start_;
      other.ctx_ = nullptr;
      other.flight_name_ = nullptr;
    }
    return *this;
  }

  bool active() const { return ctx_ != nullptr; }

  void AddArg(const char* key, int64_t value) {
    if constexpr (kEnabled) {
      if (ctx_ != nullptr) args_.emplace_back(key, value);
    } else {
      (void)key;
      (void)value;
    }
  }
  void AddArg(const char* key, std::string value) {
    if constexpr (kEnabled) {
      if (ctx_ != nullptr) str_args_.emplace_back(key, std::move(value));
    } else {
      (void)key;
      (void)value;
    }
  }

  /// Closes with measured wall time. Idempotent.
  void Finish() {
    if constexpr (kEnabled) {
      if (ctx_ != nullptr) {
        FinishWithDuration(static_cast<double>(ctx_->NowMicros() - start_));
        return;
      }
      if (flight_name_ != nullptr) {
        flight_hook::Record(flight_name_, flight_cat_, flight_start_,
                            flight_hook::NowMicros() - flight_start_);
        flight_name_ = nullptr;
      }
    }
  }

  /// Closes with the caller's duration (micros) — use when the stage
  /// already times itself and the trace must agree exactly.
  void FinishWithDuration(double micros) {
    if constexpr (kEnabled) {
      if (ctx_ != nullptr) {
        ctx_->EndSpan(index_, static_cast<int64_t>(micros), std::move(args_),
                      std::move(str_args_));
        ctx_ = nullptr;
      }
      if (flight_name_ != nullptr) {
        flight_hook::Record(flight_name_, flight_cat_, flight_start_,
                            static_cast<int64_t>(micros));
        flight_name_ = nullptr;
      }
    } else {
      (void)micros;
    }
  }

 private:
  TraceContext* ctx_ = nullptr;
  int index_ = -1;
  int64_t start_ = 0;
  const char* flight_name_ = nullptr;
  const char* flight_cat_ = nullptr;
  int64_t flight_start_ = 0;
  std::vector<std::pair<std::string, int64_t>> args_;
  std::vector<std::pair<std::string, std::string>> str_args_;
};

}  // namespace obs
}  // namespace ojv

#endif  // OJV_OBS_TRACE_H_
