#include "exec/partition_split.h"

#include "common/check.h"

namespace ojv {
namespace {

bool RowIsHeavy(const Row& row, const std::vector<int>& probe_positions,
                const HeavyProbe& probe) {
  for (int pos : probe_positions) {
    const Value& v = row[static_cast<size_t>(pos)];
    if (v.is_null()) continue;
    if (probe(pos, v)) return true;
  }
  return false;
}

}  // namespace

SplitResult SplitByHeavyKeys(const std::vector<Row>& rows,
                             const std::vector<int>& probe_positions,
                             const HeavyProbe& probe) {
  SplitResult out;
  out.light.reserve(rows.size());
  for (const Row& row : rows) {
    if (RowIsHeavy(row, probe_positions, probe)) {
      out.heavy.push_back(row);
    } else {
      out.light.push_back(row);
    }
  }
  return out;
}

SplitPairResult SplitPairsByHeavyKeys(const std::vector<Row>& old_rows,
                                      const std::vector<Row>& new_rows,
                                      const std::vector<int>& probe_positions,
                                      const HeavyProbe& probe) {
  OJV_CHECK(old_rows.size() == new_rows.size(),
            "update pairs must be aligned");
  SplitPairResult out;
  out.light_old.reserve(old_rows.size());
  out.light_new.reserve(new_rows.size());
  for (size_t i = 0; i < old_rows.size(); ++i) {
    if (RowIsHeavy(old_rows[i], probe_positions, probe) ||
        RowIsHeavy(new_rows[i], probe_positions, probe)) {
      out.heavy_old.push_back(old_rows[i]);
      out.heavy_new.push_back(new_rows[i]);
    } else {
      out.light_old.push_back(old_rows[i]);
      out.light_new.push_back(new_rows[i]);
    }
  }
  return out;
}

}  // namespace ojv
