#ifndef OJV_EXEC_COLUMNAR_SIMD_AVX2_H_
#define OJV_EXEC_COLUMNAR_SIMD_AVX2_H_

// Declarations of the AVX2 backend (simd_avx2.cc, the one TU built with
// -mavx2). Only the dispatcher in simd.cc includes this; it must route
// here only after a runtime cpuid check.

#if defined(OJV_HAVE_AVX2)

#include <cstdint>

#include "algebra/scalar_expr.h"

namespace ojv {
namespace columnar {
namespace simd {
namespace avx2 {

void CmpI64Lit(const int64_t* vals, int64_t n, CompareOp op, int64_t literal,
               uint8_t* out);
void CmpI64Cols(const int64_t* a, const int64_t* b, int64_t n, CompareOp op,
                uint8_t* out);
void CmpF64Lit(const double* vals, int64_t n, CompareOp op, double literal,
               uint8_t* out);
void HashI64(const int64_t* vals, int64_t n, uint64_t* out);
void HashCombineI64(const int64_t* vals, int64_t n, uint64_t* inout);
void GatherI64(const int64_t* src, const int32_t* idx, int64_t n,
               int64_t* dst);
void GatherF64(const double* src, const int32_t* idx, int64_t n, double* dst);

}  // namespace avx2
}  // namespace simd
}  // namespace columnar
}  // namespace ojv

#endif  // OJV_HAVE_AVX2
#endif  // OJV_EXEC_COLUMNAR_SIMD_AVX2_H_
