#include "algebra/scalar_expr.h"

#include "common/check.h"

namespace ojv {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::set<std::string> ScalarExpr::ReferencedTables() const {
  std::vector<ColumnRef> cols;
  CollectColumns(&cols);
  std::set<std::string> tables;
  for (const ColumnRef& c : cols) tables.insert(c.table);
  return tables;
}

void ScalarExpr::CollectColumns(std::vector<ColumnRef>* out) const {
  if (kind_ == ScalarKind::kColumn) {
    out->push_back(column_);
    return;
  }
  for (const ScalarExprPtr& c : children_) c->CollectColumns(out);
}

bool ScalarExpr::IsNullRejectingOn(const std::string& table) const {
  switch (kind_) {
    case ScalarKind::kColumn:
    case ScalarKind::kLiteral:
      return false;
    case ScalarKind::kCompare:
      // A comparison is unknown (not true) as soon as either side is NULL,
      // so it rejects NULLs of any table it references.
      return ReferencedTables().count(table) > 0;
    case ScalarKind::kAnd: {
      // A conjunction rejects NULLs of `table` if any conjunct does.
      for (const ScalarExprPtr& c : children_) {
        if (c->IsNullRejectingOn(table)) return true;
      }
      return false;
    }
    case ScalarKind::kOr: {
      // A disjunction rejects only if every disjunct does.
      for (const ScalarExprPtr& c : children_) {
        if (!c->IsNullRejectingOn(table)) return false;
      }
      return !children_.empty();
    }
    case ScalarKind::kNot:
    case ScalarKind::kIsNull:
      // NOT p / IS NULL can be *true* on NULL input; conservatively not
      // null-rejecting.
      return false;
  }
  return false;
}

bool ScalarExpr::Equals(const ScalarExpr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ScalarKind::kColumn:
      return column_ == other.column_;
    case ScalarKind::kLiteral:
      return literal_ == other.literal_;
    case ScalarKind::kCompare:
      if (compare_op_ != other.compare_op_) return false;
      break;
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

std::string ScalarExpr::ToString() const {
  switch (kind_) {
    case ScalarKind::kColumn:
      return column_.ToString();
    case ScalarKind::kLiteral:
      return literal_.ToString();
    case ScalarKind::kCompare:
      return left()->ToString() + " " + CompareOpName(compare_op_) + " " +
             right()->ToString();
    case ScalarKind::kAnd:
    case ScalarKind::kOr: {
      std::string sep = kind_ == ScalarKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case ScalarKind::kNot:
      return "NOT (" + child()->ToString() + ")";
    case ScalarKind::kIsNull:
      return child()->ToString() + " IS NULL";
  }
  return "?";
}

ScalarExprPtr ScalarExpr::Column(std::string table, std::string column) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kColumn;
  e->column_ = ColumnRef{std::move(table), std::move(column)};
  return e;
}

ScalarExprPtr ScalarExpr::Literal(Value v) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ScalarExprPtr ScalarExpr::Compare(CompareOp op, ScalarExprPtr l,
                                  ScalarExprPtr r) {
  OJV_CHECK(l != nullptr && r != nullptr, "null compare operand");
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kCompare;
  e->compare_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ScalarExprPtr ScalarExpr::And(std::vector<ScalarExprPtr> children) {
  OJV_CHECK(!children.empty(), "empty AND");
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kAnd;
  e->children_ = std::move(children);
  return e;
}

ScalarExprPtr ScalarExpr::Or(std::vector<ScalarExprPtr> children) {
  OJV_CHECK(!children.empty(), "empty OR");
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kOr;
  e->children_ = std::move(children);
  return e;
}

ScalarExprPtr ScalarExpr::Not(ScalarExprPtr child) {
  OJV_CHECK(child != nullptr, "null NOT operand");
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kNot;
  e->children_ = {std::move(child)};
  return e;
}

ScalarExprPtr ScalarExpr::IsNull(ScalarExprPtr child) {
  OJV_CHECK(child != nullptr, "null IS NULL operand");
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kIsNull;
  e->children_ = {std::move(child)};
  return e;
}

ScalarExprPtr ScalarExpr::ColumnsEqual(const ColumnRef& a, const ColumnRef& b) {
  return Compare(CompareOp::kEq, Column(a.table, a.column),
                 Column(b.table, b.column));
}

std::vector<ScalarExprPtr> SplitConjuncts(const ScalarExprPtr& expr) {
  std::vector<ScalarExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind() == ScalarKind::kAnd) {
    for (const ScalarExprPtr& c : expr->children()) {
      auto sub = SplitConjuncts(c);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else {
    out.push_back(expr);
  }
  return out;
}

ScalarExprPtr MakeConjunction(std::vector<ScalarExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  return ScalarExpr::And(std::move(conjuncts));
}

}  // namespace ojv
