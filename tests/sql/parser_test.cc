// The SQL view-definition dialect: the paper's views written as text
// must parse into exactly the trees the hand-built definitions produce,
// aggregation views parse into group-by + aggregate specs, and errors
// are reported with useful messages.

#include "sql/parser.h"

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "common/rng.h"
#include "ivm/maintainer.h"
#include "sql/lexer.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace sql {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override { tpch::CreateSchema(&catalog_); }

  ParsedView MustParse(const std::string& text) {
    std::string error;
    std::optional<ParsedView> parsed = ParseCreateView(text, catalog_, &error);
    EXPECT_TRUE(parsed.has_value()) << error << "\nsql: " << text;
    return std::move(*parsed);
  }

  std::string MustFail(const std::string& text) {
    std::string error;
    std::optional<ParsedView> parsed = ParseCreateView(text, catalog_, &error);
    EXPECT_FALSE(parsed.has_value()) << "sql: " << text;
    EXPECT_FALSE(error.empty());
    return error;
  }

  Catalog catalog_;
};

TEST(LexerTest, TokenKinds) {
  std::vector<Token> tokens;
  std::string error;
  ASSERT_TRUE(Lex("SELECT p_name, 'it''s' FROM part WHERE p_size >= 2.5",
                  &tokens, &error))
      << error;
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "it's");
  EXPECT_EQ(tokens[8].text, ">=");
  EXPECT_EQ(tokens[9].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_FALSE(Lex("SELECT 'oops", &tokens, &error));
  EXPECT_NE(error.find("unterminated"), std::string::npos);
  EXPECT_FALSE(Lex("SELECT #", &tokens, &error));
  EXPECT_NE(error.find("unexpected character"), std::string::npos);
}

TEST_F(ParserTest, Example1ViewMatchesHandBuiltDefinition) {
  ParsedView parsed = MustParse(R"sql(
      CREATE VIEW oj_view AS
      SELECT p_partkey, p_name, p_retailprice, o_orderkey, o_custkey,
             l_orderkey, l_linenumber, l_quantity, l_extendedprice
      FROM part FULL OUTER JOIN
           (orders LEFT OUTER JOIN lineitem ON l_orderkey = o_orderkey)
           ON p_partkey = l_partkey)sql");
  EXPECT_FALSE(parsed.is_aggregate);
  ViewDef reference = tpch::MakeOjView(catalog_);
  EXPECT_EQ(parsed.view.tree()->ToString(), reference.tree()->ToString());
  EXPECT_EQ(parsed.view.output().size(), reference.output().size());
  EXPECT_EQ(parsed.view.name(), "oj_view");
}

TEST_F(ParserTest, V3ParsesWithDerivedTableAndPredicates) {
  ParsedView parsed = MustParse(R"sql(
      CREATE VIEW v3 AS
      SELECT l_orderkey, l_linenumber, l_quantity, l_extendedprice,
             l_shipdate, l_returnflag, o_orderkey, o_orderdate, o_clerk,
             c_custkey, c_nationkey, c_mktsegment, p_partkey, p_type,
             p_retailprice
      FROM ((SELECT * FROM lineitem JOIN orders
               ON l_orderkey = o_orderkey
               AND o_orderdate BETWEEN DATE '1994-06-01' AND DATE '1994-12-31')
            RIGHT OUTER JOIN customer ON c_custkey = o_custkey)
           FULL OUTER JOIN part
             ON l_partkey = p_partkey AND p_retailprice < 2000)sql");
  // Same four terms as the hand-built V3 (Table 1).
  std::vector<Term> terms = ComputeJdnf(parsed.view.tree(), catalog_);
  std::set<std::string> labels;
  for (const Term& t : terms) labels.insert(t.Label());
  EXPECT_EQ(labels,
            (std::set<std::string>{"{customer,lineitem,orders,part}",
                                   "{customer,lineitem,orders}", "{customer}",
                                   "{part}"}));
}

TEST_F(ParserTest, ParsedViewIsMaintainable) {
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog_);
  tpch::RefreshStream refresh(&catalog_, &dbgen, 11);

  ParsedView parsed = MustParse(
      "CREATE VIEW ol AS SELECT * FROM orders LEFT JOIN lineitem "
      "ON o_orderkey = l_orderkey");
  ViewMaintainer maintainer(&catalog_, parsed.view, MaintenanceOptions());
  maintainer.InitializeView();
  std::vector<Row> inserted = ApplyBaseInsert(catalog_.GetTable("lineitem"),
                                              refresh.NewLineitems(100));
  maintainer.OnInsert("lineitem", inserted);
  std::string diff;
  EXPECT_TRUE(ViewMatchesRecompute(catalog_, parsed.view, maintainer.view(),
                                   &diff))
      << diff;
}

TEST_F(ParserTest, MissingKeysAreAppendedAutomatically) {
  ParsedView parsed = MustParse(
      "CREATE VIEW v AS SELECT o_clerk FROM orders");
  // o_orderkey appended so the view outputs the table's key.
  EXPECT_TRUE(parsed.view.output_schema().HasFullKey("orders"));
}

TEST_F(ParserTest, UnqualifiedColumnsResolveWhenUnique) {
  ParsedView parsed = MustParse(
      "CREATE VIEW v AS SELECT o_orderkey, c_name FROM orders "
      "JOIN customer ON o_custkey = c_custkey");
  EXPECT_EQ(parsed.view.output()[0].table, "orders");
  EXPECT_EQ(parsed.view.output()[1].table, "customer");
}

TEST_F(ParserTest, QualifiedColumnsAndWhereClause) {
  ParsedView parsed = MustParse(
      "CREATE VIEW v AS SELECT orders.o_orderkey FROM orders "
      "WHERE orders.o_totalprice > 1000 AND o_orderstatus = 'O'");
  EXPECT_EQ(parsed.view.tree()->kind(), RelKind::kSelect);
  EXPECT_EQ(SplitConjuncts(parsed.view.tree()->predicate()).size(), 2u);
}

TEST_F(ParserTest, AggregateViewParses) {
  ParsedView parsed = MustParse(R"sql(
      CREATE VIEW seg_sales AS
      SELECT c_mktsegment, COUNT(*) AS rows, COUNT(l_orderkey),
             SUM(l_extendedprice) AS revenue
      FROM customer LEFT JOIN
           (SELECT * FROM orders JOIN lineitem ON l_orderkey = o_orderkey)
           ON c_custkey = o_custkey
      GROUP BY c_mktsegment)sql");
  EXPECT_TRUE(parsed.is_aggregate);
  ASSERT_EQ(parsed.group_by.size(), 1u);
  EXPECT_EQ(parsed.group_by[0].column, "c_mktsegment");
  ASSERT_EQ(parsed.aggregates.size(), 3u);
  EXPECT_EQ(parsed.aggregates[0].kind, AggregateSpec::Kind::kCountStar);
  EXPECT_EQ(parsed.aggregates[0].name, "rows");
  EXPECT_EQ(parsed.aggregates[1].kind, AggregateSpec::Kind::kCount);
  EXPECT_EQ(parsed.aggregates[1].name, "count_l_orderkey");
  EXPECT_EQ(parsed.aggregates[2].kind, AggregateSpec::Kind::kSum);
  EXPECT_EQ(parsed.aggregates[2].name, "revenue");

  // And it maintains correctly end to end.
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog_);
  AggViewMaintainer agg(&catalog_, parsed.view, parsed.group_by,
                        parsed.aggregates);
  agg.InitializeView();
  tpch::RefreshStream refresh(&catalog_, &dbgen, 12);
  std::vector<Row> inserted = ApplyBaseInsert(catalog_.GetTable("lineitem"),
                                              refresh.NewLineitems(80));
  agg.OnInsert("lineitem", inserted);
  std::string diff;
  EXPECT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << diff;
}

TEST_F(ParserTest, MinMaxAggregatesParse) {
  ParsedView parsed = MustParse(
      "CREATE VIEW price_range AS SELECT o_clerk, MIN(o_totalprice), "
      "MAX(o_totalprice) AS top FROM orders GROUP BY o_clerk");
  ASSERT_EQ(parsed.aggregates.size(), 2u);
  EXPECT_EQ(parsed.aggregates[0].kind, AggregateSpec::Kind::kMin);
  EXPECT_EQ(parsed.aggregates[0].name, "min_o_totalprice");
  EXPECT_EQ(parsed.aggregates[1].kind, AggregateSpec::Kind::kMax);
  EXPECT_EQ(parsed.aggregates[1].name, "top");
}

TEST_F(ParserTest, ErrorMessages) {
  EXPECT_NE(MustFail("CREATE VIEW v AS SELECT x FROM nowhere")
                .find("unknown table"),
            std::string::npos);
  EXPECT_NE(MustFail("CREATE VIEW v AS SELECT nope FROM orders")
                .find("unknown column"),
            std::string::npos);
  EXPECT_NE(MustFail("CREATE VIEW v AS SELECT o_orderkey FROM orders "
                     "JOIN lineitem ON o_orderkey = o_orderkey")
                .find("reference both join inputs"),
            std::string::npos);
  EXPECT_NE(MustFail("CREATE VIEW v AS SELECT l_orderkey FROM lineitem "
                     "JOIN lineitem ON l_orderkey = l_orderkey")
                .find("referenced twice"),
            std::string::npos);
  EXPECT_NE(MustFail("CREATE VIEW v AS SELECT COUNT(*) FROM orders")
                .find("GROUP BY"),
            std::string::npos);
  EXPECT_NE(MustFail("CREATE VIEW v AS SELECT AVG(o_totalprice) FROM orders "
                     "GROUP BY o_clerk")
                .find("SUM and COUNT"),
            std::string::npos);
  // Ambiguity: two tables could both have... every TPC-H column name is
  // prefixed, so build the case with a qualified-but-wrong table.
  EXPECT_NE(MustFail("CREATE VIEW v AS SELECT part.o_orderkey FROM orders "
                     "JOIN part ON p_partkey = o_orderkey")
                .find("unknown column"),
            std::string::npos);
  EXPECT_NE(MustFail("CREATE VIEW v AS SELECT o_orderkey FROM orders extra")
                .find("trailing"),
            std::string::npos);
  EXPECT_NE(MustFail("CREATE VIEW v AS SELECT o_orderkey FROM orders "
                     "WHERE o_totalprice > 99999999999999999999999999")
                .find("out of range"),
            std::string::npos);
}

TEST_F(ParserTest, MutatedInputNeverCrashes) {
  // Fuzz-lite: random mutations of a valid statement must either parse
  // or fail with an error — never crash or loop.
  const std::string base =
      "CREATE VIEW v AS SELECT o_orderkey, l_linenumber FROM orders "
      "LEFT OUTER JOIN lineitem ON o_orderkey = l_orderkey "
      "WHERE o_totalprice > 100 GROUP BY o_clerk";
  Rng rng(4321);
  const char alphabet[] = "abcXYZ01().,*=<>'\"| _";
  int parsed_ok = 0;
  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    int edits = static_cast<int>(rng.Uniform(1, 6));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.Uniform(0, 2)) {
        case 0:
          mutated[pos] = alphabet[rng.Uniform(
              0, static_cast<int64_t>(sizeof(alphabet)) - 2)];
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1,
                         alphabet[rng.Uniform(
                             0, static_cast<int64_t>(sizeof(alphabet)) - 2)]);
          break;
      }
    }
    std::string error;
    std::optional<ParsedView> parsed =
        ParseCreateView(mutated, catalog_, &error);
    if (parsed.has_value()) {
      ++parsed_ok;
    } else {
      EXPECT_FALSE(error.empty()) << mutated;
    }
  }
  // Sanity: mutations overwhelmingly fail to parse.
  EXPECT_LT(parsed_ok, 100);
}

}  // namespace
}  // namespace sql
}  // namespace ojv
