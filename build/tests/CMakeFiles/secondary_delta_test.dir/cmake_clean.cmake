file(REMOVE_RECURSE
  "CMakeFiles/secondary_delta_test.dir/ivm/secondary_delta_test.cc.o"
  "CMakeFiles/secondary_delta_test.dir/ivm/secondary_delta_test.cc.o.d"
  "secondary_delta_test"
  "secondary_delta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secondary_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
