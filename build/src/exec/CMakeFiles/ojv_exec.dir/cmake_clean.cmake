file(REMOVE_RECURSE
  "CMakeFiles/ojv_exec.dir/bound_scalar.cc.o"
  "CMakeFiles/ojv_exec.dir/bound_scalar.cc.o.d"
  "CMakeFiles/ojv_exec.dir/evaluator.cc.o"
  "CMakeFiles/ojv_exec.dir/evaluator.cc.o.d"
  "CMakeFiles/ojv_exec.dir/relation.cc.o"
  "CMakeFiles/ojv_exec.dir/relation.cc.o.d"
  "libojv_exec.a"
  "libojv_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
