// UPDATE statements (§6 caveat 1): an update is a delete+insert pair
// maintained with FK-free plans. Measures V3 under three shapes of
// update traffic and compares against the plain insert+delete cost of
// the same rows under FK plans — the price of the caveat.

#include "bench_util.h"
#include "ivm/maintainer.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f\n", options.scale_factor);
  TpchInstance instance(options);

  ViewDef v3 = tpch::MakeV3(instance.catalog);
  ViewMaintainer maintainer(&instance.catalog, v3, MaintenanceOptions());
  maintainer.InitializeView();

  JsonReport report("updates", options);
  PrintHeader("UPDATE statements on V3 (delete+insert, FK-free plans)",
              {"Table", "Rows", "OnUpdate", "2ndRows"});

  auto run_update = [&](const std::string& table, int64_t n,
                        auto&& mutate) {
    Table* base = instance.catalog.GetTable(table);
    // Sample n rows and mutate a non-key column.
    std::vector<Row> keys;
    std::vector<Row> new_rows;
    base->ForEach([&](const Row& row) {
      if (static_cast<int64_t>(keys.size()) >= n) return;
      Row key;
      for (int p : base->key_positions()) {
        key.push_back(row[static_cast<size_t>(p)]);
      }
      keys.push_back(std::move(key));
      Row updated = row;
      mutate(&updated);
      new_rows.push_back(std::move(updated));
    });
    std::vector<Row> old_rows;
    ApplyBaseUpdate(base, keys, new_rows, &old_rows);
    MaintenanceStats stats;
    double ms = TimeMs(
        [&] { stats = maintainer.OnUpdate(table, old_rows, new_rows); });
    PrintRow({table, FormatCount(n), FormatMs(ms),
              FormatCount(stats.secondary_rows)});
    report.BeginRow();
    report.Str("table", table);
    report.Count("batch_rows", n);
    report.Num("update_ms", ms);
    report.Count("secondary_rows", stats.secondary_rows);
    // Restore.
    std::vector<Row> back;
    ApplyBaseUpdate(base, keys, old_rows, &back);
    maintainer.OnUpdate(table, back, old_rows);
  };

  for (int64_t batch : options.batches) {
    // lineitem: quantity changes (no FK interaction).
    run_update("lineitem", batch, [](Row* row) {
      (*row)[4] = Value::Float64((*row)[4].float64() + 1);
    });
  }
  // part: price changes can move rows across the p_retailprice < 2000
  // boundary, changing term membership.
  run_update("part", 500, [](Row* row) {
    (*row)[7] = Value::Float64((*row)[7].float64() + 600);
  });
  // orders: date changes can move orders in/out of the view's window —
  // the case where plain inserts/deletes would be FK-immune but updates
  // are not.
  run_update("orders", 500, [](Row* row) {
    (*row)[4] = Value::Date((*row)[4].int64() + 200);
  });
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
