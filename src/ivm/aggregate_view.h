#ifndef OJV_IVM_AGGREGATE_VIEW_H_
#define OJV_IVM_AGGREGATE_VIEW_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ivm/maintainer.h"
#include "ivm/view_def.h"

namespace ojv {

/// One aggregate of an aggregation view (paper §3.3). AVG is derivable
/// from SUM/COUNT. MIN/MAX are not self-maintainable under deletions
/// (the paper and SQL Server indexed views exclude them); we support
/// them as an extension by falling back to a per-group recomputation
/// whenever a deletion removes the current extreme.
struct AggregateSpec {
  enum class Kind { kCountStar, kCount, kSum, kMin, kMax };
  Kind kind = Kind::kCountStar;
  ColumnRef column;  // ignored for kCountStar
  std::string name;  // output column name
};

/// An aggregated outer-join view: GROUP BY over an SPOJ view.
///
/// Maintenance follows §3.3: the primary delta ΔV^D is computed exactly
/// as for the non-aggregated view, aggregated, and merged into the
/// groups; the secondary delta ΔV^I is computed from base tables (terms
/// cannot be extracted from an aggregated view, §5.3) and applied with
/// the opposite sign. Each group keeps a row count — groups reaching
/// zero are deleted — and a non-null contribution count per aggregate,
/// so a SUM/COUNT over a table that is entirely null-extended within a
/// group renders NULL and recovers when contributions reappear.
class AggViewMaintainer {
 public:
  AggViewMaintainer(const Catalog* catalog, ViewDef base,
                    std::vector<ColumnRef> group_by,
                    std::vector<AggregateSpec> aggregates,
                    MaintenanceOptions options = MaintenanceOptions());

  /// §3.3 fidelity: also expose, per group, a not-null count column
  /// "notnull_<table>" for every table that is null-extended in some
  /// term of the base view. Must be called before InitializeView.
  void ExposeNotNullCounts();

  /// Computes all groups from scratch.
  void InitializeView();

  /// Same contract as ViewMaintainer: the base table is already updated.
  MaintenanceStats OnInsert(const std::string& table,
                            const std::vector<Row>& rows,
                            PlanPolicy policy = PlanPolicy::kDefault);
  MaintenanceStats OnDelete(const std::string& table,
                            const std::vector<Row>& rows,
                            PlanPolicy policy = PlanPolicy::kDefault);

  /// UPDATE statement (delete+insert pair). Like ViewMaintainer::
  /// OnUpdate, foreign-key shortcuts are disabled for the pair (§6
  /// caveat 1) via a dedicated FK-free plan set.
  MaintenanceStats OnUpdate(const std::string& table,
                            const std::vector<Row>& old_rows,
                            const std::vector<Row>& new_rows);

  /// Consolidated deferred batch: applies net deletes to `base` and
  /// maintains them, then net inserts (see ViewMaintainer::
  /// OnConsolidatedBatch for the exact contract).
  MaintenanceStats OnConsolidatedBatch(Table* base, const std::string& table,
                                       const std::vector<Row>& net_deletes,
                                       const std::vector<Row>& net_inserts,
                                       PlanPolicy policy);

  /// Multi-view entry point: like ViewMaintainer::OnSharedDelta, the
  /// primary delta is computed from a pre-built suffix expression over
  /// the group's shared prefix relation, then aggregated and merged as
  /// usual (secondary delta and MIN/MAX fallback unchanged).
  MaintenanceStats OnSharedDelta(const std::string& table,
                                 const std::vector<Row>& rows, bool is_insert,
                                 PlanPolicy policy,
                                 const RelExprPtr& shared_suffix,
                                 const Relation& shared_prefix);

  /// The plan-set maintainer a maintenance call under `policy` would
  /// use (the multiview layer fingerprints its delta expressions).
  const ViewMaintainer* planning_maintainer(PlanPolicy policy) const {
    return policy == PlanPolicy::kConstraintFree && fkfree_inner_ != nullptr
               ? fkfree_inner_.get()
               : inner_.get();
  }
  ViewMaintainer* planning_maintainer(PlanPolicy policy) {
    return policy == PlanPolicy::kConstraintFree && fkfree_inner_ != nullptr
               ? fkfree_inner_.get()
               : inner_.get();
  }

  /// Installs a stats observer (empty to remove).
  void set_stats_hook(MaintenanceStatsHook hook) {
    stats_hook_ = std::move(hook);
  }

  // --- skew-adaptive maintenance (options.skew = kHeavyLight) ---
  // The wrapper owns its own heavy-light controller (the inner plan-set
  // maintainers run kUniform — diversion must happen before the group
  // merge, not inside the row-level pipeline the wrapper borrows plans
  // from). Contracts mirror ViewMaintainer's.

  /// See ViewMaintainer::PrepareHeavyForOp: call BEFORE applying a
  /// conflicting base change.
  void PrepareHeavyForOp(const std::string& table, PlanPolicy policy,
                         bool is_update = false);

  /// Folds pending heavy-key lazy state into the groups; no-op when
  /// nothing pends.
  MaintenanceStats DrainHeavyState();

  int64_t HeavyPendingRows() const {
    return heavy_ != nullptr ? heavy_->pending_rows() : 0;
  }

  HeavyLightController* heavy_controller() { return heavy_.get(); }

  int64_t num_groups() const { return static_cast<int64_t>(groups_.size()); }

  /// Snapshot: group columns, then "row_count", then the declared
  /// aggregates (NULL where no non-null contribution exists).
  Relation AsRelation() const;

  /// Oracle: the same snapshot recomputed from base tables.
  Relation Recompute() const;

  /// Compares the maintained groups against a recomputation: group keys
  /// and counts must match exactly; SUMs within `rel_tol` relative error
  /// (incremental float SUMs accumulate rounding, exactly as in any
  /// database that maintains SUM over floating-point columns).
  bool MatchesRecompute(double rel_tol, std::string* diff) const;

  const ViewDef& base_view() const { return inner_->view_def(); }

  const ExecConfig& exec_config() const { return inner_->exec_config(); }

  /// Swaps the executor configuration on both plan-set maintainers (used
  /// by the deferred refresh path; see ViewMaintainer::set_exec).
  void set_exec(const ExecConfig& exec) {
    inner_->set_exec(exec);
    if (fkfree_inner_ != nullptr) fkfree_inner_->set_exec(exec);
  }

  /// Attaches a trace context to both plan-set maintainers.
  void set_trace(obs::TraceContext* trace) {
    inner_->set_trace(trace);
    if (fkfree_inner_ != nullptr) fkfree_inner_->set_trace(trace);
  }

 private:
  struct RowLess {
    bool operator()(const Row& a, const Row& b) const {
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = a[i].SortCompare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    }
  };
  struct Accumulator {
    int64_t row_count = 0;
    std::vector<double> sums;      // per aggregate: Σ non-null values
    std::vector<int64_t> nonnull;  // per aggregate: # non-null values
    std::vector<Value> extremes;   // per aggregate: current MIN/MAX
    /// Set when a deletion removed a MIN/MAX extreme: the group's
    /// extremes must be recomputed before the next read.
    bool dirty = false;
  };
  using GroupMap = std::map<Row, Accumulator, RowLess>;

  bool HasMinMax() const;
  /// Recomputes the extremes of all dirty groups in one pass over the
  /// base view (deletion fallback for MIN/MAX).
  void RefreshDirtyGroups();

  MaintenanceStats Maintain(ViewMaintainer* planner, const std::string& table,
                            const std::vector<Row>& rows, bool is_insert,
                            const RelExprPtr* shared_suffix = nullptr,
                            const Relation* shared_prefix = nullptr);
  void ApplyRow(const Row& row, int sign, GroupMap* groups) const;
  void ApplyDeltaRows(const Relation& delta, int sign);
  Relation GroupsToRelation(const GroupMap& groups) const;

  const Catalog* catalog_;
  std::vector<ColumnRef> group_by_;
  std::vector<AggregateSpec> aggregates_;

  /// Provides the per-table plans and the primary-delta evaluation; its
  /// own (row-level) view storage stays empty and unused.
  std::unique_ptr<ViewMaintainer> inner_;
  /// FK-free plans for OnUpdate; null when inner_ is already FK-free.
  std::unique_ptr<ViewMaintainer> fkfree_inner_;

  std::vector<int> group_positions_;  // in the base view's output schema
  std::vector<int> agg_positions_;    // per aggregate; -1 for COUNT(*)
  GroupMap groups_;
  /// When ExposeNotNullCounts was requested: the null-extendable tables
  /// (name, first-key position in the base view's schema).
  std::vector<std::pair<std::string, int>> notnull_tables_;
  MaintenanceStatsHook stats_hook_;
  /// Heavy-light partitioning state; null under skew = kUniform.
  std::unique_ptr<HeavyLightController> heavy_;
  bool draining_heavy_ = false;

  bool CanDivert(const std::string& table, PlanPolicy policy,
                 bool is_update) const {
    return heavy_ != nullptr &&
           (is_update || policy == PlanPolicy::kDefault) &&
           heavy_->HasEdges(table);
  }
  void CheckHeavyConflict(const std::string& table, bool can_divert) const;
};

}  // namespace ojv

#endif  // OJV_IVM_AGGREGATE_VIEW_H_
