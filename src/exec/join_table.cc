#include "exec/join_table.h"

#include <algorithm>

namespace ojv {
namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

size_t PartitionOf(size_t hash, int bits) {
  return bits == 0 ? 0 : hash >> (64 - static_cast<unsigned>(bits));
}

}  // namespace

void JoinTable::FillPartition(const std::vector<size_t>& hashes,
                              size_t part_index) {
  const Partition& part = partitions_[part_index];
  for (size_t row = 0; row < hashes.size(); ++row) {
    const size_t h = hashes[row];
    if (h == kSkipHash) continue;
    if (PartitionOf(h, partition_bits_) != part_index) continue;
    size_t idx = h & part.mask;
    while (slots_[part.offset + idx].row >= 0) idx = (idx + 1) & part.mask;
    slots_[part.offset + idx] = Slot{h, static_cast<int64_t>(row)};
  }
}

void JoinTable::Build(const std::vector<size_t>& hashes, int num_partitions,
                      ThreadPool* pool) {
  const size_t num_parts =
      pool == nullptr ? 1 : NextPow2(static_cast<size_t>(
                                std::max(1, num_partitions)));
  partition_bits_ = 0;
  while ((size_t{1} << partition_bits_) < num_parts) ++partition_bits_;

  // Per-partition cardinalities (single cheap pass over the hash array).
  std::vector<size_t> counts(num_parts, 0);
  entries_ = 0;
  for (size_t h : hashes) {
    if (h == kSkipHash) continue;
    ++counts[PartitionOf(h, partition_bits_)];
    ++entries_;
  }

  // Lay the partitions out back to back, each a power of two at most
  // half full (an empty slot always terminates a probe).
  partitions_.resize(num_parts);
  size_t total = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    size_t capacity = counts[p] == 0 ? 1 : NextPow2(2 * counts[p]);
    partitions_[p] = Partition{total, capacity - 1};
    total += capacity;
  }
  slots_.assign(total, Slot{0, -1});

  if (num_parts == 1 || pool == nullptr) {
    for (size_t p = 0; p < num_parts; ++p) FillPartition(hashes, p);
    return;
  }
  pool->ParallelFor(static_cast<int64_t>(num_parts), /*grain=*/1,
                    [&](int64_t, int64_t begin, int64_t end) {
                      for (int64_t p = begin; p < end; ++p) {
                        FillPartition(hashes, static_cast<size_t>(p));
                      }
                    });
}

}  // namespace ojv
