#!/usr/bin/env bash
# Full verification: build and run the test suite three times — a plain
# Release build, an ASan/UBSan build (-DOJV_SANITIZE=address,undefined),
# and a ThreadSanitizer build (-DOJV_TSAN=ON) that runs the
# concurrency-sensitive tests: the morsel-parallel executor equivalence
# suite and the deferred/background-refresh tests. Run from anywhere;
# builds land in build-check-* at the repository root.
#
#   tools/check.sh            # all configurations
#   tools/check.sh release    # Release only
#   tools/check.sh sanitize   # ASan/UBSan only
#   tools/check.sh tsan       # ThreadSanitizer only

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
mode="${1:-all}"

run_config() {
  local name="$1"; shift
  local filter=""
  if [ "$1" = "--tests" ]; then filter="$2"; shift 2; fi
  local dir="$root/build-check-$name"
  echo "==> [$name] configure"
  cmake -B "$dir" -S "$root" "$@" >/dev/null
  echo "==> [$name] build"
  cmake --build "$dir" -j "$jobs" >/dev/null
  echo "==> [$name] ctest"
  if [ -n "$filter" ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
}

case "$mode" in
  release|all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;&
  sanitize|all)
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DOJV_SANITIZE=address,undefined
    ;;&
  tsan|all)
    # The full suite is serial-dominated; under TSan only the tests that
    # actually spawn threads carry signal, and they carry all of it.
    run_config tsan --tests 'parallel_executor|deferred|database' \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOJV_TSAN=ON
    ;;&
  release|sanitize|tsan|all)
    echo "==> all requested configurations passed"
    ;;
  *)
    echo "usage: tools/check.sh [release|sanitize|tsan|all]" >&2
    exit 2
    ;;
esac
