#ifndef OJV_ALGEBRA_SCALAR_EXPR_H_
#define OJV_ALGEBRA_SCALAR_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/value.h"

namespace ojv {

/// A column reference qualified by base-table name. Views reference each
/// table at most once (paper §2), so the table name identifies the
/// binding uniquely throughout planning and execution.
struct ColumnRef {
  std::string table;
  std::string column;

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
  bool operator<(const ColumnRef& o) const {
    return table != o.table ? table < o.table : column < o.column;
  }
  std::string ToString() const { return table + "." + column; }
};

enum class ScalarKind {
  kColumn,
  kLiteral,
  kCompare,
  kAnd,
  kOr,
  kNot,
  kIsNull,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

class ScalarExpr;
using ScalarExprPtr = std::shared_ptr<const ScalarExpr>;

/// Immutable scalar expression tree with SQL three-valued semantics.
///
/// The evaluator (exec/) compiles these against a bound schema; here we
/// only provide structure, printing, and the static analyses the
/// maintenance algorithms need (referenced tables, null-rejection).
class ScalarExpr {
 public:
  ScalarKind kind() const { return kind_; }

  // kColumn
  const ColumnRef& column() const { return column_; }
  // kLiteral
  const Value& literal() const { return literal_; }
  // kCompare
  CompareOp compare_op() const { return compare_op_; }
  const ScalarExprPtr& left() const { return children_[0]; }
  const ScalarExprPtr& right() const { return children_[1]; }
  // kAnd / kOr
  const std::vector<ScalarExprPtr>& children() const { return children_; }
  // kNot / kIsNull
  const ScalarExprPtr& child() const { return children_[0]; }

  /// All base tables whose columns appear in this expression.
  std::set<std::string> ReferencedTables() const;

  /// All column references in this expression.
  void CollectColumns(std::vector<ColumnRef>* out) const;

  /// True if the expression is null-rejecting on `table`: it cannot
  /// evaluate to true when every column of `table` is NULL. All view
  /// predicates are required to be null-rejecting on every table they
  /// reference (paper §2); this analysis verifies that property for the
  /// conservative class we accept (conjunctions of comparisons).
  bool IsNullRejectingOn(const std::string& table) const;

  /// Structural equality.
  bool Equals(const ScalarExpr& other) const;

  std::string ToString() const;

  // --- factories ---
  static ScalarExprPtr Column(std::string table, std::string column);
  static ScalarExprPtr Literal(Value v);
  static ScalarExprPtr Compare(CompareOp op, ScalarExprPtr l, ScalarExprPtr r);
  static ScalarExprPtr And(std::vector<ScalarExprPtr> children);
  static ScalarExprPtr Or(std::vector<ScalarExprPtr> children);
  static ScalarExprPtr Not(ScalarExprPtr child);
  static ScalarExprPtr IsNull(ScalarExprPtr child);

  /// eq(a, b) convenience.
  static ScalarExprPtr ColumnsEqual(const ColumnRef& a, const ColumnRef& b);

 private:
  ScalarExpr() = default;

  ScalarKind kind_ = ScalarKind::kLiteral;
  ColumnRef column_;
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  std::vector<ScalarExprPtr> children_;
};

/// Flattens nested ANDs into a conjunct list. A null expr yields {}.
std::vector<ScalarExprPtr> SplitConjuncts(const ScalarExprPtr& expr);

/// Rebuilds a conjunction; {} yields nullptr (meaning TRUE).
ScalarExprPtr MakeConjunction(std::vector<ScalarExprPtr> conjuncts);

}  // namespace ojv

#endif  // OJV_ALGEBRA_SCALAR_EXPR_H_
