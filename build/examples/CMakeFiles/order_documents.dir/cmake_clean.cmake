file(REMOVE_RECURSE
  "CMakeFiles/order_documents.dir/order_documents.cpp.o"
  "CMakeFiles/order_documents.dir/order_documents.cpp.o.d"
  "order_documents"
  "order_documents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_documents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
