#ifndef OJV_CATALOG_SCHEMA_H_
#define OJV_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace ojv {

/// Definition of one base-table column.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  bool nullable = true;
};

/// An ordered list of columns. Lookup is by name; positions are stable.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Returns the position of `name`, or -1 if absent.
  int Find(const std::string& name) const;

  /// Returns the position of `name`; aborts if absent.
  int IndexOf(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

/// A row is one value per schema column.
using Row = std::vector<Value>;

/// Hash of a row prefix/projection given column positions.
size_t HashRowAt(const Row& row, const std::vector<int>& positions);

/// Equality of two rows on the given column positions (NULL == NULL).
bool RowsEqualAt(const Row& a, const Row& b, const std::vector<int>& pos_a,
                 const std::vector<int>& pos_b);

}  // namespace ojv

#endif  // OJV_CATALOG_SCHEMA_H_
