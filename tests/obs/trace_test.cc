// Unit tests for TraceContext + Span: parenting, args, the
// FinishWithDuration contract, export formats, and the compile-out
// behavior under OJV_OBS=OFF (the same source asserts both ways).

#include "obs/trace.h"

#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace ojv {
namespace obs {
namespace {

TEST(SpanTest, NullContextIsInert) {
  Span span(nullptr, "ivm.maintain", "ivm");
  EXPECT_FALSE(span.active());
  span.AddArg("rows", 1);  // must not crash
}

TEST(SpanTest, RecordsNameCategoryAndArgs) {
  TraceContext ctx;
  {
    Span span(&ctx, "ivm.maintain", "ivm");
    span.AddArg("rows", 42);
    span.AddArg("table", std::string("lineitem"));
  }
  if (!kEnabled) {
    EXPECT_EQ(ctx.event_count(), 0u);
    return;
  }
  ASSERT_EQ(ctx.event_count(), 1u);
  std::vector<TraceEvent> events = ctx.Snapshot();
  EXPECT_EQ(events[0].name, "ivm.maintain");
  EXPECT_EQ(events[0].category, "ivm");
  EXPECT_GE(events[0].dur_micros, 0);
  EXPECT_EQ(events[0].ArgOr("rows", -1), 42);
  ASSERT_NE(events[0].StrArg("table"), nullptr);
  EXPECT_EQ(*events[0].StrArg("table"), "lineitem");
}

TEST(SpanTest, NestingSetsParent) {
  TraceContext ctx;
  {
    Span outer(&ctx, "outer", "test");
    {
      Span inner(&ctx, "inner", "test");
    }
  }
  if (!kEnabled) return;
  std::vector<TraceEvent> events = ctx.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // BeginSpan appends in open order: outer first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].parent, -1);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].parent, 0);
}

TEST(SpanTest, RecordCompleteParentsUnderOpenSpan) {
  TraceContext ctx;
  {
    Span outer(&ctx, "outer", "test");
    ctx.RecordComplete("leaf", "exec", 0, 5, {{"rows_out", 3}});
  }
  if (!kEnabled) return;
  std::vector<TraceEvent> events = ctx.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].name, "leaf");
  EXPECT_EQ(events[1].parent, 0);
  EXPECT_EQ(events[1].dur_micros, 5);
}

TEST(SpanTest, FinishWithDurationStampsExactly) {
  TraceContext ctx;
  Span span(&ctx, "stage", "test");
  span.FinishWithDuration(1234.0);
  if (!kEnabled) return;
  std::vector<TraceEvent> events = ctx.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].dur_micros, 1234);
  // The legacy stats number and the trace duration are one measurement:
  // StageMicros must return what the caller fed in, not wall time.
  EXPECT_DOUBLE_EQ(ctx.StageMicros("stage"), 1234.0);
}

TEST(TraceContextTest, QueriesAggregateByName) {
  TraceContext ctx;
  ctx.RecordComplete("exec.join", "exec", 0, 10, {{"rows_out", 4}});
  ctx.RecordComplete("exec.join", "exec", 10, 20, {{"rows_out", 6}});
  if (!kEnabled) {
    EXPECT_FALSE(ctx.HasSpan("exec.join"));
    return;
  }
  EXPECT_TRUE(ctx.HasSpan("exec.join"));
  EXPECT_EQ(ctx.SpanCount("exec.join"), 2);
  EXPECT_DOUBLE_EQ(ctx.StageMicros("exec.join"), 30.0);
  EXPECT_EQ(ctx.ArgSum("exec.join", "rows_out"), 10);
}

TEST(TraceContextTest, ChromeTraceIsWellFormedJson) {
  TraceContext ctx;
  {
    Span span(&ctx, "ivm.maintain", "ivm");
    span.AddArg("view", std::string("v3 \"quoted\""));
  }
  std::ostringstream out;
  ctx.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  if (kEnabled) {
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  }
}

TEST(TraceContextTest, StatsJsonContainsSpansAndMetrics) {
  TraceContext ctx;
  ctx.RecordComplete("exec.scan", "exec", 0, 3, {{"rows_out", 7}});
  std::ostringstream out;
  ctx.WriteStatsJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  if (kEnabled) {
    EXPECT_NE(json.find("\"exec.scan\""), std::string::npos);
  }
}

TEST(TraceContextTest, ConcurrentSpansFromManyThreads) {
  TraceContext ctx;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctx] {
      for (int i = 0; i < 200; ++i) {
        Span span(&ctx, "worker", "test");
        span.AddArg("i", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ctx.event_count(), kEnabled ? 8u * 200u : 0u);
}

// Compile-out contract (satellite of the obs PR): with OJV_OBS=OFF every
// recording path must be a no-op — zero events regardless of how the
// API is driven. check.sh builds this same test with -DOJV_OBS=OFF and
// the `kEnabled == false` branches above plus this test verify it.
TEST(TraceContextTest, DisabledBuildRecordsNothing) {
  if (kEnabled) GTEST_SKIP() << "tracing enabled in this build";
  TraceContext ctx;
  Span span(&ctx, "anything", "test");
  span.AddArg("rows", 1);
  span.Finish();
  ctx.RecordComplete("direct", "test", 0, 1);
  EXPECT_EQ(ctx.event_count(), 0u);
  EXPECT_FALSE(ctx.HasSpan("anything"));
}

}  // namespace
}  // namespace obs
}  // namespace ojv
