# Empty dependencies file for view_matching_test.
# This may be replaced when dependencies are built.
