// End-to-end multi-view maintenance through the Database facade: a
// shared-mode database must produce byte-identical view contents to an
// independent-mode database fed the same statements, group refreshes
// must actually share the prefix (observed via the multiview counters),
// the scheduler report must label grouped views, and dropping +
// re-creating a view under the same name must never reuse a stale plan.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "ivm/database.h"
#include "obs/metrics.h"

namespace ojv {
namespace {

using deferred::RefreshPolicy;

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

void CreateColSchema(Catalog* catalog) {
  catalog->CreateTable(
      "C",
      Schema({ColumnDef{"c_id", ValueType::kInt64, false},
              ColumnDef{"c_a", ValueType::kInt64, true}}),
      {"c_id"});
  catalog->CreateTable(
      "O",
      Schema({ColumnDef{"o_id", ValueType::kInt64, false},
              ColumnDef{"o_c", ValueType::kInt64, true},
              ColumnDef{"o_a", ValueType::kInt64, true}}),
      {"o_id"});
  catalog->CreateTable(
      "L",
      Schema({ColumnDef{"l_id", ValueType::kInt64, false},
              ColumnDef{"l_o", ValueType::kInt64, true},
              ColumnDef{"l_q", ValueType::kInt64, true}}),
      {"l_id"});
}

// v_co and v_col share the ΔC prefix (the join to O); v_cl does not.
ViewDef MakeCoView(const Catalog& catalog) {
  RelExprPtr tree =
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("C"),
                    RelExpr::Scan("O"), Eq("C", "c_id", "O", "o_c"));
  return ViewDef("v_co", tree,
                 {{"C", "c_id"}, {"C", "c_a"}, {"O", "o_id"}, {"O", "o_a"}},
                 catalog);
}

ViewDef MakeColView(const Catalog& catalog) {
  RelExprPtr co =
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("C"),
                    RelExpr::Scan("O"), Eq("C", "c_id", "O", "o_c"));
  RelExprPtr tree =
      RelExpr::Join(JoinKind::kLeftOuter, std::move(co), RelExpr::Scan("L"),
                    Eq("O", "o_id", "L", "l_o"));
  return ViewDef("v_col", tree,
                 {{"C", "c_id"}, {"O", "o_id"}, {"L", "l_id"}, {"L", "l_q"}},
                 catalog);
}

ViewDef MakeClView(const Catalog& catalog) {
  // Joins C to L directly on c_a = l_q: a different first step, so this
  // view must stay out of the {v_co, v_col} group.
  RelExprPtr tree =
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("C"),
                    RelExpr::Scan("L"), Eq("C", "c_a", "L", "l_q"));
  return ViewDef("v_cl", tree, {{"C", "c_id"}, {"L", "l_id"}}, catalog);
}

Row CRow(int64_t id, int64_t a) { return {Value::Int64(id), Value::Int64(a)}; }
Row ORow(int64_t id, int64_t c, int64_t a) {
  return {Value::Int64(id), Value::Int64(c), Value::Int64(a)};
}
Row LRow(int64_t id, int64_t o, int64_t q) {
  return {Value::Int64(id), Value::Int64(o), Value::Int64(q)};
}
Row Key(int64_t id) { return {Value::Int64(id)}; }

std::vector<Row> SortedRows(Relation rel) {
  std::vector<Row> rows = std::move(*rel.mutable_rows());
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].SortCompare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

class SharedRefreshTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateColSchema(shared_.catalog());
    CreateColSchema(independent_.catalog());
    shared_.SetMultiviewMode(MultiviewMode::kShared);
    for (Database* db : {&shared_, &independent_}) {
      db->CreateMaterializedView(MakeCoView(*db->catalog()));
      db->CreateMaterializedView(MakeColView(*db->catalog()));
      db->CreateMaterializedView(MakeClView(*db->catalog()));
      for (const char* v : {"v_co", "v_col", "v_cl"}) {
        db->SetRefreshPolicy(v, RefreshPolicy::kOnDemand);
      }
    }
  }

  void ApplyToBoth(const std::string& table, const std::vector<Row>& rows,
                   bool insert) {
    for (Database* db : {&shared_, &independent_}) {
      if (insert) {
        db->Insert(table, rows);
      } else {
        db->Delete(table, rows);
      }
    }
  }

  void ExpectViewsMatch() {
    for (const char* v : {"v_co", "v_col", "v_cl"}) {
      ViewMaintainer* s = shared_.GetView(v);
      ViewMaintainer* i = independent_.GetView(v);
      ASSERT_NE(s, nullptr);
      ASSERT_NE(i, nullptr);
      EXPECT_EQ(SortedRows(s->view().AsRelation()),
                SortedRows(i->view().AsRelation()))
          << "shared and independent contents diverge for " << v;
      std::string diff;
      EXPECT_TRUE(ViewMatchesRecompute(*shared_.catalog(), s->view_def(),
                                       s->view(), &diff))
          << v << ": " << diff;
    }
  }

  Database shared_;
  Database independent_;
};

TEST_F(SharedRefreshTest, GroupsFormAsExpected) {
  std::vector<multiview::ViewGroup> groups = shared_.ViewGroups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].anchor_table, "C");
  EXPECT_EQ(groups[0].members,
            (std::vector<std::string>{"v_co", "v_col"}));
  // Mode is a knob, not a topology: the independent database sees the
  // same grouping, it just refreshes members one at a time.
  EXPECT_EQ(independent_.ViewGroups().size(), 1u);
  EXPECT_EQ(independent_.multiview_mode(), MultiviewMode::kIndependent);
}

TEST_F(SharedRefreshTest, GroupRefreshMatchesIndependentRefresh) {
  ApplyToBoth("O", {ORow(1, 1, 10), ORow(2, 2, 20), ORow(3, 1, 30)}, true);
  ApplyToBoth("L", {LRow(1, 1, 5), LRow(2, 2, 15), LRow(3, 9, 7)}, true);
  ApplyToBoth("C", {CRow(1, 5), CRow(2, 7), CRow(3, 15)}, true);

  // Refreshing one member drains the whole group in shared mode; in
  // independent mode each member refreshes alone.
  shared_.Refresh("v_co");
  independent_.RefreshAll();
  shared_.RefreshAll();  // v_cl and anything left
  ExpectViewsMatch();

  EXPECT_EQ(shared_.PendingRows("v_co"), 0);
  EXPECT_EQ(shared_.PendingRows("v_col"), 0);

  // Mixed multi-table batch (general revert/replay path), including a
  // delete that orphans L rows and a C delete.
  ApplyToBoth("C", {CRow(4, 7)}, true);
  ApplyToBoth("O", {Key(2)}, false);
  ApplyToBoth("C", {Key(3)}, false);
  ApplyToBoth("L", {LRow(4, 3, 25)}, true);
  shared_.RefreshAll();
  independent_.RefreshAll();
  ExpectViewsMatch();
}

TEST_F(SharedRefreshTest, SharedModeActuallySharesThePrefix) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "obs disabled";
  ApplyToBoth("C", {CRow(1, 5), CRow(2, 7)}, true);
  obs::Registry& reg = obs::Registry::Global();
  const int64_t evals_before =
      reg.GetCounter("ojv.multiview.shared_prefix_evals").value();
  const int64_t suffixes_before =
      reg.GetCounter("ojv.multiview.suffix_refreshes").value();
  shared_.Refresh("v_col");
  const int64_t evals =
      reg.GetCounter("ojv.multiview.shared_prefix_evals").value() -
      evals_before;
  const int64_t suffixes =
      reg.GetCounter("ojv.multiview.suffix_refreshes").value() -
      suffixes_before;
  // One ΔC batch: the prefix ran once and both members rode on it.
  EXPECT_EQ(evals, 1);
  EXPECT_EQ(suffixes, 2);
  shared_.RefreshAll();
  independent_.RefreshAll();
  ExpectViewsMatch();
}

TEST_F(SharedRefreshTest, SchedulerReportShowsGroupColumn) {
  std::string report = shared_.RefreshReport();
  EXPECT_NE(report.find("group"), std::string::npos);
  std::vector<multiview::ViewGroup> groups = shared_.ViewGroups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_NE(report.find(groups[0].id), std::string::npos);
}

TEST_F(SharedRefreshTest, DropAndRecreateNeverServesStalePlan) {
  ApplyToBoth("O", {ORow(1, 1, 10), ORow(2, 2, 20)}, true);
  ApplyToBoth("C", {CRow(1, 5), CRow(2, 7)}, true);
  shared_.RefreshAll();
  independent_.RefreshAll();

  // Drop v_col and re-create the name with a *different* definition
  // (C x L instead of C x O x L). Any cached shared plan for the old
  // group would now compute the wrong view.
  for (Database* db : {&shared_, &independent_}) {
    ASSERT_TRUE(db->DropView("v_col"));
    RelExprPtr tree =
        RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("C"),
                      RelExpr::Scan("L"), Eq("C", "c_a", "L", "l_q"));
    db->CreateMaterializedView(ViewDef(
        "v_col", tree, {{"C", "c_id"}, {"L", "l_id"}}, *db->catalog()));
    db->SetRefreshPolicy("v_col", RefreshPolicy::kOnDemand);
  }
  // The old {v_co, v_col} group is gone; v_col now clusters with v_cl
  // (same C-to-L first step), and v_co is a singleton.
  EXPECT_EQ(shared_.ViewGroups().size(), 1u);
  EXPECT_EQ(shared_.ViewGroups()[0].members,
            (std::vector<std::string>{"v_cl", "v_col"}));

  ApplyToBoth("L", {LRow(1, 1, 5), LRow(2, 2, 7)}, true);
  ApplyToBoth("C", {CRow(3, 5)}, true);
  shared_.RefreshAll();
  independent_.RefreshAll();
  ExpectViewsMatch();
}

}  // namespace
}  // namespace ojv
