# Empty compiler generated dependencies file for secondary_delta_test.
# This may be replaced when dependencies are built.
