#include "tpch/views.h"

#include "common/date.h"

namespace ojv {
namespace tpch {
namespace {

ScalarExprPtr Col(const char* table, const char* column) {
  return ScalarExpr::Column(table, column);
}

ScalarExprPtr Eq(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Compare(CompareOp::kEq, std::move(a), std::move(b));
}

}  // namespace

ViewDef MakeOjView(const Catalog& catalog) {
  RelExprPtr inner = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      Eq(Col("lineitem", "l_orderkey"), Col("orders", "o_orderkey")));
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kFullOuter, RelExpr::Scan("part"), inner,
      Eq(Col("part", "p_partkey"), Col("lineitem", "l_partkey")));
  std::vector<ColumnRef> output = {
      {"part", "p_partkey"},        {"part", "p_name"},
      {"part", "p_retailprice"},    {"orders", "o_orderkey"},
      {"orders", "o_custkey"},      {"lineitem", "l_orderkey"},
      {"lineitem", "l_linenumber"}, {"lineitem", "l_quantity"},
      {"lineitem", "l_extendedprice"}};
  return ViewDef("oj_view", tree, std::move(output), catalog);
}

ViewDef MakeV2(const Catalog& catalog) {
  RelExprPtr c = RelExpr::Select(
      RelExpr::Scan("customer"),
      ScalarExpr::Compare(CompareOp::kGe, Col("customer", "c_acctbal"),
                          ScalarExpr::Literal(Value::Float64(0.0))));
  RelExprPtr o = RelExpr::Select(
      RelExpr::Scan("orders"),
      ScalarExpr::Compare(CompareOp::kGe, Col("orders", "o_orderdate"),
                          ScalarExpr::Literal(
                              Value::Date(ParseDate("1995-01-01")))));
  RelExprPtr ol = RelExpr::Join(
      JoinKind::kFullOuter, o, RelExpr::Scan("lineitem"),
      Eq(Col("orders", "o_orderkey"), Col("lineitem", "l_orderkey")));
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kFullOuter, c, ol,
      Eq(Col("customer", "c_custkey"), Col("orders", "o_custkey")));
  std::vector<ColumnRef> output = {
      {"customer", "c_custkey"},    {"customer", "c_acctbal"},
      {"orders", "o_orderkey"},     {"orders", "o_custkey"},
      {"orders", "o_orderdate"},    {"lineitem", "l_orderkey"},
      {"lineitem", "l_linenumber"}, {"lineitem", "l_quantity"}};
  return ViewDef("v2", tree, std::move(output), catalog);
}

ViewDef MakeV3(const Catalog& catalog) {
  ScalarExprPtr date_range = ScalarExpr::And(
      {ScalarExpr::Compare(CompareOp::kGe, Col("orders", "o_orderdate"),
                           ScalarExpr::Literal(
                               Value::Date(ParseDate("1994-06-01")))),
       ScalarExpr::Compare(CompareOp::kLe, Col("orders", "o_orderdate"),
                           ScalarExpr::Literal(
                               Value::Date(ParseDate("1994-12-31"))))});
  RelExprPtr lo_join = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("lineitem"),
      RelExpr::Select(RelExpr::Scan("orders"), date_range),
      Eq(Col("lineitem", "l_orderkey"), Col("orders", "o_orderkey")));
  RelExprPtr with_customer = RelExpr::Join(
      JoinKind::kRightOuter, lo_join, RelExpr::Scan("customer"),
      Eq(Col("customer", "c_custkey"), Col("orders", "o_custkey")));
  ScalarExprPtr part_pred = ScalarExpr::And(
      {Eq(Col("lineitem", "l_partkey"), Col("part", "p_partkey")),
       ScalarExpr::Compare(CompareOp::kLt, Col("part", "p_retailprice"),
                           ScalarExpr::Literal(Value::Float64(2000.0)))});
  RelExprPtr tree = RelExpr::Join(JoinKind::kFullOuter, with_customer,
                                  RelExpr::Scan("part"), part_pred);
  std::vector<ColumnRef> output = {
      {"lineitem", "l_orderkey"},   {"lineitem", "l_linenumber"},
      {"lineitem", "l_quantity"},   {"lineitem", "l_extendedprice"},
      {"lineitem", "l_shipdate"},   {"lineitem", "l_returnflag"},
      {"orders", "o_orderkey"},     {"orders", "o_orderdate"},
      {"orders", "o_clerk"},        {"customer", "c_custkey"},
      {"customer", "c_nationkey"},  {"customer", "c_mktsegment"},
      {"part", "p_partkey"},        {"part", "p_type"},
      {"part", "p_retailprice"}};
  return ViewDef("v3", tree, std::move(output), catalog);
}

}  // namespace tpch
}  // namespace ojv
