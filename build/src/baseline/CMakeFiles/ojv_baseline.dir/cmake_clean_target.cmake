file(REMOVE_RECURSE
  "libojv_baseline.a"
)
