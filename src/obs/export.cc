#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace ojv {
namespace obs {
namespace {

// Splits a registry key "base{labels}" into the sanitized family name
// and the label block ("" when unlabeled, else `{...}` verbatim).
std::pair<std::string, std::string> SplitFamily(const std::string& name) {
  size_t brace = name.find('{');
  std::string base =
      brace == std::string::npos ? name : name.substr(0, brace);
  std::string labels =
      brace == std::string::npos ? std::string() : name.substr(brace);
  for (char& c : base) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!base.empty() && base[0] >= '0' && base[0] <= '9') {
    base.insert(base.begin(), '_');
  }
  return {base, labels};
}

void TypeLineOnce(std::ostream& out, std::set<std::string>& emitted,
                  const std::string& family, const char* type) {
  if (emitted.insert(family).second) {
    out << "# TYPE " << family << " " << type << "\n";
  }
}

// Inserts an extra label into a (possibly empty) label block:
// ("", quantile="0.5") => {quantile="0.5"};
// ({view="x"}, ...)    => {view="x",quantile="0.5"}.
std::string WithLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  std::string out = labels;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

bool RenameInto(const std::string& tmp, const std::string& path,
                std::string* error) {
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "rename failed: " + tmp + " -> " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool WriteFileAtomic(const std::string& path, const std::string& body,
                     std::string* error) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      if (error) *error = "cannot open " + tmp;
      return false;
    }
    out << body;
    out.flush();
    if (!out) {
      if (error) *error = "write failed: " + tmp;
      return false;
    }
  }
  return RenameInto(tmp, path, error);
}

std::string PrometheusName(const std::string& name) {
  auto [base, labels] = SplitFamily(name);
  return base + labels;
}

void WritePrometheus(const Registry& registry, std::ostream& out) {
  std::set<std::string> typed;
  for (const auto& [name, value] : registry.CounterSnapshot()) {
    auto [family, labels] = SplitFamily(name);
    family += "_total";
    TypeLineOnce(out, typed, family, "counter");
    out << family << labels << " " << value << "\n";
  }
  for (const auto& [name, value] : registry.GaugeSnapshot()) {
    auto [family, labels] = SplitFamily(name);
    TypeLineOnce(out, typed, family, "gauge");
    out << family << labels << " " << value << "\n";
  }
  for (const auto& [name, snap] : registry.HistogramSnapshots()) {
    auto [family, labels] = SplitFamily(name);
    TypeLineOnce(out, typed, family, "summary");
    out << family << WithLabel(labels, "quantile=\"0.5\"") << " " << snap.p50
        << "\n";
    out << family << WithLabel(labels, "quantile=\"0.99\"") << " " << snap.p99
        << "\n";
    out << family << "_sum" << labels << " " << snap.sum << "\n";
    out << family << "_count" << labels << " " << snap.count << "\n";
  }
}

void WriteSnapshotJson(const Registry& registry, std::ostream& out) {
  registry.WriteJson(out);
}

bool WriteSnapshotFiles(const Registry& registry, const std::string& dir,
                        std::string* error) {
  std::ostringstream prom;
  WritePrometheus(registry, prom);
  if (!WriteFileAtomic(dir + "/metrics.prom", prom.str(), error)) return false;
  std::ostringstream json;
  WriteSnapshotJson(registry, json);
  return WriteFileAtomic(dir + "/snapshot.json", json.str(), error);
}

}  // namespace obs
}  // namespace ojv
