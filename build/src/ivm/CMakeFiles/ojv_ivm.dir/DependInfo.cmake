
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ivm/aggregate_view.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/aggregate_view.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/aggregate_view.cc.o.d"
  "/root/repo/src/ivm/database.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/database.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/database.cc.o.d"
  "/root/repo/src/ivm/explain.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/explain.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/explain.cc.o.d"
  "/root/repo/src/ivm/left_deep.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/left_deep.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/left_deep.cc.o.d"
  "/root/repo/src/ivm/maintainer.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/maintainer.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/maintainer.cc.o.d"
  "/root/repo/src/ivm/materialized_view.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/materialized_view.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/materialized_view.cc.o.d"
  "/root/repo/src/ivm/primary_delta.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/primary_delta.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/primary_delta.cc.o.d"
  "/root/repo/src/ivm/secondary_delta.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/secondary_delta.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/secondary_delta.cc.o.d"
  "/root/repo/src/ivm/simplify_tree.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/simplify_tree.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/simplify_tree.cc.o.d"
  "/root/repo/src/ivm/view_def.cc" "src/ivm/CMakeFiles/ojv_ivm.dir/view_def.cc.o" "gcc" "src/ivm/CMakeFiles/ojv_ivm.dir/view_def.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/normalform/CMakeFiles/ojv_normalform.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ojv_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/ojv_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ojv_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ojv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
