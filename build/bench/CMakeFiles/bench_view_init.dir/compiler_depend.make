# Empty compiler generated dependencies file for bench_view_init.
# This may be replaced when dependencies are built.
