#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace ojv {
namespace {

Schema TwoColSchema() {
  return Schema({ColumnDef{"id", ValueType::kInt64, false},
                 ColumnDef{"v", ValueType::kInt64, true}});
}

TEST(TableTest, InsertFindDelete) {
  Table t("t", TwoColSchema(), {"id"});
  EXPECT_TRUE(t.Insert(Row{Value::Int64(1), Value::Int64(10)}));
  EXPECT_TRUE(t.Insert(Row{Value::Int64(2), Value::Null()}));
  EXPECT_EQ(t.size(), 2);

  const Row* found = t.FindByKey(Row{Value::Int64(1)});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ((*found)[1], Value::Int64(10));

  Row deleted;
  EXPECT_TRUE(t.DeleteByKey(Row{Value::Int64(1)}, &deleted));
  EXPECT_EQ(deleted[1], Value::Int64(10));
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.FindByKey(Row{Value::Int64(1)}), nullptr);
  EXPECT_FALSE(t.DeleteByKey(Row{Value::Int64(1)}, nullptr));
}

TEST(TableTest, RejectsDuplicateKeys) {
  Table t("t", TwoColSchema(), {"id"});
  EXPECT_TRUE(t.Insert(Row{Value::Int64(1), Value::Int64(10)}));
  EXPECT_FALSE(t.Insert(Row{Value::Int64(1), Value::Int64(99)}));
  EXPECT_EQ(t.size(), 1);
}

TEST(TableTest, SlotReuseAfterDelete) {
  Table t("t", TwoColSchema(), {"id"});
  for (int64_t i = 0; i < 10; ++i) {
    t.Insert(Row{Value::Int64(i), Value::Int64(i)});
  }
  for (int64_t i = 0; i < 5; ++i) {
    t.DeleteByKey(Row{Value::Int64(i)}, nullptr);
  }
  for (int64_t i = 100; i < 105; ++i) {
    EXPECT_TRUE(t.Insert(Row{Value::Int64(i), Value::Int64(i)}));
  }
  EXPECT_EQ(t.size(), 10);
  EXPECT_EQ(t.Snapshot().size(), 10u);
}

TEST(TableTest, CompositeKey) {
  Table t("t",
          Schema({ColumnDef{"a", ValueType::kInt64, false},
                  ColumnDef{"b", ValueType::kInt64, false},
                  ColumnDef{"v", ValueType::kString, true}}),
          {"a", "b"});
  EXPECT_TRUE(t.Insert(Row{Value::Int64(1), Value::Int64(1),
                           Value::String("x")}));
  EXPECT_TRUE(t.Insert(Row{Value::Int64(1), Value::Int64(2),
                           Value::String("y")}));
  EXPECT_FALSE(t.Insert(Row{Value::Int64(1), Value::Int64(1),
                            Value::String("z")}));
  EXPECT_NE(t.FindByKey(Row{Value::Int64(1), Value::Int64(2)}), nullptr);
  EXPECT_EQ(t.FindByKey(Row{Value::Int64(2), Value::Int64(1)}), nullptr);
}

TEST(CatalogTest, ForeignKeyCheck) {
  Catalog catalog;
  catalog.CreateTable("parent", TwoColSchema(), {"id"});
  catalog.CreateTable(
      "child",
      Schema({ColumnDef{"id", ValueType::kInt64, false},
              ColumnDef{"pid", ValueType::kInt64, true}}),
      {"id"});
  catalog.AddForeignKey({"child", {"pid"}, "parent", {"id"}});

  Table* parent = catalog.GetTable("parent");
  Table* child = catalog.GetTable("child");
  parent->Insert(Row{Value::Int64(1), Value::Int64(0)});
  child->Insert(Row{Value::Int64(10), Value::Int64(1)});
  // NULL FK columns reference nothing and are always valid.
  child->Insert(Row{Value::Int64(11), Value::Null()});

  std::string violation;
  EXPECT_TRUE(catalog.CheckForeignKeys(&violation)) << violation;

  child->Insert(Row{Value::Int64(12), Value::Int64(999)});
  EXPECT_FALSE(catalog.CheckForeignKeys(&violation));
  EXPECT_NE(violation.find("child"), std::string::npos);
}

TEST(CatalogTest, ForeignKeysReferencing) {
  Catalog catalog;
  catalog.CreateTable("p1", TwoColSchema(), {"id"});
  catalog.CreateTable("p2", TwoColSchema(), {"id"});
  catalog.CreateTable(
      "c", Schema({ColumnDef{"id", ValueType::kInt64, false},
                   ColumnDef{"f1", ValueType::kInt64, true},
                   ColumnDef{"f2", ValueType::kInt64, true}}),
      {"id"});
  catalog.AddForeignKey({"c", {"f1"}, "p1", {"id"}});
  catalog.AddForeignKey({"c", {"f2"}, "p2", {"id"}});
  EXPECT_EQ(catalog.ForeignKeysReferencing("p1").size(), 1u);
  EXPECT_EQ(catalog.ForeignKeysReferencing("p2").size(), 1u);
  EXPECT_TRUE(catalog.ForeignKeysReferencing("c").empty());
}

TEST(SchemaTest, Lookup) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.Find("id"), 0);
  EXPECT_EQ(s.Find("v"), 1);
  EXPECT_EQ(s.Find("nope"), -1);
  EXPECT_EQ(s.IndexOf("v"), 1);
  EXPECT_NE(s.ToString().find("NOT NULL"), std::string::npos);
}

}  // namespace
}  // namespace ojv
