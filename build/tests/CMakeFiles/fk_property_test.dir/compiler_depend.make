# Empty compiler generated dependencies file for fk_property_test.
# This may be replaced when dependencies are built.
