file(REMOVE_RECURSE
  "CMakeFiles/ojv_io.dir/csv.cc.o"
  "CMakeFiles/ojv_io.dir/csv.cc.o.d"
  "CMakeFiles/ojv_io.dir/statement_log.cc.o"
  "CMakeFiles/ojv_io.dir/statement_log.cc.o.d"
  "libojv_io.a"
  "libojv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
