// Statement log + replay: a logged statement stream replayed against a
// catalog snapshot reproduces the exact database and view state —
// durability for the maintained-view story.

#include "io/statement_log.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/recompute.h"
#include "io/csv.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace io {
namespace {

class StatementLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ojv_log_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(StatementLogTest, LogAndReplayReproducesState) {
  // Primary database: snapshot, then apply logged traffic.
  Database primary;
  tpch::CreateSchema(primary.catalog());
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(primary.catalog());

  std::string error;
  ASSERT_TRUE(DumpCatalog(*primary.catalog(), Path("snapshot"), TextFormat(),
                          &error))
      << error;
  primary.CreateMaterializedView(tpch::MakeOjView(*primary.catalog()));

  StatementLog log(Path("statements.log"));
  ASSERT_TRUE(log.ok());
  tpch::RefreshStream refresh(primary.catalog(), &dbgen, 17);

  // Mixed traffic, logged as it is applied.
  {
    std::vector<Row> rows = refresh.NewLineitems(150);
    log.LogInsert(*primary.catalog()->GetTable("lineitem"), rows);
    ASSERT_TRUE(primary.Insert("lineitem", rows).ok());
  }
  {
    std::vector<Row> keys = refresh.PickLineitemDeleteKeys(60);
    log.LogDelete(*primary.catalog()->GetTable("lineitem"), keys);
    ASSERT_TRUE(primary.Delete("lineitem", keys).ok());
  }
  {
    // Update one part row (string column with awkward characters).
    const Table* part = primary.catalog()->GetTable("part");
    Row some;
    part->ForEach([&](const Row& row) {
      if (some.empty()) some = row;
    });
    Row updated = some;
    updated[1] = Value::String("pipe|and\\slash\nnewline");
    std::vector<Row> keys = {Row{some[0]}};
    std::vector<Row> new_rows = {updated};
    log.LogUpdate(*part, keys, new_rows);
    ASSERT_TRUE(primary.Update("part", keys, new_rows).ok());
  }
  {
    std::vector<Row> rows = refresh.NewCustomers(20);
    log.LogInsert(*primary.catalog()->GetTable("customer"), rows);
    ASSERT_TRUE(primary.Insert("customer", rows).ok());
  }
  log.Flush();

  // Replica: load the snapshot, register the same view, replay the log.
  Database replica;
  tpch::CreateSchema(replica.catalog());
  ASSERT_TRUE(LoadCatalog(replica.catalog(), Path("snapshot"), TextFormat(),
                          &error))
      << error;
  replica.CreateMaterializedView(tpch::MakeOjView(*replica.catalog()));
  ASSERT_TRUE(ReplayStatementLog(Path("statements.log"), &replica, &error))
      << error;

  // Identical base tables and identical (incrementally maintained) views.
  for (const std::string& name : primary.catalog()->TableNames()) {
    EXPECT_EQ(replica.catalog()->GetTable(name)->size(),
              primary.catalog()->GetTable(name)->size())
        << name;
  }
  std::string diff;
  EXPECT_TRUE(SameBag(primary.GetView("oj_view")->view().AsRelation(),
                      replica.GetView("oj_view")->view().AsRelation(), &diff))
      << diff;
  EXPECT_TRUE(ViewMatchesRecompute(*replica.catalog(),
                                   replica.GetView("oj_view")->view_def(),
                                   replica.GetView("oj_view")->view(), &diff))
      << diff;
}

TEST_F(StatementLogTest, ReplayErrors) {
  Database db;
  tpch::CreateSchema(db.catalog());
  std::string error;
  EXPECT_FALSE(ReplayStatementLog(Path("missing.log"), &db, &error));

  {
    std::ofstream out(Path("garbage.log"));
    out << "not a header\n";
  }
  EXPECT_FALSE(ReplayStatementLog(Path("garbage.log"), &db, &error));
  EXPECT_NE(error.find("#stmt"), std::string::npos);

  {
    std::ofstream out(Path("badtable.log"));
    out << "#stmt INSERT nowhere 1\n1|2|\n";
  }
  EXPECT_FALSE(ReplayStatementLog(Path("badtable.log"), &db, &error));
  EXPECT_NE(error.find("unknown table"), std::string::npos);

  {
    std::ofstream out(Path("short.log"));
    out << "#stmt INSERT part 3\n";  // payload missing
  }
  EXPECT_FALSE(ReplayStatementLog(Path("short.log"), &db, &error));
  EXPECT_NE(error.find("payload"), std::string::npos);
}

}  // namespace
}  // namespace io
}  // namespace ojv
