#ifndef OJV_OPT_PLAN_CACHE_H_
#define OJV_OPT_PLAN_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/rel_expr.h"

namespace ojv {
namespace opt {

/// One join step on the main path of a planned delta tree, bottom-up.
struct PlanStep {
  std::string right_table;  // single base table on the right ("" if multi)
  JoinKind join_kind = JoinKind::kInner;
  double fanout = 0;    // estimated output rows per left row
  double est_rows = 0;  // estimated rows after this step
};

/// A planned (possibly reordered) left-deep delta expression plus the
/// estimates that produced it.
struct PlannedDelta {
  RelExprPtr expr;
  std::vector<PlanStep> steps;  // join steps in bottom-up plan order
  /// Per-node output-cardinality estimates (EXPLAIN annotations).
  std::unordered_map<const RelExpr*, double> node_est;
  bool reordered = false;  // false: order identical to the static plan
  std::string order;       // right tables bottom-up, e.g. "S,B"
};

/// Cached plan + feedback state for one (table, op, policy) key.
struct PlanCacheEntry {
  PlannedDelta plan;
  /// Observed fanout EMA per right table (feedback loop); carried across
  /// re-plans so learned selectivities survive.
  std::unordered_map<std::string, double> fanout_ema;
  double planned_delta_rows = 1;  // |Δ| the plan was costed for
  bool dirty = false;             // drift exceeded threshold → re-plan
  std::string source = "planned";  // planned | cache | replan | static
  int64_t hits = 0;
  int64_t replans = 0;
};

/// Per-maintainer plan cache keyed by (updated table, op kind,
/// constraint-free policy). Same synchronization contract as the
/// maintainer: externally confined to one maintenance op at a time.
class PlanCache {
 public:
  static std::string Key(const std::string& table, bool is_insert,
                         bool constraint_free);

  PlanCacheEntry* Find(const std::string& key);
  const PlanCacheEntry* Find(const std::string& key) const;
  /// Creates or replaces the plan under `key`, preserving any existing
  /// feedback EMA and counters.
  PlanCacheEntry* Put(const std::string& key, PlannedDelta plan,
                      double delta_rows);
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  const std::unordered_map<std::string, PlanCacheEntry>& entries() const {
    return entries_;
  }

 private:
  std::unordered_map<std::string, PlanCacheEntry> entries_;
};

}  // namespace opt
}  // namespace ojv

#endif  // OJV_OPT_PLAN_CACHE_H_
