#ifndef OJV_COMMON_RNG_H_
#define OJV_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ojv {

/// Deterministic 64-bit PRNG (splitmix64-seeded xorshift128+).
///
/// Both the TPC-H generator and the property-test harness need streams
/// that are stable across platforms and standard-library versions, which
/// std::mt19937 + std::uniform_int_distribution do not guarantee, so we
/// hand-roll the generator and the bounded-draw logic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Deterministic pseudo-text of the requested length (lowercase words).
  std::string Text(int min_len, int max_len);

  /// Creates an independent child stream; used so that, e.g., each TPC-H
  /// table's column streams do not perturb each other when scale changes.
  Rng Fork(uint64_t salt);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed rank sampler: P(rank k) ∝ 1/(k+1)^s over ranks
/// [0, n). s = 0 degenerates to uniform; s around 1 is the classic
/// web/retail skew. The CDF is precomputed once (O(n) doubles) so each
/// draw is one Uniform double plus a binary search — deterministic
/// across platforms, like the generator itself. Used by the skew
/// benchmarks and the heavy-light equivalence property tests.
class ZipfDistribution {
 public:
  /// Requires n >= 1 and s >= 0.
  ZipfDistribution(int64_t n, double s);

  /// Draws a rank in [0, n); rank 0 is the most probable.
  int64_t Sample(Rng* rng) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace ojv

#endif  // OJV_COMMON_RNG_H_
