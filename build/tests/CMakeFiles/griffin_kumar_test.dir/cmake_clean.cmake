file(REMOVE_RECURSE
  "CMakeFiles/griffin_kumar_test.dir/baseline/griffin_kumar_test.cc.o"
  "CMakeFiles/griffin_kumar_test.dir/baseline/griffin_kumar_test.cc.o.d"
  "griffin_kumar_test"
  "griffin_kumar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_kumar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
