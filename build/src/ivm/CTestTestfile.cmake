# CMake generated Testfile for 
# Source directory: /root/repo/src/ivm
# Build directory: /root/repo/build/src/ivm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
