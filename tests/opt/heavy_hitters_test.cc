// Space-saving sketch and heavy-key tracker tests, including the
// promotion/demotion hysteresis band: a key oscillating around the
// promote threshold must keep its side (no heavy<->light thrash), since
// every flip migrates maintenance state between the eager and lazy
// partitions.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "opt/heavy_hitters.h"

namespace ojv {
namespace opt {
namespace {

Value V(int64_t x) { return Value::Int64(x); }

TEST(SpaceSavingSketchTest, TracksExactCountsUnderCapacity) {
  SpaceSavingSketch sketch(4);
  for (int i = 0; i < 10; ++i) sketch.Add(V(1), 1);
  for (int i = 0; i < 3; ++i) sketch.Add(V(2), 1);
  EXPECT_EQ(sketch.EstimateCount(V(1)), 10);
  EXPECT_EQ(sketch.EstimateCount(V(2)), 3);
  EXPECT_EQ(sketch.EstimateCount(V(3)), 0);
}

TEST(SpaceSavingSketchTest, EvictionInheritsMinimumAsOverestimate) {
  SpaceSavingSketch sketch(2);
  for (int i = 0; i < 5; ++i) sketch.Add(V(1), 1);
  sketch.Add(V(2), 1);  // count 1 — the minimum slot
  sketch.Add(V(3), 1);  // evicts 2, inherits its count as the error floor
  EXPECT_EQ(sketch.EstimateCount(V(2)), 0);
  EXPECT_EQ(sketch.EstimateCount(V(3)), 2);  // 1 (floor) + 1 (its add)
  // Estimates never underestimate: the true count of 3 is 1 <= 2.
}

TEST(SpaceSavingSketchTest, DeletesClampAtZeroAndUntrackedAreDropped) {
  SpaceSavingSketch sketch(4);
  sketch.Add(V(1), 3);
  sketch.Add(V(1), -5);
  EXPECT_EQ(sketch.EstimateCount(V(1)), 0);
  sketch.Add(V(9), -2);  // deletion of a value never seen: no slot
  EXPECT_EQ(sketch.EstimateCount(V(9)), 0);
}

HeavyHitterConfig SmallConfig() {
  HeavyHitterConfig config;
  config.sketch_capacity = 8;
  config.promote_threshold = 10;
  config.demote_fraction = 0.5;
  return config;
}

TEST(HeavyKeyTrackerTest, PromotesAtThresholdDemotesAtHalf) {
  HeavyKeyTracker tracker(SmallConfig());
  for (int i = 0; i < 9; ++i) tracker.Add(V(7), 1);
  EXPECT_FALSE(tracker.IsHeavy(V(7)));
  tracker.Add(V(7), 1);  // count 10 = threshold
  EXPECT_TRUE(tracker.IsHeavy(V(7)));
  EXPECT_EQ(tracker.promoted_count(), 1);

  // Falling below the threshold — but not below threshold/2 — keeps the
  // key heavy (hysteresis).
  tracker.Add(V(7), -4);  // count 6, low water is 5
  bool demoted = false;
  EXPECT_TRUE(tracker.IsHeavy(V(7), &demoted));
  EXPECT_FALSE(demoted);

  tracker.Add(V(7), -2);  // count 4 < 5: demote
  EXPECT_FALSE(tracker.IsHeavy(V(7), &demoted));
  EXPECT_TRUE(demoted);
  EXPECT_EQ(tracker.demotions(), 1);
}

// Regression: a key whose frequency oscillates inside the hysteresis
// band [threshold * demote_fraction, threshold) must never change side,
// no matter how many times it is probed. Before the band existed a
// single promote/demote cutoff flapped every few ops under such a
// workload, migrating lazy state back and forth.
TEST(HeavyKeyTrackerTest, OscillationInsideTheBandNeverThrashes) {
  HeavyKeyTracker tracker(SmallConfig());  // promote 10, demote < 5
  // Never promoted: oscillate 5..9 from below.
  for (int round = 0; round < 50; ++round) {
    tracker.Add(V(1), round % 2 == 0 ? 9 : -9);  // alternates 9 and 0
    tracker.Add(V(1), round % 2 == 0 ? -4 : 5);  // lands at 5
    EXPECT_FALSE(tracker.IsHeavy(V(1))) << "round " << round;
    tracker.Add(V(1), -5);  // reset to 0
  }
  EXPECT_EQ(tracker.demotions(), 0);

  // Promoted once, then oscillating 5..9: stays heavy forever.
  for (int i = 0; i < 10; ++i) tracker.Add(V(2), 1);
  ASSERT_TRUE(tracker.IsHeavy(V(2)));
  tracker.Add(V(2), -1);  // 9, inside the band
  for (int round = 0; round < 50; ++round) {
    tracker.Add(V(2), round % 2 == 0 ? -4 : 4);  // 5 <-> 9
    bool demoted = false;
    EXPECT_TRUE(tracker.IsHeavy(V(2), &demoted)) << "round " << round;
    EXPECT_FALSE(demoted);
  }
  EXPECT_EQ(tracker.demotions(), 0);
  EXPECT_EQ(tracker.promoted_count(), 1);
}

TEST(HeavyKeyTrackerTest, ExactBoundaryValues) {
  HeavyKeyTracker tracker(SmallConfig());
  for (int i = 0; i < 10; ++i) tracker.Add(V(3), 1);
  ASSERT_TRUE(tracker.IsHeavy(V(3)));
  // Exactly the low-water mark (5 = 10 * 0.5) is NOT below it: heavy.
  tracker.Add(V(3), -5);
  EXPECT_TRUE(tracker.IsHeavy(V(3)));
  // One below demotes.
  tracker.Add(V(3), -1);
  EXPECT_FALSE(tracker.IsHeavy(V(3)));
  // Climbing back to 9 (< threshold) does not re-promote...
  tracker.Add(V(3), 5);
  EXPECT_FALSE(tracker.IsHeavy(V(3)));
  // ...until the full threshold is reached again.
  tracker.Add(V(3), 1);
  EXPECT_TRUE(tracker.IsHeavy(V(3)));
  EXPECT_EQ(tracker.demotions(), 1);
}

TEST(HeavyKeyTrackerTest, NullIsNeverHeavy) {
  HeavyKeyTracker tracker(SmallConfig());
  EXPECT_FALSE(tracker.IsHeavy(Value::Null()));
}

class HeavyHitterCatalogTest : public ::testing::Test {
 protected:
  HeavyHitterCatalogTest() {
    Schema schema({{"o_id", ValueType::kInt64, false},
                   {"o_ck", ValueType::kInt64, true}});
    catalog_.CreateTable("O", schema, {"o_id"});
  }

  std::vector<Row> MakeRows(int64_t first_id, int n, int64_t ck) {
    std::vector<Row> rows;
    for (int i = 0; i < n; ++i) {
      rows.push_back({V(first_id + i), V(ck)});
    }
    return rows;
  }

  Catalog catalog_;
};

TEST_F(HeavyHitterCatalogTest, ScansOnFirstUseAndSyncsIncrementally) {
  Table* table = catalog_.GetTable("O");
  for (Row& row : MakeRows(1, 12, 42)) table->Insert(std::move(row));

  HeavyHitterConfig config = SmallConfig();
  HeavyHitterCatalog hitters(&catalog_, config);
  hitters.Track("O", "o_ck");
  // First probe builds from the existing table: 12 >= 10 promotes.
  EXPECT_TRUE(hitters.IsHeavy("O", "o_ck", V(42)));
  EXPECT_EQ(hitters.rebuild_count(), 1);
  EXPECT_EQ(hitters.PromotedKeys("O"), 1);

  // Incremental feed: delete 8 rows of key 42 (count drops to 4 < 5).
  std::vector<Row> deleted;
  for (int64_t id = 1; id <= 8; ++id) {
    Row removed;
    ASSERT_TRUE(table->DeleteByKey({V(id)}, &removed));
    deleted.push_back(std::move(removed));
  }
  hitters.OnDelete("O", deleted);
  bool demoted = false;
  EXPECT_FALSE(hitters.IsHeavy("O", "o_ck", V(42), &demoted));
  EXPECT_TRUE(demoted);
  EXPECT_EQ(hitters.rebuild_count(), 1);  // no rescan was needed
  EXPECT_EQ(hitters.demotions(), 1);
}

TEST_F(HeavyHitterCatalogTest, UnseenVersionDriftForcesRescan) {
  Table* table = catalog_.GetTable("O");
  for (Row& row : MakeRows(1, 3, 7)) table->Insert(std::move(row));

  HeavyHitterCatalog hitters(&catalog_, SmallConfig());
  hitters.Track("O", "o_ck");
  EXPECT_FALSE(hitters.IsHeavy("O", "o_ck", V(7)));  // builds at count 3

  // Mutate behind the catalog's back, then feed a batch whose size does
  // not explain the version delta: the catalog must rescan.
  for (Row& row : MakeRows(100, 9, 7)) table->Insert(std::move(row));
  std::vector<Row> fed = MakeRows(200, 1, 7);
  table->Insert(Row{V(200), V(7)});
  hitters.OnInsert("O", fed);
  EXPECT_EQ(hitters.rebuild_count(), 2);
  EXPECT_TRUE(hitters.IsHeavy("O", "o_ck", V(7)));  // true count 13
}

TEST_F(HeavyHitterCatalogTest, RedundantFeedIsIgnoredByVersionGuard) {
  Table* table = catalog_.GetTable("O");
  for (Row& row : MakeRows(1, 4, 9)) table->Insert(std::move(row));

  HeavyHitterCatalog hitters(&catalog_, SmallConfig());
  hitters.Track("O", "o_ck");
  EXPECT_FALSE(hitters.IsHeavy("O", "o_ck", V(9)));

  // Feeding the same batch twice (e.g. two maintainers observing one
  // statement) must count it once: the second feed sees no version
  // advance and is dropped.
  std::vector<Row> batch = MakeRows(50, 6, 9);
  for (const Row& row : batch) table->Insert(row);
  hitters.OnInsert("O", batch);
  hitters.OnInsert("O", batch);
  EXPECT_EQ(hitters.EstimateCount("O", "o_ck", V(9)), 10);
  EXPECT_TRUE(hitters.IsHeavy("O", "o_ck", V(9)));
}

}  // namespace
}  // namespace opt
}  // namespace ojv
