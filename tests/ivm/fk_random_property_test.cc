// Random SPOJ views over a schema with a chain of foreign keys
// (C.c_fk → B.b_id → ... → A.a_id), joined on those keys, under legal
// update sequences. The FK-exploiting maintainer (term pruning,
// Theorem 3, SimplifyTree) must agree row-for-row with the FK-blind one
// and with recomputation — the broadest exercise of §6.

#include <gtest/gtest.h>

#include <set>

#include "baseline/recompute.h"
#include "ivm/maintainer.h"
#include "test_util.h"

namespace ojv {
namespace {

// A(a_id, a_a) ← B(b_id, b_fk→A, b_a) ← C(c_id, c_fk→B, c_a), plus a
// free table D(d_id, d_a).
void CreateChainSchema(Catalog* catalog) {
  catalog->CreateTable(
      "A",
      Schema({ColumnDef{"a_id", ValueType::kInt64, false},
              ColumnDef{"a_a", ValueType::kInt64, true}}),
      {"a_id"});
  catalog->CreateTable(
      "B",
      Schema({ColumnDef{"b_id", ValueType::kInt64, false},
              ColumnDef{"b_fk", ValueType::kInt64, false},
              ColumnDef{"b_a", ValueType::kInt64, true}}),
      {"b_id"});
  catalog->CreateTable(
      "C",
      Schema({ColumnDef{"c_id", ValueType::kInt64, false},
              ColumnDef{"c_fk", ValueType::kInt64, false},
              ColumnDef{"c_a", ValueType::kInt64, true}}),
      {"c_id"});
  catalog->CreateTable(
      "D",
      Schema({ColumnDef{"d_id", ValueType::kInt64, false},
              ColumnDef{"d_a", ValueType::kInt64, true}}),
      {"d_id"});
  catalog->AddForeignKey({"B", {"b_fk"}, "A", {"a_id"}});
  catalog->AddForeignKey({"C", {"c_fk"}, "B", {"b_id"}});
}

// Random join tree over A..D where B and C attach through their FK
// equijoins whenever their parent is already in the tree (making the §6
// machinery applicable), and D attaches on a small-domain column.
ViewDef RandomFkView(const Catalog& catalog, Rng* rng) {
  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  JoinKind kinds[] = {JoinKind::kInner, JoinKind::kLeftOuter,
                      JoinKind::kRightOuter, JoinKind::kFullOuter};
  auto kind = [&]() { return kinds[rng->Uniform(0, 3)]; };

  // Attach order: A first, then B, C, D in random relative order.
  std::vector<std::string> rest = {"B", "C", "D"};
  for (size_t i = 0; i < rest.size(); ++i) {
    std::swap(rest[i], rest[static_cast<size_t>(
                           rng->Uniform(static_cast<int64_t>(i),
                                        static_cast<int64_t>(rest.size()) -
                                            1))]);
  }
  RelExprPtr expr = RelExpr::Scan("A");
  std::set<std::string> present = {"A"};
  for (const std::string& t : rest) {
    ScalarExprPtr pred;
    if (t == "B") {
      pred = eq("B", "b_fk", "A", "a_id");
    } else if (t == "C" && present.count("B") > 0) {
      pred = eq("C", "c_fk", "B", "b_id");
    } else if (t == "C") {
      pred = eq("C", "c_a", "A", "a_a");  // non-FK attachment
    } else if (present.count("B") > 0 && rng->Chance(0.5)) {
      pred = eq("D", "d_a", "B", "b_a");
    } else {
      pred = eq("D", "d_a", "A", "a_a");
    }
    bool put_right = rng->Chance(0.5);
    RelExprPtr scan = RelExpr::Scan(t);
    expr = put_right ? RelExpr::Join(kind(), expr, scan, pred)
                     : RelExpr::Join(kind(), scan, expr, pred);
    present.insert(t);
  }
  std::vector<ColumnRef> output = {
      {"A", "a_id"}, {"A", "a_a"}, {"B", "b_id"}, {"B", "b_fk"},
      {"B", "b_a"},  {"C", "c_id"}, {"C", "c_fk"}, {"C", "c_a"},
      {"D", "d_id"}, {"D", "d_a"}};
  return ViewDef("fk_random", expr, std::move(output), catalog);
}

struct ChainWorld {
  Catalog catalog;
  Rng rng;
  int64_t next_key = 1;

  explicit ChainWorld(uint64_t seed) : rng(seed) {
    CreateChainSchema(&catalog);
    for (int i = 0; i < 10; ++i) InsertA();
    for (int i = 0; i < 14; ++i) InsertB();
    for (int i = 0; i < 14; ++i) InsertC();
    for (int i = 0; i < 8; ++i) InsertD();
  }

  Row InsertA() {
    Row row{Value::Int64(next_key++), Value::Int64(rng.Uniform(0, 3))};
    catalog.GetTable("A")->Insert(row);
    return row;
  }
  Row InsertB() {
    std::vector<Row> parents =
        testing_util::SampleKeys(*catalog.GetTable("A"), &rng, 1);
    Row row{Value::Int64(next_key++), parents[0][0],
            Value::Int64(rng.Uniform(0, 3))};
    catalog.GetTable("B")->Insert(row);
    return row;
  }
  Row InsertC() {
    std::vector<Row> parents =
        testing_util::SampleKeys(*catalog.GetTable("B"), &rng, 1);
    Row row{Value::Int64(next_key++), parents[0][0],
            Value::Int64(rng.Uniform(0, 3))};
    catalog.GetTable("C")->Insert(row);
    return row;
  }
  Row InsertD() {
    Row row{Value::Int64(next_key++), Value::Int64(rng.Uniform(0, 3))};
    catalog.GetTable("D")->Insert(row);
    return row;
  }

  // Keys of rows with no referencing children (legal deletes).
  std::vector<Row> DeletableKeys(const std::string& table, int n) {
    std::set<int64_t> referenced;
    if (table == "A") {
      catalog.GetTable("B")->ForEach(
          [&](const Row& row) { referenced.insert(row[1].int64()); });
    } else if (table == "B") {
      catalog.GetTable("C")->ForEach(
          [&](const Row& row) { referenced.insert(row[1].int64()); });
    }
    std::vector<Row> keys;
    catalog.GetTable(table)->ForEach([&](const Row& row) {
      if (static_cast<int>(keys.size()) < n &&
          referenced.count(row[0].int64()) == 0) {
        keys.push_back(Row{row[0]});
      }
    });
    return keys;
  }
};

class FkRandomPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FkRandomPropertyTest, FkPlansAgreeWithBlindPlansOnRandomViews) {
  const uint64_t seed = GetParam();
  ChainWorld world(seed);
  ViewDef view = RandomFkView(world.catalog, &world.rng);

  MaintenanceOptions with_fk;
  MaintenanceOptions without_fk;
  without_fk.exploit_foreign_keys = false;
  ViewMaintainer fast(&world.catalog, view, with_fk);
  ViewMaintainer slow(&world.catalog, view, without_fk);
  fast.InitializeView();
  slow.InitializeView();

  for (int op = 0; op < 10; ++op) {
    std::string table;
    std::vector<Row> rows;
    bool is_insert = true;
    switch (world.rng.Uniform(0, 6)) {
      case 0:
        table = "A";
        rows = {world.InsertA()};
        break;
      case 1:
        table = "B";
        rows = {world.InsertB()};
        break;
      case 2:
        table = "C";
        rows = {world.InsertC(), world.InsertC()};
        break;
      case 3:
        table = "D";
        rows = {world.InsertD()};
        break;
      case 4: {
        table = "C";
        is_insert = false;
        rows = ApplyBaseDelete(
            world.catalog.GetTable("C"),
            testing_util::SampleKeys(*world.catalog.GetTable("C"),
                                     &world.rng, 2));
        break;
      }
      case 5: {
        table = "B";
        is_insert = false;
        rows = ApplyBaseDelete(world.catalog.GetTable("B"),
                               world.DeletableKeys("B", 2));
        break;
      }
      default: {
        table = "A";
        is_insert = false;
        rows = ApplyBaseDelete(world.catalog.GetTable("A"),
                               world.DeletableKeys("A", 1));
        break;
      }
    }
    std::string violation;
    ASSERT_TRUE(world.catalog.CheckForeignKeys(&violation)) << violation;
    if (is_insert) {
      fast.OnInsert(table, rows);
      slow.OnInsert(table, rows);
    } else {
      fast.OnDelete(table, rows);
      slow.OnDelete(table, rows);
    }
    std::string diff;
    ASSERT_TRUE(ViewMatchesRecompute(world.catalog, view, fast.view(), &diff))
        << "seed " << seed << " view " << view.tree()->ToString() << " op "
        << op << " (" << table << "): " << diff;
    ASSERT_TRUE(
        SameBag(fast.view().AsRelation(), slow.view().AsRelation(), &diff))
        << "seed " << seed << " op " << op << " fk-on vs fk-off: " << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFkViews, FkRandomPropertyTest,
                         ::testing::Range<uint64_t>(901, 941));

}  // namespace
}  // namespace ojv
