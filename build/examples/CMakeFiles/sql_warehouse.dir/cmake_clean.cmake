file(REMOVE_RECURSE
  "CMakeFiles/sql_warehouse.dir/sql_warehouse.cpp.o"
  "CMakeFiles/sql_warehouse.dir/sql_warehouse.cpp.o.d"
  "sql_warehouse"
  "sql_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
