// Property test for aggregation views: random SPOJ views with random
// group-by columns and aggregates, maintained under random updates, must
// always match a from-scratch re-aggregation.

#include <gtest/gtest.h>

#include "ivm/aggregate_view.h"
#include "test_util.h"

namespace ojv {
namespace {

using testing_util::CreateRandomSchema;
using testing_util::RandomRstuRows;
using testing_util::RandomSpojView;
using testing_util::SampleKeys;

class AggregatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregatePropertyTest, IncrementalAggregationMatchesRecompute) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Catalog catalog;
  int num_tables = static_cast<int>(rng.Uniform(3, 4));
  std::vector<std::string> tables = CreateRandomSchema(&catalog, num_tables);

  int64_t next_key = 1;
  for (const std::string& name : tables) {
    Table* table = catalog.GetTable(name);
    for (Row& row : RandomRstuRows(name, &rng, 18, 4, &next_key)) {
      table->Insert(std::move(row));
    }
  }
  ViewDef view = RandomSpojView(catalog, tables, &rng);

  // Random group-by column (a join column of a random table) and
  // aggregates over two other random tables' columns.
  auto pick_table = [&]() {
    return tables[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(tables.size()) - 1))];
  };
  auto col = [](const std::string& t, const char* suffix) {
    std::string p(1, static_cast<char>(std::tolower(t[0])));
    return ColumnRef{t, p + suffix};
  };
  std::vector<ColumnRef> group_by = {col(pick_table(), "_a")};
  std::vector<AggregateSpec> aggs = {
      {AggregateSpec::Kind::kCountStar, {}, "cnt"},
      {AggregateSpec::Kind::kCount, col(pick_table(), "_id"), "cnt_x"},
      {AggregateSpec::Kind::kSum, col(pick_table(), "_v"), "sum_y"},
  };
  AggViewMaintainer agg(&catalog, view, group_by, aggs);
  agg.InitializeView();
  std::string diff;
  ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff)) << "initial: " << diff;

  int64_t fresh_key = 700000;
  for (int op = 0; op < 6; ++op) {
    const std::string& name = pick_table();
    Table* table = catalog.GetTable(name);
    if (rng.Chance(0.5) && table->size() > 3) {
      std::vector<Row> deleted =
          ApplyBaseDelete(table, SampleKeys(*table, &rng, 3));
      agg.OnDelete(name, deleted);
    } else {
      std::vector<Row> inserted = ApplyBaseInsert(
          table, RandomRstuRows(name, &rng, 4, 4, &fresh_key));
      agg.OnInsert(name, inserted);
    }
    ASSERT_TRUE(agg.MatchesRecompute(1e-9, &diff))
        << "view " << view.tree()->ToString() << " op " << op << " on "
        << name << ": " << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomAggViews, AggregatePropertyTest,
                         ::testing::Range<uint64_t>(401, 451));

}  // namespace
}  // namespace ojv
