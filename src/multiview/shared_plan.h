#ifndef OJV_MULTIVIEW_SHARED_PLAN_H_
#define OJV_MULTIVIEW_SHARED_PLAN_H_

#include <map>
#include <string>

#include "multiview/view_group.h"

namespace ojv {
namespace multiview {

/// The merged maintenance DAG for one (group, ΔT table, policy): a
/// shared prefix expression evaluated once per batch into a transient
/// relation, and per-view suffix expressions whose DeltaScan leaf
/// (opt::kSharedPrefixLeaf) is bound to that relation. Members absent
/// from `suffixes` fall back to their independent plan for this table.
struct SharedPlan {
  size_t prefix_len = 0;
  RelExprPtr prefix;
  std::string prefix_signature;
  std::map<std::string, RelExprPtr> suffixes;  // view -> suffix expr

  /// True when sharing is worthwhile: at least two views fan out of a
  /// non-empty common prefix.
  bool Shareable() const { return prefix_len > 0 && suffixes.size() >= 2; }
};

/// Builds and caches SharedPlans per (group id, table, policy). The
/// cache self-invalidates when the group catalog's version changes
/// (view created/dropped), and group ids are never reused, so a stale
/// entry can never be served for a re-created view.
class SharedPlanBuilder {
 public:
  explicit SharedPlanBuilder(const ViewGroupCatalog* catalog)
      : catalog_(catalog) {}

  /// The shared plan for maintaining `group`'s members against ΔT of
  /// `table`. `member_exprs` maps each due member to the delta
  /// expression its maintainer would run independently under the
  /// current policy (constraint-free plans differ from default ones, so
  /// the two policies cache separately via `constraint_free`).
  const SharedPlan& Get(const ViewGroup& group, const std::string& table,
                        bool constraint_free,
                        const std::map<std::string, RelExprPtr>& member_exprs);

  size_t cache_size() const { return cache_.size(); }

 private:
  SharedPlan Build(const std::string& table,
                   const std::map<std::string, RelExprPtr>& member_exprs) const;

  const ViewGroupCatalog* catalog_;
  uint64_t cached_version_ = 0;
  std::map<std::string, SharedPlan> cache_;  // "<gid>/<table>/<cf>"
};

}  // namespace multiview
}  // namespace ojv

#endif  // OJV_MULTIVIEW_SHARED_PLAN_H_
