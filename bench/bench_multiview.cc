// Multi-view maintenance: N overlapping TPC-H views refreshed under
// MultiviewMode::kShared vs kIndependent.
//
// The catalog is three clusters of views over customer ⟕ σ(orders)
// [⟕ lineitem], where each cluster shares the orders-side date filter
// but alternates between the 2-table and 3-table shape. Every view in a
// cluster therefore shares its Δorders delta prefix — σ(date) over the
// delta followed by the join against the customer base — so shared mode
// executes that join once per group per refresh batch and fans the
// per-view suffixes out from the cached prefix. Independent mode runs
// the full delta plan once per view.
//
// The join probe-volume counter (ojv.exec.join.rows_in) makes the win
// architectural rather than a timing artifact: shared mode must feed
// strictly fewer rows into join operators, and the benchmark aborts if
// it does not (obs-enabled builds only).

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/date.h"
#include "ivm/database.h"
#include "obs/metrics.h"

namespace ojv {
namespace bench {
namespace {

constexpr const char* kClusterDates[] = {"1993-01-01", "1995-01-01",
                                         "1997-01-01"};
constexpr int kNumClusters = 3;
// The refresh batch is new *orders* for existing customers: the Δorders
// plan must genuinely join against the customer base table, so sharing
// the prefix is visible in join probe volume. (New customers would hit
// the FK fast path — fresh keys cannot match any order, maintenance
// null-extends without running a single join — and both modes would
// report zero probes.)
constexpr int64_t kDeltaOrders = 200;

ScalarExprPtr Col(const char* table, const char* column) {
  return ScalarExpr::Column(table, column);
}

// View i: customer ⟕ σ(o_orderdate >= cluster date)(orders), extended to
// lineitem for every second view of the cluster. The customer side is
// deliberately unfiltered: a selection on the delta table is the first
// fingerprint step, so per-view customer predicates would break Δcustomer
// prefix sharing at step 0.
ViewDef MakeOverlappingView(const Catalog& catalog, int index) {
  const int cluster = index % kNumClusters;
  const bool wide = (index / kNumClusters) % 2 == 1;
  RelExprPtr orders = RelExpr::Select(
      RelExpr::Scan("orders"),
      ScalarExpr::Compare(
          CompareOp::kGe, Col("orders", "o_orderdate"),
          ScalarExpr::Literal(Value::Date(ParseDate(kClusterDates[cluster])))));
  RelExprPtr tree =
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("customer"),
                    std::move(orders),
                    ScalarExpr::Compare(CompareOp::kEq,
                                        Col("customer", "c_custkey"),
                                        Col("orders", "o_custkey")));
  std::vector<ColumnRef> output = {{"customer", "c_custkey"},
                                   {"customer", "c_acctbal"},
                                   {"orders", "o_orderkey"},
                                   {"orders", "o_custkey"},
                                   {"orders", "o_orderdate"}};
  if (wide) {
    tree = RelExpr::Join(JoinKind::kLeftOuter, std::move(tree),
                         RelExpr::Scan("lineitem"),
                         ScalarExpr::Compare(CompareOp::kEq,
                                             Col("orders", "o_orderkey"),
                                             Col("lineitem", "l_orderkey")));
    output.push_back({"lineitem", "l_orderkey"});
    output.push_back({"lineitem", "l_linenumber"});
    output.push_back({"lineitem", "l_quantity"});
  }
  return ViewDef("mv" + std::to_string(index), std::move(tree),
                 std::move(output), catalog);
}

/// A populated TPC-H database carrying `num_views` overlapping deferred
/// views under the given multiview mode.
struct MvInstance {
  Database db;

  MvInstance(tpch::Dbgen* dbgen, int num_views, MultiviewMode mode,
             int threads) {
    tpch::CreateSchema(db.catalog());
    dbgen->Populate(db.catalog());
    db.SetMultiviewMode(mode);
    deferred::ThresholdConfig config;
    config.refresh_threads = threads;
    for (int i = 0; i < num_views; ++i) {
      ViewDef def = MakeOverlappingView(*db.catalog(), i);
      const std::string name = def.name();
      db.CreateMaterializedView(std::move(def));
      db.SetRefreshPolicy(name, deferred::RefreshPolicy::kOnDemand, config);
    }
  }
};

int64_t CounterValue(const char* name) {
  if constexpr (obs::kEnabled) {
    return obs::Registry::Global().GetCounter(name).value();
  }
  return 0;
}

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f, %lld new orders per refresh batch\n",
              options.scale_factor, static_cast<long long>(kDeltaOrders));

  JsonReport report("multiview", options);
  PrintHeader("Shared delta plans vs independent refresh (RefreshAll wall)",
              {"Views", "Groups", "Independent", "Shared", "Speedup",
               "JoinRows(ind)", "JoinRows(shr)"});
  for (int num_views : {50, 200}) {
    tpch::DbgenOptions gen_options;
    gen_options.scale_factor = options.scale_factor;
    gen_options.seed = options.seed;
    tpch::Dbgen dbgen(gen_options);
    MvInstance shared(&dbgen, num_views, MultiviewMode::kShared,
                      options.threads);
    MvInstance independent(&dbgen, num_views, MultiviewMode::kIndependent,
                           options.threads);
    tpch::RefreshStream stream(shared.db.catalog(), &dbgen, options.seed);

    // One order batch staged into both logs, drained two ways.
    std::vector<Row> rows = stream.NewOrders(kDeltaOrders);
    shared.db.Insert("orders", rows);
    independent.db.Insert("orders", rows);

    const int64_t join0 = CounterValue("ojv.exec.join.rows_in");
    double independent_ms = TimeMs([&] { independent.db.RefreshAll(); });
    const int64_t join1 = CounterValue("ojv.exec.join.rows_in");
    const int64_t evals0 = CounterValue("ojv.multiview.shared_prefix_evals");
    const int64_t hits0 = CounterValue("ojv.multiview.shared_prefix_hits");
    const int64_t suffix0 = CounterValue("ojv.multiview.suffix_refreshes");
    double shared_ms = TimeMs([&] { shared.db.RefreshAll(); });
    const int64_t join2 = CounterValue("ojv.exec.join.rows_in");

    const int64_t independent_join_rows = join1 - join0;
    const int64_t shared_join_rows = join2 - join1;
    const int64_t groups =
        static_cast<int64_t>(shared.db.ViewGroups().size());
    if (obs::kEnabled) {
      // The whole point of the subsystem: sharing must cut probe volume.
      OJV_CHECK(shared_join_rows < independent_join_rows,
                "shared refresh fed >= join rows vs independent");
    }

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  independent_ms / std::max(shared_ms, 1e-3));
    PrintRow({FormatCount(num_views), FormatCount(groups),
              FormatMs(independent_ms), FormatMs(shared_ms), speedup,
              FormatCount(independent_join_rows),
              FormatCount(shared_join_rows)});
    report.BeginRow();
    report.Str("workload", "refresh_all");
    report.Count("batch_rows", num_views);  // gate key: the view count
    report.Count("views", num_views);
    report.Count("groups", groups);
    report.Count("delta_orders", kDeltaOrders);
    report.Num("independent_ms", independent_ms);
    report.Num("ours_ms", shared_ms);
    report.Count("join_rows_independent", independent_join_rows);
    report.Count("join_rows_shared", shared_join_rows);
    report.Count("shared_prefix_evals",
                 CounterValue("ojv.multiview.shared_prefix_evals") - evals0);
    report.Count("shared_prefix_hits",
                 CounterValue("ojv.multiview.shared_prefix_hits") - hits0);
    report.Count("suffix_refreshes",
                 CounterValue("ojv.multiview.suffix_refreshes") - suffix0);
  }

  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
