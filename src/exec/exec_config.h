#ifndef OJV_EXEC_EXEC_CONFIG_H_
#define OJV_EXEC_EXEC_CONFIG_H_

#include <cstdint>

namespace ojv {

/// Parallelism knobs of the morsel-driven executor. The default runs
/// everything on the calling thread; num_threads > 1 turns on the
/// parallel operator variants (join build/probe, scans, dedup,
/// subsumption removal) for inputs large enough to amortize the fan-out.
///
/// Determinism: for a fixed config the parallel operators produce rows
/// in exactly the serial order — inputs are split into fixed-size
/// morsels, each morsel's output is buffered separately, and buffers are
/// concatenated in morsel index order. The only thing a thread count
/// changes is wall-clock time.
/// Physical executor for the hot delta operators. kRowAtATime is the
/// original row-at-a-time interpreter and the default — it preserves
/// prior behavior byte for byte, output order included. kColumnar runs
/// select, project, equality hash joins, null-if, dedup, and
/// subsumption removal through the chunked columnar kernels in
/// src/exec/columnar/ (typed column arrays, selection vectors, explicit
/// SIMD filter/hash/gather); inputs are converted at relation
/// boundaries, so every caller composes unchanged. Results are
/// Relation::Equals either way (bag-equal; row order may differ).
/// Operators the columnar engine does not cover (sort-merge joins,
/// non-equality joins, joins with residual predicates) fall back to the
/// row path automatically.
enum class ExecEngine {
  kRowAtATime,
  kColumnar,
};

struct ExecConfig {
  /// Total worker count including the calling thread; 1 = serial.
  int num_threads = 1;
  /// Rows per morsel (scheduling granule of the parallel loops).
  int64_t morsel_rows = 2048;
  /// Inputs smaller than this stay on the serial path: fan-out overhead
  /// beats the win on tiny deltas, which are the common case for
  /// immediate maintenance.
  int64_t parallel_min_rows = 4096;
  /// Physical executor for the hot operators (see ExecEngine).
  ExecEngine engine = ExecEngine::kRowAtATime;
  /// Rows per column chunk of the columnar engine. Chunks are also the
  /// morsel unit of its parallel loops, so this is both the cache
  /// blocking factor and the scheduling granule.
  int64_t chunk_rows = 1024;
};

}  // namespace ojv

#endif  // OJV_EXEC_EXEC_CONFIG_H_
