// OnUpdate (§6 caveat 1): an UPDATE modeled as delete+insert must be
// maintained without foreign-key shortcuts — during the pair the
// constraint does not hold between old and new states — and still leave
// the view equal to a recomputation.

#include <gtest/gtest.h>

#include <set>

#include "baseline/recompute.h"
#include "common/date.h"
#include "ivm/maintainer.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

TEST(UpdateTest, UpdatingReferencedParentRowsStaysCorrect) {
  // oj_view: updating a *referenced* part row. The FK fast path would be
  // wrong here: the delete phase orphans the part's lineitems
  // transiently. OnUpdate must use the FK-free plans.
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);

  ViewDef oj_view = tpch::MakeOjView(catalog);
  ViewMaintainer maintainer(&catalog, oj_view, MaintenanceOptions());
  maintainer.InitializeView();

  // Pick a part that is referenced by some lineitem.
  int64_t referenced_part = -1;
  catalog.GetTable("lineitem")->ForEach([&](const Row& row) {
    if (referenced_part < 0) referenced_part = row[1].int64();
  });
  ASSERT_GT(referenced_part, 0);

  Table* part = catalog.GetTable("part");
  Row old_row = *part->FindByKey(Row{Value::Int64(referenced_part)});
  Row new_row = old_row;
  new_row[1] = Value::String("renamed part");           // p_name
  new_row[7] = Value::Float64(old_row[7].float64() + 1);  // p_retailprice

  std::vector<Row> old_rows;
  ApplyBaseUpdate(part, {Row{Value::Int64(referenced_part)}}, {new_row},
                  &old_rows);
  ASSERT_EQ(old_rows.size(), 1u);
  EXPECT_EQ(old_rows[0][1], old_row[1]);

  MaintenanceStats stats = maintainer.OnUpdate("part", old_rows, {new_row});
  EXPECT_GT(stats.primary_rows, 0);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog, oj_view, maintainer.view(),
                                   &diff))
      << diff;
}

TEST(UpdateTest, UpdatingOrdersOfV3IsNotSkipped) {
  // Plain inserts/deletes of orders never affect V3 (FK-immune), but an
  // UPDATE of an order may move it in or out of the o_orderdate window,
  // changing the view. OnUpdate must not use the Theorem 3 shortcut.
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);

  ViewDef v3 = tpch::MakeV3(catalog);
  ViewMaintainer maintainer(&catalog, v3, MaintenanceOptions());
  maintainer.InitializeView();
  ASSERT_TRUE(maintainer.DeltaIsEmpty("orders"));  // inserts are free...

  // ...but moving an out-of-window order (with lineitems) into the
  // window must add rows to the view.
  int64_t target = -1;
  const int64_t window_start = ParseDate("1994-06-01");
  const int64_t window_end = ParseDate("1994-12-31");
  std::set<int64_t> with_lines;
  catalog.GetTable("lineitem")->ForEach(
      [&](const Row& row) { with_lines.insert(row[0].int64()); });
  catalog.GetTable("orders")->ForEach([&](const Row& row) {
    int64_t date = row[4].int64();
    if (target < 0 && (date < window_start || date > window_end) &&
        with_lines.count(row[0].int64()) > 0) {
      target = row[0].int64();
    }
  });
  ASSERT_GT(target, 0);

  Table* orders = catalog.GetTable("orders");
  Row old_row = *orders->FindByKey(Row{Value::Int64(target)});
  Row new_row = old_row;
  new_row[4] = Value::Date(ParseDate("1994-08-15"));

  // Count rows with a non-null order key (the COL/COLP terms) before.
  auto full_rows = [&]() {
    int64_t n = 0;
    const std::vector<int>& keys =
        maintainer.view().schema().KeyPositions("orders");
    maintainer.view().ForEach([&](int64_t, const Row& row) {
      if (!row[static_cast<size_t>(keys[0])].is_null()) ++n;
    });
    return n;
  };
  int64_t before = full_rows();
  std::vector<Row> old_rows;
  ApplyBaseUpdate(orders, {Row{Value::Int64(target)}}, {new_row}, &old_rows);
  MaintenanceStats stats = maintainer.OnUpdate("orders", old_rows, {new_row});
  EXPECT_GT(stats.primary_rows, 0);
  // The moved-in order's lineitems now appear joined in the view. (The
  // *total* size may stay flat: each new joined row can retire a
  // customer or part orphan.)
  EXPECT_GT(full_rows(), before);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog, v3, maintainer.view(), &diff))
      << diff;
}

TEST(UpdateTest, RandomUpdatesOnV1MatchRecompute) {
  Catalog catalog;
  testing_util::CreateRstuSchema(&catalog);
  Rng rng(777);
  testing_util::PopulateRandomRstu(&catalog, &rng, 25, 5);
  ViewDef v1 = testing_util::MakeV1(catalog);
  ViewMaintainer maintainer(&catalog, v1, MaintenanceOptions());
  maintainer.InitializeView();

  for (int round = 0; round < 8; ++round) {
    const char* names[] = {"R", "S", "T", "U"};
    const char* name = names[round % 4];
    Table* table = catalog.GetTable(name);
    std::vector<Row> keys = testing_util::SampleKeys(*table, &rng, 3);
    std::vector<Row> new_rows;
    for (const Row& key : keys) {
      Row row = *table->FindByKey(key);
      row[1] = rng.Chance(0.2) ? Value::Null()
                               : Value::Int64(rng.Uniform(0, 4));
      row[3] = Value::Int64(rng.Uniform(0, 999));
      new_rows.push_back(std::move(row));
    }
    std::vector<Row> old_rows;
    ApplyBaseUpdate(table, keys, new_rows, &old_rows);
    maintainer.OnUpdate(name, old_rows, new_rows);
    std::string diff;
    ASSERT_TRUE(ViewMatchesRecompute(catalog, v1, maintainer.view(), &diff))
        << "round " << round << " (" << name << "): " << diff;
  }
}

}  // namespace
}  // namespace ojv
