// Unit tests for the materialized-view storage: clustered full-key
// index, per-table secondary indexes (including NULL handling), slot
// reuse.

#include "ivm/materialized_view.h"

#include <gtest/gtest.h>

namespace ojv {
namespace {

BoundSchema TwoTableSchema() {
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"A", "a_id", ValueType::kInt64, 0});
  schema.AddColumn(BoundColumn{"A", "a_v", ValueType::kInt64, -1});
  schema.AddColumn(BoundColumn{"B", "b_id", ValueType::kInt64, 0});
  schema.AddColumn(BoundColumn{"B", "b_v", ValueType::kInt64, -1});
  return schema;
}

Row MakeRow(int64_t a_id, int64_t b_id) {
  return Row{a_id == 0 ? Value::Null() : Value::Int64(a_id), Value::Int64(1),
             b_id == 0 ? Value::Null() : Value::Int64(b_id), Value::Int64(2)};
}

TEST(MaterializedViewTest, InsertDeleteByFullKey) {
  MaterializedView view(TwoTableSchema());
  view.Insert(MakeRow(1, 10));
  view.Insert(MakeRow(1, 0));  // orphan: same A key, null B
  view.Insert(MakeRow(0, 10));
  EXPECT_EQ(view.size(), 3);

  // DeleteMatching keys on the full (A,B) key.
  EXPECT_TRUE(view.DeleteMatching(MakeRow(1, 0)));
  EXPECT_FALSE(view.DeleteMatching(MakeRow(1, 0)));
  EXPECT_EQ(view.size(), 2);
}

TEST(MaterializedViewTest, TableKeyLookups) {
  MaterializedView view(TwoTableSchema());
  view.Insert(MakeRow(1, 10));
  view.Insert(MakeRow(1, 11));
  view.Insert(MakeRow(2, 10));
  view.Insert(MakeRow(0, 12));  // null A

  Row probe = MakeRow(1, 0);
  std::vector<int64_t> hits =
      view.LookupByTableKey("A", probe, view.schema().KeyPositions("A"));
  EXPECT_EQ(hits.size(), 2u);

  // NULL keys never match (SQL equality).
  Row null_probe = MakeRow(0, 12);
  EXPECT_TRUE(view.LookupByTableKey("A", null_probe,
                                    view.schema().KeyPositions("A"))
                  .empty());

  // B-side lookups work symmetrically.
  Row b_probe = MakeRow(9, 10);
  EXPECT_EQ(view.LookupByTableKey("B", b_probe,
                                  view.schema().KeyPositions("B"))
                .size(),
            2u);
}

TEST(MaterializedViewTest, LookupsSkipDeletedRows) {
  MaterializedView view(TwoTableSchema());
  view.Insert(MakeRow(1, 10));
  view.Insert(MakeRow(1, 11));
  std::vector<int64_t> hits = view.LookupByTableKey(
      "A", MakeRow(1, 0), view.schema().KeyPositions("A"));
  ASSERT_EQ(hits.size(), 2u);
  view.DeleteById(hits[0]);
  EXPECT_EQ(view.LookupByTableKey("A", MakeRow(1, 0),
                                  view.schema().KeyPositions("A"))
                .size(),
            1u);
}

TEST(MaterializedViewTest, SlotReuseKeepsIndexesConsistent) {
  MaterializedView view(TwoTableSchema());
  for (int64_t i = 1; i <= 20; ++i) view.Insert(MakeRow(i, i + 100));
  for (int64_t i = 1; i <= 10; ++i) {
    EXPECT_TRUE(view.DeleteMatching(MakeRow(i, i + 100)));
  }
  for (int64_t i = 21; i <= 30; ++i) view.Insert(MakeRow(i, i + 100));
  EXPECT_EQ(view.size(), 20);
  for (int64_t i = 11; i <= 30; ++i) {
    EXPECT_EQ(view.LookupByTableKey("A", MakeRow(i, 0),
                                    view.schema().KeyPositions("A"))
                  .size(),
              1u)
        << i;
  }
  EXPECT_EQ(view.AsRelation().size(), 20);
}

TEST(MaterializedViewTest, AsRelationRoundTrip) {
  MaterializedView view(TwoTableSchema());
  view.Insert(MakeRow(1, 10));
  view.Insert(MakeRow(0, 11));
  Relation rel = view.AsRelation();
  EXPECT_EQ(rel.size(), 2);
  EXPECT_EQ(rel.schema().num_columns(), 4);
  EXPECT_TRUE(rel.schema().HasFullKey("A"));
  EXPECT_TRUE(rel.schema().HasFullKey("B"));
}

}  // namespace
}  // namespace ojv
