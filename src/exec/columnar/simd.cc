// Backend dispatch: one function-pointer table resolved before main().
// The scalar backend is always available; AVX2 joins when the TU was
// compiled in (OJV_HAVE_AVX2) and the CPU reports support at runtime;
// NEON is compile-time only (aarch64 guarantees it). -DOJV_SIMD=OFF
// builds neither vector TU, so the table degenerates to scalar — the
// tree tools/check.sh's simd-off stage exercises.

#include "exec/columnar/simd.h"

#include "exec/columnar/simd_avx2.h"
#include "exec/columnar/simd_neon.h"

namespace ojv {
namespace columnar {
namespace simd {

namespace {

struct Backend {
  const char* name;
  int lanes_i64;
  void (*cmp_i64_lit)(const int64_t*, int64_t, CompareOp, int64_t, uint8_t*);
  void (*cmp_i64_cols)(const int64_t*, const int64_t*, int64_t, CompareOp,
                       uint8_t*);
  void (*cmp_f64_lit)(const double*, int64_t, CompareOp, double, uint8_t*);
  void (*hash_i64)(const int64_t*, int64_t, uint64_t*);
  void (*hash_combine_i64)(const int64_t*, int64_t, uint64_t*);
  void (*gather_i64)(const int64_t*, const int32_t*, int64_t, int64_t*);
  void (*gather_f64)(const double*, const int32_t*, int64_t, double*);
};

constexpr Backend kScalarBackend = {
    "scalar",        1,
    scalar::CmpI64Lit,  scalar::CmpI64Cols, scalar::CmpF64Lit,
    scalar::HashI64,    scalar::HashCombineI64,
    scalar::GatherI64,  scalar::GatherF64,
};

#if defined(OJV_HAVE_AVX2)
constexpr Backend kAvx2Backend = {
    "avx2",        4,
    avx2::CmpI64Lit,  avx2::CmpI64Cols, avx2::CmpF64Lit,
    avx2::HashI64,    avx2::HashCombineI64,
    avx2::GatherI64,  avx2::GatherF64,
};
#endif

#if defined(OJV_HAVE_NEON)
constexpr Backend kNeonBackend = {
    "neon",        2,
    neon::CmpI64Lit,  neon::CmpI64Cols, neon::CmpF64Lit,
    neon::HashI64,    neon::HashCombineI64,
    neon::GatherI64,  neon::GatherF64,
};
#endif

const Backend& Select() {
#if defined(OJV_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return kAvx2Backend;
#endif
#if defined(OJV_HAVE_NEON)
  return kNeonBackend;
#endif
  return kScalarBackend;
}

// Resolved once; reads afterwards are a plain pointer load.
const Backend& Active() {
  static const Backend& backend = Select();
  return backend;
}

}  // namespace

const char* BackendName() { return Active().name; }

bool VectorBackendActive() { return Active().lanes_i64 > 1; }

int LanesI64() { return Active().lanes_i64; }

void CmpI64Lit(const int64_t* vals, int64_t n, CompareOp op, int64_t literal,
               uint8_t* out) {
  Active().cmp_i64_lit(vals, n, op, literal, out);
}

void CmpI64Cols(const int64_t* a, const int64_t* b, int64_t n, CompareOp op,
                uint8_t* out) {
  Active().cmp_i64_cols(a, b, n, op, out);
}

void CmpF64Lit(const double* vals, int64_t n, CompareOp op, double literal,
               uint8_t* out) {
  Active().cmp_f64_lit(vals, n, op, literal, out);
}

void HashI64(const int64_t* vals, int64_t n, uint64_t* out) {
  Active().hash_i64(vals, n, out);
}

void HashCombineI64(const int64_t* vals, int64_t n, uint64_t* inout) {
  Active().hash_combine_i64(vals, n, inout);
}

void GatherI64(const int64_t* src, const int32_t* idx, int64_t n,
               int64_t* dst) {
  Active().gather_i64(src, idx, n, dst);
}

void GatherF64(const double* src, const int32_t* idx, int64_t n, double* dst) {
  Active().gather_f64(src, idx, n, dst);
}

}  // namespace simd
}  // namespace columnar
}  // namespace ojv
