#include "ivm/database.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/check.h"
#include "deferred/consolidate.h"
#include "obs/trace.h"
#include "obs/windowed.h"

namespace ojv {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

void Database::set_trace(obs::TraceContext* trace) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  default_options_.trace = trace;
  for (auto& [name, view] : views_) view->set_trace(trace);
  for (auto& [name, view] : agg_views_) view->set_trace(trace);
}

ViewMaintainer* Database::CreateMaterializedView(
    ViewDef view, const MaintenanceOptions* options) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::string name = view.name();
  OJV_CHECK(views_.find(name) == views_.end() &&
                agg_views_.find(name) == agg_views_.end(),
            "duplicate view name");
  auto maintainer = std::make_unique<ViewMaintainer>(
      &catalog_, std::move(view), options != nullptr ? *options
                                                     : default_options_);
  maintainer->InitializeView();
  ViewMaintainer* raw = maintainer.get();
  views_[name] = std::move(maintainer);
  return raw;
}

AggViewMaintainer* Database::CreateAggregateView(
    ViewDef base, std::vector<ColumnRef> group_by,
    std::vector<AggregateSpec> aggregates, const MaintenanceOptions* options) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::string name = base.name();
  OJV_CHECK(views_.find(name) == views_.end() &&
                agg_views_.find(name) == agg_views_.end(),
            "duplicate view name");
  auto maintainer = std::make_unique<AggViewMaintainer>(
      &catalog_, std::move(base), std::move(group_by), std::move(aggregates),
      options != nullptr ? *options : default_options_);
  maintainer->InitializeView();
  AggViewMaintainer* raw = maintainer.get();
  agg_views_[name] = std::move(maintainer);
  return raw;
}

ViewMaintainer* Database::GetView(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

AggViewMaintainer* Database::GetAggregateView(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = agg_views_.find(name);
  return it == agg_views_.end() ? nullptr : it->second.get();
}

std::vector<ViewMaintainer*> Database::Views() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<ViewMaintainer*> out;
  out.reserve(views_.size());
  for (auto& [name, view] : views_) out.push_back(view.get());
  return out;
}

bool Database::DropView(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (delta_log_.IsConsumer(name)) delta_log_.UnregisterConsumer(name);
  scheduler_.Forget(name);
  if (admission_ != nullptr) admission_->Forget(name);
  stats_.erase(name);
  return views_.erase(name) > 0 || agg_views_.erase(name) > 0;
}

bool Database::RowSatisfiesForeignKeys(const std::string& table,
                                       const Row& row) {
  const Table* child = catalog_.GetTable(table);
  for (const ForeignKey& fk : catalog_.foreign_keys()) {
    if (fk.child_table != table) continue;
    Row parent_key;
    parent_key.reserve(fk.child_columns.size());
    bool any_null = false;
    for (const std::string& col : fk.child_columns) {
      const Value& v = row[static_cast<size_t>(child->schema().IndexOf(col))];
      if (v.is_null()) any_null = true;
      parent_key.push_back(v);
    }
    if (any_null) continue;  // NULL FK references nothing
    if (catalog_.GetTable(fk.parent_table)->FindByKey(parent_key) == nullptr) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<const ForeignKey*, std::vector<Row>>>
Database::ReferencingRows(const std::string& table,
                          const std::vector<Row>& keys) {
  std::vector<std::pair<const ForeignKey*, std::vector<Row>>> out;
  for (const ForeignKey* fk : catalog_.ForeignKeysReferencing(table)) {
    const Table* child = catalog_.GetTable(fk->child_table);
    std::vector<int> fk_positions;
    for (const std::string& col : fk->child_columns) {
      fk_positions.push_back(child->schema().IndexOf(col));
    }
    // Hash the deleted keys for the scan below.
    std::vector<Row> hits;
    child->ForEach([&](const Row& row) {
      Row ref;
      ref.reserve(fk_positions.size());
      for (int p : fk_positions) {
        const Value& v = row[static_cast<size_t>(p)];
        if (v.is_null()) return;
        ref.push_back(v);
      }
      for (const Row& key : keys) {
        if (key == ref) {
          hits.push_back(row);
          return;
        }
      }
    });
    if (!hits.empty()) out.emplace_back(fk, std::move(hits));
  }
  return out;
}

void Database::Accumulate(const std::string& view,
                          const MaintenanceStats& stats) {
  ViewStats& total = stats_[view];
  ++total.statements;
  total.delta_rows += stats.delta_rows;
  total.primary_rows += stats.primary_rows;
  total.secondary_rows += stats.secondary_rows;
  total.micros += stats.total_micros;
}

std::string Database::StatsReport() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::ostringstream out;
  out << "view                stmts      delta    primary  secondary"
      << "    total-ms" << '\n';
  for (const auto& [name, s] : stats_) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-18s %6lld %10lld %10lld %10lld %11.2f\n",
                  name.c_str(), static_cast<long long>(s.statements),
                  static_cast<long long>(s.delta_rows),
                  static_cast<long long>(s.primary_rows),
                  static_cast<long long>(s.secondary_rows),
                  s.micros / 1000.0);
    out << line;
  }
  return out.str();
}

std::string Database::RefreshReport() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return scheduler_.Report();
}

// --- deferred maintenance -------------------------------------------------

const std::set<std::string>& Database::TablesOf(const std::string& view) const {
  auto it = views_.find(view);
  if (it != views_.end()) return it->second->view_def().tables();
  auto ait = agg_views_.find(view);
  OJV_CHECK(ait != agg_views_.end(), "unknown view");
  return ait->second->base_view().tables();
}

void Database::StageDeferred(const std::string& table, deferred::DeltaOp op,
                             const std::vector<Row>& rows, bool update_pair) {
  if (rows.empty() || in_transaction_ || !scheduler_.HasDeferredViews()) {
    return;
  }
  // Stage only when some deferred view will ever consume the entries.
  for (const std::string& view : scheduler_.DeferredViews()) {
    if (TablesOf(view).count(table) > 0) {
      delta_log_.Append(table, op, rows, update_pair);
      return;
    }
  }
}

void Database::SetRefreshPolicy(const std::string& view,
                                deferred::RefreshPolicy policy,
                                deferred::ThresholdConfig config) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  OJV_CHECK(views_.count(view) > 0 || agg_views_.count(view) > 0,
            "unknown view");
  bool was_deferred = scheduler_.IsDeferred(view);
  bool now_deferred = policy != deferred::RefreshPolicy::kImmediate;
  if (was_deferred && !now_deferred) {
    // Drain before going eager: an immediate view is never stale.
    RefreshLocked(view);
    delta_log_.UnregisterConsumer(view);
  }
  scheduler_.SetPolicy(view, policy, config);
  if (!was_deferred && now_deferred) delta_log_.RegisterConsumer(view);
}

deferred::RefreshPolicy Database::GetRefreshPolicy(
    const std::string& view) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return scheduler_.policy(view);
}

int64_t Database::PendingRows(const std::string& view) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!scheduler_.IsDeferred(view)) return 0;
  return delta_log_.PendingRows(view, TablesOf(view));
}

const deferred::ViewRefreshState* Database::RefreshState(
    const std::string& view) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return scheduler_.state(view);
}

deferred::RefreshStats Database::Refresh(const std::string& view) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  OJV_CHECK(views_.count(view) > 0 || agg_views_.count(view) > 0,
            "unknown view");
  return RefreshLocked(view);
}

std::map<std::string, deferred::RefreshStats> Database::RefreshAll() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::map<std::string, deferred::RefreshStats> out;
  for (const std::string& view : scheduler_.DeferredViews()) {
    out[view] = RefreshLocked(view);
  }
  return out;
}

const MaterializedView* Database::ReadView(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) return nullptr;
  if (!in_transaction_ && scheduler_.IsDeferred(name)) RefreshLocked(name);
  return &it->second->view();
}

Relation Database::ReadAggregateRelation(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = agg_views_.find(name);
  OJV_CHECK(it != agg_views_.end(), "unknown aggregate view");
  if (!in_transaction_ && scheduler_.IsDeferred(name)) RefreshLocked(name);
  return it->second->AsRelation();
}

deferred::RefreshStats Database::RefreshLocked(const std::string& name) {
  deferred::RefreshStats stats;
  if (!scheduler_.IsDeferred(name)) return stats;  // never stale
  obs::Span refresh_span(default_options_.trace, "deferred.refresh",
                         "deferred");
  refresh_span.AddArg("view", name);
  ViewMaintainer* row_view = nullptr;
  AggViewMaintainer* agg_view = nullptr;
  if (auto it = views_.find(name); it != views_.end()) {
    row_view = it->second.get();
  } else {
    auto ait = agg_views_.find(name);
    OJV_CHECK(ait != agg_views_.end(), "unknown view");
    agg_view = ait->second.get();
  }

  // Deferred batches are much larger than single statements, so a view
  // may request more executor threads for its consolidated replays than
  // its foreground maintenance uses (ThresholdConfig::refresh_threads).
  // The override lasts for this refresh only.
  const int refresh_threads = scheduler_.config(name).refresh_threads;
  const ExecConfig saved_exec =
      row_view != nullptr ? row_view->exec_config() : agg_view->exec_config();
  const bool boost = refresh_threads > 0 &&
                     refresh_threads != saved_exec.num_threads;
  if (boost) {
    ExecConfig boosted = saved_exec;
    boosted.num_threads = refresh_threads;
    if (row_view != nullptr) {
      row_view->set_exec(boosted);
    } else {
      agg_view->set_exec(boosted);
    }
  }

  auto start = std::chrono::steady_clock::now();
  const std::set<std::string>& tables = TablesOf(name);
  stats.staleness_micros = delta_log_.OldestPendingMicros(name, tables);
  std::map<std::string, std::vector<deferred::DeltaEntry>> pending =
      delta_log_.PendingFor(name, tables);
  uint64_t consumed_to = delta_log_.tail();

  if (!pending.empty()) {
    std::vector<deferred::TableDelta> deltas =
        deferred::Consolidate(pending, catalog_);
    std::vector<const deferred::TableDelta*> active;
    for (const deferred::TableDelta& d : deltas) {
      stats.raw_entries += d.raw_entries;
      stats.consolidated_rows += static_cast<int64_t>(d.deletes.size()) +
                                 static_cast<int64_t>(d.inserts.size());
      stats.cancelled_rows += d.cancelled;
      stats.update_pairs += d.update_pairs;
      if (!d.deletes.empty() || !d.inserts.empty()) {
        ++stats.tables_touched;
        active.push_back(&d);
      }
    }

    auto maintain = [&](const MaintenanceStats& m) {
      Accumulate(name, m);
      stats.maintenance_micros += m.total_micros;
    };

    if (active.size() == 1 &&
        (active[0]->deletes.empty() || active[0]->inserts.empty())) {
      // Single-table, single-operation batch: the base table's current
      // (post-batch) state is exactly what one eager statement with the
      // net rows would have seen, so no revert is needed and the
      // foreign-key plan set stays usable.
      const deferred::TableDelta& d = *active[0];
      if (!d.deletes.empty()) {
        maintain(row_view != nullptr
                     ? row_view->OnDelete(d.table, d.deletes,
                                          PlanPolicy::kDefault)
                     : agg_view->OnDelete(d.table, d.deletes,
                                          PlanPolicy::kDefault));
      } else {
        maintain(row_view != nullptr
                     ? row_view->OnInsert(d.table, d.inserts,
                                          PlanPolicy::kDefault)
                     : agg_view->OnInsert(d.table, d.inserts,
                                          PlanPolicy::kDefault));
      }
    } else if (!active.empty()) {
      // General batch (several tables, or delete+reinsert pairs): revert
      // the raw pending entries newest-first, then replay the net deltas
      // in first-appearance order. Every maintenance call then sees
      // precisely the base state an eager execution of the consolidated
      // statement sequence would have seen. Foreign keys may be violated
      // between those statements (an update pair's halves, a child batch
      // replayed before its parents), so the whole replay runs on the
      // constraint-free plan sets (§6 caveats 1 and 3).
      std::vector<std::pair<const std::string*, const deferred::DeltaEntry*>>
          raw;
      for (const auto& [table, entries] : pending) {
        for (const deferred::DeltaEntry& e : entries) {
          raw.emplace_back(&table, &e);
        }
      }
      std::sort(raw.begin(), raw.end(), [](const auto& a, const auto& b) {
        return a.second->seq > b.second->seq;
      });
      for (const auto& [table, entry] : raw) {
        Table* base = catalog_.GetTable(*table);
        if (entry->op == deferred::DeltaOp::kInsert) {
          Row key;
          for (int p : base->key_positions()) {
            key.push_back(entry->row[static_cast<size_t>(p)]);
          }
          Row removed;
          OJV_CHECK(base->DeleteByKey(key, &removed),
                    "deferred revert: staged insert not present");
        } else {
          OJV_CHECK(base->Insert(entry->row),
                    "deferred revert: staged delete still present");
        }
      }
      for (const deferred::TableDelta* d : active) {
        Table* base = catalog_.GetTable(d->table);
        maintain(row_view != nullptr
                     ? row_view->OnConsolidatedBatch(
                           base, d->table, d->deletes, d->inserts,
                           PlanPolicy::kConstraintFree)
                     : agg_view->OnConsolidatedBatch(
                           base, d->table, d->deletes, d->inserts,
                           PlanPolicy::kConstraintFree));
      }
      // Fully-cancelled tables were reverted but have nothing to replay:
      // restore their post-batch state by definition of cancellation
      // (their pre- and post-batch states coincide), so nothing to do.
    }
  }

  if (boost) {
    if (row_view != nullptr) {
      row_view->set_exec(saved_exec);
    } else {
      agg_view->set_exec(saved_exec);
    }
  }

  delta_log_.AdvanceTo(name, consumed_to);
  delta_log_.TruncateConsumed();
  stats.refresh_micros = MicrosSince(start);
  scheduler_.RecordRefresh(name, stats);
  if (admission_ != nullptr) {
    admission_->ObserveRefresh(stats.refresh_micros, obs::SteadyNowMicros());
  }
  refresh_span.AddArg("raw_entries", stats.raw_entries);
  refresh_span.AddArg("consolidated_rows", stats.consolidated_rows);
  refresh_span.AddArg("cancelled_rows", stats.cancelled_rows);
  refresh_span.AddArg("update_pairs", stats.update_pairs);
  refresh_span.AddArg("tables_touched", stats.tables_touched);
  refresh_span.AddArg("maintenance_micros",
                      static_cast<int64_t>(stats.maintenance_micros));
  return stats;
}

void Database::MaybeAutoRefresh(StatementResult* result) {
  if (in_transaction_ || !scheduler_.HasDeferredViews()) return;
  if (admission_ != nullptr) {
    if (refresher_.running()) {
      // The worker's DrainDueViews applies the admission plan; the
      // statement path only needs to wake it when something is due.
      if (!CollectDueViews().empty()) refresher_.Notify();
    } else {
      AdmitAndRefresh(result);
    }
    return;
  }
  for (const std::string& view : scheduler_.DeferredViews()) {
    if (scheduler_.policy(view) != deferred::RefreshPolicy::kThreshold) {
      continue;
    }
    const std::set<std::string>& tables = TablesOf(view);
    int64_t pending = delta_log_.PendingRows(view, tables);
    double staleness = delta_log_.OldestPendingMicros(view, tables);
    if (!scheduler_.Due(view, pending, staleness)) continue;
    if (refresher_.running()) {
      refresher_.Notify();
    } else {
      deferred::RefreshStats stats = RefreshLocked(view);
      if (result != nullptr) {
        result->maintenance_micros += stats.maintenance_micros;
        result->view_micros[view] += stats.maintenance_micros;
      }
    }
  }
}

void Database::DrainDueViews() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (in_transaction_) return;  // transactions drain at Begin and run eager
  if (admission_ != nullptr) {
    AdmitAndRefresh(nullptr);
    return;
  }
  for (const std::string& view : scheduler_.DeferredViews()) {
    if (scheduler_.policy(view) != deferred::RefreshPolicy::kThreshold) {
      continue;
    }
    const std::set<std::string>& tables = TablesOf(view);
    int64_t pending = delta_log_.PendingRows(view, tables);
    double staleness = delta_log_.OldestPendingMicros(view, tables);
    if (scheduler_.Due(view, pending, staleness)) RefreshLocked(view);
  }
}

std::vector<deferred::DueView> Database::CollectDueViews() const {
  std::vector<deferred::DueView> due;
  for (const std::string& view : scheduler_.DeferredViews()) {
    if (scheduler_.policy(view) != deferred::RefreshPolicy::kThreshold) {
      continue;
    }
    const std::set<std::string>& tables = TablesOf(view);
    int64_t pending = delta_log_.PendingRows(view, tables);
    double staleness = delta_log_.OldestPendingMicros(view, tables);
    if (!scheduler_.Due(view, pending, staleness)) continue;
    const deferred::ThresholdConfig& config = scheduler_.config(view);
    due.push_back({view, pending, staleness, config.max_staleness_micros,
                   config.staleness_ceiling_micros});
  }
  return due;
}

void Database::AdmitAndRefresh(StatementResult* result) {
  std::vector<deferred::DueView> due = CollectDueViews();
  // Plan even on an empty due set: the hot state tracks load between
  // trips, so the controller exits hot as soon as pressure fades rather
  // than on the next due view.
  deferred::AdmissionPlan plan =
      admission_->Plan(due, delta_log_.size(), obs::SteadyNowMicros());
  for (const std::string& view : plan.admitted) {
    deferred::RefreshStats stats = RefreshLocked(view);
    if (result != nullptr) {
      result->maintenance_micros += stats.maintenance_micros;
      result->view_micros[view] += stats.maintenance_micros;
    }
  }
}

void Database::SetAdmissionControl(const deferred::AdmissionConfig& config) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  admission_ = config.enabled
                   ? std::make_unique<deferred::AdmissionController>(config)
                   : nullptr;
}

Database::AdmissionStats Database::GetAdmissionStats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  AdmissionStats stats;
  if (admission_ == nullptr) return stats;
  stats.enabled = true;
  stats.hot = admission_->hot();
  stats.load_score =
      admission_->LoadScore(delta_log_.size(), obs::SteadyNowMicros());
  stats.deferred = admission_->deferred_total();
  stats.promoted = admission_->promoted_total();
  stats.hot_transitions = admission_->hot_transitions();
  return stats;
}

int64_t Database::AdmissionStalenessPercentile(const std::string& view,
                                               double p) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (admission_ == nullptr) return 0;
  return admission_->StalenessPercentile(view, p, obs::SteadyNowMicros());
}

void Database::ObserveStatementLatency(
    std::chrono::steady_clock::time_point start) {
  if (admission_ == nullptr) return;
  admission_->ObserveStatement(MicrosSince(start), obs::SteadyNowMicros());
}

void Database::StartBackgroundRefresh(std::chrono::milliseconds interval) {
  OJV_CHECK(!refresher_.running(), "background refresh already running");
  refresher_.Start(interval, [this] { DrainDueViews(); });
}

void Database::StopBackgroundRefresh() { refresher_.Stop(); }

// --- statements -----------------------------------------------------------

void Database::MaintainInsert(const std::string& table,
                              const std::vector<Row>& rows,
                              StatementResult* result) {
  auto start = std::chrono::steady_clock::now();
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnInsert(table, rows, CurrentPolicy());
    Accumulate(name, stats);
    result->view_micros[name] += stats.total_micros;
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnInsert(table, rows, CurrentPolicy());
    Accumulate(name, stats);
    result->view_micros[name] += stats.total_micros;
  }
  result->maintenance_micros += MicrosSince(start);
}

void Database::MaintainDelete(const std::string& table,
                              const std::vector<Row>& rows,
                              StatementResult* result) {
  auto start = std::chrono::steady_clock::now();
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnDelete(table, rows, CurrentPolicy());
    Accumulate(name, stats);
    result->view_micros[name] += stats.total_micros;
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnDelete(table, rows, CurrentPolicy());
    Accumulate(name, stats);
    result->view_micros[name] += stats.total_micros;
  }
  result->maintenance_micros += MicrosSince(start);
}

Database::StatementResult Database::Insert(const std::string& table,
                                           const std::vector<Row>& rows) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto stmt_start = std::chrono::steady_clock::now();
  obs::Span span(default_options_.trace, "db.insert", "db");
  span.AddArg("table", table);
  span.AddArg("rows_in", static_cast<int64_t>(rows.size()));
  StatementResult result;
  if (!catalog_.HasTable(table)) {
    result.error = "unknown table " + table;
    return result;
  }
  Table* base = catalog_.GetTable(table);
  std::vector<Row> accepted;
  accepted.reserve(rows.size());
  for (const Row& row : rows) {
    if (static_cast<int>(row.size()) != base->schema().num_columns() ||
        (!in_transaction_ && !RowSatisfiesForeignKeys(table, row)) ||
        !base->Insert(row)) {
      ++result.rows_rejected;
      continue;
    }
    accepted.push_back(row);
  }
  result.rows_affected = static_cast<int64_t>(accepted.size());
  if (!accepted.empty()) {
    MaintainInsert(table, accepted, &result);
    StageDeferred(table, deferred::DeltaOp::kInsert, accepted,
                  /*update_pair=*/false);
    if (in_transaction_) {
      undo_log_.push_back(
          {UndoEntry::Kind::kDeleteInserted, table, accepted, {}});
    }
  }
  MaybeAutoRefresh(&result);
  ObserveStatementLatency(stmt_start);
  span.AddArg("rows_affected", result.rows_affected);
  span.AddArg("rows_rejected", result.rows_rejected);
  return result;
}

Database::StatementResult Database::Delete(const std::string& table,
                                           const std::vector<Row>& keys) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto stmt_start = std::chrono::steady_clock::now();
  obs::Span span(default_options_.trace, "db.delete", "db");
  span.AddArg("table", table);
  span.AddArg("rows_in", static_cast<int64_t>(keys.size()));
  StatementResult result = DeleteLocked(table, keys);
  if (result.ok()) MaybeAutoRefresh(&result);
  ObserveStatementLatency(stmt_start);
  span.AddArg("rows_affected", result.rows_affected);
  span.AddArg("rows_rejected", result.rows_rejected);
  return result;
}

Database::StatementResult Database::DeleteLocked(const std::string& table,
                                                 const std::vector<Row>& keys) {
  StatementResult result;
  if (!catalog_.HasTable(table)) {
    result.error = "unknown table " + table;
    return result;
  }
  // Referential integrity first: blocking children reject the whole
  // statement; cascading children are deleted (and their views
  // maintained) before the parents. Inside a transaction the checks are
  // deferred to Commit and cascades are suppressed (SQL defers the
  // constraint action too).
  std::vector<std::pair<const ForeignKey*, std::vector<Row>>> referencing;
  if (!in_transaction_) referencing = ReferencingRows(table, keys);
  for (const auto& [fk, child_rows] : referencing) {
    if (!fk->cascading_delete) {
      result.error = "delete from " + table + " violates FK from " +
                     fk->child_table;
      return result;
    }
  }
  for (const auto& [fk, child_rows] : referencing) {
    Table* child = catalog_.GetTable(fk->child_table);
    std::vector<Row> child_keys;
    child_keys.reserve(child_rows.size());
    for (const Row& row : child_rows) {
      Row key;
      for (int p : child->key_positions()) {
        key.push_back(row[static_cast<size_t>(p)]);
      }
      child_keys.push_back(std::move(key));
    }
    // Recursive delete handles chains of cascading constraints.
    StatementResult cascaded = DeleteLocked(fk->child_table, child_keys);
    if (!cascaded.ok()) {
      result.error = cascaded.error;
      return result;
    }
    result.rows_affected += cascaded.rows_affected;
    result.maintenance_micros += cascaded.maintenance_micros;
    for (const auto& [view, micros] : cascaded.view_micros) {
      result.view_micros[view] += micros;
    }
  }

  Table* base = catalog_.GetTable(table);
  std::vector<Row> deleted = ApplyBaseDelete(base, keys);
  result.rows_rejected +=
      static_cast<int64_t>(keys.size() - deleted.size());
  result.rows_affected += static_cast<int64_t>(deleted.size());
  if (!deleted.empty()) {
    MaintainDelete(table, deleted, &result);
    StageDeferred(table, deferred::DeltaOp::kDelete, deleted,
                  /*update_pair=*/false);
    if (in_transaction_) {
      undo_log_.push_back(
          {UndoEntry::Kind::kReinsertDeleted, table, deleted, {}});
    }
  }
  return result;
}

Database::StatementResult Database::Update(const std::string& table,
                                           const std::vector<Row>& keys,
                                           const std::vector<Row>& new_rows) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto stmt_start = std::chrono::steady_clock::now();
  obs::Span span(default_options_.trace, "db.update", "db");
  span.AddArg("table", table);
  span.AddArg("rows_in", static_cast<int64_t>(keys.size()));
  StatementResult result;
  if (!catalog_.HasTable(table)) {
    result.error = "unknown table " + table;
    return result;
  }
  if (keys.size() != new_rows.size()) {
    result.error = "update arity mismatch";
    return result;
  }
  Table* base = catalog_.GetTable(table);
  // Keys must be unchanged (key updates would interact with FKs; model
  // them as explicit delete+insert statements instead).
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t k = 0; k < base->key_positions().size(); ++k) {
      const Value& new_key =
          new_rows[i][static_cast<size_t>(base->key_positions()[k])];
      if (new_key != keys[i][k]) {
        result.error = "update may not change key columns";
        return result;
      }
    }
    if (!in_transaction_ && !RowSatisfiesForeignKeys(table, new_rows[i])) {
      result.error = "updated row violates a foreign key";
      return result;
    }
  }

  std::vector<Row> old_rows;
  std::vector<Row> applied_new;
  for (size_t i = 0; i < keys.size(); ++i) {
    Row old_row;
    if (!base->DeleteByKey(keys[i], &old_row)) {
      ++result.rows_rejected;
      continue;
    }
    OJV_CHECK(base->Insert(new_rows[i]), "reinsert under same key");
    old_rows.push_back(std::move(old_row));
    applied_new.push_back(new_rows[i]);
  }
  result.rows_affected = static_cast<int64_t>(applied_new.size());
  if (applied_new.empty()) return result;

  auto start = std::chrono::steady_clock::now();
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnUpdate(table, old_rows, applied_new);
    Accumulate(name, stats);
    result.view_micros[name] += stats.total_micros;
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnUpdate(table, old_rows, applied_new);
    Accumulate(name, stats);
    result.view_micros[name] += stats.total_micros;
  }
  result.maintenance_micros += MicrosSince(start);
  // Stage both halves flagged as an update pair: wherever the refresh
  // boundary falls, their replay must stay on constraint-free plans
  // (§6 caveat 1).
  StageDeferred(table, deferred::DeltaOp::kDelete, old_rows,
                /*update_pair=*/true);
  StageDeferred(table, deferred::DeltaOp::kInsert, applied_new,
                /*update_pair=*/true);
  if (in_transaction_) {
    undo_log_.push_back(
        {UndoEntry::Kind::kReverseUpdate, table, applied_new, old_rows});
  }
  MaybeAutoRefresh(&result);
  ObserveStatementLatency(stmt_start);
  span.AddArg("rows_affected", result.rows_affected);
  span.AddArg("rows_rejected", result.rows_rejected);
  return result;
}

bool Database::BeginTransaction() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (in_transaction_) return false;
  // Deferred views catch up first: statements inside the transaction are
  // maintained eagerly (on constraint-free plans), and rollback's
  // inverse statements assume the views reflect all prior statements.
  for (const std::string& view : scheduler_.DeferredViews()) {
    RefreshLocked(view);
  }
  in_transaction_ = true;
  undo_log_.clear();
  return true;
}

Database::StatementResult Database::Commit() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  StatementResult result;
  if (!in_transaction_) {
    result.error = "no open transaction";
    return result;
  }
  std::string violation;
  if (!catalog_.CheckForeignKeys(&violation)) {
    Rollback();
    result.error = "commit aborted: " + violation;
    return result;
  }
  in_transaction_ = false;
  undo_log_.clear();
  return result;
}

void Database::Rollback() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  OJV_CHECK(in_transaction_, "no open transaction");
  // Replay inverses newest-first; maintenance stays constraint-free
  // (in_transaction_ remains set until we are done).
  StatementResult scratch;
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    Table* base = catalog_.GetTable(it->table);
    switch (it->kind) {
      case UndoEntry::Kind::kDeleteInserted: {
        std::vector<Row> keys;
        for (const Row& row : it->rows) {
          Row key;
          for (int p : base->key_positions()) {
            key.push_back(row[static_cast<size_t>(p)]);
          }
          keys.push_back(std::move(key));
        }
        std::vector<Row> deleted = ApplyBaseDelete(base, keys);
        OJV_CHECK(deleted.size() == keys.size(), "rollback delete mismatch");
        MaintainDelete(it->table, deleted, &scratch);
        break;
      }
      case UndoEntry::Kind::kReinsertDeleted: {
        std::vector<Row> inserted = ApplyBaseInsert(base, it->rows);
        OJV_CHECK(inserted.size() == it->rows.size(),
                  "rollback insert mismatch");
        MaintainInsert(it->table, inserted, &scratch);
        break;
      }
      case UndoEntry::Kind::kReverseUpdate: {
        std::vector<Row> keys;
        for (const Row& row : it->rows) {
          Row key;
          for (int p : base->key_positions()) {
            key.push_back(row[static_cast<size_t>(p)]);
          }
          keys.push_back(std::move(key));
        }
        std::vector<Row> current;
        ApplyBaseUpdate(base, keys, it->old_rows, &current);
        for (auto& [name, view] : views_) {
          if (view->view_def().tables().count(it->table) > 0) {
            view->OnUpdate(it->table, current, it->old_rows);
          }
        }
        for (auto& [name, view] : agg_views_) {
          if (view->base_view().tables().count(it->table) > 0) {
            view->OnUpdate(it->table, current, it->old_rows);
          }
        }
        break;
      }
    }
  }
  undo_log_.clear();
  in_transaction_ = false;
}

}  // namespace ojv
