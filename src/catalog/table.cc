#include "catalog/table.h"

#include "common/check.h"

namespace ojv {

Table::Table(std::string name, Schema schema,
             std::vector<std::string> key_columns)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      key_columns_(std::move(key_columns)) {
  OJV_CHECK(!key_columns_.empty(), "table requires a unique key");
  for (const std::string& kc : key_columns_) {
    int pos = schema_.IndexOf(kc);
    OJV_CHECK(!schema_.column(pos).nullable, "key column must be NOT NULL");
    key_positions_.push_back(pos);
  }
}

size_t Table::HashKeyOf(const Row& row) const {
  return HashRowAt(row, key_positions_);
}

size_t Table::HashKeyValues(const Row& key) const {
  size_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool Table::KeyEquals(size_t slot, const Row& key) const {
  const Row& row = slots_[slot];
  for (size_t i = 0; i < key_positions_.size(); ++i) {
    if (row[static_cast<size_t>(key_positions_[i])] != key[i]) return false;
  }
  return true;
}

bool Table::Insert(Row row) {
  OJV_CHECK(static_cast<int>(row.size()) == schema_.num_columns(),
            "row arity mismatch");
  for (int i = 0; i < schema_.num_columns(); ++i) {
    OJV_CHECK(schema_.column(i).nullable || !row[static_cast<size_t>(i)].is_null(),
              "NULL in non-nullable column");
  }
  size_t h = HashKeyOf(row);
  auto range = key_index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    Row key;
    for (int p : key_positions_) key.push_back(row[static_cast<size_t>(p)]);
    if (KeyEquals(it->second, key)) return false;
  }
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(row);
    live_[slot] = 1;
  } else {
    slot = slots_.size();
    slots_.push_back(std::move(row));
    live_.push_back(1);
  }
  key_index_.emplace(h, slot);
  ++live_count_;
  ++version_;
  return true;
}

bool Table::DeleteByKey(const Row& key, Row* deleted) {
  OJV_CHECK(key.size() == key_positions_.size(), "key arity mismatch");
  size_t h = HashKeyValues(key);
  auto range = key_index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    if (live_[it->second] && KeyEquals(it->second, key)) {
      if (deleted != nullptr) *deleted = slots_[it->second];
      live_[it->second] = 0;
      free_slots_.push_back(it->second);
      slots_[it->second].clear();
      key_index_.erase(it);
      --live_count_;
      ++version_;
      return true;
    }
  }
  return false;
}

const Row* Table::FindByKey(const Row& key) const {
  OJV_CHECK(key.size() == key_positions_.size(), "key arity mismatch");
  size_t h = HashKeyValues(key);
  auto range = key_index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    if (live_[it->second] && KeyEquals(it->second, key)) {
      return &slots_[it->second];
    }
  }
  return nullptr;
}

std::vector<Row> Table::Snapshot() const {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(live_count_));
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (live_[i]) out.push_back(slots_[i]);
  }
  return out;
}

}  // namespace ojv
