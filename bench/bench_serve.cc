// Serving under maintenance: read latency of the ViewSnapshot path while
// a refresh storm rewrites V3 behind it (DESIGN.md §17).
//
// Each batch size runs the same mixed workload twice. The writer stages
// single-row lineitem inserts against a kThreshold V3 with a tiny trip
// threshold and a 1ms background worker, so consolidated replays fire
// continuously, with the admission controller watching the load. The
// difference is the reader thread running alongside:
//
//   snapshot  AcquireSnapshot (kSnapshot): pin the last published
//             generation, never touch the maintenance mutex except for
//             the opportunistic try_lock catch-up. This is the gated
//             column — its p99 is what the generation design buys, and a
//             read path that starts blocking on maintenance again shows
//             up here as a ~10ms p99 jump.
//   fresh     ReadView (kFresh): block, drain the backlog, publish,
//             observe the latency into the admission read signal. The
//             contrast column — read-your-writes pays the refresh it
//             forces, so its p99 tracks refresh cost, not snapshot cost.
//
// Rows are keyed (workload, batch_rows); only the snapshot rows carry
// ours_ms, so tools/bench_gate gates the snapshot path and skips the
// fresh contrast rows.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ivm/database.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

double Percentile(std::vector<double> sorted_or_not, double p) {
  if (sorted_or_not.empty()) return 0.0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  const size_t n = sorted_or_not.size();
  size_t index = static_cast<size_t>(p / 100.0 * static_cast<double>(n));
  if (index >= n) index = n - 1;
  return sorted_or_not[index];
}

std::vector<Row> LineitemKeys(const std::vector<Row>& rows) {
  std::vector<Row> keys;
  keys.reserve(rows.size());
  for (const Row& row : rows) {
    keys.push_back(Row{row[0], row[3]});  // (l_orderkey, l_linenumber)
  }
  return keys;
}

struct ReadStats {
  std::vector<double> latencies_ms;
  int64_t reads = 0;
  int64_t generations = 0;  // distinct generation numbers observed
};

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f, V3 under kThreshold + admission + 1ms worker\n",
              options.scale_factor);

  tpch::DbgenOptions gen_options;
  gen_options.scale_factor = options.scale_factor;
  gen_options.seed = options.seed;
  tpch::Dbgen dbgen(gen_options);

  Database db;
  tpch::CreateSchema(db.catalog());
  dbgen.Populate(db.catalog());
  db.CreateMaterializedView(tpch::MakeV3(*db.catalog()));

  deferred::ThresholdConfig threshold;
  threshold.max_pending_rows = 8;  // trip every few statements: a storm
  db.SetRefreshPolicy("v3", deferred::RefreshPolicy::kThreshold, threshold);
  deferred::AdmissionConfig admission;
  admission.enabled = true;  // storm + blocking reads feed the load score
  db.SetAdmissionControl(admission);
  db.StartBackgroundRefresh(std::chrono::milliseconds(1));

  tpch::RefreshStream stream(db.catalog(), &dbgen, options.seed);

  // Publish the populated baseline before any reader starts.
  db.ReadView("v3");

  // One storm pass: the writer stages `rows` one statement at a time
  // while a reader thread runs `read` in a loop; returns what the reader
  // measured.
  auto storm = [&](const std::vector<Row>& rows,
                   const std::function<ViewSnapshot()>& read) {
    ReadStats stats;
    stats.latencies_ms.reserve(1 << 16);
    std::atomic<bool> done{false};
    std::thread reader([&] {
      uint64_t last_generation = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto start = std::chrono::steady_clock::now();
        ViewSnapshot snap = read();
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        if (!snap.valid()) continue;
        stats.latencies_ms.push_back(ms);
        ++stats.reads;
        if (snap.generation() != last_generation) {
          ++stats.generations;
          last_generation = snap.generation();
        }
      }
    });
    // Pace the writer at every trip's worth of statements: on a
    // single-core host an unpaced writer loop holds the maintenance
    // mutex continuously, starving both the background worker (no
    // refresh would overlap the readers) and the fresh-read contrast.
    int64_t staged = 0;
    for (const Row& row : rows) {
      db.Insert("lineitem", {row});
      if (++staged % 16 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    done.store(true, std::memory_order_release);
    reader.join();
    return stats;
  };

  JsonReport report("serve", options);
  PrintHeader(
      "V3 serving under a refresh storm: snapshot reads vs fresh reads",
      {"Rows", "Mode", "Reads", "Gens", "p50", "p99", "Refreshes"});
  for (int64_t batch : options.batches) {
    std::vector<Row> rows = stream.NewLineitems(batch);
    const int64_t refreshes_before = db.RefreshState("v3").refreshes;
    ReadStats snapshot_stats = storm(
        rows, [&] { return db.AcquireSnapshot("v3"); });
    const int64_t snapshot_refreshes =
        db.RefreshState("v3").refreshes - refreshes_before;
    const double snap_p50 = Percentile(snapshot_stats.latencies_ms, 50);
    const double snap_p99 = Percentile(snapshot_stats.latencies_ms, 99);
    PrintRow({FormatCount(batch), "snapshot",
              FormatCount(snapshot_stats.reads),
              FormatCount(snapshot_stats.generations), FormatMs(snap_p50),
              FormatMs(snap_p99), FormatCount(snapshot_refreshes)});

    // Reset the base table (and drain) before the fresh-read pass so
    // both passes storm over the same data.
    db.Delete("lineitem", LineitemKeys(rows));
    db.Refresh("v3");

    rows = stream.NewLineitems(batch);
    const int64_t fresh_before = db.RefreshState("v3").refreshes;
    ReadStats fresh_stats = storm(
        rows, [&] { return db.ReadView("v3"); });
    const int64_t fresh_refreshes =
        db.RefreshState("v3").refreshes - fresh_before;
    const double fresh_p50 = Percentile(fresh_stats.latencies_ms, 50);
    const double fresh_p99 = Percentile(fresh_stats.latencies_ms, 99);
    PrintRow({FormatCount(batch), "fresh", FormatCount(fresh_stats.reads),
              FormatCount(fresh_stats.generations), FormatMs(fresh_p50),
              FormatMs(fresh_p99), FormatCount(fresh_refreshes)});

    report.BeginRow();
    report.Str("workload", "snapshot");
    report.Count("batch_rows", batch);
    report.Count("reads", snapshot_stats.reads);
    report.Count("generations", snapshot_stats.generations);
    report.Count("refreshes", snapshot_refreshes);
    report.Num("p50_ms", snap_p50);
    report.Num("ours_ms", snap_p99);  // the gated column: snapshot p99

    report.BeginRow();
    report.Str("workload", "fresh");
    report.Count("batch_rows", batch);
    report.Count("reads", fresh_stats.reads);
    report.Count("generations", fresh_stats.generations);
    report.Count("refreshes", fresh_refreshes);
    report.Num("p50_ms", fresh_p50);
    report.Num("p99_ms", fresh_p99);  // contrast only: not gated

    db.Delete("lineitem", LineitemKeys(rows));
    db.Refresh("v3");
  }
  db.StopBackgroundRefresh();

  Database::AdmissionStats adm = db.GetAdmissionStats();
  std::printf("\nadmission: load=%.2f, %lld deferred, %lld promoted, "
              "%lld hot transitions\n",
              adm.load_score, static_cast<long long>(adm.deferred),
              static_cast<long long>(adm.promoted),
              static_cast<long long>(adm.hot_transitions));
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
