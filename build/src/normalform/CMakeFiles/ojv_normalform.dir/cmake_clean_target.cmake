file(REMOVE_RECURSE
  "libojv_normalform.a"
)
