file(REMOVE_RECURSE
  "CMakeFiles/ojv_ivm.dir/aggregate_view.cc.o"
  "CMakeFiles/ojv_ivm.dir/aggregate_view.cc.o.d"
  "CMakeFiles/ojv_ivm.dir/database.cc.o"
  "CMakeFiles/ojv_ivm.dir/database.cc.o.d"
  "CMakeFiles/ojv_ivm.dir/explain.cc.o"
  "CMakeFiles/ojv_ivm.dir/explain.cc.o.d"
  "CMakeFiles/ojv_ivm.dir/left_deep.cc.o"
  "CMakeFiles/ojv_ivm.dir/left_deep.cc.o.d"
  "CMakeFiles/ojv_ivm.dir/maintainer.cc.o"
  "CMakeFiles/ojv_ivm.dir/maintainer.cc.o.d"
  "CMakeFiles/ojv_ivm.dir/materialized_view.cc.o"
  "CMakeFiles/ojv_ivm.dir/materialized_view.cc.o.d"
  "CMakeFiles/ojv_ivm.dir/primary_delta.cc.o"
  "CMakeFiles/ojv_ivm.dir/primary_delta.cc.o.d"
  "CMakeFiles/ojv_ivm.dir/secondary_delta.cc.o"
  "CMakeFiles/ojv_ivm.dir/secondary_delta.cc.o.d"
  "CMakeFiles/ojv_ivm.dir/simplify_tree.cc.o"
  "CMakeFiles/ojv_ivm.dir/simplify_tree.cc.o.d"
  "CMakeFiles/ojv_ivm.dir/view_def.cc.o"
  "CMakeFiles/ojv_ivm.dir/view_def.cc.o.d"
  "libojv_ivm.a"
  "libojv_ivm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_ivm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
