#ifndef OJV_OPT_CARDINALITY_H_
#define OJV_OPT_CARDINALITY_H_

#include <string>
#include <unordered_map>

#include "algebra/rel_expr.h"
#include "opt/stats.h"

namespace ojv {
namespace opt {

/// Heavy-partition exclusion for skew-adaptive planning (DESIGN.md §16):
/// when estimating the light batch of a delta, the promoted heavy keys'
/// row mass (`rows`) and key count (`keys`) are carved out of the
/// counterpart table — light rows never join the heavy partition, so its
/// mass must not inflate their fanout.
struct PartitionExclusion {
  double rows = 0;
  double keys = 0;
};

/// Textbook cardinality estimation over the delta algebra, driven by the
/// statistics catalog.
///
/// Formulas (System R lineage):
///   scan(T)                 |T| from stats
///   delta scan(T)           |Δ| supplied by the caller (known exactly at
///                           statement time)
///   σ_p(e)                  |e| * sel(p); eq-to-literal 1/ndv, range by
///                           min/max interpolation, default 1/3 per
///                           conjunct
///   e1 ⋈_p e2 (inner)       |e1|*|e2| / max(ndv_l, ndv_r) per equality
///                           conjunct (containment-of-values)
///   e1 ⟕_p e2               max(inner estimate, |e1|) — every left row
///                           survives
///   λ, δ, ↓, π              pass-through (λ never changes counts; δ/↓
///                           only shrink, pessimistic is fine for
///                           ordering)
///
/// Per-table delta cardinalities and externally observed per-join fanout
/// overrides (the feedback EMA) can be injected before estimation.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(StatsCatalog* stats) : stats_(stats) {}

  /// Exact cardinality of the pending delta of `table` (rows of the
  /// statement being maintained).
  void SetDeltaRows(const std::string& table, double rows);

  /// Feedback override: observed output-rows-per-left-row fanout for the
  /// join step whose right side is `right_table`. When present it
  /// replaces the ndv-based fanout for that step.
  void SetFanoutOverride(const std::string& right_table, double fanout);

  /// Excludes the heavy partition of `table` from its row count and ndv
  /// for the rest of this estimation (light-batch planning).
  void SetPartitionExclusion(const std::string& table, PartitionExclusion ex);

  /// Estimated output cardinality of `expr`. Never negative; unknown
  /// tables estimate as 1000 rows (arbitrary but stable).
  double Estimate(const RelExprPtr& expr);

  /// Estimated selectivity in [0,1] of `pred` against the set of tables
  /// below it. Null `pred` is TRUE (1.0).
  double Selectivity(const ScalarExprPtr& pred);

  /// Estimated fanout of joining `left_card` rows (the current prefix)
  /// against `right` with `pred`: output rows per prefix row, before the
  /// outer-join floor. Exposed for the planner's greedy step.
  double JoinFanout(const RelExprPtr& right, const ScalarExprPtr& pred,
                    const std::string& right_table);

  StatsCatalog* stats() { return stats_; }

  static constexpr double kUnknownTableRows = 1000.0;
  static constexpr double kDefaultSelectivity = 1.0 / 3.0;

 private:
  double TableRows(const std::string& table) const;
  /// Distinct estimate for `table.column` clamped to live row count;
  /// falls back to sqrt(rows).
  double Ndv(const ColumnRef& ref) const;
  double ConjunctSelectivity(const ScalarExprPtr& conjunct);

  StatsCatalog* stats_;
  std::unordered_map<std::string, double> delta_rows_;
  std::unordered_map<std::string, double> fanout_overrides_;
  std::unordered_map<std::string, PartitionExclusion> exclusions_;
};

}  // namespace opt
}  // namespace ojv

#endif  // OJV_OPT_CARDINALITY_H_
