# Empty compiler generated dependencies file for ojv_cli.
# This may be replaced when dependencies are built.
