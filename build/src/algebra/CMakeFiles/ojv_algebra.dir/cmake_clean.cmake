file(REMOVE_RECURSE
  "CMakeFiles/ojv_algebra.dir/rel_expr.cc.o"
  "CMakeFiles/ojv_algebra.dir/rel_expr.cc.o.d"
  "CMakeFiles/ojv_algebra.dir/scalar_expr.cc.o"
  "CMakeFiles/ojv_algebra.dir/scalar_expr.cc.o.d"
  "libojv_algebra.a"
  "libojv_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
