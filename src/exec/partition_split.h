#ifndef OJV_EXEC_PARTITION_SPLIT_H_
#define OJV_EXEC_PARTITION_SPLIT_H_

#include <functional>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"

namespace ojv {

/// Partition-split operator for skew-adaptive maintenance (DESIGN.md
/// §16): routes each delta row into the light or heavy partition by
/// probing a classifier on the row's join-key columns. A row is heavy
/// when ANY probed column classifies heavy — partitions must be closed
/// under view-level key interaction (orphan fixup and duplicate-key
/// application both match on join-key equality), so a row touching one
/// hot join key is diverted whole.
///
/// The probe receives the column ordinal and the value at it; NULLs are
/// never probed (a NULL join key matches nothing, hence fans out to
/// nothing).
using HeavyProbe = std::function<bool(int column_pos, const Value& value)>;

struct SplitResult {
  std::vector<Row> light;
  std::vector<Row> heavy;
};

SplitResult SplitByHeavyKeys(const std::vector<Row>& rows,
                             const std::vector<int>& probe_positions,
                             const HeavyProbe& probe);

/// Pair-aligned variant for UPDATE streams (delete+insert of one key):
/// pair i is heavy when either half classifies heavy — the halves share
/// a primary key, so they must land in the same partition or the eager
/// half would touch view rows the lazy half still owes.
struct SplitPairResult {
  std::vector<Row> light_old;
  std::vector<Row> light_new;
  std::vector<Row> heavy_old;
  std::vector<Row> heavy_new;
};

SplitPairResult SplitPairsByHeavyKeys(const std::vector<Row>& old_rows,
                                      const std::vector<Row>& new_rows,
                                      const std::vector<int>& probe_positions,
                                      const HeavyProbe& probe);

}  // namespace ojv

#endif  // OJV_EXEC_PARTITION_SPLIT_H_
