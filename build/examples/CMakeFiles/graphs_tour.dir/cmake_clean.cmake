file(REMOVE_RECURSE
  "CMakeFiles/graphs_tour.dir/graphs_tour.cpp.o"
  "CMakeFiles/graphs_tour.dir/graphs_tour.cpp.o.d"
  "graphs_tour"
  "graphs_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphs_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
