# Empty compiler generated dependencies file for ojv_normalform.
# This may be replaced when dependencies are built.
