#include "normalform/term.h"

#include <algorithm>

#include "common/check.h"

namespace ojv {

std::string Term::Label() const {
  std::string out = "{";
  bool first = true;
  for (const std::string& t : source) {
    if (!first) out += ",";
    out += t;
    first = false;
  }
  return out + "}";
}

bool Term::IsStrictSubsetOf(const Term& other) const {
  if (source.size() >= other.source.size()) return false;
  return std::includes(other.source.begin(), other.source.end(),
                       source.begin(), source.end());
}

RelExprPtr Term::ToRelExpr() const {
  return ToRelExprOrdered(std::vector<std::string>(source.begin(), source.end()));
}

RelExprPtr Term::ToRelExprOrdered(const std::vector<std::string>& order) const {
  OJV_CHECK(!source.empty(), "term without source tables");
  OJV_CHECK(order.size() == source.size() &&
                std::set<std::string>(order.begin(), order.end()) == source,
            "join order must be a permutation of the term's source");
  // Place each conjunct at the first join where all its tables are bound;
  // single-table conjuncts become selections on the scan.
  std::vector<bool> used(predicates.size(), false);
  std::set<std::string> bound;
  RelExprPtr expr;

  auto conjuncts_bound_by = [&](const std::string& new_table) {
    std::vector<ScalarExprPtr> out;
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (used[i]) continue;
      std::set<std::string> refs = predicates[i]->ReferencedTables();
      bool ok = true;
      for (const std::string& t : refs) {
        if (t != new_table && bound.count(t) == 0) {
          ok = false;
          break;
        }
      }
      if (ok) {
        out.push_back(predicates[i]);
        used[i] = true;
      }
    }
    return out;
  };

  for (const std::string& table : order) {
    RelExprPtr scan = RelExpr::Scan(table);
    if (expr == nullptr) {
      std::vector<ScalarExprPtr> preds = conjuncts_bound_by(table);
      bound.insert(table);
      expr = preds.empty() ? scan : RelExpr::Select(scan, MakeConjunction(preds));
    } else {
      std::vector<ScalarExprPtr> preds = conjuncts_bound_by(table);
      bound.insert(table);
      ScalarExprPtr join_pred = preds.empty()
                                    ? ScalarExpr::Literal(Value::Int64(1))
                                    : MakeConjunction(preds);
      expr = RelExpr::Join(JoinKind::kInner, expr, scan, join_pred);
    }
  }
  for (size_t i = 0; i < predicates.size(); ++i) {
    OJV_CHECK(used[i], "term predicate references tables outside its source");
  }
  return expr;
}

RelExprPtr NormalFormRelExpr(const std::vector<Term>& terms) {
  OJV_CHECK(!terms.empty(), "empty normal form");
  RelExprPtr expr = terms[0].ToRelExpr();
  for (size_t i = 1; i < terms.size(); ++i) {
    expr = RelExpr::MinUnion(expr, terms[i].ToRelExpr());
  }
  return expr;
}

}  // namespace ojv
