// Plan cache: key construction, feedback state preserved across Put,
// and the maintainer-level cache/replan/invalidate lifecycle.

#include "opt/plan_cache.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "ivm/maintainer.h"
#include "ivm/view_def.h"

namespace ojv {
namespace opt {
namespace {

TEST(PlanCacheTest, KeySeparatesTableOpAndPolicy) {
  EXPECT_EQ(PlanCache::Key("T", true, false), "T|ins|main");
  EXPECT_EQ(PlanCache::Key("T", false, false), "T|del|main");
  EXPECT_EQ(PlanCache::Key("T", true, true), "T|ins|cf");
  EXPECT_NE(PlanCache::Key("T", true, false), PlanCache::Key("U", true, false));
}

TEST(PlanCacheTest, PutPreservesFeedbackState) {
  PlanCache cache;
  PlannedDelta plan;
  plan.order = "A,B";
  PlanCacheEntry* entry = cache.Put("k", std::move(plan), 100);
  entry->fanout_ema["A"] = 3.5;
  entry->hits = 7;
  entry->replans = 2;
  entry->dirty = true;

  PlannedDelta replanned;
  replanned.order = "B,A";
  PlanCacheEntry* again = cache.Put("k", std::move(replanned), 800);
  EXPECT_EQ(again, entry);
  EXPECT_EQ(again->plan.order, "B,A");
  EXPECT_DOUBLE_EQ(again->fanout_ema.at("A"), 3.5);  // EMA survives
  EXPECT_EQ(again->hits, 7);
  EXPECT_EQ(again->replans, 2);
  EXPECT_FALSE(again->dirty);  // a fresh plan starts clean
  EXPECT_DOUBLE_EQ(again->planned_delta_rows, 800.0);
  EXPECT_EQ(cache.size(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Find("k"), nullptr);
}

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

class MaintainerPlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.CreateTable(
        "D",
        Schema({ColumnDef{"d_id", ValueType::kInt64, false},
                ColumnDef{"d_b", ValueType::kInt64, true}}),
        {"d_id"});
    catalog_.CreateTable(
        "B",
        Schema({ColumnDef{"b_id", ValueType::kInt64, false},
                ColumnDef{"b_v", ValueType::kInt64, true}}),
        {"b_id"});
    Table* d = catalog_.GetTable("D");
    for (int64_t i = 0; i < 200; ++i) {
      d->Insert(Row{Value::Int64(i), Value::Int64(i % 50)});
    }
    Table* b = catalog_.GetTable("B");
    for (int64_t i = 0; i < 50; ++i) {
      b->Insert(Row{Value::Int64(i), Value::Int64(i)});
    }
    view_ = std::make_unique<ViewDef>(
        "v",
        RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("D"),
                      RelExpr::Scan("B"), Eq("D", "d_b", "B", "b_id")),
        std::vector<ColumnRef>{
            {"D", "d_id"}, {"D", "d_b"}, {"B", "b_id"}, {"B", "b_v"}},
        catalog_);
  }

  std::vector<Row> Fresh(int64_t n) {
    std::vector<Row> rows;
    for (int64_t i = 0; i < n; ++i) {
      rows.push_back(Row{Value::Int64(next_key_++), Value::Int64(i % 50)});
    }
    return rows;
  }

  Catalog catalog_;
  std::unique_ptr<ViewDef> view_;
  int64_t next_key_ = 10000;
};

TEST_F(MaintainerPlanCacheTest, CachesPlanAndCountsHits) {
  ViewMaintainer maintainer(&catalog_, *view_, MaintenanceOptions());
  maintainer.InitializeView();
  Table* d = catalog_.GetTable("D");

  maintainer.OnInsert("D", ApplyBaseInsert(d, Fresh(8)));
  const PlanCacheEntry* entry =
      maintainer.plan_entry("D", true, PlanPolicy::kDefault);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->source, "planned");
  EXPECT_EQ(entry->hits, 0);

  maintainer.OnInsert("D", ApplyBaseInsert(d, Fresh(8)));
  entry = maintainer.plan_entry("D", true, PlanPolicy::kDefault);
  EXPECT_EQ(entry->source, "cache");
  EXPECT_EQ(entry->hits, 1);

  // Deletes get their own cache slot.
  EXPECT_EQ(maintainer.plan_entry("D", false, PlanPolicy::kDefault), nullptr);
}

TEST_F(MaintainerPlanCacheTest, ReplansWhenDeltaSizeShifts) {
  ViewMaintainer maintainer(&catalog_, *view_, MaintenanceOptions());
  maintainer.InitializeView();
  Table* d = catalog_.GetTable("D");

  maintainer.OnInsert("D", ApplyBaseInsert(d, Fresh(4)));
  // 4 -> 512 rows is a 7-doubling shift, past replan_delta_log2 = 3.
  maintainer.OnInsert("D", ApplyBaseInsert(d, Fresh(512)));
  const PlanCacheEntry* entry =
      maintainer.plan_entry("D", true, PlanPolicy::kDefault);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->source, "replan");
  EXPECT_EQ(entry->replans, 1);
  EXPECT_DOUBLE_EQ(entry->planned_delta_rows, 512.0);
}

TEST_F(MaintainerPlanCacheTest, InvalidatePlansDropsCacheAndStats) {
  ViewMaintainer maintainer(&catalog_, *view_, MaintenanceOptions());
  maintainer.InitializeView();
  Table* d = catalog_.GetTable("D");

  maintainer.OnInsert("D", ApplyBaseInsert(d, Fresh(8)));
  ASSERT_NE(maintainer.plan_entry("D", true, PlanPolicy::kDefault), nullptr);
  ASSERT_NE(maintainer.stats_catalog(), nullptr);
  int64_t rebuilds_before = maintainer.stats_catalog()->rebuild_count();

  maintainer.InvalidatePlans();
  EXPECT_EQ(maintainer.plan_entry("D", true, PlanPolicy::kDefault), nullptr);
  EXPECT_EQ(maintainer.plan_cache().size(), 0u);
  EXPECT_FALSE(maintainer.stats_catalog()->IsFresh("D"));

  // The next operation re-plans from rebuilt statistics.
  maintainer.OnInsert("D", ApplyBaseInsert(d, Fresh(8)));
  const PlanCacheEntry* entry =
      maintainer.plan_entry("D", true, PlanPolicy::kDefault);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->source, "planned");
  EXPECT_GT(maintainer.stats_catalog()->rebuild_count(), rebuilds_before);
}

TEST_F(MaintainerPlanCacheTest, UpdatePolicyUsesConstraintFreeSlot) {
  ViewMaintainer maintainer(&catalog_, *view_, MaintenanceOptions());
  maintainer.InitializeView();
  Table* d = catalog_.GetTable("D");

  std::vector<Row> keys = {Row{Value::Int64(0)}};
  std::vector<Row> new_rows = {Row{Value::Int64(0), Value::Int64(7)}};
  std::vector<Row> old_rows;
  ApplyBaseUpdate(d, keys, new_rows, &old_rows);
  maintainer.OnUpdate("D", old_rows, new_rows);

  EXPECT_NE(maintainer.plan_entry("D", true, PlanPolicy::kConstraintFree),
            nullptr);
  EXPECT_NE(maintainer.plan_entry("D", false, PlanPolicy::kConstraintFree),
            nullptr);
  EXPECT_EQ(maintainer.plan_entry("D", true, PlanPolicy::kDefault), nullptr);
}

}  // namespace
}  // namespace opt
}  // namespace ojv
