// Unit tests for the metrics core: Counter, Histogram, Registry.
// The thread-hammer cases run under every sanitizer configuration of
// tools/check.sh (including OJV_SANITIZE=thread), which is what verifies
// the relaxed-atomic counters are race-free.

#include "obs/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/windowed.h"

namespace ojv {
namespace obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add(3);
  counter.Add(4);
  EXPECT_EQ(counter.value(), 7);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(CounterTest, ThreadHammer) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.Set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.Set(7);  // unlike Counter, a gauge can go down
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.value(), -3);  // and negative
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(GaugeTest, ThreadHammerOnAdd) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.value(), int64_t{kThreads} * kPerThread);
}

TEST(HistogramTest, CountSumAndBuckets) {
  Histogram h;
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(1000);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 1006);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  // Durations can come out negative under wall-clock adjustment. They
  // land in bucket 0 either way, but an unclamped sum goes negative and
  // corrupts every mean (and the snapshot JSON) derived from it.
  Histogram h;
  h.Record(-5000);
  h.Record(-1);
  h.Record(10);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 10);  // the negatives contributed 0, not -5001
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_GE(h.PercentileBound(50), 1);
}

TEST(HistogramTest, PercentileBounds) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(1);
  h.Record(1 << 20);
  // p50 lands in the first bucket, p99.9 must cover the outlier.
  EXPECT_LE(h.PercentileBound(50), 1);
  EXPECT_GE(h.PercentileBound(99.9), 1 << 20);
}

TEST(HistogramTest, ThreadHammer) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(t + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), int64_t{kThreads} * kPerThread);
}

// --- WindowedHistogram: the admission controller's "p99 over the last
// --- N seconds" primitive. Times are synthetic (microseconds).

constexpr int64_t kEpoch = 1000;  // 1ms epochs, 4-epoch window

TEST(WindowedHistogramTest, AnswersPercentileOverWindowOnly) {
  WindowedHistogram h(kEpoch, 4);
  // An old spike, then a quiet recent window.
  for (int i = 0; i < 100; ++i) h.Record(1 << 20, /*now=*/0);
  for (int i = 0; i < 100; ++i) h.Record(2, /*now=*/10 * kEpoch);

  // At t=10ms the window is (6ms, 10ms]: the spike has decayed out.
  EXPECT_EQ(h.WindowCount(10 * kEpoch), 100);
  EXPECT_LE(h.PercentileBound(99, 10 * kEpoch), 2);
  // A cumulative histogram would still answer ~1<<20 here.
  Histogram cumulative;
  for (int i = 0; i < 100; ++i) cumulative.Record(1 << 20);
  for (int i = 0; i < 100; ++i) cumulative.Record(2);
  EXPECT_GE(cumulative.PercentileBound(99), 1 << 20);
}

TEST(WindowedHistogramTest, MergesLiveEpochs) {
  WindowedHistogram h(kEpoch, 4);
  h.Record(4, 0 * kEpoch);
  h.Record(8, 1 * kEpoch);
  h.Record(16, 2 * kEpoch);
  h.Record(1 << 19, 3 * kEpoch);
  // All four epochs are inside the window ending in epoch 3.
  EXPECT_EQ(h.WindowCount(3 * kEpoch), 4);
  EXPECT_EQ(h.WindowSum(3 * kEpoch), 4 + 8 + 16 + (1 << 19));
  EXPECT_GE(h.PercentileBound(100, 3 * kEpoch), 1 << 19);
  EXPECT_LE(h.PercentileBound(25, 3 * kEpoch), 4);

  // One epoch later the oldest sample (4) has decayed out.
  EXPECT_EQ(h.WindowCount(4 * kEpoch), 3);
  EXPECT_EQ(h.WindowSum(4 * kEpoch), 8 + 16 + (1 << 19));
}

TEST(WindowedHistogramTest, RingSlotsRecycle) {
  WindowedHistogram h(kEpoch, 2);
  h.Record(7, 0);
  // Epoch 2 maps onto epoch 0's ring slot; the old samples must not
  // bleed into the new epoch's counts.
  h.Record(9, 2 * kEpoch);
  EXPECT_EQ(h.WindowCount(2 * kEpoch), 1);
  EXPECT_EQ(h.WindowSum(2 * kEpoch), 9);
}

TEST(WindowedHistogramTest, EmptyWindowReportsZero) {
  WindowedHistogram h(kEpoch, 4);
  EXPECT_EQ(h.WindowCount(0), 0);
  EXPECT_EQ(h.PercentileBound(99, 0), 0);
  h.Record(100, 0);
  h.Reset();
  EXPECT_EQ(h.WindowCount(0), 0);
}

TEST(WindowedHistogramTest, NegativeSamplesClampLikeHistogram) {
  WindowedHistogram h(kEpoch, 4);
  h.Record(-100, 0);
  h.Record(6, 0);
  EXPECT_EQ(h.WindowCount(0), 2);
  EXPECT_EQ(h.WindowSum(0), 6);
}

TEST(RegistryTest, SameNameSameCounter) {
  Registry registry;
  Counter& a = registry.GetCounter("ojv.test.a");
  Counter& b = registry.GetCounter("ojv.test.a");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.value(), 5);
}

TEST(RegistryTest, SnapshotSortedByName) {
  Registry registry;
  registry.GetCounter("ojv.z").Add(1);
  registry.GetCounter("ojv.a").Add(2);
  registry.GetCounter("ojv.m").Add(3);
  auto snapshot = registry.CounterSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "ojv.a");
  EXPECT_EQ(snapshot[1].first, "ojv.m");
  EXPECT_EQ(snapshot[2].first, "ojv.z");
}

TEST(RegistryTest, ConcurrentGetAndBump) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("ojv.shared").Add(1);
        registry.GetHistogram("ojv.shared.h").Record(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("ojv.shared").value(), kThreads * 1000);
  EXPECT_EQ(registry.GetHistogram("ojv.shared.h").count(), kThreads * 1000);
}

TEST(RegistryTest, SameNameSameGauge) {
  Registry registry;
  Gauge& a = registry.GetGauge("ojv.test.g");
  Gauge& b = registry.GetGauge("ojv.test.g");
  EXPECT_EQ(&a, &b);
  a.Set(11);
  auto snapshot = registry.GaugeSnapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "ojv.test.g");
  EXPECT_EQ(snapshot[0].second, 11);
}

TEST(RegistryTest, ResetForTestZeroesEverything) {
  Registry registry;
  registry.GetCounter("ojv.x").Add(9);
  registry.GetGauge("ojv.g").Set(9);
  registry.GetHistogram("ojv.y").Record(9);
  registry.ResetForTest();
  EXPECT_EQ(registry.GetCounter("ojv.x").value(), 0);
  EXPECT_EQ(registry.GetGauge("ojv.g").value(), 0);
  EXPECT_EQ(registry.GetHistogram("ojv.y").count(), 0);
}

TEST(RegistryTest, WriteJsonIsWellFormed) {
  Registry registry;
  registry.GetCounter("ojv.c\"quote").Add(1);
  registry.GetHistogram("ojv.h").Record(7);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // The quote in the counter name must come out escaped.
  EXPECT_NE(json.find("ojv.c\\\"quote"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace ojv
