# Empty dependencies file for griffin_kumar_test.
# This may be replaced when dependencies are built.
