file(REMOVE_RECURSE
  "libojv_bench_util.a"
)
