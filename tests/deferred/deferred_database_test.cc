// Deferred maintenance through the Database facade: refresh policies,
// read-time catch-up, threshold trips (inline and on the background
// worker), multi-table revert-and-replay, transactions, and randomized
// policy equivalence on the paper's running-example view V1.

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "ivm/database.h"
#include "test_util.h"

namespace ojv {
namespace {

using deferred::RefreshPolicy;
using deferred::RefreshStats;
using deferred::ThresholdConfig;

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

class DeferredDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.catalog()->CreateTable(
        "dept",
        Schema({ColumnDef{"d_id", ValueType::kInt64, false},
                ColumnDef{"d_name", ValueType::kString, false}}),
        {"d_id"});
    db_.catalog()->CreateTable(
        "emp",
        Schema({ColumnDef{"e_id", ValueType::kInt64, false},
                ColumnDef{"e_dept", ValueType::kInt64, false},
                ColumnDef{"e_salary", ValueType::kFloat64, true}}),
        {"e_id"});
  }

  ViewDef MakeDeptView() {
    RelExprPtr tree = RelExpr::Join(
        JoinKind::kFullOuter, RelExpr::Scan("dept"), RelExpr::Scan("emp"),
        Eq("dept", "d_id", "emp", "e_dept"));
    return ViewDef("dept_emp", tree,
                   {{"dept", "d_id"},
                    {"dept", "d_name"},
                    {"emp", "e_id"},
                    {"emp", "e_dept"},
                    {"emp", "e_salary"}},
                   *db_.catalog());
  }

  Row Dept(int64_t id, const char* name) {
    return Row{Value::Int64(id), Value::String(name)};
  }
  Row Emp(int64_t id, int64_t dept, double salary) {
    return Row{Value::Int64(id), Value::Int64(dept), Value::Float64(salary)};
  }
  Row Key(int64_t id) { return Row{Value::Int64(id)}; }

  ::testing::AssertionResult Matches(ViewMaintainer* view) {
    std::string diff;
    if (ViewMatchesRecompute(*db_.catalog(), view->view_def(), view->view(),
                             &diff)) {
      return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure() << diff;
  }

  Database db_;
};

TEST_F(DeferredDatabaseTest, OnDemandDefersUntilRead) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);
  EXPECT_EQ(db_.GetRefreshPolicy("dept_emp"), RefreshPolicy::kOnDemand);

  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  db_.Insert("emp", {Emp(10, 1, 100.0)});

  // Nothing was maintained yet: the statements only staged their rows.
  EXPECT_EQ(view->view().size(), 0);
  EXPECT_EQ(db_.PendingRows("dept_emp"), 3);

  // The read path catches up first (read-your-writes).
  ViewSnapshot contents = db_.ReadView("dept_emp");
  ASSERT_NE(contents, nullptr);
  EXPECT_EQ(contents->size(), 2);  // dept 1 + emp 10 joined, dept 2 orphan
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);
  EXPECT_TRUE(Matches(view));
}

TEST_F(DeferredDatabaseTest, ImmediateViewsAreNeverStale) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  Database::StatementResult result = db_.Insert("dept", {Dept(1, "eng")});
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);
  EXPECT_EQ(view->view().size(), 1);
  // Eager statements report their maintenance cost per view too.
  EXPECT_EQ(result.view_micros.count("dept_emp"), 1u);
  EXPECT_GE(result.maintenance_micros,
            result.view_micros["dept_emp"] - 1e-6);
  RefreshStats stats = db_.Refresh("dept_emp");
  EXPECT_EQ(stats.raw_entries, 0);  // no-op for kImmediate
}

TEST_F(DeferredDatabaseTest, InsertThenDeleteSameKeyCancelsAcrossStatements) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.Insert("dept", {Dept(1, "eng")});
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);

  db_.Insert("emp", {Emp(10, 1, 100.0), Emp(11, 1, 50.0)});
  db_.Delete("emp", {Key(10)});
  db_.Delete("emp", {Key(11)});

  RefreshStats stats = db_.Refresh("dept_emp");
  EXPECT_EQ(stats.raw_entries, 4);
  EXPECT_EQ(stats.cancelled_rows, 4);
  EXPECT_EQ(stats.consolidated_rows, 0);  // the maintainer saw nothing
  EXPECT_TRUE(Matches(view));
  EXPECT_EQ(view->view().size(), 1);  // dept 1 orphan, as before the batch
}

TEST_F(DeferredDatabaseTest, DeleteThenReinsertFoldsToUpdatePair) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.Insert("dept", {Dept(1, "eng")});
  db_.Insert("emp", {Emp(10, 1, 100.0)});
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);

  // Distinct statements, same key, changed non-key column.
  db_.Delete("emp", {Key(10)});
  db_.Insert("emp", {Emp(10, 1, 175.0)});

  RefreshStats stats = db_.Refresh("dept_emp");
  EXPECT_EQ(stats.raw_entries, 2);
  EXPECT_EQ(stats.update_pairs, 1);
  EXPECT_EQ(stats.consolidated_rows, 2);  // one pre-image + one post-image
  EXPECT_TRUE(Matches(view));
}

TEST_F(DeferredDatabaseTest, UpdateStatementsRouteConstraintFreeAtRefresh) {
  // An UPDATE's delete+insert halves are staged as an update pair; at
  // refresh they reach the maintainer together on the constraint-free
  // plan set (§6 caveat 1), wherever the refresh boundary falls.
  db_.catalog()->AddForeignKey({"emp", {"e_dept"}, "dept", {"d_id"}});
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  db_.Insert("emp", {Emp(10, 1, 100.0)});
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);

  ASSERT_TRUE(db_.Update("emp", {Key(10)}, {Emp(10, 2, 110.0)}).ok());
  EXPECT_EQ(db_.PendingRows("dept_emp"), 2);  // both halves staged

  RefreshStats stats = db_.Refresh("dept_emp");
  EXPECT_EQ(stats.update_pairs, 1);
  EXPECT_TRUE(Matches(view));

  // A second update whose refresh batch also contains unrelated inserts
  // (the pair sits mid-batch rather than alone).
  ASSERT_TRUE(db_.Update("emp", {Key(10)}, {Emp(10, 1, 120.0)}).ok());
  db_.Insert("emp", {Emp(11, 2, 90.0)});
  stats = db_.Refresh("dept_emp");
  EXPECT_EQ(stats.update_pairs, 1);
  EXPECT_TRUE(Matches(view));
}

TEST_F(DeferredDatabaseTest, ThresholdRefreshesInlineWhenPendingRowsTrip) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  ThresholdConfig config;
  config.max_pending_rows = 4;
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kThreshold, config);

  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  EXPECT_EQ(db_.PendingRows("dept_emp"), 2);  // below the limit: stale
  EXPECT_EQ(view->view().size(), 0);

  Database::StatementResult result =
      db_.Insert("emp", {Emp(10, 1, 100.0), Emp(11, 2, 80.0)});
  // 4 pending rows reached the limit: the statement triggered a refresh.
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);
  EXPECT_TRUE(Matches(view));
  EXPECT_GT(result.view_micros.count("dept_emp"), 0u);

  const deferred::ViewRefreshState state = db_.RefreshState("dept_emp");
  EXPECT_EQ(state.refreshes, 1);
  EXPECT_EQ(state.raw_entries, 4);
}

TEST_F(DeferredDatabaseTest, ThresholdStalenessLimitTrips) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  ThresholdConfig config;
  config.max_pending_rows = 0;          // disabled
  config.max_staleness_micros = 1000;   // 1ms
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kThreshold, config);

  db_.Insert("dept", {Dept(1, "eng")});
  EXPECT_EQ(db_.PendingRows("dept_emp"), 1);

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  db_.Insert("dept", {Dept(2, "ops")});  // any statement re-checks
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);
  EXPECT_TRUE(Matches(view));
}

TEST_F(DeferredDatabaseTest, BackgroundWorkerDrainsThresholdViews) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  ThresholdConfig config;
  config.max_pending_rows = 1;  // every statement leaves the view due
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kThreshold, config);
  db_.StartBackgroundRefresh(std::chrono::milliseconds(2));
  EXPECT_TRUE(db_.background_refresh_running());

  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops"), Dept(3, "hr")});
  db_.Insert("emp", {Emp(10, 1, 100.0)});

  // The statements above ping the worker instead of refreshing inline;
  // wait for it to catch up.
  for (int i = 0; i < 500 && db_.PendingRows("dept_emp") > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);
  db_.StopBackgroundRefresh();
  EXPECT_FALSE(db_.background_refresh_running());
  EXPECT_TRUE(Matches(view));
}

TEST_F(DeferredDatabaseTest, MultiTableBatchRevertsAndReplays) {
  // Changes to both operands of the full outer join in one pending
  // batch, including a same-batch cancellation: the refresh must revert
  // to the batch's pre-state and replay the net deltas in order — a
  // naive per-table replay against the final base state would
  // double-count the dept3/emp30 pairing.
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  db_.Insert("emp", {Emp(10, 1, 100.0), Emp(20, 2, 90.0)});
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);

  db_.Insert("dept", {Dept(3, "hr")});
  db_.Insert("emp", {Emp(30, 3, 70.0), Emp(31, 1, 60.0)});
  db_.Delete("emp", {Key(20)});
  db_.Insert("dept", {Dept(4, "tmp")});
  db_.Delete("dept", {Key(4)});  // cancels with the insert above

  RefreshStats stats = db_.Refresh("dept_emp");
  EXPECT_EQ(stats.tables_touched, 2);
  EXPECT_EQ(stats.cancelled_rows, 2);
  EXPECT_TRUE(Matches(view));

  // Refresh is idempotent once drained.
  stats = db_.Refresh("dept_emp");
  EXPECT_EQ(stats.raw_entries, 0);
  EXPECT_TRUE(Matches(view));
}

TEST_F(DeferredDatabaseTest, SwitchingBackToImmediateDrainsFirst) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);
  db_.Insert("dept", {Dept(1, "eng")});
  EXPECT_EQ(db_.PendingRows("dept_emp"), 1);

  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kImmediate);
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);
  EXPECT_TRUE(Matches(view));

  db_.Insert("dept", {Dept(2, "ops")});  // maintained eagerly again
  EXPECT_EQ(view->view().size(), 2);
}

TEST_F(DeferredDatabaseTest, TransactionsDrainDeferredViewsAndRunEager) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);
  db_.Insert("dept", {Dept(1, "eng")});
  EXPECT_EQ(db_.PendingRows("dept_emp"), 1);

  ASSERT_TRUE(db_.BeginTransaction());
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);  // drained at Begin
  EXPECT_TRUE(Matches(view));

  // Statements inside the transaction maintain the view immediately.
  db_.Insert("emp", {Emp(10, 1, 100.0)});
  EXPECT_TRUE(Matches(view));
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);

  db_.Rollback();
  EXPECT_TRUE(Matches(view));
  EXPECT_EQ(db_.catalog()->GetTable("emp")->size(), 0);
}

TEST_F(DeferredDatabaseTest, DroppingADeferredViewReleasesItsLog) {
  db_.CreateMaterializedView(MakeDeptView());
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);
  db_.Insert("dept", {Dept(1, "eng")});
  EXPECT_TRUE(db_.DropView("dept_emp"));

  // Statements keep working and nothing accumulates.
  db_.Insert("dept", {Dept(2, "ops")});
  EXPECT_EQ(db_.catalog()->GetTable("dept")->size(), 2);
}

TEST_F(DeferredDatabaseTest, AggregateViewsRefreshOnDemandToo) {
  db_.CreateAggregateView(
      MakeDeptView(), {{"dept", "d_name"}},
      {{AggregateSpec::Kind::kCountStar, {}, "n"},
       {AggregateSpec::Kind::kSum, {"emp", "e_salary"}, "payroll"}});
  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);

  db_.Insert("emp", {Emp(10, 1, 100.0), Emp(11, 1, 50.0), Emp(12, 2, 70.0)});
  db_.Delete("emp", {Key(11)});
  db_.Update("emp", {Key(12)}, {Emp(12, 2, 75.0)});

  Relation groups =
      db_.ReadAggregateRelation("dept_emp").AsRelation();  // refreshes
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);
  std::string diff;
  EXPECT_TRUE(db_.GetAggregateView("dept_emp")->MatchesRecompute(1e-9, &diff))
      << diff;
  EXPECT_EQ(groups.rows().size(), 2u);
}

// All three policies — and a from-scratch recompute — agree on the
// paper's running-example view V1 under a randomized statement mix.
TEST(DeferredPolicyEquivalenceTest, RandomizedMixConvergesAcrossPolicies) {
  Rng rng(20260806);
  Database immediate, on_demand, threshold;
  Database* dbs[] = {&immediate, &on_demand, &threshold};
  for (Database* db : dbs) testing_util::CreateRstuSchema(db->catalog());

  ViewMaintainer* views[3];
  for (int i = 0; i < 3; ++i) {
    views[i] = dbs[i]->CreateMaterializedView(
        testing_util::MakeV1(*dbs[i]->catalog()));
  }
  on_demand.SetRefreshPolicy("v1", RefreshPolicy::kOnDemand);
  deferred::ThresholdConfig config;
  config.max_pending_rows = 16;
  threshold.SetRefreshPolicy("v1", RefreshPolicy::kThreshold, config);

  const char* tables[] = {"R", "S", "T", "U"};
  int64_t next_key = 1;
  bool deferred_work_seen = false;
  for (int step = 0; step < 120; ++step) {
    const std::string table = tables[rng.Uniform(0, 3)];
    // Statements are generated once against the first database's state
    // (all base states are identical) and applied to all three.
    const Table& current = *immediate.catalog()->GetTable(table);
    double dice = rng.NextDouble();
    if (dice < 0.5 || current.size() == 0) {
      std::vector<Row> rows = testing_util::RandomRstuRows(
          table, &rng, static_cast<int>(rng.Uniform(1, 4)), 6, &next_key);
      for (Database* db : dbs) db->Insert(table, rows);
    } else if (dice < 0.75) {
      std::vector<Row> keys = testing_util::SampleKeys(current, &rng, 2);
      for (Database* db : dbs) db->Delete(table, keys);
    } else {
      std::vector<Row> keys = testing_util::SampleKeys(current, &rng, 2);
      std::vector<Row> new_rows;
      for (const Row& key : keys) {
        Row row = *current.FindByKey(key);
        row[3] = Value::Int64(rng.Uniform(0, 999));  // payload column
        if (rng.Chance(0.3)) row[2] = Value::Null();  // join column
        new_rows.push_back(std::move(row));
      }
      for (Database* db : dbs) db->Update(table, keys, new_rows);
    }
    if (on_demand.PendingRows("v1") > 20) {
      deferred_work_seen = true;
      on_demand.Refresh("v1");  // periodic explicit refresh mid-run
    }
  }
  EXPECT_TRUE(deferred_work_seen);

  on_demand.Refresh("v1");
  threshold.Refresh("v1");
  EXPECT_EQ(on_demand.PendingRows("v1"), 0);
  EXPECT_EQ(threshold.PendingRows("v1"), 0);

  // Byte-identical across policies, and correct against recompute.
  std::string diff;
  EXPECT_TRUE(SameBag(views[0]->view().AsRelation(),
                      views[1]->view().AsRelation(), &diff))
      << "on-demand diverged: " << diff;
  EXPECT_TRUE(SameBag(views[0]->view().AsRelation(),
                      views[2]->view().AsRelation(), &diff))
      << "threshold diverged: " << diff;
  EXPECT_TRUE(ViewMatchesRecompute(*immediate.catalog(),
                                   views[0]->view_def(), views[0]->view(),
                                   &diff))
      << diff;
}

}  // namespace
}  // namespace ojv
