#ifndef OJV_EXEC_JOIN_TABLE_H_
#define OJV_EXEC_JOIN_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/thread_pool.h"

namespace ojv {

/// Flat open-addressing multimap from a 64-bit hash to build-side row
/// ids: one contiguous array of (hash, row) slots, power-of-two sized at
/// 50% max load, linear probing. Replaces std::unordered_multimap in the
/// join/dedup/subsumption kernels — no per-node allocation, no pointer
/// chasing on probe, and the backing vector is reused across Build calls
/// (RemoveSubsumed rebuilds per mask pair against the same instance).
///
/// Parallel build partitions the table by the hash's top bits into
/// independently probed sub-regions, one builder thread per partition —
/// insertions never race because a slot region has exactly one writer.
///
/// Determinism: within a partition rows are inserted in ascending row id
/// and linear probing preserves that order among equal-hash entries, so
/// ForEachMatch enumerates matches in build row order regardless of the
/// partition count. Serial and parallel joins therefore emit identical
/// row sequences.
class JoinTable {
 public:
  /// Sentinel marking a build row to skip (NULL join keys: SQL equality
  /// never matches them). Real hashes must be normalized away from this
  /// value (NormalizeHash) by whoever fills the hash array.
  static constexpr size_t kSkipHash = ~size_t{0};

  /// Keeps a computed hash distinguishable from kSkipHash. The remapped
  /// value only adds an equality-checked collision, never a miss, as
  /// long as every build- and probe-side hash goes through this.
  static size_t NormalizeHash(size_t h) { return h == kSkipHash ? h - 1 : h; }

  /// (Re)builds the table over rows [0, hashes.size()), skipping entries
  /// equal to kSkipHash. `num_partitions` is rounded up to a power of
  /// two; pass 1 (or pool == nullptr) for a serial build.
  void Build(const std::vector<size_t>& hashes, int num_partitions,
             ThreadPool* pool);

  /// Calls fn(row_id) for every build row whose hash equals `hash`, in
  /// ascending row id order. Callers re-check real key equality.
  template <typename Fn>
  void ForEachMatch(size_t hash, Fn&& fn) const {
    if (slots_.empty()) return;
    const Partition& part =
        partitions_[partition_bits_ == 0
                        ? 0
                        : hash >> (64 - static_cast<unsigned>(partition_bits_))];
    size_t idx = hash & part.mask;
    for (;;) {
      const Slot& slot = slots_[part.offset + idx];
      if (slot.row < 0) return;
      if (slot.hash == hash) fn(slot.row);
      idx = (idx + 1) & part.mask;
    }
  }

  int64_t size() const { return entries_; }

  /// Allocated slot count (instrumentation: build size vs. occupancy).
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    size_t hash;
    int64_t row;
  };
  struct Partition {
    size_t offset;
    size_t mask;  // capacity - 1 (capacity is a power of two)
  };

  void FillPartition(const std::vector<size_t>& hashes, size_t part_index);

  std::vector<Slot> slots_;
  std::vector<Partition> partitions_;
  int partition_bits_ = 0;  // log2(partitions_.size())
  int64_t entries_ = 0;
};

}  // namespace ojv

#endif  // OJV_EXEC_JOIN_TABLE_H_
