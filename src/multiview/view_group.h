#ifndef OJV_MULTIVIEW_VIEW_GROUP_H_
#define OJV_MULTIVIEW_VIEW_GROUP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "opt/fingerprint.h"

namespace ojv {
namespace multiview {

/// Per-view fingerprint bundle: the decomposed default-policy delta
/// expression for each base table the view references. Clustering and
/// shared-plan construction both read these.
struct MemberFingerprints {
  bool is_aggregate = false;
  std::map<std::string, opt::DeltaFingerprint> prints;  // table -> fp
};

/// A maintenance group: views that share a ΔT source table and at least
/// the first delta step (the pre-filter or first delta join) of their
/// delta plan for that table. Members are maintained together — one
/// consolidated-replay pass over the union of their tables, with the
/// common plan prefix evaluated once per (table, batch).
struct ViewGroup {
  std::string id;                // stable "g<N>" label, never reused
  std::string anchor_table;      // the shared ΔT source table
  std::string anchor_signature;  // Signature(1) of the shared first step
  std::vector<std::string> members;  // sorted view names, size >= 2

  const std::string& leader() const { return members.front(); }
};

/// Registry of view fingerprints and the groups derived from them.
/// Registration happens at view-creation time regardless of the
/// multiview mode; grouping is recomputed on every register/remove so
/// GroupOf is always current. Group ids are monotonic across rebuilds:
/// a dropped-and-recreated view lands in a fresh id, so caches keyed by
/// group id can never serve a stale plan.
class ViewGroupCatalog {
 public:
  /// Registers (or re-registers) a view's fingerprints and rebuilds the
  /// grouping.
  void Register(const std::string& view, MemberFingerprints fingerprints);

  /// Drops a view (no-op when absent) and rebuilds the grouping.
  void Remove(const std::string& view);

  bool Has(const std::string& view) const {
    return registered_.count(view) > 0;
  }

  /// Fingerprints of a registered view; nullptr when unknown.
  const MemberFingerprints* FingerprintsOf(const std::string& view) const;

  /// The group containing `view`, or nullptr when the view is ungrouped
  /// (singleton buckets never form groups).
  const ViewGroup* GroupOf(const std::string& view) const;

  const std::vector<ViewGroup>& groups() const { return groups_; }

  /// Bumped on every rebuild; shared-plan caches self-invalidate on it.
  uint64_t version() const { return version_; }

  size_t num_registered() const { return registered_.size(); }

 private:
  void Rebuild();

  std::map<std::string, MemberFingerprints> registered_;
  std::vector<ViewGroup> groups_;
  std::map<std::string, size_t> member_to_group_;  // view -> groups_ index
  uint64_t version_ = 0;
  uint64_t next_id_ = 1;
  /// Group ids whose member-count gauge was published: ids regenerate
  /// on every rebuild, so vanished ids must be zeroed or the exporter
  /// would keep reporting phantom groups.
  std::vector<std::string> published_gauge_ids_;
};

}  // namespace multiview
}  // namespace ojv

#endif  // OJV_MULTIVIEW_VIEW_GROUP_H_
