#ifndef OJV_EXEC_THREAD_POOL_H_
#define OJV_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ojv {

/// A persistent pool of worker threads driving morsel loops. The pool is
/// the only piece of the executor that owns threads; operators hand it a
/// chunk-parallel loop and block until it completes.
///
/// Scheduling is a shared atomic cursor over fixed-size chunks: workers
/// (including the calling thread, which always participates) claim the
/// next unclaimed chunk until the range is exhausted. That is the
/// chunk-queue flavor of morsel-driven parallelism — contention is one
/// fetch_add per chunk, and stragglers never idle while chunks remain.
///
/// ParallelFor never nests: a loop issued from inside a worker body runs
/// inline on the calling thread (the executor's recursive Eval finishes
/// child operators before a parent loop starts, so this only triggers if
/// a caller misuses the pool — and then it degrades to serial, not
/// deadlock).
class ThreadPool {
 public:
  /// A pool with `num_threads` total workers (the constructing thread
  /// counts as one, so num_threads - 1 threads are spawned).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(chunk_index, begin, end) for every chunk of `grain`
  /// consecutive indexes in [0, count), distributed over at most
  /// `max_workers` workers (counting the caller; capped by the pool
  /// size). Blocks until all chunks completed. Bodies for different
  /// chunks run concurrently; the caller must make per-chunk state
  /// independent.
  void ParallelFor(int64_t count, int64_t grain,
                   const std::function<void(int64_t, int64_t, int64_t)>& body,
                   int max_workers = 1 << 20);

  /// A process-wide pool with at least `num_threads` workers, shared by
  /// every maintainer/evaluator that asks (threads are parked on a
  /// condition variable when idle, so sharing one big pool is cheaper
  /// than one pool per view). Grows monotonically: asking for more
  /// threads than the current shared pool has replaces it.
  static std::shared_ptr<ThreadPool> Shared(int num_threads);

  /// Cumulative morsels (chunks) executed by one thread slot since the
  /// pool was built: slot 0 is the calling thread's share (including
  /// serial fallbacks), slots 1..num_threads-1 the spawned workers.
  /// Observability only — a skewed distribution means the pool was
  /// under-utilized (e.g. more threads configured than the host has
  /// cores, or inputs below parallel_min_rows).
  int64_t chunks_executed(int slot) const {
    return slot_chunks_[static_cast<size_t>(slot)].load(
        std::memory_order_relaxed);
  }

 private:
  void WorkerLoop(int worker_index);
  /// Claims chunks until the cursor passes `count`; `slot` attributes
  /// the executed chunks (0 = caller, worker_index + 1 = workers).
  void RunChunks(int slot);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new epoch
  std::condition_variable done_cv_;   // ParallelFor waits for completion
  uint64_t epoch_ = 0;                // bumped per ParallelFor call
  bool shutdown_ = false;

  // Current job (valid while busy_ > 0). Cursor counts chunks; workers
  // with index >= active_limit_ sit the epoch out (participation cap).
  const std::function<void(int64_t, int64_t, int64_t)>* body_ = nullptr;
  int64_t count_ = 0;
  int64_t grain_ = 1;
  int64_t num_chunks_ = 0;
  int active_limit_ = 0;
  std::atomic<int64_t> cursor_{0};
  int busy_ = 0;  // workers not yet done with the epoch (guarded by mu_)

  /// Per-slot cumulative morsel counts (see chunks_executed).
  std::vector<std::atomic<int64_t>> slot_chunks_;
};

}  // namespace ojv

#endif  // OJV_EXEC_THREAD_POOL_H_
