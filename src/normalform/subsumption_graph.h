#ifndef OJV_NORMALFORM_SUBSUMPTION_GRAPH_H_
#define OJV_NORMALFORM_SUBSUMPTION_GRAPH_H_

#include <string>
#include <vector>

#include "normalform/term.h"

namespace ojv {

/// The subsumption graph of a normal form (paper Definition 2.1): one
/// node per term; an edge from ni to nj when Si is a *minimal* strict
/// superset of Sj among the term source sets. Tuples of a term can only
/// be subsumed by tuples of (transitive) parent terms, and checking
/// immediate parents suffices (Lemma 1).
class SubsumptionGraph {
 public:
  explicit SubsumptionGraph(const std::vector<Term>& terms);

  int num_nodes() const { return static_cast<int>(parents_.size()); }

  /// Immediate parents of term i (indexes into the term vector).
  const std::vector<int>& Parents(int i) const {
    return parents_[static_cast<size_t>(i)];
  }
  /// Immediate children of term i.
  const std::vector<int>& Children(int i) const {
    return children_[static_cast<size_t>(i)];
  }

  /// Graphviz-ish text rendering: one "parent -> child" line per edge,
  /// using term labels, sorted. Used in tests against the paper's
  /// Figure 1(a).
  std::string ToString(const std::vector<Term>& terms) const;

 private:
  std::vector<std::vector<int>> parents_;
  std::vector<std::vector<int>> children_;
};

}  // namespace ojv

#endif  // OJV_NORMALFORM_SUBSUMPTION_GRAPH_H_
