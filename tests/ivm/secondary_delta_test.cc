// Focused tests of the secondary-delta engine: the double-orphan case,
// multi-table indirect terms, agreement between the §5.2 and §5.3
// strategies, and the view-free candidate computation used by
// aggregation views.

#include "ivm/secondary_delta.h"

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "exec/evaluator.h"
#include "ivm/maintainer.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

// The §8 double-orphan scenario, directly: one lineitem insert must
// retire both a part orphan and an orders orphan.
TEST(SecondaryDeltaTest, OneInsertRetiresTwoOrphans) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);
  tpch::RefreshStream refresh(&catalog, &dbgen, 5);

  for (SecondaryStrategy strategy :
       {SecondaryStrategy::kFromView, SecondaryStrategy::kFromBaseTables}) {
    ViewDef view = tpch::MakeOjView(catalog);
    MaintenanceOptions m_options;
    m_options.secondary_strategy = strategy;
    ViewMaintainer maintainer(&catalog, view, m_options);
    maintainer.InitializeView();

    // Fresh orphan part + orphan order.
    std::vector<Row> part_rows =
        ApplyBaseInsert(catalog.GetTable("part"), refresh.NewParts(1));
    maintainer.OnInsert("part", part_rows);
    std::vector<Row> order_rows =
        ApplyBaseInsert(catalog.GetTable("orders"), refresh.NewOrders(1));
    maintainer.OnInsert("orders", order_rows);

    Row link = refresh.NewLineitemsFor(order_rows, 1)[0];
    link[1] = part_rows[0][0];  // l_partkey = the orphan part
    std::vector<Row> inserted =
        ApplyBaseInsert(catalog.GetTable("lineitem"), {link});
    MaintenanceStats stats = maintainer.OnInsert("lineitem", inserted);
    EXPECT_EQ(stats.primary_rows, 1);
    EXPECT_EQ(stats.secondary_rows, 2)
        << "strategy " << static_cast<int>(strategy);
    std::string diff;
    ASSERT_TRUE(ViewMatchesRecompute(catalog, view, maintainer.view(), &diff))
        << diff;

    // And deleting the link re-exposes both orphans.
    std::vector<Row> deleted = ApplyBaseDelete(
        catalog.GetTable("lineitem"), {Row{link[0], link[3]}});
    stats = maintainer.OnDelete("lineitem", deleted);
    EXPECT_EQ(stats.secondary_rows, 2);
    ASSERT_TRUE(ViewMatchesRecompute(catalog, view, maintainer.view(), &diff))
        << diff;

    // Clean up the extra part/order so the next strategy starts equal.
    ApplyBaseDelete(catalog.GetTable("orders"), {Row{order_rows[0][0]}});
    ApplyBaseDelete(catalog.GetTable("part"), {Row{part_rows[0][0]}});
  }
}

// Multi-table indirect term: in V1, the {R,S} term is indirectly
// affected by updates of T; its orphans carry two tables' columns.
TEST(SecondaryDeltaTest, MultiTableOrphansAreMaintained) {
  Catalog catalog;
  testing_util::CreateRstuSchema(&catalog);
  // R row joining an S row (the {R,S} orphan), and a T row that will
  // subsume it when inserted (p(r,t): r_b = t_b).
  catalog.GetTable("R")->Insert(
      Row{Value::Int64(1), Value::Int64(5), Value::Int64(7), Value::Null()});
  catalog.GetTable("S")->Insert(
      Row{Value::Int64(2), Value::Int64(5), Value::Null(), Value::Null()});

  ViewDef v1 = testing_util::MakeV1(catalog);
  ViewMaintainer maintainer(&catalog, v1, MaintenanceOptions());
  maintainer.InitializeView();
  ASSERT_EQ(maintainer.view().size(), 1);  // the {R,S} orphan

  Row t_row{Value::Int64(3), Value::Int64(9), Value::Int64(7), Value::Null()};
  std::vector<Row> inserted =
      ApplyBaseInsert(catalog.GetTable("T"), {t_row});
  MaintenanceStats stats = maintainer.OnInsert("T", inserted);
  EXPECT_EQ(stats.primary_rows, 1);    // the new {R,S,T} row
  EXPECT_EQ(stats.secondary_rows, 1);  // the {R,S} orphan retired
  EXPECT_EQ(maintainer.view().size(), 1);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog, v1, maintainer.view(), &diff))
      << diff;

  // Deleting T re-exposes the two-table orphan.
  std::vector<Row> deleted =
      ApplyBaseDelete(catalog.GetTable("T"), {Row{Value::Int64(3)}});
  stats = maintainer.OnDelete("T", deleted);
  EXPECT_EQ(stats.secondary_rows, 1);
  ASSERT_TRUE(ViewMatchesRecompute(catalog, v1, maintainer.view(), &diff))
      << diff;
}

// The view-free candidate computation must name exactly the rows that
// the view-based strategy deletes/inserts.
TEST(SecondaryDeltaTest, BaseTableCandidatesMatchViewEffects) {
  for (uint64_t seed = 601; seed <= 612; ++seed) {
    Rng rng(seed);
    Catalog catalog;
    testing_util::CreateRstuSchema(&catalog);
    testing_util::PopulateRandomRstu(&catalog, &rng, 20, 4);
    ViewDef v1 = testing_util::MakeV1(catalog);

    ViewMaintainer maintainer(&catalog, v1, MaintenanceOptions());
    maintainer.InitializeView();

    // Snapshot, apply an insert batch to T, diff the view.
    Relation before = maintainer.view().AsRelation();
    int64_t key = 900000 + static_cast<int64_t>(seed);
    std::vector<Row> rows =
        testing_util::RandomRstuRows("T", &rng, 6, 4, &key);
    std::vector<Row> inserted =
        ApplyBaseInsert(catalog.GetTable("T"), rows);

    Relation delta_t(Evaluator::SchemaFor(*catalog.GetTable("T")));
    for (const Row& row : inserted) delta_t.Add(row);
    Relation primary =
        maintainer.ComputePrimaryDeltaRelation("T", delta_t);
    std::vector<Row> candidates =
        maintainer.secondary_engine("T")->CandidatesFromBaseTables(
            primary, delta_t, /*is_insert=*/true);

    maintainer.OnInsert("T", inserted);
    Relation after = maintainer.view().AsRelation();

    // Rows that disappeared from the view must be exactly the
    // candidates the base-table computation named.
    std::vector<Row> disappeared;
    for (const Row& row : before.rows()) {
      bool found = false;
      for (const Row& arow : after.rows()) {
        if (row == arow) {
          found = true;
          break;
        }
      }
      if (!found) disappeared.push_back(row);
    }
    std::vector<Row> expected = candidates;
    SortRows(&expected);
    SortRows(&disappeared);
    EXPECT_EQ(expected, disappeared) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ojv
