
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ivm/update_test.cc" "tests/CMakeFiles/update_test.dir/ivm/update_test.cc.o" "gcc" "tests/CMakeFiles/update_test.dir/ivm/update_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/ojv_test_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/ojv_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/ojv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ojv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ojv_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/ojv_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/ivm/CMakeFiles/ojv_ivm.dir/DependInfo.cmake"
  "/root/repo/build/src/normalform/CMakeFiles/ojv_normalform.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ojv_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/ojv_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ojv_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ojv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
