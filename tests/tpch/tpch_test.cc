// TPC-H substrate: generator integrity (keys, FKs, cardinalities,
// determinism, structural properties the views rely on) and refresh
// streams.

#include <gtest/gtest.h>

#include <set>

#include "common/date.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"

namespace ojv {
namespace tpch {
namespace {

class TpchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateSchema(&catalog_);
    DbgenOptions options;
    options.scale_factor = 0.002;
    dbgen_ = std::make_unique<Dbgen>(options);
    dbgen_->Populate(&catalog_);
  }

  Catalog catalog_;
  std::unique_ptr<Dbgen> dbgen_;
};

TEST_F(TpchFixture, CardinalitiesScale) {
  EXPECT_EQ(catalog_.GetTable("region")->size(), 5);
  EXPECT_EQ(catalog_.GetTable("nation")->size(), 25);
  EXPECT_EQ(catalog_.GetTable("supplier")->size(), 20);
  EXPECT_EQ(catalog_.GetTable("part")->size(), 400);
  EXPECT_EQ(catalog_.GetTable("customer")->size(), 300);
  EXPECT_EQ(catalog_.GetTable("orders")->size(), 3000);
  // 1..7 lineitems per order, expectation 4 per order.
  int64_t lineitems = catalog_.GetTable("lineitem")->size();
  EXPECT_GT(lineitems, 3000 * 2);
  EXPECT_LT(lineitems, 3000 * 7);
}

TEST_F(TpchFixture, ForeignKeysHold) {
  std::string violation;
  EXPECT_TRUE(catalog_.CheckForeignKeys(&violation)) << violation;
}

TEST_F(TpchFixture, OneThirdOfCustomersPlaceNoOrders) {
  std::set<int64_t> ordering;
  catalog_.GetTable("orders")->ForEach(
      [&](const Row& row) { ordering.insert(row[1].int64()); });
  int64_t orderless = 0;
  catalog_.GetTable("customer")->ForEach([&](const Row& row) {
    if (ordering.count(row[0].int64()) == 0) ++orderless;
  });
  // All custkey % 3 == 0 customers (plus possibly a few more by chance).
  EXPECT_GE(orderless, 100);
  catalog_.GetTable("orders")->ForEach([&](const Row& row) {
    EXPECT_NE(row[1].int64() % 3, 0) << "multiple-of-3 customer ordered";
  });
}

TEST_F(TpchFixture, RetailPriceFollowsSpecRange) {
  double lo = 1e9, hi = -1e9;
  int64_t below_2000 = 0, total = 0;
  catalog_.GetTable("part")->ForEach([&](const Row& row) {
    double price = row[7].float64();
    lo = std::min(lo, price);
    hi = std::max(hi, price);
    if (price < 2000.0) ++below_2000;
    ++total;
  });
  EXPECT_GE(lo, 900.0);
  EXPECT_LE(hi, 2098.99 + 1e-9);
  // The V3 filter p_retailprice < 2000 must select a non-trivial strict
  // subset.
  EXPECT_GT(below_2000, 0);
  EXPECT_LT(below_2000, total);
}

TEST_F(TpchFixture, OrderDatesCoverTheSpecRange) {
  int64_t lo = INT64_MAX, hi = INT64_MIN;
  int64_t in_window = 0;
  const int64_t wlo = ParseDate("1994-06-01");
  const int64_t whi = ParseDate("1994-12-31");
  catalog_.GetTable("orders")->ForEach([&](const Row& row) {
    int64_t d = row[4].int64();
    lo = std::min(lo, d);
    hi = std::max(hi, d);
    if (d >= wlo && d <= whi) ++in_window;
  });
  EXPECT_GE(lo, ParseDate("1992-01-01"));
  EXPECT_LE(hi, ParseDate("1998-08-02"));
  // The V3 window covers ≈ 8.9% of the date range.
  EXPECT_GT(in_window, 3000 / 25);
  EXPECT_LT(in_window, 3000 / 5);
}

TEST_F(TpchFixture, GenerationIsDeterministic) {
  Catalog other;
  CreateSchema(&other);
  DbgenOptions options;
  options.scale_factor = 0.002;
  Dbgen dbgen2(options);
  dbgen2.Populate(&other);
  for (const std::string& name : catalog_.TableNames()) {
    const Table* a = catalog_.GetTable(name);
    const Table* b = other.GetTable(name);
    ASSERT_EQ(a->size(), b->size()) << name;
    EXPECT_EQ(a->Snapshot(), b->Snapshot()) << name;
  }
}

TEST_F(TpchFixture, SparseOrderKeysLeaveGaps) {
  EXPECT_EQ(Dbgen::SparseOrderKey(1), 1);
  EXPECT_EQ(Dbgen::SparseOrderKey(8), 8);
  EXPECT_EQ(Dbgen::SparseOrderKey(9), 33);
  EXPECT_EQ(Dbgen::SparseOrderKey(17), 65);
}

TEST_F(TpchFixture, RefreshLineitemsRespectConstraints) {
  RefreshStream refresh(&catalog_, dbgen_.get(), 77);
  std::vector<Row> rows = refresh.NewLineitems(200);
  ASSERT_EQ(rows.size(), 200u);
  Table* lineitem = catalog_.GetTable("lineitem");
  for (const Row& row : rows) {
    ASSERT_TRUE(lineitem->Insert(row)) << "duplicate lineitem key";
  }
  std::string violation;
  EXPECT_TRUE(catalog_.CheckForeignKeys(&violation)) << violation;
}

TEST_F(TpchFixture, RefreshDeleteKeysExist) {
  RefreshStream refresh(&catalog_, dbgen_.get(), 78);
  std::vector<Row> keys = refresh.PickLineitemDeleteKeys(100);
  ASSERT_EQ(keys.size(), 100u);
  std::set<std::pair<int64_t, int64_t>> unique;
  Table* lineitem = catalog_.GetTable("lineitem");
  for (const Row& key : keys) {
    unique.emplace(key[0].int64(), key[1].int64());
    EXPECT_NE(lineitem->FindByKey(key), nullptr);
  }
  EXPECT_EQ(unique.size(), 100u);
}

TEST_F(TpchFixture, RefreshNewOrdersUseGapKeys) {
  RefreshStream refresh(&catalog_, dbgen_.get(), 79);
  std::vector<Row> rows = refresh.NewOrders(50);
  ASSERT_EQ(rows.size(), 50u);
  Table* orders = catalog_.GetTable("orders");
  for (const Row& row : rows) {
    ASSERT_TRUE(orders->Insert(row)) << "order key collision";
  }
  std::string violation;
  EXPECT_TRUE(catalog_.CheckForeignKeys(&violation)) << violation;
}

TEST_F(TpchFixture, RefreshNewPartsAndCustomersHaveFreshKeys) {
  RefreshStream refresh(&catalog_, dbgen_.get(), 80);
  Table* part = catalog_.GetTable("part");
  Table* customer = catalog_.GetTable("customer");
  for (const Row& row : refresh.NewParts(30)) {
    ASSERT_TRUE(part->Insert(row));
  }
  for (const Row& row : refresh.NewCustomers(30)) {
    ASSERT_TRUE(customer->Insert(row));
  }
}

}  // namespace
}  // namespace tpch
}  // namespace ojv
