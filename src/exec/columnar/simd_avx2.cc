// AVX2 backend: 4 int64 lanes per op. This translation unit is the only
// one compiled with -mavx2 (see src/exec/CMakeLists.txt); the dispatcher
// in simd.cc only routes here after __builtin_cpu_supports("avx2")
// confirms the host, so no AVX2 instruction can execute on an older CPU.
//
// Every function computes exactly the scalar_ref formula lane-wise.
// AVX2 has no 64-bit low multiply, so the hash mix emulates it from
// three 32x32 multiplies (lo*lo + ((lo*hi + hi*lo) << 32)) — bit-exact
// modulo 2^64, which is all the formula needs.

#include "exec/columnar/simd_avx2.h"

#if defined(OJV_HAVE_AVX2)

#include <immintrin.h>

#include "exec/columnar/simd_common.h"

namespace ojv {
namespace columnar {
namespace simd {
namespace avx2 {

namespace {

// Writes the low 4 bits of `mask` (one per 64-bit lane) as 0/1 bytes.
inline void WriteLaneBytes(int mask, uint8_t* out) {
  out[0] = static_cast<uint8_t>(mask & 1);
  out[1] = static_cast<uint8_t>((mask >> 1) & 1);
  out[2] = static_cast<uint8_t>((mask >> 2) & 1);
  out[3] = static_cast<uint8_t>((mask >> 3) & 1);
}

inline int MoveMask64(__m256i m) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(m));
}

// 4-lane compare of signed 64-bit vectors; returns the 4-bit lane mask.
template <CompareOp op>
inline int CmpMask(__m256i a, __m256i b) {
  switch (op) {
    case CompareOp::kEq:
      return MoveMask64(_mm256_cmpeq_epi64(a, b));
    case CompareOp::kNe:
      return MoveMask64(_mm256_cmpeq_epi64(a, b)) ^ 0xf;
    case CompareOp::kGt:
      return MoveMask64(_mm256_cmpgt_epi64(a, b));
    case CompareOp::kLe:
      return MoveMask64(_mm256_cmpgt_epi64(a, b)) ^ 0xf;
    case CompareOp::kLt:
      return MoveMask64(_mm256_cmpgt_epi64(b, a));
    case CompareOp::kGe:
      return MoveMask64(_mm256_cmpgt_epi64(b, a)) ^ 0xf;
  }
  return 0;
}

template <CompareOp op>
void CmpI64LitImpl(const int64_t* vals, int64_t n, int64_t literal,
                   uint8_t* out) {
  const __m256i lit = _mm256_set1_epi64x(literal);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    WriteLaneBytes(CmpMask<op>(v, lit), out + i);
  }
  for (; i < n; ++i) {
    out[i] = scalar_ref::CmpI64<op>(vals[i], literal) ? 1 : 0;
  }
}

template <CompareOp op>
void CmpI64ColsImpl(const int64_t* a, const int64_t* b, int64_t n,
                    uint8_t* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    WriteLaneBytes(CmpMask<op>(va, vb), out + i);
  }
  for (; i < n; ++i) {
    out[i] = scalar_ref::CmpI64<op>(a[i], b[i]) ? 1 : 0;
  }
}

// Low 64 bits of a*b per lane (AVX2 lacks _mm256_mullo_epi64).
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// splitmix64 finalizer, 4 lanes (scalar_ref::Mix64).
inline __m256i Mix64x4(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = MulLo64(x, _mm256_set1_epi64x(0xbf58476d1ce4e5b9ULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = MulLo64(x, _mm256_set1_epi64x(0x94d049bb133111ebULL));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

}  // namespace

void CmpI64Lit(const int64_t* vals, int64_t n, CompareOp op, int64_t literal,
               uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return CmpI64LitImpl<CompareOp::kEq>(vals, n, literal, out);
    case CompareOp::kNe:
      return CmpI64LitImpl<CompareOp::kNe>(vals, n, literal, out);
    case CompareOp::kLt:
      return CmpI64LitImpl<CompareOp::kLt>(vals, n, literal, out);
    case CompareOp::kLe:
      return CmpI64LitImpl<CompareOp::kLe>(vals, n, literal, out);
    case CompareOp::kGt:
      return CmpI64LitImpl<CompareOp::kGt>(vals, n, literal, out);
    case CompareOp::kGe:
      return CmpI64LitImpl<CompareOp::kGe>(vals, n, literal, out);
  }
}

void CmpI64Cols(const int64_t* a, const int64_t* b, int64_t n, CompareOp op,
                uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return CmpI64ColsImpl<CompareOp::kEq>(a, b, n, out);
    case CompareOp::kNe:
      return CmpI64ColsImpl<CompareOp::kNe>(a, b, n, out);
    case CompareOp::kLt:
      return CmpI64ColsImpl<CompareOp::kLt>(a, b, n, out);
    case CompareOp::kLe:
      return CmpI64ColsImpl<CompareOp::kLe>(a, b, n, out);
    case CompareOp::kGt:
      return CmpI64ColsImpl<CompareOp::kGt>(a, b, n, out);
    case CompareOp::kGe:
      return CmpI64ColsImpl<CompareOp::kGe>(a, b, n, out);
  }
}

void CmpF64Lit(const double* vals, int64_t n, CompareOp op, double literal,
               uint8_t* out) {
  const __m256d lit = _mm256_set1_pd(literal);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vals + i);
    int mask = 0;
    // Ordered, non-signaling predicates: NaN compares false, except kNe
    // where it compares true (matching scalar !=).
    switch (op) {
      case CompareOp::kEq:
        mask = _mm256_movemask_pd(_mm256_cmp_pd(v, lit, _CMP_EQ_OQ));
        break;
      case CompareOp::kNe:
        mask = _mm256_movemask_pd(_mm256_cmp_pd(v, lit, _CMP_NEQ_UQ));
        break;
      case CompareOp::kLt:
        mask = _mm256_movemask_pd(_mm256_cmp_pd(v, lit, _CMP_LT_OQ));
        break;
      case CompareOp::kLe:
        mask = _mm256_movemask_pd(_mm256_cmp_pd(v, lit, _CMP_LE_OQ));
        break;
      case CompareOp::kGt:
        mask = _mm256_movemask_pd(_mm256_cmp_pd(v, lit, _CMP_GT_OQ));
        break;
      case CompareOp::kGe:
        mask = _mm256_movemask_pd(_mm256_cmp_pd(v, lit, _CMP_GE_OQ));
        break;
    }
    WriteLaneBytes(mask, out + i);
  }
  for (; i < n; ++i) {
    out[i] = scalar_ref::CmpF64Dyn(vals[i], literal, op) ? 1 : 0;
  }
}

void HashI64(const int64_t* vals, int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Mix64x4(v));
  }
  for (; i < n; ++i) {
    out[i] = scalar_ref::Mix64(static_cast<uint64_t>(vals[i]));
  }
}

void HashCombineI64(const int64_t* vals, int64_t n, uint64_t* inout) {
  const __m256i prime = _mm256_set1_epi64x(0x100000001b3ULL);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(inout + i));
    const __m256i mixed = Mix64x4(v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(inout + i),
                        MulLo64(_mm256_xor_si256(h, mixed), prime));
  }
  for (; i < n; ++i) {
    inout[i] = scalar_ref::CombineHash(
        inout[i], scalar_ref::Mix64(static_cast<uint64_t>(vals[i])));
  }
}

void GatherI64(const int64_t* src, const int32_t* idx, int64_t n,
               int64_t* dst) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256i v = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(src), vi, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = src[idx[i]];
}

void GatherF64(const double* src, const int32_t* idx, int64_t n, double* dst) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    _mm256_storeu_pd(dst + i, _mm256_i32gather_pd(src, vi, 8));
  }
  for (; i < n; ++i) dst[i] = src[idx[i]];
}

}  // namespace avx2
}  // namespace simd
}  // namespace columnar
}  // namespace ojv

#endif  // OJV_HAVE_AVX2
