#ifndef OJV_COMMON_VALUE_H_
#define OJV_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>

namespace ojv {

/// Logical column types supported by the engine.
///
/// kDate is stored as an int64 count of days since 1970-01-01 but is kept
/// as a distinct logical type so schemas print and validate naturally.
enum class ValueType {
  kInt64,
  kFloat64,
  kString,
  kDate,
};

/// Returns a human-readable name ("INT64", "FLOAT64", ...).
const char* ValueTypeName(ValueType type);

/// A single SQL value: NULL, 64-bit integer, double, or string.
///
/// Value implements SQL semantics where they matter for view maintenance:
/// comparisons involving NULL are "unknown" (surfaced by the scalar
/// evaluator as a null Value), while SortCompare/Hash provide a total
/// order in which NULL sorts first and compares equal to itself, which is
/// what indexes, duplicate elimination, and subsumption checks need.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) {
    Value val;
    val.rep_ = v;
    return val;
  }
  static Value Float64(double v) {
    Value val;
    val.rep_ = v;
    return val;
  }
  static Value String(std::string v) {
    Value val;
    val.rep_ = std::make_shared<const std::string>(std::move(v));
    return val;
  }
  /// Dates share the int64 representation (days since epoch).
  static Value Date(int64_t days) { return Int64(days); }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_float64() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const {
    return std::holds_alternative<std::shared_ptr<const std::string>>(rep_);
  }

  /// Accessors abort if the value holds a different alternative; callers
  /// are expected to have validated types at plan time.
  int64_t int64() const { return std::get<int64_t>(rep_); }
  double float64() const { return std::get<double>(rep_); }
  const std::string& string() const {
    return *std::get<std::shared_ptr<const std::string>>(rep_);
  }

  /// Numeric view used by arithmetic and cross-type comparisons.
  double AsDouble() const;

  /// Strict equality used by row identity, indexes and duplicate
  /// elimination: NULL == NULL is true here (unlike SQL `=`).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order: NULL first, then by type-coerced value. Used for
  /// sorting and deterministic output; not SQL comparison semantics.
  /// Returns <0, 0, >0.
  int SortCompare(const Value& other) const;

  /// SQL three-valued comparison. Returns 0/-1/+1 via *result and true,
  /// or returns false when the comparison is unknown (an operand is NULL).
  bool SqlCompare(const Value& other, int* result) const;

  /// Hash consistent with operator== (NULLs hash to a fixed sentinel).
  size_t Hash() const;

  /// Debug / output rendering; NULL prints as "NULL".
  std::string ToString() const;

 private:
  // Strings are shared and immutable: rows are copied throughout join
  // pipelines and view storage, and a refcount bump beats a heap copy.
  std::variant<std::monostate, int64_t, double,
               std::shared_ptr<const std::string>>
      rep_;
};

/// Hash functor usable with unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ojv

#endif  // OJV_COMMON_VALUE_H_
