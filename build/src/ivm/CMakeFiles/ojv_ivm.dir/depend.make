# Empty dependencies file for ojv_ivm.
# This may be replaced when dependencies are built.
