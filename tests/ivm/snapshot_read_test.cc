// Snapshot view reads under concurrent maintenance (DESIGN.md §17).
//
// The first half pins the ViewSnapshot semantics single-threaded:
// generation pinning, read-freshness modes, staleness accounting, and
// the lifetime rules (a pinned generation survives later publishes and
// even DropView).
//
// The second half is the TSan regression for the ReadView lock-escape:
// the old API returned `&maintainer->view()` after its lock_guard
// released, so a reader thread scanned the very vectors the background
// refresher was rewriting — a data race TSan flags reliably. With
// snapshot handles the same workload must be race-free AND no reader
// may ever observe a mid-refresh view state (the revert/replay's
// intermediate contents violate the workload's row-count invariant).

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ivm/database.h"
#include "obs/windowed.h"

namespace ojv {
namespace {

using deferred::RefreshPolicy;
using deferred::ThresholdConfig;

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

class SnapshotReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.catalog()->CreateTable(
        "dept",
        Schema({ColumnDef{"d_id", ValueType::kInt64, false},
                ColumnDef{"d_name", ValueType::kString, false}}),
        {"d_id"});
    db_.catalog()->CreateTable(
        "emp",
        Schema({ColumnDef{"e_id", ValueType::kInt64, false},
                ColumnDef{"e_dept", ValueType::kInt64, false},
                ColumnDef{"e_salary", ValueType::kFloat64, true}}),
        {"e_id"});
  }

  ViewDef MakeDeptView(const char* name = "dept_emp") {
    RelExprPtr tree = RelExpr::Join(
        JoinKind::kFullOuter, RelExpr::Scan("dept"), RelExpr::Scan("emp"),
        Eq("dept", "d_id", "emp", "e_dept"));
    return ViewDef(name, tree,
                   {{"dept", "d_id"},
                    {"dept", "d_name"},
                    {"emp", "e_id"},
                    {"emp", "e_dept"},
                    {"emp", "e_salary"}},
                   *db_.catalog());
  }

  Row Dept(int64_t id, const char* name) {
    return Row{Value::Int64(id), Value::String(name)};
  }
  Row Emp(int64_t id, int64_t dept, double salary) {
    return Row{Value::Int64(id), Value::Int64(dept), Value::Float64(salary)};
  }
  Row Key(int64_t id) { return Row{Value::Int64(id)}; }

  Database db_;
};

TEST_F(SnapshotReadTest, SnapshotPinsItsGeneration) {
  db_.CreateMaterializedView(MakeDeptView());
  db_.Insert("dept", {Dept(1, "eng")});
  db_.Insert("emp", {Emp(10, 1, 100.0)});

  ViewSnapshot before = db_.ReadView("dept_emp");
  ASSERT_TRUE(before.valid());
  EXPECT_EQ(before.size(), 1);

  // Later maintenance publishes new generations; the pinned one must
  // keep its exact contents.
  db_.Insert("emp", {Emp(11, 1, 80.0)});
  ViewSnapshot after = db_.ReadView("dept_emp");
  EXPECT_EQ(before.size(), 1);
  EXPECT_EQ(after.size(), 2);
  EXPECT_GT(after.generation(), before.generation());
}

TEST_F(SnapshotReadTest, UnknownAndMismatchedViewsAreInvalid) {
  db_.CreateMaterializedView(MakeDeptView());
  EXPECT_EQ(db_.ReadView("nope"), nullptr);
  EXPECT_FALSE(db_.AcquireSnapshot("nope").valid());
  // ReadView answers row views only; an invalid handle mirrors the old
  // nullptr return. AcquireSnapshot serves both kinds.
  db_.CreateAggregateView(
      MakeDeptView("dept_agg"), {{"dept", "d_name"}},
      {{AggregateSpec::Kind::kCountStar, {}, "n"}});
  EXPECT_EQ(db_.ReadView("dept_agg"), nullptr);
  EXPECT_TRUE(db_.AcquireSnapshot("dept_agg").valid());
  EXPECT_TRUE(db_.ReadAggregateRelation("dept_agg").valid());
}

TEST_F(SnapshotReadTest, SnapshotReadDoesNotRefreshOnDemandBacklog) {
  db_.CreateMaterializedView(MakeDeptView());
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);
  db_.Insert("dept", {Dept(1, "eng")});
  db_.Insert("emp", {Emp(10, 1, 100.0)});
  ASSERT_GT(db_.PendingRows("dept_emp"), 0);

  // kSnapshot returns the last published generation; the backlog stays
  // (the opportunistic catch-up folds heavy state and republishes the
  // stored contents but never runs the deferred refresh).
  ViewSnapshot snap = db_.AcquireSnapshot("dept_emp");
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.size(), 0);  // created empty, nothing applied yet
  EXPECT_GT(db_.PendingRows("dept_emp"), 0);
  EXPECT_GT(snap.staleness_micros(obs::SteadyNowMicros()), 0);

  // The default ReadView keeps read-your-writes: it drains the backlog.
  ViewSnapshot fresh = db_.ReadView("dept_emp");
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);
  EXPECT_EQ(fresh.size(), 1);  // dept 1 joined with emp 10
  EXPECT_EQ(fresh.staleness_micros(obs::SteadyNowMicros()), 0);
}

TEST_F(SnapshotReadTest, BoundedReadUpgradesPastItsBound) {
  db_.CreateMaterializedView(MakeDeptView());
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kOnDemand);
  db_.Insert("dept", {Dept(1, "eng")});
  ASSERT_GT(db_.PendingRows("dept_emp"), 0);

  // Within a generous bound: serve the stale generation, keep backlog.
  ViewSnapshot lax =
      db_.AcquireSnapshot("dept_emp", ReadOptions::Bounded(60e6));
  EXPECT_EQ(lax.size(), 0);
  EXPECT_GT(db_.PendingRows("dept_emp"), 0);

  // Past the bound: the read blocks and catches up like kFresh.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ViewSnapshot tight =
      db_.AcquireSnapshot("dept_emp", ReadOptions::Bounded(1.0));
  EXPECT_EQ(tight.size(), 1);
  EXPECT_EQ(db_.PendingRows("dept_emp"), 0);
}

TEST_F(SnapshotReadTest, PinnedSnapshotSurvivesDropView) {
  db_.CreateMaterializedView(MakeDeptView());
  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  ViewSnapshot snap = db_.ReadView("dept_emp");
  ASSERT_EQ(snap.size(), 2);
  ASSERT_TRUE(db_.DropView("dept_emp"));
  // The handle's refcount keeps the retired generation alive.
  EXPECT_EQ(snap.size(), 2);
  EXPECT_EQ(db_.ReadView("dept_emp"), nullptr);
}

// --- the TSan regression --------------------------------------------------
//
// Reader threads pin snapshots while the background refresher replays
// staged update pairs into the same view. The workload is built so
// every *committed* view state has exactly kEmps rows (every emp joins
// its dept; every dept is occupied): any smaller or larger row count is
// a mid-refresh state (an update pair's delete half applied, its insert
// half not yet) that snapshot isolation must make unobservable. Before
// the ViewSnapshot API landed, this test's reader dereferenced a
// MaterializedView* while the refresher rewrote it: a hard data race
// under TSan, and the row-count invariant failed within a few storms.
TEST_F(SnapshotReadTest, ConcurrentReadersNeverObserveMidRefreshState) {
  constexpr int kDepts = 4;
  constexpr int kEmps = 32;
  constexpr int kStatements = 200;
  constexpr int kReaders = 2;

  db_.CreateMaterializedView(MakeDeptView());
  std::vector<Row> depts;
  for (int d = 0; d < kDepts; ++d) {
    depts.push_back(Dept(d, d % 2 == 0 ? "eng" : "ops"));
  }
  db_.Insert("dept", depts);
  std::vector<Row> emps;
  for (int e = 0; e < kEmps; ++e) emps.push_back(Emp(e, e % kDepts, 1.0));
  db_.Insert("emp", emps);

  // Tiny thresholds + a fast worker tick = a continuous refresh storm.
  ThresholdConfig config;
  config.max_pending_rows = 4;
  db_.SetRefreshPolicy("dept_emp", RefreshPolicy::kThreshold, config);
  // Publish the populated baseline generation before the readers start:
  // from here on every committed state of the view has exactly kEmps
  // rows, so any other size a snapshot shows is a torn read.
  ASSERT_EQ(db_.ReadView("dept_emp").size(), kEmps);
  db_.StartBackgroundRefresh(std::chrono::milliseconds(1));

  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> bad_sizes{0};
  std::atomic<int64_t> regressions{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_generation = 0;
      while (!done.load(std::memory_order_acquire)) {
        // Alternate the non-blocking modes; both must hold the invariant.
        ViewSnapshot snap =
            (r % 2 == 0)
                ? db_.AcquireSnapshot("dept_emp")
                : db_.AcquireSnapshot("dept_emp", ReadOptions::Bounded(60e6));
        if (!snap.valid()) continue;
        ++reads;
        if (snap.size() != kEmps) ++bad_sizes;
        // Scan the pinned contents — this is the loop that raced with
        // the refresher when reads returned interior pointers.
        int64_t rows = 0;
        for (const Row& row : snap.relation().rows()) {
          rows += static_cast<int64_t>(!row.empty());
        }
        if (rows != kEmps) ++bad_sizes;
        if (snap.generation() < last_generation) ++regressions;
        last_generation = snap.generation();
      }
    });
  }

  // Writer: salary updates only — the view's committed row count never
  // changes, but every statement stages an update pair whose replay
  // passes through the forbidden intermediate states. Keep storming
  // until the readers have demonstrably overlapped the refreshes (on a
  // single-core host the fixed statement budget can finish before the
  // reader threads are even scheduled).
  int i = 0;
  while (i < kStatements || (reads.load() < 100 && i < 100 * kStatements)) {
    const int64_t e = i % kEmps;
    ASSERT_TRUE(
        db_.Update("emp", {Key(e)}, {Emp(e, e % kDepts, 1.0 + i)}).ok());
    ++i;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  db_.StopBackgroundRefresh();

  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(bad_sizes.load(), 0) << "a reader observed a mid-refresh state";
  EXPECT_EQ(regressions.load(), 0) << "generation numbers went backwards";

  // Quiesced: one fresh read drains what the storm left behind.
  ViewSnapshot final_snap = db_.ReadView("dept_emp");
  EXPECT_EQ(final_snap.size(), kEmps);
}

}  // namespace
}  // namespace ojv
