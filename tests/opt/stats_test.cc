// Statistics catalog: KMV sketch accuracy, incremental maintenance
// against Table::version(), and staleness on unobserved changes.

#include "opt/stats.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace ojv {
namespace opt {
namespace {

// Deterministic "hash" stream for sketch tests: the murmur finalizer the
// catalog itself applies, so values spread across the 64-bit range.
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

TEST(KmvSketchTest, ExactBelowK) {
  KmvSketch sketch(64);
  for (int i = 0; i < 50; ++i) sketch.Insert(Mix(static_cast<uint64_t>(i)));
  // Duplicates must not count.
  for (int i = 0; i < 50; ++i) sketch.Insert(Mix(static_cast<uint64_t>(i)));
  EXPECT_FALSE(sketch.saturated());
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 50.0);
}

TEST(KmvSketchTest, EstimateWithinTolerance) {
  KmvSketch sketch(128);
  constexpr int kDistinct = 20000;
  for (int i = 0; i < kDistinct; ++i) {
    sketch.Insert(Mix(static_cast<uint64_t>(i) * 2654435761ULL));
  }
  EXPECT_TRUE(sketch.saturated());
  double est = sketch.Estimate();
  // KMV with k=128 has ~1/sqrt(k) ≈ 9% standard error; allow 3 sigma.
  EXPECT_GT(est, kDistinct * 0.73);
  EXPECT_LT(est, kDistinct * 1.27);
}

class StatsCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.CreateTable(
        "T",
        Schema({ColumnDef{"t_id", ValueType::kInt64, false},
                ColumnDef{"t_a", ValueType::kInt64, true}}),
        {"t_id"});
    table_ = catalog_.GetTable("T");
    for (int64_t i = 0; i < 100; ++i) {
      table_->Insert(Row{Value::Int64(i), Value::Int64(i % 10)});
    }
  }

  std::vector<Row> MakeRows(int64_t first_key, int64_t n) {
    std::vector<Row> rows;
    for (int64_t i = 0; i < n; ++i) {
      rows.push_back(
          Row{Value::Int64(first_key + i), Value::Int64((first_key + i) % 10)});
    }
    return rows;
  }

  Catalog catalog_;
  Table* table_ = nullptr;
};

TEST_F(StatsCatalogTest, BuildsOnFirstGet) {
  StatsCatalog stats(&catalog_);
  const TableStats* t = stats.Get("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->row_count, 100);
  EXPECT_DOUBLE_EQ(t->DistinctOf("t_id", 0), 100.0);
  EXPECT_DOUBLE_EQ(t->DistinctOf("t_a", 0), 10.0);
  const ColumnStats* id = t->Column("t_id");
  ASSERT_NE(id, nullptr);
  EXPECT_TRUE(id->has_range);
  EXPECT_DOUBLE_EQ(id->min, 0.0);
  EXPECT_DOUBLE_EQ(id->max, 99.0);
  EXPECT_EQ(stats.rebuild_count(), 1);
  EXPECT_EQ(stats.Get("unknown"), nullptr);
}

TEST_F(StatsCatalogTest, IncrementalInsertAvoidsRebuild) {
  StatsCatalog stats(&catalog_);
  stats.Get("T");
  std::vector<Row> rows = MakeRows(100, 20);
  for (const Row& row : rows) ASSERT_TRUE(table_->Insert(row));
  stats.OnInsert("T", rows);
  EXPECT_TRUE(stats.IsFresh("T"));
  const TableStats* t = stats.Get("T");
  EXPECT_EQ(t->row_count, 120);
  EXPECT_EQ(stats.rebuild_count(), 1);  // no rebuild needed
}

TEST_F(StatsCatalogTest, IncrementalDeleteTracksRowCount) {
  StatsCatalog stats(&catalog_);
  stats.Get("T");
  std::vector<Row> deleted;
  for (int64_t i = 0; i < 5; ++i) {
    Row full;
    ASSERT_TRUE(table_->DeleteByKey(Row{Value::Int64(i)}, &full));
    deleted.push_back(std::move(full));
  }
  stats.OnDelete("T", deleted);
  EXPECT_TRUE(stats.IsFresh("T"));
  EXPECT_EQ(stats.Get("T")->row_count, 95);
  EXPECT_EQ(stats.rebuild_count(), 1);
}

TEST_F(StatsCatalogTest, UnobservedChangeGoesStaleAndRebuilds) {
  StatsCatalog stats(&catalog_);
  stats.Get("T");
  // Out-of-band change the catalog never hears about through hooks.
  ASSERT_TRUE(table_->Insert(Row{Value::Int64(500), Value::Int64(1)}));
  EXPECT_FALSE(stats.IsFresh("T"));
  const TableStats* t = stats.Get("T");
  EXPECT_EQ(t->row_count, 101);
  EXPECT_EQ(stats.rebuild_count(), 2);
}

TEST_F(StatsCatalogTest, MismatchedBatchMarksStale) {
  StatsCatalog stats(&catalog_);
  stats.Get("T");
  std::vector<Row> rows = MakeRows(100, 3);
  for (const Row& row : rows) ASSERT_TRUE(table_->Insert(row));
  // Report only part of the batch: the version window cannot line up.
  stats.OnInsert("T", MakeRows(100, 1));
  EXPECT_FALSE(stats.IsFresh("T"));
  EXPECT_EQ(stats.Get("T")->row_count, 103);  // rebuilt from the table
}

TEST_F(StatsCatalogTest, OnUpdateAccountsBothHalves) {
  StatsCatalog stats(&catalog_);
  stats.Get("T");
  // Delete-then-insert as ApplyBaseUpdate does, reported as one pair.
  std::vector<Row> old_rows;
  for (int64_t i = 0; i < 4; ++i) {
    Row full;
    ASSERT_TRUE(table_->DeleteByKey(Row{Value::Int64(i)}, &full));
    old_rows.push_back(std::move(full));
  }
  std::vector<Row> new_rows = MakeRows(1000, 4);
  for (const Row& row : new_rows) ASSERT_TRUE(table_->Insert(row));
  stats.OnUpdate("T", old_rows, new_rows);
  EXPECT_TRUE(stats.IsFresh("T"));
  EXPECT_EQ(stats.Get("T")->row_count, 100);
  EXPECT_EQ(stats.rebuild_count(), 1);
}

TEST_F(StatsCatalogTest, HeavyDeletionForcesRebuild) {
  // Grow the table so the 30% rule (floor 64) is reachable.
  for (int64_t i = 100; i < 400; ++i) {
    ASSERT_TRUE(table_->Insert(Row{Value::Int64(i), Value::Int64(i % 10)}));
  }
  StatsCatalog stats(&catalog_);
  stats.Get("T");
  ASSERT_EQ(stats.rebuild_count(), 1);
  std::vector<Row> deleted;
  for (int64_t i = 0; i < 200; ++i) {
    Row full;
    ASSERT_TRUE(table_->DeleteByKey(Row{Value::Int64(i)}, &full));
    deleted.push_back(std::move(full));
  }
  stats.OnDelete("T", deleted);  // 200/400 = 50% > 30%: sketches distrusted
  EXPECT_FALSE(stats.IsFresh("T"));
  EXPECT_EQ(stats.Get("T")->row_count, 200);
  EXPECT_EQ(stats.rebuild_count(), 2);
}

TEST_F(StatsCatalogTest, InvalidateForcesRebuild) {
  StatsCatalog stats(&catalog_);
  stats.Get("T");
  stats.Invalidate("T");
  EXPECT_FALSE(stats.IsFresh("T"));
  stats.Get("T");
  EXPECT_EQ(stats.rebuild_count(), 2);
}

}  // namespace
}  // namespace opt
}  // namespace ojv
